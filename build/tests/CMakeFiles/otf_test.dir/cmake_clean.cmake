file(REMOVE_RECURSE
  "CMakeFiles/otf_test.dir/trace/otf_test.cpp.o"
  "CMakeFiles/otf_test.dir/trace/otf_test.cpp.o.d"
  "otf_test"
  "otf_test.pdb"
  "otf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
