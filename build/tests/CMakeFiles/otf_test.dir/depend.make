# Empty dependencies file for otf_test.
# This may be replaced when dependencies are built.
