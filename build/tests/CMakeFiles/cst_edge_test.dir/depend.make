# Empty dependencies file for cst_edge_test.
# This may be replaced when dependencies are built.
