
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cst/cst_edge_test.cpp" "tests/CMakeFiles/cst_edge_test.dir/cst/cst_edge_test.cpp.o" "gcc" "tests/CMakeFiles/cst_edge_test.dir/cst/cst_edge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cypress/CMakeFiles/cyp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cyp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/cst/CMakeFiles/cyp_cst.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cyp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/cyp_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cyp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/flate/CMakeFiles/cyp_flate.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cyp_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
