file(REMOVE_RECURSE
  "CMakeFiles/cst_edge_test.dir/cst/cst_edge_test.cpp.o"
  "CMakeFiles/cst_edge_test.dir/cst/cst_edge_test.cpp.o.d"
  "cst_edge_test"
  "cst_edge_test.pdb"
  "cst_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cst_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
