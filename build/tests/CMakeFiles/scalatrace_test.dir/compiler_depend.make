# Empty compiler generated dependencies file for scalatrace_test.
# This may be replaced when dependencies are built.
