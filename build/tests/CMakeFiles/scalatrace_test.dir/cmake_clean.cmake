file(REMOVE_RECURSE
  "CMakeFiles/scalatrace_test.dir/scalatrace/scalatrace_test.cpp.o"
  "CMakeFiles/scalatrace_test.dir/scalatrace/scalatrace_test.cpp.o.d"
  "scalatrace_test"
  "scalatrace_test.pdb"
  "scalatrace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalatrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
