file(REMOVE_RECURSE
  "CMakeFiles/flate_test.dir/flate/flate_test.cpp.o"
  "CMakeFiles/flate_test.dir/flate/flate_test.cpp.o.d"
  "flate_test"
  "flate_test.pdb"
  "flate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
