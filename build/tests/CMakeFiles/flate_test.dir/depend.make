# Empty dependencies file for flate_test.
# This may be replaced when dependencies are built.
