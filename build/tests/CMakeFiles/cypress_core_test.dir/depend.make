# Empty dependencies file for cypress_core_test.
# This may be replaced when dependencies are built.
