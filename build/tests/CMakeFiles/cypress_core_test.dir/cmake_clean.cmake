file(REMOVE_RECURSE
  "CMakeFiles/cypress_core_test.dir/cypress/ctt_test.cpp.o"
  "CMakeFiles/cypress_core_test.dir/cypress/ctt_test.cpp.o.d"
  "cypress_core_test"
  "cypress_core_test.pdb"
  "cypress_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypress_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
