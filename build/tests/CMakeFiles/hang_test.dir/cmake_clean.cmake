file(REMOVE_RECURSE
  "CMakeFiles/hang_test.dir/simmpi/hang_test.cpp.o"
  "CMakeFiles/hang_test.dir/simmpi/hang_test.cpp.o.d"
  "hang_test"
  "hang_test.pdb"
  "hang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
