# Empty dependencies file for hang_test.
# This may be replaced when dependencies are built.
