file(REMOVE_RECURSE
  "CMakeFiles/fault_matrix_test.dir/simmpi/fault_matrix_test.cpp.o"
  "CMakeFiles/fault_matrix_test.dir/simmpi/fault_matrix_test.cpp.o.d"
  "fault_matrix_test"
  "fault_matrix_test.pdb"
  "fault_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
