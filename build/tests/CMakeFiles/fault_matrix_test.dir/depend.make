# Empty dependencies file for fault_matrix_test.
# This may be replaced when dependencies are built.
