# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/flate_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/ir_builder_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/minic_test[1]_include.cmake")
include("/root/repo/build/tests/cst_test[1]_include.cmake")
include("/root/repo/build/tests/cst_edge_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/engine_unit_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/hang_test[1]_include.cmake")
include("/root/repo/build/tests/fault_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/cypress_core_test[1]_include.cmake")
include("/root/repo/build/tests/scalatrace_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/otf_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/journal_test[1]_include.cmake")
include("/root/repo/build/tests/diff_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
