file(REMOVE_RECURSE
  "CMakeFiles/fig19_leslie_sizes.dir/fig19_leslie_sizes.cpp.o"
  "CMakeFiles/fig19_leslie_sizes.dir/fig19_leslie_sizes.cpp.o.d"
  "fig19_leslie_sizes"
  "fig19_leslie_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_leslie_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
