# Empty compiler generated dependencies file for fig19_leslie_sizes.
# This may be replaced when dependencies are built.
