# Empty dependencies file for fig17_comm_patterns.
# This may be replaced when dependencies are built.
