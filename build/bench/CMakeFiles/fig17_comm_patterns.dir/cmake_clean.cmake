file(REMOVE_RECURSE
  "CMakeFiles/fig17_comm_patterns.dir/fig17_comm_patterns.cpp.o"
  "CMakeFiles/fig17_comm_patterns.dir/fig17_comm_patterns.cpp.o.d"
  "fig17_comm_patterns"
  "fig17_comm_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_comm_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
