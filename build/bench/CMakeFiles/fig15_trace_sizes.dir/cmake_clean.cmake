file(REMOVE_RECURSE
  "CMakeFiles/fig15_trace_sizes.dir/fig15_trace_sizes.cpp.o"
  "CMakeFiles/fig15_trace_sizes.dir/fig15_trace_sizes.cpp.o.d"
  "fig15_trace_sizes"
  "fig15_trace_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_trace_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
