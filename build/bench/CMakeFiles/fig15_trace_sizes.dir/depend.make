# Empty dependencies file for fig15_trace_sizes.
# This may be replaced when dependencies are built.
