# Empty compiler generated dependencies file for fig21_prediction.
# This may be replaced when dependencies are built.
