file(REMOVE_RECURSE
  "CMakeFiles/fig21_prediction.dir/fig21_prediction.cpp.o"
  "CMakeFiles/fig21_prediction.dir/fig21_prediction.cpp.o.d"
  "fig21_prediction"
  "fig21_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
