# Empty compiler generated dependencies file for fig18_inter_overhead.
# This may be replaced when dependencies are built.
