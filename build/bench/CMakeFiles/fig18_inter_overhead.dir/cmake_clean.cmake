file(REMOVE_RECURSE
  "CMakeFiles/fig18_inter_overhead.dir/fig18_inter_overhead.cpp.o"
  "CMakeFiles/fig18_inter_overhead.dir/fig18_inter_overhead.cpp.o.d"
  "fig18_inter_overhead"
  "fig18_inter_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_inter_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
