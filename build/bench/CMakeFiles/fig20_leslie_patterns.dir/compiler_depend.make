# Empty compiler generated dependencies file for fig20_leslie_patterns.
# This may be replaced when dependencies are built.
