file(REMOVE_RECURSE
  "CMakeFiles/fig20_leslie_patterns.dir/fig20_leslie_patterns.cpp.o"
  "CMakeFiles/fig20_leslie_patterns.dir/fig20_leslie_patterns.cpp.o.d"
  "fig20_leslie_patterns"
  "fig20_leslie_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_leslie_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
