file(REMOVE_RECURSE
  "CMakeFiles/analyze_patterns.dir/analyze_patterns.cpp.o"
  "CMakeFiles/analyze_patterns.dir/analyze_patterns.cpp.o.d"
  "analyze_patterns"
  "analyze_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
