# Empty compiler generated dependencies file for analyze_patterns.
# This may be replaced when dependencies are built.
