# Empty dependencies file for predict_performance.
# This may be replaced when dependencies are built.
