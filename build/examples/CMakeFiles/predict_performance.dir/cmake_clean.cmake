file(REMOVE_RECURSE
  "CMakeFiles/predict_performance.dir/predict_performance.cpp.o"
  "CMakeFiles/predict_performance.dir/predict_performance.cpp.o.d"
  "predict_performance"
  "predict_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
