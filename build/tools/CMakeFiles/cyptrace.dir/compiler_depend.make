# Empty compiler generated dependencies file for cyptrace.
# This may be replaced when dependencies are built.
