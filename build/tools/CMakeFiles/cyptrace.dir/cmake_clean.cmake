file(REMOVE_RECURSE
  "CMakeFiles/cyptrace.dir/cyptrace.cpp.o"
  "CMakeFiles/cyptrace.dir/cyptrace.cpp.o.d"
  "cyptrace"
  "cyptrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyptrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
