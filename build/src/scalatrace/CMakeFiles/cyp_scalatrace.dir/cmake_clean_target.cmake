file(REMOVE_RECURSE
  "libcyp_scalatrace.a"
)
