file(REMOVE_RECURSE
  "CMakeFiles/cyp_scalatrace.dir/element.cpp.o"
  "CMakeFiles/cyp_scalatrace.dir/element.cpp.o.d"
  "CMakeFiles/cyp_scalatrace.dir/inter.cpp.o"
  "CMakeFiles/cyp_scalatrace.dir/inter.cpp.o.d"
  "CMakeFiles/cyp_scalatrace.dir/recorder.cpp.o"
  "CMakeFiles/cyp_scalatrace.dir/recorder.cpp.o.d"
  "libcyp_scalatrace.a"
  "libcyp_scalatrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_scalatrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
