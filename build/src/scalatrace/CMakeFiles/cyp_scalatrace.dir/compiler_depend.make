# Empty compiler generated dependencies file for cyp_scalatrace.
# This may be replaced when dependencies are built.
