file(REMOVE_RECURSE
  "libcyp_minic.a"
)
