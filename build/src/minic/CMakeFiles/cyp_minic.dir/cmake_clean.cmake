file(REMOVE_RECURSE
  "CMakeFiles/cyp_minic.dir/compile.cpp.o"
  "CMakeFiles/cyp_minic.dir/compile.cpp.o.d"
  "CMakeFiles/cyp_minic.dir/lexer.cpp.o"
  "CMakeFiles/cyp_minic.dir/lexer.cpp.o.d"
  "CMakeFiles/cyp_minic.dir/parser.cpp.o"
  "CMakeFiles/cyp_minic.dir/parser.cpp.o.d"
  "libcyp_minic.a"
  "libcyp_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
