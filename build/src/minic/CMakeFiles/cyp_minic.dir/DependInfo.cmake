
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minic/compile.cpp" "src/minic/CMakeFiles/cyp_minic.dir/compile.cpp.o" "gcc" "src/minic/CMakeFiles/cyp_minic.dir/compile.cpp.o.d"
  "/root/repo/src/minic/lexer.cpp" "src/minic/CMakeFiles/cyp_minic.dir/lexer.cpp.o" "gcc" "src/minic/CMakeFiles/cyp_minic.dir/lexer.cpp.o.d"
  "/root/repo/src/minic/parser.cpp" "src/minic/CMakeFiles/cyp_minic.dir/parser.cpp.o" "gcc" "src/minic/CMakeFiles/cyp_minic.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cyp_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
