# Empty compiler generated dependencies file for cyp_minic.
# This may be replaced when dependencies are built.
