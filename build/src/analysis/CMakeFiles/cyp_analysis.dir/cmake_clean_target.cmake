file(REMOVE_RECURSE
  "libcyp_analysis.a"
)
