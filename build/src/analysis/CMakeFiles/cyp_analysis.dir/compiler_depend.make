# Empty compiler generated dependencies file for cyp_analysis.
# This may be replaced when dependencies are built.
