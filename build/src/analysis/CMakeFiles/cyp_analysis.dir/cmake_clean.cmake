file(REMOVE_RECURSE
  "CMakeFiles/cyp_analysis.dir/callgraph.cpp.o"
  "CMakeFiles/cyp_analysis.dir/callgraph.cpp.o.d"
  "CMakeFiles/cyp_analysis.dir/dominators.cpp.o"
  "CMakeFiles/cyp_analysis.dir/dominators.cpp.o.d"
  "CMakeFiles/cyp_analysis.dir/loops.cpp.o"
  "CMakeFiles/cyp_analysis.dir/loops.cpp.o.d"
  "libcyp_analysis.a"
  "libcyp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
