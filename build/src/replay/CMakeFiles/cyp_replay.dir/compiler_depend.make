# Empty compiler generated dependencies file for cyp_replay.
# This may be replaced when dependencies are built.
