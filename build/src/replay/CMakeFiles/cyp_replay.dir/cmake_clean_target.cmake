file(REMOVE_RECURSE
  "libcyp_replay.a"
)
