file(REMOVE_RECURSE
  "CMakeFiles/cyp_replay.dir/simulator.cpp.o"
  "CMakeFiles/cyp_replay.dir/simulator.cpp.o.d"
  "libcyp_replay.a"
  "libcyp_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
