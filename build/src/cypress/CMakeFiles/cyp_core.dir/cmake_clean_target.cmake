file(REMOVE_RECURSE
  "libcyp_core.a"
)
