# Empty dependencies file for cyp_core.
# This may be replaced when dependencies are built.
