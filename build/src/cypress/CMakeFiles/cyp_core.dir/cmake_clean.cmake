file(REMOVE_RECURSE
  "CMakeFiles/cyp_core.dir/ctt.cpp.o"
  "CMakeFiles/cyp_core.dir/ctt.cpp.o.d"
  "CMakeFiles/cyp_core.dir/decompress.cpp.o"
  "CMakeFiles/cyp_core.dir/decompress.cpp.o.d"
  "CMakeFiles/cyp_core.dir/diff.cpp.o"
  "CMakeFiles/cyp_core.dir/diff.cpp.o.d"
  "CMakeFiles/cyp_core.dir/merge.cpp.o"
  "CMakeFiles/cyp_core.dir/merge.cpp.o.d"
  "libcyp_core.a"
  "libcyp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
