# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("flate")
subdirs("ir")
subdirs("analysis")
subdirs("minic")
subdirs("cst")
subdirs("simmpi")
subdirs("vm")
subdirs("trace")
subdirs("cypress")
subdirs("scalatrace")
subdirs("replay")
subdirs("verify")
subdirs("workloads")
subdirs("driver")
