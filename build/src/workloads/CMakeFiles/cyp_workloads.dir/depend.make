# Empty dependencies file for cyp_workloads.
# This may be replaced when dependencies are built.
