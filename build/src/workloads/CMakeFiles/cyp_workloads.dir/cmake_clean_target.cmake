file(REMOVE_RECURSE
  "libcyp_workloads.a"
)
