file(REMOVE_RECURSE
  "CMakeFiles/cyp_workloads.dir/workloads.cpp.o"
  "CMakeFiles/cyp_workloads.dir/workloads.cpp.o.d"
  "libcyp_workloads.a"
  "libcyp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
