file(REMOVE_RECURSE
  "libcyp_ir.a"
)
