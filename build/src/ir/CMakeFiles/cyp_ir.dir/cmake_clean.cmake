file(REMOVE_RECURSE
  "CMakeFiles/cyp_ir.dir/builder.cpp.o"
  "CMakeFiles/cyp_ir.dir/builder.cpp.o.d"
  "CMakeFiles/cyp_ir.dir/expr.cpp.o"
  "CMakeFiles/cyp_ir.dir/expr.cpp.o.d"
  "CMakeFiles/cyp_ir.dir/ir.cpp.o"
  "CMakeFiles/cyp_ir.dir/ir.cpp.o.d"
  "libcyp_ir.a"
  "libcyp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
