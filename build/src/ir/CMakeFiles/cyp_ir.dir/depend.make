# Empty dependencies file for cyp_ir.
# This may be replaced when dependencies are built.
