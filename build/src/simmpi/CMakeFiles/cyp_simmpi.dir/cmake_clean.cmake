file(REMOVE_RECURSE
  "CMakeFiles/cyp_simmpi.dir/engine.cpp.o"
  "CMakeFiles/cyp_simmpi.dir/engine.cpp.o.d"
  "libcyp_simmpi.a"
  "libcyp_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
