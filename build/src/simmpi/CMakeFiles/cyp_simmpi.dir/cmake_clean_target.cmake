file(REMOVE_RECURSE
  "libcyp_simmpi.a"
)
