# Empty dependencies file for cyp_simmpi.
# This may be replaced when dependencies are built.
