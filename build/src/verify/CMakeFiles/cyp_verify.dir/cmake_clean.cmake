file(REMOVE_RECURSE
  "CMakeFiles/cyp_verify.dir/fuzz.cpp.o"
  "CMakeFiles/cyp_verify.dir/fuzz.cpp.o.d"
  "CMakeFiles/cyp_verify.dir/roundtrip.cpp.o"
  "CMakeFiles/cyp_verify.dir/roundtrip.cpp.o.d"
  "libcyp_verify.a"
  "libcyp_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
