file(REMOVE_RECURSE
  "libcyp_verify.a"
)
