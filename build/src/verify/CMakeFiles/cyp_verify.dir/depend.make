# Empty dependencies file for cyp_verify.
# This may be replaced when dependencies are built.
