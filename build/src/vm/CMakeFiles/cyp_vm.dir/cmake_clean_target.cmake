file(REMOVE_RECURSE
  "libcyp_vm.a"
)
