# Empty compiler generated dependencies file for cyp_vm.
# This may be replaced when dependencies are built.
