file(REMOVE_RECURSE
  "CMakeFiles/cyp_vm.dir/runner.cpp.o"
  "CMakeFiles/cyp_vm.dir/runner.cpp.o.d"
  "CMakeFiles/cyp_vm.dir/vm.cpp.o"
  "CMakeFiles/cyp_vm.dir/vm.cpp.o.d"
  "libcyp_vm.a"
  "libcyp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
