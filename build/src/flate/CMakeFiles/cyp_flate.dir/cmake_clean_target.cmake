file(REMOVE_RECURSE
  "libcyp_flate.a"
)
