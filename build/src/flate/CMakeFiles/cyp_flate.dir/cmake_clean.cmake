file(REMOVE_RECURSE
  "CMakeFiles/cyp_flate.dir/flate.cpp.o"
  "CMakeFiles/cyp_flate.dir/flate.cpp.o.d"
  "CMakeFiles/cyp_flate.dir/huffman.cpp.o"
  "CMakeFiles/cyp_flate.dir/huffman.cpp.o.d"
  "CMakeFiles/cyp_flate.dir/lz77.cpp.o"
  "CMakeFiles/cyp_flate.dir/lz77.cpp.o.d"
  "libcyp_flate.a"
  "libcyp_flate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_flate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
