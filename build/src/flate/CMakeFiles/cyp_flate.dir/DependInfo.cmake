
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flate/flate.cpp" "src/flate/CMakeFiles/cyp_flate.dir/flate.cpp.o" "gcc" "src/flate/CMakeFiles/cyp_flate.dir/flate.cpp.o.d"
  "/root/repo/src/flate/huffman.cpp" "src/flate/CMakeFiles/cyp_flate.dir/huffman.cpp.o" "gcc" "src/flate/CMakeFiles/cyp_flate.dir/huffman.cpp.o.d"
  "/root/repo/src/flate/lz77.cpp" "src/flate/CMakeFiles/cyp_flate.dir/lz77.cpp.o" "gcc" "src/flate/CMakeFiles/cyp_flate.dir/lz77.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
