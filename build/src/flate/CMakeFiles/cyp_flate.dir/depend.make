# Empty dependencies file for cyp_flate.
# This may be replaced when dependencies are built.
