file(REMOVE_RECURSE
  "libcyp_cst.a"
)
