
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cst/builder.cpp" "src/cst/CMakeFiles/cyp_cst.dir/builder.cpp.o" "gcc" "src/cst/CMakeFiles/cyp_cst.dir/builder.cpp.o.d"
  "/root/repo/src/cst/tree.cpp" "src/cst/CMakeFiles/cyp_cst.dir/tree.cpp.o" "gcc" "src/cst/CMakeFiles/cyp_cst.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cyp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cyp_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
