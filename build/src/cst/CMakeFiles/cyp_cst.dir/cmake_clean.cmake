file(REMOVE_RECURSE
  "CMakeFiles/cyp_cst.dir/builder.cpp.o"
  "CMakeFiles/cyp_cst.dir/builder.cpp.o.d"
  "CMakeFiles/cyp_cst.dir/tree.cpp.o"
  "CMakeFiles/cyp_cst.dir/tree.cpp.o.d"
  "libcyp_cst.a"
  "libcyp_cst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_cst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
