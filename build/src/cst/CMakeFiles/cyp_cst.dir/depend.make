# Empty dependencies file for cyp_cst.
# This may be replaced when dependencies are built.
