# Empty compiler generated dependencies file for cyp_driver.
# This may be replaced when dependencies are built.
