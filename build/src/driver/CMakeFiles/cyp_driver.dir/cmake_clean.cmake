file(REMOVE_RECURSE
  "CMakeFiles/cyp_driver.dir/pipeline.cpp.o"
  "CMakeFiles/cyp_driver.dir/pipeline.cpp.o.d"
  "libcyp_driver.a"
  "libcyp_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
