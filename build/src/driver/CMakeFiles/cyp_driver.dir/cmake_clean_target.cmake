file(REMOVE_RECURSE
  "libcyp_driver.a"
)
