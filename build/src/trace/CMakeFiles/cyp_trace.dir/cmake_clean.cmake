file(REMOVE_RECURSE
  "CMakeFiles/cyp_trace.dir/event.cpp.o"
  "CMakeFiles/cyp_trace.dir/event.cpp.o.d"
  "CMakeFiles/cyp_trace.dir/journal.cpp.o"
  "CMakeFiles/cyp_trace.dir/journal.cpp.o.d"
  "CMakeFiles/cyp_trace.dir/matrix.cpp.o"
  "CMakeFiles/cyp_trace.dir/matrix.cpp.o.d"
  "CMakeFiles/cyp_trace.dir/otf_text.cpp.o"
  "CMakeFiles/cyp_trace.dir/otf_text.cpp.o.d"
  "CMakeFiles/cyp_trace.dir/stats.cpp.o"
  "CMakeFiles/cyp_trace.dir/stats.cpp.o.d"
  "libcyp_trace.a"
  "libcyp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
