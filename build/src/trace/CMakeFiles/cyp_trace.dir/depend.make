# Empty dependencies file for cyp_trace.
# This may be replaced when dependencies are built.
