
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/event.cpp" "src/trace/CMakeFiles/cyp_trace.dir/event.cpp.o" "gcc" "src/trace/CMakeFiles/cyp_trace.dir/event.cpp.o.d"
  "/root/repo/src/trace/journal.cpp" "src/trace/CMakeFiles/cyp_trace.dir/journal.cpp.o" "gcc" "src/trace/CMakeFiles/cyp_trace.dir/journal.cpp.o.d"
  "/root/repo/src/trace/matrix.cpp" "src/trace/CMakeFiles/cyp_trace.dir/matrix.cpp.o" "gcc" "src/trace/CMakeFiles/cyp_trace.dir/matrix.cpp.o.d"
  "/root/repo/src/trace/otf_text.cpp" "src/trace/CMakeFiles/cyp_trace.dir/otf_text.cpp.o" "gcc" "src/trace/CMakeFiles/cyp_trace.dir/otf_text.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/cyp_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/cyp_trace.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cyp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/flate/CMakeFiles/cyp_flate.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
