file(REMOVE_RECURSE
  "libcyp_trace.a"
)
