#include "cst/builder.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/callgraph.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace cypress::cst {

namespace {

using analysis::CallGraph;
using analysis::CfgView;
using analysis::DomTree;
using analysis::Loop;
using analysis::LoopInfo;

enum class MarkerType : uint8_t { Enter, Exit };

/// One instrumentation directive: insert a structure marker on the CFG
/// edge (fromBlock --succIndex--> *).
struct EdgeMarker {
  int fromBlock;
  int succIndex;
  MarkerType type;
  int structId;
  int depth;  // structure nesting depth, for ordering on shared edges
};

/// Per-function analysis product.
struct FunctionCst {
  std::unique_ptr<Node> tree;  // Root node; children = function content
  std::vector<EdgeMarker> markers;
  int numLoops = 0;
  int numBranchPaths = 0;
};

/// Structured walker: builds the intra-procedural CST (Algorithm 1) and
/// the marker plan in one pass.
class FunctionAnalyzer {
 public:
  FunctionAnalyzer(const ir::Function& f)
      : f_(f),
        cfg_(f),
        dom_(DomTree::build(f)),
        post_(DomTree::buildPost(f)),
        loops_(LoopInfo::build(f, dom_)) {}

  FunctionCst run() {
    FunctionCst out;
    out.tree = std::make_unique<Node>();
    out.tree->kind = NodeKind::Root;
    out.tree->func = f_.name;
    out.tree->label = "func " + f_.name;
    walk(0, post_.root(), -1, out.tree.get(), 0);
    out.markers = std::move(markers_);
    out.numLoops = numLoops_;
    out.numBranchPaths = numBranchPaths_;
    return out;
  }

 private:
  const ir::Function& f_;
  CfgView cfg_;
  DomTree dom_;
  DomTree post_;
  LoopInfo loops_;
  std::vector<EdgeMarker> markers_;
  int nextStructId_ = 0;
  int numLoops_ = 0;
  int numBranchPaths_ = 0;
  std::set<int> visited_;  // irreducibility guard

  const ir::BasicBlock& block(int id) const {
    return f_.blocks[static_cast<size_t>(id)];
  }

  int succIndexOf(int from, int to) const {
    const auto succs = block(from).successors();
    for (size_t i = 0; i < succs.size(); ++i)
      if (succs[i] == to) return static_cast<int>(i);
    CYP_FAIL(f_.name << ": no edge " << from << "->" << to);
  }

  void mark(int from, int succIndex, MarkerType type, int structId, int depth) {
    markers_.push_back(EdgeMarker{from, succIndex, type, structId, depth});
  }

  void appendLeaves(const ir::BasicBlock& b, Node* parent) {
    for (const ir::Instr& i : b.instrs) {
      if (i.kind == ir::InstrKind::MpiCall) {
        auto leaf = std::make_unique<Node>();
        leaf->kind = NodeKind::Comm;
        leaf->op = i.mpiOp;
        leaf->callSiteId = i.callSiteId;
        leaf->func = f_.name;
        leaf->label = ir::mpiOpName(i.mpiOp);
        parent->addChild(std::move(leaf));
      } else if (i.kind == ir::InstrKind::Call) {
        auto ph = std::make_unique<Node>();
        ph->kind = NodeKind::Call;
        ph->callInstrId = i.callInstrId;
        ph->func = i.callee;  // placeholder: callee name (resolved at inline)
        ph->label = "call " + i.callee + " from " + f_.name;
        parent->addChild(std::move(ph));
      }
    }
  }

  /// Walk the region starting at `cur` until reaching `stop` (a block id
  /// or the post-dominator virtual exit), appending CST children of
  /// `parent` in program order. `activeLoop` is the loop whose body we
  /// are inside (its header terminates iterations), as a loops_ index.
  void walk(int cur, int stop, int activeLoop, Node* parent, int depth) {
    while (cur != stop) {
      // Both arms of an inner branch returned: nothing left in this region.
      if (cur == post_.root()) return;
      // Back edge of the active loop reached via a region whose stop was
      // widened (e.g. a branch arm that returns): iteration ends here.
      if (activeLoop != -1 &&
          cur == loops_.loops()[static_cast<size_t>(activeLoop)].header) {
        return;
      }
      CYP_CHECK(cur >= 0 && cur < cfg_.numBlocks(),
                f_.name << ": walk out of range at block " << cur);
      // Entering a loop whose header is `cur`?
      const int loopIdx = loops_.loopAtHeader(cur);
      if (loopIdx != -1 && loopIdx != activeLoop) {
        cur = enterLoop(loopIdx, parent, depth);
        continue;
      }
      CYP_CHECK(visited_.insert(cur).second,
                f_.name << ": block " << cur
                        << " reached twice — unsupported (irreducible?) CFG");
      const ir::BasicBlock& b = block(cur);
      appendLeaves(b, parent);

      switch (b.term.kind) {
        case ir::TermKind::Ret:
          return;
        case ir::TermKind::Br: {
          cur = b.term.target;
          break;
        }
        case ir::TermKind::CondBr: {
          cur = enterBranch(cur, activeLoop, parent, depth);
          break;
        }
      }
    }
  }

  /// Handle a loop whose header is the current block; returns the block
  /// where execution continues after the loop.
  int enterLoop(int loopIdx, Node* parent, int depth) {
    const Loop& L = loops_.loops()[static_cast<size_t>(loopIdx)];
    const int header = L.header;
    const ir::BasicBlock& hb = block(header);
    CYP_CHECK(hb.term.kind == ir::TermKind::CondBr,
              f_.name << ": loop header " << header
                      << " is not a conditional — unsupported loop shape");
    CYP_CHECK(visited_.insert(header).second,
              f_.name << ": loop header " << header << " reached twice");
    // Loop headers produced by the frontend carry no instructions that
    // could emit events; any MPI call in a header would escape the loop
    // vertex, so reject it loudly.
    for (const ir::Instr& i : hb.instrs) {
      CYP_CHECK(i.kind != ir::InstrKind::MpiCall && i.kind != ir::InstrKind::Call,
                f_.name << ": call inside loop-header block is unsupported");
    }

    const auto succs = hb.successors();
    int bodyEntry = -1, exitTarget = -1;
    int bodyIndex = -1, exitIndex = -1;
    for (size_t i = 0; i < succs.size(); ++i) {
      if (L.contains(succs[i])) {
        CYP_CHECK(bodyEntry == -1,
                  f_.name << ": loop header with two in-loop successors");
        bodyEntry = succs[i];
        bodyIndex = static_cast<int>(i);
      } else {
        CYP_CHECK(exitTarget == -1,
                  f_.name << ": loop header with two exit successors");
        exitTarget = succs[i];
        exitIndex = static_cast<int>(i);
      }
    }
    CYP_CHECK(bodyEntry != -1 && exitTarget != -1,
              f_.name << ": malformed loop at header " << header);

    auto loopNode = std::make_unique<Node>();
    loopNode->kind = NodeKind::Loop;
    loopNode->structId = nextStructId_++;
    loopNode->func = f_.name;
    loopNode->label = "loop@" + f_.name + "#" + std::to_string(loopNode->structId);
    ++numLoops_;

    // Enter fires once per iteration (header -> body edge); Exit fires on
    // every edge leaving the loop body.
    mark(header, bodyIndex, MarkerType::Enter, loopNode->structId, depth);
    for (const auto& [from, to] : L.exitEdges) {
      mark(from, succIndexOf(from, to), MarkerType::Exit, loopNode->structId, depth);
    }
    (void)exitIndex;

    Node* raw = loopNode.get();
    parent->addChild(std::move(loopNode));
    walk(bodyEntry, header, loopIdx, raw, depth + 1);
    return exitTarget;
  }

  /// Handle a non-header conditional; returns the join block (or the
  /// post-dominator virtual exit when both arms return).
  int enterBranch(int branchBlock, int activeLoop, Node* parent, int depth) {
    const ir::BasicBlock& b = block(branchBlock);
    const int join = post_.idom(branchBlock);
    const auto succs = b.successors();
    CYP_CHECK(succs.size() == 2, "conditional with wrong successor count");

    for (int path = 0; path < 2; ++path) {
      const int entry = succs[static_cast<size_t>(path)];
      auto pathNode = std::make_unique<Node>();
      pathNode->kind = NodeKind::Branch;
      pathNode->structId = nextStructId_++;
      pathNode->pathIndex = path;
      pathNode->func = f_.name;
      pathNode->label = "br@" + f_.name + "#" + std::to_string(pathNode->structId) +
                        (path == 0 ? ".then" : ".else");
      ++numBranchPaths_;

      if (entry == join) {
        // Empty arm: enter and exit on the branch edge itself.
        mark(branchBlock, path, MarkerType::Enter, pathNode->structId, depth);
        mark(branchBlock, path, MarkerType::Exit, pathNode->structId, depth);
      } else {
        mark(branchBlock, path, MarkerType::Enter, pathNode->structId, depth);
        walk(entry, join, activeLoop, pathNode.get(), depth + 1);
        // Exit on every edge into the join coming from this arm (blocks
        // dominated by the arm's entry). Arms ending in Ret have no such
        // edge; the runtime auto-closes structures on function return.
        if (join != post_.root()) {
          for (int pred : cfg_.preds[static_cast<size_t>(join)]) {
            if (pred == branchBlock || !dom_.reachable(pred)) continue;
            if (!dom_.dominates(entry, pred)) continue;
            const auto predSuccs = block(pred).successors();
            for (size_t si = 0; si < predSuccs.size(); ++si) {
              if (predSuccs[si] == join) {
                mark(pred, static_cast<int>(si), MarkerType::Exit,
                     pathNode->structId, depth);
              }
            }
          }
        }
      }
      parent->addChild(std::move(pathNode));
    }
    return join;
  }
};

/// hasComm fixed point over the call graph: a function can emit events
/// if it contains an MPI call or (transitively) calls one that does.
std::map<std::string, bool> computeHasComm(const ir::Module& m) {
  std::map<std::string, bool> hasComm;
  for (const auto& f : m.functions) {
    bool direct = false;
    for (const auto& b : f->blocks)
      for (const auto& i : b.instrs)
        if (i.kind == ir::InstrKind::MpiCall) direct = true;
    hasComm[f->name] = direct;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& f : m.functions) {
      if (hasComm[f->name]) continue;
      for (const auto& b : f->blocks) {
        for (const auto& i : b.instrs) {
          if (i.kind == ir::InstrKind::Call && hasComm[i.callee]) {
            hasComm[f->name] = true;
            changed = true;
          }
        }
      }
    }
  }
  return hasComm;
}

/// Pre-inline prune (paper §III-B): drop call placeholders to comm-free
/// functions, then bottom-up drop structure nodes with no surviving
/// children (equivalent to the paper's iterative leaf-deletion DFS).
void pruneIntra(Node* n, const std::map<std::string, bool>& hasComm) {
  auto& kids = n->children;
  for (auto& c : kids) pruneIntra(c.get(), hasComm);
  kids.erase(std::remove_if(kids.begin(), kids.end(),
                            [&](const std::unique_ptr<Node>& c) {
                              switch (c->kind) {
                                case NodeKind::Comm:
                                  return false;
                                case NodeKind::Call:
                                  return !hasComm.at(c->func);
                                case NodeKind::Loop:
                                case NodeKind::Branch:
                                  return c->children.empty();
                                case NodeKind::Root:
                                  return false;
                              }
                              return false;
                            }),
             kids.end());
}

void collectSurvivingStructs(const Node* n, std::set<int>& out) {
  if (n->kind == NodeKind::Loop || n->kind == NodeKind::Branch)
    if (n->structId >= 0) out.insert(n->structId);
  for (const auto& c : n->children) collectSurvivingStructs(c.get(), out);
}

std::unique_ptr<Node> cloneNode(const Node& n) {
  auto c = std::make_unique<Node>();
  c->kind = n.kind;
  c->structId = n.structId;
  c->pathIndex = n.pathIndex;
  c->callSiteId = n.callSiteId;
  c->op = n.op;
  c->callInstrId = n.callInstrId;
  c->recursionLoop = n.recursionLoop;
  c->func = n.func;
  c->label = n.label;
  for (const auto& k : n.children) c->addChild(cloneNode(*k));
  return c;
}

class Inliner {
 public:
  Inliner(const std::map<std::string, FunctionCst>& intra, const CallGraph& pcg)
      : intra_(intra), pcg_(pcg) {}

  /// Build the inlined content of function `name` into `dest`.
  void inlineInto(Node* dest, const std::string& name,
                  std::vector<std::string>& path) {
    const FunctionCst& src = intra_.at(name);
    path.push_back(name);
    for (const auto& child : src.tree->children) {
      appendInlined(dest, *child, path);
    }
    path.pop_back();
  }

  bool isRecursive(const std::string& name) const {
    const int node = pcg_.nodeOf(name);
    return node >= 0 && pcg_.isRecursive(node);
  }

 private:
  const std::map<std::string, FunctionCst>& intra_;
  const CallGraph& pcg_;

  void appendInlined(Node* dest, const Node& src, std::vector<std::string>& path) {
    if (src.kind == NodeKind::Call) {
      const std::string& callee = src.func;
      if (std::find(path.begin(), path.end(), callee) != path.end()) {
        // Recursive back edge: elided; at runtime the call re-enters the
        // ancestor instance's pseudo-loop as a new iteration.
        return;
      }
      auto inst = std::make_unique<Node>();
      inst->kind = NodeKind::Call;
      inst->callInstrId = src.callInstrId;
      inst->func = callee;
      inst->label = "inline " + callee;
      Node* content = inst.get();
      if (isRecursive(callee)) {
        // Paper Figure 8: pseudo-loop at the entry of the recursive
        // function; recursion depth becomes the iteration count.
        auto pseudo = std::make_unique<Node>();
        pseudo->kind = NodeKind::Loop;
        pseudo->recursionLoop = true;
        pseudo->func = callee;
        pseudo->label = "recursion-loop " + callee;
        content = inst->addChild(std::move(pseudo));
      }
      inlineInto(content, callee, path);
      dest->addChild(std::move(inst));
      return;
    }
    auto copy = std::make_unique<Node>();
    copy->kind = src.kind;
    copy->structId = src.structId;
    copy->pathIndex = src.pathIndex;
    copy->callSiteId = src.callSiteId;
    copy->op = src.op;
    copy->callInstrId = src.callInstrId;
    copy->recursionLoop = src.recursionLoop;
    copy->func = src.func;
    copy->label = src.label;
    Node* raw = dest->addChild(std::move(copy));
    for (const auto& k : src.children) appendInlined(raw, *k, path);
  }
};

/// Apply the (filtered) marker plan to the IR: split each marked edge
/// with a fresh block holding the markers in nesting order.
void applyMarkers(ir::Function& f, std::vector<EdgeMarker> markers,
                  const std::set<int>& surviving) {
  markers.erase(std::remove_if(markers.begin(), markers.end(),
                               [&](const EdgeMarker& m) {
                                 return !surviving.count(m.structId);
                               }),
                markers.end());
  if (markers.empty()) return;

  // Group by edge.
  std::map<std::pair<int, int>, std::vector<EdgeMarker>> byEdge;
  for (const EdgeMarker& m : markers)
    byEdge[{m.fromBlock, m.succIndex}].push_back(m);

  for (auto& [edge, list] : byEdge) {
    // Exits first (innermost structure first), then enters (outermost
    // first), so nesting is preserved when one edge carries several.
    std::stable_sort(list.begin(), list.end(),
                     [](const EdgeMarker& a, const EdgeMarker& b) {
                       const bool ax = a.type == MarkerType::Exit;
                       const bool bx = b.type == MarkerType::Exit;
                       if (ax != bx) return ax;  // exits before enters
                       if (ax) return a.depth > b.depth;
                       return a.depth < b.depth;
                     });
    auto [from, succIndex] = edge;
    ir::Terminator& term = f.blocks[static_cast<size_t>(from)].term;
    int* slot = nullptr;
    if (term.kind == ir::TermKind::Br) {
      CYP_CHECK(succIndex == 0, "marker on bad Br successor index");
      slot = &term.target;
    } else {
      CYP_CHECK(term.kind == ir::TermKind::CondBr, "marker on Ret edge");
      slot = succIndex == 0 ? &term.target : &term.elseTarget;
    }
    const int target = *slot;
    const int mb = f.addBlock("markers." + std::to_string(from) + "." +
                              std::to_string(succIndex));
    for (const EdgeMarker& m : list) {
      f.blocks[static_cast<size_t>(mb)].instrs.push_back(
          m.type == MarkerType::Enter ? ir::Instr::structEnter(m.structId)
                                      : ir::Instr::structExit(m.structId));
    }
    f.blocks[static_cast<size_t>(mb)].term = ir::Terminator::br(target);
    // term reference may be invalidated by addBlock; re-fetch.
    ir::Terminator& term2 = f.blocks[static_cast<size_t>(from)].term;
    int* slot2 = term2.kind == ir::TermKind::Br
                     ? &term2.target
                     : (succIndex == 0 ? &term2.target : &term2.elseTarget);
    CYP_CHECK(*slot2 == target, "edge retarget raced");
    *slot2 = mb;
  }
}

void countNodes(const Node& n, CompileStats& stats) {
  ++stats.numNodes;
  switch (n.kind) {
    case NodeKind::Loop: ++stats.numLoops; break;
    case NodeKind::Branch: ++stats.numBranches; break;
    case NodeKind::Comm: ++stats.numCommVertices; break;
    default: break;
  }
  for (const auto& c : n.children) countNodes(*c, stats);
}

StaticResult build(ir::Module& m, bool instrument) {
  Stopwatch watch;
  StaticResult out;

  // Phase 1: intra-procedural analysis per function (Algorithm 1).
  std::map<std::string, FunctionCst> intra;
  for (const auto& f : m.functions) {
    intra.emplace(f->name, FunctionAnalyzer(*f).run());
  }

  // Phase 2: prune comm-free subtrees (paper §III-B) before planning
  // instrumentation, so only comm-relevant structures are bracketed.
  const auto hasComm = computeHasComm(m);
  std::map<std::string, std::set<int>> surviving;
  for (auto& [name, fc] : intra) {
    pruneIntra(fc.tree.get(), hasComm);
    std::set<int> keep;
    collectSurvivingStructs(fc.tree.get(), keep);
    surviving[name] = std::move(keep);
  }

  // Phase 3: inter-procedural inlining over the PCG (Algorithm 2).
  const CallGraph pcg = CallGraph::build(m);
  Inliner inliner(intra, pcg);
  auto root = std::make_unique<Node>();
  root->kind = NodeKind::Root;
  root->func = m.entry;
  root->label = "program";
  Node* content = root.get();
  if (inliner.isRecursive(m.entry)) {
    auto pseudo = std::make_unique<Node>();
    pseudo->kind = NodeKind::Loop;
    pseudo->recursionLoop = true;
    pseudo->func = m.entry;
    pseudo->label = "recursion-loop " + m.entry;
    content = root->addChild(std::move(pseudo));
  }
  std::vector<std::string> path;
  inliner.inlineInto(content, m.entry, path);
  out.cst.reset(std::move(root));

  // Phase 4: instrumentation by edge splitting.
  if (instrument) {
    for (const auto& f : m.functions) {
      applyMarkers(*f, intra.at(f->name).markers, surviving.at(f->name));
    }
    ir::verify(m);
  }

  out.stats.cstSeconds = watch.seconds();
  out.stats.numFunctions = static_cast<int>(m.functions.size());
  countNodes(*out.cst.root(), out.stats);
  return out;
}

}  // namespace

StaticResult analyzeAndInstrument(ir::Module& m) { return build(m, true); }

Tree buildProgramCst(const ir::Module& m) {
  // The analysis itself never mutates the module; reuse build() with
  // instrumentation disabled.
  return build(const_cast<ir::Module&>(m), false).cst;
}

}  // namespace cypress::cst
