// CST construction and IR instrumentation (paper §III).
//
// Per function, a single structured walk over the CFG (using dominators,
// post-dominators and dominator-based natural loops) produces BOTH the
// intra-procedural CST (paper Algorithm 1) and the instrumentation plan:
// which CFG edges receive struct_enter/struct_exit markers (the paper's
// PMPI_COMM_Structure / PMPI_COMM_Structure_Exit pair, Figure 9). Doing
// both in one pass guarantees the markers and the tree agree exactly.
//
// The inter-procedural pass (paper Algorithm 2) inlines callee CSTs
// bottom-up over the program call graph, converting recursive calls into
// pseudo-loops (paper Figure 8, after Emami et al.): each recursive
// function instance is wrapped in a Loop vertex with recursionLoop=true,
// and calls back to an ancestor instance are elided — at runtime they
// re-enter the ancestor's pseudo-loop as a new iteration.
//
// Pruning (paper §III-B) removes every vertex that cannot produce a
// communication event *before* instrumentation is planned, so only
// comm-relevant structures are bracketed at runtime.
#pragma once

#include <string>
#include <vector>

#include "cst/tree.hpp"
#include "ir/ir.hpp"

namespace cypress::cst {

/// Static-phase statistics (Table I and diagnostics).
struct CompileStats {
  double cstSeconds = 0.0;  // time spent building the CST + instrumenting
  int numFunctions = 0;
  int numLoops = 0;         // loop vertices in the final tree
  int numBranches = 0;      // branch-path vertices in the final tree
  int numCommVertices = 0;  // communication leaves in the final tree
  int numNodes = 0;         // total vertices (incl. root / call instances)
};

struct StaticResult {
  Tree cst;
  CompileStats stats;
};

/// Build the final program CST and instrument `m` in place with
/// struct_enter/struct_exit markers. Requires a verified module with
/// numbered call sites. Throws cypress::Error on CFG shapes the
/// structured builder does not support (irreducible control flow).
StaticResult analyzeAndInstrument(ir::Module& m);

/// Build the CST without modifying the IR (analysis-only; used by tests
/// and the compile-overhead bench).
Tree buildProgramCst(const ir::Module& m);

}  // namespace cypress::cst
