#include "cst/tree.hpp"

#include <cctype>
#include <cstdint>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace cypress::cst {

const char* nodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::Root: return "root";
    case NodeKind::Loop: return "loop";
    case NodeKind::Branch: return "branch";
    case NodeKind::Call: return "call";
    case NodeKind::Comm: return "comm";
  }
  return "?";
}

void Tree::reset(std::unique_ptr<Node> root) {
  root_ = std::move(root);
  byGid_.clear();
  CYP_CHECK(root_ != nullptr, "CST reset with null root");
  // Pre-order GID assignment (paper §III-A).
  std::vector<Node*> stack = {root_.get()};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    n->gid = static_cast<int>(byGid_.size());
    byGid_.push_back(n);
    for (auto it = n->children.rbegin(); it != n->children.rend(); ++it) {
      (*it)->parent = n;
      stack.push_back(it->get());
    }
  }
}

const Node* Tree::childByStruct(const Node* ctx, int structId, int pathIndex) {
  for (const auto& c : ctx->children) {
    if ((c->kind == NodeKind::Loop || c->kind == NodeKind::Branch) &&
        c->structId == structId &&
        (pathIndex < 0 || c->kind == NodeKind::Loop ||
         c->pathIndex == pathIndex)) {
      return c.get();
    }
  }
  return nullptr;
}

const Node* Tree::childByCallSite(const Node* ctx, int callSiteId) {
  for (const auto& c : ctx->children)
    if (c->kind == NodeKind::Comm && c->callSiteId == callSiteId) return c.get();
  return nullptr;
}

const Node* Tree::childByCallInstr(const Node* ctx, int callInstrId) {
  for (const auto& c : ctx->children)
    if (c->kind == NodeKind::Call && c->callInstrId == callInstrId) return c.get();
  return nullptr;
}

const Node* Tree::enclosingRecursionLoop(const Node* ctx, const std::string& func) {
  for (const Node* n = ctx; n != nullptr; n = n->parent)
    if (n->kind == NodeKind::Loop && n->recursionLoop && n->func == func) return n;
  return nullptr;
}

namespace {

void dump(const Node& n, int depth, std::ostringstream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << n.gid << ":" << nodeKindName(n.kind);
  switch (n.kind) {
    case NodeKind::Loop:
      os << " s" << n.structId;
      if (n.recursionLoop) os << " rec";
      break;
    case NodeKind::Branch:
      os << " s" << n.structId << " path" << n.pathIndex;
      break;
    case NodeKind::Comm:
      os << " " << ir::mpiOpName(n.op) << " site" << n.callSiteId;
      break;
    case NodeKind::Call:
      os << " ci" << n.callInstrId;
      break;
    case NodeKind::Root:
      break;
  }
  if (!n.label.empty()) os << " (" << n.label << ")";
  os << "\n";
  for (const auto& c : n.children) dump(*c, depth + 1, os);
}

void writeText(const Node& n, std::ostringstream& os) {
  os << '(' << static_cast<int>(n.kind) << ' ' << n.structId << ' '
     << n.pathIndex << ' ' << n.callSiteId << ' ' << static_cast<int>(n.op)
     << ' ' << n.callInstrId << ' ' << (n.recursionLoop ? 1 : 0) << ' '
     << n.func << '|' << n.label << '|';
  for (const auto& c : n.children) writeText(*c, os);
  os << ')';
}

struct TextParser {
  /// Nesting bound: legitimate CSTs are as deep as the program's loop
  /// and call structure; a parenthesis bomb in a corrupt stream would
  /// otherwise recurse until the stack overflows. 256 is far above any
  /// real program and shallow enough to be safe even under sanitizer
  /// builds with oversized stack frames.
  static constexpr int kMaxDepth = 256;

  const std::string& s;
  size_t pos = 0;
  int depth = 0;

  char peek() const { return pos < s.size() ? s[pos] : '\0'; }
  void expect(char c) {
    CYP_CHECK(peek() == c, "CST text: expected '" << c << "' at " << pos);
    ++pos;
  }
  int64_t integer() {
    bool neg = false;
    if (peek() == '-') {
      neg = true;
      ++pos;
    }
    CYP_CHECK(isdigit(static_cast<unsigned char>(peek())), "CST text: bad int at " << pos);
    int64_t v = 0;
    while (isdigit(static_cast<unsigned char>(peek()))) {
      const int64_t d = s[pos++] - '0';
      CYP_CHECK(v <= (INT64_MAX - d) / 10, "CST text: integer overflow at " << pos);
      v = v * 10 + d;
    }
    return neg ? -v : v;
  }
  void skipSpace() {
    while (peek() == ' ') ++pos;
  }
  std::string untilPipe() {
    std::string out;
    while (peek() != '|') {
      CYP_CHECK(peek() != '\0', "CST text: unterminated string at " << pos);
      out.push_back(s[pos++]);
    }
    ++pos;
    return out;
  }

  std::unique_ptr<Node> node() {
    CYP_CHECK(depth < kMaxDepth, "CST text: nesting deeper than " << kMaxDepth);
    ++depth;
    expect('(');
    auto n = std::make_unique<Node>();
    const int64_t kind = integer();
    CYP_CHECK(kind >= 0 && kind <= static_cast<int64_t>(NodeKind::Comm),
              "CST text: bad node kind " << kind << " at " << pos);
    n->kind = static_cast<NodeKind>(kind);
    skipSpace();
    n->structId = static_cast<int>(integer());
    skipSpace();
    n->pathIndex = static_cast<int>(integer());
    skipSpace();
    n->callSiteId = static_cast<int>(integer());
    skipSpace();
    const int64_t op = integer();
    CYP_CHECK(op >= 0 && op <= 255 && ir::isValidMpiOp(static_cast<uint8_t>(op)),
              "CST text: bad op " << op << " at " << pos);
    n->op = static_cast<ir::MpiOp>(op);
    skipSpace();
    n->callInstrId = static_cast<int>(integer());
    skipSpace();
    n->recursionLoop = integer() != 0;
    skipSpace();
    n->func = untilPipe();
    n->label = untilPipe();
    while (peek() == '(') n->addChild(node());
    expect(')');
    --depth;
    return n;
  }
};

size_t nodeBytes(const Node& n) {
  size_t total = sizeof(Node) + n.func.capacity() + n.label.capacity() +
                 n.children.capacity() * sizeof(std::unique_ptr<Node>);
  for (const auto& c : n.children) total += nodeBytes(*c);
  return total;
}

}  // namespace

std::string Tree::toString() const {
  std::ostringstream os;
  if (root_) dump(*root_, 0, os);
  return os.str();
}

std::string Tree::toText() const {
  std::ostringstream os;
  os << "CST1 ";
  if (root_) writeText(*root_, os);
  return os.str();
}

Tree Tree::fromText(const std::string& text) {
  CYP_CHECK(text.rfind("CST1 ", 0) == 0, "CST text: bad header");
  TextParser p{text, 5};
  Tree t;
  t.reset(p.node());
  CYP_CHECK(p.pos == text.size(), "CST text: trailing bytes at " << p.pos);
  return t;
}

size_t Tree::memoryBytes() const {
  size_t total = sizeof(*this) + byGid_.capacity() * sizeof(Node*);
  if (root_) total += nodeBytes(*root_);
  return total;
}

}  // namespace cypress::cst
