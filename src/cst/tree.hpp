// The Communication Structure Tree (CST), paper §III.
//
// An ordered tree whose pre-order traversal matches the static program
// structure. Leaf nodes are MPI communication invocations; interior
// nodes are loops, branch paths, inlined function instances (created by
// the inter-procedural pass) and the virtual root. Every vertex carries
// a pre-order GID.
//
// Runtime navigation contract: the dynamic module tracks a "current
// context" vertex. Structure markers in the IR carry *function-local*
// structure ids; entering a structure resolves that id among the direct
// children of the current context, entering a user function resolves the
// Call instruction's id the same way. This is how one static program
// location maps onto the correct CST instance even when a function is
// inlined at many call sites.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace cypress::cst {

enum class NodeKind : uint8_t {
  Root,      // virtual root
  Loop,      // natural loop, or the pseudo-loop of a recursive function
  Branch,    // one path (arm) of a conditional
  Call,      // inlined user-function instance
  Comm,      // MPI communication invocation (leaf)
};

const char* nodeKindName(NodeKind k);

struct Node {
  NodeKind kind = NodeKind::Root;
  int gid = -1;  // pre-order id over the final tree

  // Loop / Branch: function-local structure id (matches the IR's
  // struct_enter/struct_exit markers in `func`).
  int structId = -1;
  // Branch: successor index of the conditional (0 = taken, 1 = not).
  int pathIndex = -1;
  // Comm: module-unique MPI call-site id and operation.
  int callSiteId = -1;
  ir::MpiOp op = ir::MpiOp::Barrier;
  // Call: module-unique id of the Call instruction this instance inlines.
  int callInstrId = -1;
  // Loop: true when this is the pseudo-loop of a recursive function
  // (paper Figure 8); recursive re-entry counts as an iteration.
  bool recursionLoop = false;

  std::string func;   // defining function (diagnostics + marker scoping)
  std::string label;  // human-readable provenance, e.g. "loop@main#1"

  Node* parent = nullptr;
  std::vector<std::unique_ptr<Node>> children;

  Node* addChild(std::unique_ptr<Node> c) {
    c->parent = this;
    children.push_back(std::move(c));
    return children.back().get();
  }

  bool isLeafKind() const { return kind == NodeKind::Comm; }
};

/// A finalized program CST with pre-order GIDs and per-node child lookup
/// indexes for O(log c) runtime navigation.
class Tree {
 public:
  Tree() = default;
  explicit Tree(std::unique_ptr<Node> root) { reset(std::move(root)); }

  Tree(Tree&&) = default;
  Tree& operator=(Tree&&) = default;

  /// Re-root and recompute GIDs + lookup tables.
  void reset(std::unique_ptr<Node> root);

  const Node* root() const { return root_.get(); }
  Node* root() { return root_.get(); }
  int numNodes() const { return static_cast<int>(byGid_.size()); }
  const Node* byGid(int gid) const { return byGid_[static_cast<size_t>(gid)]; }

  /// Direct child of `ctx` that is the Loop/Branch structure with the
  /// given function-local id (entered path disambiguated by pathIndex for
  /// branches). Returns nullptr when the structure was pruned.
  static const Node* childByStruct(const Node* ctx, int structId, int pathIndex);

  /// Direct child Comm leaf for an MPI call site; nullptr if pruned.
  static const Node* childByCallSite(const Node* ctx, int callSiteId);

  /// Direct child Call instance for a Call instruction; nullptr if pruned.
  static const Node* childByCallInstr(const Node* ctx, int callInstrId);

  /// Nearest ancestor (including ctx) that is the recursion pseudo-loop
  /// of function `func`; nullptr when not currently inside it.
  static const Node* enclosingRecursionLoop(const Node* ctx, const std::string& func);

  /// Human-readable dump (indented, one node per line), for tests.
  std::string toString() const;

  /// Compact text serialization ("compressed text file" of the paper when
  /// combined with flate); parse with fromText.
  std::string toText() const;
  static Tree fromText(const std::string& text);

  /// Approximate heap footprint, for memory-overhead accounting.
  size_t memoryBytes() const;

 private:
  std::unique_ptr<Node> root_;
  std::vector<Node*> byGid_;
};

}  // namespace cypress::cst
