#include "query/engine.hpp"

#include <map>

#include "query/json.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace cypress::query {

namespace {

using core::CommRecord;
using core::LeafEntry;
using core::MergedCtt;
using core::SeqEntry;

bool isSend(ir::MpiOp op) {
  return op == ir::MpiOp::Send || op == ir::MpiOp::Isend;
}
bool isRecv(ir::MpiOp op) {
  return op == ir::MpiOp::Recv || op == ir::MpiOp::Irecv;
}
bool isWait(ir::MpiOp op) {
  return op == ir::MpiOp::Wait || op == ir::MpiOp::Waitall ||
         op == ir::MpiOp::Waitany || op == ir::MpiOp::Waitsome;
}
bool isCollectiveClass(ir::MpiOp op) {
  return ir::isCollective(op) || op == ir::MpiOp::CommSplit;
}

const SectionSeq* seqFor(const std::vector<SeqEntry>& entries, int32_t rank) {
  for (const SeqEntry& e : entries)
    if (e.ranks.contains(rank)) return &e.seq;
  return nullptr;
}

const LeafEntry* leafFor(const std::vector<LeafEntry>& entries, int32_t rank) {
  for (const LeafEntry& e : entries)
    if (e.ranks.contains(rank)) return &e;
  return nullptr;
}

/// Visit every CommRecord covering `rank`, in gid order.
template <typename Fn>
void forEachRecord(const MergedCtt& m, int32_t rank, Fn fn) {
  const int n = m.cst().numNodes();
  for (int g = 0; g < n; ++g) {
    const LeafEntry* le = leafFor(m.leafEntries(g), rank);
    if (le == nullptr) continue;
    for (const CommRecord& rec : le->records) fn(rec);
  }
}

SummaryRow summaryForRank(const MergedCtt& m, int32_t rank) {
  SummaryRow row;
  row.rank = rank;
  forEachRecord(m, rank, [&](const CommRecord& rec) {
    row.events += rec.count;
    if (isSend(rec.op)) {
      row.sends += rec.count;
      row.sendBytes += rec.bytes * static_cast<int64_t>(rec.count);
    } else if (isRecv(rec.op)) {
      row.recvs += rec.count;
    } else if (isWait(rec.op)) {
      row.waits += rec.count;
    } else if (isCollectiveClass(rec.op)) {
      row.collectives += rec.count;
    }
  });
  return row;
}

RankHistogram histogramForRank(const MergedCtt& m, int32_t rank) {
  RankHistogram row;
  row.rank = rank;
  std::map<int64_t, uint64_t> buckets;
  forEachRecord(m, rank, [&](const CommRecord& rec) {
    if (!isSend(rec.op)) return;
    buckets[rec.bytes] += rec.count;
    row.msgs += rec.count;
    row.bytes += rec.bytes * static_cast<int64_t>(rec.count);
  });
  row.buckets.reserve(buckets.size());
  for (const auto& [bytes, msgs] : buckets)
    row.buckets.push_back(HistBucket{bytes, msgs});
  return row;
}

std::vector<MatrixCell> matrixForRank(const MergedCtt& m, int32_t rank) {
  std::map<int32_t, MatrixCell> cells;  // dst -> cell
  forEachRecord(m, rank, [&](const CommRecord& rec) {
    if (!isSend(rec.op)) return;
    MatrixCell& c = cells[rec.peer.decode(rank)];
    c.msgs += rec.count;
    c.bytes += rec.bytes * static_cast<int64_t>(rec.count);
  });
  std::vector<MatrixCell> out;
  out.reserve(cells.size());
  for (auto& [dst, c] : cells) {
    c.src = rank;
    c.dst = dst;
    out.push_back(c);
  }
  return out;
}

// Raw-event twins of the per-rank accumulators above. They classify
// events with the same predicates, so compressed and expanded answers
// diverge only if the engine's count arithmetic is wrong.

SummaryRow summaryForEvents(int32_t rank,
                            const std::vector<trace::Event>& events) {
  SummaryRow row;
  row.rank = rank;
  for (const trace::Event& e : events) {
    ++row.events;
    if (isSend(e.op)) {
      ++row.sends;
      row.sendBytes += e.bytes;
    } else if (isRecv(e.op)) {
      ++row.recvs;
    } else if (isWait(e.op)) {
      ++row.waits;
    } else if (isCollectiveClass(e.op)) {
      ++row.collectives;
    }
  }
  return row;
}

RankHistogram histogramForEvents(int32_t rank,
                                 const std::vector<trace::Event>& events) {
  RankHistogram row;
  row.rank = rank;
  std::map<int64_t, uint64_t> buckets;
  for (const trace::Event& e : events) {
    if (!isSend(e.op)) continue;
    buckets[e.bytes] += 1;
    ++row.msgs;
    row.bytes += e.bytes;
  }
  row.buckets.reserve(buckets.size());
  for (const auto& [bytes, msgs] : buckets)
    row.buckets.push_back(HistBucket{bytes, msgs});
  return row;
}

std::vector<MatrixCell> matrixForEvents(int32_t rank,
                                        const std::vector<trace::Event>& events) {
  std::map<int32_t, MatrixCell> cells;
  for (const trace::Event& e : events) {
    if (!isSend(e.op)) continue;
    MatrixCell& c = cells[e.peer];
    c.msgs += 1;
    c.bytes += e.bytes;
  }
  std::vector<MatrixCell> out;
  out.reserve(cells.size());
  for (auto& [dst, c] : cells) {
    c.src = rank;
    c.dst = dst;
    out.push_back(c);
  }
  return out;
}

void addCollectives(std::map<ir::MpiOp, CollRow>& rows, ir::MpiOp op,
                    int64_t bytes, uint64_t calls) {
  if (!isCollectiveClass(op)) return;
  CollRow& row = rows[op];
  row.op = op;
  row.calls += calls;
  row.bytes += bytes * static_cast<int64_t>(calls);
}

std::vector<CollRow> collRows(const std::map<ir::MpiOp, CollRow>& rows) {
  std::vector<CollRow> out;
  out.reserve(rows.size());
  for (const auto& [op, row] : rows) out.push_back(row);
  return out;
}

}  // namespace

RankSet coveredRanks(const MergedCtt& m) {
  RankSet all;
  const int n = m.cst().numNodes();
  for (int g = 0; g < n; ++g) {
    for (const SeqEntry& e : m.loopEntries(g)) all.unite(e.ranks);
    for (const SeqEntry& e : m.takenEntries(g)) all.unite(e.ranks);
    for (const LeafEntry& e : m.leafEntries(g)) all.unite(e.ranks);
  }
  return all;
}

std::vector<SummaryRow> summary(const MergedCtt& m, int threads) {
  const RankSet covered = coveredRanks(m);
  const std::vector<int32_t>& ranks = covered.ranks();
  std::vector<SummaryRow> out(ranks.size());
  parallelFor(ranks.size(), threads,
              [&](size_t i) { out[i] = summaryForRank(m, ranks[i]); });
  return out;
}

std::vector<RankHistogram> histogram(const MergedCtt& m, int threads) {
  const RankSet covered = coveredRanks(m);
  const std::vector<int32_t>& ranks = covered.ranks();
  std::vector<RankHistogram> out(ranks.size());
  parallelFor(ranks.size(), threads,
              [&](size_t i) { out[i] = histogramForRank(m, ranks[i]); });
  return out;
}

std::vector<MatrixCell> commMatrix(const MergedCtt& m, int threads) {
  const RankSet covered = coveredRanks(m);
  const std::vector<int32_t>& ranks = covered.ranks();
  std::vector<std::vector<MatrixCell>> rows(ranks.size());
  parallelFor(ranks.size(), threads,
              [&](size_t i) { rows[i] = matrixForRank(m, ranks[i]); });
  std::vector<MatrixCell> out;
  for (const auto& r : rows) out.insert(out.end(), r.begin(), r.end());
  return out;
}

std::vector<CollRow> collectives(const MergedCtt& m) {
  std::map<ir::MpiOp, CollRow> rows;
  const int n = m.cst().numNodes();
  for (int g = 0; g < n; ++g) {
    for (const LeafEntry& e : m.leafEntries(g)) {
      for (const CommRecord& rec : e.records) {
        addCollectives(rows, rec.op, rec.bytes,
                       rec.count * static_cast<uint64_t>(e.ranks.size()));
      }
    }
  }
  return collRows(rows);
}

std::vector<SummaryRow> summaryFromRaw(const trace::RawTrace& t) {
  std::vector<SummaryRow> out;
  out.reserve(t.ranks.size());
  for (const trace::RankTrace& rt : t.ranks)
    out.push_back(summaryForEvents(rt.rank, rt.events));
  return out;
}

std::vector<RankHistogram> histogramFromRaw(const trace::RawTrace& t) {
  std::vector<RankHistogram> out;
  out.reserve(t.ranks.size());
  for (const trace::RankTrace& rt : t.ranks)
    out.push_back(histogramForEvents(rt.rank, rt.events));
  return out;
}

std::vector<MatrixCell> commMatrixFromRaw(const trace::RawTrace& t) {
  std::vector<MatrixCell> out;
  for (const trace::RankTrace& rt : t.ranks) {
    const auto row = matrixForEvents(rt.rank, rt.events);
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

std::vector<CollRow> collectivesFromRaw(const trace::RawTrace& t) {
  std::map<ir::MpiOp, CollRow> rows;
  for (const trace::RankTrace& rt : t.ranks)
    for (const trace::Event& e : rt.events)
      addCollectives(rows, e.op, e.bytes, 1);
  return collRows(rows);
}

namespace {

bool subtreeHasComm(const cst::Node* n) {
  if (n->kind == cst::NodeKind::Comm) return true;
  for (const auto& c : n->children)
    if (subtreeHasComm(c.get())) return true;
  return false;
}

int findLoop(const cst::Node* n) {
  if (n->kind == cst::NodeKind::Loop && subtreeHasComm(n)) return n->gid;
  for (const auto& c : n->children) {
    const int g = findLoop(c.get());
    if (g >= 0) return g;
  }
  return -1;
}

/// Propagate the body-execution interval [e0, e1) of `n` down its
/// subtree, collecting matching send records. All interval maps are
/// SectionSeq range arithmetic — no per-event work anywhere.
void walkCallSites(const MergedCtt& m, const cst::Node* n, uint64_t e0,
                   uint64_t e1, int32_t src, int32_t dst,
                   std::vector<CallSiteHit>& hits) {
  if (e0 >= e1) return;
  for (const auto& childPtr : n->children) {
    const cst::Node* child = childPtr.get();
    switch (child->kind) {
      case cst::NodeKind::Comm: {
        const LeafEntry* le = leafFor(m.leafEntries(child->gid), src);
        if (le == nullptr) break;
        // Occurrences whose parent-execution ordinal falls inside the
        // interval form a contiguous occurrence-index range.
        const uint64_t o0 = le->execOrdinals.countBelow(static_cast<int64_t>(e0));
        const uint64_t o1 = le->execOrdinals.countBelow(static_cast<int64_t>(e1));
        if (o0 == o1) break;
        for (const CommRecord& rec : le->records) {
          if (!isSend(rec.op) || rec.peer.decode(src) != dst) continue;
          const uint64_t cnt = rec.ordinals.countInRange(
              static_cast<int64_t>(o0), static_cast<int64_t>(o1));
          if (cnt == 0) continue;
          hits.push_back(CallSiteHit{child->gid, rec.callSiteId, rec.op, cnt,
                                     rec.bytes * static_cast<int64_t>(cnt),
                                     rec.tag});
        }
        break;
      }
      case cst::NodeKind::Loop: {
        const SectionSeq* counts = seqFor(m.loopEntries(child->gid), src);
        if (counts == nullptr) break;
        // One activation per parent execution: the parent interval *is*
        // the activation-index interval; prefix sums over per-activation
        // iteration counts give the body-execution interval.
        const uint64_t a0 = e0 < counts->size() ? e0 : counts->size();
        const uint64_t a1 = e1 < counts->size() ? e1 : counts->size();
        walkCallSites(m, child, static_cast<uint64_t>(counts->prefixSum(a0)),
                      static_cast<uint64_t>(counts->prefixSum(a1)), src, dst,
                      hits);
        break;
      }
      case cst::NodeKind::Branch: {
        const SectionSeq* taken = seqFor(m.takenEntries(child->gid), src);
        if (taken == nullptr) break;
        // Branch outcomes are a non-decreasing list of parent-execution
        // ordinals; arm executions inside the interval are the indices
        // of the outcomes falling in it.
        walkCallSites(m, child, taken->countBelow(static_cast<int64_t>(e0)),
                      taken->countBelow(static_cast<int64_t>(e1)), src, dst,
                      hits);
        break;
      }
      case cst::NodeKind::Call:
        walkCallSites(m, child, e0, e1, src, dst, hits);
        break;
      case cst::NodeKind::Root:
        CYP_FAIL("query: nested root in CST");
    }
  }
}

}  // namespace

int defaultLoopGid(const cst::Tree& tree) { return findLoop(tree.root()); }

std::vector<CallSiteHit> callSitesAt(const MergedCtt& m, int32_t src,
                                     int32_t dst, uint64_t iter, int loopGid) {
  if (loopGid < 0) loopGid = defaultLoopGid(m.cst());
  CYP_CHECK(loopGid >= 0, "query: trace has no loop containing communication");
  CYP_CHECK(loopGid < m.cst().numNodes(),
            "query: gid " << loopGid << " out of range");
  const cst::Node* loop = m.cst().byGid(loopGid);
  CYP_CHECK(loop != nullptr && loop->kind == cst::NodeKind::Loop,
            "query: gid " << loopGid << " is not a loop vertex");
  const SectionSeq* counts = seqFor(m.loopEntries(loopGid), src);
  const uint64_t total =
      counts ? static_cast<uint64_t>(counts->sum()) : 0;
  CYP_CHECK(iter < total, "query: iteration " << iter << " out of range (rank "
                                              << src << " ran " << total
                                              << " iterations of gid "
                                              << loopGid << ")");
  std::vector<CallSiteHit> hits;
  // Body executions of the loop are globally ordinal-indexed across
  // activations, so global iteration k is exactly the interval [k, k+1).
  walkCallSites(m, loop, iter, iter + 1, src, dst, hits);
  return hits;
}

std::string renderSummary(const std::vector<SummaryRow>& rows,
                          const RankSet& lostRanks) {
  JsonWriter j;
  j.beginObject();
  j.key("query").value("summary");
  j.key("lostRanks").beginArray();
  for (int32_t r : lostRanks.ranks()) j.value(r);
  j.endArray();
  j.key("ranks").beginArray();
  for (const SummaryRow& r : rows) {
    j.beginObject();
    j.key("rank").value(r.rank);
    j.key("events").value(r.events);
    j.key("sends").value(r.sends);
    j.key("recvs").value(r.recvs);
    j.key("waits").value(r.waits);
    j.key("collectives").value(r.collectives);
    j.key("sendBytes").value(r.sendBytes);
    j.endObject();
  }
  j.endArray();
  j.endObject();
  return j.str();
}

std::string renderHistogram(const std::vector<RankHistogram>& rows) {
  JsonWriter j;
  j.beginObject();
  j.key("query").value("hist");
  j.key("ranks").beginArray();
  for (const RankHistogram& r : rows) {
    j.beginObject();
    j.key("rank").value(r.rank);
    j.key("msgs").value(r.msgs);
    j.key("bytes").value(r.bytes);
    j.key("buckets").beginArray();
    for (const HistBucket& b : r.buckets) {
      j.beginObject();
      j.key("bytes").value(b.bytes);
      j.key("msgs").value(b.msgs);
      j.endObject();
    }
    j.endArray();
    j.endObject();
  }
  j.endArray();
  j.endObject();
  return j.str();
}

std::string renderMatrix(const std::vector<MatrixCell>& cells) {
  JsonWriter j;
  j.beginObject();
  j.key("query").value("matrix");
  j.key("cells").beginArray();
  for (const MatrixCell& c : cells) {
    j.beginObject();
    j.key("src").value(c.src);
    j.key("dst").value(c.dst);
    j.key("msgs").value(c.msgs);
    j.key("bytes").value(c.bytes);
    j.endObject();
  }
  j.endArray();
  j.endObject();
  return j.str();
}

std::string renderCollectives(const std::vector<CollRow>& rows) {
  JsonWriter j;
  j.beginObject();
  j.key("query").value("colls");
  j.key("ops").beginArray();
  for (const CollRow& r : rows) {
    j.beginObject();
    j.key("op").value(ir::mpiOpName(r.op));
    j.key("calls").value(r.calls);
    j.key("bytes").value(r.bytes);
    j.endObject();
  }
  j.endArray();
  j.endObject();
  return j.str();
}

std::string renderCallSites(const std::vector<CallSiteHit>& hits, int32_t src,
                            int32_t dst, uint64_t iter, int loopGid) {
  JsonWriter j;
  j.beginObject();
  j.key("query").value("callsites");
  j.key("src").value(src);
  j.key("dst").value(dst);
  j.key("iter").value(iter);
  j.key("loopGid").value(static_cast<int64_t>(loopGid));
  j.key("sites").beginArray();
  for (const CallSiteHit& h : hits) {
    j.beginObject();
    j.key("gid").value(static_cast<int64_t>(h.gid));
    j.key("callSiteId").value(static_cast<int64_t>(h.callSiteId));
    j.key("op").value(ir::mpiOpName(h.op));
    j.key("msgs").value(h.msgs);
    j.key("bytes").value(h.bytes);
    j.key("tag").value(h.tag);
    j.endObject();
  }
  j.endArray();
  j.endObject();
  return j.str();
}

}  // namespace cypress::query
