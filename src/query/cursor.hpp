// CompressedCursor: stream one rank's events straight off the CTT.
//
// The decompressor in src/cypress materializes a full per-rank event
// vector; consumers like SIM-MPI replay only ever look at each rank's
// *current* event. This cursor runs the same pre-order CTT walk (loop
// counts, branch outcomes, leaf occurrence ordinals) as an explicit
// machine that pauses after every emitted event, so replay and
// event-at-a-time analyses read the compressed form directly with
// O(#CST vertices + #records + tree depth) state — never O(events).
//
// The event sequence is exactly decompressRank()'s, including the
// end-of-walk drain check: a cursor that reaches done() guarantees all
// payload cursors were consumed, and throws cypress::Error on the same
// inconsistencies the batch decompressor rejects.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cypress/merge.hpp"
#include "trace/event.hpp"

namespace cypress::query {

class CompressedCursor {
 public:
  /// Build a cursor over `m` for one covered rank. `m` must outlive the
  /// cursor. Constructing for a lost / uncovered rank yields a cursor
  /// that throws on first use, exactly as decompressRank() throws.
  CompressedCursor(const core::MergedCtt& m, int rank);

  CompressedCursor(CompressedCursor&&) = default;
  CompressedCursor& operator=(CompressedCursor&&) = default;

  /// True when the walk is complete (runs the drain check once).
  bool done();

  /// The current event; valid until next(). Requires !done().
  const trace::Event& peek();

  /// Consume the current event.
  void next();

  /// Events emitted so far (consumed + the buffered one, if any).
  uint64_t emitted() const { return emitted_; }

  int rank() const { return rank_; }

  /// Heap footprint of the cursor state (the replay-side memory story:
  /// compare against events * sizeof(Event) for the materialized path).
  size_t memoryBytes() const;

 private:
  struct RecState {
    SectionSeq::Cursor ord;
    std::optional<SectionSeq::Cursor> matched;
    const core::CommRecord* rec = nullptr;
  };
  struct LeafCursor {
    const core::LeafEntry* entry = nullptr;
    uint64_t nextOrdinal = 0;
    std::optional<SectionSeq::Cursor> execCursor;
    std::vector<RecState> recs;
  };
  /// One execution of one CST vertex, paused between children (and
  /// between occurrences at a Comm child).
  struct Frame {
    const cst::Node* node = nullptr;
    uint64_t exec = 0;    // this execution's ordinal of `node`
    size_t child = 0;     // index of the child being processed
    uint64_t pending = 0; // loop iterations / call visits still to push
    bool pendingValid = false;
  };

  void push(const cst::Node* n);
  void fillEvent(const cst::Node* leaf);
  void advance();  // run the machine until an event is buffered or done
  void checkDrained() const;

  const core::MergedCtt* m_;
  int rank_;
  std::vector<std::optional<SectionSeq::Cursor>> loopCur_;
  std::vector<std::optional<SectionSeq::Cursor>> takenCur_;
  std::vector<LeafCursor> leaf_;
  std::vector<uint64_t> execCount_;
  std::vector<Frame> stack_;
  trace::Event buf_;
  bool hasEvent_ = false;
  bool finished_ = false;
  uint64_t emitted_ = 0;
};

}  // namespace cypress::query
