// Compressed-domain query evaluation over merged CYPRESS traces.
//
// The CTT+RSD representation is not just a storage format: every
// analysis below runs on the compressed structure itself, in time
// proportional to the *compressed* size (payload entries + output),
// never to the number of events — the compressed-trace analysis model
// of "Data Race Detection on Compressed Traces" (PAPERS.md), applied to
// communication statistics.
//
//   - Aggregates (summary / histogram / matrix / collectives) read the
//     CommRecord repeat counts directly: a record that fired a million
//     times contributes one multiply.
//   - The call-site-at-iteration-k lookup walks the CST once,
//     propagating an execution-ordinal interval down the tree with
//     SectionSeq range arithmetic (prefix sums over loop counts,
//     counted value ranges over branch outcomes and occurrence
//     ordinals) — O(#sections) per vertex.
//
// Every function is deterministic: per-rank work is dealt to pool lanes
// in fixed contiguous chunks and each lane owns its ranks' rows, so the
// output is byte-identical at any thread count.
//
// Each engine result has a decompress-then-scan twin (`*FromRaw`)
// producing the same structs from raw events; rendering both through
// query::JsonWriter makes equivalence testable as byte equality, and
// the twins double as the "decompress then scan" baseline cyperf
// charts against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cypress/merge.hpp"
#include "support/rank_set.hpp"
#include "trace/event.hpp"

namespace cypress::query {

/// One message-size bucket of a per-rank send histogram.
struct HistBucket {
  int64_t bytes = 0;
  uint64_t msgs = 0;
};

/// Point-to-point messages sent by one rank, bucketed by message size.
struct RankHistogram {
  int32_t rank = 0;
  uint64_t msgs = 0;
  int64_t bytes = 0;
  std::vector<HistBucket> buckets;  // ascending by bytes
};

/// One cell of the sparse point-to-point communication matrix.
struct MatrixCell {
  int32_t src = 0;
  int32_t dst = 0;
  uint64_t msgs = 0;
  int64_t bytes = 0;
};

/// Global call/byte totals for one collective operation.
struct CollRow {
  ir::MpiOp op = ir::MpiOp::Barrier;
  uint64_t calls = 0;  // one per participating rank per invocation
  int64_t bytes = 0;
};

/// Per-rank event-class totals.
struct SummaryRow {
  int32_t rank = 0;
  uint64_t events = 0;
  uint64_t sends = 0;  // Send + Isend
  uint64_t recvs = 0;  // Recv + Irecv
  uint64_t waits = 0;  // Wait / Waitall / Waitany / Waitsome
  uint64_t collectives = 0;
  int64_t sendBytes = 0;
};

/// One call site that sent src->dst within the queried loop iteration.
struct CallSiteHit {
  int gid = -1;
  int callSiteId = -1;
  ir::MpiOp op = ir::MpiOp::Send;
  uint64_t msgs = 0;
  int64_t bytes = 0;
  int32_t tag = -1;
};

/// Union of every payload entry's rank set: the ranks this merged trace
/// actually covers (faulted runs exclude lostRanks()).
RankSet coveredRanks(const core::MergedCtt& m);

// ---- compressed-domain evaluators -----------------------------------
// Rows are emitted in ascending rank order, one per covered rank;
// `threads` fans the per-rank work over the shared pool.

std::vector<SummaryRow> summary(const core::MergedCtt& m, int threads = 1);
std::vector<RankHistogram> histogram(const core::MergedCtt& m, int threads = 1);
std::vector<MatrixCell> commMatrix(const core::MergedCtt& m, int threads = 1);
std::vector<CollRow> collectives(const core::MergedCtt& m);

/// Call sites through which `src` sent to `dst` during global iteration
/// `iter` of the loop at `loopGid` (-1 = the outermost loop containing
/// communication). Throws cypress::Error when the gid is not a loop or
/// the iteration is out of range for `src`.
std::vector<CallSiteHit> callSitesAt(const core::MergedCtt& m, int32_t src,
                                     int32_t dst, uint64_t iter,
                                     int loopGid = -1);

/// First pre-order Loop vertex whose subtree contains communication;
/// -1 when the program has none.
int defaultLoopGid(const cst::Tree& tree);

// ---- decompress-then-scan oracles -----------------------------------
// Same structs, same ordering, computed from expanded events. One row
// per RankTrace present in `t` (build survivor-only traces for faulted
// runs).

std::vector<SummaryRow> summaryFromRaw(const trace::RawTrace& t);
std::vector<RankHistogram> histogramFromRaw(const trace::RawTrace& t);
std::vector<MatrixCell> commMatrixFromRaw(const trace::RawTrace& t);
std::vector<CollRow> collectivesFromRaw(const trace::RawTrace& t);

// ---- canonical JSON rendering ---------------------------------------

std::string renderSummary(const std::vector<SummaryRow>& rows,
                          const RankSet& lostRanks);
std::string renderHistogram(const std::vector<RankHistogram>& rows);
std::string renderMatrix(const std::vector<MatrixCell>& cells);
std::string renderCollectives(const std::vector<CollRow>& rows);
std::string renderCallSites(const std::vector<CallSiteHit>& hits, int32_t src,
                            int32_t dst, uint64_t iter, int loopGid);

}  // namespace cypress::query
