#include "query/cursor.hpp"

#include "support/error.hpp"

namespace cypress::query {

using core::CommRecord;
using core::LeafEntry;
using core::MergedCtt;
using core::SeqEntry;

namespace {

const SectionSeq* seqFor(const std::vector<SeqEntry>& entries, int rank) {
  for (const SeqEntry& e : entries)
    if (e.ranks.contains(rank)) return &e.seq;
  return nullptr;
}

}  // namespace

CompressedCursor::CompressedCursor(const MergedCtt& m, int rank)
    : m_(&m), rank_(rank) {
  const int n = m.cst().numNodes();
  loopCur_.resize(static_cast<size_t>(n));
  takenCur_.resize(static_cast<size_t>(n));
  leaf_.resize(static_cast<size_t>(n));
  execCount_.assign(static_cast<size_t>(n), 0);
  for (int g = 0; g < n; ++g) {
    if (const SectionSeq* s = seqFor(m.loopEntries(g), rank))
      loopCur_[static_cast<size_t>(g)].emplace(*s);
    if (const SectionSeq* s = seqFor(m.takenEntries(g), rank))
      takenCur_[static_cast<size_t>(g)].emplace(*s);
    for (const LeafEntry& e : m.leafEntries(g)) {
      if (e.ranks.contains(rank)) {
        LeafCursor& c = leaf_[static_cast<size_t>(g)];
        c.entry = &e;
        c.execCursor.emplace(e.execOrdinals);
        for (const CommRecord& rec : e.records) {
          c.recs.push_back(RecState{
              rec.ordinals.cursor(),
              rec.matchedSources.empty()
                  ? std::optional<SectionSeq::Cursor>()
                  : std::optional<SectionSeq::Cursor>(
                        rec.matchedSources.cursor()),
              &rec});
        }
        break;
      }
    }
  }
  push(m.cst().root());
}

void CompressedCursor::push(const cst::Node* n) {
  Frame f;
  f.node = n;
  f.exec = execCount_[static_cast<size_t>(n->gid)]++;
  stack_.push_back(f);
}

void CompressedCursor::fillEvent(const cst::Node* leaf) {
  LeafCursor& c = leaf_[static_cast<size_t>(leaf->gid)];
  CYP_CHECK(c.entry != nullptr, "decompress: rank "
                                    << rank_ << " has no records at gid "
                                    << leaf->gid);
  const int64_t n = static_cast<int64_t>(c.nextOrdinal++);
  RecState* state = nullptr;
  for (RecState& rs : c.recs) {
    if (!rs.ord.done() && rs.ord.peek() == n) {
      state = &rs;
      break;
    }
  }
  CYP_CHECK(state != nullptr, "decompress: no record covers occurrence "
                                  << n << " at gid " << leaf->gid);
  state->ord.next();
  const CommRecord& rec = *state->rec;

  trace::Event e;
  e.op = rec.op;
  e.peer = rec.peer.decode(rank_);
  e.bytes = rec.bytes;
  e.tag = rec.tag;
  e.comm = rec.comm;
  e.callSiteId = rec.callSiteId;
  e.reqId = rec.reqSite;
  if (state->matched.has_value()) {
    e.matchedSource = static_cast<int32_t>(state->matched->next()) + rank_;
  }
  e.durationNs = static_cast<uint64_t>(rec.duration.mean());
  e.computeNs = static_cast<uint64_t>(rec.compute.mean());
  buf_ = e;
  hasEvent_ = true;
  ++emitted_;
}

void CompressedCursor::advance() {
  while (!stack_.empty()) {
    Frame& f = stack_.back();
    const cst::Node* n = f.node;
    if (f.child >= n->children.size()) {
      stack_.pop_back();
      continue;
    }
    const cst::Node* child = n->children[f.child].get();
    switch (child->kind) {
      case cst::NodeKind::Comm: {
        LeafCursor& lc = leaf_[static_cast<size_t>(child->gid)];
        if (lc.execCursor.has_value() && !lc.execCursor->done() &&
            lc.execCursor->peek() == static_cast<int64_t>(f.exec)) {
          lc.execCursor->next();
          fillEvent(child);
          return;  // pause: one event buffered
        }
        ++f.child;
        break;
      }
      case cst::NodeKind::Loop: {
        if (!f.pendingValid) {
          auto& cur = loopCur_[static_cast<size_t>(child->gid)];
          CYP_CHECK(cur.has_value() && !cur->done(),
                    "decompress: missing loop activation at gid "
                        << child->gid);
          const int64_t iters = cur->next();
          CYP_CHECK(iters >= 0, "decompress: negative iteration count at gid "
                                    << child->gid);
          f.pending = static_cast<uint64_t>(iters);
          f.pendingValid = true;
        }
        if (f.pending > 0) {
          --f.pending;
          push(child);  // invalidates f; loop re-reads stack_.back()
        } else {
          f.pendingValid = false;
          ++f.child;
        }
        break;
      }
      case cst::NodeKind::Branch: {
        auto& cur = takenCur_[static_cast<size_t>(child->gid)];
        if (cur.has_value() && !cur->done() &&
            cur->peek() == static_cast<int64_t>(f.exec)) {
          cur->next();
          push(child);
        } else {
          ++f.child;
        }
        break;
      }
      case cst::NodeKind::Call: {
        if (!f.pendingValid) {
          f.pending = 1;
          f.pendingValid = true;
        }
        if (f.pending > 0) {
          --f.pending;
          push(child);
        } else {
          f.pendingValid = false;
          ++f.child;
        }
        break;
      }
      case cst::NodeKind::Root:
        CYP_FAIL("nested root in CST");
    }
  }
  checkDrained();
  finished_ = true;
}

bool CompressedCursor::done() {
  if (!hasEvent_ && !finished_) advance();
  return !hasEvent_;
}

const trace::Event& CompressedCursor::peek() {
  CYP_CHECK(!done(), "compressed cursor exhausted");
  return buf_;
}

void CompressedCursor::next() {
  CYP_CHECK(!done(), "compressed cursor exhausted");
  hasEvent_ = false;
}

void CompressedCursor::checkDrained() const {
  const int n = m_->cst().numNodes();
  for (int g = 0; g < n; ++g) {
    const auto& lc = loopCur_[static_cast<size_t>(g)];
    CYP_CHECK(!lc.has_value() || lc->done(),
              "decompress: loop activations left over at gid " << g);
    const auto& tc = takenCur_[static_cast<size_t>(g)];
    CYP_CHECK(!tc.has_value() || tc->done(),
              "decompress: branch outcomes left over at gid " << g);
    const LeafCursor& c = leaf_[static_cast<size_t>(g)];
    CYP_CHECK(!c.execCursor.has_value() || c.execCursor->done(),
              "decompress: leaf occurrences left over at gid " << g);
    for (const RecState& rs : c.recs) {
      CYP_CHECK(rs.ord.done(), "decompress: records left over at gid " << g);
      CYP_CHECK(!rs.matched.has_value() || rs.matched->done(),
                "decompress: matched sources left over at gid " << g);
    }
  }
}

size_t CompressedCursor::memoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += loopCur_.capacity() * sizeof(loopCur_[0]);
  bytes += takenCur_.capacity() * sizeof(takenCur_[0]);
  bytes += execCount_.capacity() * sizeof(uint64_t);
  bytes += stack_.capacity() * sizeof(Frame);
  bytes += leaf_.capacity() * sizeof(LeafCursor);
  for (const LeafCursor& c : leaf_)
    bytes += c.recs.capacity() * sizeof(RecState);
  return bytes;
}

}  // namespace cypress::query
