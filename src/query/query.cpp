#include "query/query.hpp"

#include <sstream>

#include "query/engine.hpp"
#include "support/error.hpp"

namespace cypress::query {

namespace {

int64_t parseInt(const std::string& key, const std::string& value) {
  try {
    size_t pos = 0;
    const int64_t v = std::stoll(value, &pos);
    CYP_CHECK(pos == value.size(), "query: bad number '" << value << "' for "
                                                         << key);
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("query: bad number '" + value + "' for " + key);
  }
}

}  // namespace

QuerySpec QuerySpec::parse(const std::string& text) {
  std::istringstream in(text);
  std::string head;
  in >> head;
  QuerySpec q;
  if (head == "summary") {
    q.kind = Kind::Summary;
  } else if (head == "hist" || head == "histogram") {
    q.kind = Kind::Histogram;
  } else if (head == "matrix") {
    q.kind = Kind::Matrix;
  } else if (head == "colls" || head == "collectives") {
    q.kind = Kind::Collectives;
  } else if (head == "callsites") {
    q.kind = Kind::CallSites;
  } else {
    throw Error("query: unknown query kind '" + head +
                "' (expected summary|hist|matrix|colls|callsites)");
  }

  bool haveSrc = false, haveDst = false, haveIter = false;
  std::string tok;
  while (in >> tok) {
    const size_t eq = tok.find('=');
    CYP_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < tok.size(),
              "query: expected key=value, got '" << tok << "'");
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    CYP_CHECK(q.kind == Kind::CallSites,
              "query: '" << head << "' takes no arguments");
    if (key == "src") {
      q.src = static_cast<int32_t>(parseInt(key, value));
      haveSrc = true;
    } else if (key == "dst") {
      q.dst = static_cast<int32_t>(parseInt(key, value));
      haveDst = true;
    } else if (key == "iter") {
      const int64_t v = parseInt(key, value);
      CYP_CHECK(v >= 0, "query: iter must be >= 0");
      q.iter = static_cast<uint64_t>(v);
      haveIter = true;
    } else if (key == "loop") {
      q.loopGid = static_cast<int>(parseInt(key, value));
    } else {
      throw Error("query: unknown argument '" + key + "'");
    }
  }
  if (q.kind == Kind::CallSites) {
    CYP_CHECK(haveSrc && haveDst && haveIter,
              "query: callsites needs src=A dst=B iter=K");
    CYP_CHECK(q.src >= 0 && q.dst >= 0, "query: ranks must be >= 0");
  }
  return q;
}

std::string QuerySpec::toString() const {
  switch (kind) {
    case Kind::Summary: return "summary";
    case Kind::Histogram: return "hist";
    case Kind::Matrix: return "matrix";
    case Kind::Collectives: return "colls";
    case Kind::CallSites: {
      std::ostringstream os;
      os << "callsites src=" << src << " dst=" << dst << " iter=" << iter;
      if (loopGid >= 0) os << " loop=" << loopGid;
      return os.str();
    }
  }
  return "?";
}

std::string runQuery(const core::MergedCtt& m, const QuerySpec& spec,
                     int threads) {
  switch (spec.kind) {
    case QuerySpec::Kind::Summary:
      return renderSummary(summary(m, threads), m.lostRanks());
    case QuerySpec::Kind::Histogram:
      return renderHistogram(histogram(m, threads));
    case QuerySpec::Kind::Matrix:
      return renderMatrix(commMatrix(m, threads));
    case QuerySpec::Kind::Collectives:
      return renderCollectives(collectives(m));
    case QuerySpec::Kind::CallSites: {
      const int gid =
          spec.loopGid >= 0 ? spec.loopGid : defaultLoopGid(m.cst());
      return renderCallSites(
          callSitesAt(m, spec.src, spec.dst, spec.iter, spec.loopGid),
          spec.src, spec.dst, spec.iter, gid);
    }
  }
  CYP_FAIL("query: bad spec kind");
}

std::string runQuery(const core::MergedCtt& m, const std::string& spec,
                     int threads) {
  return runQuery(m, QuerySpec::parse(spec), threads);
}

}  // namespace cypress::query
