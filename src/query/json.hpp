// Canonical JSON emission for query results.
//
// Both the compressed-domain engine and the decompress-then-scan oracle
// render through this writer, so "byte-identical JSON" in the
// equivalence tests means exactly "equal data": one field order, one
// integer formatting, no whitespace variance, no floats. Output is
// compact single-line JSON (objects keep insertion order).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace cypress::query {

class JsonWriter {
 public:
  JsonWriter& beginObject() {
    comma();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& endObject() {
    pop();
    out_ += '}';
    return *this;
  }
  JsonWriter& beginArray() {
    comma();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& endArray() {
    pop();
    out_ += ']';
    return *this;
  }

  JsonWriter& key(const char* k) {
    comma();
    appendString(k);
    out_ += ':';
    pendingKey_ = true;
    return *this;
  }

  JsonWriter& value(int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int32_t v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(const std::string& s) {
    comma();
    appendString(s.c_str());
    return *this;
  }
  JsonWriter& value(const char* s) {
    comma();
    appendString(s);
    return *this;
  }

  const std::string& str() const {
    CYP_CHECK(first_.empty(), "json: unterminated container");
    return out_;
  }

 private:
  void comma() {
    if (pendingKey_) {
      pendingKey_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }
  void pop() {
    CYP_CHECK(!first_.empty(), "json: container underflow");
    first_.pop_back();
    if (!first_.empty()) first_.back() = false;
    pendingKey_ = false;
  }
  void appendString(const char* s) {
    out_ += '"';
    for (; *s; ++s) {
      const char c = *s;
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> first_;
  bool pendingKey_ = false;
};

}  // namespace cypress::query
