// Textual query specs and the one-call evaluation entry point shared by
// the cyptrace CLI, the cyptraced QUERY job class, and compare.
//
// Grammar (docs/QUERY.md):
//   summary
//   hist
//   matrix
//   colls
//   callsites src=A dst=B iter=K [loop=GID]
//
// Evaluation is compressed-domain throughout (see engine.hpp);
// runQuery() returns one canonical JSON object per spec. Malformed
// specs and unanswerable queries throw cypress::Error.
#pragma once

#include <cstdint>
#include <string>

#include "cypress/merge.hpp"

namespace cypress::query {

struct QuerySpec {
  enum class Kind { Summary, Histogram, Matrix, Collectives, CallSites };
  Kind kind = Kind::Summary;
  int32_t src = -1;     // CallSites
  int32_t dst = -1;     // CallSites
  uint64_t iter = 0;    // CallSites
  int loopGid = -1;     // CallSites: -1 = default loop

  static QuerySpec parse(const std::string& text);
  std::string toString() const;
};

/// Evaluate one spec against a merged trace; returns canonical JSON.
std::string runQuery(const core::MergedCtt& m, const QuerySpec& spec,
                     int threads = 1);
std::string runQuery(const core::MergedCtt& m, const std::string& spec,
                     int threads = 1);

}  // namespace cypress::query
