// Expression DSL for building IR programmatically.
//
// MiniC is the text frontend; this header is the embedded one — a small
// operator-overloaded wrapper over ir::Expr so C++ code can write
//
//   using namespace cypress::ir::dsl;
//   auto peer = (rankv() + 1) % sizev();
//
// and hand the result to the ProgramBuilder (ir/builder.hpp).
#pragma once

#include "ir/ir.hpp"

namespace cypress::ir::dsl {

/// Move-only expression handle with arithmetic/comparison operators.
struct E {
  ExprPtr p;

  E(ExprPtr e) : p(std::move(e)) {}           // NOLINT(google-explicit-*)
  E(int64_t v) : p(Expr::constant(v)) {}      // NOLINT(google-explicit-*)
  E(int v) : p(Expr::constant(v)) {}          // NOLINT(google-explicit-*)

  E clone() const { return E(p->clone()); }
  ExprPtr take() && { return std::move(p); }
};

inline E rankv() { return E(Expr::rank()); }
inline E sizev() { return E(Expr::size()); }
inline E cst(int64_t v) { return E(Expr::constant(v)); }

/// A declared variable slot (value type; copies refer to the same slot).
struct Var {
  int slot = -1;
  E ref() const { return E(Expr::var(slot)); }
};

inline E v(Var var) { return var.ref(); }

namespace detail {
inline E bin(BinOp op, E a, E b) {
  return E(Expr::binary(op, std::move(a.p), std::move(b.p)));
}
}  // namespace detail

inline E operator+(E a, E b) { return detail::bin(BinOp::Add, std::move(a), std::move(b)); }
inline E operator-(E a, E b) { return detail::bin(BinOp::Sub, std::move(a), std::move(b)); }
inline E operator*(E a, E b) { return detail::bin(BinOp::Mul, std::move(a), std::move(b)); }
inline E operator/(E a, E b) { return detail::bin(BinOp::Div, std::move(a), std::move(b)); }
inline E operator%(E a, E b) { return detail::bin(BinOp::Mod, std::move(a), std::move(b)); }
inline E operator<(E a, E b) { return detail::bin(BinOp::Lt, std::move(a), std::move(b)); }
inline E operator<=(E a, E b) { return detail::bin(BinOp::Le, std::move(a), std::move(b)); }
inline E operator>(E a, E b) { return detail::bin(BinOp::Gt, std::move(a), std::move(b)); }
inline E operator>=(E a, E b) { return detail::bin(BinOp::Ge, std::move(a), std::move(b)); }
inline E operator==(E a, E b) { return detail::bin(BinOp::Eq, std::move(a), std::move(b)); }
inline E operator!=(E a, E b) { return detail::bin(BinOp::Ne, std::move(a), std::move(b)); }
inline E operator&&(E a, E b) { return detail::bin(BinOp::And, std::move(a), std::move(b)); }
inline E operator||(E a, E b) { return detail::bin(BinOp::Or, std::move(a), std::move(b)); }
inline E operator<<(E a, E b) { return detail::bin(BinOp::Shl, std::move(a), std::move(b)); }
inline E operator>>(E a, E b) { return detail::bin(BinOp::Shr, std::move(a), std::move(b)); }
inline E operator-(E a) { return E(Expr::unary(UnOp::Neg, std::move(a.p))); }
inline E operator!(E a) { return E(Expr::unary(UnOp::Not, std::move(a.p))); }
inline E minE(E a, E b) { return detail::bin(BinOp::Min, std::move(a), std::move(b)); }
inline E maxE(E a, E b) { return detail::bin(BinOp::Max, std::move(a), std::move(b)); }

/// MPI_ANY_SOURCE as an expression.
inline E anySource() { return cst(kAnySource); }

}  // namespace cypress::ir::dsl
