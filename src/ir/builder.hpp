// ProgramBuilder: the embedded (C++) frontend for constructing IR.
//
// Mirrors what the MiniC lowering does, as a fluent API: structured
// statements (for / if / while) take lambdas for their bodies and the
// builder lays out the natural-loop CFG shape the CST pass expects.
//
//   ir::ProgramBuilder pb;
//   auto& f = pb.function("main");
//   using namespace ir::dsl;
//   f.forLoop("i", 0, [](E i) { return std::move(i) < 10; },
//             [&](FunctionBuilder& b, Var i) {
//               b.send((rankv() + 1) % sizev(), 1024, 0);
//             });
//   auto module = pb.finish();
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/dsl.hpp"
#include "ir/ir.hpp"

namespace cypress::ir {

class ProgramBuilder;

class FunctionBuilder {
 public:
  /// Declare a local variable initialized to `init`; returns its handle.
  dsl::Var declare(const std::string& name, dsl::E init);

  void assign(dsl::Var var, dsl::E value);

  // --- MPI operations (WORLD unless a comm handle is given) ---
  void send(dsl::E dst, dsl::E bytes, dsl::E tag);
  void recv(dsl::E src, dsl::E bytes, dsl::E tag);
  dsl::Var isend(const std::string& reqName, dsl::E dst, dsl::E bytes, dsl::E tag);
  dsl::Var irecv(const std::string& reqName, dsl::E src, dsl::E bytes, dsl::E tag);
  void wait(dsl::Var request);
  void waitall();
  void waitany();
  void waitsome();
  void barrier();
  void bcast(dsl::E root, dsl::E bytes);
  void reduce(dsl::E root, dsl::E bytes);
  void allreduce(dsl::E bytes);
  void allgather(dsl::E bytes);
  void alltoall(dsl::E bytes);
  void gather(dsl::E root, dsl::E bytes);
  void scatter(dsl::E root, dsl::E bytes);
  void scan(dsl::E bytes);
  dsl::Var commSplit(const std::string& name, dsl::E color, dsl::E key);
  /// Collective on an explicit communicator handle.
  void allreduceOn(dsl::Var comm, dsl::E bytes);
  void barrierOn(dsl::Var comm);
  void bcastOn(dsl::Var comm, dsl::E root, dsl::E bytes);

  void compute(dsl::E nanoseconds);

  /// Call a user-defined function: callFunction("halo", E(128), rankv()).
  template <typename... Es>
  void callFunction(const std::string& callee, Es... args) {
    std::vector<ExprPtr> a;
    a.reserve(sizeof...(args));
    (a.push_back(std::move(args).take()), ...);
    callWithArgs(callee, std::move(a));
  }

  // --- control flow ---
  /// for (var <name> = init; cond(<name>); <name> = <name> + 1) body
  void forLoop(const std::string& name, dsl::E init,
               const std::function<dsl::E(dsl::E)>& cond,
               const std::function<void(FunctionBuilder&, dsl::Var)>& body);
  /// while (cond()) body — cond re-evaluated each iteration.
  void whileLoop(const std::function<dsl::E()>& cond,
                 const std::function<void(FunctionBuilder&)>& body);
  void ifThen(dsl::E cond, const std::function<void(FunctionBuilder&)>& then);
  void ifThenElse(dsl::E cond, const std::function<void(FunctionBuilder&)>& then,
                  const std::function<void(FunctionBuilder&)>& els);
  void ret();

  /// Parameter handles (slots 0..numParams-1).
  dsl::Var param(int index) const;

 private:
  friend class ProgramBuilder;
  explicit FunctionBuilder(Function* f) : f_(f) {}

  void callWithArgs(const std::string& callee, std::vector<ExprPtr> args);
  void emit(Instr instr);
  int startBlock(const std::string& name);
  void finishFunction();

  Function* f_;
  int cur_ = -1;
  bool terminated_ = false;
};

class ProgramBuilder {
 public:
  ProgramBuilder();

  /// Start (or continue) a function; parameters become slots 0..n-1.
  FunctionBuilder& function(const std::string& name,
                            const std::vector<std::string>& params = {});

  /// Terminate all functions, number call sites, verify, and return the
  /// module. The builder is consumed.
  std::unique_ptr<Module> finish();

 private:
  std::unique_ptr<Module> module_;
  std::vector<std::unique_ptr<FunctionBuilder>> builders_;
};

}  // namespace cypress::ir
