#include "ir/ir.hpp"

#include <sstream>

namespace cypress::ir {

const char* mpiOpName(MpiOp op) {
  switch (op) {
    case MpiOp::Send: return "MPI_Send";
    case MpiOp::Recv: return "MPI_Recv";
    case MpiOp::Isend: return "MPI_Isend";
    case MpiOp::Irecv: return "MPI_Irecv";
    case MpiOp::Wait: return "MPI_Wait";
    case MpiOp::Waitall: return "MPI_Waitall";
    case MpiOp::Waitany: return "MPI_Waitany";
    case MpiOp::Waitsome: return "MPI_Waitsome";
    case MpiOp::Barrier: return "MPI_Barrier";
    case MpiOp::Bcast: return "MPI_Bcast";
    case MpiOp::Reduce: return "MPI_Reduce";
    case MpiOp::Allreduce: return "MPI_Allreduce";
    case MpiOp::Allgather: return "MPI_Allgather";
    case MpiOp::Alltoall: return "MPI_Alltoall";
    case MpiOp::Gather: return "MPI_Gather";
    case MpiOp::Scatter: return "MPI_Scatter";
    case MpiOp::Scan: return "MPI_Scan";
    case MpiOp::CommSplit: return "MPI_Comm_split";
  }
  return "MPI_?";
}

void Module::numberCallSites() {
  int nextSite = 0;
  int nextCall = 0;
  for (auto& f : functions)
    for (auto& b : f->blocks)
      for (auto& i : b.instrs) {
        if (i.kind == InstrKind::MpiCall) i.callSiteId = nextSite++;
        if (i.kind == InstrKind::Call) i.callInstrId = nextCall++;
      }
}

namespace {

void verifyExpr(const Expr& e, const Function& f, const char* where) {
  if (e.kind == ExprKind::Var) {
    CYP_CHECK(e.varSlot >= 0 && e.varSlot < f.numVars(),
              f.name << ": " << where << ": var slot " << e.varSlot << " out of range");
  }
  if (e.lhs) verifyExpr(*e.lhs, f, where);
  if (e.rhs) verifyExpr(*e.rhs, f, where);
}

}  // namespace

void verify(const Module& m) {
  CYP_CHECK(m.function(m.entry) != nullptr, "module entry '" << m.entry << "' missing");
  for (const auto& fp : m.functions) {
    const Function& f = *fp;
    CYP_CHECK(!f.blocks.empty(), f.name << ": function has no blocks");
    CYP_CHECK(f.numParams <= f.numVars(),
              f.name << ": more params than variable slots");
    const int nblocks = static_cast<int>(f.blocks.size());
    for (const BasicBlock& b : f.blocks) {
      for (const Instr& i : b.instrs) {
        switch (i.kind) {
          case InstrKind::Assign:
            CYP_CHECK(i.destVar >= 0 && i.destVar < f.numVars(),
                      f.name << ": assign to bad slot " << i.destVar);
            CYP_CHECK(i.expr != nullptr, f.name << ": assign without expr");
            verifyExpr(*i.expr, f, "assign");
            break;
          case InstrKind::MpiCall:
            for (const auto& a : i.args) {
              CYP_CHECK(a != nullptr, f.name << ": null MPI arg");
              verifyExpr(*a, f, "mpi arg");
            }
            if (isNonBlockingStart(i.mpiOp) || i.mpiOp == MpiOp::Wait ||
                i.mpiOp == MpiOp::CommSplit) {
              CYP_CHECK(i.reqVar >= 0 && i.reqVar < f.numVars(),
                        f.name << ": " << mpiOpName(i.mpiOp) << " bad request slot");
            }
            if (i.commExpr) verifyExpr(*i.commExpr, f, "mpi comm");
            break;
          case InstrKind::Call: {
            const Function* callee = m.function(i.callee);
            CYP_CHECK(callee != nullptr,
                      f.name << ": call to unknown function '" << i.callee << "'");
            CYP_CHECK(static_cast<int>(i.callArgs.size()) == callee->numParams,
                      f.name << ": call to '" << i.callee << "' with "
                             << i.callArgs.size() << " args, expected "
                             << callee->numParams);
            for (const auto& a : i.callArgs) verifyExpr(*a, f, "call arg");
            break;
          }
          case InstrKind::Compute:
            CYP_CHECK(i.expr != nullptr, f.name << ": compute without cost expr");
            verifyExpr(*i.expr, f, "compute");
            break;
          case InstrKind::StructEnter:
          case InstrKind::StructExit:
            CYP_CHECK(i.structId >= 0, f.name << ": structure marker without id");
            break;
        }
      }
      switch (b.term.kind) {
        case TermKind::Br:
          CYP_CHECK(b.term.target >= 0 && b.term.target < nblocks,
                    f.name << ": bad branch target " << b.term.target);
          break;
        case TermKind::CondBr:
          CYP_CHECK(b.term.cond != nullptr, f.name << ": condbr without condition");
          verifyExpr(*b.term.cond, f, "condbr");
          CYP_CHECK(b.term.target >= 0 && b.term.target < nblocks &&
                        b.term.elseTarget >= 0 && b.term.elseTarget < nblocks,
                    f.name << ": bad condbr targets");
          break;
        case TermKind::Ret:
          break;
      }
    }
  }
}

namespace {

std::string varName(const Function& f, int slot) {
  if (slot >= 0 && slot < f.numVars()) return f.varNames[static_cast<size_t>(slot)];
  return "v" + std::to_string(slot);
}

std::string exprStr(const Function& f, const Expr& e) {
  return exprToString(e, f.varNames.data(), f.varNames.size());
}

}  // namespace

std::string print(const Function& f) {
  std::ostringstream os;
  os << "func " << f.name << "(" << f.numParams << " params, " << f.numVars()
     << " vars) {\n";
  for (const BasicBlock& b : f.blocks) {
    os << "  " << b.id << " (" << b.name << "):\n";
    for (const Instr& i : b.instrs) {
      os << "    ";
      switch (i.kind) {
        case InstrKind::Assign:
          os << varName(f, i.destVar) << " = " << exprStr(f, *i.expr);
          break;
        case InstrKind::MpiCall:
          os << mpiOpName(i.mpiOp) << "(";
          for (size_t k = 0; k < i.args.size(); ++k) {
            if (k) os << ", ";
            os << exprStr(f, *i.args[k]);
          }
          os << ")";
          if (i.reqVar >= 0) os << " req=" << varName(f, i.reqVar);
          break;
        case InstrKind::Call:
          os << "call " << i.callee << "(";
          for (size_t k = 0; k < i.callArgs.size(); ++k) {
            if (k) os << ", ";
            os << exprStr(f, *i.callArgs[k]);
          }
          os << ")";
          break;
        case InstrKind::Compute:
          os << "compute " << exprStr(f, *i.expr);
          break;
        case InstrKind::StructEnter:
          os << "struct_enter " << i.structId;
          break;
        case InstrKind::StructExit:
          os << "struct_exit " << i.structId;
          break;
      }
      os << "\n";
    }
    os << "    ";
    switch (b.term.kind) {
      case TermKind::Br:
        os << "br " << b.term.target;
        break;
      case TermKind::CondBr:
        os << "if " << exprStr(f, *b.term.cond) << " -> " << b.term.target
           << " else " << b.term.elseTarget;
        break;
      case TermKind::Ret:
        os << "ret";
        break;
    }
    os << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string print(const Module& m) {
  std::ostringstream os;
  for (const auto& f : m.functions) os << print(*f);
  return os.str();
}

}  // namespace cypress::ir
