#include "ir/builder.hpp"

#include "support/error.hpp"

namespace cypress::ir {

using dsl::E;
using dsl::Var;

void FunctionBuilder::emit(Instr instr) {
  CYP_CHECK(!terminated_, "emit after the function was terminated");
  f_->blocks[static_cast<size_t>(cur_)].instrs.push_back(std::move(instr));
}

int FunctionBuilder::startBlock(const std::string& name) {
  cur_ = f_->addBlock(name);
  terminated_ = false;
  return cur_;
}

void FunctionBuilder::finishFunction() {
  if (!terminated_) {
    f_->blocks[static_cast<size_t>(cur_)].term = Terminator::ret();
    terminated_ = true;
  }
}

Var FunctionBuilder::declare(const std::string& name, E init) {
  const int slot = f_->addVar(name);
  emit(Instr::assign(slot, std::move(init).take()));
  return Var{slot};
}

void FunctionBuilder::assign(Var var, E value) {
  emit(Instr::assign(var.slot, std::move(value).take()));
}

void FunctionBuilder::send(E dst, E bytes, E tag) {
  emit(Instr::mpi(MpiOp::Send, exprList(std::move(dst).take(), std::move(bytes).take(),
                                        std::move(tag).take())));
}

void FunctionBuilder::recv(E src, E bytes, E tag) {
  emit(Instr::mpi(MpiOp::Recv, exprList(std::move(src).take(), std::move(bytes).take(),
                                        std::move(tag).take())));
}

Var FunctionBuilder::isend(const std::string& reqName, E dst, E bytes, E tag) {
  const int slot = f_->addVar(reqName);
  emit(Instr::mpi(MpiOp::Isend,
                  exprList(std::move(dst).take(), std::move(bytes).take(),
                           std::move(tag).take()),
                  slot));
  return Var{slot};
}

Var FunctionBuilder::irecv(const std::string& reqName, E src, E bytes, E tag) {
  const int slot = f_->addVar(reqName);
  emit(Instr::mpi(MpiOp::Irecv,
                  exprList(std::move(src).take(), std::move(bytes).take(),
                           std::move(tag).take()),
                  slot));
  return Var{slot};
}

void FunctionBuilder::wait(Var request) {
  emit(Instr::mpi(MpiOp::Wait, {}, request.slot));
}
void FunctionBuilder::waitall() { emit(Instr::mpi(MpiOp::Waitall, {})); }
void FunctionBuilder::waitany() { emit(Instr::mpi(MpiOp::Waitany, {})); }
void FunctionBuilder::waitsome() { emit(Instr::mpi(MpiOp::Waitsome, {})); }
void FunctionBuilder::barrier() { emit(Instr::mpi(MpiOp::Barrier, {})); }

void FunctionBuilder::bcast(E root, E bytes) {
  emit(Instr::mpi(MpiOp::Bcast,
                  exprList(std::move(root).take(), std::move(bytes).take())));
}
void FunctionBuilder::reduce(E root, E bytes) {
  emit(Instr::mpi(MpiOp::Reduce,
                  exprList(std::move(root).take(), std::move(bytes).take())));
}
void FunctionBuilder::allreduce(E bytes) {
  emit(Instr::mpi(MpiOp::Allreduce, exprList(std::move(bytes).take())));
}
void FunctionBuilder::allgather(E bytes) {
  emit(Instr::mpi(MpiOp::Allgather, exprList(std::move(bytes).take())));
}
void FunctionBuilder::alltoall(E bytes) {
  emit(Instr::mpi(MpiOp::Alltoall, exprList(std::move(bytes).take())));
}
void FunctionBuilder::gather(E root, E bytes) {
  emit(Instr::mpi(MpiOp::Gather,
                  exprList(std::move(root).take(), std::move(bytes).take())));
}
void FunctionBuilder::scatter(E root, E bytes) {
  emit(Instr::mpi(MpiOp::Scatter,
                  exprList(std::move(root).take(), std::move(bytes).take())));
}
void FunctionBuilder::scan(E bytes) {
  emit(Instr::mpi(MpiOp::Scan, exprList(std::move(bytes).take())));
}

Var FunctionBuilder::commSplit(const std::string& name, E color, E key) {
  const int slot = f_->addVar(name);
  emit(Instr::mpi(MpiOp::CommSplit,
                  exprList(std::move(color).take(), std::move(key).take()), slot));
  return Var{slot};
}

void FunctionBuilder::allreduceOn(Var comm, E bytes) {
  Instr i = Instr::mpi(MpiOp::Allreduce, exprList(std::move(bytes).take()));
  i.commExpr = Expr::var(comm.slot);
  emit(std::move(i));
}

void FunctionBuilder::barrierOn(Var comm) {
  Instr i = Instr::mpi(MpiOp::Barrier, {});
  i.commExpr = Expr::var(comm.slot);
  emit(std::move(i));
}

void FunctionBuilder::bcastOn(Var comm, E root, E bytes) {
  Instr i = Instr::mpi(MpiOp::Bcast,
                       exprList(std::move(root).take(), std::move(bytes).take()));
  i.commExpr = Expr::var(comm.slot);
  emit(std::move(i));
}

void FunctionBuilder::compute(E nanoseconds) {
  emit(Instr::compute(std::move(nanoseconds).take()));
}

void FunctionBuilder::callWithArgs(const std::string& callee,
                                   std::vector<ExprPtr> args) {
  emit(Instr::call(callee, std::move(args)));
}

void FunctionBuilder::forLoop(
    const std::string& name, E init, const std::function<E(E)>& cond,
    const std::function<void(FunctionBuilder&, Var)>& body) {
  const Var iv = declare(name, std::move(init));
  const int pre = cur_;
  const int header = startBlock("for.cond." + name);
  f_->blocks[static_cast<size_t>(pre)].term = Terminator::br(header);

  ExprPtr condExpr = cond(iv.ref()).p->clone();

  startBlock("for.body." + name);
  const int bodyBlock = cur_;
  body(*this, iv);
  if (!terminated_) {
    // i = i + 1
    emit(Instr::assign(iv.slot, Expr::binary(BinOp::Add, Expr::var(iv.slot),
                                             Expr::constant(1))));
    f_->blocks[static_cast<size_t>(cur_)].term = Terminator::br(header);
    terminated_ = true;
  }

  const int exit = startBlock("for.exit." + name);
  f_->blocks[static_cast<size_t>(header)].term =
      Terminator::condBr(std::move(condExpr), bodyBlock, exit);
}

void FunctionBuilder::whileLoop(const std::function<E()>& cond,
                                const std::function<void(FunctionBuilder&)>& body) {
  const int pre = cur_;
  const int header = startBlock("while.cond");
  f_->blocks[static_cast<size_t>(pre)].term = Terminator::br(header);
  ExprPtr condExpr = cond().p->clone();

  startBlock("while.body");
  const int bodyBlock = cur_;
  body(*this);
  if (!terminated_) {
    f_->blocks[static_cast<size_t>(cur_)].term = Terminator::br(header);
    terminated_ = true;
  }

  const int exit = startBlock("while.exit");
  f_->blocks[static_cast<size_t>(header)].term =
      Terminator::condBr(std::move(condExpr), bodyBlock, exit);
}

void FunctionBuilder::ifThen(E cond, const std::function<void(FunctionBuilder&)>& then) {
  const int condBlock = cur_;
  const int thenBlock = startBlock("if.then");
  then(*this);
  const int thenEnd = cur_;
  const bool thenTerminated = terminated_;
  const int join = startBlock("if.join");
  f_->blocks[static_cast<size_t>(condBlock)].term =
      Terminator::condBr(std::move(cond).take(), thenBlock, join);
  if (!thenTerminated)
    f_->blocks[static_cast<size_t>(thenEnd)].term = Terminator::br(join);
}

void FunctionBuilder::ifThenElse(E cond,
                                 const std::function<void(FunctionBuilder&)>& then,
                                 const std::function<void(FunctionBuilder&)>& els) {
  const int condBlock = cur_;
  const int thenBlock = startBlock("if.then");
  then(*this);
  const int thenEnd = cur_;
  const bool thenTerminated = terminated_;
  const int elseBlock = startBlock("if.else");
  els(*this);
  const int elseEnd = cur_;
  const bool elseTerminated = terminated_;
  const int join = startBlock("if.join");
  f_->blocks[static_cast<size_t>(condBlock)].term =
      Terminator::condBr(std::move(cond).take(), thenBlock, elseBlock);
  if (!thenTerminated)
    f_->blocks[static_cast<size_t>(thenEnd)].term = Terminator::br(join);
  if (!elseTerminated)
    f_->blocks[static_cast<size_t>(elseEnd)].term = Terminator::br(join);
}

void FunctionBuilder::ret() {
  CYP_CHECK(!terminated_, "double return");
  f_->blocks[static_cast<size_t>(cur_)].term = Terminator::ret();
  terminated_ = true;
  startBlock("dead");
}

Var FunctionBuilder::param(int index) const {
  CYP_CHECK(index >= 0 && index < f_->numParams, "parameter index out of range");
  return Var{index};
}

ProgramBuilder::ProgramBuilder() : module_(std::make_unique<Module>()) {}

FunctionBuilder& ProgramBuilder::function(const std::string& name,
                                          const std::vector<std::string>& params) {
  Function* f = module_->function(name);
  if (f == nullptr) {
    f = module_->addFunction(name, static_cast<int>(params.size()));
    for (const std::string& p : params) f->addVar(p);
    builders_.push_back(std::unique_ptr<FunctionBuilder>(new FunctionBuilder(f)));
    builders_.back()->startBlock("entry");
    return *builders_.back();
  }
  for (auto& b : builders_)
    if (b->f_ == f) return *b;
  CYP_FAIL("function '" << name << "' exists without a builder");
}

std::unique_ptr<Module> ProgramBuilder::finish() {
  CYP_CHECK(module_ != nullptr, "ProgramBuilder already consumed");
  for (auto& b : builders_) b->finishFunction();
  module_->numberCallSites();
  verify(*module_);
  return std::move(module_);
}

}  // namespace cypress::ir
