#include "ir/expr.hpp"

#include <algorithm>
#include <sstream>

namespace cypress::ir {

int64_t evalExpr(const Expr& e, const VarSource& env) {
  switch (e.kind) {
    case ExprKind::Const:
      return e.value;
    case ExprKind::Var:
      return env.var(e.varSlot);
    case ExprKind::Rank:
      return env.rank();
    case ExprKind::Size:
      return env.size();
    case ExprKind::Unary: {
      const int64_t a = evalExpr(*e.lhs, env);
      switch (e.uop) {
        case UnOp::Neg:
          return -a;
        case UnOp::Not:
          return a == 0 ? 1 : 0;
      }
      CYP_FAIL("bad unary op");
    }
    case ExprKind::Binary: {
      // Short-circuit forms first.
      if (e.bop == BinOp::And) {
        return evalExpr(*e.lhs, env) != 0 && evalExpr(*e.rhs, env) != 0 ? 1 : 0;
      }
      if (e.bop == BinOp::Or) {
        return evalExpr(*e.lhs, env) != 0 || evalExpr(*e.rhs, env) != 0 ? 1 : 0;
      }
      const int64_t a = evalExpr(*e.lhs, env);
      const int64_t b = evalExpr(*e.rhs, env);
      switch (e.bop) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::Div:
          CYP_CHECK(b != 0, "division by zero");
          return a / b;
        case BinOp::Mod:
          CYP_CHECK(b != 0, "modulo by zero");
          return a % b;
        case BinOp::Lt: return a < b;
        case BinOp::Le: return a <= b;
        case BinOp::Gt: return a > b;
        case BinOp::Ge: return a >= b;
        case BinOp::Eq: return a == b;
        case BinOp::Ne: return a != b;
        case BinOp::Shl: return a << b;
        case BinOp::Shr: return a >> b;
        case BinOp::Min: return std::min(a, b);
        case BinOp::Max: return std::max(a, b);
        case BinOp::And:
        case BinOp::Or:
          break;  // handled above
      }
      CYP_FAIL("bad binary op");
    }
  }
  CYP_FAIL("bad expr kind");
}

namespace {

const char* binOpName(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
  }
  return "?";
}

void render(const Expr& e, std::ostringstream& os, const std::string* varNames,
            size_t numVars) {
  switch (e.kind) {
    case ExprKind::Const:
      os << e.value;
      return;
    case ExprKind::Var:
      if (varNames && e.varSlot >= 0 && static_cast<size_t>(e.varSlot) < numVars) {
        os << varNames[e.varSlot];
      } else {
        os << "v" << e.varSlot;
      }
      return;
    case ExprKind::Rank:
      os << "rank";
      return;
    case ExprKind::Size:
      os << "size";
      return;
    case ExprKind::Unary:
      os << (e.uop == UnOp::Neg ? "-" : "!");
      os << '(';
      render(*e.lhs, os, varNames, numVars);
      os << ')';
      return;
    case ExprKind::Binary:
      if (e.bop == BinOp::Min || e.bop == BinOp::Max) {
        os << binOpName(e.bop) << '(';
        render(*e.lhs, os, varNames, numVars);
        os << ", ";
        render(*e.rhs, os, varNames, numVars);
        os << ')';
        return;
      }
      os << '(';
      render(*e.lhs, os, varNames, numVars);
      os << ' ' << binOpName(e.bop) << ' ';
      render(*e.rhs, os, varNames, numVars);
      os << ')';
      return;
  }
}

}  // namespace

std::string exprToString(const Expr& e, const std::string* varNames, size_t numVars) {
  std::ostringstream os;
  render(e, os, varNames, numVars);
  return os.str();
}

}  // namespace cypress::ir
