// The cypress IR: a CFG-based intermediate representation for MPI
// communication skeletons.
//
// This module plays the role of LLVM-IR in the paper: the MiniC frontend
// lowers workloads into it, the analysis passes (dominators, natural
// loops, call graph) run over it, the CST builder (paper §III) extracts
// the communication structure tree from it, the instrumentation pass
// brackets control structures with struct_enter/struct_exit (the paper's
// PMPI_COMM_Structure pair), and the per-rank VM executes it against the
// simulated MPI engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace cypress::ir {

/// MPI operations the IR can invoke. Mirrors the subset of the MPI
/// surface the paper's tracer handles, including non-blocking ops and
/// partial-completion checks.
enum class MpiOp : uint8_t {
  Send, Recv,          // blocking p2p: (peer, bytes, tag)
  Isend, Irecv,        // non-blocking p2p: (peer, bytes, tag) -> request var
  Wait,                // (request var)
  Waitall,             // all outstanding requests of this rank
  Waitany,             // any one outstanding request (non-deterministic)
  Waitsome,            // all currently-completable outstanding requests
  Barrier,
  Bcast,               // (root, bytes)
  Reduce,              // (root, bytes)
  Allreduce,           // (bytes)
  Allgather,           // (bytes)
  Alltoall,            // (bytes)
  Gather,              // (root, bytes)
  Scatter,             // (root, bytes)
  Scan,                // (bytes)
  CommSplit,           // (color, key) -> communicator handle
};

const char* mpiOpName(MpiOp op);

/// True when `raw` encodes a valid MpiOp (deserializer validation).
inline bool isValidMpiOp(uint8_t raw) {
  return raw <= static_cast<uint8_t>(MpiOp::CommSplit);
}

/// True for ops that create a request handle.
inline bool isNonBlockingStart(MpiOp op) {
  return op == MpiOp::Isend || op == MpiOp::Irecv;
}

/// True for collective operations.
inline bool isCollective(MpiOp op) {
  switch (op) {
    case MpiOp::Barrier:
    case MpiOp::Bcast:
    case MpiOp::Reduce:
    case MpiOp::Allreduce:
    case MpiOp::Allgather:
    case MpiOp::Alltoall:
    case MpiOp::Gather:
    case MpiOp::Scatter:
    case MpiOp::Scan:
      return true;
    default:
      return false;
  }
}

/// Wildcard source marker for Recv/Irecv (the paper's MPI_ANY_SOURCE).
constexpr int64_t kAnySource = -1;

/// Build a std::vector<ExprPtr> from move-only arguments (brace lists
/// cannot hold unique_ptr).
template <typename... Es>
std::vector<ExprPtr> exprList(Es... es) {
  std::vector<ExprPtr> v;
  v.reserve(sizeof...(es));
  (v.push_back(std::move(es)), ...);
  return v;
}

enum class InstrKind : uint8_t {
  Assign,       // var = expr
  MpiCall,      // MPI operation
  Call,         // user-defined function call
  Compute,      // local computation of `expr` nanoseconds (replay timing)
  StructEnter,  // instrumentation: entering CST structure `gid`
  StructExit,   // instrumentation: leaving CST structure `gid`
};

/// A single IR instruction. One struct with kind-dependent fields keeps
/// the interpreter a simple switch.
struct Instr {
  InstrKind kind;

  // Assign
  int destVar = -1;
  ExprPtr expr;

  // MpiCall
  MpiOp mpiOp = MpiOp::Barrier;
  std::vector<ExprPtr> args;  // op-specific, see MpiOp comments
  ExprPtr commExpr;           // collective communicator (null = WORLD)
  int reqVar = -1;            // Isend/Irecv/CommSplit: dest slot; Wait: source
  int callSiteId = -1;        // unique per MpiCall instruction in a module

  // Call
  std::string callee;
  std::vector<ExprPtr> callArgs;
  int callInstrId = -1;       // unique per Call instruction in a module

  // StructEnter/StructExit: function-local structure id (assigned by the
  // CST builder; the runtime resolves it against the current CTT context)
  int structId = -1;

  static Instr assign(int var, ExprPtr e) {
    Instr i;
    i.kind = InstrKind::Assign;
    i.destVar = var;
    i.expr = std::move(e);
    return i;
  }
  static Instr mpi(MpiOp op, std::vector<ExprPtr> args, int reqVar = -1) {
    Instr i;
    i.kind = InstrKind::MpiCall;
    i.mpiOp = op;
    i.args = std::move(args);
    i.reqVar = reqVar;
    return i;
  }
  static Instr call(std::string callee, std::vector<ExprPtr> args = {}) {
    Instr i;
    i.kind = InstrKind::Call;
    i.callee = std::move(callee);
    i.callArgs = std::move(args);
    return i;
  }
  static Instr compute(ExprPtr cost) {
    Instr i;
    i.kind = InstrKind::Compute;
    i.expr = std::move(cost);
    return i;
  }
  static Instr structEnter(int structId) {
    Instr i;
    i.kind = InstrKind::StructEnter;
    i.structId = structId;
    return i;
  }
  static Instr structExit(int structId) {
    Instr i;
    i.kind = InstrKind::StructExit;
    i.structId = structId;
    return i;
  }
};

enum class TermKind : uint8_t { Br, CondBr, Ret };

struct Terminator {
  TermKind kind = TermKind::Ret;
  int target = -1;       // Br; CondBr true target
  int elseTarget = -1;   // CondBr false target
  ExprPtr cond;          // CondBr

  static Terminator br(int target) {
    Terminator t;
    t.kind = TermKind::Br;
    t.target = target;
    return t;
  }
  static Terminator condBr(ExprPtr cond, int t, int f) {
    Terminator term;
    term.kind = TermKind::CondBr;
    term.cond = std::move(cond);
    term.target = t;
    term.elseTarget = f;
    return term;
  }
  static Terminator ret() { return Terminator{}; }
};

struct BasicBlock {
  int id = -1;
  std::string name;
  std::vector<Instr> instrs;
  Terminator term;

  std::vector<int> successors() const {
    switch (term.kind) {
      case TermKind::Br:
        return {term.target};
      case TermKind::CondBr:
        return {term.target, term.elseTarget};
      case TermKind::Ret:
        return {};
    }
    return {};
  }
};

struct Function {
  std::string name;
  int numParams = 0;  // params occupy var slots [0, numParams)
  std::vector<std::string> varNames;
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry

  int numVars() const { return static_cast<int>(varNames.size()); }

  /// Append a new block; returns its id.
  int addBlock(std::string name) {
    const int id = static_cast<int>(blocks.size());
    blocks.push_back(BasicBlock{});
    blocks.back().id = id;
    blocks.back().name = std::move(name);
    return id;
  }

  /// Declare a new local variable; returns its slot.
  int addVar(std::string name) {
    varNames.push_back(std::move(name));
    return static_cast<int>(varNames.size()) - 1;
  }
};

struct Module {
  std::vector<std::unique_ptr<Function>> functions;
  std::string entry = "main";

  Function* function(const std::string& name) {
    for (auto& f : functions)
      if (f->name == name) return f.get();
    return nullptr;
  }
  const Function* function(const std::string& name) const {
    for (auto& f : functions)
      if (f->name == name) return f.get();
    return nullptr;
  }

  Function* addFunction(std::string name, int numParams = 0) {
    auto f = std::make_unique<Function>();
    f->name = std::move(name);
    f->numParams = numParams;
    functions.push_back(std::move(f));
    return functions.back().get();
  }

  /// Assign unique callSiteIds to every MpiCall and callInstrIds to every
  /// Call in the module (stable pre-order over functions and blocks).
  /// Called by frontends after construction.
  void numberCallSites();
};

/// Structural validity checks: entry exists, every block terminated with
/// in-range targets, var slots in range, callees resolvable. Throws
/// cypress::Error with a precise message on the first violation.
void verify(const Module& m);

/// Human-readable dump of a function / module (golden tests, debugging).
std::string print(const Function& f);
std::string print(const Module& m);

}  // namespace cypress::ir
