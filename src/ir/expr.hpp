// Integer expression trees — the value language of the cypress IR.
//
// Workload control flow and MPI call arguments (peer ranks, message
// sizes, tags) are integer expressions over function-local variables
// plus the ambient `rank` and `size` of the executing process. They are
// built by the MiniC frontend (or the builder API) and evaluated by the
// per-rank VM.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "support/error.hpp"

namespace cypress::ir {

enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
  Shl, Shr,
  Min, Max,
};

enum class UnOp { Neg, Not };

enum class ExprKind { Const, Var, Rank, Size, Unary, Binary };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int64_t value = 0;            // Const
  int varSlot = -1;             // Var: local slot index
  BinOp bop = BinOp::Add;       // Binary
  UnOp uop = UnOp::Neg;         // Unary
  ExprPtr lhs, rhs;             // Unary uses lhs only

  static ExprPtr constant(int64_t v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Const;
    e->value = v;
    return e;
  }
  static ExprPtr var(int slot) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Var;
    e->varSlot = slot;
    return e;
  }
  static ExprPtr rank() {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Rank;
    return e;
  }
  static ExprPtr size() {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Size;
    return e;
  }
  static ExprPtr unary(UnOp op, ExprPtr a) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Unary;
    e->uop = op;
    e->lhs = std::move(a);
    return e;
  }
  static ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->bop = op;
    e->lhs = std::move(a);
    e->rhs = std::move(b);
    return e;
  }

  ExprPtr clone() const {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->value = value;
    e->varSlot = varSlot;
    e->bop = bop;
    e->uop = uop;
    if (lhs) e->lhs = lhs->clone();
    if (rhs) e->rhs = rhs->clone();
    return e;
  }
};

/// Environment interface for evaluation: local variables + rank/size.
class VarSource {
 public:
  virtual ~VarSource() = default;
  virtual int64_t var(int slot) const = 0;
  virtual int64_t rank() const = 0;
  virtual int64_t size() const = 0;
};

/// Evaluate an expression. Division/modulo by zero throw cypress::Error
/// (a workload bug we want loudly, not as UB).
int64_t evalExpr(const Expr& e, const VarSource& env);

/// Render an expression as text (for IR dumps and diagnostics).
std::string exprToString(const Expr& e,
                         const std::string* varNames = nullptr,
                         size_t numVars = 0);

}  // namespace cypress::ir
