// ScalaTrace-style compressed trace elements: events and regular section
// descriptors (RSDs).
//
// This module reimplements the published algorithmic skeleton of the two
// dynamic baselines the paper compares against:
//   - ScalaTrace (Noeth et al., IPDPS'07): greedy bottom-up loop
//     compression over the event stream; an RSD is (member list,
//     iteration count), and nested RSDs form power-RSDs.
//   - ScalaTrace-2 (Wu & Mueller, ICS'13): "elastic" value aggregation —
//     events with the same operation/call site fold even when their
//     parameters differ, the parameter values being collected into
//     stride-compressed sequences.
//
// One Element type serves both flavors: every parameter is a SectionSeq
// holding the per-occurrence values in chronological order. Under the V1
// matching rule two elements are equal only if their parameter values
// are constant and identical; under V2 they match on (op, call site,
// comm, peer kind) alone.
#pragma once

#include <cstdint>
#include <vector>

#include "cypress/record.hpp"  // PeerRef
#include "support/section_seq.hpp"
#include "support/stats.hpp"
#include "trace/event.hpp"

namespace cypress::scalatrace {

using core::PeerRef;

enum class Flavor : uint8_t { V1, V2 };

struct Element {
  bool isRsd = false;

  // --- event payload ---
  ir::MpiOp op = ir::MpiOp::Barrier;
  int32_t callSiteId = -1;
  int32_t comm = 0;
  PeerRef::Kind peerKind = PeerRef::Kind::None;
  // Per-occurrence values (relative-encoded peers; kNoPeer omitted).
  SectionSeq peerVals, bytesVals, tagVals, reqSiteVals;
  SectionSeq matchedVals;  // wildcard matches only, relative-encoded
  uint64_t occurrences = 0;
  RunningStats duration, compute;

  // --- RSD payload ---
  std::vector<Element> members;
  /// Iteration counts per visit of this RSD (a PRSD iteration vector):
  /// a top-level RSD is visited once; an RSD nested as a member is
  /// visited once per parent iteration. `openCount` is the count of the
  /// still-growing latest visit; normalize() flushes it.
  SectionSeq closedVisits;
  uint64_t openCount = 0;

  static Element fromEvent(const trace::Event& e, int32_t myRank);

  /// Flush the open visit into closedVisits (recursively).
  void normalize();

  /// Flush only this RSD's open visit (non-recursive).
  void normalizeSelfVisits();

  /// Flavor-dependent foldability test (recursive for RSDs).
  bool canFold(const Element& later, Flavor flavor) const;

  /// Absorb `later` (which chronologically follows this element). For
  /// RSDs this is the member-fold: visit vectors concatenate.
  void fold(Element&& later);

  /// Total number of raw events this element represents.
  uint64_t eventCount() const;

  /// Strict content equality (including all value sequences): the V1
  /// inter-process merge criterion.
  bool sameContent(const Element& o) const;

  void mergeStats(const Element& o);

  void serialize(ByteWriter& w) const;
  static Element deserialize(ByteReader& r);

  size_t memoryBytes() const;
};

/// Expand a compressed element list back into the raw event sequence
/// (timing filled from means). Exact for V1 and for per-rank V2 data.
std::vector<trace::Event> expandElements(const std::vector<Element>& elems,
                                         int32_t myRank);

}  // namespace cypress::scalatrace
