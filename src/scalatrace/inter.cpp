#include "scalatrace/inter.hpp"

#include "support/error.hpp"

namespace cypress::scalatrace {

namespace {

/// ScalaTrace-2's loop-agnostic signature: operation identity without
/// parameter values or iteration counts.
bool sameSignature(const Element& a, const Element& b) {
  if (a.isRsd != b.isRsd) return false;
  if (a.isRsd) {
    if (a.members.size() != b.members.size()) return false;
    for (size_t i = 0; i < a.members.size(); ++i)
      if (!sameSignature(a.members[i], b.members[i])) return false;
    return true;
  }
  return a.op == b.op && a.callSiteId == b.callSiteId && a.comm == b.comm &&
         a.peerKind == b.peerKind;
}

bool matches(const MElement& a, const Element& b, Flavor flavor) {
  return flavor == Flavor::V1 ? a.elem.sameContent(b) : sameSignature(a.elem, b);
}

/// Align the running merged sequence with one more rank's sequence via
/// longest-common-subsequence dynamic programming — the O(n·m) pairwise
/// cost the paper attributes to dynamic methods.
std::vector<MElement> align(std::vector<MElement>&& A,
                            const std::vector<Element>& B, int rank,
                            Flavor flavor) {
  const size_t n = A.size();
  const size_t m = B.size();
  // dp[i][j] = LCS length of A[i..] vs B[j..].
  std::vector<uint32_t> dp((n + 1) * (m + 1), 0);
  auto at = [&](size_t i, size_t j) -> uint32_t& { return dp[i * (m + 1) + j]; };
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      uint32_t best = std::max(at(i + 1, j), at(i, j + 1));
      if (matches(A[i], B[j], flavor)) best = std::max(best, at(i + 1, j + 1) + 1);
      at(i, j) = best;
    }
  }

  std::vector<MElement> out;
  out.reserve(n + m);
  size_t i = 0, j = 0;
  while (i < n && j < m) {
    if (matches(A[i], B[j], flavor) && at(i, j) == at(i + 1, j + 1) + 1) {
      MElement merged = std::move(A[i]);
      merged.ranks.insert(rank);
      if (flavor == Flavor::V2) {
        merged.elem.mergeStats(B[j]);
        merged.countByRank[rank] = B[j].eventCount();
      } else {
        merged.elem.mergeStats(B[j]);
      }
      out.push_back(std::move(merged));
      ++i;
      ++j;
    } else if (at(i + 1, j) >= at(i, j + 1)) {
      out.push_back(std::move(A[i]));
      ++i;
    } else {
      MElement fresh;
      fresh.elem = B[j];
      fresh.ranks = RankSet(rank);
      if (flavor == Flavor::V2) fresh.countByRank[rank] = B[j].eventCount();
      out.push_back(std::move(fresh));
      ++j;
    }
  }
  for (; i < n; ++i) out.push_back(std::move(A[i]));
  for (; j < m; ++j) {
    MElement fresh;
    fresh.elem = B[j];
    fresh.ranks = RankSet(rank);
    if (flavor == Flavor::V2) fresh.countByRank[rank] = B[j].eventCount();
    out.push_back(std::move(fresh));
  }
  return out;
}

}  // namespace

MergedSeq mergeSequences(const std::vector<const std::vector<Element>*>& seqs,
                         Flavor flavor, CostMeter* interCost) {
  CYP_CHECK(!seqs.empty(), "mergeSequences with no ranks");
  Stopwatch watch;
  MergedSeq out;
  out.flavor = flavor;
  out.elems.reserve(seqs[0]->size());
  for (const Element& e : *seqs[0]) {
    MElement m;
    m.elem = e;
    m.ranks = RankSet(0);
    if (flavor == Flavor::V2) m.countByRank[0] = e.eventCount();
    out.elems.push_back(std::move(m));
  }
  for (size_t r = 1; r < seqs.size(); ++r) {
    out.elems = align(std::move(out.elems), *seqs[r], static_cast<int>(r), flavor);
  }
  if (interCost) interCost->add(watch.ns());
  return out;
}

std::vector<trace::Event> decompressRank(const MergedSeq& m, int rank) {
  CYP_CHECK(m.flavor == Flavor::V1,
            "ScalaTrace-2 merged traces are lossy; exact per-rank "
            "decompression is not available (by design)");
  std::vector<Element> mine;
  for (const MElement& e : m.elems)
    if (e.ranks.contains(rank)) mine.push_back(e.elem);
  return expandElements(mine, rank);
}

uint64_t eventCountForRank(const MergedSeq& m, int rank) {
  uint64_t total = 0;
  for (const MElement& e : m.elems) {
    if (!e.ranks.contains(rank)) continue;
    if (m.flavor == Flavor::V1) {
      total += e.elem.eventCount();
    } else {
      auto it = e.countByRank.find(rank);
      if (it != e.countByRank.end()) total += it->second;
    }
  }
  return total;
}

void MergedSeq::serializeTo(ByteWriter& w) const {
  w.str("STM1");
  w.u8(flavor == Flavor::V1 ? 1 : 2);
  w.uv(elems.size());
  for (const MElement& e : elems) {
    e.elem.serialize(w);
    e.ranks.serialize(w);
    if (flavor == Flavor::V2) {
      // Per-rank counts, stride-compressed in rank order (usually one
      // constant section in SPMD programs).
      SectionSeq counts;
      for (int32_t r : e.ranks.ranks()) {
        auto it = e.countByRank.find(r);
        counts.append(it == e.countByRank.end()
                          ? 0
                          : static_cast<int64_t>(it->second));
      }
      counts.serialize(w);
    }
  }
}

std::vector<uint8_t> MergedSeq::serialize() const {
  ByteWriter w;
  serializeTo(w);
  return w.take();
}

size_t MergedSeq::serializedBytes() const {
  NullSink null;
  ByteWriter w(null);
  serializeTo(w);
  w.flush();
  return w.size();
}

MergedSeq MergedSeq::deserialize(std::span<const uint8_t> data) {
  ByteReader r(data);
  CYP_CHECK(r.str() == "STM1", "merged scalatrace trace: bad magic");
  const uint8_t flavorByte = r.u8();
  CYP_CHECK(flavorByte == 1 || flavorByte == 2,
            "merged scalatrace trace: bad flavor byte " << int(flavorByte));
  MergedSeq m;
  m.flavor = flavorByte == 1 ? Flavor::V1 : Flavor::V2;
  // An element is at least 4 bytes: non-RSD flag, op, two varints, ...
  // plus the rank set — 3 is a safe floor.
  const uint64_t n = r.checkedCount(r.uv(), 3);
  r.chargeAlloc(n * sizeof(MElement));
  m.elems.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    MElement e;
    e.elem = Element::deserialize(r);
    e.ranks = RankSet::deserialize(r);
    if (m.flavor == Flavor::V2) {
      const SectionSeq counts = SectionSeq::deserialize(r);
      const std::vector<int32_t> ranks = e.ranks.ranks();
      CYP_CHECK(counts.size() == ranks.size(),
                "merged scalatrace trace: per-rank count vector has "
                    << counts.size() << " entries for " << ranks.size()
                    << " ranks");
      auto cur = counts.cursor();
      for (int32_t rk : ranks) {
        const int64_t v = cur.next();
        CYP_CHECK(v >= 0, "merged scalatrace trace: negative event count");
        e.countByRank[rk] = static_cast<uint64_t>(v);
      }
    }
    m.elems.push_back(std::move(e));
  }
  CYP_CHECK(r.atEnd(), "merged scalatrace trace: trailing bytes");
  return m;
}

size_t MergedSeq::memoryBytes() const {
  size_t t = sizeof(*this) + elems.capacity() * sizeof(MElement);
  for (const MElement& e : elems) {
    t += e.elem.memoryBytes() - sizeof(Element);
    t += e.ranks.memoryBytes() - sizeof(RankSet);
    t += e.countByRank.size() * (sizeof(int32_t) + sizeof(uint64_t) + 32);
  }
  return t;
}

}  // namespace cypress::scalatrace
