#include "scalatrace/element.hpp"

#include <map>

#include "support/error.hpp"

namespace cypress::scalatrace {

namespace {

/// Both sequences constant with the same value (or both empty): the V1
/// "identical parameters" test.
bool constEq(const SectionSeq& a, const SectionSeq& b) {
  if (a.empty() || b.empty()) return a.empty() && b.empty();
  const int64_t va = a.at(0);
  return a.isConstant(va) && b.isConstant(va);
}

void appendAll(SectionSeq& dst, const SectionSeq& src) {
  for (const Section& s : src.sections()) dst.appendSection(s);
}

}  // namespace

Element Element::fromEvent(const trace::Event& e, int32_t myRank) {
  Element el;
  el.op = e.op;
  el.callSiteId = e.callSiteId;
  el.comm = e.comm;
  const PeerRef pr = PeerRef::encode(e.op, e.peer, myRank);
  el.peerKind = pr.kind;
  if (pr.kind == PeerRef::Kind::Absolute || pr.kind == PeerRef::Kind::Relative)
    el.peerVals.append(pr.value);
  el.bytesVals.append(e.bytes);
  el.tagVals.append(e.tag);
  el.reqSiteVals.append(e.reqId);
  if (e.matchedSource >= 0) el.matchedVals.append(e.matchedSource - myRank);
  el.occurrences = 1;
  el.duration.add(static_cast<double>(e.durationNs));
  el.compute.add(static_cast<double>(e.computeNs));
  return el;
}

void Element::normalize() {
  if (isRsd) {
    if (openCount > 0) {
      closedVisits.append(static_cast<int64_t>(openCount));
      openCount = 0;
    }
    for (Element& m : members) m.normalize();
  }
}

bool Element::canFold(const Element& later, Flavor flavor) const {
  if (isRsd != later.isRsd) return false;
  if (isRsd) {
    // Iteration-count vectors concatenate on fold, so counts need not
    // match — only the member structure must.
    if (members.size() != later.members.size()) return false;
    for (size_t i = 0; i < members.size(); ++i)
      if (!members[i].canFold(later.members[i], flavor)) return false;
    return true;
  }
  if (op != later.op || callSiteId != later.callSiteId || comm != later.comm ||
      peerKind != later.peerKind) {
    return false;
  }
  if (flavor == Flavor::V2) return true;  // elastic value aggregation
  // V1: parameters must be identical constants.
  return constEq(peerVals, later.peerVals) && constEq(bytesVals, later.bytesVals) &&
         constEq(tagVals, later.tagVals) && constEq(reqSiteVals, later.reqSiteVals) &&
         constEq(matchedVals, later.matchedVals);
}

void Element::fold(Element&& later) {
  CYP_CHECK(isRsd == later.isRsd, "fold of mismatched elements");
  if (isRsd) {
    // Member-fold: this RSD's current visit closes, the later RSD's
    // visit counts are appended.
    normalizeSelfVisits();
    later.normalizeSelfVisits();
    for (const Section& s : later.closedVisits.sections())
      closedVisits.appendSection(s);
    for (size_t i = 0; i < members.size(); ++i)
      members[i].fold(std::move(later.members[i]));
    return;
  }
  occurrences += later.occurrences;
  appendAll(peerVals, later.peerVals);
  appendAll(bytesVals, later.bytesVals);
  appendAll(tagVals, later.tagVals);
  appendAll(reqSiteVals, later.reqSiteVals);
  appendAll(matchedVals, later.matchedVals);
  duration.merge(later.duration);
  compute.merge(later.compute);
}

void Element::normalizeSelfVisits() {
  if (openCount > 0) {
    closedVisits.append(static_cast<int64_t>(openCount));
    openCount = 0;
  }
}

uint64_t Element::eventCount() const {
  if (!isRsd) return occurrences;
  uint64_t n = 0;
  for (const Element& m : members) n += m.eventCount();
  return n;
}

bool Element::sameContent(const Element& o) const {
  if (isRsd != o.isRsd) return false;
  if (isRsd) {
    if (closedVisits != o.closedVisits || openCount != o.openCount ||
        members.size() != o.members.size()) {
      return false;
    }
    for (size_t i = 0; i < members.size(); ++i)
      if (!members[i].sameContent(o.members[i])) return false;
    return true;
  }
  return op == o.op && callSiteId == o.callSiteId && comm == o.comm &&
         peerKind == o.peerKind && occurrences == o.occurrences &&
         peerVals == o.peerVals && bytesVals == o.bytesVals &&
         tagVals == o.tagVals && reqSiteVals == o.reqSiteVals &&
         matchedVals == o.matchedVals;
}

void Element::mergeStats(const Element& o) {
  if (isRsd) {
    for (size_t i = 0; i < members.size(); ++i) members[i].mergeStats(o.members[i]);
    return;
  }
  duration.merge(o.duration);
  compute.merge(o.compute);
}

void Element::serialize(ByteWriter& w) const {
  w.u8(isRsd ? 1 : 0);
  if (isRsd) {
    CYP_CHECK(openCount == 0, "serialize of un-normalized RSD");
    closedVisits.serialize(w);
    w.uv(members.size());
    for (const Element& m : members) m.serialize(w);
    return;
  }
  w.u8(static_cast<uint8_t>(op));
  w.sv(callSiteId);
  w.sv(comm);
  w.u8(static_cast<uint8_t>(peerKind));
  w.uv(occurrences);
  peerVals.serialize(w);
  bytesVals.serialize(w);
  tagVals.serialize(w);
  reqSiteVals.serialize(w);
  matchedVals.serialize(w);
  duration.serialize(w);
  compute.serialize(w);
}

namespace {

/// Defense against RSD nesting bombs: real traces nest as deep as the
/// program's loop structure (single digits); a serialized stream deeper
/// than this is corrupt and would otherwise risk stack exhaustion.
constexpr int kMaxRsdDepth = 256;

Element deserializeElement(ByteReader& r, int depth) {
  CYP_CHECK(depth < kMaxRsdDepth, "scalatrace: RSD nesting deeper than "
                                      << kMaxRsdDepth);
  Element el;
  el.isRsd = r.u8() != 0;
  if (el.isRsd) {
    el.closedVisits = SectionSeq::deserialize(r);
    // A member is at least 3 bytes (RSD flag + empty visit sequence +
    // zero member count).
    const uint64_t n = r.checkedCount(r.uv(), 3);
    r.chargeAlloc(n * sizeof(Element));
    el.members.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
      el.members.push_back(deserializeElement(r, depth + 1));
    return el;
  }
  const uint8_t op = r.u8();
  CYP_CHECK(ir::isValidMpiOp(op), "scalatrace: bad op byte " << int(op));
  el.op = static_cast<ir::MpiOp>(op);
  el.callSiteId = static_cast<int32_t>(r.sv());
  el.comm = static_cast<int32_t>(r.sv());
  const uint8_t peerKind = r.u8();
  CYP_CHECK(peerKind <= static_cast<uint8_t>(PeerRef::Kind::Relative),
            "scalatrace: bad peer-ref kind " << int(peerKind));
  el.peerKind = static_cast<PeerRef::Kind>(peerKind);
  el.occurrences = r.uv();
  el.peerVals = SectionSeq::deserialize(r);
  el.bytesVals = SectionSeq::deserialize(r);
  el.tagVals = SectionSeq::deserialize(r);
  el.reqSiteVals = SectionSeq::deserialize(r);
  el.matchedVals = SectionSeq::deserialize(r);
  el.duration = RunningStats::deserialize(r);
  el.compute = RunningStats::deserialize(r);
  return el;
}

}  // namespace

Element Element::deserialize(ByteReader& r) {
  return deserializeElement(r, 0);
}

size_t Element::memoryBytes() const {
  size_t t = sizeof(Element);
  t += peerVals.memoryBytes() - sizeof(SectionSeq);
  t += bytesVals.memoryBytes() - sizeof(SectionSeq);
  t += tagVals.memoryBytes() - sizeof(SectionSeq);
  t += reqSiteVals.memoryBytes() - sizeof(SectionSeq);
  t += matchedVals.memoryBytes() - sizeof(SectionSeq);
  for (const Element& m : members) t += m.memoryBytes();
  return t;
}

namespace {

struct EventCursor {
  SectionSeq::Cursor peer, bytes, tag, reqSite, matched;
  bool hasMatched;
  explicit EventCursor(const Element& e)
      : peer(e.peerVals.cursor()),
        bytes(e.bytesVals.cursor()),
        tag(e.tagVals.cursor()),
        reqSite(e.reqSiteVals.cursor()),
        matched(e.matchedVals.cursor()),
        hasMatched(!e.matchedVals.empty()) {}
};

class Expander {
 public:
  Expander(int32_t rank) : rank_(rank) {}

  void walk(const std::vector<Element>& elems) {
    for (const Element& e : elems) visit(e);
  }

  void visit(const Element& e) {
    if (e.isRsd) {
      CYP_CHECK(e.openCount == 0, "expansion of un-normalized RSD");
      auto [it, inserted] = rsdCursors_.try_emplace(&e, e.closedVisits.cursor());
      (void)inserted;
      const int64_t iters = it->second.next();
      for (int64_t k = 0; k < iters; ++k)
        for (const Element& m : e.members) visit(m);
      return;
    }
    auto [it, inserted] = cursors_.try_emplace(&e, e);
    EventCursor& c = it->second;
    (void)inserted;
    trace::Event ev;
    ev.op = e.op;
    ev.callSiteId = e.callSiteId;
    ev.comm = e.comm;
    switch (e.peerKind) {
      case PeerRef::Kind::None: ev.peer = trace::kNoPeer; break;
      case PeerRef::Kind::Any: ev.peer = trace::kAnySource; break;
      case PeerRef::Kind::Absolute:
        ev.peer = static_cast<int32_t>(c.peer.next());
        break;
      case PeerRef::Kind::Relative:
        ev.peer = static_cast<int32_t>(c.peer.next()) + rank_;
        break;
    }
    ev.bytes = c.bytes.next();
    ev.tag = static_cast<int32_t>(c.tag.next());
    ev.reqId = c.reqSite.next();
    if (c.hasMatched) ev.matchedSource = static_cast<int32_t>(c.matched.next()) + rank_;
    ev.durationNs = static_cast<uint64_t>(e.duration.mean());
    ev.computeNs = static_cast<uint64_t>(e.compute.mean());
    out_.push_back(ev);
  }

  std::vector<trace::Event> take() {
    // Every cursor must be fully consumed, or the structure is corrupt.
    for (const auto& [el, c] : cursors_) {
      CYP_CHECK(c.bytes.done(), "scalatrace expansion left values unconsumed at "
                                    << ir::mpiOpName(el->op) << " site "
                                    << el->callSiteId);
    }
    return std::move(out_);
  }

 private:
  int32_t rank_;
  std::map<const Element*, EventCursor> cursors_;
  std::map<const Element*, SectionSeq::Cursor> rsdCursors_;
  std::vector<trace::Event> out_;
};

}  // namespace

std::vector<trace::Event> expandElements(const std::vector<Element>& elems,
                                         int32_t myRank) {
  Expander ex(myRank);
  ex.walk(elems);
  return ex.take();
}

}  // namespace cypress::scalatrace
