// Inter-process merging for the dynamic baselines (the expensive part
// the paper contrasts CYPRESS against).
//
// Without a shared static template, per-process compressed sequences
// must be *aligned*: merging one pair costs O(n·m) (LCS dynamic
// programming over compressed elements), and the master-slave fold used
// by the tools makes total cost grow linearly with P — exactly the
// scaling pathology reported in the paper (§I, §VII-C2).
//
// Flavor V1 (ScalaTrace) matches elements only on full content, so the
// merged trace is losslessly per-rank reconstructible. Flavor V2
// (ScalaTrace-2) matches "loop-agnostically" on operation signatures and
// pools parameter values — better ratios on irregular apps, but the
// per-rank interleaving is no longer exactly recoverable (the paper
// notes ScalaTrace-2 "only preserves partial communication information").
#pragma once

#include <map>
#include <vector>

#include "scalatrace/element.hpp"
#include "support/rank_set.hpp"
#include "support/timer.hpp"

namespace cypress::scalatrace {

struct MElement {
  Element elem;
  RankSet ranks;
  /// V2 only: per-rank raw event counts (the aggregate ScalaTrace-2
  /// keeps once exact interleaving is given up).
  std::map<int32_t, uint64_t> countByRank;
};

struct MergedSeq {
  Flavor flavor = Flavor::V1;
  std::vector<MElement> elems;

  /// Stream the STM1 form into `w` (sink-backed writers avoid the full
  /// byte vector); serialize() is the materializing wrapper and
  /// serializedBytes() the counting pass over a discarding sink.
  void serializeTo(ByteWriter& w) const;
  std::vector<uint8_t> serialize() const;
  size_t serializedBytes() const;
  /// Parse a merged trace (`STM1`). Throws cypress::Error on malformed
  /// input.
  static MergedSeq deserialize(std::span<const uint8_t> data);
  size_t memoryBytes() const;
};

/// Master-slave sequential merge of per-rank compressed sequences
/// (index = rank). `interCost` accumulates pure merge CPU time.
MergedSeq mergeSequences(const std::vector<const std::vector<Element>*>& seqs,
                         Flavor flavor, CostMeter* interCost = nullptr);

/// Exact per-rank reconstruction (V1 only; throws for V2, whose merge is
/// lossy by design).
std::vector<trace::Event> decompressRank(const MergedSeq& m, int rank);

/// Total number of raw events represented for a rank (works for both
/// flavors; for V2 this is the preserved aggregate information).
uint64_t eventCountForRank(const MergedSeq& m, int rank);

}  // namespace cypress::scalatrace
