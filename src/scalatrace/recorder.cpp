#include "scalatrace/recorder.hpp"

#include "support/error.hpp"

namespace cypress::scalatrace {

Recorder::Recorder(int rank, Options opts) : rank_(rank), opts_(opts) {
  CYP_CHECK(opts_.window >= 1, "window must be positive");
}

void Recorder::onEvent(const trace::Event& e) {
  ScopedCost sc(cost_);
  seq_.push_back(Element::fromEvent(e, rank_));
  tryCompress(/*final=*/false);
}

void Recorder::tryCompress(bool final) {
  bool changed = true;
  while (changed) {
    changed = false;
    const size_t n = seq_.size();
    // Repeats are only folded while the tail element is a settled plain
    // event: an RSD at the tail may still be growing (its inner loop has
    // not finished), and folding it early would freeze a partial
    // iteration into the pattern. The finalize pass relaxes this.
    const bool tailSettled = final || (n > 0 && !seq_[n - 1].isRsd);

    // Case A — RSD continuation: ... RSD{m1..mk} m1'..mk'  =>  iters+1.
    for (size_t k = 1; tailSettled &&
                       k <= static_cast<size_t>(opts_.window) && k + 1 <= n;
         ++k) {
      Element& r = seq_[n - k - 1];
      if (!r.isRsd || r.members.size() != k) continue;
      bool ok = true;
      for (size_t i = 0; i < k && ok; ++i)
        ok = r.members[i].canFold(seq_[n - k + i], opts_.flavor);
      if (!ok) continue;
      for (size_t i = 0; i < k; ++i)
        r.members[i].fold(std::move(seq_[n - k + i]));
      r.openCount += 1;
      seq_.resize(n - k);
      changed = true;
      break;
    }
    if (changed) continue;

    // Case B — adjacent RSD concatenation: RSD{m} RSD{m}  =>  one RSD.
    if (n >= 2 && seq_[n - 2].isRsd && seq_[n - 1].isRsd &&
        seq_[n - 2].members.size() == seq_[n - 1].members.size()) {
      Element& b = seq_[n - 2];
      Element& a = seq_[n - 1];
      // The tail RSD is always a single open visit.
      if (a.closedVisits.empty() && a.openCount > 0) {
        bool ok = true;
        for (size_t i = 0; i < b.members.size() && ok; ++i)
          ok = b.members[i].canFold(a.members[i], opts_.flavor);
        if (ok) {
          for (size_t i = 0; i < b.members.size(); ++i)
            b.members[i].fold(std::move(a.members[i]));
          b.openCount += a.openCount;
          seq_.pop_back();
          changed = true;
          continue;
        }
      }
    }

    // Case C — fresh repeat: X1..Xk X1'..Xk'  =>  RSD{X1..Xk} x2.
    for (size_t k = 1; tailSettled &&
                       k <= static_cast<size_t>(opts_.window) && 2 * k <= n;
         ++k) {
      bool ok = true;
      for (size_t i = 0; i < k && ok; ++i)
        ok = seq_[n - 2 * k + i].canFold(seq_[n - k + i], opts_.flavor);
      if (!ok) continue;
      Element rsd;
      rsd.isRsd = true;
      rsd.openCount = 2;
      rsd.members.reserve(k);
      for (size_t i = 0; i < k; ++i) {
        Element m = std::move(seq_[n - 2 * k + i]);
        m.fold(std::move(seq_[n - k + i]));
        rsd.members.push_back(std::move(m));
      }
      seq_.resize(n - 2 * k);
      seq_.push_back(std::move(rsd));
      changed = true;
      break;
    }
  }
}

void Recorder::onFinalize() {
  ScopedCost sc(cost_);
  CYP_CHECK(!finalized_, "double finalize");
  tryCompress(/*final=*/true);  // squeeze the tail once nothing can grow
  for (Element& e : seq_) e.normalize();
  finalized_ = true;
}

size_t Recorder::memoryBytes() const {
  size_t t = sizeof(*this) + seq_.capacity() * sizeof(Element);
  for (const Element& e : seq_) t += e.memoryBytes() - sizeof(Element);
  return t;
}

std::vector<uint8_t> Recorder::serialize() const {
  CYP_CHECK(finalized_, "serialize before finalize");
  return serializeSequence(seq_);
}

std::vector<uint8_t> Recorder::serializeSequence(
    const std::vector<Element>& seq) {
  ByteWriter w;
  w.str("STR1");
  w.uv(seq.size());
  for (const Element& e : seq) e.serialize(w);
  return w.take();
}

std::vector<Element> Recorder::deserializeSequence(
    std::span<const uint8_t> data) {
  ByteReader r(data);
  CYP_CHECK(r.str() == "STR1", "scalatrace trace: bad magic");
  const uint64_t n = r.checkedCount(r.uv(), 3);
  r.chargeAlloc(n * sizeof(Element));
  std::vector<Element> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) out.push_back(Element::deserialize(r));
  CYP_CHECK(r.atEnd(), "scalatrace trace: trailing bytes");
  return out;
}

}  // namespace cypress::scalatrace
