// Intra-process dynamic compression for the ScalaTrace baselines.
//
// Unlike CYPRESS, the dynamic recorders receive no static structure: they
// discover repetition bottom-up by searching the tail of the compressed
// queue for repeats (greedy first-match, as in Noeth et al.). Every hook
// is charged to a CostMeter; the per-event search over the window is the
// source of the intra-process overhead the paper measures in Fig. 16.
#pragma once

#include <cstdint>
#include <vector>

#include "scalatrace/element.hpp"
#include "support/timer.hpp"
#include "trace/observer.hpp"

namespace cypress::scalatrace {

class Recorder final : public trace::Observer {
 public:
  struct Options {
    Flavor flavor;
    /// Maximal repeat length searched at the queue tail.
    int window;
    Options() : flavor(Flavor::V1), window(24) {}
    Options(Flavor f, int w = 24) : flavor(f), window(w) {}
  };

  Recorder(int rank, Options opts = Options());

  // trace::Observer: dynamic tools see only the MPI events; the
  // structure hooks are ignored (they would not exist without CYPRESS's
  // static pass).
  void onEvent(const trace::Event& e) override;
  void onStructEnter(int, int) override {}
  void onStructExit(int) override {}
  void onCallEnter(int, const std::string&) override {}
  void onCallExit(const std::string&) override {}
  void onFinalize() override;

  const std::vector<Element>& sequence() const { return seq_; }
  int rank() const { return rank_; }
  bool finalized() const { return finalized_; }
  const CostMeter& cost() const { return cost_; }
  size_t memoryBytes() const;

  /// Serialized per-process compressed trace (for size accounting).
  std::vector<uint8_t> serialize() const;

  /// Serialize a bare element sequence in the same `STR1` format.
  static std::vector<uint8_t> serializeSequence(const std::vector<Element>& seq);

  /// Parse a per-process compressed trace (`STR1`) back into its element
  /// sequence. Throws cypress::Error on malformed input.
  static std::vector<Element> deserializeSequence(std::span<const uint8_t> data);

 private:
  void tryCompress(bool final);

  int rank_;
  Options opts_;
  std::vector<Element> seq_;
  CostMeter cost_;
  bool finalized_ = false;
};

}  // namespace cypress::scalatrace
