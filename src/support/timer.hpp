// Lightweight CPU timers for the overhead experiments.
//
// The intra-process overhead figures (paper Fig. 16) charge each tool
// for the time spent inside its per-event record call; CostMeter
// accumulates those charges with minimal disturbance.
#pragma once

#include <chrono>
#include <cstdint>

namespace cypress {

/// Monotonic nanosecond clock.
inline uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Accumulates time across many short regions.
class CostMeter {
 public:
  void add(uint64_t ns) { total_ += ns; }
  uint64_t totalNs() const { return total_; }
  double totalSeconds() const { return static_cast<double>(total_) * 1e-9; }
  void reset() { total_ = 0; }

 private:
  uint64_t total_ = 0;
};

/// RAII region timer charging into a CostMeter.
class ScopedCost {
 public:
  explicit ScopedCost(CostMeter& m) : meter_(m), start_(nowNs()) {}
  ~ScopedCost() { meter_.add(nowNs() - start_); }
  ScopedCost(const ScopedCost&) = delete;
  ScopedCost& operator=(const ScopedCost&) = delete;

 private:
  CostMeter& meter_;
  uint64_t start_;
};

/// One-shot stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(nowNs()) {}
  double seconds() const { return static_cast<double>(nowNs() - start_) * 1e-9; }
  uint64_t ns() const { return nowNs() - start_; }
  void restart() { start_ = nowNs(); }

 private:
  uint64_t start_;
};

}  // namespace cypress
