// Compact binary serialization: ByteWriter / ByteReader with LEB128
// varints and zigzag-encoded signed integers.
//
// All cypress on-disk formats (serialized CSTs, compressed trace trees,
// raw traces, baseline formats) are built on these primitives so that
// size accounting is consistent across tools.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace cypress {

/// Destination of a byte stream. The streaming pipeline (serialize →
/// shard → compress → write) is built by chaining sinks: a ByteWriter
/// flushes into a sink, the streaming compressor IS a sink and drains
/// into another, and the file layer's AtomicFileWriter terminates the
/// chain. append() must accept any span size, including empty.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void append(std::span<const uint8_t> bytes) = 0;
};

/// Sink that accumulates into a vector (the materializing terminator).
class VectorSink final : public ByteSink {
 public:
  void append(std::span<const uint8_t> bytes) override {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sink that discards everything: pure size accounting. Producers
/// compute their serialized size by writing into a NullSink-backed
/// ByteWriter and reading its running count — no full-buffer
/// materialization just to call .size().
class NullSink final : public ByteSink {
 public:
  void append(std::span<const uint8_t>) override {}
};

/// Append-only little-endian binary writer.
///
/// Two modes share one encode path:
///   - buffered (default ctor): bytes accumulate in an internal vector,
///     retrieved with bytes()/take(). The historical behavior.
///   - sink-backed (ByteSink ctor): the internal buffer is a small
///     staging area flushed to the sink whenever it crosses
///     kFlushBytes; large raw() spans bypass it entirely. size() keeps
///     counting the full stream either way, so producers can report
///     exact sizes without a materialized buffer. Call flush() when the
///     stream is complete (the streaming compressor's finish() expects
///     every byte to have reached it).
class ByteWriter {
 public:
  /// Sink-backed staging threshold: large enough to amortize virtual
  /// append() calls, small enough to stay cache-resident.
  static constexpr size_t kFlushBytes = 64 * 1024;

  ByteWriter() = default;
  explicit ByteWriter(ByteSink& sink) : sink_(&sink) {}
  ~ByteWriter() {
    if (sink_ != nullptr && !buf_.empty()) {
      try {
        flush();
      } catch (...) {
        // A sink failure in a destructor (e.g. disk full during
        // unwinding) cannot be reported; the explicit flush() callers
        // use on the success path sees it.
      }
    }
  }

  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  void u8(uint8_t v) {
    buf_.push_back(v);
    maybeFlush();
  }

  void u32fixed(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    maybeFlush();
  }

  void u64fixed(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    maybeFlush();
  }

  /// Unsigned LEB128 varint.
  void uv(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
    maybeFlush();
  }

  /// Zigzag-encoded signed varint.
  void sv(int64_t v) {
    uv((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  /// IEEE double, fixed 8 bytes.
  void f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64fixed(bits);
  }

  /// Length-prefixed string.
  void str(std::string_view s) {
    uv(s.size());
    raw(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()),
                                 s.size()));
  }

  /// Raw bytes without a length prefix. Sink-backed writers forward
  /// large spans straight to the sink (after flushing the staging
  /// buffer to keep byte order) instead of copying them twice.
  void raw(std::span<const uint8_t> bytes) {
    if (sink_ != nullptr && bytes.size() >= kFlushBytes) {
      flush();
      sink_->append(bytes);
      flushed_ += bytes.size();
      return;
    }
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    maybeFlush();
  }

  /// Bytes written so far, across both modes: for a sink-backed writer
  /// this is the whole stream, not just the staged tail.
  size_t size() const { return flushed_ + buf_.size(); }

  /// Push every staged byte to the sink (no-op when buffered).
  void flush() {
    if (sink_ == nullptr || buf_.empty()) return;
    sink_->append(buf_);
    flushed_ += buf_.size();
    buf_.clear();
  }

  const std::vector<uint8_t>& bytes() const {
    CYP_CHECK(sink_ == nullptr,
              "ByteWriter: bytes() on a sink-backed writer (the stream "
              "already left the buffer)");
    return buf_;
  }
  std::vector<uint8_t> take() {
    CYP_CHECK(sink_ == nullptr,
              "ByteWriter: take() on a sink-backed writer (the stream "
              "already left the buffer)");
    return std::move(buf_);
  }

 private:
  void maybeFlush() {
    if (sink_ != nullptr && buf_.size() >= kFlushBytes) flush();
  }

  std::vector<uint8_t> buf_;
  ByteSink* sink_ = nullptr;
  size_t flushed_ = 0;
};

/// Sequential reader over a byte span; throws cypress::Error on underflow.
///
/// Deserializers of untrusted input must validate every length prefix
/// before allocating: `checkedCount()` rejects counts that imply more
/// serialized bytes than remain in the buffer, and `chargeAlloc()`
/// draws from a configurable allocation budget so that even a
/// pathological-but-consistent input cannot force multi-gigabyte
/// allocations before the first payload byte is read.
class ByteReader {
 public:
  /// Default cumulative cap on count-driven allocations (64 MiB).
  static constexpr size_t kDefaultAllocBudget = 64u << 20;

  explicit ByteReader(std::span<const uint8_t> data,
                      size_t allocBudget = kDefaultAllocBudget)
      : data_(data), allocBudget_(allocBudget) {}

  uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  uint32_t u32fixed() {
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  uint64_t u64fixed() {
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  uint64_t uv() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      need(1);
      uint8_t b = data_[pos_++];
      CYP_CHECK(shift < 64, "varint too long");
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
  }

  int64_t sv() {
    uint64_t z = uv();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  double f64() {
    uint64_t bits = u64fixed();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    uint64_t n = uv();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::span<const uint8_t> raw(size_t n) {
    need(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  bool atEnd() const { return pos_ == data_.size(); }
  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

  /// Validate an untrusted element count `n` whose elements each occupy
  /// at least `perItemFloor` serialized bytes. Rejects any count that
  /// implies more bytes than remain, so `n` is safe to use as an
  /// allocation size hint afterwards.
  uint64_t checkedCount(uint64_t n, size_t perItemFloor) const {
    CYP_CHECK(perItemFloor == 0 ||
                  n <= remaining() / static_cast<uint64_t>(perItemFloor),
              "count " << n << " x " << perItemFloor
                       << "B implies more than the " << remaining()
                       << " bytes remaining");
    return n;
  }

  /// Draw `bytes` of deserializer allocation from the budget; throws
  /// once the cumulative total exceeds it. Counts validated through
  /// checkedCount() are already input-bounded; this is the backstop for
  /// allocations whose size is a multiple of a count (vectors of large
  /// structs, expanded sequences).
  void chargeAlloc(size_t bytes) {
    CYP_CHECK(bytes <= allocBudget_,
              "allocation of " << bytes << " bytes exceeds the reader's "
                               << "remaining budget of " << allocBudget_);
    allocBudget_ -= bytes;
  }
  size_t allocBudget() const { return allocBudget_; }

 private:
  void need(uint64_t n) const {
    // pos_ <= data_.size() always holds, so the subtraction cannot wrap;
    // the naive `pos_ + n <= size` form overflows for huge varint n.
    CYP_CHECK(n <= data_.size() - pos_,
              "buffer underflow: need " << n << " at " << pos_ << "/" << data_.size());
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  size_t allocBudget_;
};

}  // namespace cypress
