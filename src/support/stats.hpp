// Time-statistics records used by CTT leaf vertices.
//
// The paper (§IV-A) supports two recordings for communication time:
//   1. mean + standard deviation of the repeated operations
//   2. a histogram of the time distribution
// Both are implemented here: RunningStats (Welford) and LogHistogram
// (power-of-two buckets, suitable for latencies spanning decades).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "support/bytebuf.hpp"

namespace cypress {

/// Numerically stable running mean / variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
    sum_ += x;
  }

  /// Pool another stats record into this one (parallel-merge formula).
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double d = o.mean_ - mean_;
    const uint64_t n = n_ + o.n_;
    m2_ += o.m2_ + d * d * static_cast<double>(n_) * static_cast<double>(o.n_) /
                       static_cast<double>(n);
    mean_ += d * static_cast<double>(o.n_) / static_cast<double>(n);
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    sum_ += o.sum_;
    n_ = n;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void serialize(ByteWriter& w) const {
    w.uv(n_);
    if (n_ == 0) return;
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
    w.f64(sum_);
  }

  static RunningStats deserialize(ByteReader& r) {
    RunningStats s;
    s.n_ = r.uv();
    if (s.n_ == 0) return s;
    s.mean_ = r.f64();
    s.m2_ = r.f64();
    s.min_ = r.f64();
    s.max_ = r.f64();
    s.sum_ = r.f64();
    return s;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Histogram over power-of-two buckets: bucket i counts values in
/// [2^i, 2^(i+1)) (values are expected in integral time units, e.g. ns).
/// Bucket 0 also absorbs values < 1.
class LogHistogram {
 public:
  static constexpr int kBuckets = 48;

  void add(double x) {
    ++n_;
    buckets_[bucketOf(x)]++;
  }

  void merge(const LogHistogram& o) {
    n_ += o.n_;
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  }

  uint64_t count() const { return n_; }
  uint64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)]; }

  /// Lower edge of bucket i.
  static double bucketLow(int i) { return i == 0 ? 0.0 : std::ldexp(1.0, i); }

  /// Representative (geometric-ish midpoint) value of bucket i, used when
  /// reconstructing times during replay.
  static double bucketMid(int i) {
    return i == 0 ? 1.0 : std::ldexp(1.5, i);
  }

  /// Mean reconstructed from bucket midpoints.
  double approxMean() const {
    if (n_ == 0) return 0.0;
    double s = 0.0;
    for (int i = 0; i < kBuckets; ++i)
      s += static_cast<double>(buckets_[static_cast<size_t>(i)]) * bucketMid(i);
    return s / static_cast<double>(n_);
  }

  static int bucketOf(double x) {
    if (!(x >= 1.0)) return 0;
    int e = 0;
    std::frexp(x, &e);  // x = m * 2^e, m in [0.5,1)
    int b = e - 1;
    if (b < 0) b = 0;
    if (b >= kBuckets) b = kBuckets - 1;
    return b;
  }

  void serialize(ByteWriter& w) const {
    w.uv(n_);
    // Sparse encoding: (index, count) pairs.
    uint32_t nz = 0;
    for (auto c : buckets_)
      if (c) ++nz;
    w.uv(nz);
    for (int i = 0; i < kBuckets; ++i) {
      if (buckets_[static_cast<size_t>(i)]) {
        w.uv(static_cast<uint64_t>(i));
        w.uv(buckets_[static_cast<size_t>(i)]);
      }
    }
  }

  static LogHistogram deserialize(ByteReader& r) {
    LogHistogram h;
    h.n_ = r.uv();
    const uint64_t nz = r.checkedCount(r.uv(), 2);
    CYP_CHECK(nz <= static_cast<uint64_t>(kBuckets),
              "histogram has " << nz << " sparse entries for " << kBuckets
                               << " buckets");
    for (uint64_t k = 0; k < nz; ++k) {
      uint64_t i = r.uv();
      CYP_CHECK(i < kBuckets, "bad histogram bucket index " << i);
      h.buckets_[i] = r.uv();
    }
    return h;
  }

 private:
  uint64_t n_ = 0;
  std::array<uint64_t, kBuckets> buckets_{};
};

}  // namespace cypress
