// Error handling primitives shared by every cypress module.
//
// The library reports programmer errors (broken invariants) via
// CYP_CHECK, which throws cypress::Error. Recoverable conditions are
// reported through return values; exceptions are reserved for bugs and
// malformed external inputs (e.g. a corrupt serialized CTT).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cypress {

/// Exception type thrown on broken invariants and malformed inputs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void failCheck(const char* cond, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace cypress

/// Always-on invariant check. `msg` is streamed, e.g.
///   CYP_CHECK(n >= 0, "negative count " << n);
#define CYP_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream cyp_check_os_;                                   \
      cyp_check_os_ << msg;                                               \
      ::cypress::detail::failCheck(#cond, __FILE__, __LINE__,             \
                                   cyp_check_os_.str());                  \
    }                                                                     \
  } while (0)

/// Unconditional failure with message.
#define CYP_FAIL(msg)                                                     \
  do {                                                                    \
    std::ostringstream cyp_check_os_;                                     \
    cyp_check_os_ << msg;                                                 \
    ::cypress::detail::failCheck("unreachable", __FILE__, __LINE__,       \
                                 cyp_check_os_.str());                    \
  } while (0)
