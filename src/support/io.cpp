#include "support/io.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace cypress::io {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void throwIo(const std::string& op, const std::string& path,
                          int errnum, const std::string& extra = "") {
  std::string what = "io: " + op + " " + path + " failed";
  if (errnum != 0) {
    what += ": ";
    what += std::strerror(errnum);
    what += " (errno " + std::to_string(errnum) + ")";
  }
  if (!extra.empty()) what += ": " + extra;
  throw IoError(op, path, errnum, what);
}

std::string parentDir(const std::string& path) {
  const fs::path p = fs::path(path).parent_path();
  return p.empty() ? std::string(".") : p.string();
}

/// fsync the directory containing `path`, making a just-completed
/// rename/create in it durable.
void syncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throwIo("opendir", dir, errno);
  if (::fsync(fd) != 0) {
    const int e = errno;
    ::close(fd);
    // Some filesystems refuse directory fsync (EINVAL); that is a
    // property of the mount, not a torn write.
    if (e != EINVAL) throwIo("fsyncdir", dir, e);
    return;
  }
  ::close(fd);
}

class RealIoFile final : public IoFile {
 public:
  RealIoFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~RealIoFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void write(std::span<const uint8_t> bytes) override {
    CYP_CHECK(fd_ >= 0, "io: write to closed file " << path_);
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        throwIo("write", path_, errno);
      }
      off += static_cast<size_t>(n);
    }
  }

  void sync() override {
    CYP_CHECK(fd_ >= 0, "io: fsync on closed file " << path_);
    if (::fsync(fd_) != 0) throwIo("fsync", path_, errno);
  }

  void close() override {
    if (fd_ < 0) return;
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) throwIo("close", path_, errno);
  }

  const std::string& path() const override { return path_; }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

bool isDiskFull(int errnum) {
  return errnum == ENOSPC || errnum == EDQUOT || errnum == EFBIG;
}

std::unique_ptr<IoFile> RealIoBackend::openWrite(const std::string& path,
                                                 bool append) {
  const int flags = O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throwIo("open", path, errno);
  return std::make_unique<RealIoFile>(fd, path);
}

std::vector<uint8_t> RealIoBackend::readAll(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throwIo("open", path, errno);
  std::vector<uint8_t> out;
  uint8_t buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int e = errno;
      ::close(fd);
      throwIo("read", path, e);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

void RealIoBackend::rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0)
    throwIo("rename", from + " -> " + to, errno);
  syncDir(parentDir(to));
}

bool RealIoBackend::exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void RealIoBackend::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    throwIo("unlink", path, errno);
}

void RealIoBackend::truncate(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
    throwIo("truncate", path, errno);
}

uint64_t RealIoBackend::fileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) throwIo("stat", path, errno);
  return static_cast<uint64_t>(st.st_size);
}

void RealIoBackend::createDirectories(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) throwIo("mkdir", path, ec.value());
}

IoBackend& realIo() {
  static RealIoBackend backend;
  return backend;
}

IoFaultSpec parseIoFaultSpec(const std::string& spec) {
  const auto at = spec.find('@');
  CYP_CHECK(at != std::string::npos && at > 0,
            "io fault spec `" << spec << "`: expected kind@N[:pathSubstr]");
  const std::string kind = spec.substr(0, at);
  std::string rest = spec.substr(at + 1);
  IoFaultSpec f;
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    f.pathSubstr = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }
  CYP_CHECK(!rest.empty() &&
                rest.find_first_not_of("0123456789") == std::string::npos,
            "io fault spec `" << spec << "`: ordinal must be a number");
  f.at = std::stoull(rest);
  CYP_CHECK(f.at >= 1, "io fault spec `" << spec << "`: ordinal is 1-based");
  if (kind == "enospc") f.kind = IoFaultSpec::Kind::Enospc;
  else if (kind == "eio") f.kind = IoFaultSpec::Kind::Eio;
  else if (kind == "short") f.kind = IoFaultSpec::Kind::ShortWrite;
  else if (kind == "fsync") f.kind = IoFaultSpec::Kind::FsyncFail;
  else if (kind == "rename") f.kind = IoFaultSpec::Kind::TornRename;
  else CYP_FAIL("io fault spec `" << spec << "`: unknown kind `" << kind
                                  << "` (enospc|eio|short|fsync|rename)");
  return f;
}

/// Wraps a real file; write/sync failures come from the owning
/// backend's plan, everything that succeeds passes through.
class FaultyIoFile final : public IoFile {
 public:
  FaultyIoFile(FaultyIoBackend& owner, std::unique_ptr<IoFile> base)
      : owner_(owner), base_(std::move(base)) {}

  void write(std::span<const uint8_t> bytes) override;
  void sync() override;
  void close() override { base_->close(); }
  const std::string& path() const override { return base_->path(); }

 private:
  FaultyIoBackend& owner_;
  std::unique_ptr<IoFile> base_;
};

FaultyIoBackend::FaultyIoBackend(IoBackend& base, std::vector<IoFaultSpec> plan)
    : base_(base), plan_(std::move(plan)), seen_(plan_.size(), 0) {}

const IoFaultSpec* FaultyIoBackend::arm(IoFaultSpec::Kind k1,
                                        IoFaultSpec::Kind k2,
                                        IoFaultSpec::Kind k3,
                                        const std::string& path) {
  for (size_t i = 0; i < plan_.size(); ++i) {
    const IoFaultSpec& f = plan_[i];
    if (f.kind != k1 && f.kind != k2 && f.kind != k3) continue;
    if (!f.pathSubstr.empty() && path.find(f.pathSubstr) == std::string::npos)
      continue;
    if (++seen_[i] == f.at) {
      ++fired_;
      return &f;
    }
  }
  return nullptr;
}

void FaultyIoFile::write(std::span<const uint8_t> bytes) {
  using K = IoFaultSpec::Kind;
  ++owner_.writes_;
  const IoFaultSpec* f =
      owner_.arm(K::Enospc, K::Eio, K::ShortWrite, path());
  if (f == nullptr) {
    base_->write(bytes);
    return;
  }
  switch (f->kind) {
    case K::Enospc:
      // The realistic ENOSPC: some bytes land, then the disk is full.
      base_->write(bytes.subspan(0, bytes.size() / 2));
      throw IoError("write", path(), ENOSPC,
                    "io: write " + path() + " failed: injected ENOSPC after " +
                        std::to_string(bytes.size() / 2) + " of " +
                        std::to_string(bytes.size()) + " bytes");
    case K::Eio:
      throw IoError("write", path(), EIO,
                    "io: write " + path() + " failed: injected EIO");
    case K::ShortWrite:
      base_->write(bytes.subspan(0, bytes.size() / 2));
      throw IoError("write", path(), 0,
                    "io: write " + path() + " failed: injected short write (" +
                        std::to_string(bytes.size() / 2) + " of " +
                        std::to_string(bytes.size()) + " bytes)");
    default:
      break;
  }
  base_->write(bytes);
}

void FaultyIoFile::sync() {
  using K = IoFaultSpec::Kind;
  ++owner_.syncs_;
  if (owner_.arm(K::FsyncFail, K::FsyncFail, K::FsyncFail, path()))
    throw IoError("fsync", path(), EIO,
                  "io: fsync " + path() + " failed: injected EIO");
  base_->sync();
}

std::unique_ptr<IoFile> FaultyIoBackend::openWrite(const std::string& path,
                                                   bool append) {
  return std::make_unique<FaultyIoFile>(*this, base_.openWrite(path, append));
}

std::vector<uint8_t> FaultyIoBackend::readAll(const std::string& path) {
  return base_.readAll(path);
}

void FaultyIoBackend::rename(const std::string& from, const std::string& to) {
  using K = IoFaultSpec::Kind;
  ++renames_;
  if (arm(K::TornRename, K::TornRename, K::TornRename, to)) {
    // A lying-filesystem rename: the caller sees success, but the file
    // lost its tail on the way (the crash window a missing
    // fsync-before-rename opens). Only CRC/seal validation can tell.
    const uint64_t size = base_.fileSize(from);
    base_.truncate(from, size / 2);
    base_.rename(from, to);
    return;
  }
  base_.rename(from, to);
}

bool FaultyIoBackend::exists(const std::string& path) {
  return base_.exists(path);
}

void FaultyIoBackend::remove(const std::string& path) { base_.remove(path); }

void FaultyIoBackend::truncate(const std::string& path, uint64_t size) {
  base_.truncate(path, size);
}

uint64_t FaultyIoBackend::fileSize(const std::string& path) {
  return base_.fileSize(path);
}

void FaultyIoBackend::createDirectories(const std::string& path) {
  base_.createDirectories(path);
}

AtomicFileWriter::AtomicFileWriter(IoBackend& io, const std::string& path)
    : io_(io), path_(path), tmp_(path + ".tmp") {
  file_ = io_.openWrite(tmp_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (committed_) return;
  // Abort path: best-effort cleanup; the write already failed, and a
  // destructor must not throw over the original error.
  try {
    if (file_) file_->close();
  } catch (const Error&) {
  }
  try {
    io_.remove(tmp_);
  } catch (const Error&) {
  }
}

void AtomicFileWriter::write(std::span<const uint8_t> bytes) {
  CYP_CHECK(!committed_, "io: write after commit to " << path_);
  file_->write(bytes);
}

void AtomicFileWriter::commit() {
  CYP_CHECK(!committed_, "io: double commit to " << path_);
  file_->sync();
  file_->close();
  io_.rename(tmp_, path_);
  committed_ = true;
}

void writeFileAtomic(IoBackend& io, const std::string& path,
                     std::span<const uint8_t> bytes) {
  AtomicFileWriter w(io, path);
  w.write(bytes);
  w.commit();
}

uint64_t peakRssBytes() {
  struct rusage ru;
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

}  // namespace cypress::io
