#include "support/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <memory>

namespace cypress {

ThreadPool::ThreadPool(unsigned workers) {
  target_ = std::max(1u, workers);
  workers_.reserve(target_);
  for (unsigned i = 0; i < target_; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::tryRunOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::workerLoop(unsigned id) {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this, id] {
        return stop_ || id >= target_ || !queue_.empty();
      });
      if (id >= target_) return;   // retired by resize(); others drain
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::resize(unsigned workers) {
  workers = std::max(1u, workers);
  std::vector<std::thread> retired;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (workers == target_) return;
    if (workers < target_) {
      for (size_t i = workers; i < workers_.size(); ++i)
        retired.push_back(std::move(workers_[i]));
      workers_.resize(workers);
    } else {
      for (unsigned i = target_; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    }
    target_ = workers;
  }
  cv_.notify_all();
  // A retired worker may be mid-task; it exits after finishing it.
  for (auto& t : retired) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::configureShared(unsigned workers) { shared().resize(workers); }

void parallelFor(size_t n, int threads, const std::function<void(size_t)>& fn,
                 ThreadPool* pool) {
  if (n == 0) return;
  const size_t lanes =
      std::min(n, static_cast<size_t>(std::max(threads, 1)));
  if (lanes <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (pool == nullptr) pool = &ThreadPool::shared();

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  auto st = std::make_shared<State>();
  st->remaining = lanes - 1;
  st->errors.resize(lanes);

  // Lane `lane` owns the contiguous index chunk [n*lane/lanes,
  // n*(lane+1)/lanes); a throwing index aborts only its own lane, like
  // the sequential loop would abort everything after it.
  auto runLane = [&fn, n, lanes](size_t lane, std::exception_ptr& err) {
    const size_t lo = n * lane / lanes;
    const size_t hi = n * (lane + 1) / lanes;
    try {
      for (size_t i = lo; i < hi; ++i) fn(i);
    } catch (...) {
      err = std::current_exception();
    }
  };

  for (size_t lane = 1; lane < lanes; ++lane) {
    pool->enqueue([st, lane, runLane] {
      runLane(lane, st->errors[lane]);
      {
        std::lock_guard<std::mutex> lk(st->mu);
        --st->remaining;
      }
      st->cv.notify_all();
    });
  }

  runLane(0, st->errors[0]);
  // Help drain the pool while waiting: the queued task we run may be a
  // lane of ours, a lane of a nested fan-out, or unrelated work — any of
  // them is progress, and it keeps a fully-blocked pool impossible.
  while (true) {
    {
      std::lock_guard<std::mutex> lk(st->mu);
      if (st->remaining == 0) break;
    }
    if (!pool->tryRunOne()) {
      std::unique_lock<std::mutex> lk(st->mu);
      st->cv.wait_for(lk, std::chrono::milliseconds(1),
                      [&] { return st->remaining == 0; });
    }
  }
  for (const auto& err : st->errors)
    if (err) std::rethrow_exception(err);
}

}  // namespace cypress
