// Deterministic pseudo-random source (splitmix64 + xoshiro256**).
//
// Workload jitter (computation-time noise, non-deterministic completion
// orders) and property-based tests must be reproducible bit-for-bit, so
// everything random in the repository goes through this generator with an
// explicit seed — never std::random_device or global state.
#pragma once

#include <cstdint>

namespace cypress {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding to spread low-entropy seeds.
    uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9E3779B97F4A7C15ULL;
      uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ULL;
      t = (t ^ (t >> 27)) * 0x94D049BB133111EBULL;
      s = t ^ (t >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t below(uint64_t n) { return n ? next() % n : 0; }

  /// Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace cypress
