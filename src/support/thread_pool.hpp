// Shared fixed-order thread pool for the compression pipeline.
//
// One global FIFO queue, no per-worker deques and no work stealing:
// tasks start in exactly the order they were enqueued, so a fan-out
// whose tasks are independent and whose results are collected by index
// produces output that is a pure function of its inputs — never of the
// scheduler. Every parallel stage in the pipeline (per-rank trace
// serialization, flate shard compression, the inter-process merge
// reduction) goes through parallelFor() below, which is what makes
// `threads=N` byte-identical to `threads=1` by construction.
//
// A thread blocked in parallelFor() does not idle: it executes queued
// tasks itself while waiting ("helping"), so nested fan-outs — a
// pipeline task that internally shards a flate compression — cannot
// deadlock even on a single-worker pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cypress {

class ThreadPool {
 public:
  /// Spawns exactly `workers` (>= 1) threads.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workerCount() const { return static_cast<unsigned>(workers_.size()); }

  /// Grow or shrink the pool to exactly `workers` (clamped to >= 1)
  /// threads. Shrinking retires the highest-numbered workers: each
  /// finishes the task it is running, then exits and is joined before
  /// resize() returns; queued tasks are never lost — the surviving
  /// workers (and helping submitters) drain them. Call from outside the
  /// pool's own tasks (e.g. a tool's main thread), not from within one.
  void resize(unsigned workers);

  /// Append a task to the FIFO queue.
  void enqueue(std::function<void()> task);

  /// Pop and run one queued task on the calling thread, if any. This is
  /// how blocked submitters help drain the queue instead of idling.
  bool tryRunOne();

  /// Enqueue a callable and get its result (or exception) as a future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Process-wide pool sized to the hardware, constructed on first use
  /// and reused by every pipeline stage.
  static ThreadPool& shared();

  /// Resize the shared pool to the user's requested `--threads` count so
  /// a request for fewer threads does not leave hardware_concurrency
  /// workers running (oversubscription when the caller then does its own
  /// threading, wasted idle threads otherwise). Equivalent to
  /// shared().resize(workers).
  static void configureShared(unsigned workers);

 private:
  void workerLoop(unsigned id);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  unsigned target_ = 0;  // desired worker count; workers with id >= it exit
  std::vector<std::thread> workers_;
};

/// Run fn(i) for every i in [0, n) with at most `threads` lanes of
/// concurrency drawn from `pool` (the shared pool by default).
///
/// Indices are dealt to lanes in fixed contiguous chunks, so the work
/// partition depends only on (n, threads) — never on timing. The
/// calling thread executes lane 0 itself and helps drain the pool while
/// waiting for the others. If any index throws, the exception from the
/// lowest-numbered failing lane is rethrown in the calling thread after
/// all lanes have finished. `threads <= 1` (or n <= 1) runs inline with
/// no queueing at all.
void parallelFor(size_t n, int threads, const std::function<void(size_t)>& fn,
                 ThreadPool* pool = nullptr);

}  // namespace cypress
