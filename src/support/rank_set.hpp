// RankSet: the set of MPI ranks that share a merged trace record.
//
// During inter-process CTT merging (paper §IV-B, Figure 13) identical
// records from many processes collapse into one record annotated with
// the set of ranks it covers.  Sets are serialized as stride ranges
// (SectionSeq over the sorted ranks), so the common cases — a single
// rank, "ranks 1..P-2", "even ranks" — cost O(1) tuples.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/section_seq.hpp"

namespace cypress {

class RankSet {
 public:
  /// Cap on deserialized set sizes (4M ranks ≈ 16 MiB expanded) — far
  /// above any simulated job, far below an OOM.
  static constexpr uint64_t kMaxSerializedRanks = 1u << 22;

  RankSet() = default;
  explicit RankSet(int32_t rank) : ranks_{rank} {}

  static RankSet range(int32_t first, int32_t lastInclusive) {
    RankSet s;
    for (int32_t r = first; r <= lastInclusive; ++r) s.ranks_.push_back(r);
    return s;
  }

  void insert(int32_t rank) {
    auto it = std::lower_bound(ranks_.begin(), ranks_.end(), rank);
    if (it == ranks_.end() || *it != rank) ranks_.insert(it, rank);
  }

  /// Set union (the other set's ranks are absorbed).
  void unite(const RankSet& o) {
    std::vector<int32_t> out;
    out.reserve(ranks_.size() + o.ranks_.size());
    std::set_union(ranks_.begin(), ranks_.end(), o.ranks_.begin(), o.ranks_.end(),
                   std::back_inserter(out));
    ranks_ = std::move(out);
  }

  bool contains(int32_t rank) const {
    return std::binary_search(ranks_.begin(), ranks_.end(), rank);
  }

  size_t size() const { return ranks_.size(); }
  bool empty() const { return ranks_.empty(); }
  const std::vector<int32_t>& ranks() const { return ranks_; }

  bool operator==(const RankSet&) const = default;

  void serialize(ByteWriter& w) const {
    SectionSeq seq;
    for (int32_t r : ranks_) seq.append(r);
    seq.serialize(w);
  }

  static RankSet deserialize(ByteReader& r) {
    SectionSeq seq = SectionSeq::deserialize(r);
    // The stride sections are tiny on disk but expand to one int32 per
    // rank; bound the logical size before materializing so a corrupt
    // (start, stride, hugeCount) tuple cannot demand gigabytes.
    CYP_CHECK(seq.size() <= kMaxSerializedRanks,
              "rank set: implausible member count " << seq.size());
    r.chargeAlloc(seq.size() * (sizeof(int64_t) + sizeof(int32_t)));
    RankSet s;
    auto vals = seq.expand();
    s.ranks_.reserve(vals.size());
    for (int64_t v : vals) {
      CYP_CHECK(v >= 0 && v <= INT32_MAX, "rank set: rank " << v << " out of range");
      s.ranks_.push_back(static_cast<int32_t>(v));
    }
    CYP_CHECK(std::is_sorted(s.ranks_.begin(), s.ranks_.end()), "rank set not sorted");
    return s;
  }

  size_t memoryBytes() const {
    return sizeof(*this) + ranks_.capacity() * sizeof(int32_t);
  }

 private:
  std::vector<int32_t> ranks_;  // sorted, unique
};

}  // namespace cypress
