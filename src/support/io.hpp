// Fault-injectable I/O layer: every durable write in cypress goes
// through an IoBackend.
//
// The library's crash-consistency story (CYJ1 journals, the CYL1
// ledger, CYSP merge spills, atomic artifact write-out) rests on three
// primitives — append a framed segment, fsync, rename into place — and
// on the claim that any of them can fail or tear at any moment. This
// header makes that claim testable: production code writes through
// RealIoBackend (POSIX write/fsync/rename with directory fsyncs), and
// tests swap in a FaultyIoBackend that injects ENOSPC, EIO, short
// writes, fsync failures, and torn renames at deterministic operation
// ordinals from a seeded plan — the same `kind@N` grammar the PR 2
// fault injector uses for MPI ranks (`kill:R@N`), applied to disk ops.
//
// Failures surface as IoError (a cypress::Error carrying the errno and
// the failing op/path), so callers can distinguish a disk-full
// condition — permanent, not worth a retry — from a corrupt input.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "support/bytebuf.hpp"
#include "support/error.hpp"

namespace cypress::io {

/// An I/O failure: op + path + errno. `errnum` is 0 when the failure
/// has no meaningful errno (e.g. an injected short write).
class IoError : public Error {
 public:
  IoError(const std::string& op, const std::string& path, int errnum,
          const std::string& what)
      : Error(what), op_(op), path_(path), errnum_(errnum) {}

  const std::string& op() const { return op_; }
  const std::string& path() const { return path_; }
  int errnum() const { return errnum_; }

 private:
  std::string op_;
  std::string path_;
  int errnum_;
};

/// True for the errnos that mean "the disk is full" — ENOSPC, EDQUOT,
/// and EFBIG (what an RLIMIT_FSIZE-capped process sees). These are
/// permanent for the failing attempt: retrying without freeing space
/// fails identically.
bool isDiskFull(int errnum);

/// One open file. write() either writes every byte or throws IoError —
/// short writes are retried at the POSIX layer and injected explicitly
/// by the faulty backend, never silently swallowed.
class IoFile {
 public:
  virtual ~IoFile() = default;
  virtual void write(std::span<const uint8_t> bytes) = 0;
  virtual void sync() = 0;
  /// Idempotent; called by the destructor (which swallows errors —
  /// call close() explicitly when a failure must be observed).
  virtual void close() = 0;
  virtual const std::string& path() const = 0;
};

/// VFS-style backend: the five operations cypress durability is built
/// on, plus the small read/query set the same call sites need.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  /// Open for writing: truncates unless `append`.
  virtual std::unique_ptr<IoFile> openWrite(const std::string& path,
                                            bool append = false) = 0;
  virtual std::vector<uint8_t> readAll(const std::string& path) = 0;
  /// rename(2) + fsync of the destination's parent directory, so the
  /// rename itself is durable — without the directory fsync a crash can
  /// roll the rename back even though the data blocks survived.
  virtual void rename(const std::string& from, const std::string& to) = 0;
  virtual bool exists(const std::string& path) = 0;
  /// Missing file is not an error.
  virtual void remove(const std::string& path) = 0;
  virtual void truncate(const std::string& path, uint64_t size) = 0;
  virtual uint64_t fileSize(const std::string& path) = 0;
  virtual void createDirectories(const std::string& path) = 0;
};

/// POSIX implementation (open/write/fsync/rename).
class RealIoBackend final : public IoBackend {
 public:
  std::unique_ptr<IoFile> openWrite(const std::string& path,
                                    bool append = false) override;
  std::vector<uint8_t> readAll(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  bool exists(const std::string& path) override;
  void remove(const std::string& path) override;
  void truncate(const std::string& path, uint64_t size) override;
  uint64_t fileSize(const std::string& path) override;
  void createDirectories(const std::string& path) override;
};

/// Process-wide RealIoBackend (the default when call sites take an
/// IoBackend* and get nullptr).
IoBackend& realIo();

/// One injected fault: fail the `at`-th matching operation (1-based,
/// counted per backend instance over ops whose path contains
/// `pathSubstr` when set). Spec grammar, mirroring the PR 2 fault
/// plans: `kind@N[:pathSubstr]` with kind one of
///   enospc  Nth write fails with ENOSPC after half the bytes land
///   eio     Nth write fails with EIO, nothing lands
///   short   Nth write lands only half its bytes, then throws
///   fsync   Nth sync fails with EIO (data may or may not be durable)
///   rename  Nth rename completes but the source had silently lost its
///           tail (simulates a missing fsync-before-rename: the
///           destination exists, torn — CRC/seal checks must catch it)
struct IoFaultSpec {
  enum class Kind { Enospc, Eio, ShortWrite, FsyncFail, TornRename };
  Kind kind = Kind::Enospc;
  uint64_t at = 1;
  std::string pathSubstr;
};

IoFaultSpec parseIoFaultSpec(const std::string& spec);

/// Deterministic fault injection over a base backend. Operation
/// counters are per-instance, so the same plan over the same call
/// sequence always fails at the same byte.
class FaultyIoBackend final : public IoBackend {
 public:
  explicit FaultyIoBackend(IoBackend& base,
                           std::vector<IoFaultSpec> plan = {});

  void addFault(const IoFaultSpec& f) {
    plan_.push_back(f);
    seen_.push_back(0);
  }

  std::unique_ptr<IoFile> openWrite(const std::string& path,
                                    bool append = false) override;
  std::vector<uint8_t> readAll(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  bool exists(const std::string& path) override;
  void remove(const std::string& path) override;
  void truncate(const std::string& path, uint64_t size) override;
  uint64_t fileSize(const std::string& path) override;
  void createDirectories(const std::string& path) override;

  uint64_t writesSeen() const { return writes_; }
  uint64_t syncsSeen() const { return syncs_; }
  uint64_t renamesSeen() const { return renames_; }
  uint64_t faultsFired() const { return fired_; }

 private:
  friend class FaultyIoFile;
  /// Returns the armed fault for this (kind-class, path) op, if any.
  /// Each spec keeps its own counter of matching operations, so
  /// `enospc@2:b1.cysp` fires on the second write that touches the
  /// b1 spill regardless of how much unrelated I/O came before.
  const IoFaultSpec* arm(IoFaultSpec::Kind k1, IoFaultSpec::Kind k2,
                         IoFaultSpec::Kind k3, const std::string& path);

  IoBackend& base_;
  std::vector<IoFaultSpec> plan_;
  std::vector<uint64_t> seen_;  // parallel to plan_: matching ops so far
  uint64_t writes_ = 0;
  uint64_t syncs_ = 0;
  uint64_t renames_ = 0;
  uint64_t fired_ = 0;
};

/// Enforces the write-tmp → fsync → rename-into-place discipline every
/// atomic artifact write must follow. Writes accumulate in `path.tmp`;
/// commit() fsyncs, closes, and renames (the backend fsyncs the parent
/// directory). Destroying an uncommitted writer removes the tmp file,
/// so an aborted write leaves nothing behind under either name.
///
/// Also a ByteSink, so it terminates streaming chains: a producer
/// serializes through flate::StreamingCompressor (or a bare sink-backed
/// ByteWriter) straight into the tmp file, and an exception anywhere
/// upstream still leaves nothing under the final name.
class AtomicFileWriter final : public ByteSink {
 public:
  AtomicFileWriter(IoBackend& io, const std::string& path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  void write(std::span<const uint8_t> bytes);
  void append(std::span<const uint8_t> bytes) override { write(bytes); }
  void commit();
  bool committed() const { return committed_; }

 private:
  IoBackend& io_;
  std::string path_;
  std::string tmp_;
  std::unique_ptr<IoFile> file_;
  bool committed_ = false;
};

/// One-shot atomic write of a full buffer.
void writeFileAtomic(IoBackend& io, const std::string& path,
                     std::span<const uint8_t> bytes);

/// Peak resident set size of this process so far, in bytes (getrusage
/// ru_maxrss). Monotone high-water mark: meaningful for a stage only
/// when sampled before anything larger ran.
uint64_t peakRssBytes();

}  // namespace cypress::io
