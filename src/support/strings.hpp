// Small string/formatting helpers shared by tools, benches and tests.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace cypress {

/// "12.3 KB" style size formatting (KB = 1024 bytes, as in the paper's
/// figures).
inline std::string humanBytes(uint64_t bytes) {
  char buf[64];
  const double kb = static_cast<double>(bytes) / 1024.0;
  if (bytes < 1024) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  } else if (kb < 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f KB", kb);
  } else if (kb < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1f MB", kb / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GB", kb / (1024.0 * 1024.0));
  }
  return buf;
}

inline std::string formatDouble(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

/// Split on a single character (no empty-trailing suppression).
inline std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace cypress
