// SectionSeq: a lossless stride-run codec for integer sequences.
//
// This is the cypress analogue of ScalaTrace's regular section
// descriptors: a sequence of int64 values is stored as segments
// (start, stride, count), so the paper's <first, last, stride> tuples
// (§IV-A, Figures 10–11) are represented exactly:
//   - constant runs   <k, k, ..., k>        → (k, 0, n)
//   - affine runs     <0, 1, 2, ..., k-1>   → (0, 1, k)
// Loop vertices use it for per-activation iteration counts; branch
// vertices use it for the iteration indices at which a path was taken.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bytebuf.hpp"

namespace cypress {

/// One maximal arithmetic run: values start, start+stride, ...,
/// start+stride*(count-1).
struct Section {
  int64_t start = 0;
  int64_t stride = 0;
  uint64_t count = 0;

  int64_t last() const {
    return start + stride * static_cast<int64_t>(count - 1);
  }
  bool operator==(const Section&) const = default;
};

class SectionSeq {
 public:
  SectionSeq() = default;

  /// Append one value, greedily extending the trailing section.
  void append(int64_t v) {
    if (!segs_.empty()) {
      Section& s = segs_.back();
      if (v == s.start + s.stride * static_cast<int64_t>(s.count)) {
        ++s.count;
        ++total_;
        return;
      }
      if (s.count == 1) {  // a singleton can adopt any stride
        s.stride = v - s.start;
        s.count = 2;
        ++total_;
        return;
      }
    }
    segs_.push_back(Section{v, 0, 1});
    ++total_;
  }

  /// Append `count` copies of `v` (used when merging records).
  void appendRun(int64_t v, uint64_t count) {
    if (count == 0) return;
    if (!segs_.empty()) {
      Section& s = segs_.back();
      if (s.stride == 0 && s.start == v) {
        s.count += count;
        total_ += count;
        return;
      }
      if (s.count == 1 && count == 1) {
        s.stride = v - s.start;
        s.count = 2;
        total_ += 1;
        return;
      }
    }
    if (count == 1) {
      append(v);
      return;
    }
    segs_.push_back(Section{v, 0, count});
    total_ += count;
  }

  /// Append a whole section verbatim.
  void appendSection(const Section& s) {
    CYP_CHECK(s.count > 0, "empty section");
    if (s.count == 1) {
      append(s.start);
      return;
    }
    if (s.stride == 0) {
      appendRun(s.start, s.count);
      return;
    }
    segs_.push_back(s);
    total_ += s.count;
  }

  /// Number of logical values.
  uint64_t size() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// Number of stored sections (the compressed length).
  size_t sectionCount() const { return segs_.size(); }
  const std::vector<Section>& sections() const { return segs_; }

  /// True when every value equals `v`.
  bool isConstant(int64_t v) const {
    for (const Section& s : segs_)
      if (s.start != v || (s.stride != 0 && s.count > 1)) return false;
    return true;
  }

  /// Logical value at index i (O(#sections) scan; use Cursor for walks).
  int64_t at(uint64_t i) const {
    CYP_CHECK(i < total_, "SectionSeq index " << i << " out of " << total_);
    for (const Section& s : segs_) {
      if (i < s.count) return s.start + s.stride * static_cast<int64_t>(i);
      i -= s.count;
    }
    CYP_FAIL("unreachable");
  }

  /// Sum of the first `k` values, computed per section with the
  /// arithmetic-series formula — O(#sections), never O(k). This is what
  /// lets the query engine map a loop-activation range to a body
  /// execution range without expanding iteration counts.
  int64_t prefixSum(uint64_t k) const {
    CYP_CHECK(k <= total_, "SectionSeq prefix " << k << " out of " << total_);
    int64_t sum = 0;
    for (const Section& s : segs_) {
      if (k == 0) break;
      const uint64_t take = k < s.count ? k : s.count;
      const auto t = static_cast<int64_t>(take);
      sum += s.start * t + s.stride * ((t - 1) * t / 2);
      k -= take;
    }
    return sum;
  }

  /// Sum of all values.
  int64_t sum() const { return prefixSum(total_); }

  /// Number of values strictly below `v` — exact per-section counting
  /// for any stride sign, O(#sections). For the non-decreasing
  /// sequences the CTT stores (execution ordinals, branch outcomes,
  /// record occurrence ordinals) this doubles as a lower bound: it maps
  /// an execution-ordinal range to an occurrence-index range.
  uint64_t countBelow(int64_t v) const {
    uint64_t n = 0;
    for (const Section& s : segs_) n += sectionCountBelow(s, v);
    return n;
  }

  /// Number of values in the half-open range [lo, hi).
  uint64_t countInRange(int64_t lo, int64_t hi) const {
    if (hi <= lo) return 0;
    return countBelow(hi) - countBelow(lo);
  }

  /// Materialize all values (tests / small sequences only).
  std::vector<int64_t> expand() const {
    std::vector<int64_t> out;
    out.reserve(total_);
    for (const Section& s : segs_)
      for (uint64_t k = 0; k < s.count; ++k)
        out.push_back(s.start + s.stride * static_cast<int64_t>(k));
    return out;
  }

  /// Sequential O(1)-per-step reader.
  class Cursor {
   public:
    explicit Cursor(const SectionSeq& seq) : seq_(&seq) {}

    bool done() const { return seg_ >= seq_->segs_.size(); }

    int64_t next() {
      CYP_CHECK(!done(), "SectionSeq cursor exhausted");
      const Section& s = seq_->segs_[seg_];
      int64_t v = s.start + s.stride * static_cast<int64_t>(off_);
      if (++off_ == s.count) {
        ++seg_;
        off_ = 0;
      }
      return v;
    }

    /// Value next() would return, without consuming it.
    int64_t peek() const {
      CYP_CHECK(!done(), "SectionSeq cursor exhausted");
      const Section& s = seq_->segs_[seg_];
      return s.start + s.stride * static_cast<int64_t>(off_);
    }

   private:
    const SectionSeq* seq_;
    size_t seg_ = 0;
    uint64_t off_ = 0;
  };

  Cursor cursor() const { return Cursor(*this); }

  bool operator==(const SectionSeq&) const = default;

  /// Sequences are mergeable (identical logical content) iff equal; the
  /// greedy construction is canonical for a given input sequence.
  void serialize(ByteWriter& w) const {
    w.uv(segs_.size());
    for (const Section& s : segs_) {
      w.sv(s.start);
      w.sv(s.stride);
      w.uv(s.count);
    }
  }

  static SectionSeq deserialize(ByteReader& r) {
    SectionSeq q;
    // Each serialized section is at least 3 bytes (sv start, sv stride,
    // uv count), so a count implying more is corrupt.
    const uint64_t n = r.checkedCount(r.uv(), 3);
    r.chargeAlloc(n * sizeof(Section));
    q.segs_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      Section s;
      s.start = r.sv();
      s.stride = r.sv();
      s.count = r.uv();
      CYP_CHECK(s.count > 0, "empty serialized section");
      CYP_CHECK(s.count <= UINT64_MAX - q.total_,
                "section sequence length overflows");
      q.segs_.push_back(s);
      q.total_ += s.count;
    }
    return q;
  }

  /// In-memory footprint, for the memory-overhead experiments.
  size_t memoryBytes() const { return sizeof(*this) + segs_.capacity() * sizeof(Section); }

  static SectionSeq compress(const std::vector<int64_t>& values) {
    SectionSeq q;
    for (int64_t v : values) q.append(v);
    return q;
  }

 private:
  /// Count of i in [0, count) with start + stride*i < v.
  static uint64_t sectionCountBelow(const Section& s, int64_t v) {
    if (s.stride == 0) return s.start < v ? s.count : 0;
    if (s.stride > 0) {
      if (s.start >= v) return 0;
      const uint64_t n =
          static_cast<uint64_t>((v - 1 - s.start) / s.stride) + 1;
      return n < s.count ? n : s.count;
    }
    // Negative stride: the values >= v form a prefix; count it and
    // subtract.
    const int64_t d = -s.stride;
    if (s.start < v) return s.count;
    const uint64_t ge = static_cast<uint64_t>((s.start - v) / d) + 1;
    return s.count - (ge < s.count ? ge : s.count);
  }

  std::vector<Section> segs_;
  uint64_t total_ = 0;
};

}  // namespace cypress
