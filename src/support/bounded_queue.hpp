// Bounded MPMC queue: the backpressure channel between a producer
// cutting shards and the pool workers compressing them.
//
// Capacity is the memory bound — a producer that outruns the
// compressors holds at most `capacity` shards in flight. Blocking
// push() is deliberately absent: a producer that may itself be running
// inside a pool task must never sleep on a full queue (the worker it
// would wait for could be queued behind it — the same deadlock the
// thread pool's helping wait exists to prevent). Callers use tryPush()
// and, on failure, drain one item themselves (see
// flate::StreamingCompressor), which keeps every thread productive and
// the system deadlock-free by construction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/error.hpp"

namespace cypress {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    CYP_CHECK(capacity >= 1, "BoundedQueue: capacity must be >= 1");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Append if the queue has room and is open. Returns false when full
  /// or closed; never blocks. The item is moved-from only on success.
  bool tryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cvPop_.notify_one();
    return true;
  }

  /// Pop the oldest item, or nullopt when the queue is empty (or
  /// closed and drained). Never blocks.
  std::optional<T> tryPop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return out;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    cvPush_.notify_one();
    return out;
  }

  /// Block until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cvPop_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return out;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    cvPush_.notify_one();
    return out;
  }

  /// Close the queue: pending items remain poppable, pushes fail, and
  /// blocked pop() calls wake with nullopt once drained.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cvPop_.notify_all();
    cvPush_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cvPop_;   // waiters for an item
  std::condition_variable cvPush_;  // waiters for room
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cypress
