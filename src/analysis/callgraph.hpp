// Program Call Graph (PCG) with SCC-based recursion detection.
//
// The inter-procedural CST builder (paper Algorithm 2) walks procedures
// bottom-up over the PCG; recursive call cycles are detected here so the
// CST builder can convert them into pseudo-loops (paper Figure 8, citing
// Emami et al.).
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace cypress::analysis {

class CallGraph {
 public:
  static CallGraph build(const ir::Module& m);

  int numNodes() const { return static_cast<int>(names_.size()); }
  const std::string& name(int node) const { return names_[static_cast<size_t>(node)]; }
  int nodeOf(const std::string& name) const;
  const std::vector<int>& callees(int node) const {
    return callees_[static_cast<size_t>(node)];
  }

  /// True when the function participates in a call cycle (including
  /// direct self-recursion).
  bool isRecursive(int node) const { return recursive_[static_cast<size_t>(node)]; }

  /// Strongly connected component id of the node (Tarjan order).
  int sccOf(int node) const { return scc_[static_cast<size_t>(node)]; }

  /// Functions in bottom-up order: every callee (outside the node's own
  /// SCC) appears before its caller.
  const std::vector<int>& postOrder() const { return postOrder_; }

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<int>> callees_;
  std::vector<int> scc_;
  std::vector<bool> recursive_;
  std::vector<int> postOrder_;
};

}  // namespace cypress::analysis
