#include "analysis/callgraph.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace cypress::analysis {

int CallGraph::nodeOf(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<int>(i);
  return -1;
}

namespace {

/// Iterative Tarjan SCC.
struct Tarjan {
  const std::vector<std::vector<int>>& adj;
  std::vector<int> index, low, sccId;
  std::vector<bool> onStack;
  std::vector<int> stack;
  int nextIndex = 0, nextScc = 0;
  std::vector<int> sccSize;

  explicit Tarjan(const std::vector<std::vector<int>>& a)
      : adj(a),
        index(a.size(), -1),
        low(a.size(), 0),
        sccId(a.size(), -1),
        onStack(a.size(), false) {}

  void run() {
    for (size_t v = 0; v < adj.size(); ++v)
      if (index[v] == -1) strongConnect(static_cast<int>(v));
  }

  void strongConnect(int root) {
    // Explicit stack of (node, child cursor).
    std::vector<std::pair<int, size_t>> call;
    call.emplace_back(root, 0);
    index[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] = nextIndex++;
    stack.push_back(root);
    onStack[static_cast<size_t>(root)] = true;

    while (!call.empty()) {
      auto& [v, cursor] = call.back();
      if (cursor < adj[static_cast<size_t>(v)].size()) {
        const int w = adj[static_cast<size_t>(v)][cursor++];
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = low[static_cast<size_t>(w)] = nextIndex++;
          stack.push_back(w);
          onStack[static_cast<size_t>(w)] = true;
          call.emplace_back(w, 0);
        } else if (onStack[static_cast<size_t>(w)]) {
          low[static_cast<size_t>(v)] =
              std::min(low[static_cast<size_t>(v)], index[static_cast<size_t>(w)]);
        }
      } else {
        if (low[static_cast<size_t>(v)] == index[static_cast<size_t>(v)]) {
          int count = 0;
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            onStack[static_cast<size_t>(w)] = false;
            sccId[static_cast<size_t>(w)] = nextScc;
            ++count;
            if (w == v) break;
          }
          sccSize.push_back(count);
          ++nextScc;
        }
        const int finished = v;
        call.pop_back();
        if (!call.empty()) {
          const int parent = call.back().first;
          low[static_cast<size_t>(parent)] = std::min(
              low[static_cast<size_t>(parent)], low[static_cast<size_t>(finished)]);
        }
      }
    }
  }
};

}  // namespace

CallGraph CallGraph::build(const ir::Module& m) {
  CallGraph g;
  std::map<std::string, int> idOf;
  for (const auto& f : m.functions) {
    idOf[f->name] = static_cast<int>(g.names_.size());
    g.names_.push_back(f->name);
  }
  g.callees_.resize(g.names_.size());
  std::vector<bool> selfLoop(g.names_.size(), false);

  for (const auto& f : m.functions) {
    const int from = idOf[f->name];
    for (const auto& b : f->blocks) {
      for (const auto& i : b.instrs) {
        if (i.kind != ir::InstrKind::Call) continue;
        auto it = idOf.find(i.callee);
        CYP_CHECK(it != idOf.end(), "call graph: unknown callee '" << i.callee << "'");
        const int to = it->second;
        auto& edges = g.callees_[static_cast<size_t>(from)];
        if (std::find(edges.begin(), edges.end(), to) == edges.end())
          edges.push_back(to);
        if (to == from) selfLoop[static_cast<size_t>(from)] = true;
      }
    }
  }

  Tarjan tarjan(g.callees_);
  tarjan.run();
  g.scc_.assign(tarjan.sccId.begin(), tarjan.sccId.end());
  g.recursive_.resize(g.names_.size());
  for (size_t v = 0; v < g.names_.size(); ++v) {
    g.recursive_[v] = selfLoop[v] ||
                      tarjan.sccSize[static_cast<size_t>(tarjan.sccId[v])] > 1;
  }

  // Bottom-up order: Tarjan assigns SCC ids in callee-first order, so
  // ascending SCC id gives a valid post-order over the condensation.
  g.postOrder_.resize(g.names_.size());
  for (size_t v = 0; v < g.names_.size(); ++v) g.postOrder_[v] = static_cast<int>(v);
  std::stable_sort(g.postOrder_.begin(), g.postOrder_.end(), [&](int a, int b) {
    return g.scc_[static_cast<size_t>(a)] < g.scc_[static_cast<size_t>(b)];
  });
  return g;
}

}  // namespace cypress::analysis
