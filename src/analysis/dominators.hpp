// Dominator and post-dominator trees over IR CFGs.
//
// The CST builder identifies loops with the classic dominator-based
// natural-loop algorithm (paper §III-A cites Muchnick), and places
// branch-exit instrumentation at immediate post-dominators. We use the
// Cooper–Harvey–Kennedy iterative algorithm: simple, and fast at the CFG
// sizes communication skeletons produce.
#pragma once

#include <vector>

#include "ir/ir.hpp"

namespace cypress::analysis {

/// Predecessor/successor lists for a function CFG.
struct CfgView {
  explicit CfgView(const ir::Function& f);

  int numBlocks() const { return static_cast<int>(succs.size()); }

  std::vector<std::vector<int>> succs;
  std::vector<std::vector<int>> preds;
};

/// Immediate-dominator tree. idom[entry] == entry; unreachable blocks
/// have idom -1.
class DomTree {
 public:
  /// Forward dominators of f's CFG (entry = block 0).
  static DomTree build(const ir::Function& f);

  /// Post-dominators: dominators of the reversed CFG with a virtual exit
  /// node (id == f.blocks.size()) joining every Ret block. The tree has
  /// numBlocks()+1 nodes; idom values may be the virtual exit's id
  /// (== root()), meaning "only post-dominated by function exit".
  static DomTree buildPost(const ir::Function& f);

  int root() const { return root_; }
  int idom(int block) const { return idom_[static_cast<size_t>(block)]; }
  bool reachable(int block) const { return idom_[static_cast<size_t>(block)] != -1; }

  /// True when a dominates b (reflexive).
  bool dominates(int a, int b) const;

 private:
  std::vector<int> idom_;
  std::vector<int> depth_;
  int root_ = 0;

  static DomTree run(const std::vector<std::vector<int>>& preds,
                     const std::vector<int>& rpo, int root, int numBlocks);
  void computeDepths();
};

}  // namespace cypress::analysis
