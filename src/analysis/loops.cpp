#include "analysis/loops.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace cypress::analysis {

bool Loop::contains(int block) const {
  return std::binary_search(blocks.begin(), blocks.end(), block);
}

LoopInfo LoopInfo::build(const ir::Function& f, const DomTree& dom) {
  CfgView cfg(f);
  const int n = cfg.numBlocks();

  // Collect back edges grouped by header.
  std::map<int, std::vector<int>> latchesByHeader;
  for (int b = 0; b < n; ++b) {
    if (!dom.reachable(b)) continue;
    for (int s : cfg.succs[static_cast<size_t>(b)]) {
      if (dom.dominates(s, b)) latchesByHeader[s].push_back(b);
    }
  }

  LoopInfo li;
  li.blockLoop_.assign(static_cast<size_t>(n), -1);

  for (auto& [header, latches] : latchesByHeader) {
    Loop loop;
    loop.header = header;
    loop.latches = latches;
    // Natural loop body: reverse reachability from latches, stopping at
    // the header.
    std::vector<uint8_t> inLoop(static_cast<size_t>(n), 0);
    inLoop[static_cast<size_t>(header)] = 1;
    std::vector<int> work;
    for (int l : latches) {
      if (!inLoop[static_cast<size_t>(l)]) {
        inLoop[static_cast<size_t>(l)] = 1;
        work.push_back(l);
      }
    }
    while (!work.empty()) {
      int b = work.back();
      work.pop_back();
      for (int p : cfg.preds[static_cast<size_t>(b)]) {
        if (!inLoop[static_cast<size_t>(p)] && dom.reachable(p)) {
          inLoop[static_cast<size_t>(p)] = 1;
          work.push_back(p);
        }
      }
    }
    for (int b = 0; b < n; ++b)
      if (inLoop[static_cast<size_t>(b)]) loop.blocks.push_back(b);
    // Exit edges.
    for (int b : loop.blocks) {
      for (int s : cfg.succs[static_cast<size_t>(b)]) {
        if (!inLoop[static_cast<size_t>(s)]) loop.exitEdges.emplace_back(b, s);
      }
    }
    li.loops_.push_back(std::move(loop));
  }

  // Nesting: loop A is inside loop B iff B contains A's header and A != B.
  // Parent = smallest enclosing loop.
  const size_t numLoops = li.loops_.size();
  for (size_t a = 0; a < numLoops; ++a) {
    int best = -1;
    size_t bestSize = 0;
    for (size_t b = 0; b < numLoops; ++b) {
      if (a == b) continue;
      const Loop& outer = li.loops_[b];
      if (outer.contains(li.loops_[a].header) && outer.header != li.loops_[a].header) {
        if (best == -1 || outer.blocks.size() < bestSize) {
          best = static_cast<int>(b);
          bestSize = outer.blocks.size();
        }
      }
    }
    li.loops_[a].parent = best;
  }
  for (size_t a = 0; a < numLoops; ++a) {
    int depth = 1;
    int p = li.loops_[a].parent;
    while (p != -1) {
      ++depth;
      p = li.loops_[static_cast<size_t>(p)].parent;
      CYP_CHECK(depth <= static_cast<int>(numLoops) + 1, "loop nesting cycle");
    }
    li.loops_[a].depth = depth;
  }

  // Innermost loop per block: the containing loop with maximal depth.
  for (size_t idx = 0; idx < numLoops; ++idx) {
    for (int b : li.loops_[idx].blocks) {
      int cur = li.blockLoop_[static_cast<size_t>(b)];
      if (cur == -1 ||
          li.loops_[static_cast<size_t>(cur)].depth < li.loops_[idx].depth) {
        li.blockLoop_[static_cast<size_t>(b)] = static_cast<int>(idx);
      }
    }
  }
  return li;
}

bool LoopInfo::isHeader(int block) const { return loopAtHeader(block) != -1; }

int LoopInfo::loopAtHeader(int block) const {
  for (size_t i = 0; i < loops_.size(); ++i)
    if (loops_[i].header == block) return static_cast<int>(i);
  return -1;
}

}  // namespace cypress::analysis
