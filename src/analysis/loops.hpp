// Natural-loop detection over the dominator tree (paper §III-A).
//
// A back edge is an edge n→h where h dominates n; the natural loop of h
// is h plus every block that reaches a latch without passing through h.
// Loops sharing a header are merged (classic Muchnick treatment). The
// result is a loop forest with explicit nesting, exit edges and latches —
// exactly what the CST builder and the instrumentation pass consume.
#pragma once

#include <vector>

#include "analysis/dominators.hpp"
#include "ir/ir.hpp"

namespace cypress::analysis {

struct Loop {
  int header = -1;
  std::vector<int> blocks;       // sorted; includes header
  std::vector<int> latches;      // sources of back edges into header
  /// Exit edges (fromBlock, toBlock) leaving the loop body.
  std::vector<std::pair<int, int>> exitEdges;
  int parent = -1;               // index of enclosing loop, -1 for top level
  int depth = 1;                 // 1 = outermost

  bool contains(int block) const;
};

class LoopInfo {
 public:
  static LoopInfo build(const ir::Function& f, const DomTree& dom);
  static LoopInfo build(const ir::Function& f) { return build(f, DomTree::build(f)); }

  const std::vector<Loop>& loops() const { return loops_; }

  /// Index into loops() of the innermost loop containing `block`, or -1.
  int innermostAt(int block) const { return blockLoop_[static_cast<size_t>(block)]; }

  /// True when `block` is some loop's header.
  bool isHeader(int block) const;

  /// Loop index whose header is `block`, or -1.
  int loopAtHeader(int block) const;

 private:
  std::vector<Loop> loops_;
  std::vector<int> blockLoop_;
};

}  // namespace cypress::analysis
