#include "analysis/dominators.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace cypress::analysis {

CfgView::CfgView(const ir::Function& f) {
  const size_t n = f.blocks.size();
  succs.resize(n);
  preds.resize(n);
  for (const ir::BasicBlock& b : f.blocks) {
    succs[static_cast<size_t>(b.id)] = b.successors();
    for (int s : succs[static_cast<size_t>(b.id)])
      preds[static_cast<size_t>(s)].push_back(b.id);
  }
}

namespace {

/// Reverse postorder over `succs` from `root`; unreachable nodes absent.
std::vector<int> reversePostorder(const std::vector<std::vector<int>>& succs, int root) {
  const size_t n = succs.size();
  std::vector<uint8_t> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<int> post;
  post.reserve(n);
  // Iterative DFS with explicit child cursors.
  std::vector<std::pair<int, size_t>> stack;
  stack.emplace_back(root, 0);
  state[static_cast<size_t>(root)] = 1;
  while (!stack.empty()) {
    auto& [node, cursor] = stack.back();
    if (cursor < succs[static_cast<size_t>(node)].size()) {
      int child = succs[static_cast<size_t>(node)][cursor++];
      if (state[static_cast<size_t>(child)] == 0) {
        state[static_cast<size_t>(child)] = 1;
        stack.emplace_back(child, 0);
      }
    } else {
      state[static_cast<size_t>(node)] = 2;
      post.push_back(node);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

}  // namespace

DomTree DomTree::run(const std::vector<std::vector<int>>& preds,
                     const std::vector<int>& rpo, int root, int numBlocks) {
  DomTree t;
  t.root_ = root;
  t.idom_.assign(static_cast<size_t>(numBlocks), -1);
  std::vector<int> rpoIndex(static_cast<size_t>(numBlocks), -1);
  for (size_t i = 0; i < rpo.size(); ++i)
    rpoIndex[static_cast<size_t>(rpo[i])] = static_cast<int>(i);

  t.idom_[static_cast<size_t>(root)] = root;

  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpoIndex[static_cast<size_t>(a)] > rpoIndex[static_cast<size_t>(b)])
        a = t.idom_[static_cast<size_t>(a)];
      while (rpoIndex[static_cast<size_t>(b)] > rpoIndex[static_cast<size_t>(a)])
        b = t.idom_[static_cast<size_t>(b)];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : rpo) {
      if (b == root) continue;
      int newIdom = -1;
      for (int p : preds[static_cast<size_t>(b)]) {
        if (t.idom_[static_cast<size_t>(p)] == -1) continue;  // unprocessed
        newIdom = newIdom == -1 ? p : intersect(p, newIdom);
      }
      if (newIdom != -1 && t.idom_[static_cast<size_t>(b)] != newIdom) {
        t.idom_[static_cast<size_t>(b)] = newIdom;
        changed = true;
      }
    }
  }
  t.computeDepths();
  return t;
}

void DomTree::computeDepths() {
  depth_.assign(idom_.size(), -1);
  depth_[static_cast<size_t>(root_)] = 0;
  // Nodes may appear before their idom in id order; iterate to fixpoint
  // (tree depth passes are few).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = 0; b < idom_.size(); ++b) {
      if (depth_[b] != -1 || idom_[b] == -1) continue;
      const int p = idom_[b];
      if (depth_[static_cast<size_t>(p)] != -1) {
        depth_[b] = depth_[static_cast<size_t>(p)] + 1;
        changed = true;
      }
    }
  }
}

bool DomTree::dominates(int a, int b) const {
  if (!reachable(a) || !reachable(b)) return false;
  while (depth_[static_cast<size_t>(b)] > depth_[static_cast<size_t>(a)])
    b = idom_[static_cast<size_t>(b)];
  return a == b;
}

DomTree DomTree::build(const ir::Function& f) {
  CfgView cfg(f);
  auto rpo = reversePostorder(cfg.succs, 0);
  return run(cfg.preds, rpo, 0, cfg.numBlocks());
}

DomTree DomTree::buildPost(const ir::Function& f) {
  CfgView cfg(f);
  const int n = cfg.numBlocks();
  const int exitNode = n;  // virtual exit

  // Reversed CFG over n+1 nodes.
  std::vector<std::vector<int>> succsRev(static_cast<size_t>(n) + 1);
  std::vector<std::vector<int>> predsRev(static_cast<size_t>(n) + 1);
  for (int b = 0; b < n; ++b) {
    // Reversed successors of b = original predecessors of b.
    succsRev[static_cast<size_t>(b)] = cfg.preds[static_cast<size_t>(b)];
    // Reversed predecessors of b = original successors of b.
    predsRev[static_cast<size_t>(b)] = cfg.succs[static_cast<size_t>(b)];
  }
  for (const ir::BasicBlock& b : f.blocks) {
    if (b.term.kind == ir::TermKind::Ret) {
      succsRev[static_cast<size_t>(exitNode)].push_back(b.id);
      predsRev[static_cast<size_t>(b.id)].push_back(exitNode);
    }
  }

  auto rpo = reversePostorder(succsRev, exitNode);
  return run(predsRev, rpo, exitNode, n + 1);
}

}  // namespace cypress::analysis
