// Inter-process CTT merging (paper §IV-B) and the on-disk CYPRESS trace.
//
// All per-process CTTs share the CST's shape, so merging two (merged)
// trees is a single simultaneous pre-order walk comparing the payloads
// at each vertex — O(n) per pair, versus the O(n²) alignment dynamic
// methods need. mergeAll() combines P processes with a binary-tree
// reduction (the paper's parallel merge, O(n log P) total).
//
// Per vertex the merged tree keeps a list of payload variants, each
// annotated with the set of ranks sharing it (stride-encoded RankSet);
// in SPMD programs the list has one or a few entries (Fig. 13).
#pragma once

#include <cstdint>
#include <vector>

#include "cypress/ctt.hpp"
#include "support/rank_set.hpp"
#include "support/timer.hpp"

namespace cypress::core {

struct SeqEntry {
  SectionSeq seq;
  RankSet ranks;
};

struct LeafEntry {
  std::vector<CommRecord> records;
  /// Parent-execution ordinal per event occurrence (see Ctt::leafExec).
  SectionSeq execOrdinals;
  RankSet ranks;
};

/// Cross-process merged trace tree; `cst` gives the shape.
class MergedCtt {
 public:
  explicit MergedCtt(const cst::Tree& cst)
      : cst_(&cst),
        loops_(static_cast<size_t>(cst.numNodes())),
        taken_(static_cast<size_t>(cst.numNodes())),
        leaves_(static_cast<size_t>(cst.numNodes())) {}

  /// Wrap one process's CTT.
  static MergedCtt fromCtt(const Ctt& ctt, int rank);

  /// Absorb another merged tree (same CST). O(total entries).
  void absorb(MergedCtt&& other);

  const cst::Tree& cst() const { return *cst_; }

  /// Ranks whose per-process traces were lost (killed mid-run) and are
  /// therefore absent from this merged tree. Serialized with the trace
  /// so downstream consumers know the coverage is partial.
  const RankSet& lostRanks() const { return lostRanks_; }
  void markLost(const RankSet& ranks) { lostRanks_.unite(ranks); }

  const std::vector<SeqEntry>& loopEntries(int gid) const {
    return loops_[static_cast<size_t>(gid)];
  }
  const std::vector<SeqEntry>& takenEntries(int gid) const {
    return taken_[static_cast<size_t>(gid)];
  }
  const std::vector<LeafEntry>& leafEntries(int gid) const {
    return leaves_[static_cast<size_t>(gid)];
  }

  /// Serialized CYPRESS trace: compressed-text CST + payloads. This is
  /// the byte count reported as "Cypress" trace size; apply flate on top
  /// for "Cypress+Gzip". serializeTo streams into `w` (use a
  /// sink-backed writer to avoid materializing the trace); serialize()
  /// is the materializing wrapper.
  void serializeTo(ByteWriter& w) const;
  std::vector<uint8_t> serialize() const;
  static MergedCtt deserialize(std::span<const uint8_t> data,
                               const cst::Tree& cst);

  /// Parse the serialized form including its embedded CST (ownership of
  /// the tree transfers to the caller via `treeOut`).
  static MergedCtt deserializeWithTree(std::span<const uint8_t> data,
                                       cst::Tree& treeOut);

  size_t memoryBytes() const;

 private:
  template <typename Entry, typename SamePred, typename MergeFn>
  static void absorbEntries(std::vector<Entry>& mine, std::vector<Entry>&& theirs,
                            SamePred same, MergeFn mergeStats);

  const cst::Tree* cst_;
  RankSet lostRanks_;
  std::vector<std::vector<SeqEntry>> loops_;
  std::vector<std::vector<SeqEntry>> taken_;
  std::vector<std::vector<LeafEntry>> leaves_;
};

/// Binary-tree reduction over per-process CTTs. `interCost`, when given,
/// accumulates the pure merge CPU time (Fig. 18). `threads` > 1 runs each
/// reduction level's independent pair-merges concurrently (the paper's
/// parallel merge, §IV-B); the result is identical regardless of thread
/// count because the pairing is fixed. `ranks`, when given, supplies the
/// world rank of each CTT (for partial merges over surviving ranks);
/// by default ctts[i] is rank i.
MergedCtt mergeAll(std::vector<const Ctt*> ctts, CostMeter* interCost = nullptr,
                   int threads = 1, const std::vector<int>* ranks = nullptr);

}  // namespace cypress::core
