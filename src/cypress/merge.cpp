#include "cypress/merge.hpp"

#include <algorithm>
#include <cstddef>

#include "flate/flate.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace cypress::core {

MergedCtt MergedCtt::fromCtt(const Ctt& ctt, int rank) {
  MergedCtt m(ctt.cst());
  const int n = ctt.cst().numNodes();
  for (int gid = 0; gid < n; ++gid) {
    const auto g = static_cast<size_t>(gid);
    if (!ctt.loopCounts(gid).empty())
      m.loops_[g].push_back(SeqEntry{ctt.loopCounts(gid), RankSet(rank)});
    if (!ctt.taken(gid).empty())
      m.taken_[g].push_back(SeqEntry{ctt.taken(gid), RankSet(rank)});
    if (!ctt.records(gid).empty())
      m.leaves_[g].push_back(
          LeafEntry{ctt.records(gid), ctt.leafExec(gid), RankSet(rank)});
  }
  return m;
}

template <typename Entry, typename SamePred, typename MergeFn>
void MergedCtt::absorbEntries(std::vector<Entry>& mine,
                              std::vector<Entry>&& theirs, SamePred same,
                              MergeFn mergeStats) {
  for (Entry& e : theirs) {
    bool merged = false;
    for (Entry& m : mine) {
      if (same(m, e)) {
        m.ranks.unite(e.ranks);
        mergeStats(m, e);
        merged = true;
        break;
      }
    }
    if (!merged) mine.push_back(std::move(e));
  }
  // mergeStats can widen an entry's timing statistics enough that two
  // entries already in `mine` become mergeable; coalesce to a fixpoint
  // so the merged tree is independent of absorb order (and therefore of
  // the reduction shape / thread count in mergeAll).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < mine.size(); ++i) {
      for (size_t j = i + 1; j < mine.size(); ++j) {
        if (!same(mine[i], mine[j])) continue;
        mine[i].ranks.unite(mine[j].ranks);
        mergeStats(mine[i], mine[j]);
        mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(j));
        --j;
        changed = true;
      }
    }
  }
}

namespace {

/// Time statistics are poolable when their means are statistically
/// close; otherwise the rank groups stay separate so replay-based
/// prediction keeps per-group timing fidelity (cf. Ratn et al. on
/// preserving time in merged ScalaTrace traces, cited in §VIII).
bool statsCompatible(const RunningStats& a, const RunningStats& b) {
  // Means of small samples are jitter noise; only split rank groups when
  // both sides have enough observations for the difference to be real.
  if (a.count() < 8 || b.count() < 8) return true;
  const double hi = std::max(a.mean(), b.mean());
  const double lo = std::min(a.mean(), b.mean());
  return hi - lo <= 50e3 /* 50us */ || (lo > 0 && hi / lo <= 1.3);
}

bool timingCompatible(const LeafEntry& a, const LeafEntry& b) {
  for (size_t i = 0; i < a.records.size(); ++i) {
    if (!statsCompatible(a.records[i].compute, b.records[i].compute)) return false;
    if (!statsCompatible(a.records[i].duration, b.records[i].duration)) return false;
  }
  return true;
}

}  // namespace

void MergedCtt::absorb(MergedCtt&& other) {
  CYP_CHECK(cst_ == other.cst_, "merging CTTs with different CSTs");
  lostRanks_.unite(other.lostRanks_);
  const size_t n = loops_.size();
  for (size_t g = 0; g < n; ++g) {
    absorbEntries(
        loops_[g], std::move(other.loops_[g]),
        [](const SeqEntry& a, const SeqEntry& b) { return a.seq == b.seq; },
        [](SeqEntry&, const SeqEntry&) {});
    absorbEntries(
        taken_[g], std::move(other.taken_[g]),
        [](const SeqEntry& a, const SeqEntry& b) { return a.seq == b.seq; },
        [](SeqEntry&, const SeqEntry&) {});
    absorbEntries(
        leaves_[g], std::move(other.leaves_[g]),
        [](const LeafEntry& a, const LeafEntry& b) {
          if (a.records.size() != b.records.size()) return false;
          if (a.execOrdinals != b.execOrdinals) return false;
          for (size_t i = 0; i < a.records.size(); ++i)
            if (!a.records[i].sameContent(b.records[i])) return false;
          return timingCompatible(a, b);
        },
        [](LeafEntry& a, const LeafEntry& b) {
          for (size_t i = 0; i < a.records.size(); ++i)
            a.records[i].mergeStats(b.records[i]);
        });
  }
}

MergedCtt mergeAll(std::vector<const Ctt*> ctts, CostMeter* interCost,
                   int threads, const std::vector<int>* ranks) {
  CYP_CHECK(!ctts.empty(), "mergeAll with no processes");
  CYP_CHECK(threads >= 1, "mergeAll needs at least one thread");
  CYP_CHECK(ranks == nullptr || ranks->size() == ctts.size(),
            "mergeAll: " << ctts.size() << " CTTs but " << ranks->size()
                         << " rank labels");
  // Wrap each process (rank = index unless the caller labels them).
  std::vector<MergedCtt> level;
  level.reserve(ctts.size());
  for (size_t r = 0; r < ctts.size(); ++r)
    level.push_back(MergedCtt::fromCtt(
        *ctts[r], ranks ? (*ranks)[r] : static_cast<int>(r)));

  // Binary-tree reduction (the paper's O(n log P) parallel merge). The
  // pairing is fixed, so single- and multi-threaded runs produce
  // identical trees. Each level's pair-merges are independent tasks on
  // the shared pipeline pool.
  Stopwatch watch;
  while (level.size() > 1) {
    const size_t pairs = level.size() / 2;
    parallelFor(pairs, threads, [&](size_t p) {
      level[2 * p].absorb(std::move(level[2 * p + 1]));
    });
    std::vector<MergedCtt> next;
    next.reserve(pairs + 1);
    for (size_t p = 0; p < pairs; ++p) next.push_back(std::move(level[2 * p]));
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  if (interCost) interCost->add(watch.ns());
  return std::move(level.front());
}

namespace {

void writeSeqEntries(ByteWriter& w, const std::vector<SeqEntry>& entries) {
  w.uv(entries.size());
  for (const SeqEntry& e : entries) {
    e.seq.serialize(w);
    e.ranks.serialize(w);
  }
}

std::vector<SeqEntry> readSeqEntries(ByteReader& r) {
  // Each entry is at least 2 bytes (empty sequence + empty rank set);
  // validate the count before constructing a single element.
  const uint64_t n = r.checkedCount(r.uv(), 2);
  r.chargeAlloc(n * sizeof(SeqEntry));
  std::vector<SeqEntry> out(n);
  for (auto& e : out) {
    e.seq = SectionSeq::deserialize(r);
    e.ranks = RankSet::deserialize(r);
  }
  return out;
}

}  // namespace

void MergedCtt::serializeTo(ByteWriter& w) const {
  w.str("CYPC");
  // The CST ships inside the trace as a flate-compressed text file
  // (paper §III: "stores the resulting program communication structure
  // in a compressed text file").
  {
    const auto cstBytes = flate::compressString(cst_->toText());
    w.uv(cstBytes.size());
    w.raw(cstBytes);
  }
  // Ranks whose traces were lost (empty for a complete run).
  lostRanks_.serialize(w);
  const size_t n = loops_.size();
  w.uv(n);
  for (size_t g = 0; g < n; ++g) {
    writeSeqEntries(w, loops_[g]);
    writeSeqEntries(w, taken_[g]);
    w.uv(leaves_[g].size());
    for (const LeafEntry& e : leaves_[g]) {
      w.uv(e.records.size());
      for (const CommRecord& rec : e.records) rec.serialize(w);
      e.execOrdinals.serialize(w);
      e.ranks.serialize(w);
    }
  }
}

std::vector<uint8_t> MergedCtt::serialize() const {
  ByteWriter w;
  serializeTo(w);
  return w.take();
}

MergedCtt MergedCtt::deserialize(std::span<const uint8_t> data,
                                 const cst::Tree& cst) {
  ByteReader r(data);
  CYP_CHECK(r.str() == "CYPC", "cypress trace: bad magic");
  r.raw(r.uv());  // skip the embedded CST (caller supplied the tree)
  MergedCtt m(cst);
  m.lostRanks_ = RankSet::deserialize(r);
  const uint64_t n = r.uv();
  CYP_CHECK(n == static_cast<uint64_t>(cst.numNodes()),
            "cypress trace: node count mismatch");
  for (uint64_t g = 0; g < n; ++g) {
    m.loops_[g] = readSeqEntries(r);
    m.taken_[g] = readSeqEntries(r);
    // A leaf entry is at least 3 bytes: record count, empty exec
    // ordinals, empty rank set.
    const uint64_t nl = r.checkedCount(r.uv(), 3);
    r.chargeAlloc(nl * sizeof(LeafEntry));
    m.leaves_[g].resize(nl);
    for (auto& e : m.leaves_[g]) {
      const uint64_t nr =
          r.checkedCount(r.uv(), CommRecord::kMinSerializedBytes);
      r.chargeAlloc(nr * sizeof(CommRecord));
      e.records.reserve(nr);
      for (uint64_t k = 0; k < nr; ++k)
        e.records.push_back(CommRecord::deserialize(r));
      e.execOrdinals = SectionSeq::deserialize(r);
      e.ranks = RankSet::deserialize(r);
    }
  }
  CYP_CHECK(r.atEnd(), "cypress trace: trailing bytes");
  return m;
}

MergedCtt MergedCtt::deserializeWithTree(std::span<const uint8_t> data,
                                         cst::Tree& treeOut) {
  ByteReader r(data);
  CYP_CHECK(r.str() == "CYPC", "cypress trace: bad magic");
  treeOut = cst::Tree::fromText(flate::decompressToString(r.raw(r.uv())));
  return deserialize(data, treeOut);
}

size_t MergedCtt::memoryBytes() const {
  size_t total = sizeof(*this);
  auto seqBytes = [](const std::vector<SeqEntry>& v) {
    size_t t = v.capacity() * sizeof(SeqEntry);
    for (const auto& e : v)
      t += e.seq.memoryBytes() - sizeof(SectionSeq) + e.ranks.memoryBytes() -
           sizeof(RankSet);
    return t;
  };
  for (const auto& v : loops_) total += seqBytes(v);
  for (const auto& v : taken_) total += seqBytes(v);
  for (const auto& v : leaves_) {
    total += v.capacity() * sizeof(LeafEntry);
    for (const auto& e : v) {
      total += e.records.capacity() * sizeof(CommRecord);
      total += e.ranks.memoryBytes() - sizeof(RankSet);
    }
  }
  return total;
}

}  // namespace cypress::core
