#include "cypress/decompress.hpp"

#include <optional>

#include "support/error.hpp"

namespace cypress::core {

namespace {

class Replayer {
 public:
  Replayer(const MergedCtt& m, int rank) : m_(m), rank_(rank) {
    const int n = m.cst().numNodes();
    loopCur_.resize(static_cast<size_t>(n));
    takenCur_.resize(static_cast<size_t>(n));
    leaf_.resize(static_cast<size_t>(n));
    for (int g = 0; g < n; ++g) {
      if (const SectionSeq* s = seqFor(m.loopEntries(g)))
        loopCur_[static_cast<size_t>(g)].emplace(*s);
      if (const SectionSeq* s = seqFor(m.takenEntries(g)))
        takenCur_[static_cast<size_t>(g)].emplace(*s);
      for (const LeafEntry& e : m.leafEntries(g)) {
        if (e.ranks.contains(rank)) {
          LeafCursor& c = leaf_[static_cast<size_t>(g)];
          c.entry = &e;
          c.execCursor.emplace(e.execOrdinals);
          for (const CommRecord& rec : e.records) {
            c.recs.push_back(RecState{rec.ordinals.cursor(),
                                      rec.matchedSources.empty()
                                          ? std::optional<SectionSeq::Cursor>()
                                          : std::optional<SectionSeq::Cursor>(
                                                rec.matchedSources.cursor()),
                                      &rec});
          }
          break;
        }
      }
    }
  }

  std::vector<trace::Event> run() {
    replay(m_.cst().root());
    checkDrained();
    return std::move(out_);
  }

 private:
  struct RecState {
    SectionSeq::Cursor ord;
    std::optional<SectionSeq::Cursor> matched;
    const CommRecord* rec;
  };
  struct LeafCursor {
    const LeafEntry* entry = nullptr;
    uint64_t nextOrdinal = 0;
    std::optional<SectionSeq::Cursor> execCursor;
    std::vector<RecState> recs;
  };

  const SectionSeq* seqFor(const std::vector<SeqEntry>& entries) const {
    for (const SeqEntry& e : entries)
      if (e.ranks.contains(rank_)) return &e.seq;
    return nullptr;
  }

  void emitNext(const cst::Node* leaf) {
    LeafCursor& c = leaf_[static_cast<size_t>(leaf->gid)];
    CYP_CHECK(c.entry != nullptr,
              "decompress: rank " << rank_ << " has no records at gid "
                                  << leaf->gid);
    // Select the record whose next occurrence ordinal is now.
    const int64_t n = static_cast<int64_t>(c.nextOrdinal++);
    RecState* state = nullptr;
    for (RecState& rs : c.recs) {
      if (!rs.ord.done() && rs.ord.peek() == n) {
        state = &rs;
        break;
      }
    }
    CYP_CHECK(state != nullptr,
              "decompress: no record covers occurrence " << n << " at gid "
                                                         << leaf->gid);
    state->ord.next();
    const CommRecord& rec = *state->rec;

    trace::Event e;
    e.op = rec.op;
    e.peer = rec.peer.decode(rank_);
    e.bytes = rec.bytes;
    e.tag = rec.tag;
    e.comm = rec.comm;
    e.callSiteId = rec.callSiteId;
    e.reqId = rec.reqSite;
    if (state->matched.has_value()) {
      e.matchedSource = static_cast<int32_t>(state->matched->next()) + rank_;
    }
    e.durationNs = static_cast<uint64_t>(rec.duration.mean());
    e.computeNs = static_cast<uint64_t>(rec.compute.mean());
    out_.push_back(e);
  }

  void replay(const cst::Node* n) {
    const uint64_t g = exec(n)++;
    for (const auto& childPtr : n->children) {
      const cst::Node* child = childPtr.get();
      switch (child->kind) {
        case cst::NodeKind::Comm: {
          // Emit every occurrence recorded for this execution of the
          // enclosing region (exactly one for ordinary leaves; zero or
          // several for partial-completion ops and recursion unwinds).
          LeafCursor& lc = leaf_[static_cast<size_t>(child->gid)];
          while (lc.execCursor.has_value() && !lc.execCursor->done() &&
                 lc.execCursor->peek() == static_cast<int64_t>(g)) {
            lc.execCursor->next();
            emitNext(child);
          }
          break;
        }
        case cst::NodeKind::Loop: {
          auto& cur = loopCur_[static_cast<size_t>(child->gid)];
          CYP_CHECK(cur.has_value() && !cur->done(),
                    "decompress: missing loop activation at gid " << child->gid);
          const int64_t iters = cur->next();
          for (int64_t k = 0; k < iters; ++k) replay(child);
          break;
        }
        case cst::NodeKind::Branch: {
          auto& cur = takenCur_[static_cast<size_t>(child->gid)];
          while (cur.has_value() && !cur->done() &&
                 cur->peek() == static_cast<int64_t>(g)) {
            cur->next();
            replay(child);
          }
          break;
        }
        case cst::NodeKind::Call:
          replay(child);
          break;
        case cst::NodeKind::Root:
          CYP_FAIL("nested root in CST");
      }
    }
  }

  uint64_t& exec(const cst::Node* n) {
    if (exec_.size() < static_cast<size_t>(m_.cst().numNodes()))
      exec_.resize(static_cast<size_t>(m_.cst().numNodes()), 0);
    return exec_[static_cast<size_t>(n->gid)];
  }

  void checkDrained() const {
    const int n = m_.cst().numNodes();
    for (int g = 0; g < n; ++g) {
      const auto& lc = loopCur_[static_cast<size_t>(g)];
      CYP_CHECK(!lc.has_value() || lc->done(),
                "decompress: loop activations left over at gid " << g);
      const auto& tc = takenCur_[static_cast<size_t>(g)];
      CYP_CHECK(!tc.has_value() || tc->done(),
                "decompress: branch outcomes left over at gid " << g);
      const LeafCursor& c = leaf_[static_cast<size_t>(g)];
      CYP_CHECK(!c.execCursor.has_value() || c.execCursor->done(),
                "decompress: leaf occurrences left over at gid " << g);
      for (const RecState& rs : c.recs) {
        CYP_CHECK(rs.ord.done(), "decompress: records left over at gid " << g);
        CYP_CHECK(!rs.matched.has_value() || rs.matched->done(),
                  "decompress: matched sources left over at gid " << g);
      }
    }
  }

  const MergedCtt& m_;
  int rank_;
  std::vector<std::optional<SectionSeq::Cursor>> loopCur_;
  std::vector<std::optional<SectionSeq::Cursor>> takenCur_;
  std::vector<LeafCursor> leaf_;
  std::vector<uint64_t> exec_;
  std::vector<trace::Event> out_;
};

}  // namespace

std::vector<trace::Event> decompressRank(const MergedCtt& m, int rank) {
  return Replayer(m, rank).run();
}

trace::RawTrace decompressAll(const MergedCtt& m, int numRanks) {
  trace::RawTrace t;
  t.ranks.resize(static_cast<size_t>(numRanks));
  for (int r = 0; r < numRanks; ++r) {
    t.ranks[static_cast<size_t>(r)].rank = r;
    t.ranks[static_cast<size_t>(r)].events = decompressRank(m, r);
  }
  return t;
}

}  // namespace cypress::core
