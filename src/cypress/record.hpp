// CTT leaf payloads: merged communication records.
//
// A CommRecord is one run of identical communication operations at one
// CST leaf (paper §IV-A, "communication vertex compression"): the
// canonical parameters, a repeat count, relative-encoded peers (the
// paper's relative ranking method, §IV-B), per-event wildcard match
// sources (kept losslessly as a stride sequence), and the two supported
// time representations (mean/stddev and histogram).
#pragma once

#include <cstdint>

#include "ir/ir.hpp"
#include "support/bytebuf.hpp"
#include "support/section_seq.hpp"
#include "support/stats.hpp"
#include "trace/event.hpp"

namespace cypress::core {

/// How a peer rank is stored inside compressed records.
struct PeerRef {
  enum class Kind : uint8_t { None, Any, Absolute, Relative };
  Kind kind = Kind::None;
  int32_t value = 0;  // Absolute: rank; Relative: peer - myRank

  /// Encode an event peer for `myRank`. Point-to-point peers use the
  /// relative encoding so that identical patterns merge across ranks;
  /// collective roots stay absolute (they are the same for every rank).
  static PeerRef encode(ir::MpiOp op, int32_t peer, int32_t myRank) {
    if (peer == trace::kNoPeer) return {Kind::None, 0};
    if (peer == trace::kAnySource) return {Kind::Any, 0};
    if (op == ir::MpiOp::Bcast || op == ir::MpiOp::Reduce ||
        op == ir::MpiOp::Gather || op == ir::MpiOp::Scatter) {
      return {Kind::Absolute, peer};
    }
    return {Kind::Relative, peer - myRank};
  }

  int32_t decode(int32_t myRank) const {
    switch (kind) {
      case Kind::None: return trace::kNoPeer;
      case Kind::Any: return trace::kAnySource;
      case Kind::Absolute: return value;
      case Kind::Relative: return myRank + value;
    }
    return trace::kNoPeer;
  }

  bool operator==(const PeerRef&) const = default;

  void serialize(ByteWriter& w) const {
    w.u8(static_cast<uint8_t>(kind));
    w.sv(value);
  }
  static PeerRef deserialize(ByteReader& r) {
    PeerRef p;
    const uint8_t kind = r.u8();
    CYP_CHECK(kind <= static_cast<uint8_t>(Kind::Relative),
              "bad peer-ref kind " << int(kind));
    p.kind = static_cast<Kind>(kind);
    p.value = static_cast<int32_t>(r.sv());
    return p;
  }
};

/// Time recording mode (paper §IV-A supports both).
enum class TimeMode : uint8_t { MeanStddev, Histogram };

struct CommRecord {
  ir::MpiOp op = ir::MpiOp::Barrier;
  PeerRef peer;
  int64_t bytes = 0;
  int32_t tag = -1;
  int32_t comm = 0;
  int32_t callSiteId = -1;
  int64_t reqSite = -1;  // Wait/Waitany: posting call site (request->GID map)
  uint64_t count = 0;

  /// Occurrence ordinals (0-based, per leaf vertex) at which this
  /// parameter tuple fired, stride-compressed exactly like branch
  /// outcomes. A leaf whose parameters never change has one record with
  /// ordinals <0, n-1, 1>; loop-carried parameter cycles (e.g. butterfly
  /// peers) split into a few records with strided ordinal sets. This is
  /// the paper's "larger sliding window" refinement of last-record
  /// matching (§IV-A).
  SectionSeq ordinals;

  /// Wildcard receives: matched source per event, relative-encoded
  /// (source - myRank), kept losslessly. Empty when no wildcard.
  SectionSeq matchedSources;

  RunningStats duration;
  RunningStats compute;
  LogHistogram durationHist;  // populated in TimeMode::Histogram only

  /// True when `e` (from `myRank`) has the same communication content
  /// and can be folded into this record.
  bool matches(const trace::Event& e, int32_t myRank) const {
    return op == e.op && bytes == e.bytes && tag == e.tag && comm == e.comm &&
           callSiteId == e.callSiteId && reqSite == e.reqId &&
           peer == PeerRef::encode(e.op, e.peer, myRank);
  }

  static CommRecord fromEvent(const trace::Event& e, int32_t myRank) {
    CommRecord r;
    r.op = e.op;
    r.peer = PeerRef::encode(e.op, e.peer, myRank);
    r.bytes = e.bytes;
    r.tag = e.tag;
    r.comm = e.comm;
    r.callSiteId = e.callSiteId;
    r.reqSite = e.reqId;
    return r;
  }

  void absorb(const trace::Event& e, int32_t myRank, TimeMode mode,
              uint64_t occurrenceOrdinal) {
    ++count;
    ordinals.append(static_cast<int64_t>(occurrenceOrdinal));
    if (e.matchedSource >= 0) matchedSources.append(e.matchedSource - myRank);
    duration.add(static_cast<double>(e.durationNs));
    compute.add(static_cast<double>(e.computeNs));
    if (mode == TimeMode::Histogram)
      durationHist.add(static_cast<double>(e.durationNs));
  }

  /// Content equality ignoring time statistics — the inter-process merge
  /// criterion.
  bool sameContent(const CommRecord& o) const {
    return op == o.op && peer == o.peer && bytes == o.bytes && tag == o.tag &&
           comm == o.comm && callSiteId == o.callSiteId && reqSite == o.reqSite &&
           count == o.count && ordinals == o.ordinals &&
           matchedSources == o.matchedSources;
  }

  /// Pool the other record's time statistics into this one.
  void mergeStats(const CommRecord& o) {
    duration.merge(o.duration);
    compute.merge(o.compute);
    durationHist.merge(o.durationHist);
  }

  void serialize(ByteWriter& w) const {
    w.u8(static_cast<uint8_t>(op));
    peer.serialize(w);
    w.sv(bytes);
    w.sv(tag);
    w.sv(comm);
    w.sv(callSiteId);
    w.sv(reqSite);
    w.uv(count);
    ordinals.serialize(w);
    matchedSources.serialize(w);
    duration.serialize(w);
    compute.serialize(w);
    durationHist.serialize(w);
  }

  /// Minimum serialized size of one record: op byte, 2-byte PeerRef,
  /// five 1-byte varints, 1-byte count, two 1-byte empty sequences, two
  /// 1-byte empty stats, 2-byte empty histogram. Used by callers to
  /// validate record-count prefixes.
  static constexpr size_t kMinSerializedBytes = 15;

  static CommRecord deserialize(ByteReader& r) {
    CommRecord c;
    const uint8_t op = r.u8();
    CYP_CHECK(ir::isValidMpiOp(op), "comm record: bad op byte " << int(op));
    c.op = static_cast<ir::MpiOp>(op);
    c.peer = PeerRef::deserialize(r);
    c.bytes = r.sv();
    c.tag = static_cast<int32_t>(r.sv());
    c.comm = static_cast<int32_t>(r.sv());
    c.callSiteId = static_cast<int32_t>(r.sv());
    c.reqSite = r.sv();
    c.count = r.uv();
    c.ordinals = SectionSeq::deserialize(r);
    c.matchedSources = SectionSeq::deserialize(r);
    c.duration = RunningStats::deserialize(r);
    c.compute = RunningStats::deserialize(r);
    c.durationHist = LogHistogram::deserialize(r);
    return c;
  }

  size_t memoryBytes() const {
    return sizeof(*this) + matchedSources.memoryBytes() - sizeof(SectionSeq) +
           ordinals.memoryBytes() - sizeof(SectionSeq);
  }
};

}  // namespace cypress::core
