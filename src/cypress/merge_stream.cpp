#include "cypress/merge_stream.hpp"

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "flate/flate.hpp"
#include "flate/stream.hpp"
#include "support/error.hpp"

namespace cypress::core {

namespace {

/// One reduction operand: a durable spill file (relative name) or —
/// only after a degraded reduction spill — an in-memory tree.
struct Slot {
  std::string file;
  std::shared_ptr<MergedCtt> mem;
};

}  // namespace

StreamingMergeResult streamingMerge(int numRanks, const CttSource& source,
                                    const cst::Tree& cst,
                                    const StreamingMergeOptions& opts) {
  CYP_CHECK(numRanks >= 1, "streamingMerge: need at least one rank");
  CYP_CHECK(!opts.workDir.empty(), "streamingMerge: workDir is required");
  io::IoBackend& io = opts.io ? *opts.io : io::realIo();
  io.createDirectories(opts.workDir);
  const std::string manifestPath = opts.workDir + "/merge.cym";
  auto abs = [&](const std::string& rel) { return opts.workDir + "/" + rel; };

  MergePlanKey key;
  key.numRanks = static_cast<uint64_t>(numRanks);
  key.budgetBytes = opts.budgetBytes;
  key.maxBatchRanks = opts.maxBatchRanks;

  std::optional<ManifestRecovery> rec;
  if (opts.resume) {
    rec = recoverManifestFile(io, manifestPath);
    if (rec)
      CYP_CHECK(rec->key == key,
                "streamingMerge: resume plan mismatch (manifest has "
                    << rec->key.numRanks << " ranks / budget "
                    << rec->key.budgetBytes << " / batch cap "
                    << rec->key.maxBatchRanks << "; caller asked for "
                    << key.numRanks << " / " << key.budgetBytes << " / "
                    << key.maxBatchRanks
                    << ") — resume must repeat the interrupted invocation");
  }

  // The manifest is the resume protocol, not the result: with `degrade`
  // a manifest that can no longer be appended to (disk full) stops
  // checkpointing but not the merge.
  std::unique_ptr<ManifestWriter> writer;
  bool manifestAlive = true;
  try {
    writer = std::make_unique<ManifestWriter>(io, manifestPath, key,
                                              opts.resume);
  } catch (const io::IoError&) {
    if (!opts.degrade) throw;
    manifestAlive = false;
  }

  StreamingMergeResult res{MergedCtt(cst), 0, 0, 0, 0, RankSet{}};
  std::vector<std::string> spillFiles;  // everything to clean up on success

  auto checkpoint = [&](const std::function<void()>& append) {
    ++res.stepsExecuted;
    if (!manifestAlive) return;
    try {
      append();
    } catch (const io::IoError&) {
      if (!opts.degrade) throw;
      manifestAlive = false;
      return;
    }
    if (opts.crashAfterSteps != 0 &&
        writer->segmentsWritten() >= opts.crashAfterSteps)
      std::raise(SIGKILL);
  };

  // ---- Phase A: leaf batches ------------------------------------------
  // Batch boundaries are a pure function of (plan key, rank CTT stream):
  // close when the accumulator crosses budget/4 or the rank cap. The /4
  // headroom leaves room for the reduction phase's two loaded operands
  // plus serialization buffers inside the same overall budget.
  const uint64_t leafBudget = opts.budgetBytes ? opts.budgetBytes / 4 : 0;

  struct BatchResult {
    std::optional<MergedCtt> acc;
    int count = 0;
    RankSet lost;
  };
  auto computeBatch = [&](int firstRank) {
    BatchResult b;
    int r = firstRank;
    while (r < numRanks) {
      if (opts.maxBatchRanks != 0 &&
          static_cast<uint64_t>(b.count) >= opts.maxBatchRanks)
        break;
      std::optional<Ctt> ctt = source(r);
      if (ctt) {
        MergedCtt one = MergedCtt::fromCtt(*ctt, r);
        if (!b.acc) b.acc.emplace(std::move(one));
        else b.acc->absorb(std::move(one));
      } else {
        b.lost.insert(r);
      }
      ++b.count;
      ++r;
      if (b.acc && leafBudget != 0 && b.acc->memoryBytes() > leafBudget) break;
    }
    return b;
  };
  // Serialize a tree straight into a spill sink: the CYPC stream goes
  // to disk in chunk-sized slices and never exists as one buffer —
  // this is what keeps Phase A/B memory at the batch budget instead of
  // budget + serialized size. The seal totals feed checkpoint records.
  auto streamSpill = [&](const MergedCtt& m, const std::string& path) {
    SpillSink sink(io, path);
    ByteWriter w(sink);
    m.serializeTo(w);
    w.flush();
    return sink.seal();
  };
  auto streamBatchSpill = [&](BatchResult& b, const std::string& path) {
    if (b.acc) return streamSpill(*b.acc, path);
    return streamSpill(MergedCtt(cst), path);
  };

  std::vector<BatchRecord> recBatches;
  if (rec) recBatches = rec->batches;

  RankSet lostAll;           // every rank absent from the final tree
  std::vector<Slot> slots;   // surviving batches, in batch order
  uint64_t batchIndex = 0;
  int rank = 0;
  while (rank < numRanks) {
    if (batchIndex < recBatches.size()) {
      // Checkpointed batch: reuse its durable spill, or — if the file
      // was damaged behind the checkpoint — recompute it; determinism
      // guarantees the recomputation matches the recorded bytes.
      const BatchRecord& b = recBatches[batchIndex];
      CYP_CHECK(b.firstRank == rank,
                "manifest: batch " << batchIndex << " starts at rank "
                                   << b.firstRank << ", expected " << rank);
      lostAll.unite(b.lostRanks);
      if (b.file.empty()) {
        res.droppedRanks.unite(b.lostRanks);
      } else if (spillIntact(io, abs(b.file), b.fileBytes, b.fileCrc)) {
        slots.push_back({b.file, nullptr});
        spillFiles.push_back(b.file);
      } else {
        BatchResult fresh = computeBatch(rank);
        CYP_CHECK(fresh.count == b.rankCount,
                  "manifest: batch " << batchIndex << " re-derives "
                                     << fresh.count << " ranks, checkpoint has "
                                     << b.rankCount);
        const SpillSink::Totals tot = streamBatchSpill(fresh, abs(b.file));
        CYP_CHECK(tot.bytes == b.fileBytes && tot.crc == b.fileCrc,
                  "manifest: recomputed batch "
                      << batchIndex
                      << " diverges from its checkpoint — the rank traces "
                      << "changed since the interrupted run");
        slots.push_back({b.file, nullptr});
        spillFiles.push_back(b.file);
      }
      rank += b.rankCount;
      ++batchIndex;
      ++res.stepsResumed;
      continue;
    }

    BatchResult b = computeBatch(rank);
    BatchRecord entry;
    entry.batchIndex = batchIndex;
    entry.firstRank = rank;
    entry.rankCount = b.count;
    entry.file = "b" + std::to_string(batchIndex) + ".cysp";
    entry.lostRanks = b.lost;
    bool spilled = true;
    try {
      const SpillSink::Totals tot = streamBatchSpill(b, abs(entry.file));
      entry.fileBytes = tot.bytes;
      entry.fileCrc = tot.crc;
    } catch (const io::IoError&) {
      if (!opts.degrade) throw;
      spilled = false;
    }
    if (spilled) {
      slots.push_back({entry.file, nullptr});
      spillFiles.push_back(entry.file);
    } else {
      // Graceful degradation: this batch's ranks are lost, the merge
      // lives on. The empty-file record makes the drop durable so a
      // later resume does not resurrect half of the plan.
      try {
        io.remove(abs(entry.file));
      } catch (const Error&) {
      }
      entry.file.clear();
      entry.fileBytes = 0;
      entry.fileCrc = 0;
      for (int r = rank; r < rank + b.count; ++r) entry.lostRanks.insert(r);
      res.droppedRanks.unite(entry.lostRanks);
    }
    lostAll.unite(entry.lostRanks);
    checkpoint([&] { writer->appendBatch(entry); });
    rank += b.count;
    ++batchIndex;
  }
  res.batches = batchIndex;

  // ---- Phase B: binary-tree reduction over the spills -----------------
  // Fixed pairing (2p, 2p+1), odd slot carried — the same deterministic
  // shape mergeAll uses, so the result is independent of where crashes
  // or resumes landed.
  std::map<std::pair<uint64_t, uint64_t>, MergeRecord> recMerges;
  if (rec)
    for (const MergeRecord& m : rec->merges)
      recMerges[{m.round, m.pairIndex}] = m;

  auto loadSlot = [&](Slot& s) {
    if (s.mem) return std::move(*s.mem);
    return MergedCtt::deserialize(readSpill(io, abs(s.file)), cst);
  };

  uint64_t round = 0;
  while (slots.size() > 1) {
    std::vector<Slot> next;
    const size_t npairs = slots.size() / 2;
    for (size_t p = 0; p < npairs; ++p) {
      const std::string outFile =
          "r" + std::to_string(round) + "-p" + std::to_string(p) + ".cysp";
      Slot a = std::move(slots[2 * p]);
      Slot b = std::move(slots[2 * p + 1]);

      const auto it = recMerges.find({round, p});
      if (it != recMerges.end()) {
        const MergeRecord& m = it->second;
        CYP_CHECK(m.file == outFile,
                  "manifest: merge checkpoint names " << m.file << ", plan says "
                                                      << outFile);
        if (!spillIntact(io, abs(m.file), m.fileBytes, m.fileCrc)) {
          MergedCtt left = loadSlot(a);
          left.absorb(loadSlot(b));
          const SpillSink::Totals tot = streamSpill(left, abs(m.file));
          CYP_CHECK(tot.bytes == m.fileBytes && tot.crc == m.fileCrc,
                    "manifest: recomputed merge r" << round << "-p" << p
                                                   << " diverges from its "
                                                   << "checkpoint");
        }
        next.push_back({m.file, nullptr});
        spillFiles.push_back(m.file);
        ++res.stepsResumed;
        continue;
      }

      MergedCtt left = loadSlot(a);
      left.absorb(loadSlot(b));
      MergeRecord m;
      m.round = round;
      m.pairIndex = p;
      m.file = outFile;
      bool spilled = true;
      try {
        const SpillSink::Totals tot = streamSpill(left, abs(outFile));
        m.fileBytes = tot.bytes;
        m.fileCrc = tot.crc;
      } catch (const io::IoError&) {
        if (!opts.degrade) throw;
        spilled = false;
      }
      if (spilled) {
        checkpoint([&] { writer->appendMerge(m); });
        next.push_back({outFile, nullptr});
        spillFiles.push_back(outFile);
      } else {
        // Disk is failing: keep this intermediate in RAM and finish the
        // merge best-effort — correctness outranks the memory bound
        // once the spill path is gone.
        try {
          io.remove(abs(outFile));
        } catch (const Error&) {
        }
        next.push_back({"", std::make_shared<MergedCtt>(std::move(left))});
      }
    }
    if (slots.size() % 2 != 0) next.push_back(std::move(slots.back()));
    slots = std::move(next);
    ++round;
  }
  res.reductionRounds = round;

  MergedCtt merged = slots.empty() ? MergedCtt(cst) : loadSlot(slots.front());
  merged.markLost(lostAll);
  res.merged = std::move(merged);

  // ---- FINAL: atomic write of the merged CYPC -------------------------
  if (!opts.outPath.empty()) {
    if (rec && rec->final) {
      const FinalRecord& f = *rec->final;
      CYP_CHECK(f.outPath == opts.outPath,
                "manifest: resume writes to " << f.outPath
                                              << ", caller asked for "
                                              << opts.outPath);
      bool intact = false;
      if (io.exists(opts.outPath)) {
        try {
          const auto cur = io.readAll(opts.outPath);
          intact = cur.size() == f.bytes && flate::crc32(cur) == f.crc;
        } catch (const Error&) {
        }
      }
      if (!intact) {
        // The checkpoint outlived the artifact (e.g. a torn rename):
        // verify-and-repair from the deterministic result. The rewrite
        // streams into the tmp file and the totals are checked against
        // the checkpoint BEFORE the rename — a divergent recomputation
        // never reaches the final name.
        io::AtomicFileWriter out(io, opts.outPath);
        flate::Crc32Sink counted(&out);
        ByteWriter w(counted);
        res.merged.serializeTo(w);
        w.flush();
        CYP_CHECK(counted.bytes() == f.bytes && counted.crc() == f.crc,
                  "manifest: final artifact diverges from its checkpoint");
        out.commit();
      }
      ++res.stepsResumed;
    } else {
      // Stream the merged CYPC through the atomic writer; the counting
      // sink supplies the checkpoint totals without a second pass.
      FinalRecord f;
      f.outPath = opts.outPath;
      {
        io::AtomicFileWriter out(io, opts.outPath);
        flate::Crc32Sink counted(&out);
        ByteWriter w(counted);
        res.merged.serializeTo(w);
        w.flush();
        f.bytes = counted.bytes();
        f.crc = counted.crc();
        out.commit();
      }
      checkpoint([&] { writer->appendFinal(f); });
    }
  }

  if (!opts.keepWorkDir) {
    // Success: the checkpoint has served its purpose. Best-effort — a
    // cleanup failure must not fail a completed merge.
    for (const std::string& f : spillFiles) {
      try {
        io.remove(abs(f));
      } catch (const Error&) {
      }
    }
    writer.reset();
    try {
      io.remove(manifestPath);
    } catch (const Error&) {
    }
  }
  return res;
}

}  // namespace cypress::core
