// Memory-bounded, crash-resumable hierarchical streaming merge.
//
// mergeAll (cypress/merge.hpp) holds every rank's CTT in RAM at once —
// fine at P=64, fatal at the P=4K–64K scale the paper's constant-size
// claim is about. streamingMerge instead:
//
//   phase A (leaf batches): pull rank CTTs one at a time from a source
//     callback, absorbing into an in-RAM accumulator until it exceeds
//     the batch budget (or a fixed rank cap), then spill the batch to
//     disk as a sealed CYSP file and checkpoint it in the CYM1
//     manifest. Peak memory is one accumulator + one incoming CTT,
//     independent of P.
//   phase B (reduction): binary-tree reduce the spill files with fixed
//     pairing, loading two at a time, spilling and checkpointing each
//     intermediate. Peak memory is two partial merges.
//
// Every durable step (spill + manifest segment) survives kill -9 and
// injected disk faults: `resume` replays the manifest, verifies each
// recorded spill (seal + length + CRC), redoes anything not fully
// durable, and — because batching and pairing are pure functions of
// (numRanks, budget, maxBatchRanks) and the rank stream — produces a
// final CYPC byte-identical to an uninterrupted run.
//
// Graceful degradation (`degrade`): when a *batch spill* dies on a
// disk fault, the batch's ranks are annotated as lost (the PR 2
// lostRanks mechanism) and the merge continues — a valid partial trace
// beats no trace once the disk is known-bad. Reduction-spill faults
// fall back to keeping that intermediate in RAM (correctness over the
// memory bound; the budget is best-effort once the disk failed).
// Without `degrade`, the first disk fault propagates as io::IoError and
// the on-disk state remains resumable.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "cypress/merge.hpp"
#include "cypress/spill.hpp"
#include "support/io.hpp"

namespace cypress::core {

struct StreamingMergeOptions {
  /// Target peak bytes of merged-CTT state held in RAM. Leaf batches
  /// close once the accumulator crosses budgetBytes/4 (reduction holds
  /// two loaded intermediates plus serialization buffers, hence the
  /// headroom divisor). 0 = unbounded batches (degenerates to one
  /// batch, i.e. plain mergeAll semantics with a spill at the end).
  uint64_t budgetBytes = 256ull << 20;
  /// Hard cap on ranks per leaf batch (0 = budget-driven only). Tests
  /// use small caps to force deep reduction trees at tiny P.
  uint64_t maxBatchRanks = 0;
  /// Directory for spill files + the checkpoint manifest. Created if
  /// missing. Removed contents on success unless keepWorkDir.
  std::string workDir;
  /// Null = the process-wide real backend.
  io::IoBackend* io = nullptr;
  /// Resume an interrupted merge from workDir's manifest. Without this
  /// flag an existing manifest is refused (matching the ledger).
  bool resume = false;
  /// Lost-ranks degradation instead of failing on disk faults.
  bool degrade = false;
  /// Keep spills + manifest after success (debugging).
  bool keepWorkDir = false;
  /// When set, atomically write the final merged CYPC here and record
  /// it as the manifest's FINAL step; a resume that finds the artifact
  /// damaged (e.g. torn rename) repairs it from the checkpointed
  /// size + CRC. Empty = caller handles the result in-process.
  std::string outPath;
  /// Kill-matrix test hook: raise SIGKILL after the Nth durable step
  /// (manifest segment) of this run, 0 = never. Counts only steps
  /// executed live, not steps satisfied from the checkpoint, so
  /// "crash at step N, resume, crash at step N+1" walks the whole merge.
  uint64_t crashAfterSteps = 0;
};

/// Produces rank `rank`'s finalized CTT, or nullopt when the rank's
/// trace was lost (it is annotated in lostRanks and skipped). Called
/// at most once per rank, in ascending rank order.
using CttSource = std::function<std::optional<Ctt>(int rank)>;

struct StreamingMergeResult {
  MergedCtt merged;
  uint64_t batches = 0;        ///< leaf batches in the plan
  uint64_t reductionRounds = 0;
  uint64_t stepsExecuted = 0;  ///< durable steps run live this call
  uint64_t stepsResumed = 0;   ///< steps satisfied from the checkpoint
  RankSet droppedRanks;        ///< ranks degraded away by disk faults
};

/// Merge `numRanks` per-process CTTs (all sharing `cst`) into one
/// MergedCtt under the options' memory budget. See file comment for
/// the crash/resume contract. Throws io::IoError on disk faults
/// (unless opts.degrade) and cypress::Error on plan violations
/// (mismatched resume parameters, corrupt foreign manifest).
StreamingMergeResult streamingMerge(int numRanks, const CttSource& source,
                                    const cst::Tree& cst,
                                    const StreamingMergeOptions& opts);

}  // namespace cypress::core
