// Sequence-preserving decompression (paper §V).
//
// The merged trace tree is traversed in pre-order; loop vertices replay
// their recorded iteration counts, branch vertices their recorded
// outcomes, and comm leaves print the stored records — reproducing each
// rank's original event sequence exactly (recursion pseudo-loops are the
// paper's documented approximation: event multiset preserved, unwind
// order linearized).
#pragma once

#include <vector>

#include "cypress/merge.hpp"
#include "trace/event.hpp"

namespace cypress::core {

/// Reconstruct the full event sequence of one rank. Timing fields are
/// filled from the recorded statistics (mean values); all communication
/// content (op, peers, sizes, tags, wildcard matches, request mapping)
/// is exact. Throws cypress::Error if the tree's payload is inconsistent
/// (any cursor left unconsumed is a bug, not a warning).
std::vector<trace::Event> decompressRank(const MergedCtt& m, int rank);

/// Decompress every rank (convenience for tests and the replay harness).
trace::RawTrace decompressAll(const MergedCtt& m, int numRanks);

}  // namespace cypress::core
