#include "cypress/ctt.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace cypress::core {

size_t Ctt::memoryBytes() const {
  size_t total = sizeof(*this);
  for (const auto& s : loopCounts_) total += s.memoryBytes();
  for (const auto& s : taken_) total += s.memoryBytes();
  for (const auto& s : leafExec_) total += s.memoryBytes();
  for (const auto& v : records_) {
    total += v.capacity() * sizeof(CommRecord);
    for (const auto& r : v) total += r.memoryBytes() - sizeof(CommRecord);
  }
  return total;
}

size_t Ctt::compressedItems() const {
  size_t n = 0;
  for (const auto& s : loopCounts_) n += s.sectionCount();
  for (const auto& s : taken_) n += s.sectionCount();
  for (const auto& s : leafExec_) n += s.sectionCount();
  for (const auto& v : records_) n += v.size();
  return n;
}

void Ctt::serializeTo(ByteWriter& w) const {
  w.str("CYPP");
  w.uv(loopCounts_.size());
  for (size_t g = 0; g < loopCounts_.size(); ++g) {
    loopCounts_[g].serialize(w);
    taken_[g].serialize(w);
    leafExec_[g].serialize(w);
    w.uv(records_[g].size());
    for (const CommRecord& r : records_[g]) r.serialize(w);
  }
}

std::vector<uint8_t> Ctt::serialize() const {
  ByteWriter w;
  serializeTo(w);
  return w.take();
}

Ctt Ctt::deserialize(std::span<const uint8_t> data, const cst::Tree& cst) {
  ByteReader r(data);
  CYP_CHECK(r.str() == "CYPP", "per-process trace: bad magic");
  Ctt c(cst);
  const uint64_t n = r.uv();
  CYP_CHECK(n == static_cast<uint64_t>(cst.numNodes()),
            "per-process trace: node count mismatch ("
                << n << " vs " << cst.numNodes() << ")");
  for (uint64_t g = 0; g < n; ++g) {
    c.loopCounts_[g] = SectionSeq::deserialize(r);
    c.taken_[g] = SectionSeq::deserialize(r);
    c.leafExec_[g] = SectionSeq::deserialize(r);
    const uint64_t nr = r.checkedCount(r.uv(), CommRecord::kMinSerializedBytes);
    r.chargeAlloc(nr * sizeof(CommRecord));
    c.records_[g].reserve(nr);
    for (uint64_t k = 0; k < nr; ++k)
      c.records_[g].push_back(CommRecord::deserialize(r));
  }
  CYP_CHECK(r.atEnd(), "per-process trace: trailing bytes");
  return c;
}

CttRecorder::CttRecorder(const cst::Tree& cst, int rank, Options opts)
    : cst_(cst),
      rank_(rank),
      opts_(opts),
      ctt_(cst),
      exec_(static_cast<size_t>(cst.numNodes()), 0),
      occ_(static_cast<size_t>(cst.numNodes()), 0) {
  stack_.push_back(Frame{cst_.root(), 0});
  exec_[static_cast<size_t>(cst_.root()->gid)] = 1;
}

void CttRecorder::closeFrame() {
  const Frame f = stack_.back();
  stack_.pop_back();
  CYP_CHECK(!stack_.empty(), "CTT recorder closed the root frame");
  if (f.node->kind == cst::NodeKind::Loop) {
    ctt_.loopCountsMut(f.node->gid).append(static_cast<int64_t>(f.loopCount));
  }
}

void CttRecorder::closeTo(size_t depth) {
  while (stack_.size() > depth) closeFrame();
}

void CttRecorder::pushLoopIteration(const cst::Node* loop) {
  // If the loop frame is already open, this Enter is the next iteration:
  // close any structures left open inside the previous iteration first.
  for (size_t i = stack_.size(); i-- > 1;) {
    if (stack_[i].node == loop) {
      closeTo(i + 1);
      ++stack_.back().loopCount;
      ++exec(loop);
      return;
    }
  }
  // Fresh activation.
  const cst::Node* child = cst::Tree::childByStruct(top(), loop->structId, -1);
  CYP_CHECK(child == loop, "loop enter does not match the current context");
  stack_.push_back(Frame{loop, 1});
  ++exec(loop);
}

void CttRecorder::onStructEnter(int structId, int /*pathIndex*/) {
  ScopedCost sc(cost_);
  const cst::Node* c = cst::Tree::childByStruct(top(), structId, -1);
  if (c == nullptr) {
    // The structure may be re-entered while frames from a previous
    // iteration are still open only for loops; childByStruct against the
    // current context failing here means a malformed marker stream —
    // except for the loop-iteration case, which is resolved by scanning
    // the stack.
    for (size_t i = stack_.size(); i-- > 1;) {
      if ((stack_[i].node->kind == cst::NodeKind::Loop) &&
          stack_[i].node->structId == structId) {
        pushLoopIteration(stack_[i].node);
        return;
      }
    }
    CYP_FAIL("struct_enter " << structId << " not resolvable under gid "
                             << top()->gid);
  }
  if (c->kind == cst::NodeKind::Loop) {
    pushLoopIteration(c);
    return;
  }
  CYP_CHECK(c->kind == cst::NodeKind::Branch, "struct_enter on a non-structure");
  // Record the branch outcome: taken at the parent's current execution
  // ordinal (paper Fig. 11).
  const uint64_t parentOrdinal = exec(top()) - 1;
  ctt_.takenMut(c->gid).append(static_cast<int64_t>(parentOrdinal));
  stack_.push_back(Frame{c, 0});
  ++exec(c);
}

void CttRecorder::onStructExit(int structId) {
  ScopedCost sc(cost_);
  // Find the open frame for this structure.
  for (size_t i = stack_.size(); i-- > 1;) {
    if (stack_[i].node->structId == structId &&
        (stack_[i].node->kind == cst::NodeKind::Loop ||
         stack_[i].node->kind == cst::NodeKind::Branch)) {
      closeTo(i);  // closes frames above AND the frame itself
      return;
    }
  }
  // Exit without a frame: a loop that executed zero iterations.
  const cst::Node* c = cst::Tree::childByStruct(top(), structId, -1);
  CYP_CHECK(c != nullptr && c->kind == cst::NodeKind::Loop,
            "struct_exit " << structId << " with no matching open structure");
  ctt_.loopCountsMut(c->gid).append(0);
}

void CttRecorder::onCallEnter(int callInstrId, const std::string& callee) {
  ScopedCost sc(cost_);
  // Recursive re-entry? Find an open pseudo-loop for this callee.
  for (size_t i = stack_.size(); i-- > 1;) {
    const cst::Node* n = stack_[i].node;
    if (n->kind == cst::NodeKind::Loop && n->recursionLoop && n->func == callee) {
      CallLogEntry entry;
      entry.kind = CallLogEntry::Kind::Reentry;
      entry.savedFrames.assign(stack_.begin() + static_cast<ssize_t>(i) + 1,
                               stack_.end());
      stack_.resize(i + 1);
      ++stack_.back().loopCount;
      ++exec(n);
      callLog_.push_back(std::move(entry));
      return;
    }
  }
  const cst::Node* c = cst::Tree::childByCallInstr(top(), callInstrId);
  if (c == nullptr) {
    // Comm-free callee: pruned from the CST; stay transparent.
    callLog_.push_back(CallLogEntry{CallLogEntry::Kind::Transparent, 0, {}});
    return;
  }
  CallLogEntry entry;
  entry.kind = CallLogEntry::Kind::Pushed;
  entry.savedDepth = stack_.size();
  stack_.push_back(Frame{c, 0});
  ++exec(c);
  // Recursive callee: its content lives under a pseudo-loop vertex whose
  // first activation starts now (paper Fig. 8).
  if (!c->children.empty() && c->children[0]->kind == cst::NodeKind::Loop &&
      c->children[0]->recursionLoop) {
    const cst::Node* pseudo = c->children[0].get();
    stack_.push_back(Frame{pseudo, 1});
    ++exec(pseudo);
  }
  callLog_.push_back(std::move(entry));
}

void CttRecorder::onCallExit(const std::string& /*callee*/) {
  ScopedCost sc(cost_);
  CYP_CHECK(!callLog_.empty(), "call exit without a call entry");
  CallLogEntry entry = std::move(callLog_.back());
  callLog_.pop_back();
  switch (entry.kind) {
    case CallLogEntry::Kind::Transparent:
      return;
    case CallLogEntry::Kind::Pushed:
      closeTo(entry.savedDepth);
      return;
    case CallLogEntry::Kind::Reentry:
      // Restore the frames that were popped when the recursion re-entered
      // the pseudo-loop, so post-call events re-attach where they belong.
      for (auto& f : entry.savedFrames) stack_.push_back(f);
      return;
  }
}

void CttRecorder::onEvent(const trace::Event& e) {
  ScopedCost sc(cost_);
  const cst::Node* leaf = cst::Tree::childByCallSite(top(), e.callSiteId);
  CYP_CHECK(leaf != nullptr, "event at call site " << e.callSiteId
                                                   << " not found under gid "
                                                   << top()->gid);
  auto& recs = ctt_.recordsMut(leaf->gid);
  const uint64_t ordinal = occ_[static_cast<size_t>(leaf->gid)]++;
  // Index this occurrence by the parent's execution ordinal, so leaves
  // that fire a variable number of times per execution (Waitsome, the
  // recursion approximation) replay with the right multiplicity.
  ctt_.leafExecMut(leaf->gid).append(static_cast<int64_t>(exec(top()) - 1));
  // Paper §IV-A with the sliding-window refinement: scan the most recent
  // `window` records for a matching parameter tuple.
  CommRecord* hit = nullptr;
  const size_t limit = opts_.window < 0 ? recs.size()
                                        : std::min<size_t>(recs.size(),
                                                           static_cast<size_t>(opts_.window));
  for (size_t k = 0; k < limit; ++k) {
    CommRecord& cand = recs[recs.size() - 1 - k];
    if (cand.matches(e, rank_)) {
      hit = &cand;
      break;
    }
  }
  if (hit == nullptr) {
    recs.push_back(CommRecord::fromEvent(e, rank_));
    hit = &recs.back();
  }
  hit->absorb(e, rank_, opts_.timeMode, ordinal);
}

void CttRecorder::onFinalize() {
  ScopedCost sc(cost_);
  CYP_CHECK(!finalized_, "double finalize");
  closeTo(1);
  finalized_ = true;
}

size_t CttRecorder::memoryBytes() const {
  return ctt_.memoryBytes() + stack_.capacity() * sizeof(Frame) +
         exec_.capacity() * sizeof(uint64_t) + occ_.capacity() * sizeof(uint64_t) +
         callLog_.capacity() * sizeof(CallLogEntry);
}

}  // namespace cypress::core
