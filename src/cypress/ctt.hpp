// The Compressed Trace Tree (CTT) and the on-the-fly intra-process
// compressor (paper §IV-A).
//
// The CTT shares the CST's shape; per-vertex payloads are stored in
// gid-indexed arrays:
//   - loop vertices:   per-activation iteration counts (SectionSeq —
//                      the paper's <first,last,stride> tuples, Fig. 10)
//   - branch vertices: parent-execution ordinals at which the path was
//                      taken (Fig. 11's <0,8,2> encoding)
//   - comm leaves:     CommRecord runs, merged against the last record
//
// CttRecorder implements the PMPI observer: it maintains the "program
// pointer" p of the paper — a stack of active structure frames — and
// fills event details into the static template. All hook work is charged
// to a CostMeter so the intra-process overhead experiments measure
// exactly the compression cost.
#pragma once

#include <cstdint>
#include <vector>

#include "cst/tree.hpp"
#include "cypress/record.hpp"
#include "support/timer.hpp"
#include "trace/observer.hpp"

namespace cypress::core {

/// Per-process populated trace tree.
class Ctt {
 public:
  explicit Ctt(const cst::Tree& cst)
      : cst_(&cst),
        loopCounts_(static_cast<size_t>(cst.numNodes())),
        taken_(static_cast<size_t>(cst.numNodes())),
        records_(static_cast<size_t>(cst.numNodes())),
        leafExec_(static_cast<size_t>(cst.numNodes())) {}

  const cst::Tree& cst() const { return *cst_; }

  const SectionSeq& loopCounts(int gid) const {
    return loopCounts_[static_cast<size_t>(gid)];
  }
  const SectionSeq& taken(int gid) const { return taken_[static_cast<size_t>(gid)]; }
  const std::vector<CommRecord>& records(int gid) const {
    return records_[static_cast<size_t>(gid)];
  }
  /// Parent-execution ordinal of each event at this leaf (in occurrence
  /// order). Ordinary leaves emit exactly once per parent execution, so
  /// this compresses to a single <0,n-1,1> tuple; partial-completion ops
  /// (Waitsome) may emit zero or several events per execution.
  const SectionSeq& leafExec(int gid) const {
    return leafExec_[static_cast<size_t>(gid)];
  }

  SectionSeq& loopCountsMut(int gid) { return loopCounts_[static_cast<size_t>(gid)]; }
  SectionSeq& takenMut(int gid) { return taken_[static_cast<size_t>(gid)]; }
  std::vector<CommRecord>& recordsMut(int gid) {
    return records_[static_cast<size_t>(gid)];
  }
  SectionSeq& leafExecMut(int gid) { return leafExec_[static_cast<size_t>(gid)]; }

  /// Exact heap footprint of the compressed payload (Fig. 16 memory).
  size_t memoryBytes() const;

  /// Total number of compressed items (records + count/taken sections):
  /// the per-process "n" of the paper's complexity discussion.
  size_t compressedItems() const;

  /// Per-process trace file (the paper's model: each process writes its
  /// compressed trace at MPI_Finalize; merging can then happen offline).
  /// The CST is NOT embedded — the reader must supply the same tree.
  /// serializeTo streams into `w` — pair it with a sink-backed writer
  /// (e.g. over flate::StreamingCompressor) so the CYPP bytes leave RAM
  /// as they are produced; serialize() is the materializing wrapper.
  void serializeTo(ByteWriter& w) const;
  std::vector<uint8_t> serialize() const;
  static Ctt deserialize(std::span<const uint8_t> data, const cst::Tree& cst);

 private:
  const cst::Tree* cst_;
  std::vector<SectionSeq> loopCounts_;
  std::vector<SectionSeq> taken_;
  std::vector<std::vector<CommRecord>> records_;
  std::vector<SectionSeq> leafExec_;
};

/// On-the-fly intra-process compressor for one rank.
class CttRecorder final : public trace::Observer {
 public:
  struct Options {
    TimeMode timeMode;
    /// How many existing records to scan for a parameter match before
    /// opening a new one (the paper's sliding window, §IV-A). 1 degrades
    /// to compare-with-last; larger windows capture loop-carried
    /// parameter cycles at slightly higher per-event cost.
    int window;
    Options() : timeMode(TimeMode::MeanStddev), window(64) {}
    explicit Options(TimeMode m, int w = 64) : timeMode(m), window(w) {}
  };

  CttRecorder(const cst::Tree& cst, int rank, Options opts = Options());

  // trace::Observer:
  void onEvent(const trace::Event& e) override;
  void onStructEnter(int structId, int pathIndex) override;
  void onStructExit(int structId) override;
  void onCallEnter(int callInstrId, const std::string& callee) override;
  void onCallExit(const std::string& callee) override;
  void onFinalize() override;

  const Ctt& ctt() const { return ctt_; }
  int rank() const { return rank_; }
  bool finalized() const { return finalized_; }

  /// CPU time spent inside the hooks (the tool's intra-process overhead).
  const CostMeter& cost() const { return cost_; }

  /// CTT payload + recorder bookkeeping memory.
  size_t memoryBytes() const;

 private:
  struct Frame {
    const cst::Node* node = nullptr;
    uint64_t loopCount = 0;  // iterations in the current activation
  };
  struct CallLogEntry {
    enum class Kind : uint8_t { Transparent, Pushed, Reentry } kind;
    size_t savedDepth = 0;            // Pushed: stack depth before push
    std::vector<Frame> savedFrames;   // Reentry: frames popped at re-entry
  };

  const cst::Node* top() const { return stack_.back().node; }
  uint64_t& exec(const cst::Node* n) { return exec_[static_cast<size_t>(n->gid)]; }

  /// Close one frame (flush loop activation counts).
  void closeFrame();
  /// Close frames until the stack has `depth` entries.
  void closeTo(size_t depth);
  void pushLoopIteration(const cst::Node* loop);

  const cst::Tree& cst_;
  int rank_;
  Options opts_;
  Ctt ctt_;
  std::vector<Frame> stack_;
  std::vector<CallLogEntry> callLog_;
  std::vector<uint64_t> exec_;  // per-gid execution ordinal counters
  std::vector<uint64_t> occ_;   // per-leaf event occurrence counters
  CostMeter cost_;
  bool finalized_ = false;
};

}  // namespace cypress::core
