#include "cypress/spill.hpp"

#include <algorithm>

#include "flate/flate.hpp"
#include "support/error.hpp"

namespace cypress::core {

namespace {

constexpr uint64_t kSpillVersion = 1;
constexpr uint64_t kManifestVersion = 1;
constexpr size_t kSpillChunkBytes = 256u << 10;

constexpr uint8_t kChunkSegment = 0;
constexpr uint8_t kSealSegment = 1;

constexpr uint8_t kBatchSegment = 0;
constexpr uint8_t kMergeSegment = 1;
constexpr uint8_t kFinalSegment = 2;

std::string checkedStr(ByteReader& r) {
  const uint64_t n = r.checkedCount(r.uv(), 1);
  return std::string(reinterpret_cast<const char*>(r.raw(n).data()), n);
}

void frameSegment(ByteWriter& w, uint8_t kind,
                  std::span<const uint8_t> payload) {
  w.u8(kind);
  w.uv(payload.size());
  w.u32fixed(flate::crc32(payload));
  w.raw(payload);
}

}  // namespace

SpillSink::SpillSink(io::IoBackend& io, const std::string& path)
    : file_(io.openWrite(path)) {
  chunk_.reserve(kSpillChunkBytes);
  ByteWriter h;
  h.str("CYSP");
  h.uv(kSpillVersion);
  file_->write(h.bytes());
}

void SpillSink::flushChunk() {
  // Chunked so a torn write is localized: every chunk is independently
  // CRC-checked, and the seal pins the whole-stream length and CRC.
  const uint32_t chunkCrc = flate::crc32(chunk_);
  totals_.crc = totals_.bytes == 0
                    ? chunkCrc
                    : flate::crc32Combine(totals_.crc, chunkCrc, chunk_.size());
  totals_.bytes += chunk_.size();
  ByteWriter seg;
  frameSegment(seg, kChunkSegment, chunk_);
  file_->write(seg.bytes());
  chunk_.clear();
}

void SpillSink::append(std::span<const uint8_t> bytes) {
  CYP_CHECK(!sealed_, "spill: append after seal");
  while (!bytes.empty()) {
    const size_t n = std::min(kSpillChunkBytes - chunk_.size(), bytes.size());
    chunk_.insert(chunk_.end(), bytes.begin(), bytes.begin() + n);
    bytes = bytes.subspan(n);
    // Eager flush at exactly the chunk size: writeSpill cuts full
    // chunks at the same offsets, so the files are byte-identical.
    if (chunk_.size() == kSpillChunkBytes) flushChunk();
  }
}

SpillSink::Totals SpillSink::seal() {
  CYP_CHECK(!sealed_, "spill: sealed twice");
  sealed_ = true;
  if (!chunk_.empty()) flushChunk();
  ByteWriter seal;
  seal.uv(totals_.bytes);
  seal.u32fixed(totals_.crc);
  ByteWriter seg;
  frameSegment(seg, kSealSegment, seal.bytes());
  file_->write(seg.bytes());
  file_->sync();
  file_->close();
  return totals_;
}

void writeSpill(io::IoBackend& io, const std::string& path,
                std::span<const uint8_t> data) {
  SpillSink sink(io, path);
  sink.append(data);
  sink.seal();
}

std::vector<uint8_t> parseSpill(std::span<const uint8_t> file) {
  ByteReader r(file);
  CYP_CHECK(r.str() == "CYSP", "spill: bad magic");
  const uint64_t version = r.uv();
  CYP_CHECK(version == kSpillVersion, "spill: unsupported version " << version);

  std::vector<uint8_t> data;
  bool sealed = false;
  while (!r.atEnd()) {
    CYP_CHECK(!sealed, "spill: segment after seal");
    const uint8_t kind = r.u8();
    CYP_CHECK(kind <= kSealSegment, "spill: unknown segment kind " << int(kind));
    const uint64_t len = r.uv();
    const uint32_t crc = r.u32fixed();
    std::span<const uint8_t> payload = r.raw(len);
    CYP_CHECK(flate::crc32(payload) == crc, "spill: segment CRC mismatch");
    if (kind == kChunkSegment) {
      r.chargeAlloc(payload.size());
      data.insert(data.end(), payload.begin(), payload.end());
    } else {
      ByteReader p(payload);
      const uint64_t totalBytes = p.uv();
      const uint32_t totalCrc = p.u32fixed();
      CYP_CHECK(p.atEnd(), "spill: trailing bytes in seal");
      CYP_CHECK(totalBytes == data.size(),
                "spill: seal declares " << totalBytes << " bytes, chunks hold "
                                        << data.size());
      CYP_CHECK(totalCrc == flate::crc32(data), "spill: stream CRC mismatch");
      sealed = true;
    }
  }
  CYP_CHECK(sealed, "spill: unsealed (incomplete checkpoint)");
  return data;
}

std::vector<uint8_t> readSpill(io::IoBackend& io, const std::string& path) {
  return parseSpill(io.readAll(path));
}

bool spillIntact(io::IoBackend& io, const std::string& path,
                 uint64_t expectBytes, uint32_t expectCrc) {
  if (!io.exists(path)) return false;
  try {
    const auto data = readSpill(io, path);
    return data.size() == expectBytes && flate::crc32(data) == expectCrc;
  } catch (const Error&) {
    return false;
  }
}

ManifestWriter::ManifestWriter(io::IoBackend& io, const std::string& path,
                               const MergePlanKey& key, bool resume)
    : io_(io) {
  bool fresh = true;
  if (io_.exists(path) && io_.fileSize(path) > 0) fresh = false;
  CYP_CHECK(fresh || resume,
            "manifest: " << path << " already exists; pass --resume to "
                         << "continue the interrupted merge or remove its "
                         << "work directory to start fresh");
  file_ = io_.openWrite(path, /*append=*/true);
  if (fresh) {
    ByteWriter h;
    h.str("CYM1");
    h.uv(kManifestVersion);
    h.uv(key.numRanks);
    h.uv(key.budgetBytes);
    h.uv(key.maxBatchRanks);
    file_->write(h.bytes());
    file_->sync();
  }
}

void ManifestWriter::segment(uint8_t kind, const ByteWriter& payload) {
  ByteWriter w;
  frameSegment(w, kind, payload.bytes());
  // One write + fsync per segment: a checkpoint that has not reached
  // the platter is not a checkpoint.
  file_->write(w.bytes());
  file_->sync();
  ++segments_;
}

void ManifestWriter::appendBatch(const BatchRecord& b) {
  ByteWriter p;
  p.uv(b.batchIndex);
  p.uv(static_cast<uint64_t>(b.firstRank));
  p.uv(static_cast<uint64_t>(b.rankCount));
  p.str(b.file);
  p.uv(b.fileBytes);
  p.u32fixed(b.fileCrc);
  b.lostRanks.serialize(p);
  segment(kBatchSegment, p);
}

void ManifestWriter::appendMerge(const MergeRecord& m) {
  ByteWriter p;
  p.uv(m.round);
  p.uv(m.pairIndex);
  p.str(m.file);
  p.uv(m.fileBytes);
  p.u32fixed(m.fileCrc);
  segment(kMergeSegment, p);
}

void ManifestWriter::appendFinal(const FinalRecord& f) {
  ByteWriter p;
  p.str(f.outPath);
  p.uv(f.bytes);
  p.u32fixed(f.crc);
  segment(kFinalSegment, p);
}

namespace {

ManifestRecovery readManifest(std::span<const uint8_t> data, bool strict) {
  ByteReader r(data);
  CYP_CHECK(r.str() == "CYM1", "manifest: bad magic");
  const uint64_t version = r.uv();
  CYP_CHECK(version == kManifestVersion,
            "manifest: unsupported version " << version);
  ManifestRecovery out;
  out.key.numRanks = r.uv();
  out.key.budgetBytes = r.uv();
  out.key.maxBatchRanks = r.uv();
  CYP_CHECK(out.key.numRanks >= 1 && out.key.numRanks <= (1u << 22),
            "manifest: implausible rank count " << out.key.numRanks);

  while (!r.atEnd()) {
    const size_t segStart = r.pos();
    try {
      const uint8_t kind = r.u8();
      CYP_CHECK(kind <= kFinalSegment,
                "manifest: unknown segment kind " << int(kind));
      const uint64_t len = r.uv();
      const uint32_t crc = r.u32fixed();
      std::span<const uint8_t> payload = r.raw(len);
      CYP_CHECK(flate::crc32(payload) == crc, "manifest: segment CRC mismatch");
      CYP_CHECK(!out.final.has_value(), "manifest: segment after FINAL");

      ByteReader p(payload);
      if (kind == kBatchSegment) {
        BatchRecord b;
        b.batchIndex = p.uv();
        b.firstRank = static_cast<int>(p.uv());
        b.rankCount = static_cast<int>(p.uv());
        b.file = checkedStr(p);
        b.fileBytes = p.uv();
        b.fileCrc = p.u32fixed();
        b.lostRanks = RankSet::deserialize(p);
        CYP_CHECK(p.atEnd(), "manifest: trailing bytes in batch segment");
        CYP_CHECK(b.batchIndex == out.batches.size(),
                  "manifest: batch " << b.batchIndex << " out of order");
        CYP_CHECK(b.rankCount >= 1, "manifest: empty batch");
        out.batches.push_back(std::move(b));
      } else if (kind == kMergeSegment) {
        MergeRecord m;
        m.round = p.uv();
        m.pairIndex = p.uv();
        m.file = checkedStr(p);
        m.fileBytes = p.uv();
        m.fileCrc = p.u32fixed();
        CYP_CHECK(p.atEnd(), "manifest: trailing bytes in merge segment");
        out.merges.push_back(std::move(m));
      } else {
        FinalRecord f;
        f.outPath = checkedStr(p);
        f.bytes = p.uv();
        f.crc = p.u32fixed();
        CYP_CHECK(p.atEnd(), "manifest: trailing bytes in final segment");
        out.final = std::move(f);
      }
      ++out.segmentsRecovered;
    } catch (const Error&) {
      if (strict) throw;
      out.bytesDiscarded = data.size() - segStart;
      return out;
    }
  }
  return out;
}

}  // namespace

ManifestRecovery recoverManifest(std::span<const uint8_t> data) {
  return readManifest(data, /*strict=*/false);
}

ManifestRecovery parseManifest(std::span<const uint8_t> data) {
  return readManifest(data, /*strict=*/true);
}

std::optional<ManifestRecovery> recoverManifestFile(io::IoBackend& io,
                                                    const std::string& path) {
  if (!io.exists(path)) return std::nullopt;
  const auto bytes = io.readAll(path);
  if (bytes.empty()) return std::nullopt;

  // A kill can land mid-write of the header itself; any prefix shorter
  // than the fixed magic+version is a torn fresh manifest. The header's
  // plan-key varints make longer prefixes self-checking: a torn key
  // fails the plausibility check below and is treated the same way.
  try {
    ManifestRecovery rec = recoverManifest(bytes);
    if (rec.bytesDiscarded > 0)
      io.truncate(path, bytes.size() - rec.bytesDiscarded);
    return rec;
  } catch (const Error&) {
    // Unusable header. If it is a strict prefix of a valid CYM1 header
    // the process died writing it — truncate to empty and start over;
    // anything else is a foreign file we refuse to clobber.
    ByteWriter magic;
    magic.str("CYM1");
    const auto& m = magic.bytes();
    const bool tornHeader =
        bytes.size() < m.size() + 4 * 10 &&
        std::equal(bytes.begin(),
                   bytes.begin() + std::min(bytes.size(), m.size()), m.begin());
    CYP_CHECK(tornHeader, "manifest: " << path << " is not a CYM1 manifest");
    io.truncate(path, 0);
    return std::nullopt;
  }
}

}  // namespace cypress::core
