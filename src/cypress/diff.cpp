#include "cypress/diff.hpp"

#include <sstream>

namespace cypress::core {

namespace {

std::string rankSetStr(const RankSet& s) {
  std::ostringstream os;
  os << "{";
  const auto& r = s.ranks();
  for (size_t i = 0; i < r.size(); ++i) {
    if (i == 4 && r.size() > 6) {
      os << ", ... " << r.size() - i << " more";
      break;
    }
    if (i) os << ", ";
    os << r[i];
  }
  os << "}";
  return os.str();
}

std::string seqSummary(const SectionSeq& s) {
  std::ostringstream os;
  os << s.size() << " values";
  if (!s.empty()) {
    os << " [" << s.at(0);
    if (s.size() > 1) os << " .. " << s.at(s.size() - 1);
    os << "]";
  }
  return os.str();
}

void diffSeqEntries(int gid, const char* kind, const std::vector<SeqEntry>& a,
                    const std::vector<SeqEntry>& b, TraceDiff* out) {
  // Pair entries by rank overlap; report content changes and rank moves.
  for (const SeqEntry& ea : a) {
    bool matched = false;
    for (const SeqEntry& eb : b) {
      if (ea.ranks == eb.ranks) {
        matched = true;
        if (!(ea.seq == eb.seq)) {
          std::ostringstream os;
          os << kind << " for ranks " << rankSetStr(ea.ranks) << " changed: "
             << seqSummary(ea.seq) << " -> " << seqSummary(eb.seq);
          out->entries.push_back(DiffEntry{gid, os.str()});
        }
        break;
      }
    }
    if (!matched) {
      std::ostringstream os;
      os << kind << " rank grouping changed (was " << rankSetStr(ea.ranks) << ")";
      out->entries.push_back(DiffEntry{gid, os.str()});
    }
  }
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << kind << " entry count changed: " << a.size() << " -> " << b.size();
    out->entries.push_back(DiffEntry{gid, os.str()});
  }
}

std::string recordSummary(const CommRecord& r) {
  std::ostringstream os;
  os << ir::mpiOpName(r.op) << " x" << r.count << " bytes=" << r.bytes
     << " tag=" << r.tag;
  return os.str();
}

void diffLeafEntries(int gid, const std::vector<LeafEntry>& a,
                     const std::vector<LeafEntry>& b, TraceDiff* out) {
  for (const LeafEntry& ea : a) {
    const LeafEntry* match = nullptr;
    for (const LeafEntry& eb : b) {
      if (ea.ranks == eb.ranks) {
        match = &eb;
        break;
      }
    }
    if (match == nullptr) {
      out->entries.push_back(
          DiffEntry{gid, "event rank grouping changed (was " +
                             rankSetStr(ea.ranks) + ")"});
      continue;
    }
    if (ea.records.size() != match->records.size()) {
      std::ostringstream os;
      os << "record count for ranks " << rankSetStr(ea.ranks) << " changed: "
         << ea.records.size() << " -> " << match->records.size();
      out->entries.push_back(DiffEntry{gid, os.str()});
      continue;
    }
    for (size_t i = 0; i < ea.records.size(); ++i) {
      if (!ea.records[i].sameContent(match->records[i])) {
        std::ostringstream os;
        os << "record " << i << " for ranks " << rankSetStr(ea.ranks)
           << " changed: " << recordSummary(ea.records[i]) << " -> "
           << recordSummary(match->records[i]);
        out->entries.push_back(DiffEntry{gid, os.str()});
      }
    }
  }
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "event entry count changed: " << a.size() << " -> " << b.size();
    out->entries.push_back(DiffEntry{gid, os.str()});
  }
}

}  // namespace

TraceDiff diffTraces(const MergedCtt& a, const MergedCtt& b) {
  TraceDiff d;
  if (a.cst().toText() != b.cst().toText()) {
    d.sameStructure = false;
    d.entries.push_back(
        DiffEntry{-1, "communication structure trees differ (different "
                      "programs or versions)"});
    return d;
  }
  d.sameStructure = true;
  const int n = a.cst().numNodes();
  for (int g = 0; g < n; ++g) {
    diffSeqEntries(g, "loop counts", a.loopEntries(g), b.loopEntries(g), &d);
    diffSeqEntries(g, "branch outcomes", a.takenEntries(g), b.takenEntries(g), &d);
    diffLeafEntries(g, a.leafEntries(g), b.leafEntries(g), &d);
  }
  return d;
}

std::string TraceDiff::toString() const {
  if (identical()) return "traces are identical\n";
  std::ostringstream os;
  if (!sameStructure) {
    os << entries.front().what << "\n";
    return os.str();
  }
  os << entries.size() << " difference(s):\n";
  for (const DiffEntry& e : entries)
    os << "  gid " << e.gid << ": " << e.what << "\n";
  return os.str();
}

}  // namespace cypress::core
