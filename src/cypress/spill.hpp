// Crash-consistent merge spill files (CYSP) and the streaming-merge
// checkpoint manifest (CYM1).
//
// The memory-bounded streaming merge (cypress/merge_stream.hpp) keeps
// at most a batch of ranks in RAM and parks every intermediate merged
// CTT on disk. Both on-disk forms follow the CYJ1 discipline — CRC
// framing so any torn byte is detectable, plus an explicit
// completeness marker — because both are written on the crash path by
// construction: a kill -9 or an ENOSPC mid-merge must never leave an
// undetectably damaged file.
//
// CYSP spill file:
//
//   header:  str "CYSP" | uvarint version (1)
//   segment: u8 kind | uvarint payloadLen | u32 crc32(payload) | payload
//
// Segment kinds:
//   0 CHUNK payload = a slice of the serialized CYPC stream
//   1 SEAL  payload = uv totalBytes | u32 crc32(whole stream)
//
// A spill ending in a valid SEAL whose totals match is *complete*;
// anything else (truncated, torn chunk, missing seal) means the batch
// it held was mid-write when the process died, and the resume path
// recomputes it. There is no lenient reader on purpose: a spill is a
// checkpoint artifact, not a source of record — partial content is
// worthless because the inputs that produced it still exist.
//
// CYM1 checkpoint manifest:
//
//   header:  str "CYM1" | uvarint version (1)
//            | uv numRanks | uv budgetBytes | uv maxBatchRanks
//   segment: u8 kind | uvarint payloadLen | u32 crc32(payload) | payload
//
// Segment kinds:
//   0 BATCH payload = uv batchIndex | uv firstRank | uv rankCount
//                     | str file | uv fileBytes | u32 fileCrc
//                     | RankSet lostRanks
//   1 MERGE payload = uv round | uv pairIndex | str file
//                     | uv fileBytes | u32 fileCrc
//   2 FINAL payload = str outPath | uv bytes | u32 crc32
//
// Like the CYL1 ledger the manifest is append-only and never sealed;
// each segment is one completed, durable step of the merge. `file` is
// relative to the manifest's directory; a BATCH with an empty file is
// a degraded batch whose ranks were dropped (lostRanks says which).
// Recovery is prefix salvage: replay CRC-valid segments, truncate the
// torn tail, resume appending. The header parameters pin the plan —
// resuming with a different rank count or budget would re-batch
// differently, so it is refused.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/bytebuf.hpp"
#include "support/io.hpp"
#include "support/rank_set.hpp"

namespace cypress::core {

/// Write `data` to `path` as a sealed CYSP spill (fsync before
/// returning). Throws io::IoError on disk faults.
void writeSpill(io::IoBackend& io, const std::string& path,
                std::span<const uint8_t> data);

/// Streaming CYSP writer: a ByteSink producers serialize straight
/// into, so a spill never requires the serialized stream as one
/// buffer. Bytes are framed into CRC'd CHUNK segments at the same
/// fixed cut points writeSpill uses (the file is byte-identical);
/// seal() flushes the tail chunk, appends the SEAL segment with the
/// running totals (whole-stream CRC via crc32Combine folding), fsyncs,
/// closes, and reports the payload totals for checkpoint records.
/// A destroyed-unsealed sink leaves a torn spill — exactly what the
/// strict reader rejects and the resume path recomputes.
class SpillSink final : public ByteSink {
 public:
  struct Totals {
    uint64_t bytes = 0;  ///< payload stream length
    uint32_t crc = 0;    ///< crc32 of the whole payload stream
  };

  SpillSink(io::IoBackend& io, const std::string& path);
  ~SpillSink() override = default;

  SpillSink(const SpillSink&) = delete;
  SpillSink& operator=(const SpillSink&) = delete;

  void append(std::span<const uint8_t> bytes) override;
  Totals seal();

 private:
  void flushChunk();

  std::unique_ptr<io::IoFile> file_;
  std::vector<uint8_t> chunk_;
  Totals totals_;
  bool sealed_ = false;
};

/// Strict parse of spill bytes: returns the payload stream only when
/// every chunk CRC checks out and a valid, matching SEAL terminates the
/// file; any anomaly raises cypress::Error.
std::vector<uint8_t> parseSpill(std::span<const uint8_t> file);

/// Read + parse a spill file.
std::vector<uint8_t> readSpill(io::IoBackend& io, const std::string& path);

/// True when `path` exists and holds a sealed spill of exactly
/// `expectBytes` payload bytes with CRC `expectCrc` — the resume path's
/// "is this checkpointed step still durable" probe. Never throws:
/// missing, torn, or mismatched files are simply not intact.
bool spillIntact(io::IoBackend& io, const std::string& path,
                 uint64_t expectBytes, uint32_t expectCrc);

/// One completed leaf batch recorded in the manifest.
struct BatchRecord {
  uint64_t batchIndex = 0;
  int firstRank = 0;
  int rankCount = 0;
  std::string file;  ///< relative to the manifest dir; empty = degraded
  uint64_t fileBytes = 0;
  uint32_t fileCrc = 0;
  RankSet lostRanks;  ///< ranks dropped by graceful degradation
};

/// One completed reduction-pair merge recorded in the manifest.
struct MergeRecord {
  uint64_t round = 0;
  uint64_t pairIndex = 0;
  std::string file;
  uint64_t fileBytes = 0;
  uint32_t fileCrc = 0;
};

/// The durable FINAL step: the merged CYPC was atomically written.
struct FinalRecord {
  std::string outPath;
  uint64_t bytes = 0;
  uint32_t crc = 0;
};

/// The plan parameters pinned in the manifest header. Deterministic
/// batching is a pure function of these plus the rank CTT stream, so
/// equality here guarantees a resume re-derives the identical plan.
struct MergePlanKey {
  uint64_t numRanks = 0;
  uint64_t budgetBytes = 0;
  uint64_t maxBatchRanks = 0;

  bool operator==(const MergePlanKey&) const = default;
};

/// Append-only CYM1 writer: one write + fsync per segment, mirroring
/// the ledger.
class ManifestWriter {
 public:
  /// Opens `path` for appending; writes the header when the file is new
  /// or empty, otherwise requires `resume` (the file must already have
  /// been salvaged to a valid prefix by recoverManifestFile).
  ManifestWriter(io::IoBackend& io, const std::string& path,
                 const MergePlanKey& key, bool resume = false);

  void appendBatch(const BatchRecord& b);
  void appendMerge(const MergeRecord& m);
  void appendFinal(const FinalRecord& f);

  /// Durable segments appended through this writer (header excluded) —
  /// the clock the kill-matrix --crash-after-steps hook reads.
  uint64_t segmentsWritten() const { return segments_; }

 private:
  void segment(uint8_t kind, const ByteWriter& payload);

  io::IoBackend& io_;
  std::unique_ptr<io::IoFile> file_;
  uint64_t segments_ = 0;
};

/// The replayed state of a (possibly torn) manifest.
struct ManifestRecovery {
  MergePlanKey key;
  std::vector<BatchRecord> batches;  ///< ascending batchIndex
  std::vector<MergeRecord> merges;
  std::optional<FinalRecord> final;
  size_t segmentsRecovered = 0;
  size_t bytesDiscarded = 0;  ///< torn tail after the last good segment
};

/// Salvage manifest bytes: replay CRC-valid segments up to the first
/// damage. Throws cypress::Error only on an unusable header.
ManifestRecovery recoverManifest(std::span<const uint8_t> data);

/// Strict read for fuzzing: any anomaly raises cypress::Error.
ManifestRecovery parseManifest(std::span<const uint8_t> data);

/// Read + salvage a manifest file and truncate it to the valid prefix
/// so a ManifestWriter can resume appending. A missing or empty file
/// (including a torn header, which is truncated to empty) yields
/// nullopt: there is nothing to resume from.
std::optional<ManifestRecovery> recoverManifestFile(io::IoBackend& io,
                                                    const std::string& path);

}  // namespace cypress::core
