// Structural diff of two merged CYPRESS traces.
//
// Because both traces share the program's CST shape, differences can be
// localized to vertices instead of raw event offsets: "the loop at
// main#2 ran 40 iterations instead of 20", "ranks 8..15 stopped taking
// this branch", "message size changed at this call site". This is the
// regression-analysis workflow compressed traces enable (and raw traces
// make painful). Exposed as `cyptrace diff`.
#pragma once

#include <string>
#include <vector>

#include "cypress/merge.hpp"

namespace cypress::core {

struct DiffEntry {
  int gid = -1;
  std::string what;  // human-readable description of the difference
};

struct TraceDiff {
  bool sameStructure = false;  // CSTs identical (same program)
  std::vector<DiffEntry> entries;

  bool identical() const { return sameStructure && entries.empty(); }
  std::string toString() const;
};

/// Compare two merged traces. When the CSTs differ the diff stops at the
/// structural level; otherwise every vertex's payload is compared.
TraceDiff diffTraces(const MergedCtt& a, const MergedCtt& b);

}  // namespace cypress::core
