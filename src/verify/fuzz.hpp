// Deterministic corruption fuzzer for the trace deserializers.
//
// Starting from a well-formed serialized trace, apply seeded random
// mutations (bit flips, byte overwrites, truncations, slice surgery)
// and feed each mutant to a decoder. The contract under test: a decoder
// confronted with arbitrary bytes either succeeds or throws
// cypress::Error — never any other exception, never UB, never an
// unbounded allocation. Seeds are fixed by the caller, so every failure
// is replayable.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace cypress::verify {

/// A decoder under test: parse the bytes, throw cypress::Error on
/// malformed input, return normally otherwise.
using Decoder = std::function<void(std::span<const uint8_t>)>;

struct FuzzOptions {
  uint64_t seed = 0xC4B8E55;
  /// Number of mutants to generate and decode.
  int mutations = 200;
  /// Upper bound on bytes an insertion mutation may add.
  size_t maxGrow = 64;
};

/// One mutant the decoder mishandled (threw something other than
/// cypress::Error). `index` replays it: re-run with the same seed and
/// count mutants.
struct FuzzFailure {
  int index = 0;
  std::string what;
};

struct FuzzReport {
  int mutants = 0;
  int rejected = 0;  ///< threw cypress::Error — the correct outcome
  int accepted = 0;  ///< decoded cleanly (some mutations are benign)
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string toString() const;
};

/// Mutate `good` `opts.mutations` times and decode each mutant.
FuzzReport corruptionFuzz(std::span<const uint8_t> good, const Decoder& decode,
                          const FuzzOptions& opts = {});

/// Exhaustive truncation sweep: decode every strict prefix of `good`
/// (lengths 0, stride, 2*stride, ... < size). Same contract as
/// corruptionFuzz; FuzzFailure::index is the prefix length. This covers
/// in particular every segment boundary of framed formats (CYJ1), where
/// a kill mid-write tears the file at an arbitrary byte.
FuzzReport truncationSweep(std::span<const uint8_t> good, const Decoder& decode,
                           size_t stride = 1);

}  // namespace cypress::verify
