// Trace-validation and roundtrip-verification subsystem.
//
// Every on-disk format in the repository (CYPC, CYPP, CYTR, STR1, STM1,
// CYF1, CYJ1) has a serializer and a hardened deserializer; this module proves
// the two are inverse of each other on real data. The core property is
// *byte stability*: serialize → deserialize → re-serialize must
// reproduce the input bit-for-bit, which implies the deserializer loses
// nothing and the serializer is canonical. Where a ground-truth raw
// trace is available, decompression is additionally checked against it
// event-for-event.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cypress/merge.hpp"
#include "scalatrace/element.hpp"
#include "trace/event.hpp"

namespace cypress::verify {

/// One named check and its outcome.
struct CheckResult {
  std::string name;
  bool passed = false;
  std::string detail;  // failure explanation, empty on success
};

struct Report {
  std::vector<CheckResult> checks;

  bool ok() const {
    for (const auto& c : checks)
      if (!c.passed) return false;
    return true;
  }
  void add(std::string name, bool passed, std::string detail = "");
  /// Run `fn` as a named check; a cypress::Error (or any exception)
  /// thrown inside fails the check instead of propagating.
  void run(std::string name, const std::function<void()>& fn);
  std::string toString() const;
};

/// The component-level artifacts of one traced run. All pointers are
/// borrowed and optional; absent tools are simply skipped. This struct
/// (rather than driver::RunOutput) keeps the verifier free of a driver
/// dependency — the driver provides a convenience wrapper.
struct Artifacts {
  const core::MergedCtt* merged = nullptr;  ///< CYPRESS merged trace
  const trace::RawTrace* raw = nullptr;     ///< ground-truth raw trace
  /// Per-rank compressed sequences (index = rank).
  std::vector<const std::vector<scalatrace::Element>*> scalaV1;
  std::vector<const std::vector<scalatrace::Element>*> scalaV2;
};

/// Serialize → deserialize → re-serialize every artifact and assert
/// byte-for-byte stability. With `raw` present, also decompress the
/// CYPRESS and ScalaTrace-V1 traces per rank and compare the event
/// sequences (communication content; timings are statistical).
Report verifyRoundtrip(const Artifacts& a);

/// Verify one serialized trace blob of any known format, identified by
/// its magic: deserialize, re-serialize, assert byte stability. For
/// flate containers (CYF1) the check is decompress → compress →
/// decompress equality instead (the encoder is level-dependent, so raw
/// container bytes are not canonical).
Report verifyTraceFile(std::span<const uint8_t> data);

/// Parse a serialized trace blob of any known format and discard the
/// result; throws cypress::Error on malformed input (including an
/// unrecognized magic). This is the decoder the corruption fuzzer
/// drives against whole files.
void decodeTraceFile(std::span<const uint8_t> data);

}  // namespace cypress::verify
