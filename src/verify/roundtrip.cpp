#include "verify/roundtrip.hpp"

#include <cstring>
#include <sstream>

#include "cypress/decompress.hpp"
#include "flate/flate.hpp"
#include "scalatrace/inter.hpp"
#include "scalatrace/recorder.hpp"
#include "support/error.hpp"
#include "trace/journal.hpp"

namespace cypress::verify {

void Report::add(std::string name, bool passed, std::string detail) {
  checks.push_back(CheckResult{std::move(name), passed, std::move(detail)});
}

void Report::run(std::string name, const std::function<void()>& fn) {
  try {
    fn();
    add(std::move(name), true);
  } catch (const std::exception& e) {
    add(std::move(name), false, e.what());
  }
}

std::string Report::toString() const {
  std::ostringstream os;
  for (const auto& c : checks) {
    os << (c.passed ? "  ok  " : "FAIL  ") << c.name;
    if (!c.detail.empty()) os << ": " << c.detail;
    os << "\n";
  }
  return os.str();
}

namespace {

void requireSameBytes(std::span<const uint8_t> a, std::span<const uint8_t> b,
                      const char* what) {
  CYP_CHECK(a.size() == b.size(), what << ": re-serialized to " << b.size()
                                       << " bytes, expected " << a.size());
  for (size_t i = 0; i < a.size(); ++i)
    CYP_CHECK(a[i] == b[i], what << ": bytes diverge at offset " << i);
}

void requireSameEvents(const std::vector<trace::Event>& expect,
                       const std::vector<trace::Event>& got, int rank,
                       const char* what) {
  CYP_CHECK(expect.size() == got.size(),
            what << ": rank " << rank << " decompressed to " << got.size()
                 << " events, expected " << expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    // Timing fields are statistical after compression; only the
    // communication content must survive exactly.
    CYP_CHECK(expect[i].sameComm(got[i]),
              what << ": rank " << rank << " event " << i << " differs\n  raw: "
                   << expect[i].toString() << "\n  got: " << got[i].toString());
  }
}

}  // namespace

Report verifyRoundtrip(const Artifacts& a) {
  Report rep;

  if (a.raw != nullptr) {
    rep.run("raw: byte stability", [&] {
      const auto bytes = a.raw->serialize();
      const auto again = trace::RawTrace::deserialize(bytes).serialize();
      requireSameBytes(bytes, again, "raw trace");
    });
    rep.run("flate: lossless over raw bytes", [&] {
      const auto bytes = a.raw->serialize();
      const auto packed = flate::compress(bytes);
      const auto unpacked = flate::decompress(packed);
      requireSameBytes(bytes, unpacked, "flate roundtrip");
    });
  }

  if (a.merged != nullptr) {
    rep.run("cypress: byte stability", [&] {
      const auto bytes = a.merged->serialize();
      cst::Tree tree;
      const auto again =
          core::MergedCtt::deserializeWithTree(bytes, tree).serialize();
      requireSameBytes(bytes, again, "cypress trace");
    });
    if (a.raw != nullptr) {
      rep.run("cypress: decompression matches raw", [&] {
        const auto bytes = a.merged->serialize();
        cst::Tree tree;
        const auto back = core::MergedCtt::deserializeWithTree(bytes, tree);
        for (size_t r = 0; r < a.raw->ranks.size(); ++r) {
          const auto events = core::decompressRank(back, static_cast<int>(r));
          requireSameEvents(a.raw->ranks[r].events, events,
                            static_cast<int>(r), "cypress decompression");
        }
      });
    }
  }

  auto checkPerRank = [&](const char* tool,
                          const std::vector<const std::vector<scalatrace::Element>*>&
                              seqs) {
    if (seqs.empty()) return;
    rep.run(std::string(tool) + ": per-rank byte stability", [&] {
      for (size_t r = 0; r < seqs.size(); ++r) {
        const auto bytes = scalatrace::Recorder::serializeSequence(*seqs[r]);
        const auto again = scalatrace::Recorder::serializeSequence(
            scalatrace::Recorder::deserializeSequence(bytes));
        requireSameBytes(bytes, again, "scalatrace per-rank trace");
      }
    });
  };
  checkPerRank("scala", a.scalaV1);
  checkPerRank("scala2", a.scalaV2);

  if (!a.scalaV1.empty()) {
    rep.run("scala: merged byte stability", [&] {
      const auto merged =
          scalatrace::mergeSequences(a.scalaV1, scalatrace::Flavor::V1);
      const auto bytes = merged.serialize();
      const auto again = scalatrace::MergedSeq::deserialize(bytes).serialize();
      requireSameBytes(bytes, again, "merged scalatrace trace");
    });
    if (a.raw != nullptr) {
      rep.run("scala: decompression matches raw", [&] {
        const auto merged =
            scalatrace::mergeSequences(a.scalaV1, scalatrace::Flavor::V1);
        const auto back =
            scalatrace::MergedSeq::deserialize(merged.serialize());
        for (size_t r = 0; r < a.raw->ranks.size(); ++r) {
          const auto events =
              scalatrace::decompressRank(back, static_cast<int>(r));
          requireSameEvents(a.raw->ranks[r].events, events,
                            static_cast<int>(r), "scalatrace decompression");
        }
      });
    }
  }
  if (!a.scalaV2.empty()) {
    rep.run("scala2: merged byte stability", [&] {
      const auto merged =
          scalatrace::mergeSequences(a.scalaV2, scalatrace::Flavor::V2);
      const auto bytes = merged.serialize();
      const auto again = scalatrace::MergedSeq::deserialize(bytes).serialize();
      requireSameBytes(bytes, again, "merged scalatrace-2 trace");
    });
  }

  return rep;
}

namespace {

/// Identify a serialized blob by magic. The flate container writes its
/// magic as 4 raw bytes; every other format writes it via
/// ByteWriter::str, i.e. with a one-byte length prefix of 4.
std::string fileMagic(std::span<const uint8_t> data) {
  CYP_CHECK(data.size() >= 5, "trace file shorter than a magic header");
  if (std::memcmp(data.data(), "CYF1", 4) == 0) return "CYF1";
  CYP_CHECK(data[0] == 4,
            "trace file does not start with a recognized magic header");
  return std::string(reinterpret_cast<const char*>(data.data()) + 1, 4);
}

}  // namespace

Report verifyTraceFile(std::span<const uint8_t> data) {
  Report rep;
  const std::string magicStr = fileMagic(data);
  const char* magic = magicStr.c_str();

  if (std::memcmp(magic, "CYPC", 4) == 0) {
    rep.run("cypress: byte stability", [&] {
      cst::Tree tree;
      const auto again =
          core::MergedCtt::deserializeWithTree(data, tree).serialize();
      requireSameBytes(data, again, "cypress trace");
    });
  } else if (std::memcmp(magic, "CYTR", 4) == 0) {
    rep.run("raw: byte stability", [&] {
      const auto again = trace::RawTrace::deserialize(data).serialize();
      requireSameBytes(data, again, "raw trace");
    });
  } else if (std::memcmp(magic, "STR1", 4) == 0) {
    rep.run("scalatrace: byte stability", [&] {
      const auto again = scalatrace::Recorder::serializeSequence(
          scalatrace::Recorder::deserializeSequence(data));
      requireSameBytes(data, again, "scalatrace per-rank trace");
    });
  } else if (std::memcmp(magic, "STM1", 4) == 0) {
    rep.run("scalatrace merged: byte stability", [&] {
      const auto again = scalatrace::MergedSeq::deserialize(data).serialize();
      requireSameBytes(data, again, "merged scalatrace trace");
    });
  } else if (std::memcmp(magic, "CYF1", 4) == 0) {
    // The flate container is not byte-canonical across compression
    // levels, so the invariant is content stability instead.
    rep.run("flate: content stability", [&] {
      const auto content = flate::decompress(data);
      const auto again = flate::decompress(flate::compress(content));
      requireSameBytes(content, again, "flate content");
    });
  } else if (std::memcmp(magic, "CYJ1", 4) == 0) {
    // Journals have no canonical re-serializer (flush boundaries are a
    // runtime artifact); the invariants are strict-parse validity and
    // salvage/strict agreement on an intact journal.
    rep.run("journal: strict parse", [&] { trace::parseJournal(data); });
    rep.run("journal: recovery agrees with strict parse", [&] {
      const auto strict = trace::parseJournal(data);
      const auto salvaged = trace::recoverJournal(data);
      CYP_CHECK(salvaged.sealed && salvaged.bytesDiscarded == 0,
                "journal recovery discarded bytes from an intact journal");
      CYP_CHECK(strict.trace.ranks.size() == salvaged.trace.ranks.size(),
                "journal recovery rank count mismatch");
      for (size_t r = 0; r < strict.trace.ranks.size(); ++r)
        CYP_CHECK(strict.trace.ranks[r].events == salvaged.trace.ranks[r].events,
                  "journal recovery diverges on rank " << r);
    });
  } else {
    CYP_FAIL("unknown trace magic '" << magic << "'");
  }
  return rep;
}

void decodeTraceFile(std::span<const uint8_t> data) {
  const std::string magicStr = fileMagic(data);
  const char* magic = magicStr.c_str();
  if (std::memcmp(magic, "CYPC", 4) == 0) {
    cst::Tree tree;
    core::MergedCtt::deserializeWithTree(data, tree);
  } else if (std::memcmp(magic, "CYTR", 4) == 0) {
    trace::RawTrace::deserialize(data);
  } else if (std::memcmp(magic, "STR1", 4) == 0) {
    scalatrace::Recorder::deserializeSequence(data);
  } else if (std::memcmp(magic, "STM1", 4) == 0) {
    scalatrace::MergedSeq::deserialize(data);
  } else if (std::memcmp(magic, "CYF1", 4) == 0) {
    flate::decompress(data);
  } else if (std::memcmp(magic, "CYJ1", 4) == 0) {
    trace::parseJournal(data);
  } else {
    CYP_FAIL("unknown trace magic '" << magic << "'");
  }
}

}  // namespace cypress::verify
