#include "verify/fuzz.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace cypress::verify {

namespace {

std::vector<uint8_t> mutate(std::span<const uint8_t> good, Rng& rng,
                            size_t maxGrow) {
  std::vector<uint8_t> m(good.begin(), good.end());
  switch (rng.below(6)) {
    case 0: {  // single bit flip
      if (m.empty()) break;
      m[rng.below(m.size())] ^= static_cast<uint8_t>(1u << rng.below(8));
      break;
    }
    case 1: {  // byte overwrite
      if (m.empty()) break;
      m[rng.below(m.size())] = static_cast<uint8_t>(rng.below(256));
      break;
    }
    case 2: {  // truncate to a strict prefix
      m.resize(rng.below(m.size() + 1));
      break;
    }
    case 3: {  // remove a slice
      if (m.empty()) break;
      const size_t at = rng.below(m.size());
      const size_t len = 1 + rng.below(std::min<size_t>(m.size() - at, 32));
      m.erase(m.begin() + static_cast<std::ptrdiff_t>(at),
              m.begin() + static_cast<std::ptrdiff_t>(at + len));
      break;
    }
    case 4: {  // duplicate a slice in place
      if (m.empty()) break;
      const size_t at = rng.below(m.size());
      const size_t len = 1 + rng.below(std::min<size_t>(m.size() - at, 32));
      const std::vector<uint8_t> slice(
          m.begin() + static_cast<std::ptrdiff_t>(at),
          m.begin() + static_cast<std::ptrdiff_t>(at + len));
      m.insert(m.begin() + static_cast<std::ptrdiff_t>(at), slice.begin(),
               slice.end());
      break;
    }
    default: {  // insert random bytes
      const size_t at = rng.below(m.size() + 1);
      const size_t len = 1 + rng.below(maxGrow ? maxGrow : 1);
      std::vector<uint8_t> junk(len);
      for (auto& b : junk) b = static_cast<uint8_t>(rng.below(256));
      m.insert(m.begin() + static_cast<std::ptrdiff_t>(at), junk.begin(),
               junk.end());
      break;
    }
  }
  return m;
}

}  // namespace

std::string FuzzReport::toString() const {
  std::ostringstream os;
  os << mutants << " mutants: " << rejected << " rejected, " << accepted
     << " accepted, " << failures.size() << " failures";
  for (const auto& f : failures)
    os << "\n  mutant " << f.index << ": " << f.what;
  return os.str();
}

FuzzReport truncationSweep(std::span<const uint8_t> good, const Decoder& decode,
                           size_t stride) {
  if (stride == 0) stride = 1;
  FuzzReport rep;
  for (size_t len = 0; len < good.size(); len += stride) {
    ++rep.mutants;
    try {
      decode(good.subspan(0, len));
      ++rep.accepted;
    } catch (const Error&) {
      ++rep.rejected;
    } catch (const std::exception& e) {
      rep.failures.push_back(FuzzFailure{static_cast<int>(len), e.what()});
    } catch (...) {
      rep.failures.push_back(
          FuzzFailure{static_cast<int>(len), "non-standard exception"});
    }
  }
  return rep;
}

FuzzReport corruptionFuzz(std::span<const uint8_t> good, const Decoder& decode,
                          const FuzzOptions& opts) {
  Rng rng(opts.seed);
  FuzzReport rep;
  for (int i = 0; i < opts.mutations; ++i) {
    const auto mutant = mutate(good, rng, opts.maxGrow);
    ++rep.mutants;
    try {
      decode(mutant);
      ++rep.accepted;  // the mutation happened to stay well-formed
    } catch (const Error&) {
      ++rep.rejected;  // the hardened path: structured rejection
    } catch (const std::exception& e) {
      rep.failures.push_back(FuzzFailure{i, e.what()});
    } catch (...) {
      rep.failures.push_back(FuzzFailure{i, "non-standard exception"});
    }
  }
  return rep;
}

}  // namespace cypress::verify
