#include "driver/pipeline.hpp"

#include "flate/flate.hpp"
#include "flate/stream.hpp"
#include "minic/compile.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "trace/observer.hpp"
#include "workloads/workloads.hpp"

namespace cypress::driver {

namespace {

template <typename Recorders>
double sumCostSeconds(const Recorders& recs) {
  double total = 0.0;
  for (const auto& r : recs) total += r->cost().totalSeconds();
  return total;
}

template <typename Recorders>
size_t avgMemory(const Recorders& recs) {
  if (recs.empty()) return 0;
  size_t total = 0;
  for (const auto& r : recs) total += r->memoryBytes();
  return total / recs.size();
}

/// Stream one rank's CYPP through the shard compressor into `sink`:
/// serialized bytes leave the writer in shard-sized slices and are
/// compressed as they are cut — the full serialized vector never
/// exists. Byte-identical to flate::compress(ctt.serialize()).
flate::StreamingCompressor::Totals compressCttTo(const core::Ctt& ctt,
                                                 ByteSink& sink, int threads) {
  flate::StreamingCompressor sc(sink, flate::Level::Default, threads);
  ByteWriter w(sc);
  ctt.serializeTo(w);
  w.flush();
  return sc.finish();
}

}  // namespace

double RunOutput::cypressIntraSeconds() const { return sumCostSeconds(cypress); }
double RunOutput::scalaIntraSeconds() const { return sumCostSeconds(scala); }
double RunOutput::scala2IntraSeconds() const { return sumCostSeconds(scala2); }

size_t RunOutput::cypressMemoryPerRank() const { return avgMemory(cypress); }
size_t RunOutput::scalaMemoryPerRank() const { return avgMemory(scala); }
size_t RunOutput::scala2MemoryPerRank() const { return avgMemory(scala2); }

RankSet RunOutput::lostRanks() const {
  RankSet lost;
  for (int r : runStats.deadRanks) lost.insert(r);
  for (int r : runStats.stalledRanks) lost.insert(r);
  return lost;
}

std::shared_ptr<const CompiledProgram> compileForTracing(
    const std::string& source) {
  auto out = std::make_shared<CompiledProgram>();

  // Plain compile (Table I baseline).
  {
    Stopwatch w;
    auto plain = minic::compileProgram(source);
    out->plainCompileSeconds = w.seconds();
    (void)plain;
  }

  // Compile + CYPRESS static phase.
  std::unique_ptr<ir::Module> module = minic::compileProgram(source);
  cst::StaticResult sr = cst::analyzeAndInstrument(*module);
  out->module = std::move(module);
  out->cst = std::make_shared<const cst::Tree>(std::move(sr.cst));
  out->stats = sr.stats;
  return out;
}

RunOutput runSource(const std::string& name, const std::string& source,
                    const Options& opts) {
  RunOutput out;
  out.workload = name;
  out.procs = opts.procs;

  // Static phase: a precompiled program (the cyptraced CST cache) is
  // shared as-is — it is immutable during runs; otherwise compile fresh.
  const std::shared_ptr<const CompiledProgram> prog =
      opts.precompiled ? opts.precompiled : compileForTracing(source);
  out.module = prog->module;
  out.cst = prog->cst;
  out.compileStats = prog->stats;
  out.plainCompileSeconds = prog->plainCompileSeconds;

  // Optional untraced baseline run.
  if (opts.measureBaseline) {
    simmpi::Engine::Config cfg = opts.engine;
    cfg.numRanks = opts.procs;
    simmpi::Engine engine(cfg);
    std::vector<trace::Observer*> none(static_cast<size_t>(opts.procs), nullptr);
    vm::RunOptions baseOpts;
    baseOpts.onStall = opts.onStall;
    baseOpts.threads = opts.threads;
    baseOpts.cancel = opts.cancel;
    Stopwatch w;
    vm::run(*out.module, engine, none, baseOpts);
    out.baselineWallSeconds = w.seconds();
  }

  // Traced run with all requested tools observing the same events.
  simmpi::Engine::Config cfg = opts.engine;
  cfg.numRanks = opts.procs;
  simmpi::Engine engine(cfg);
  out.raw.ranks.resize(static_cast<size_t>(opts.procs));
  if (opts.withJournal)
    out.journal =
        std::make_unique<trace::JournalBuilder>(opts.procs, opts.journalSink);

  std::vector<std::unique_ptr<trace::RawRecorder>> raws;
  std::vector<std::unique_ptr<trace::TeeObserver>> tees;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < opts.procs; ++r) {
    auto tee = std::make_unique<trace::TeeObserver>();
    if (opts.withRaw) {
      out.raw.ranks[static_cast<size_t>(r)].rank = r;
      raws.push_back(std::make_unique<trace::RawRecorder>(
          out.raw.ranks[static_cast<size_t>(r)]));
      tee->add(raws.back().get());
    }
    if (opts.withJournal) {
      out.journalRecorders.push_back(std::make_unique<trace::JournalRecorder>(
          *out.journal, r, opts.journalFlushEvery));
      tee->add(out.journalRecorders.back().get());
    }
    if (opts.withCypress) {
      out.cypress.push_back(std::make_unique<core::CttRecorder>(
          *out.cst, r, core::CttRecorder::Options(opts.timeMode)));
      tee->add(out.cypress.back().get());
    }
    if (opts.withScala) {
      out.scala.push_back(std::make_unique<scalatrace::Recorder>(
          r, scalatrace::Recorder::Options(scalatrace::Flavor::V1)));
      tee->add(out.scala.back().get());
    }
    if (opts.withScala2) {
      out.scala2.push_back(std::make_unique<scalatrace::Recorder>(
          r, scalatrace::Recorder::Options(scalatrace::Flavor::V2)));
      tee->add(out.scala2.back().get());
    }
    tees.push_back(std::move(tee));
    obs.push_back(tees.back().get());
  }

  vm::RunOptions runOpts;
  runOpts.instructionLimitPerRank = 1ull << 34;
  runOpts.onStall = opts.onStall;
  runOpts.threads = opts.threads;
  runOpts.cancel = opts.cancel;
  Stopwatch w;
  out.runStats = vm::run(*out.module, engine, obs, runOpts);
  out.tracedWallSeconds = w.seconds();

  // Seal the journal: every rank has now either finalized (FINALIZE
  // segment already appended) or is recorded as lost. Stalled ranks are
  // hung, not crashed — their tracer is still alive, so flush their
  // buffered tails first; a *dead* rank's unflushed tail stays lost,
  // which is what a real kill costs. A run that dies before this point
  // leaves an unsealed journal — exactly the partial stream `cyptrace
  // recover` salvages.
  if (out.journal) {
    for (int r : out.runStats.stalledRanks)
      out.journalRecorders[static_cast<size_t>(r)]->flush();
    out.journal->seal(out.lostRanks());
  }

  // Per-rank fan-out (the paper's deployment model: every process
  // writes its own compressed trace at finalize). Each rank's
  // serialization + compression is an independent pool task — ranks
  // share no state — and results land in rank-indexed slots, so the
  // files are byte-identical for any thread count.
  if (opts.emitRankTraces && opts.withCypress) {
    out.rankTraceFiles.resize(out.cypress.size());
    parallelFor(out.cypress.size(), opts.threads, [&](size_t r) {
      if (!out.cypress[r]->finalized()) return;  // lost rank: empty entry
      // Streaming serialize→compress (single lane per rank; the fan-out
      // across ranks is the parallelism): shards leave the serializer
      // as they are cut, so peak memory per rank is one shard plus the
      // compressed output instead of both full streams.
      VectorSink sink;
      compressCttTo(out.cypress[r]->ctt(), sink, /*threads=*/1);
      out.rankTraceFiles[r] = sink.take();
    });
  }

  if (opts.verifyRoundtrip) {
    const verify::Report rep = verifyRun(out, opts.threads);
    CYP_CHECK(rep.ok(),
              "roundtrip verification failed for " << name << ":\n"
                                                   << rep.toString());
  }
  return out;
}

RunOutput runWorkload(const std::string& name, const Options& opts) {
  const workloads::Workload& w = workloads::get(name);
  CYP_CHECK(w.supportsProcs(opts.procs),
            name << " does not support " << opts.procs << " processes");
  return runSource(name, w.source(opts.procs, opts.scale), opts);
}

core::MergedCtt mergeCypress(const RunOutput& run, CostMeter* cost,
                             int threads) {
  CYP_CHECK(!run.cypress.empty(), "mergeCypress: run has no CYPRESS recorders");
  std::vector<const core::Ctt*> ctts;
  std::vector<int> ranks;
  RankSet lost;
  ctts.reserve(run.cypress.size());
  for (const auto& r : run.cypress) {
    if (r->finalized()) {
      ctts.push_back(&r->ctt());
      ranks.push_back(r->rank());
    } else {
      // Killed or stalled mid-run: its CTT is an unclosed prefix, so it
      // is excluded from the merge and annotated as lost instead.
      lost.insert(r->rank());
    }
  }
  if (ctts.empty()) {
    // Every rank died: degrade to an empty trace over the static CST
    // with the whole job marked lost.
    core::MergedCtt m(*run.cst);
    m.markLost(lost);
    return m;
  }
  core::MergedCtt m = core::mergeAll(std::move(ctts), cost, threads, &ranks);
  m.markLost(lost);
  return m;
}

verify::Report verifyRun(const RunOutput& run, int threads) {
  verify::Artifacts a;
  std::optional<core::MergedCtt> merged;
  if (!run.cypress.empty()) {
    merged.emplace(mergeCypress(run, nullptr, threads));
    a.merged = &*merged;
  }
  if (!run.raw.ranks.empty()) a.raw = &run.raw;
  for (const auto& r : run.scala) a.scalaV1.push_back(&r->sequence());
  for (const auto& r : run.scala2) a.scalaV2.push_back(&r->sequence());
  return verify::verifyRoundtrip(a);
}

SizeReport computeSizes(const RunOutput& run, int threads) {
  SizeReport rep;
  // The four per-tool branches touch disjoint SizeReport fields and
  // disjoint recorder state, so they fan out as independent pool tasks;
  // the CYPRESS branch parallelizes further (merge reduction + flate
  // shards) with the same budget.
  // All four size pairs come from one streaming pass each: serialize
  // into the shard compressor over a discarding sink, and read both
  // the raw and the compressed byte counts off the totals — neither
  // the serialized stream nor the compressed container is ever held.
  const auto streamedSizes = [threads](const auto& producer) {
    NullSink null;
    flate::StreamingCompressor sc(null, flate::Level::Default, threads);
    ByteWriter w(sc);
    producer.serializeTo(w);
    w.flush();
    return sc.finish();
  };
  std::vector<std::function<void()>> branches;
  if (!run.raw.ranks.empty()) {
    branches.push_back([&] {
      const auto tot = streamedSizes(run.raw);
      rep.rawBytes = tot.rawBytes;
      rep.gzipBytes = tot.compressedBytes;
    });
  }
  if (!run.scala.empty()) {
    branches.push_back([&] {
      std::vector<const std::vector<scalatrace::Element>*> seqs;
      for (const auto& r : run.scala) seqs.push_back(&r->sequence());
      CostMeter cost;
      auto merged = scalatrace::mergeSequences(seqs, scalatrace::Flavor::V1, &cost);
      rep.scalaBytes = merged.serializedBytes();
      rep.scalaInterSeconds = cost.totalSeconds();
    });
  }
  if (!run.scala2.empty()) {
    branches.push_back([&] {
      std::vector<const std::vector<scalatrace::Element>*> seqs;
      for (const auto& r : run.scala2) seqs.push_back(&r->sequence());
      CostMeter cost;
      auto merged = scalatrace::mergeSequences(seqs, scalatrace::Flavor::V2, &cost);
      const auto tot = streamedSizes(merged);
      rep.scala2Bytes = tot.rawBytes;
      rep.scala2GzipBytes = tot.compressedBytes;
      rep.scala2InterSeconds = cost.totalSeconds();
    });
  }
  if (!run.cypress.empty()) {
    branches.push_back([&] {
      CostMeter cost;
      auto merged = mergeCypress(run, &cost, threads);
      const auto tot = streamedSizes(merged);
      rep.cypressBytes = tot.rawBytes;
      rep.cypressGzipBytes = tot.compressedBytes;
      rep.cypressInterSeconds = cost.totalSeconds();
    });
  }
  parallelFor(branches.size(), threads, [&](size_t i) { branches[i](); });
  return rep;
}

namespace {

std::string rankFileName(int rank) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "rank-%05d.cypp", rank);
  return buf;
}

constexpr uint64_t kRankDirVersion = 1;

}  // namespace

RankSet writeRankTraces(const RunOutput& run, const std::string& dir,
                        io::IoBackend* io, int threads) {
  io::IoBackend& be = io ? *io : io::realIo();
  // Prefer streaming straight from the recorders: each rank's CYPP is
  // serialized into the shard compressor and drained through an
  // AtomicFileWriter, so shards leave RAM as they are cut and no rank
  // ever exists as serialized-plus-compressed buffers. The
  // pre-compressed rankTraceFiles path remains for callers that only
  // kept the buffers (the bytes are identical either way). Ranks are
  // written in order — deterministic I/O ordinals for fault plans —
  // while `threads` parallelizes shard compression within a rank.
  const bool fromRecorders = !run.cypress.empty();
  CYP_CHECK(fromRecorders || !run.rankTraceFiles.empty(),
            "writeRankTraces: the run has no per-rank traces (run with "
            "Options::withCypress or Options::emitRankTraces)");
  const size_t numRanks =
      fromRecorders ? run.cypress.size() : run.rankTraceFiles.size();
  be.createDirectories(dir);

  ByteWriter meta;
  meta.str("CYRD");
  meta.uv(kRankDirVersion);
  meta.uv(numRanks);
  io::writeFileAtomic(be, dir + "/meta.cyrd", meta.bytes());
  io::writeFileAtomic(be, dir + "/cst.cyst",
                      flate::compressString(run.cst->toText()));

  RankSet lost;
  for (size_t r = 0; r < numRanks; ++r) {
    const std::string path = dir + "/" + rankFileName(static_cast<int>(r));
    if (fromRecorders) {
      if (!run.cypress[r]->finalized()) {  // lost rank: no file
        lost.insert(static_cast<int>(r));
        continue;
      }
      io::AtomicFileWriter out(be, path);
      compressCttTo(run.cypress[r]->ctt(), out, threads);
      out.commit();
    } else {
      if (run.rankTraceFiles[r].empty()) {
        lost.insert(static_cast<int>(r));
        continue;
      }
      io::writeFileAtomic(be, path, run.rankTraceFiles[r]);
    }
  }
  return lost;
}

std::optional<core::Ctt> RankTraceDir::load(int rank) const {
  io::IoBackend& be = io ? *io : io::realIo();
  const std::string path = dir + "/" + rankFileName(rank);
  if (!be.exists(path)) return std::nullopt;
  return core::Ctt::deserialize(flate::decompress(be.readAll(path)), *cst);
}

RankTraceDir openRankTraceDir(const std::string& dir, io::IoBackend* io) {
  io::IoBackend& be = io ? *io : io::realIo();
  RankTraceDir out;
  out.dir = dir;
  out.io = io;

  const std::vector<uint8_t> metaBytes = be.readAll(dir + "/meta.cyrd");
  ByteReader meta(metaBytes);
  CYP_CHECK(meta.str() == "CYRD", dir << ": not a rank-trace directory");
  const uint64_t version = meta.uv();
  CYP_CHECK(version == kRankDirVersion,
            dir << ": unsupported rank-dir version " << version);
  const uint64_t numRanks = meta.uv();
  CYP_CHECK(meta.atEnd(), dir << ": trailing bytes in meta.cyrd");
  CYP_CHECK(numRanks >= 1 && numRanks <= (1u << 22),
            dir << ": implausible rank count " << numRanks);
  out.numRanks = static_cast<int>(numRanks);

  out.cst = std::make_shared<cst::Tree>(cst::Tree::fromText(
      flate::decompressToString(be.readAll(dir + "/cst.cyst"))));
  return out;
}

}  // namespace cypress::driver
