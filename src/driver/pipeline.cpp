#include "driver/pipeline.hpp"

#include "flate/flate.hpp"
#include "minic/compile.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "trace/observer.hpp"
#include "workloads/workloads.hpp"

namespace cypress::driver {

namespace {

template <typename Recorders>
double sumCostSeconds(const Recorders& recs) {
  double total = 0.0;
  for (const auto& r : recs) total += r->cost().totalSeconds();
  return total;
}

template <typename Recorders>
size_t avgMemory(const Recorders& recs) {
  if (recs.empty()) return 0;
  size_t total = 0;
  for (const auto& r : recs) total += r->memoryBytes();
  return total / recs.size();
}

}  // namespace

double RunOutput::cypressIntraSeconds() const { return sumCostSeconds(cypress); }
double RunOutput::scalaIntraSeconds() const { return sumCostSeconds(scala); }
double RunOutput::scala2IntraSeconds() const { return sumCostSeconds(scala2); }

size_t RunOutput::cypressMemoryPerRank() const { return avgMemory(cypress); }
size_t RunOutput::scalaMemoryPerRank() const { return avgMemory(scala); }
size_t RunOutput::scala2MemoryPerRank() const { return avgMemory(scala2); }

RankSet RunOutput::lostRanks() const {
  RankSet lost;
  for (int r : runStats.deadRanks) lost.insert(r);
  for (int r : runStats.stalledRanks) lost.insert(r);
  return lost;
}

std::shared_ptr<const CompiledProgram> compileForTracing(
    const std::string& source) {
  auto out = std::make_shared<CompiledProgram>();

  // Plain compile (Table I baseline).
  {
    Stopwatch w;
    auto plain = minic::compileProgram(source);
    out->plainCompileSeconds = w.seconds();
    (void)plain;
  }

  // Compile + CYPRESS static phase.
  std::unique_ptr<ir::Module> module = minic::compileProgram(source);
  cst::StaticResult sr = cst::analyzeAndInstrument(*module);
  out->module = std::move(module);
  out->cst = std::make_shared<const cst::Tree>(std::move(sr.cst));
  out->stats = sr.stats;
  return out;
}

RunOutput runSource(const std::string& name, const std::string& source,
                    const Options& opts) {
  RunOutput out;
  out.workload = name;
  out.procs = opts.procs;

  // Static phase: a precompiled program (the cyptraced CST cache) is
  // shared as-is — it is immutable during runs; otherwise compile fresh.
  const std::shared_ptr<const CompiledProgram> prog =
      opts.precompiled ? opts.precompiled : compileForTracing(source);
  out.module = prog->module;
  out.cst = prog->cst;
  out.compileStats = prog->stats;
  out.plainCompileSeconds = prog->plainCompileSeconds;

  // Optional untraced baseline run.
  if (opts.measureBaseline) {
    simmpi::Engine::Config cfg = opts.engine;
    cfg.numRanks = opts.procs;
    simmpi::Engine engine(cfg);
    std::vector<trace::Observer*> none(static_cast<size_t>(opts.procs), nullptr);
    vm::RunOptions baseOpts;
    baseOpts.onStall = opts.onStall;
    baseOpts.threads = opts.threads;
    baseOpts.cancel = opts.cancel;
    Stopwatch w;
    vm::run(*out.module, engine, none, baseOpts);
    out.baselineWallSeconds = w.seconds();
  }

  // Traced run with all requested tools observing the same events.
  simmpi::Engine::Config cfg = opts.engine;
  cfg.numRanks = opts.procs;
  simmpi::Engine engine(cfg);
  out.raw.ranks.resize(static_cast<size_t>(opts.procs));
  if (opts.withJournal)
    out.journal =
        std::make_unique<trace::JournalBuilder>(opts.procs, opts.journalSink);

  std::vector<std::unique_ptr<trace::RawRecorder>> raws;
  std::vector<std::unique_ptr<trace::TeeObserver>> tees;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < opts.procs; ++r) {
    auto tee = std::make_unique<trace::TeeObserver>();
    if (opts.withRaw) {
      out.raw.ranks[static_cast<size_t>(r)].rank = r;
      raws.push_back(std::make_unique<trace::RawRecorder>(
          out.raw.ranks[static_cast<size_t>(r)]));
      tee->add(raws.back().get());
    }
    if (opts.withJournal) {
      out.journalRecorders.push_back(std::make_unique<trace::JournalRecorder>(
          *out.journal, r, opts.journalFlushEvery));
      tee->add(out.journalRecorders.back().get());
    }
    if (opts.withCypress) {
      out.cypress.push_back(std::make_unique<core::CttRecorder>(
          *out.cst, r, core::CttRecorder::Options(opts.timeMode)));
      tee->add(out.cypress.back().get());
    }
    if (opts.withScala) {
      out.scala.push_back(std::make_unique<scalatrace::Recorder>(
          r, scalatrace::Recorder::Options(scalatrace::Flavor::V1)));
      tee->add(out.scala.back().get());
    }
    if (opts.withScala2) {
      out.scala2.push_back(std::make_unique<scalatrace::Recorder>(
          r, scalatrace::Recorder::Options(scalatrace::Flavor::V2)));
      tee->add(out.scala2.back().get());
    }
    tees.push_back(std::move(tee));
    obs.push_back(tees.back().get());
  }

  vm::RunOptions runOpts;
  runOpts.instructionLimitPerRank = 1ull << 34;
  runOpts.onStall = opts.onStall;
  runOpts.threads = opts.threads;
  runOpts.cancel = opts.cancel;
  Stopwatch w;
  out.runStats = vm::run(*out.module, engine, obs, runOpts);
  out.tracedWallSeconds = w.seconds();

  // Seal the journal: every rank has now either finalized (FINALIZE
  // segment already appended) or is recorded as lost. Stalled ranks are
  // hung, not crashed — their tracer is still alive, so flush their
  // buffered tails first; a *dead* rank's unflushed tail stays lost,
  // which is what a real kill costs. A run that dies before this point
  // leaves an unsealed journal — exactly the partial stream `cyptrace
  // recover` salvages.
  if (out.journal) {
    for (int r : out.runStats.stalledRanks)
      out.journalRecorders[static_cast<size_t>(r)]->flush();
    out.journal->seal(out.lostRanks());
  }

  // Per-rank fan-out (the paper's deployment model: every process
  // writes its own compressed trace at finalize). Each rank's
  // serialization + compression is an independent pool task — ranks
  // share no state — and results land in rank-indexed slots, so the
  // files are byte-identical for any thread count.
  if (opts.emitRankTraces && opts.withCypress) {
    out.rankTraceFiles.resize(out.cypress.size());
    parallelFor(out.cypress.size(), opts.threads, [&](size_t r) {
      if (!out.cypress[r]->finalized()) return;  // lost rank: empty entry
      out.rankTraceFiles[r] = flate::compress(out.cypress[r]->ctt().serialize());
    });
  }

  if (opts.verifyRoundtrip) {
    const verify::Report rep = verifyRun(out, opts.threads);
    CYP_CHECK(rep.ok(),
              "roundtrip verification failed for " << name << ":\n"
                                                   << rep.toString());
  }
  return out;
}

RunOutput runWorkload(const std::string& name, const Options& opts) {
  const workloads::Workload& w = workloads::get(name);
  CYP_CHECK(w.supportsProcs(opts.procs),
            name << " does not support " << opts.procs << " processes");
  return runSource(name, w.source(opts.procs, opts.scale), opts);
}

core::MergedCtt mergeCypress(const RunOutput& run, CostMeter* cost,
                             int threads) {
  CYP_CHECK(!run.cypress.empty(), "mergeCypress: run has no CYPRESS recorders");
  std::vector<const core::Ctt*> ctts;
  std::vector<int> ranks;
  RankSet lost;
  ctts.reserve(run.cypress.size());
  for (const auto& r : run.cypress) {
    if (r->finalized()) {
      ctts.push_back(&r->ctt());
      ranks.push_back(r->rank());
    } else {
      // Killed or stalled mid-run: its CTT is an unclosed prefix, so it
      // is excluded from the merge and annotated as lost instead.
      lost.insert(r->rank());
    }
  }
  if (ctts.empty()) {
    // Every rank died: degrade to an empty trace over the static CST
    // with the whole job marked lost.
    core::MergedCtt m(*run.cst);
    m.markLost(lost);
    return m;
  }
  core::MergedCtt m = core::mergeAll(std::move(ctts), cost, threads, &ranks);
  m.markLost(lost);
  return m;
}

verify::Report verifyRun(const RunOutput& run, int threads) {
  verify::Artifacts a;
  std::optional<core::MergedCtt> merged;
  if (!run.cypress.empty()) {
    merged.emplace(mergeCypress(run, nullptr, threads));
    a.merged = &*merged;
  }
  if (!run.raw.ranks.empty()) a.raw = &run.raw;
  for (const auto& r : run.scala) a.scalaV1.push_back(&r->sequence());
  for (const auto& r : run.scala2) a.scalaV2.push_back(&r->sequence());
  return verify::verifyRoundtrip(a);
}

SizeReport computeSizes(const RunOutput& run, int threads) {
  SizeReport rep;
  // The four per-tool branches touch disjoint SizeReport fields and
  // disjoint recorder state, so they fan out as independent pool tasks;
  // the CYPRESS branch parallelizes further (merge reduction + flate
  // shards) with the same budget.
  std::vector<std::function<void()>> branches;
  if (!run.raw.ranks.empty()) {
    branches.push_back([&] {
      const auto rawBytes = run.raw.serialize();
      rep.rawBytes = rawBytes.size();
      rep.gzipBytes = flate::compressedSize(rawBytes, flate::Level::Default, threads);
    });
  }
  if (!run.scala.empty()) {
    branches.push_back([&] {
      std::vector<const std::vector<scalatrace::Element>*> seqs;
      for (const auto& r : run.scala) seqs.push_back(&r->sequence());
      CostMeter cost;
      auto merged = scalatrace::mergeSequences(seqs, scalatrace::Flavor::V1, &cost);
      rep.scalaBytes = merged.serialize().size();
      rep.scalaInterSeconds = cost.totalSeconds();
    });
  }
  if (!run.scala2.empty()) {
    branches.push_back([&] {
      std::vector<const std::vector<scalatrace::Element>*> seqs;
      for (const auto& r : run.scala2) seqs.push_back(&r->sequence());
      CostMeter cost;
      auto merged = scalatrace::mergeSequences(seqs, scalatrace::Flavor::V2, &cost);
      const auto bytes = merged.serialize();
      rep.scala2Bytes = bytes.size();
      rep.scala2GzipBytes = flate::compressedSize(bytes, flate::Level::Default, threads);
      rep.scala2InterSeconds = cost.totalSeconds();
    });
  }
  if (!run.cypress.empty()) {
    branches.push_back([&] {
      CostMeter cost;
      auto merged = mergeCypress(run, &cost, threads);
      const auto bytes = merged.serialize();
      rep.cypressBytes = bytes.size();
      rep.cypressGzipBytes =
          flate::compressedSize(bytes, flate::Level::Default, threads);
      rep.cypressInterSeconds = cost.totalSeconds();
    });
  }
  parallelFor(branches.size(), threads, [&](size_t i) { branches[i](); });
  return rep;
}

namespace {

std::string rankFileName(int rank) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "rank-%05d.cypp", rank);
  return buf;
}

constexpr uint64_t kRankDirVersion = 1;

}  // namespace

RankSet writeRankTraces(const RunOutput& run, const std::string& dir,
                        io::IoBackend* io) {
  io::IoBackend& be = io ? *io : io::realIo();
  CYP_CHECK(!run.rankTraceFiles.empty(),
            "writeRankTraces: the run has no per-rank traces (run with "
            "Options::emitRankTraces)");
  be.createDirectories(dir);

  ByteWriter meta;
  meta.str("CYRD");
  meta.uv(kRankDirVersion);
  meta.uv(run.rankTraceFiles.size());
  io::writeFileAtomic(be, dir + "/meta.cyrd", meta.bytes());
  io::writeFileAtomic(be, dir + "/cst.cyst",
                      flate::compressString(run.cst->toText()));

  RankSet lost;
  for (size_t r = 0; r < run.rankTraceFiles.size(); ++r) {
    if (run.rankTraceFiles[r].empty()) {
      lost.insert(static_cast<int>(r));
      continue;
    }
    io::writeFileAtomic(be, dir + "/" + rankFileName(static_cast<int>(r)),
                        run.rankTraceFiles[r]);
  }
  return lost;
}

std::optional<core::Ctt> RankTraceDir::load(int rank) const {
  io::IoBackend& be = io ? *io : io::realIo();
  const std::string path = dir + "/" + rankFileName(rank);
  if (!be.exists(path)) return std::nullopt;
  return core::Ctt::deserialize(flate::decompress(be.readAll(path)), *cst);
}

RankTraceDir openRankTraceDir(const std::string& dir, io::IoBackend* io) {
  io::IoBackend& be = io ? *io : io::realIo();
  RankTraceDir out;
  out.dir = dir;
  out.io = io;

  const std::vector<uint8_t> metaBytes = be.readAll(dir + "/meta.cyrd");
  ByteReader meta(metaBytes);
  CYP_CHECK(meta.str() == "CYRD", dir << ": not a rank-trace directory");
  const uint64_t version = meta.uv();
  CYP_CHECK(version == kRankDirVersion,
            dir << ": unsupported rank-dir version " << version);
  const uint64_t numRanks = meta.uv();
  CYP_CHECK(meta.atEnd(), dir << ": trailing bytes in meta.cyrd");
  CYP_CHECK(numRanks >= 1 && numRanks <= (1u << 22),
            dir << ": implausible rank count " << numRanks);
  out.numRanks = static_cast<int>(numRanks);

  out.cst = std::make_shared<cst::Tree>(cst::Tree::fromText(
      flate::decompressToString(be.readAll(dir + "/cst.cyst"))));
  return out;
}

}  // namespace cypress::driver
