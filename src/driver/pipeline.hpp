// End-to-end pipeline driver: the public API a downstream user calls to
// trace a workload with every tool and compare the results.
//
//   compile (MiniC)  →  static analysis + instrumentation (CST)
//   → simulated execution with PMPI observers attached
//   → per-tool compression, merging, sizes and overhead accounting.
//
// The same driver feeds the test suite, the examples and every bench
// binary, so all reported numbers come from one code path.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cst/builder.hpp"
#include "cypress/ctt.hpp"
#include "cypress/merge.hpp"
#include "scalatrace/inter.hpp"
#include "scalatrace/recorder.hpp"
#include "simmpi/engine.hpp"
#include "support/io.hpp"
#include "trace/event.hpp"
#include "trace/journal.hpp"
#include "verify/roundtrip.hpp"
#include "vm/runner.hpp"

namespace cypress::driver {

/// The immutable products of the compile + static-analysis phase for
/// one program: the instrumented module and its CST. Everything here is
/// read-only during a traced run (the VM takes the module by const
/// reference, recorders take the tree by const reference), so one
/// CompiledProgram can be shared by any number of concurrent runs —
/// this is what the cyptraced CST cache stores, keyed by program hash:
/// extraction is pure per program, so it is computed once and served to
/// every subsequent job over the same workload.
struct CompiledProgram {
  std::shared_ptr<const ir::Module> module;
  std::shared_ptr<const cst::Tree> cst;
  cst::CompileStats stats;
  double plainCompileSeconds = 0.0;
};

/// Run the compile + CYPRESS static phase only (no simulated execution).
std::shared_ptr<const CompiledProgram> compileForTracing(
    const std::string& source);

struct Options {
  int procs = 8;
  int scale = 1;
  /// Parallelism of the traced run itself (the epoch scheduler's local
  /// phases, see vm/runner.hpp) and of the post-run pipeline stages
  /// (per-rank trace serialization/compression, the inter-process merge
  /// reduction, and flate sharding). All parallel stages are fixed-order
  /// fan-outs on the shared pool (support/thread_pool.hpp) with a
  /// deterministic commit order, so every produced trace is
  /// byte-identical for any value of `threads`.
  int threads = 1;
  /// Also produce per-rank compressed CYPP trace files (the paper's
  /// deployment model: each process writes flate(ctt) at MPI_Finalize).
  /// Built as independent pool tasks, collected in rank order, in
  /// RunOutput::rankTraceFiles. Ranks that did not finalize get an
  /// empty entry.
  bool emitRankTraces = false;
  bool withRaw = true;
  bool withScala = true;
  bool withScala2 = true;
  bool withCypress = true;
  core::TimeMode timeMode = core::TimeMode::MeanStddev;
  simmpi::Engine::Config engine;  // numRanks is overwritten with `procs`
  /// Also journal raw events to a crash-consistent CYJ1 stream (see
  /// trace/journal.hpp). The journal is sealed after the run with the
  /// lost ranks recorded, and is available as RunOutput::journal.
  bool withJournal = false;
  size_t journalFlushEvery = 64;
  /// What to do when the run deadlocks (usually under fault injection):
  /// Throw (default) raises a structured error with per-rank
  /// diagnostics; Salvage finishes normally with the stalled ranks in
  /// RunOutput::runStats so partial traces can still be recovered.
  vm::OnStall onStall = vm::OnStall::Throw;
  /// Also run once with no observers to obtain the untraced baseline
  /// wall time (needed for overhead percentages).
  bool measureBaseline = false;
  /// After the run, roundtrip-verify every produced trace (serialize →
  /// deserialize → re-serialize byte stability, plus decompression
  /// against the raw trace when recorded) and throw on any mismatch.
  bool verifyRoundtrip = false;
  /// Skip compilation + static analysis and reuse this program instead
  /// (must have been produced by compileForTracing over the same
  /// source). The run output shares — not copies — the module and CST.
  std::shared_ptr<const CompiledProgram> precompiled;
  /// Cooperative cancellation flag for the traced (and baseline) run,
  /// forwarded to vm::RunOptions::cancel; see there for semantics.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional sink receiving every appended CYJ1 journal chunk (header
  /// included) as soon as it is written, so a server can stream the
  /// journal to disk and a crash mid-run leaves a salvageable torn file
  /// instead of nothing.
  trace::JournalBuilder::Sink journalSink;
};

/// Everything produced by one traced run.
struct RunOutput {
  std::string workload;
  int procs = 0;

  /// Shared with the Options::precompiled cache entry when one was
  /// used, freshly compiled otherwise. Heap-allocated either way so
  /// recorders' references stay valid if the RunOutput itself is moved.
  std::shared_ptr<const ir::Module> module;
  std::shared_ptr<const cst::Tree> cst;
  cst::CompileStats compileStats;
  double plainCompileSeconds = 0.0;  // compile without the CYPRESS pass

  trace::RawTrace raw;
  std::vector<std::unique_ptr<core::CttRecorder>> cypress;
  std::vector<std::unique_ptr<scalatrace::Recorder>> scala;
  std::vector<std::unique_ptr<scalatrace::Recorder>> scala2;

  /// Sealed CYJ1 journal of the run (only when Options::withJournal).
  std::unique_ptr<trace::JournalBuilder> journal;
  std::vector<std::unique_ptr<trace::JournalRecorder>> journalRecorders;

  /// Per-rank compressed CYPP trace files (only when
  /// Options::emitRankTraces); index is the rank, entries for
  /// unfinalized (killed/stalled) ranks are empty.
  std::vector<std::vector<uint8_t>> rankTraceFiles;

  /// Ranks whose traces are incomplete: killed by the fault plan or
  /// still blocked when a stalled run was salvaged.
  RankSet lostRanks() const;

  vm::RunResult runStats;
  double tracedWallSeconds = 0.0;
  double baselineWallSeconds = 0.0;  // only when measureBaseline

  /// Sum of per-rank intra-process hook costs (seconds).
  double cypressIntraSeconds() const;
  double scalaIntraSeconds() const;
  double scala2IntraSeconds() const;

  /// Average per-process compressor memory (bytes).
  size_t cypressMemoryPerRank() const;
  size_t scalaMemoryPerRank() const;
  size_t scala2MemoryPerRank() const;
};

/// Run a named workload (see workloads::allNames()) under `opts`.
RunOutput runWorkload(const std::string& name, const Options& opts);

/// Run arbitrary MiniC source the same way (library users' entry point).
RunOutput runSource(const std::string& name, const std::string& source,
                    const Options& opts);

/// Final trace sizes per tool (after inter-process merging), in bytes —
/// the paper's Fig. 15 quantities. Also captures the merge CPU times
/// (Fig. 18).
struct SizeReport {
  size_t rawBytes = 0;
  size_t gzipBytes = 0;         // flate over the raw trace
  size_t scalaBytes = 0;        // ScalaTrace merged
  size_t scala2Bytes = 0;       // ScalaTrace-2 merged
  size_t scala2GzipBytes = 0;   // + flate
  size_t cypressBytes = 0;      // CYPRESS merged (CST + CTT payloads)
  size_t cypressGzipBytes = 0;  // + flate

  double scalaInterSeconds = 0.0;
  double scala2InterSeconds = 0.0;
  double cypressInterSeconds = 0.0;
};

/// `threads` parallelizes the independent per-tool branches (raw+gzip,
/// ScalaTrace, ScalaTrace-2, CYPRESS) and, inside the CYPRESS branch,
/// the merge reduction and flate sharding. Sizes are identical for any
/// thread count.
SizeReport computeSizes(const RunOutput& run, int threads = 1);

/// Merge the CYPRESS CTTs of a run (exposed for decompression/replay).
/// Ranks that did not finalize (killed or stalled) are skipped and
/// recorded in the result's lostRanks() annotation, so a faulted run
/// still yields a valid compressed trace for the survivors.
core::MergedCtt mergeCypress(const RunOutput& run, CostMeter* cost = nullptr,
                             int threads = 1);

/// Roundtrip-verify every trace a run produced (see verify/roundtrip.hpp).
verify::Report verifyRun(const RunOutput& run, int threads = 1);

/// Write a run's per-rank traces as a rank-trace directory — the
/// paper's deployment model made durable:
///
///   dir/meta.cyrd       str "CYRD" | uv version (1) | uv numRanks
///   dir/cst.cyst        flate(cst text)           — the shared tree
///   dir/rank-NNNNN.cypp flate(Ctt::serialize())   — one per finalized
///                                                   rank; lost ranks
///                                                   have no file
///
/// Every file is written atomically (tmp + fsync + rename) through
/// `io` (null = real backend), so a crash mid-emit never leaves a
/// torn file under a final name. When the run holds CYPRESS recorders
/// (Options::withCypress) each rank streams serialize→compress→write
/// directly from its recorder — shards leave RAM as they are cut, no
/// per-rank buffer needed; otherwise the pre-built rankTraceFiles
/// (Options::emitRankTraces) are written as-is. Ranks are emitted in
/// order (deterministic I/O ordinals for --io-fault plans); `threads`
/// fans out shard compression within a rank. Returns the ranks with
/// no file (the run's lost ranks) so callers can report coverage.
RankSet writeRankTraces(const RunOutput& run, const std::string& dir,
                        io::IoBackend* io = nullptr, int threads = 1);

/// An opened rank-trace directory: `cyptrace merge`'s input, and the
/// natural CttSource for core::streamingMerge (load(rank) is nullopt
/// exactly for the lost ranks).
struct RankTraceDir {
  std::shared_ptr<const cst::Tree> cst;
  int numRanks = 0;
  std::string dir;
  io::IoBackend* io = nullptr;

  /// Deserialize one rank's CTT; nullopt when the rank has no file.
  std::optional<core::Ctt> load(int rank) const;
};

RankTraceDir openRankTraceDir(const std::string& dir,
                              io::IoBackend* io = nullptr);

}  // namespace cypress::driver
