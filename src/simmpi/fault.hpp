// Deterministic fault injection for the simulated MPI engine.
//
// A FaultPlan is a list of faults keyed by (rank, ordinal): kill a rank
// at its Nth MPI call, abort it inside its Nth collective, or drop/delay
// the Nth point-to-point message it sends. Plans are plain data — the
// engine consults them at well-defined points, so a given (program,
// seed, plan) triple always fails identically. Seeded random plans
// (randomFaultPlan) drive the fault-injection test matrix; the `cyptrace`
// CLI parses the same specs from --fault flags.
//
// The contract enforced by the runtime and tests: every injected fault
// ends in a recovered partial trace, a structured cypress::Error with
// per-rank diagnostics, or a clean run — never a hang, crash, or
// silently wrong trace.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace cypress::simmpi {

/// One injected fault. Ordinals are 1-based ("the 3rd MPI call").
struct Fault {
  enum class Kind : uint8_t {
    KillRank,         ///< rank dies entering its Nth MPI call
    AbortCollective,  ///< rank dies entering its Nth *collective* call
    DropMessage,      ///< the Nth p2p message `rank` sends is lost
    DelayMessage,     ///< ... is delayed by `delayNs` instead
  };

  Kind kind = Kind::KillRank;
  int rank = 0;        ///< the faulting rank (the sender for Drop/Delay)
  uint64_t nth = 1;    ///< 1-based call / message ordinal
  uint64_t delayNs = 0;

  std::string toString() const {
    std::ostringstream os;
    switch (kind) {
      case Kind::KillRank: os << "kill:"; break;
      case Kind::AbortCollective: os << "abort:"; break;
      case Kind::DropMessage: os << "drop:"; break;
      case Kind::DelayMessage: os << "delay:"; break;
    }
    os << rank << '@' << nth;
    if (kind == Kind::DelayMessage) os << ':' << delayNs;
    return os.str();
  }
};

/// The set of faults injected into one run.
struct FaultPlan {
  std::vector<Fault> faults;

  bool empty() const { return faults.empty(); }

  /// First fault of `kind` for `rank` with ordinal `nth`, or nullptr.
  const Fault* find(Fault::Kind kind, int rank, uint64_t nth) const {
    for (const Fault& f : faults)
      if (f.kind == kind && f.rank == rank && f.nth == nth) return &f;
    return nullptr;
  }

  std::string toString() const {
    std::string s;
    for (const Fault& f : faults) {
      if (!s.empty()) s += ' ';
      s += f.toString();
    }
    return s.empty() ? "(no faults)" : s;
  }
};

/// Parse one CLI fault spec:
///   kill:R@N   abort:R@N   drop:R@N   delay:R@N:NS
/// Throws cypress::Error on malformed specs.
inline Fault parseFaultSpec(const std::string& spec) {
  const auto colon = spec.find(':');
  CYP_CHECK(colon != std::string::npos, "fault spec '" << spec
                                            << "' has no kind prefix");
  const std::string kind = spec.substr(0, colon);
  Fault f;
  if (kind == "kill") f.kind = Fault::Kind::KillRank;
  else if (kind == "abort") f.kind = Fault::Kind::AbortCollective;
  else if (kind == "drop") f.kind = Fault::Kind::DropMessage;
  else if (kind == "delay") f.kind = Fault::Kind::DelayMessage;
  else CYP_FAIL("unknown fault kind '" << kind << "' in '" << spec << "'");

  std::istringstream body(spec.substr(colon + 1));
  char at = 0;
  long long rank = -1, nth = -1;
  body >> rank >> at >> nth;
  CYP_CHECK(!body.fail() && at == '@' && rank >= 0 && nth >= 1,
            "fault spec '" << spec << "' is not <kind>:<rank>@<nth>");
  f.rank = static_cast<int>(rank);
  f.nth = static_cast<uint64_t>(nth);
  if (f.kind == Fault::Kind::DelayMessage) {
    char sep = 0;
    long long ns = -1;
    body >> sep >> ns;
    CYP_CHECK(!body.fail() && sep == ':' && ns >= 0,
              "delay fault '" << spec << "' needs a :<delayNs> suffix");
    f.delayNs = static_cast<uint64_t>(ns);
  }
  CYP_CHECK(body.get() == std::istringstream::traits_type::eof(),
            "trailing characters in fault spec '" << spec << "'");
  return f;
}

/// Seeded random single-fault plan over `numRanks` ranks and ops in the
/// first `maxOrdinal` calls — the unit of the fault-injection matrix.
inline FaultPlan randomFaultPlan(uint64_t seed, int numRanks,
                                 uint64_t maxOrdinal = 24) {
  Rng rng(seed);
  Fault f;
  switch (rng.below(4)) {
    case 0: f.kind = Fault::Kind::KillRank; break;
    case 1: f.kind = Fault::Kind::AbortCollective; break;
    case 2: f.kind = Fault::Kind::DropMessage; break;
    default: f.kind = Fault::Kind::DelayMessage; break;
  }
  f.rank = static_cast<int>(rng.below(static_cast<uint64_t>(numRanks)));
  f.nth = 1 + rng.below(maxOrdinal);
  if (f.kind == Fault::Kind::DelayMessage)
    f.delayNs = 1000 + rng.below(5'000'000);
  FaultPlan plan;
  plan.faults.push_back(f);
  return plan;
}

}  // namespace cypress::simmpi
