#include "simmpi/engine.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/error.hpp"

namespace cypress::simmpi {

Engine::Engine(const Config& cfg)
    : net_(cfg.net), jitter_(cfg.jitter), faults_(cfg.faults) {
  CYP_CHECK(cfg.numRanks >= 1, "engine needs at least one rank");
  ranks_.resize(static_cast<size_t>(cfg.numRanks));
  // Each rank draws jitter from its own stream so the values it sees are
  // a function of (seed, rank, draw index) alone — independent of how
  // rank executions interleave under the parallel scheduler.
  for (int r = 0; r < cfg.numRanks; ++r)
    ranks_[static_cast<size_t>(r)].rng =
        Rng(cfg.seed + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(r + 1));
  // Communicator 0 is MPI_COMM_WORLD.
  std::vector<int> world(static_cast<size_t>(cfg.numRanks));
  for (int r = 0; r < cfg.numRanks; ++r) world[static_cast<size_t>(r)] = r;
  comms_.push_back(std::move(world));
}

int64_t Engine::takeOpResult(int rank) {
  RankState& r = rs(rank);
  const int64_t v = r.opResult;
  r.opResult = -1;
  return v;
}

const std::vector<int>& Engine::commMembers(int comm) const {
  CYP_CHECK(comm >= 0 && static_cast<size_t>(comm) < comms_.size(),
            "unknown communicator " << comm);
  return comms_[static_cast<size_t>(comm)];
}

void Engine::setObserver(int rank, trace::Observer* obs) {
  rs(rank).observer = obs;
}

uint64_t Engine::jittered(uint64_t ns, int rank) {
  if (jitter_ <= 0.0 || ns == 0) return ns;
  const double f = 1.0 + jitter_ * (2.0 * rs(rank).rng.uniform() - 1.0);
  return static_cast<uint64_t>(static_cast<double>(ns) * f);
}

void Engine::addCompute(int rank, uint64_t ns) {
  const uint64_t j = jittered(ns, rank);
  rs(rank).clock += j;
  rs(rank).computeAccum += j;
}

uint64_t Engine::executionTimeNs() const {
  uint64_t t = 0;
  for (const auto& r : ranks_) t = std::max(t, r.clock);
  return t;
}

bool Engine::takeProgressFlag() {
  const bool p = progress_;
  progress_ = false;
  return p;
}

void Engine::emit(int rank, trace::Event e, uint64_t durationNs) {
  RankState& r = rs(rank);
  e.computeNs = r.computeAccum;
  r.computeAccum = 0;
  e.durationNs = durationNs;
  r.commTime += durationNs;
  if (r.observer) r.observer->onEvent(e);
  progress_ = true;
}

bool Engine::matches(const Request& r, const Message& m) const {
  // Pure matching predicate — MPI matching ignores message size. The
  // truncation rule is checked against the message actually *matched*
  // (checkTruncation), not against every scanned candidate.
  if (r.comm != m.comm) return false;
  if (r.tag != m.tag) return false;
  if (r.peer != trace::kAnySource && r.peer != m.src) return false;
  return true;
}

void Engine::checkTruncation(const Request& r, const Message& m) const {
  // MPI truncation rule: a message larger than the posted receive buffer
  // is a program error (MPI_ERR_TRUNCATE). Smaller messages are fine.
  CYP_CHECK(m.bytes <= r.bytes, "message truncation: " << m.bytes
                                    << "-byte message from rank " << m.src
                                    << " into a " << r.bytes
                                    << "-byte receive (tag " << m.tag << ")");
}

void Engine::deliver(const Message& m) {
  RankState& dst = rs(m.dst);
  // Try posted receives in posting order (MPI non-overtaking rule).
  for (size_t i = 0; i < dst.pendingRecvs.size(); ++i) {
    Request& req = dst.requests[static_cast<size_t>(dst.pendingRecvs[i])];
    if (!req.complete && matches(req, m)) {
      checkTruncation(req, m);
      req.complete = true;
      req.matchedSource = m.src;
      req.completeNs = std::max(m.arrivalNs, dst.clock);
      dst.pendingRecvs.erase(dst.pendingRecvs.begin() + static_cast<ssize_t>(i));
      progress_ = true;
      return;
    }
  }
  dst.unexpected.push_back(m);
}

bool Engine::tryMatchRecv(int rank, int64_t reqIdx) {
  RankState& r = rs(rank);
  Request& req = r.requests[static_cast<size_t>(reqIdx)];
  // Deterministic match order. For a specific source the deque scan is
  // FIFO per (src, tag, comm) pair, as MPI requires. For MPI_ANY_SOURCE
  // the match must be a function of the *set* of buffered messages, not
  // of the delivery schedule that built it: pick the lowest source rank
  // first, FIFO within that pair (the deque preserves per-pair order).
  size_t best = r.unexpected.size();
  for (size_t i = 0; i < r.unexpected.size(); ++i) {
    const Message& m = r.unexpected[i];
    if (!matches(req, m)) continue;
    if (best == r.unexpected.size() || m.src < r.unexpected[best].src) best = i;
    if (req.peer != trace::kAnySource) break;
  }
  if (best == r.unexpected.size()) return false;
  const Message& m = r.unexpected[best];
  checkTruncation(req, m);
  req.complete = true;
  req.matchedSource = m.src;
  req.completeNs = std::max(m.arrivalNs, r.clock);
  r.unexpected.erase(r.unexpected.begin() + static_cast<ssize_t>(best));
  return true;
}

Engine::Collective& Engine::collectiveSlot(int comm, int seq) {
  auto& dq = collectives_[comm];
  int& base = collBase_[comm];
  if (dq.empty() && seq >= base) {
    // Drop fully-consumed prefix lazily by re-basing.
    base = base == 0 && seq == 0 ? 0 : base;
  }
  CYP_CHECK(seq >= base, "collective sequence went backwards");
  while (static_cast<size_t>(seq - base) >= dq.size()) {
    Collective c;
    c.arrivals.resize(ranks_.size());
    dq.push_back(std::move(c));
  }
  return dq[static_cast<size_t>(seq - base)];
}

void Engine::completeSplit(int comm, Collective& c) {
  // Deterministic group formation: distinct non-negative colors in
  // ascending order each get the next communicator id; members ordered
  // by (key, world rank).
  const std::vector<int>& parent = comms_[static_cast<size_t>(comm)];
  std::map<int32_t, std::vector<std::pair<int32_t, int>>> groups;
  for (int member : parent) {
    const auto& [color, key] = c.splitArgs[static_cast<size_t>(member)];
    if (color >= 0) groups[color].push_back({key, member});
  }
  c.splitResult.assign(ranks_.size(), -1);
  for (auto& [color, members] : groups) {
    std::sort(members.begin(), members.end());
    const int id = static_cast<int>(comms_.size());
    std::vector<int> worldRanks;
    worldRanks.reserve(members.size());
    for (const auto& [key, member] : members) {
      worldRanks.push_back(member);
      c.splitResult[static_cast<size_t>(member)] = id;
    }
    std::sort(worldRanks.begin(), worldRanks.end());
    comms_.push_back(std::move(worldRanks));
  }
}

OpStatus Engine::handleCollective(int rank, const OpDesc& d) {
  RankState& r = rs(rank);
  const std::vector<int>& members = commMembers(d.comm);
  CYP_CHECK(std::binary_search(members.begin(), members.end(), rank),
            "rank " << rank << " called " << ir::mpiOpName(d.op)
                    << " on communicator " << d.comm << " it is not part of");
  if (r.collSeq.size() <= static_cast<size_t>(d.comm))
    r.collSeq.resize(static_cast<size_t>(d.comm) + 1, 0);
  const int seq = r.collSeq[static_cast<size_t>(d.comm)]++;
  Collective& c = collectiveSlot(d.comm, seq);

  if (c.arrived == 0) {
    c.op = d.op;
    c.bytes = d.bytes;
    c.root = d.peer;
    if (d.op == ir::MpiOp::CommSplit)
      c.splitArgs.assign(ranks_.size(), {0, 0});
  } else {
    CYP_CHECK(c.op == d.op, "collective mismatch: rank " << rank << " called "
                                << ir::mpiOpName(d.op) << " where others called "
                                << ir::mpiOpName(c.op));
    if (d.op != ir::MpiOp::CommSplit) {
      CYP_CHECK(c.bytes == d.bytes, "collective size mismatch on "
                                        << ir::mpiOpName(d.op));
      CYP_CHECK(c.root == d.peer, "collective root mismatch on "
                                      << ir::mpiOpName(d.op));
    }
  }
  c.arrivals[static_cast<size_t>(rank)] = {r.clock, d.callSiteId};
  if (d.op == ir::MpiOp::CommSplit)
    c.splitArgs[static_cast<size_t>(rank)] = {d.color, d.key};
  ++c.arrived;

  if (c.arrived == static_cast<int>(members.size())) {
    uint64_t t0 = 0;
    for (int m : members)
      t0 = std::max(t0, c.arrivals[static_cast<size_t>(m)]->first);
    const ir::MpiOp costOp =
        d.op == ir::MpiOp::CommSplit ? ir::MpiOp::Barrier : d.op;
    c.finishNs = t0 + jittered(net_.collectiveCost(
                                   costOp, d.bytes,
                                   static_cast<int>(members.size())),
                               rank);
    c.done = true;
    if (d.op == ir::MpiOp::CommSplit) completeSplit(d.comm, c);
    // Complete this rank inline; the others complete via poll().
    const uint64_t arrive = c.arrivals[static_cast<size_t>(rank)]->first;
    r.clock = c.finishNs;
    trace::Event e;
    e.op = d.op;
    e.peer = d.peer;
    e.bytes = d.bytes;
    e.comm = d.comm;
    e.callSiteId = d.callSiteId;
    if (d.op == ir::MpiOp::CommSplit) {
      e.bytes = d.color;
      e.tag = d.key;
      e.reqId = c.splitResult[static_cast<size_t>(rank)];
      r.opResult = e.reqId;
    }
    emit(rank, e, c.finishNs - arrive);
    return OpStatus::Complete;
  }

  r.pending.kind = PendingKind::Collective;
  r.pending.desc = d;
  r.pending.reqIdx = seq;
  r.pending.blockStartNs = r.clock;
  return OpStatus::Blocked;
}

bool Engine::maybeKill(int rank, const OpDesc& d) {
  if (faults_.empty()) return false;
  RankState& r = rs(rank);
  const Fault* f = faults_.find(Fault::Kind::KillRank, rank, r.mpiCalls);
  if (f == nullptr && ir::isCollective(d.op))
    f = faults_.find(Fault::Kind::AbortCollective, rank, r.collCalls);
  if (f == nullptr) return false;
  // The rank dies *entering* the call: no event is emitted, no engine
  // state is mutated (a collective never sees its arrival), and the
  // observer is not finalized — its trace ends mid-stream, exactly like
  // a process crash under real tracing.
  r.dead = true;
  r.deathDesc = d;
  progress_ = true;  // dying is progress: the scheduler must not stall
  return true;
}

OpStatus Engine::execute(int rank, const OpDesc& d, int64_t* reqIdOut) {
  RankState& r = rs(rank);
  CYP_CHECK(r.pending.kind == PendingKind::None,
            "rank " << rank << " issued an op while one is pending");
  CYP_CHECK(!r.finalized, "rank " << rank << " issued an op after finalize");
  CYP_CHECK(!r.dead, "rank " << rank << " issued an op after being killed");

  ++r.mpiCalls;
  if (ir::isCollective(d.op)) ++r.collCalls;
  if (maybeKill(rank, d)) return OpStatus::Failed;

  switch (d.op) {
    case ir::MpiOp::Send: {
      CYP_CHECK(d.peer >= 0 && d.peer < numRanks(),
                "Send to invalid rank " << d.peer);
      Message m{rank, d.peer, d.tag, d.comm, d.bytes,
                r.clock + jittered(net_.transferTime(d.bytes), rank), r.msgSeq++};
      const uint64_t cost = jittered(net_.sendOverhead(d.bytes), rank);
      r.clock += cost;
      injectSendFaults(rank, m);
      trace::Event e;
      e.op = d.op;
      e.peer = d.peer;
      e.bytes = d.bytes;
      e.tag = d.tag;
      e.comm = d.comm;
      e.callSiteId = d.callSiteId;
      emit(rank, e, cost);
      return OpStatus::Complete;
    }
    case ir::MpiOp::Isend: {
      CYP_CHECK(d.peer >= 0 && d.peer < numRanks(),
                "Isend to invalid rank " << d.peer);
      Request req;
      req.kind = ir::MpiOp::Isend;
      req.peer = d.peer;
      req.bytes = d.bytes;
      req.tag = d.tag;
      req.comm = d.comm;
      req.postSite = d.callSiteId;
      req.complete = true;  // eager: buffer reusable after local copy
      req.completeNs = r.clock + jittered(net_.sendOverhead(d.bytes), rank);
      r.requests.push_back(req);
      const int64_t id = static_cast<int64_t>(r.requests.size()) - 1;
      r.outstanding.push_back(id);
      if (reqIdOut) *reqIdOut = id;
      Message m{rank, d.peer, d.tag, d.comm, d.bytes,
                r.clock + jittered(net_.transferTime(d.bytes), rank), r.msgSeq++};
      injectSendFaults(rank, m);
      const uint64_t cost = static_cast<uint64_t>(net_.overheadNs);
      r.clock += cost;
      trace::Event e;
      e.op = d.op;
      e.peer = d.peer;
      e.bytes = d.bytes;
      e.tag = d.tag;
      e.comm = d.comm;
      e.callSiteId = d.callSiteId;
      emit(rank, e, cost);
      return OpStatus::Complete;
    }
    case ir::MpiOp::Irecv: {
      Request req;
      req.kind = ir::MpiOp::Irecv;
      req.peer = d.peer;  // may be kAnySource
      req.bytes = d.bytes;
      req.tag = d.tag;
      req.comm = d.comm;
      req.postSite = d.callSiteId;
      r.requests.push_back(req);
      const int64_t id = static_cast<int64_t>(r.requests.size()) - 1;
      r.outstanding.push_back(id);
      if (reqIdOut) *reqIdOut = id;
      if (!tryMatchRecv(rank, id)) r.pendingRecvs.push_back(id);
      const uint64_t cost = static_cast<uint64_t>(net_.overheadNs);
      r.clock += cost;
      trace::Event e;
      e.op = d.op;
      e.peer = d.peer;
      e.bytes = d.bytes;
      e.tag = d.tag;
      e.comm = d.comm;
      e.callSiteId = d.callSiteId;
      emit(rank, e, cost);
      return OpStatus::Complete;
    }
    case ir::MpiOp::Recv: {
      Request req;
      req.kind = ir::MpiOp::Recv;
      req.peer = d.peer;
      req.bytes = d.bytes;
      req.tag = d.tag;
      req.comm = d.comm;
      req.postSite = d.callSiteId;
      req.consumed = true;  // not visible to Waitall/Waitany
      r.requests.push_back(req);
      const int64_t id = static_cast<int64_t>(r.requests.size()) - 1;
      r.pending.kind = PendingKind::Recv;
      r.pending.desc = d;
      r.pending.reqIdx = id;
      r.pending.blockStartNs = r.clock;
      if (!tryMatchRecv(rank, id)) {
        r.pendingRecvs.push_back(id);
        if (!r.requests[static_cast<size_t>(id)].complete) return OpStatus::Blocked;
      }
      completePending(rank);
      return OpStatus::Complete;
    }
    case ir::MpiOp::Wait: {
      CYP_CHECK(d.waitReqId >= 0 &&
                    d.waitReqId < static_cast<int64_t>(r.requests.size()),
                "Wait on invalid request " << d.waitReqId);
      Request& req = r.requests[static_cast<size_t>(d.waitReqId)];
      CYP_CHECK(!req.consumed, "Wait on already-completed request");
      r.pending.kind = PendingKind::Wait;
      r.pending.desc = d;
      r.pending.reqIdx = d.waitReqId;
      r.pending.blockStartNs = r.clock;
      if (!req.complete) return OpStatus::Blocked;
      completePending(rank);
      return OpStatus::Complete;
    }
    case ir::MpiOp::Waitall:
    case ir::MpiOp::Waitany:
    case ir::MpiOp::Waitsome: {
      r.pending.kind = d.op == ir::MpiOp::Waitall  ? PendingKind::Waitall
                       : d.op == ir::MpiOp::Waitany ? PendingKind::Waitany
                                                    : PendingKind::Waitsome;
      r.pending.desc = d;
      r.pending.blockStartNs = r.clock;
      if (!pendingSatisfied(rank)) return OpStatus::Blocked;
      completePending(rank);
      return OpStatus::Complete;
    }
    case ir::MpiOp::Barrier:
    case ir::MpiOp::Bcast:
    case ir::MpiOp::Reduce:
    case ir::MpiOp::Allreduce:
    case ir::MpiOp::Allgather:
    case ir::MpiOp::Alltoall:
    case ir::MpiOp::Gather:
    case ir::MpiOp::Scatter:
    case ir::MpiOp::Scan:
    case ir::MpiOp::CommSplit:
      return handleCollective(rank, d);
  }
  CYP_FAIL("bad op");
}

bool Engine::pendingSatisfied(int rank) {
  RankState& r = rs(rank);
  switch (r.pending.kind) {
    case PendingKind::None:
      return false;
    case PendingKind::Recv:
    case PendingKind::Wait:
      return r.requests[static_cast<size_t>(r.pending.reqIdx)].complete;
    case PendingKind::Waitall: {
      for (int64_t id : r.outstanding)
        if (!r.requests[static_cast<size_t>(id)].complete) return false;
      return true;
    }
    case PendingKind::Waitany:
    case PendingKind::Waitsome: {
      // Wait{any,some} with no outstanding requests is a program bug.
      CYP_CHECK(!r.outstanding.empty(),
                ir::mpiOpName(r.pending.desc.op)
                    << " with no outstanding requests on rank " << rank);
      for (int64_t id : r.outstanding)
        if (r.requests[static_cast<size_t>(id)].complete) return true;
      return false;
    }
    case PendingKind::Collective: {
      const auto& dq = collectives_.at(r.pending.desc.comm);
      const int base = collBase_.at(r.pending.desc.comm);
      return dq[static_cast<size_t>(r.pending.reqIdx - base)].done;
    }
  }
  return false;
}

void Engine::completePending(int rank) {
  RankState& r = rs(rank);
  const PendingOp p = r.pending;
  r.pending = PendingOp{};

  switch (p.kind) {
    case PendingKind::None:
      CYP_FAIL("completePending with no pending op");
    case PendingKind::Recv: {
      Request& req = r.requests[static_cast<size_t>(p.reqIdx)];
      const uint64_t done =
          std::max(req.completeNs, r.clock) + net_.recvOverhead(req.bytes);
      const uint64_t duration = done - p.blockStartNs;
      r.clock = done;
      trace::Event e;
      e.op = ir::MpiOp::Recv;
      e.peer = p.desc.peer;
      e.bytes = req.bytes;
      e.tag = req.tag;
      e.comm = req.comm;
      e.callSiteId = p.desc.callSiteId;
      if (p.desc.peer == trace::kAnySource) e.matchedSource = req.matchedSource;
      emit(rank, e, duration);
      return;
    }
    case PendingKind::Wait: {
      Request& req = r.requests[static_cast<size_t>(p.reqIdx)];
      req.consumed = true;
      std::erase(r.outstanding, p.reqIdx);
      const uint64_t done = std::max(req.completeNs, r.clock) +
                            (req.kind == ir::MpiOp::Irecv
                                 ? net_.recvOverhead(req.bytes)
                                 : 0);
      const uint64_t duration = done - p.blockStartNs;
      r.clock = done;
      trace::Event e;
      e.op = ir::MpiOp::Wait;
      e.peer = req.peer;
      e.bytes = req.bytes;
      e.tag = req.tag;
      e.comm = req.comm;
      e.callSiteId = p.desc.callSiteId;
      e.reqId = req.postSite;  // the paper's request->GID mapping
      if (req.kind == ir::MpiOp::Irecv && req.peer == trace::kAnySource)
        e.matchedSource = req.matchedSource;
      emit(rank, e, duration);
      return;
    }
    case PendingKind::Waitall: {
      uint64_t done = r.clock;
      for (int64_t id : r.outstanding) {
        Request& q = r.requests[static_cast<size_t>(id)];
        q.consumed = true;
        done = std::max(done, q.completeNs);
      }
      r.outstanding.clear();
      done += net_.recvOverhead(0);
      const uint64_t duration = done - p.blockStartNs;
      r.clock = done;
      trace::Event e;
      e.op = ir::MpiOp::Waitall;
      e.comm = p.desc.comm;
      e.callSiteId = p.desc.callSiteId;
      emit(rank, e, duration);
      return;
    }
    case PendingKind::Waitany: {
      // Deterministic: the earliest-completed outstanding request.
      int64_t best = -1;
      for (int64_t id : r.outstanding) {
        const Request& q = r.requests[static_cast<size_t>(id)];
        if (!q.complete) continue;
        if (best < 0 ||
            q.completeNs < r.requests[static_cast<size_t>(best)].completeNs) {
          best = id;
        }
      }
      CYP_CHECK(best >= 0, "Waitany completed without a complete request");
      Request& req = r.requests[static_cast<size_t>(best)];
      req.consumed = true;
      std::erase(r.outstanding, best);
      const uint64_t done = std::max(req.completeNs, r.clock) +
                            net_.recvOverhead(req.bytes);
      const uint64_t duration = done - p.blockStartNs;
      r.clock = done;
      trace::Event e;
      e.op = ir::MpiOp::Waitany;
      e.peer = req.peer;
      e.bytes = req.bytes;
      e.tag = req.tag;
      e.comm = req.comm;
      e.callSiteId = p.desc.callSiteId;
      e.reqId = req.postSite;
      if (req.kind == ir::MpiOp::Irecv && req.peer == trace::kAnySource)
        e.matchedSource = req.matchedSource;
      emit(rank, e, duration);
      return;
    }
    case PendingKind::Waitsome: {
      // Complete every currently-complete outstanding request, emitting
      // one event per completion (the paper's partial-completion ops,
      // recorded via their posting-site GIDs, §IV-A).
      std::vector<int64_t> ready;
      for (int64_t id : r.outstanding)
        if (r.requests[static_cast<size_t>(id)].complete) ready.push_back(id);
      CYP_CHECK(!ready.empty(), "Waitsome completed without a complete request");
      uint64_t done = r.clock;
      for (int64_t id : ready) {
        Request& req = r.requests[static_cast<size_t>(id)];
        req.consumed = true;
        std::erase(r.outstanding, id);
        done = std::max(done, req.completeNs);
      }
      done += net_.recvOverhead(0);
      const uint64_t total = done - p.blockStartNs;
      r.clock = done;
      for (size_t k = 0; k < ready.size(); ++k) {
        const Request& req = r.requests[static_cast<size_t>(ready[k])];
        trace::Event e;
        e.op = ir::MpiOp::Waitsome;
        e.peer = req.peer;
        e.bytes = req.bytes;
        e.tag = req.tag;
        e.comm = req.comm;
        e.callSiteId = p.desc.callSiteId;
        e.reqId = req.postSite;
        if (req.kind == ir::MpiOp::Irecv && req.peer == trace::kAnySource)
          e.matchedSource = req.matchedSource;
        // Charge the wall time once (on the first completion event).
        emit(rank, e, k == 0 ? total : 0);
      }
      return;
    }
    case PendingKind::Collective: {
      const auto& dq = collectives_.at(p.desc.comm);
      const int base = collBase_.at(p.desc.comm);
      const Collective& c = dq[static_cast<size_t>(p.reqIdx - base)];
      const uint64_t duration = c.finishNs - p.blockStartNs;
      r.clock = c.finishNs;
      trace::Event e;
      e.op = p.desc.op;
      e.peer = p.desc.peer;
      e.bytes = p.desc.bytes;
      e.comm = p.desc.comm;
      e.callSiteId = p.desc.callSiteId;
      if (p.desc.op == ir::MpiOp::CommSplit) {
        e.bytes = p.desc.color;
        e.tag = p.desc.key;
        e.reqId = c.splitResult[static_cast<size_t>(rank)];
        r.opResult = e.reqId;
      }
      emit(rank, e, duration);
      return;
    }
  }
}

OpStatus Engine::poll(int rank) {
  RankState& r = rs(rank);
  CYP_CHECK(r.pending.kind != PendingKind::None,
            "poll on rank " << rank << " with no pending op");
  if (!pendingSatisfied(rank)) return OpStatus::Blocked;
  completePending(rank);
  return OpStatus::Complete;
}

void Engine::finalizeRank(int rank) {
  RankState& r = rs(rank);
  CYP_CHECK(r.pending.kind == PendingKind::None,
            "rank " << rank << " finalized with a pending op");
  for (size_t i = 0; i < r.requests.size(); ++i) {
    CYP_CHECK(r.requests[i].consumed,
              "rank " << rank << " finalized with outstanding request " << i);
  }
  CYP_CHECK(r.outstanding.empty(),
            "rank " << rank << " finalized with outstanding requests");
  r.finalized = true;
  if (r.observer) r.observer->onFinalize();
}

void Engine::injectSendFaults(int rank, Message m) {
  RankState& r = rs(rank);
  ++r.sendsIssued;
  if (!faults_.empty()) {
    if (faults_.find(Fault::Kind::DropMessage, rank, r.sendsIssued) != nullptr)
      return;  // lost on the wire: never delivered, the sender is unaware
    if (const Fault* f =
            faults_.find(Fault::Kind::DelayMessage, rank, r.sendsIssued))
      m.arrivalNs += f->delayNs;
  }
  deliver(m);
}

std::vector<int> Engine::deadRanks() const {
  std::vector<int> dead;
  for (int r = 0; r < numRanks(); ++r)
    if (ranks_[static_cast<size_t>(r)].dead) dead.push_back(r);
  return dead;
}

std::string Engine::RankDiagnostic::toString() const {
  std::ostringstream os;
  os << "rank " << rank << ": ";
  switch (state) {
    case State::Runnable:
      os << "runnable (after " << callIndex << " MPI calls)";
      break;
    case State::Finalized:
      os << "finalized (" << callIndex << " MPI calls)";
      break;
    case State::Dead:
      os << "dead in " << op << " at MPI call #" << callIndex;
      break;
    case State::Blocked:
      os << "blocked in " << op << " [peer=" << peer << " tag=" << tag
         << " comm=" << comm;
      if (seq >= 0) os << " seq=" << seq;
      os << "] at MPI call #" << callIndex;
      break;
  }
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

Engine::RankDiagnostic Engine::diagnose(int rank) const {
  const RankState& r = rs(rank);
  RankDiagnostic d;
  d.rank = rank;
  d.callIndex = r.mpiCalls;
  if (r.dead) {
    d.state = RankDiagnostic::State::Dead;
    d.op = ir::mpiOpName(r.deathDesc.op);
    d.peer = r.deathDesc.peer;
    d.tag = r.deathDesc.tag;
    d.comm = r.deathDesc.comm;
    d.detail = "killed by the fault plan";
    return d;
  }
  if (r.finalized) {
    d.state = RankDiagnostic::State::Finalized;
    return d;
  }
  if (r.pending.kind == PendingKind::None) {
    d.state = RankDiagnostic::State::Runnable;
    return d;
  }

  d.state = RankDiagnostic::State::Blocked;
  d.op = ir::mpiOpName(r.pending.desc.op);
  d.peer = r.pending.desc.peer;
  d.tag = r.pending.desc.tag;
  d.comm = r.pending.desc.comm;
  std::ostringstream why;
  auto describePeer = [&](int32_t peer) {
    if (peer == trace::kAnySource) {
      why << "waiting on MPI_ANY_SOURCE";
    } else if (peer >= 0 && peer < numRanks() &&
               ranks_[static_cast<size_t>(peer)].dead) {
      why << "peer rank " << peer << " is dead";
    } else {
      why << "no matching message from rank " << peer;
    }
  };
  switch (r.pending.kind) {
    case PendingKind::Recv: {
      d.seq = r.pending.reqIdx;
      describePeer(r.pending.desc.peer);
      break;
    }
    case PendingKind::Wait: {
      d.seq = r.pending.reqIdx;
      const Request& q = r.requests[static_cast<size_t>(r.pending.reqIdx)];
      d.peer = q.peer;
      d.tag = q.tag;
      d.comm = q.comm;
      why << "request #" << r.pending.reqIdx << " ("
          << ir::mpiOpName(q.kind) << ") incomplete; ";
      describePeer(q.peer);
      break;
    }
    case PendingKind::Waitall:
    case PendingKind::Waitany:
    case PendingKind::Waitsome: {
      int incomplete = 0;
      for (int64_t id : r.outstanding) {
        const Request& q = r.requests[static_cast<size_t>(id)];
        if (q.complete) continue;
        if (incomplete++ > 0) why << ", ";
        why << ir::mpiOpName(q.kind) << "(peer=" << q.peer
            << " tag=" << q.tag << ")";
        if (q.peer >= 0 && q.peer < numRanks() &&
            ranks_[static_cast<size_t>(q.peer)].dead)
          why << " [peer dead]";
      }
      if (incomplete > 0) why << " incomplete (" << incomplete << " total)";
      break;
    }
    case PendingKind::Collective: {
      d.seq = r.pending.reqIdx;
      const auto it = collectives_.find(r.pending.desc.comm);
      const auto baseIt = collBase_.find(r.pending.desc.comm);
      if (it != collectives_.end() && baseIt != collBase_.end()) {
        const auto& dq = it->second;
        const size_t slot =
            static_cast<size_t>(r.pending.reqIdx - baseIt->second);
        if (slot < dq.size()) {
          const Collective& c = dq[slot];
          std::vector<int> missing, deadMissing;
          for (int m : commMembers(r.pending.desc.comm)) {
            if (c.arrivals[static_cast<size_t>(m)].has_value()) continue;
            missing.push_back(m);
            if (ranks_[static_cast<size_t>(m)].dead) deadMissing.push_back(m);
          }
          why << "waiting for rank";
          if (missing.size() > 1) why << 's';
          for (size_t i = 0; i < missing.size(); ++i)
            why << (i ? "," : "") << ' ' << missing[i];
          if (!deadMissing.empty()) {
            why << " (dead:";
            for (int m : deadMissing) why << ' ' << m;
            why << ')';
          }
        }
      }
      break;
    }
    case PendingKind::None:
      break;
  }
  d.detail = why.str();
  return d;
}

std::string Engine::stallDump(const std::string& reason,
                              const std::vector<int>& active) const {
  std::ostringstream os;
  os << reason;
  if (!faults_.empty()) os << " [fault plan: " << faults_.toString() << ']';
  os << '\n';
  // Dead ranks first (the usual root cause), then every still-active rank.
  for (int r : deadRanks()) os << "  " << diagnose(r).toString() << '\n';
  for (int r : active) {
    if (rs(r).dead) continue;
    os << "  " << diagnose(r).toString() << '\n';
  }
  return os.str();
}

void Engine::failStalled(const std::vector<int>& active) const {
  CYP_FAIL("MPI hang detected: no rank can make progress\n"
           << stallDump("per-rank state:", active));
}

std::string Engine::pendingDescription(int rank) const {
  const RankState& r = rs(rank);
  std::ostringstream os;
  os << "rank " << rank << ": ";
  switch (r.pending.kind) {
    case PendingKind::None: os << "runnable"; break;
    case PendingKind::Recv:
      os << "blocked in MPI_Recv(src=" << r.pending.desc.peer
         << ", tag=" << r.pending.desc.tag << ")";
      break;
    case PendingKind::Wait: os << "blocked in MPI_Wait"; break;
    case PendingKind::Waitall: os << "blocked in MPI_Waitall"; break;
    case PendingKind::Waitany: os << "blocked in MPI_Waitany"; break;
    case PendingKind::Waitsome: os << "blocked in MPI_Waitsome"; break;
    case PendingKind::Collective:
      os << "blocked in " << ir::mpiOpName(r.pending.desc.op) << " (seq "
         << r.pending.reqIdx << ")";
      break;
  }
  return os.str();
}

}  // namespace cypress::simmpi
