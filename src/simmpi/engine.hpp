// The simulated MPI engine: deterministic message matching, request
// objects, collectives, wildcard receives, per-rank virtual clocks.
//
// This is the repository's stand-in for a real MPI library underneath
// the PMPI layer. Ranks are driven by resumable VMs (see vm/): when an
// operation cannot complete, execute() returns Blocked and the rank's
// scheduler retries via poll() once other ranks make progress. All
// matching and completion orders are deterministic functions of the
// schedule, so whole-program runs are reproducible bit-for-bit.
//
// Threading contract (see vm/runner.cpp for the epoch scheduler): only
// addCompute() touches nothing but the issuing rank's own RankState —
// including its private jitter RNG — and may be called from that rank's
// pool thread during a parallel local phase. Every other mutating entry
// point (execute, poll, finalizeRank, setObserver) reaches cross-rank
// state (message queues, collectives, the progress flag) and must be
// called from the single commit thread, in deterministic rank order.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/netmodel.hpp"
#include "support/rng.hpp"
#include "trace/observer.hpp"

namespace cypress::simmpi {

/// Failed: the issuing rank was killed by the fault plan; the rank is
/// dead and must not issue further operations.
enum class OpStatus : uint8_t { Complete, Blocked, Failed };

/// One MPI operation as issued by a rank (already-evaluated arguments).
struct OpDesc {
  ir::MpiOp op = ir::MpiOp::Barrier;
  int32_t peer = trace::kNoPeer;  // dst / src / root
  int64_t bytes = 0;
  int32_t tag = 0;
  int32_t comm = 0;
  int32_t callSiteId = -1;
  int64_t waitReqId = -1;  // Wait: the request handle to complete
  int32_t color = 0;       // CommSplit
  int32_t key = 0;         // CommSplit
};

class Engine {
 public:
  struct Config {
    int numRanks = 1;
    LogGP net = LogGP::infiniband();
    /// Deterministic per-event jitter applied to compute/transfer times,
    /// as a fraction (0.1 = ±10%). Makes time statistics non-degenerate.
    double jitter = 0.05;
    uint64_t seed = 42;
    /// Deterministic fault injection (see fault.hpp). Empty = no faults.
    FaultPlan faults;
  };

  explicit Engine(const Config& cfg);

  int numRanks() const { return static_cast<int>(ranks_.size()); }

  /// Attach the PMPI observer for a rank (may be null).
  void setObserver(int rank, trace::Observer* obs);

  /// Issue an operation for `rank`. On Complete the event has been
  /// delivered to the observer. On Blocked the engine remembers the
  /// pending condition; the caller must call poll() until it reports
  /// completion before issuing another operation for this rank.
  /// For Isend/Irecv, *reqIdOut receives the request handle.
  OpStatus execute(int rank, const OpDesc& d, int64_t* reqIdOut = nullptr);

  /// Re-check a blocked rank. Returns Complete exactly once per blocked
  /// operation (after which the rank may proceed).
  OpStatus poll(int rank);

  /// Result of the last completed handle-producing op (CommSplit): valid
  /// after execute()/poll() returned Complete for it.
  int64_t takeOpResult(int rank);

  /// Members (world ranks) of a communicator; comm 0 is MPI_COMM_WORLD.
  const std::vector<int>& commMembers(int comm) const;

  /// Account local computation time (advances the rank's clock).
  void addCompute(int rank, uint64_t ns);

  /// Mark a rank finished (MPI_Finalize): flushes the observer.
  void finalizeRank(int rank);

  /// Measured virtual time of a rank.
  uint64_t clockNs(int rank) const { return ranks_[static_cast<size_t>(rank)].clock; }

  /// Max clock across ranks = measured program execution time.
  uint64_t executionTimeNs() const;

  /// Total time ranks spent inside communication ops (for the
  /// communication-percentage analysis of Fig. 21).
  uint64_t commTimeNs(int rank) const {
    return ranks_[static_cast<size_t>(rank)].commTime;
  }

  /// True when some operation completed since the last call (used by the
  /// scheduler's deadlock detection).
  bool takeProgressFlag();

  /// Diagnostic snapshot of a blocked rank's pending condition.
  std::string pendingDescription(int rank) const;

  /// True when the fault plan killed this rank.
  bool rankDead(int rank) const { return rs(rank).dead; }
  /// Ranks killed so far, ascending.
  std::vector<int> deadRanks() const;
  /// Number of MPI calls the rank has issued (the killing call included).
  uint64_t mpiCallCount(int rank) const { return rs(rank).mpiCalls; }

  /// Structured snapshot of one rank's state for failure diagnostics.
  struct RankDiagnostic {
    enum class State : uint8_t { Runnable, Blocked, Dead, Finalized };
    int rank = 0;
    State state = State::Runnable;
    std::string op;          ///< pending (or killing) MPI op, empty if none
    int32_t peer = -2;       ///< src/dst/root of the pending op
    int32_t tag = -1;
    int32_t comm = 0;
    int64_t seq = -1;        ///< collective sequence / request index
    uint64_t callIndex = 0;  ///< MPI calls issued by this rank so far
    std::string detail;      ///< root-cause analysis, e.g. "peer is dead"
    std::string toString() const;
  };
  RankDiagnostic diagnose(int rank) const;

  /// Per-rank diagnostic dump of every rank in `active` (world ranks that
  /// have not finished executing), preceded by `reason`. This is the
  /// payload of the structured hang/deadlock error.
  std::string stallDump(const std::string& reason,
                        const std::vector<int>& active) const;

  /// Terminate a stalled run deterministically: throws cypress::Error
  /// carrying stallDump(). Never returns.
  [[noreturn]] void failStalled(const std::vector<int>& active) const;

 private:
  struct Request {
    ir::MpiOp kind = ir::MpiOp::Isend;
    int32_t peer = 0;  // dst for isend, src (or ANY) for irecv
    int64_t bytes = 0;
    int32_t tag = 0;
    int32_t comm = 0;
    int32_t postSite = -1;
    bool complete = false;
    bool consumed = false;
    int32_t matchedSource = -1;
    uint64_t completeNs = 0;
  };

  struct Message {
    int32_t src, dst, tag, comm;
    int64_t bytes;
    uint64_t arrivalNs;
    uint64_t seq;
  };

  enum class PendingKind : uint8_t {
    None, Recv, Wait, Waitall, Waitany, Waitsome, Collective
  };

  struct PendingOp {
    PendingKind kind = PendingKind::None;
    OpDesc desc;
    int64_t reqIdx = -1;       // Recv/Wait: request being completed
    uint64_t blockStartNs = 0; // when the rank started waiting
  };

  struct RankState {
    uint64_t clock = 0;
    uint64_t commTime = 0;
    uint64_t computeAccum = 0;  // compute since previous event
    Rng rng{0};                 // per-rank jitter stream (thread-isolated)
    std::vector<Request> requests;
    std::vector<int64_t> outstanding;    // non-blocking requests not yet waited
    std::deque<Message> unexpected;      // arrived, unmatched messages
    std::vector<int64_t> pendingRecvs;   // posted, unmatched recv requests
    std::vector<int> collSeq;            // per-comm collective counters
    PendingOp pending;
    trace::Observer* observer = nullptr;
    uint64_t msgSeq = 0;
    int64_t opResult = -1;  // CommSplit result handle
    bool finalized = false;
    bool dead = false;         // killed by the fault plan
    OpDesc deathDesc;          // the call the rank died entering
    uint64_t mpiCalls = 0;     // execute() invocations (fault ordinals)
    uint64_t collCalls = 0;    // collective calls (AbortCollective ordinals)
    uint64_t sendsIssued = 0;  // p2p messages sent (Drop/Delay ordinals)
  };

  struct Collective {
    ir::MpiOp op = ir::MpiOp::Barrier;
    int64_t bytes = 0;
    int32_t root = -1;
    int arrived = 0;
    bool done = false;
    uint64_t finishNs = 0;
    // per-rank arrival info (clock, callSiteId); index by world rank.
    std::vector<std::optional<std::pair<uint64_t, int32_t>>> arrivals;
    // CommSplit payloads: (color, key) per world rank, and the resulting
    // communicator handle per world rank once complete.
    std::vector<std::pair<int32_t, int32_t>> splitArgs;
    std::vector<int32_t> splitResult;
  };

  RankState& rs(int rank) { return ranks_[static_cast<size_t>(rank)]; }
  const RankState& rs(int rank) const { return ranks_[static_cast<size_t>(rank)]; }

  uint64_t jittered(uint64_t ns, int rank);
  void emit(int rank, trace::Event e, uint64_t durationNs);

  /// Try to match a posted receive request against unexpected messages.
  bool tryMatchRecv(int rank, int64_t reqIdx);
  void deliver(const Message& m);
  bool matches(const Request& r, const Message& m) const;
  void checkTruncation(const Request& r, const Message& m) const;

  OpStatus handleCollective(int rank, const OpDesc& d);
  bool pendingSatisfied(int rank);
  void completePending(int rank);

  /// Fault-plan check at the top of execute(): returns true when the
  /// plan kills `rank` at this call (the rank is marked dead).
  bool maybeKill(int rank, const OpDesc& d);

  /// Deliver `m`, applying any drop/delay fault keyed to this sender's
  /// current send ordinal.
  void injectSendFaults(int rank, Message m);

  Collective& collectiveSlot(int comm, int seq);

  void completeSplit(int comm, Collective& c);

  std::vector<RankState> ranks_;
  std::vector<std::vector<int>> comms_;  // comm id -> member world ranks
  LogGP net_;
  double jitter_;
  FaultPlan faults_;
  // Collectives per communicator, indexed by sequence number.
  std::map<int, std::deque<Collective>> collectives_;
  std::map<int, int> collBase_;  // first live sequence number per comm
  bool progress_ = false;
};

}  // namespace cypress::simmpi
