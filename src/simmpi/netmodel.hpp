// LogGP network timing model (Alexandrov et al., cited by the paper for
// SIM-MPI's point-to-point simulation).
//
// The same model serves two roles: it is the "hardware" of the simulated
// MPI engine (producing the measured ground-truth times), and it is the
// model the replay-based predictor uses (paper §V, Figure 14). Collective
// operations are decomposed into point-to-point trees, as the paper
// describes for SIM-MPI.
#pragma once

#include <cmath>
#include <cstdint>

#include "ir/ir.hpp"

namespace cypress::simmpi {

struct LogGP {
  double latencyNs = 1500.0;     // L: wire latency
  double overheadNs = 600.0;     // o: CPU send/recv overhead
  double gapNs = 300.0;          // g: per-message gap
  double perByteNs = 0.35;       // G: per-byte cost (~2.8 GB/s)

  /// QDR-InfiniBand-like parameters (the paper's Explorer-100 fabric).
  static LogGP infiniband() { return LogGP{}; }

  /// Slower commodity-ethernet-like parameters (for what-if studies).
  static LogGP ethernet() { return LogGP{25000.0, 2000.0, 1000.0, 0.9}; }

  uint64_t sendOverhead(int64_t bytes) const {
    return static_cast<uint64_t>(overheadNs + perByteNs * static_cast<double>(bytes));
  }

  /// Wire time from send posting to availability at the receiver.
  uint64_t transferTime(int64_t bytes) const {
    return static_cast<uint64_t>(latencyNs + overheadNs +
                                 perByteNs * static_cast<double>(bytes));
  }

  uint64_t recvOverhead(int64_t /*bytes*/) const {
    return static_cast<uint64_t>(overheadNs);
  }

  /// Cost of a collective once all participants have arrived, following
  /// the standard tree/butterfly decompositions into p2p messages.
  uint64_t collectiveCost(ir::MpiOp op, int64_t bytes, int participants) const {
    const double p = static_cast<double>(participants < 2 ? 2 : participants);
    const double logp = std::ceil(std::log2(p));
    const double hop = latencyNs + 2.0 * overheadNs;
    const double bz = static_cast<double>(bytes);
    switch (op) {
      case ir::MpiOp::Barrier:
        return static_cast<uint64_t>(logp * hop);
      case ir::MpiOp::Bcast:        // binomial tree
      case ir::MpiOp::Reduce:       // mirror of bcast
      case ir::MpiOp::Gather:       // binomial gather
      case ir::MpiOp::Scatter:      // binomial scatter
      case ir::MpiOp::Scan:         // up-down sweep
        return static_cast<uint64_t>(logp * (hop + perByteNs * bz));
      case ir::MpiOp::Allreduce:    // recursive doubling
        return static_cast<uint64_t>(logp * (hop + perByteNs * bz) + hop);
      case ir::MpiOp::Allgather:    // ring: (p-1) steps of own contribution
        return static_cast<uint64_t>((p - 1.0) * (gapNs + perByteNs * bz) + hop);
      case ir::MpiOp::Alltoall:     // pairwise exchange
        return static_cast<uint64_t>((p - 1.0) *
                                     (gapNs + perByteNs * bz + overheadNs) + hop);
      default:
        return static_cast<uint64_t>(hop);
    }
  }
};

}  // namespace cypress::simmpi
