#include "replay/simulator.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "cypress/merge.hpp"
#include "query/cursor.hpp"
#include "query/engine.hpp"
#include "support/error.hpp"

namespace cypress::replay {

namespace {

using trace::Event;

/// Event-at-a-time feed for one simulation: the simulator only reads
/// each rank's current event and advances past it, so sources can
/// stream straight off the compressed trace.
class EventSource {
 public:
  virtual ~EventSource() = default;
  virtual size_t numRanks() const = 0;
  /// Rank r's current event; nullptr when r is exhausted. The pointer
  /// stays valid until advance(r).
  virtual const Event* current(size_t r) = 0;
  virtual void advance(size_t r) = 0;
};

class RawSource final : public EventSource {
 public:
  explicit RawSource(const trace::RawTrace& t)
      : t_(t), next_(t.ranks.size(), 0) {}
  size_t numRanks() const override { return t_.ranks.size(); }
  const Event* current(size_t r) override {
    const auto& ev = t_.ranks[r].events;
    return next_[r] < ev.size() ? &ev[next_[r]] : nullptr;
  }
  void advance(size_t r) override { ++next_[r]; }

 private:
  const trace::RawTrace& t_;
  std::vector<size_t> next_;
};

class CompressedSource final : public EventSource {
 public:
  CompressedSource(const core::MergedCtt& m, int numRanks) {
    cursors_.reserve(static_cast<size_t>(numRanks));
    for (int r = 0; r < numRanks; ++r) cursors_.emplace_back(m, r);
  }
  size_t numRanks() const override { return cursors_.size(); }
  const Event* current(size_t r) override {
    return cursors_[r].done() ? nullptr : &cursors_[r].peek();
  }
  void advance(size_t r) override { cursors_[r].next(); }

 private:
  std::vector<query::CompressedCursor> cursors_;
};

/// FIFO channel key for p2p matching.
struct ChanKey {
  int32_t src, dst, tag, comm;
  auto operator<=>(const ChanKey&) const = default;
};

struct OutstandingReq {
  bool isSend = false;
  ChanKey key{};
  int64_t bytes = 0;
  int32_t postSite = -1;
  uint64_t postClock = 0;
  int32_t matchedSource = -1;  // wildcard irecv: filled from the wait event
};

class Sim {
 public:
  Sim(EventSource& src, const simmpi::LogGP& net) : src_(src), net_(net) {
    const size_t n = src.numRanks();
    clock_.assign(n, 0);
    comm_.assign(n, 0);
    consumed_.assign(n, 0);
    outstanding_.resize(n);
    collSeq_.resize(n);
    computeChargedIdx_.assign(n, -1);
    pendingColl_.assign(n, -1);
    pendingCollComm_.assign(n, 0);
  }

  Prediction run() {
    const int n = static_cast<int>(src_.numRanks());
    int finished = 0;
    std::vector<bool> done(static_cast<size_t>(n), false);
    while (finished < n) {
      bool progress = false;
      for (int r = 0; r < n; ++r) {
        if (done[static_cast<size_t>(r)]) continue;
        while (step(r)) progress = true;
        if (src_.current(static_cast<size_t>(r)) == nullptr) {
          done[static_cast<size_t>(r)] = true;
          ++finished;
          progress = true;
        }
      }
      if (!progress && finished < n) {
        std::ostringstream os;
        os << "replay deadlock:";
        for (int r = 0; r < n; ++r) {
          if (!done[static_cast<size_t>(r)]) {
            os << " rank " << r << " at event "
               << consumed_[static_cast<size_t>(r)] << " ("
               << src_.current(static_cast<size_t>(r))->toString() << ")";
          }
        }
        throw Error(os.str());
      }
    }

    Prediction p;
    p.rankClockNs = clock_;
    p.rankCommNs = comm_;
    for (uint64_t c : clock_) p.predictedNs = std::max(p.predictedNs, c);
    p.totalEvents = totalEvents_;
    return p;
  }

 private:
  /// Attempt the next event of rank r. Returns true when it completed.
  bool step(int r) {
    const Event* ep = src_.current(static_cast<size_t>(r));
    if (ep == nullptr) return false;
    const Event& e = *ep;

    switch (e.op) {
      case ir::MpiOp::Send:
      case ir::MpiOp::Isend: {
        chargeCompute(r, e);
        const ChanKey key{r, e.peer, e.tag, e.comm};
        const uint64_t sendCost = e.op == ir::MpiOp::Send
                                      ? net_.sendOverhead(e.bytes)
                                      : static_cast<uint64_t>(net_.overheadNs);
        if (e.op == ir::MpiOp::Isend) {
          OutstandingReq q;
          q.isSend = true;
          q.key = key;
          q.bytes = e.bytes;
          q.postSite = e.callSiteId;
          q.postClock = clock_[static_cast<size_t>(r)];
          outstanding_[static_cast<size_t>(r)].push_back(q);
        }
        channels_[key].push_back(clock_[static_cast<size_t>(r)] +
                                 net_.transferTime(e.bytes));
        advance(r, sendCost);
        return finishEvent(r);
      }
      case ir::MpiOp::Recv: {
        chargeCompute(r, e);
        const int32_t src = e.peer == trace::kAnySource ? e.matchedSource : e.peer;
        CYP_CHECK(src >= 0, "replay: Recv without a resolvable source");
        const ChanKey key{src, r, e.tag, e.comm};
        auto it = channels_.find(key);
        if (it == channels_.end() || it->second.empty()) return false;  // blocked
        const uint64_t avail = it->second.front();
        it->second.pop_front();
        const uint64_t done =
            std::max(clock_[static_cast<size_t>(r)], avail) + net_.recvOverhead(e.bytes);
        comm_[static_cast<size_t>(r)] += done - clock_[static_cast<size_t>(r)];
        clock_[static_cast<size_t>(r)] = done;
        return finishEvent(r);
      }
      case ir::MpiOp::Irecv: {
        chargeCompute(r, e);
        OutstandingReq q;
        q.isSend = false;
        q.key = ChanKey{e.peer, r, e.tag, e.comm};  // src may be ANY
        q.bytes = e.bytes;
        q.postSite = e.callSiteId;
        q.postClock = clock_[static_cast<size_t>(r)];
        outstanding_[static_cast<size_t>(r)].push_back(q);
        advance(r, static_cast<uint64_t>(net_.overheadNs));
        return finishEvent(r);
      }
      case ir::MpiOp::Wait:
      case ir::MpiOp::Waitany:
      case ir::MpiOp::Waitsome: {
        chargeCompute(r, e);
        auto& reqs = outstanding_[static_cast<size_t>(r)];
        // The completed request is identified by its posting site (the
        // paper's request->GID mapping), FIFO among same-site posts.
        size_t pick = reqs.size();
        for (size_t i = 0; i < reqs.size(); ++i) {
          if (reqs[i].postSite == static_cast<int32_t>(e.reqId)) {
            pick = i;
            break;
          }
        }
        CYP_CHECK(pick < reqs.size(),
                  "replay: wait for unknown request site " << e.reqId);
        uint64_t completion = 0;
        if (!completeReq(r, reqs[static_cast<size_t>(pick)], e, &completion))
          return false;  // message not yet available
        reqs.erase(reqs.begin() + static_cast<ssize_t>(pick));
        const uint64_t done = std::max(clock_[static_cast<size_t>(r)], completion);
        comm_[static_cast<size_t>(r)] += done - clock_[static_cast<size_t>(r)];
        clock_[static_cast<size_t>(r)] = done;
        return finishEvent(r);
      }
      case ir::MpiOp::Waitall: {
        chargeCompute(r, e);
        auto& reqs = outstanding_[static_cast<size_t>(r)];
        // All must be completable; peek without consuming first.
        uint64_t latest = clock_[static_cast<size_t>(r)];
        // Make a scratch copy of channels' heads per key to honour FIFO.
        std::map<ChanKey, size_t> consumed;
        for (const OutstandingReq& q : reqs) {
          uint64_t completion = 0;
          if (!peekReq(r, q, e, consumed, &completion)) return false;
          latest = std::max(latest, completion);
        }
        // Commit: consume the messages.
        for (const OutstandingReq& q : reqs) {
          uint64_t completion = 0;
          const bool ok = completeReq(r, q, e, &completion);
          CYP_CHECK(ok, "replay: waitall commit failed after successful peek");
        }
        reqs.clear();
        const uint64_t done = latest + net_.recvOverhead(0);
        comm_[static_cast<size_t>(r)] += done - clock_[static_cast<size_t>(r)];
        clock_[static_cast<size_t>(r)] = done;
        return finishEvent(r);
      }
      case ir::MpiOp::Barrier:
      case ir::MpiOp::Bcast:
      case ir::MpiOp::Reduce:
      case ir::MpiOp::Allreduce:
      case ir::MpiOp::Allgather:
      case ir::MpiOp::Alltoall:
      case ir::MpiOp::Gather:
      case ir::MpiOp::Scatter:
      case ir::MpiOp::Scan:
      case ir::MpiOp::CommSplit:
        return stepCollective(r, e);
    }
    CYP_FAIL("replay: bad op");
  }

  /// Charge the event's pre-op computation exactly once even when the
  /// op itself blocks and is retried.
  void chargeCompute(int r, const Event& e) {
    const auto idx = static_cast<int64_t>(consumed_[static_cast<size_t>(r)]);
    if (computeChargedIdx_[static_cast<size_t>(r)] == idx) return;
    clock_[static_cast<size_t>(r)] += e.computeNs;
    computeChargedIdx_[static_cast<size_t>(r)] = idx;
  }

  void advance(int r, uint64_t commCost) {
    clock_[static_cast<size_t>(r)] += commCost;
    comm_[static_cast<size_t>(r)] += commCost;
  }

  bool finishEvent(int r) {
    src_.advance(static_cast<size_t>(r));
    ++consumed_[static_cast<size_t>(r)];
    ++totalEvents_;
    return true;
  }

  /// Completion time of one outstanding request, consuming its message.
  bool completeReq(int r, const OutstandingReq& q, const Event& waitEv,
                   uint64_t* completion) {
    if (q.isSend) {
      *completion = q.postClock + net_.sendOverhead(q.bytes);
      return true;
    }
    ChanKey key = q.key;
    if (key.src == trace::kAnySource) {
      CYP_CHECK(waitEv.matchedSource >= 0 ||
                    waitEv.op == ir::MpiOp::Waitall,
                "replay: wildcard wait without matched source");
      key.src = waitEv.matchedSource >= 0 ? waitEv.matchedSource
                                          : anyMatchSource(r, key);
      CYP_CHECK(key.src >= 0, "replay: cannot resolve wildcard source");
    }
    auto it = channels_.find(key);
    if (it == channels_.end() || it->second.empty()) return false;
    *completion = std::max(q.postClock, it->second.front()) +
                  net_.recvOverhead(q.bytes);
    it->second.pop_front();
    return true;
  }

  /// Like completeReq but without consuming (for waitall's all-or-nothing
  /// check); `consumed` tracks FIFO positions already claimed.
  bool peekReq(int r, const OutstandingReq& q, const Event& waitEv,
               std::map<ChanKey, size_t>& consumed, uint64_t* completion) {
    if (q.isSend) {
      *completion = q.postClock + net_.sendOverhead(q.bytes);
      return true;
    }
    ChanKey key = q.key;
    if (key.src == trace::kAnySource) {
      key.src = waitEv.matchedSource >= 0 ? waitEv.matchedSource
                                          : anyMatchSource(r, key);
      if (key.src < 0) return false;
    }
    auto it = channels_.find(key);
    if (it == channels_.end()) return false;
    size_t& used = consumed[key];
    if (used >= it->second.size()) return false;
    *completion = std::max(q.postClock, it->second[used]) +
                  net_.recvOverhead(q.bytes);
    ++used;
    return true;
  }

  /// Resolve a wildcard receive inside Waitall: pick any channel into r
  /// with a pending message (deterministic lowest source).
  int32_t anyMatchSource(int r, const ChanKey& proto) {
    for (const auto& [key, dq] : channels_) {
      if (key.dst == r && key.tag == proto.tag && key.comm == proto.comm &&
          !dq.empty()) {
        return key.src;
      }
    }
    return -1;
  }

  struct Collective {
    ir::MpiOp op = ir::MpiOp::Barrier;
    int64_t bytes = 0;
    int arrived = 0;
    bool done = false;
    uint64_t finish = 0;
    std::vector<uint64_t> arrivals;
    std::map<int, int32_t> splitResult;  // world rank -> new comm handle
  };

  bool stepCollective(int r, const Event& e) {
    chargeCompute(r, e);
    const auto rr = static_cast<size_t>(r);
    if (pendingColl_[rr] < 0) {
      // First attempt: register the arrival.
      const std::vector<int>& members = commMembers(e.comm);
      CYP_CHECK(std::binary_search(members.begin(), members.end(), r),
                "replay: rank " << r << " not in communicator " << e.comm);
      const int mySeq = collSeq_[rr][e.comm]++;
      Collective& c = slot(e.comm, mySeq);
      if (c.arrived == 0) {
        c.op = e.op;
        c.bytes = e.op == ir::MpiOp::CommSplit ? 0 : e.bytes;
        c.arrivals.assign(src_.numRanks(), 0);
      } else {
        CYP_CHECK(c.op == e.op &&
                      (e.op == ir::MpiOp::CommSplit || c.bytes == e.bytes),
                  "replay: collective mismatch at " << ir::mpiOpName(e.op));
      }
      c.arrivals[rr] = clock_[rr];
      if (e.op == ir::MpiOp::CommSplit) {
        // The recorded result handle defines the group membership; the
        // replay rebuilds comms from it rather than recomputing.
        c.splitResult[r] = static_cast<int32_t>(e.reqId);
      }
      ++c.arrived;
      if (c.arrived == static_cast<int>(members.size())) {
        uint64_t t0 = 0;
        for (int m : members) t0 = std::max(t0, c.arrivals[static_cast<size_t>(m)]);
        const ir::MpiOp costOp =
            e.op == ir::MpiOp::CommSplit ? ir::MpiOp::Barrier : e.op;
        c.finish = t0 + net_.collectiveCost(costOp, c.bytes,
                                            static_cast<int>(members.size()));
        c.done = true;
        if (e.op == ir::MpiOp::CommSplit) {
          // Group members by recorded handle.
          std::map<int32_t, std::vector<int>> groups;
          for (int m : members) {
            auto it = c.splitResult.find(m);
            if (it != c.splitResult.end() && it->second >= 0)
              groups[it->second].push_back(m);
          }
          for (auto& [id, ranks] : groups) {
            std::sort(ranks.begin(), ranks.end());
            commMembers_[id] = ranks;
          }
        }
      }
      pendingColl_[rr] = mySeq;
      pendingCollComm_[rr] = e.comm;
    }
    Collective& c = slot(pendingCollComm_[rr], pendingColl_[rr]);
    if (!c.done) return false;
    comm_[rr] += c.finish - c.arrivals[rr];
    clock_[rr] = c.finish;
    pendingColl_[rr] = -1;
    return finishEvent(r);
  }

  Collective& slot(int comm, int seq) {
    auto& dq = colls_[comm];
    while (static_cast<size_t>(seq) >= dq.size()) dq.emplace_back();
    return dq[static_cast<size_t>(seq)];
  }

  const std::vector<int>& commMembers(int comm) {
    if (comm == 0 && commMembers_.find(0) == commMembers_.end()) {
      std::vector<int> world(src_.numRanks());
      for (size_t i = 0; i < world.size(); ++i) world[i] = static_cast<int>(i);
      commMembers_[0] = std::move(world);
    }
    auto it = commMembers_.find(comm);
    CYP_CHECK(it != commMembers_.end(), "replay: unknown communicator " << comm);
    return it->second;
  }

  EventSource& src_;
  simmpi::LogGP net_;
  uint64_t totalEvents_ = 0;
  std::vector<uint64_t> clock_, comm_;
  std::vector<size_t> consumed_;
  std::map<ChanKey, std::deque<uint64_t>> channels_;  // message avail times
  std::vector<std::vector<OutstandingReq>> outstanding_;
  std::vector<std::map<int, int>> collSeq_;
  std::map<int, std::deque<Collective>> colls_;
  std::vector<int64_t> computeChargedIdx_;
  std::vector<int> pendingColl_;
  std::vector<int> pendingCollComm_;
  std::map<int, std::vector<int>> commMembers_;
};

}  // namespace

double Prediction::commPercent() const {
  if (rankClockNs.empty()) return 0.0;
  double total = 0.0;
  int counted = 0;
  for (size_t r = 0; r < rankClockNs.size(); ++r) {
    if (rankClockNs[r] == 0) continue;
    total += static_cast<double>(rankCommNs[r]) /
             static_cast<double>(rankClockNs[r]);
    ++counted;
  }
  return counted ? 100.0 * total / counted : 0.0;
}

namespace {

/// Replay needs every rank of the world present: a partial trace cannot
/// satisfy its own collectives and p2p matches. Returns the world size.
int checkFullCoverage(const core::MergedCtt& m) {
  const RankSet covered = query::coveredRanks(m);
  CYP_CHECK(!covered.empty(), "replay: empty trace");
  if (!m.lostRanks().empty()) {
    std::ostringstream os;
    os << "replay: merged trace is missing lost ranks:";
    for (int32_t r : m.lostRanks().ranks()) os << " " << r;
    throw Error(os.str());
  }
  const int numRanks = covered.ranks().back() + 1;
  CYP_CHECK(covered.size() == static_cast<size_t>(numRanks),
            "replay: rank coverage is not contiguous ("
                << covered.size() << " of " << numRanks << " ranks)");
  return numRanks;
}

}  // namespace

Prediction simulate(const trace::RawTrace& t, const simmpi::LogGP& net) {
  CYP_CHECK(!t.ranks.empty(), "replay: empty trace");
  RawSource src(t);
  return Sim(src, net).run();
}

Prediction simulate(const core::MergedCtt& m, const simmpi::LogGP& net) {
  const int numRanks = checkFullCoverage(m);
  CompressedSource src(m, numRanks);
  return Sim(src, net).run();
}

Prediction simulateRecordedTimes(const trace::RawTrace& t) {
  CYP_CHECK(!t.ranks.empty(), "replay: empty trace");
  Prediction p;
  p.rankClockNs.resize(t.ranks.size(), 0);
  p.rankCommNs.resize(t.ranks.size(), 0);
  for (size_t r = 0; r < t.ranks.size(); ++r) {
    uint64_t clock = 0, comm = 0;
    for (const trace::Event& e : t.ranks[r].events) {
      clock += e.computeNs + e.durationNs;
      comm += e.durationNs;
      ++p.totalEvents;
    }
    p.rankClockNs[r] = clock;
    p.rankCommNs[r] = comm;
    p.predictedNs = std::max(p.predictedNs, clock);
  }
  return p;
}

Prediction simulateRecordedTimes(const core::MergedCtt& m) {
  const int numRanks = checkFullCoverage(m);
  Prediction p;
  p.rankClockNs.assign(static_cast<size_t>(numRanks), 0);
  p.rankCommNs.assign(static_cast<size_t>(numRanks), 0);
  const int n = m.cst().numNodes();
  for (int r = 0; r < numRanks; ++r) {
    uint64_t clock = 0, comm = 0;
    for (int g = 0; g < n; ++g) {
      for (const core::LeafEntry& e : m.leafEntries(g)) {
        if (!e.ranks.contains(r)) continue;
        for (const core::CommRecord& rec : e.records) {
          // Decompressed events carry the record's rounded means, so
          // count * rounded-mean reproduces the expanded sums exactly.
          const auto dur = static_cast<uint64_t>(rec.duration.mean());
          const auto cmp = static_cast<uint64_t>(rec.compute.mean());
          clock += rec.count * (cmp + dur);
          comm += rec.count * dur;
          p.totalEvents += rec.count;
        }
        break;
      }
    }
    p.rankClockNs[static_cast<size_t>(r)] = clock;
    p.rankCommNs[static_cast<size_t>(r)] = comm;
    p.predictedNs = std::max(p.predictedNs, clock);
  }
  return p;
}

}  // namespace cypress::replay
