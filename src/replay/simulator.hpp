// SIM-MPI: the trace-driven performance simulator (paper §V, Fig. 14).
//
// Replays per-rank event sequences under the LogGP model: point-to-point
// operations are matched through FIFO channels keyed by
// (src, dst, tag, comm); collectives are decomposed into p2p trees via
// the same cost model as the engine; local computation uses the
// recorded per-event compute times. Because CYPRESS decompression is
// sequence-preserving (including wildcard match sources), the replay is
// fully deterministic.
//
// The simulator only ever inspects each rank's *current* event, so it
// consumes an event-at-a-time source rather than materialized vectors:
// the MergedCtt overloads drive it straight off the compressed trace
// through query::CompressedCursor — per-rank memory is the cursor
// state, not the decompressed event vector.
#pragma once

#include <cstdint>
#include <vector>

#include "simmpi/netmodel.hpp"
#include "trace/event.hpp"

namespace cypress::core {
class MergedCtt;
}

namespace cypress::replay {

struct Prediction {
  uint64_t predictedNs = 0;            // max rank finish time
  std::vector<uint64_t> rankClockNs;   // per-rank finish times
  std::vector<uint64_t> rankCommNs;    // per-rank time inside MPI ops
  uint64_t totalEvents = 0;

  /// Average fraction of time ranks spend communicating.
  double commPercent() const;
};

/// Simulate a full program trace. Throws cypress::Error on malformed
/// traces (unmatched receives, deadlock, collective mismatch).
Prediction simulate(const trace::RawTrace& t,
                    const simmpi::LogGP& net = simmpi::LogGP::infiniband());

/// Simulate directly from the compressed trace: each rank streams its
/// events through a CompressedCursor, so peak memory is the cursor
/// state, not numRanks full event vectors. Identical prediction to
/// simulate(decompressAll(m, ...), net). Throws cypress::Error when the
/// trace has lost ranks or non-contiguous coverage (a partial trace
/// cannot satisfy its own collectives).
Prediction simulate(const core::MergedCtt& m,
                    const simmpi::LogGP& net = simmpi::LogGP::infiniband());

/// Timed replay: instead of modeling the network, advance each rank by
/// its recorded per-event times (compute + operation duration). This is
/// the delta-time replay style of Ratn et al. (paper §VIII) — cheap,
/// no matching, and a useful cross-check against the LogGP model.
Prediction simulateRecordedTimes(const trace::RawTrace& t);

/// Compressed-domain timed replay: the per-rank sums are computed from
/// CommRecord repeat counts in O(compressed size). Equals
/// simulateRecordedTimes(decompressAll(m, ...)) exactly, because every
/// decompressed event of a record carries the record's rounded mean
/// times.
Prediction simulateRecordedTimes(const core::MergedCtt& m);

}  // namespace cypress::replay
