// One client connection's protocol state machine, socket-free.
//
// A Session consumes raw wire bytes and produces raw response bytes;
// the transport (service/socket.hpp, or a test harness, or the fuzzer)
// just pumps. Keeping the state machine byte-in/byte-out makes the
// framing and dispatch logic fuzzable in-process and deterministic:
// the protocol fuzzer drives Sessions directly with truncated and
// corrupted streams and asserts clean error responses, never touching
// a real socket.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "service/protocol.hpp"
#include "service/server.hpp"

namespace cypress::service {

class Session {
 public:
  Session(JobServer& server, uint64_t clientId)
      : server_(server), clientId_(clientId) {}

  /// Feed bytes as they arrive; returns the response bytes to send.
  /// Never throws: a malformed frame or message yields one framed Error
  /// response and closes the session (framing cannot resynchronize
  /// after corruption, so the connection must drop).
  std::vector<uint8_t> consume(std::span<const uint8_t> bytes);

  /// True once the session must be torn down (protocol error, version
  /// mismatch, or an acknowledged Shutdown).
  bool closed() const { return closed_; }

  /// True once the client asked the daemon to shut down (the session
  /// answers ShuttingDown first, then this turns on).
  bool shutdownRequested() const { return shutdownRequested_; }

  /// Bound on Wait blocking, so a hostile Wait cannot pin a connection
  /// thread forever.
  static constexpr uint64_t kMaxWaitMs = 300'000;

 private:
  Response handle(const Request& req);

  JobServer& server_;
  FrameDecoder decoder_;
  uint64_t clientId_;
  bool helloDone_ = false;
  bool closed_ = false;
  bool shutdownRequested_ = false;
};

}  // namespace cypress::service
