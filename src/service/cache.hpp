// CST / static-analysis cache for the job server.
//
// Compiling a MiniC program and running the CYPRESS static phase
// produces an ir::Module + cst::Tree pair that is immutable during
// tracing (CttRecorder takes `const cst::Tree&`, vm::run takes
// `const ir::Module&`). Repeated jobs over the same program — retries,
// parameter sweeps, many clients tracing one benchmark — can therefore
// share a single compiled program. The cache keys on a hash of the
// source text and hands out shared_ptr<const CompiledProgram>, so an
// entry evicted mid-job stays alive until its last job drops it.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "driver/pipeline.hpp"

namespace cypress::service {

/// FNV-1a 64-bit over the source text: cheap, deterministic, and good
/// enough for a cache key (a collision costs correctness nothing worse
/// than the wrong program — so the cache stores the full source and
/// compares it on lookup).
uint64_t hashSource(const std::string& source);

/// Thread-safe LRU cache of compiled programs, capacity-bounded by
/// entry count (compiled programs for the simulated workloads are
/// small; count is the honest unit).
class ProgramCache {
 public:
  explicit ProgramCache(size_t capacity = 16) : capacity_(capacity) {}

  /// Return the compiled program for `source`, compiling it on a miss.
  /// Compilation runs outside the lock so concurrent jobs for different
  /// programs do not serialize; two racing misses for the same source
  /// both compile, and the first to publish wins.
  std::shared_ptr<const driver::CompiledProgram> get(const std::string& source);

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;

 private:
  struct Entry {
    std::string source;  // full text, compared to defeat hash collisions
    std::shared_ptr<const driver::CompiledProgram> program;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<std::pair<uint64_t, Entry>> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, Entry>>::iterator>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace cypress::service
