// Blocking client for the cyptraced socket protocol.
//
// Connects, performs the Hello version handshake, then issues one
// request / one response at a time. Used by the `cyptraced` CLI
// subcommands and the integration tests; anything speaking to a daemon
// from C++ should go through this rather than hand-rolling frames.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "service/protocol.hpp"

namespace cypress::service {

class Client {
 public:
  /// Connects to the daemon at `socketPath` and completes the Hello
  /// handshake. Throws cypress::Error on connection refusal or a
  /// protocol version mismatch.
  explicit Client(const std::string& socketPath);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request, one response. Throws cypress::Error on transport
  /// failure or a malformed response frame.
  Response call(const Request& req);

  // Convenience wrappers.
  Response submit(const JobSpec& spec);
  std::optional<JobStatus> status(uint64_t jobId);
  std::optional<JobStatus> wait(uint64_t jobId, uint64_t timeoutMs);
  std::optional<JobStatus> cancel(uint64_t jobId);
  std::vector<JobStatus> list();
  Counters counters();
  void shutdown();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace cypress::service
