// cyptraced wire protocol: length-prefixed, CRC-framed request/response
// messages over a local stream socket.
//
// Every frame on the wire is:
//
//   u32 magic "CYS1" | u32 payloadLen | u32 crc32(payload) | payload
//
// with payloadLen capped at kMaxFramePayload. The frame layer promises
// exactly what the trace containers promise: a receiver confronted with
// arbitrary bytes — truncation at any byte, flipped CRC, an absurd
// length prefix — either produces a complete validated payload or
// raises cypress::Error; it never crashes, hangs, or allocates
// unboundedly. Payloads are ByteWriter/ByteReader messages validated
// with the same discipline as the on-disk formats.
//
// A connection starts with a Hello exchange (protocol version check);
// every subsequent request gets exactly one response frame. See
// docs/SERVICE.md for the full message catalogue and the job state
// machine the responses expose.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/bytebuf.hpp"

namespace cypress::service {

constexpr uint32_t kProtocolVersion = 2;
/// Largest frame payload a peer may send (1 MiB): large enough for a
/// MiniC source or a long job list, small enough that a hostile length
/// prefix cannot balloon memory.
constexpr size_t kMaxFramePayload = 1u << 20;

/// Wrap a payload in the CYS1 frame header.
std::vector<uint8_t> encodeFrame(std::span<const uint8_t> payload);

/// Incremental frame parser for one connection. Feed bytes as they
/// arrive; next() yields complete validated payloads in order, returns
/// nullopt when more bytes are needed, and throws cypress::Error on any
/// malformed frame (bad magic, oversized length, CRC mismatch) — after
/// which the connection must be closed (framing cannot resynchronize).
class FrameDecoder {
 public:
  void feed(std::span<const uint8_t> bytes);
  std::optional<std::vector<uint8_t>> next();
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // consumed prefix, compacted lazily
};

/// What a job does. Run traces a workload/source through the CYPRESS
/// pipeline; the others wrap one CLI operation each so scripts can farm
/// them out to the daemon.
enum class JobKind : uint8_t {
  Run = 0,
  Compress = 1,
  Verify = 2,
  Recover = 3,
  /// Answer a compressed-domain query (see src/query/) against a trace
  /// file, writing canonical JSON as the artifact. Added in protocol
  /// version 2 along with JobSpec::querySpec.
  Query = 4,
};

/// Job lifecycle: ACCEPTED → RUNNING → {DONE, FAILED, FAILED_DISK,
/// CANCELLED}, with RUNNING → ACCEPTED on a retryable failure (attempt
/// counter bumped, re-queued after backoff). Done/Failed/FailedDisk/
/// Cancelled are terminal.
enum class JobState : uint8_t {
  Accepted = 0,
  Running = 1,
  Done = 2,
  Failed = 3,
  Cancelled = 4,
  /// Failed on a disk fault (ENOSPC/EDQUOT/EFBIG, or EIO while writing
  /// the journal/artifact). Distinct from Failed because it is never
  /// retried: a full disk fails every attempt identically, so the
  /// attempt budget is not burned on it. JobStatus::errnoValue carries
  /// the underlying errno.
  FailedDisk = 5,
};

bool isTerminal(JobState s);
const char* toString(JobKind k);
const char* toString(JobState s);

/// A client's description of one job.
struct JobSpec {
  JobKind kind = JobKind::Run;
  /// Run: workload name (or display name when sourceText is set).
  /// Compress/Verify/Recover: path of the input file.
  std::string target;
  /// Run only: MiniC source to trace instead of a named workload.
  std::string sourceText;
  uint32_t procs = 8;
  uint32_t scale = 1;
  /// Run only: deterministic fault specs (kill:R@N, abort:R@N, drop:R@N,
  /// delay:R@N:NS), the PR 2 fault-injection grammar.
  std::vector<std::string> faultSpecs;
  /// Treat the faults as transient infrastructure failures: they are
  /// injected on the first attempt only, so a retry can succeed — the
  /// scenario the retry/backoff machinery exists for. Without this the
  /// plan is deterministic and every attempt fails identically.
  bool faultsTransient = false;
  uint64_t deadlineMs = 0;   ///< per-attempt wall deadline; 0 = server default
  uint32_t maxAttempts = 0;  ///< attempt budget; 0 = server default
  /// Query only: the query text in the src/query grammar
  /// (summary | hist | matrix | colls | callsites src=A dst=B iter=K
  /// [loop=GID]).
  std::string querySpec;

  void serialize(ByteWriter& w) const;
  static JobSpec deserialize(ByteReader& r);
};

/// A server-side snapshot of one job.
struct JobStatus {
  uint64_t id = 0;
  JobState state = JobState::Accepted;
  uint32_t attempts = 0;  ///< attempts started so far
  std::string detail;     ///< last diagnostic / outcome summary
  std::string artifactPath;
  std::string journalPath;
  uint64_t artifactBytes = 0;
  /// errno of the disk fault behind a FAILED_DISK state (0 otherwise).
  uint32_t errnoValue = 0;

  void serialize(ByteWriter& w) const;
  static JobStatus deserialize(ByteReader& r);
};

/// Monotonic server counters (admission, outcomes, cache effectiveness).
struct Counters {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejectedBusy = 0;       ///< queue-full rejections
  uint64_t rejectedClientCap = 0;  ///< per-client in-flight cap rejections
  uint64_t done = 0;
  uint64_t failed = 0;
  uint64_t failedDisk = 0;  ///< terminal disk-fault failures (no retries)
  uint64_t cancelled = 0;
  uint64_t retries = 0;
  uint64_t cacheHits = 0;
  uint64_t cacheMisses = 0;

  void serialize(ByteWriter& w) const;
  static Counters deserialize(ByteReader& r);
};

enum class RequestType : uint8_t {
  Hello = 0,
  Submit = 1,
  Status = 2,
  Wait = 3,
  Cancel = 4,
  List = 5,
  Counters = 6,
  Shutdown = 7,
};

struct Request {
  RequestType type = RequestType::Hello;
  uint32_t helloVersion = kProtocolVersion;  // Hello
  JobSpec spec;                              // Submit
  uint64_t jobId = 0;                        // Status/Wait/Cancel
  uint64_t timeoutMs = 0;                    // Wait (0 = no wait, poll)

  std::vector<uint8_t> encode() const;
  static Request decode(std::span<const uint8_t> payload);
};

enum class ResponseCode : uint8_t {
  HelloOk = 0,
  Accepted = 1,      ///< job admitted; jobId set
  RejectedBusy = 2,  ///< admission control refused; message explains
  Status = 3,        ///< status carries the job snapshot
  NotFound = 4,
  JobList = 5,
  Counters = 6,
  ShuttingDown = 7,
  Error = 8,  ///< protocol/semantic error; message set, connection closes
};

struct Response {
  ResponseCode code = ResponseCode::Error;
  uint32_t helloVersion = kProtocolVersion;  // HelloOk
  uint64_t jobId = 0;                        // Accepted
  std::string message;                       // RejectedBusy/Error
  uint32_t errnoValue = 0;                   // Error: underlying errno (0 = none)
  JobStatus status;                          // Status
  std::vector<JobStatus> jobs;               // JobList
  struct Counters counters;                  // Counters

  std::vector<uint8_t> encode() const;
  static Response decode(std::span<const uint8_t> payload);
};

}  // namespace cypress::service
