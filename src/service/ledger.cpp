#include "service/ledger.hpp"

#include <algorithm>
#include <filesystem>

#include "flate/flate.hpp"
#include "support/error.hpp"

namespace cypress::service {

namespace {

constexpr uint8_t kSubmitSegment = 0;
constexpr uint8_t kStateSegment = 1;
// v2: JobSpec grew querySpec (protocol v2); old ledgers are not
// readable across the format change, matching the strict version check
// in recover().
constexpr uint64_t kLedgerVersion = 2;

std::string checkedStr(ByteReader& r) {
  const uint64_t n = r.checkedCount(r.uv(), 1);
  return std::string(reinterpret_cast<const char*>(r.raw(n).data()), n);
}

JobState checkedState(uint8_t v) {
  CYP_CHECK(v <= static_cast<uint8_t>(JobState::FailedDisk),
            "ledger: unknown job state " << int(v));
  return static_cast<JobState>(v);
}

}  // namespace

LedgerWriter::LedgerWriter(const std::string& path, bool resume,
                           io::IoBackend* io)
    : io_(io ? io : &io::realIo()) {
  const bool fresh = !io_->exists(path) || io_->fileSize(path) == 0;
  CYP_CHECK(fresh || resume,
            "ledger: " << path << " already exists; run with --recover to "
                       << "salvage it or remove it to start fresh");
  file_ = io_->openWrite(path, /*append=*/true);
  if (fresh) {
    ByteWriter h;
    h.str("CYL1");
    h.uv(kLedgerVersion);
    file_->write(h.bytes());
    file_->sync();
  }
}

void LedgerWriter::segment(uint8_t kind, const ByteWriter& payload) {
  ByteWriter w;
  w.u8(kind);
  w.uv(payload.size());
  w.u32fixed(flate::crc32(payload.bytes()));
  w.raw(payload.bytes());
  // One write + fsync per segment: a kill between appends tears the
  // file at a segment boundary; a kill mid-write tears one segment —
  // either way recovery salvages everything before it — and a state
  // transition the daemon acted on can no longer be lost to the page
  // cache on power failure.
  file_->write(w.bytes());
  file_->sync();
  ++segments_;
}

void LedgerWriter::appendSubmit(uint64_t jobId, uint64_t clientId,
                                const JobSpec& spec) {
  ByteWriter p;
  p.uv(jobId);
  p.uv(clientId);
  spec.serialize(p);
  segment(kSubmitSegment, p);
}

void LedgerWriter::appendState(uint64_t jobId, JobState state, uint32_t attempt,
                               const std::string& detail,
                               const std::string& artifactPath,
                               const std::string& journalPath) {
  ByteWriter p;
  p.uv(jobId);
  p.u8(static_cast<uint8_t>(state));
  p.uv(attempt);
  p.str(detail);
  p.str(artifactPath);
  p.str(journalPath);
  segment(kStateSegment, p);
}

std::vector<uint64_t> LedgerRecovery::nonTerminal() const {
  std::vector<uint64_t> out;
  for (const LedgerJob& j : jobs)
    if (!isTerminal(j.state)) out.push_back(j.id);
  return out;
}

namespace {

LedgerRecovery readLedger(std::span<const uint8_t> data, bool strict) {
  ByteReader r(data);
  CYP_CHECK(r.str() == "CYL1", "ledger: bad magic");
  const uint64_t version = r.uv();
  CYP_CHECK(version == kLedgerVersion,
            "ledger: unsupported version " << version);

  LedgerRecovery out;
  // id → index in out.jobs; the job count is bounded by the segment
  // count, which is bounded by the input size.
  auto find = [&](uint64_t id) -> LedgerJob* {
    for (LedgerJob& j : out.jobs)
      if (j.id == id) return &j;
    return nullptr;
  };

  while (!r.atEnd()) {
    const size_t segStart = r.pos();
    try {
      const uint8_t kind = r.u8();
      CYP_CHECK(kind <= kStateSegment,
                "ledger: unknown segment kind " << int(kind));
      const uint64_t len = r.uv();
      const uint32_t crc = r.u32fixed();
      std::span<const uint8_t> payload = r.raw(len);
      CYP_CHECK(flate::crc32(payload) == crc, "ledger: segment CRC mismatch");

      // Parse fully into locals before committing, so a half-valid
      // segment mutates nothing.
      ByteReader p(payload);
      if (kind == kSubmitSegment) {
        LedgerJob j;
        j.id = p.uv();
        j.clientId = p.uv();
        j.spec = JobSpec::deserialize(p);
        CYP_CHECK(p.atEnd(), "ledger: trailing bytes in submit segment");
        CYP_CHECK(find(j.id) == nullptr,
                  "ledger: job " << j.id << " submitted twice");
        out.maxJobId = std::max(out.maxJobId, j.id);
        out.jobs.push_back(std::move(j));
      } else {
        const uint64_t id = p.uv();
        const JobState state = checkedState(p.u8());
        const uint32_t attempt = static_cast<uint32_t>(p.uv());
        const std::string detail = checkedStr(p);
        const std::string artifactPath = checkedStr(p);
        const std::string journalPath = checkedStr(p);
        CYP_CHECK(p.atEnd(), "ledger: trailing bytes in state segment");
        LedgerJob* j = find(id);
        CYP_CHECK(j != nullptr,
                  "ledger: state transition for unknown job " << id);
        CYP_CHECK(!isTerminal(j->state),
                  "ledger: transition after terminal state for job " << id);
        j->state = state;
        j->attempt = attempt;
        j->detail = detail;
        if (!artifactPath.empty()) j->artifactPath = artifactPath;
        if (!journalPath.empty()) j->journalPath = journalPath;
      }
      ++out.segmentsRecovered;
    } catch (const Error&) {
      if (strict) throw;
      out.bytesDiscarded = data.size() - segStart;
      return out;
    }
  }
  return out;
}

}  // namespace

LedgerRecovery recoverLedger(std::span<const uint8_t> data) {
  return readLedger(data, /*strict=*/false);
}

LedgerRecovery parseLedger(std::span<const uint8_t> data) {
  return readLedger(data, /*strict=*/true);
}

LedgerRecovery recoverLedgerFile(const std::string& path, io::IoBackend* io) {
  io::IoBackend& be = io ? *io : io::realIo();
  if (!be.exists(path)) return LedgerRecovery{};
  const std::vector<uint8_t> bytes = be.readAll(path);
  if (bytes.empty()) return LedgerRecovery{};

  // A kill can land mid-write of the header itself. A strict prefix of
  // the canonical header is a torn fresh ledger — truncate to empty and
  // start over. Anything else that fails the header check is a foreign
  // file, and recoverLedger below refuses it rather than clobbering it.
  ByteWriter canonical;
  canonical.str("CYL1");
  canonical.uv(kLedgerVersion);
  const auto& header = canonical.bytes();
  if (bytes.size() < header.size() &&
      std::equal(bytes.begin(), bytes.end(), header.begin())) {
    be.truncate(path, 0);
    LedgerRecovery rec;
    rec.bytesDiscarded = bytes.size();
    return rec;
  }

  LedgerRecovery rec = recoverLedger(bytes);
  if (rec.bytesDiscarded > 0)
    // Truncate the torn tail so a resumed LedgerWriter appends at the
    // segment boundary instead of behind garbage.
    be.truncate(path, bytes.size() - rec.bytesDiscarded);
  return rec;
}

}  // namespace cypress::service
