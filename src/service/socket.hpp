// Unix-domain stream transport for the job server.
//
// One listener thread accepts connections; each connection gets a
// thread that pumps bytes through a Session (service/session.hpp).
// All protocol logic lives in the Session — this file only moves bytes
// and manages lifetimes, so the transport layer has nothing to fuzz.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/server.hpp"

namespace cypress::service {

class SocketServer {
 public:
  /// Binds and listens on `path` (an existing socket file is replaced).
  /// Throws cypress::Error when the address cannot be bound.
  SocketServer(JobServer& server, std::string path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Start the accept loop (returns immediately).
  void start();

  /// Block until a client sends Shutdown or stop() is called.
  void waitShutdown();

  /// True once a client's Shutdown request was acknowledged. Lets a
  /// caller that must also watch process signals poll instead of
  /// blocking in waitShutdown() (condition waits ignore signals).
  bool shutdownSeen() const { return shutdownRequested_.load(); }

  /// Stop accepting, close every connection, join all threads.
  void stop();

  const std::string& path() const { return path_; }

 private:
  void acceptLoop();
  void connectionLoop(int fd, uint64_t clientId);

  JobServer& server_;
  std::string path_;
  int listenFd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdownRequested_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  std::thread acceptor_;
  std::vector<std::thread> connections_;
  uint64_t nextClientId_ = 0;
};

}  // namespace cypress::service
