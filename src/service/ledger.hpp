// Crash-consistent job ledger: the CYL1 append-only on-disk format.
//
// The daemon journals every job state transition the way the tracer
// journals events (trace/journal.hpp): CRC-framed, append-only,
// flushed segment by segment, so a `kill -9` at any byte leaves a
// recoverable prefix. The layout:
//
//   header:  str "CYL1" | uvarint version (1)
//   segment: u8 kind | uvarint payloadLen | u32 crc32(payload) | payload
//
// Segment kinds:
//   0 SUBMIT payload = uv jobId | uv clientId | JobSpec
//   1 STATE  payload = uv jobId | u8 state | uv attempt | str detail
//                      | str artifactPath | str journalPath
//
// A ledger is never sealed — the server is meant to outlive any one
// job — so recovery is always prefix salvage: replay CRC-valid
// segments in order, stop at the first torn or corrupt one, and report
// how many trailing bytes must be truncated before appending resumes.
// A job whose last recovered state is non-terminal (ACCEPTED or
// RUNNING) was in flight at the crash: the server re-queues it and
// marks its half-written artifacts for salvage.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "support/io.hpp"

namespace cypress::service {

/// Append-only CYL1 writer. Every append is written and fsynced before
/// returning, so the on-disk stream always ends at a segment boundary
/// unless the process died mid-write — either way a recoverable prefix,
/// and every acknowledged state transition is on the platter.
class LedgerWriter {
 public:
  /// Opens `path` for appending, writing the header first when the file
  /// is new or empty. Refuses a non-empty file unless `resume` is set
  /// (the recovery path truncates to the valid prefix, then resumes).
  /// All I/O goes through `io` (null = the real backend), so tests can
  /// inject disk faults into the append path.
  explicit LedgerWriter(const std::string& path, bool resume = false,
                        io::IoBackend* io = nullptr);

  LedgerWriter(const LedgerWriter&) = delete;
  LedgerWriter& operator=(const LedgerWriter&) = delete;

  void appendSubmit(uint64_t jobId, uint64_t clientId, const JobSpec& spec);
  void appendState(uint64_t jobId, JobState state, uint32_t attempt,
                   const std::string& detail, const std::string& artifactPath,
                   const std::string& journalPath);

  /// Segments appended through this writer (header excluded) — the
  /// clock the kill-matrix test's --crash-after-segments hook reads.
  uint64_t segmentsWritten() const { return segments_; }

 private:
  void segment(uint8_t kind, const ByteWriter& payload);

  io::IoBackend* io_;
  std::unique_ptr<io::IoFile> file_;
  uint64_t segments_ = 0;
};

/// One job as reconstructed from the ledger (last state wins).
struct LedgerJob {
  uint64_t id = 0;
  uint64_t clientId = 0;
  JobSpec spec;
  JobState state = JobState::Accepted;
  uint32_t attempt = 0;
  std::string detail;
  std::string artifactPath;
  std::string journalPath;
};

/// The result of reading a CYL1 ledger.
struct LedgerRecovery {
  std::vector<LedgerJob> jobs;  ///< ascending job id
  size_t segmentsRecovered = 0;
  size_t bytesDiscarded = 0;  ///< torn tail after the last good segment
  uint64_t maxJobId = 0;

  /// Jobs that never reached DONE/FAILED/CANCELLED — the re-queue set.
  std::vector<uint64_t> nonTerminal() const;
};

/// Salvage a (possibly torn) ledger: replay CRC-valid segments up to
/// the first damage. Throws cypress::Error only on an unusable header.
LedgerRecovery recoverLedger(std::span<const uint8_t> data);

/// Strict read for verification and fuzzing: any anomaly (torn or
/// corrupt segment, unknown job id, out-of-order transition payload)
/// raises cypress::Error.
LedgerRecovery parseLedger(std::span<const uint8_t> data);

/// Read + salvage a ledger file and truncate it to the valid prefix so
/// a LedgerWriter can resume appending. Returns the recovery; a missing
/// file yields an empty recovery. `io` as in LedgerWriter.
LedgerRecovery recoverLedgerFile(const std::string& path,
                                 io::IoBackend* io = nullptr);

}  // namespace cypress::service
