// cyptraced job server: admission control, per-job watchdogs, retry
// with backoff, and a crash-consistent job ledger.
//
// The server owns a bounded FIFO queue of jobs and runs them on the
// process-wide ThreadPool. Each layer has one job:
//
//   admission   submit() either admits a job (bounded queue, per-client
//               in-flight cap) or refuses it explicitly — REJECTED_BUSY
//               under load, never silent queue growth.
//   dispatch    a dispatcher thread launches queued jobs FIFO, at most
//               maxConcurrent at a time, skipping jobs parked behind a
//               retry-backoff gate.
//   watchdog    a watchdog thread cancels any attempt that exceeds its
//               wall deadline via the VM's cooperative cancel flag (the
//               same stall machinery fault injection exercises); the
//               job gets per-rank diagnostics, the server stays up.
//   retry       transient failures (stalls from injected drop/delay
//               faults, expired deadlines) re-queue with exponential
//               backoff + deterministic jitter up to an attempt budget;
//               the terminal FAILED carries the last diagnostic.
//   ledger      every transition is appended to a CYL1 ledger
//               (service/ledger.hpp) before it takes effect in memory,
//               so `cyptraced --recover` after kill -9 re-queues
//               unfinished jobs and marks their torn journals for
//               `cyptrace recover`.
//
// Compiled programs are shared across jobs through a ProgramCache —
// the static phase is pure per program, so retries and repeated
// benchmarks skip it entirely.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.hpp"
#include "service/ledger.hpp"
#include "service/protocol.hpp"

namespace cypress::service {

struct ServerConfig {
  /// Directory receiving artifacts, journals, and (by default) the
  /// ledger. Created if missing.
  std::string spoolDir = ".";
  std::string ledgerPath;  ///< empty = spoolDir + "/jobs.cyl"
  /// Admission bound: jobs waiting to run (initial or retry). A full
  /// queue refuses new work with REJECTED_BUSY.
  size_t queueCapacity = 8;
  /// Jobs executing at once (each runs as one pool task).
  int maxConcurrent = 2;
  /// Non-terminal jobs one client may have in flight.
  size_t perClientCap = 4;
  uint32_t defaultMaxAttempts = 3;
  uint64_t defaultDeadlineMs = 30'000;  ///< per-attempt wall deadline
  uint64_t backoffBaseMs = 25;
  uint64_t backoffCapMs = 2'000;
  /// Seed for the deterministic backoff jitter (mixed with job id and
  /// attempt, so two servers with the same seed back off identically).
  uint64_t jitterSeed = 0xC4B8E55;
  /// Intra-job parallelism (driver::Options::threads).
  int threadsPerJob = 1;
  uint64_t watchdogPollMs = 10;
  /// Test hook for the kill matrix: raise SIGKILL immediately after the
  /// Nth ledger segment is written (0 = never). Keyed on the ledger
  /// segment counter, so the crash point is deterministic.
  uint64_t crashAfterLedgerSegments = 0;
  /// Salvage an existing ledger: replay it, truncate any torn tail,
  /// re-queue every non-terminal job, and rename their torn journals to
  /// `.salvage` for `cyptrace recover`. Without this flag an existing
  /// non-empty ledger is refused.
  bool recover = false;
  size_t cacheCapacity = 16;
  /// Backend for every durable write the server performs (ledger,
  /// journals, artifacts). Null = the real filesystem; tests inject a
  /// FaultyIoBackend here to drive the disk-fault failure class.
  io::IoBackend* io = nullptr;
};

/// The in-process job server. Protocol-agnostic: Session (service/
/// session.hpp) adapts it to the wire, tests call it directly.
class JobServer {
 public:
  explicit JobServer(ServerConfig cfg);
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Launch the dispatcher and watchdog threads. submit() before
  /// start() queues jobs without running them (tests use this to
  /// exercise admission deterministically).
  void start();

  /// Cancel queued and running jobs, then block until every in-flight
  /// attempt has drained. Idempotent; the destructor calls it.
  void stop();

  struct SubmitResult {
    bool accepted = false;
    uint64_t jobId = 0;
    std::string message;  ///< rejection reason when !accepted
    bool clientCapped = false;
  };

  /// Admission control. Never blocks: a full queue or a client over its
  /// in-flight cap gets an immediate explicit refusal.
  SubmitResult submit(const JobSpec& spec, uint64_t clientId);

  std::optional<JobStatus> status(uint64_t jobId) const;

  /// Block until the job is terminal or `timeoutMs` elapses; returns
  /// the latest snapshot either way (nullopt for an unknown id).
  std::optional<JobStatus> wait(uint64_t jobId, uint64_t timeoutMs);

  /// Request cancellation: a queued job is cancelled immediately, a
  /// running one has its cancel flag raised (the VM honours it at the
  /// next epoch boundary). False for unknown or already-terminal jobs.
  bool cancel(uint64_t jobId);

  std::vector<JobStatus> list() const;
  Counters counters() const;

  /// Jobs re-queued by ledger recovery at construction.
  const std::vector<uint64_t>& requeuedJobs() const { return requeued_; }
  const ServerConfig& config() const { return cfg_; }
  uint64_t ledgerSegments() const;

 private:
  enum class Outcome {
    Ok,          ///< clean run, artifact written
    OkDegraded,  ///< survivors' artifact written, some ranks lost
    Transient,   ///< retryable (stall under fault injection)
    Permanent,   ///< not retryable (bad spec, compile error, verify fail)
    Cancelled,   ///< user cancel or server shutdown
    Deadline,    ///< watchdog expired the attempt
    Disk,        ///< disk fault (ENOSPC/EIO) — terminal, never retried
  };

  struct Job {
    uint64_t id = 0;
    uint64_t clientId = 0;
    JobSpec spec;
    JobState state = JobState::Accepted;
    uint32_t attempts = 0;  ///< attempts started
    uint32_t maxAttempts = 1;
    uint64_t deadlineMs = 0;
    std::string detail;
    std::string artifactPath;
    std::string journalPath;
    uint64_t artifactBytes = 0;
    uint32_t errnoValue = 0;  ///< errno behind a FAILED_DISK state
    std::chrono::steady_clock::time_point notBefore{};  ///< backoff gate
    std::chrono::steady_clock::time_point runStart{};
    std::shared_ptr<std::atomic<bool>> cancelFlag;  ///< current attempt
    bool running = false;  ///< attempt body entered (watchdog clock armed)
    bool cancelRequested = false;
    bool deadlineExpired = false;
  };

  struct AttemptResult {
    Outcome outcome = Outcome::Permanent;
    std::string detail;
    std::string artifactPath;
    std::string journalPath;
    uint64_t artifactBytes = 0;
    uint32_t errnoValue = 0;  ///< set with Outcome::Disk
  };

  void dispatchLoop();
  void watchdogLoop();
  void executeJob(uint64_t id, uint32_t attempt);
  AttemptResult runAttempt(const JobSpec& spec, uint64_t id, uint32_t attempt,
                           const std::atomic<bool>& cancel);
  void finishAttempt(uint64_t id, AttemptResult res);
  uint64_t backoffMs(uint64_t jobId, uint32_t attempt) const;
  std::string jobFileBase(uint64_t id) const;
  JobStatus snapshot(const Job& j) const;

  /// Append to the ledger and honour the crash hook. Callers hold mu_.
  void ledgerState(const Job& j);

  ServerConfig cfg_;
  io::IoBackend* io_;  ///< resolved from cfg_.io (never null)
  ProgramCache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;          // job state changes (wait, stop)
  std::condition_variable dispatchCv_;  // queue/backoff/slot changes
  std::map<uint64_t, Job> jobs_;
  std::deque<uint64_t> queue_;  // FIFO of jobs in Accepted state
  std::unique_ptr<LedgerWriter> ledger_;
  Counters counters_;
  uint64_t nextId_ = 0;
  int runningCount_ = 0;
  int inflight_ = 0;  // attempt closures not yet finished
  bool started_ = false;
  bool stopping_ = false;
  std::vector<uint64_t> requeued_;

  std::thread dispatcher_;
  std::thread watchdog_;
};

}  // namespace cypress::service
