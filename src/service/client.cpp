#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"

namespace cypress::service {

namespace {

void writeAll(int fd, std::span<const uint8_t> bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a daemon dying under us (the kill-matrix scenario)
    // must surface as a cypress::Error, not a SIGPIPE.
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    CYP_CHECK(n > 0, "client: write failed: " << std::strerror(errno));
    off += static_cast<size_t>(n);
  }
}

}  // namespace

Client::Client(const std::string& socketPath) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CYP_CHECK(socketPath.size() < sizeof(addr.sun_path),
            "socket path too long: " << socketPath);
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CYP_CHECK(fd_ >= 0, "socket(): " << std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    CYP_FAIL("cannot connect to " << socketPath << ": " << std::strerror(err)
                                  << " (is cyptraced running?)");
  }

  Request hello;
  hello.type = RequestType::Hello;
  hello.helloVersion = kProtocolVersion;
  const Response resp = call(hello);
  CYP_CHECK(resp.code == ResponseCode::HelloOk,
            "handshake failed: " << resp.message);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Response Client::call(const Request& req) {
  writeAll(fd_, encodeFrame(req.encode()));
  uint8_t buf[4096];
  while (true) {
    if (auto payload = decoder_.next()) return Response::decode(*payload);
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    CYP_CHECK(n > 0, "client: server closed the connection mid-response");
    decoder_.feed(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
  }
}

Response Client::submit(const JobSpec& spec) {
  Request req;
  req.type = RequestType::Submit;
  req.spec = spec;
  return call(req);
}

std::optional<JobStatus> Client::status(uint64_t jobId) {
  Request req;
  req.type = RequestType::Status;
  req.jobId = jobId;
  const Response resp = call(req);
  if (resp.code != ResponseCode::Status) return std::nullopt;
  return resp.status;
}

std::optional<JobStatus> Client::wait(uint64_t jobId, uint64_t timeoutMs) {
  Request req;
  req.type = RequestType::Wait;
  req.jobId = jobId;
  req.timeoutMs = timeoutMs;
  const Response resp = call(req);
  if (resp.code != ResponseCode::Status) return std::nullopt;
  return resp.status;
}

std::optional<JobStatus> Client::cancel(uint64_t jobId) {
  Request req;
  req.type = RequestType::Cancel;
  req.jobId = jobId;
  const Response resp = call(req);
  if (resp.code != ResponseCode::Status) return std::nullopt;
  return resp.status;
}

std::vector<JobStatus> Client::list() {
  Request req;
  req.type = RequestType::List;
  const Response resp = call(req);
  CYP_CHECK(resp.code == ResponseCode::JobList,
            "list failed: " << resp.message);
  return resp.jobs;
}

Counters Client::counters() {
  Request req;
  req.type = RequestType::Counters;
  const Response resp = call(req);
  CYP_CHECK(resp.code == ResponseCode::Counters,
            "counters failed: " << resp.message);
  return resp.counters;
}

void Client::shutdown() {
  Request req;
  req.type = RequestType::Shutdown;
  const Response resp = call(req);
  CYP_CHECK(resp.code == ResponseCode::ShuttingDown,
            "shutdown failed: " << resp.message);
}

}  // namespace cypress::service
