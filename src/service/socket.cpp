#include "service/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "service/session.hpp"
#include "support/error.hpp"

namespace cypress::service {

namespace {

constexpr int kPollMs = 100;

bool writeAll(int fd, std::span<const uint8_t> bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a client vanishing mid-response must surface as
    // EPIPE (drop the connection), not SIGPIPE (kill the daemon).
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(JobServer& server, std::string path)
    : server_(server), path_(std::move(path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CYP_CHECK(path_.size() < sizeof(addr.sun_path),
            "socket path too long: " << path_);
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CYP_CHECK(listenFd_ >= 0, "socket(): " << std::strerror(errno));
  ::unlink(path_.c_str());
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listenFd_);
    listenFd_ = -1;
    CYP_FAIL("bind(" << path_ << "): " << std::strerror(err));
  }
  if (::listen(listenFd_, 16) != 0) {
    const int err = errno;
    ::close(listenFd_);
    listenFd_ = -1;
    CYP_FAIL("listen(" << path_ << "): " << std::strerror(err));
  }
}

SocketServer::~SocketServer() {
  stop();
  if (listenFd_ >= 0) ::close(listenFd_);
  ::unlink(path_.c_str());
}

void SocketServer::start() {
  acceptor_ = std::thread([this] { acceptLoop(); });
}

void SocketServer::waitShutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return stopping_.load() || shutdownRequested_.load();
  });
}

void SocketServer::stop() {
  stopping_.store(true);
  cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns)
    if (t.joinable()) t.join();
}

void SocketServer::acceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listenFd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kPollMs);
    if (r <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t clientId = ++nextClientId_;
    connections_.emplace_back(
        [this, fd, clientId] { connectionLoop(fd, clientId); });
  }
}

void SocketServer::connectionLoop(int fd, uint64_t clientId) {
  Session session(server_, clientId);
  uint8_t buf[4096];
  while (!stopping_.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kPollMs);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0) continue;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // peer closed (or error): drop the connection
    const auto out =
        session.consume(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
    if (!out.empty() && !writeAll(fd, out)) break;
    if (session.shutdownRequested()) {
      shutdownRequested_.store(true);
      cv_.notify_all();
    }
    if (session.closed()) break;
  }
  ::close(fd);
}

}  // namespace cypress::service
