#include "service/cache.hpp"

namespace cypress::service {

uint64_t hashSource(const std::string& source) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : source) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::shared_ptr<const driver::CompiledProgram> ProgramCache::get(
    const std::string& source) {
  const uint64_t key = hashSource(source);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end() && it->second->second.source == source) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return it->second->second.program;
    }
    ++misses_;
  }

  // Compile outside the lock; holding it across a compile would
  // serialize every cache miss behind the slowest program.
  auto program = driver::compileForTracing(source);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end() && it->second->second.source == source) {
    // A racing miss published first; use its copy for coherence.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second.program;
  }
  if (it != index_.end()) {
    // Hash collision with a different source: evict the old entry
    // rather than shadowing it.
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.emplace_front(key, Entry{source, program});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return program;
}

uint64_t ProgramCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ProgramCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace cypress::service
