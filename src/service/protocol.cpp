#include "service/protocol.hpp"

#include <cstring>

#include "flate/flate.hpp"
#include "support/error.hpp"

namespace cypress::service {

namespace {

constexpr uint8_t kFrameMagic[4] = {'C', 'Y', 'S', '1'};
constexpr size_t kFrameHeaderBytes = 12;  // magic + payloadLen + crc

uint32_t readU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

std::string checkedStr(ByteReader& r) {
  // Strings inside protocol payloads are already bounded by the frame
  // cap; checkedCount keeps a corrupt length prefix from scanning past
  // the payload end.
  const uint64_t n = r.checkedCount(r.uv(), 1);
  std::string s(reinterpret_cast<const char*>(r.raw(n).data()), n);
  return s;
}

JobKind decodeKind(uint8_t v) {
  CYP_CHECK(v <= static_cast<uint8_t>(JobKind::Query),
            "protocol: unknown job kind " << int(v));
  return static_cast<JobKind>(v);
}

JobState decodeState(uint8_t v) {
  CYP_CHECK(v <= static_cast<uint8_t>(JobState::FailedDisk),
            "protocol: unknown job state " << int(v));
  return static_cast<JobState>(v);
}

}  // namespace

bool isTerminal(JobState s) {
  return s == JobState::Done || s == JobState::Failed ||
         s == JobState::Cancelled || s == JobState::FailedDisk;
}

const char* toString(JobKind k) {
  switch (k) {
    case JobKind::Run: return "run";
    case JobKind::Compress: return "compress";
    case JobKind::Verify: return "verify";
    case JobKind::Recover: return "recover";
    case JobKind::Query: return "query";
  }
  return "?";
}

const char* toString(JobState s) {
  switch (s) {
    case JobState::Accepted: return "ACCEPTED";
    case JobState::Running: return "RUNNING";
    case JobState::Done: return "DONE";
    case JobState::Failed: return "FAILED";
    case JobState::Cancelled: return "CANCELLED";
    case JobState::FailedDisk: return "FAILED_DISK";
  }
  return "?";
}

std::vector<uint8_t> encodeFrame(std::span<const uint8_t> payload) {
  CYP_CHECK(payload.size() <= kMaxFramePayload,
            "frame payload of " << payload.size() << " bytes exceeds the "
                                << kMaxFramePayload << "-byte cap");
  ByteWriter w;
  w.raw(std::span<const uint8_t>(kFrameMagic, 4));
  w.u32fixed(static_cast<uint32_t>(payload.size()));
  w.u32fixed(flate::crc32(payload));
  w.raw(payload);
  return w.take();
}

void FrameDecoder::feed(std::span<const uint8_t> bytes) {
  // Compact the consumed prefix before growing, so a long-lived
  // connection does not accumulate every frame it ever received.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > kMaxFramePayload) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<uint8_t>> FrameDecoder::next() {
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return std::nullopt;
  const uint8_t* h = buf_.data() + pos_;
  CYP_CHECK(std::memcmp(h, kFrameMagic, 4) == 0, "frame: bad magic");
  const uint32_t len = readU32(h + 4);
  // The length is validated before any buffering decision, so an
  // oversized prefix is rejected immediately instead of making the
  // decoder wait for (and buffer toward) gigabytes that never arrive.
  CYP_CHECK(len <= kMaxFramePayload,
            "frame: payload length " << len << " exceeds the "
                                     << kMaxFramePayload << "-byte cap");
  const uint32_t crc = readU32(h + 8);
  if (avail < kFrameHeaderBytes + len) return std::nullopt;
  std::span<const uint8_t> payload(h + kFrameHeaderBytes, len);
  CYP_CHECK(flate::crc32(payload) == crc, "frame: payload CRC mismatch");
  std::vector<uint8_t> out(payload.begin(), payload.end());
  pos_ += kFrameHeaderBytes + len;
  return out;
}

void JobSpec::serialize(ByteWriter& w) const {
  w.u8(static_cast<uint8_t>(kind));
  w.str(target);
  w.str(sourceText);
  w.uv(procs);
  w.uv(scale);
  w.uv(faultSpecs.size());
  for (const auto& f : faultSpecs) w.str(f);
  w.u8(faultsTransient ? 1 : 0);
  w.uv(deadlineMs);
  w.uv(maxAttempts);
  w.str(querySpec);
}

JobSpec JobSpec::deserialize(ByteReader& r) {
  JobSpec s;
  s.kind = decodeKind(r.u8());
  s.target = checkedStr(r);
  s.sourceText = checkedStr(r);
  s.procs = static_cast<uint32_t>(r.uv());
  s.scale = static_cast<uint32_t>(r.uv());
  CYP_CHECK(s.procs >= 1 && s.procs <= 1u << 20,
            "protocol: implausible procs " << s.procs);
  CYP_CHECK(s.scale >= 1 && s.scale <= 1u << 20,
            "protocol: implausible scale " << s.scale);
  const uint64_t nf = r.checkedCount(r.uv(), 1);
  s.faultSpecs.reserve(nf);
  for (uint64_t i = 0; i < nf; ++i) s.faultSpecs.push_back(checkedStr(r));
  const uint8_t t = r.u8();
  CYP_CHECK(t <= 1, "protocol: bad faultsTransient flag " << int(t));
  s.faultsTransient = t == 1;
  s.deadlineMs = r.uv();
  s.maxAttempts = static_cast<uint32_t>(r.uv());
  CYP_CHECK(s.maxAttempts <= 1000,
            "protocol: implausible attempt budget " << s.maxAttempts);
  s.querySpec = checkedStr(r);
  return s;
}

void JobStatus::serialize(ByteWriter& w) const {
  w.uv(id);
  w.u8(static_cast<uint8_t>(state));
  w.uv(attempts);
  w.str(detail);
  w.str(artifactPath);
  w.str(journalPath);
  w.uv(artifactBytes);
  w.uv(errnoValue);
}

JobStatus JobStatus::deserialize(ByteReader& r) {
  JobStatus s;
  s.id = r.uv();
  s.state = decodeState(r.u8());
  s.attempts = static_cast<uint32_t>(r.uv());
  s.detail = checkedStr(r);
  s.artifactPath = checkedStr(r);
  s.journalPath = checkedStr(r);
  s.artifactBytes = r.uv();
  s.errnoValue = static_cast<uint32_t>(r.uv());
  return s;
}

void Counters::serialize(ByteWriter& w) const {
  w.uv(submitted);
  w.uv(accepted);
  w.uv(rejectedBusy);
  w.uv(rejectedClientCap);
  w.uv(done);
  w.uv(failed);
  w.uv(failedDisk);
  w.uv(cancelled);
  w.uv(retries);
  w.uv(cacheHits);
  w.uv(cacheMisses);
}

Counters Counters::deserialize(ByteReader& r) {
  Counters c;
  c.submitted = r.uv();
  c.accepted = r.uv();
  c.rejectedBusy = r.uv();
  c.rejectedClientCap = r.uv();
  c.done = r.uv();
  c.failed = r.uv();
  c.failedDisk = r.uv();
  c.cancelled = r.uv();
  c.retries = r.uv();
  c.cacheHits = r.uv();
  c.cacheMisses = r.uv();
  return c;
}

std::vector<uint8_t> Request::encode() const {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(type));
  switch (type) {
    case RequestType::Hello:
      w.uv(helloVersion);
      break;
    case RequestType::Submit:
      spec.serialize(w);
      break;
    case RequestType::Status:
    case RequestType::Cancel:
      w.uv(jobId);
      break;
    case RequestType::Wait:
      w.uv(jobId);
      w.uv(timeoutMs);
      break;
    case RequestType::List:
    case RequestType::Counters:
    case RequestType::Shutdown:
      break;
  }
  return w.take();
}

Request Request::decode(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Request req;
  const uint8_t t = r.u8();
  CYP_CHECK(t <= static_cast<uint8_t>(RequestType::Shutdown),
            "protocol: unknown request type " << int(t));
  req.type = static_cast<RequestType>(t);
  switch (req.type) {
    case RequestType::Hello:
      req.helloVersion = static_cast<uint32_t>(r.uv());
      break;
    case RequestType::Submit:
      req.spec = JobSpec::deserialize(r);
      break;
    case RequestType::Status:
    case RequestType::Cancel:
      req.jobId = r.uv();
      break;
    case RequestType::Wait:
      req.jobId = r.uv();
      req.timeoutMs = r.uv();
      break;
    case RequestType::List:
    case RequestType::Counters:
    case RequestType::Shutdown:
      break;
  }
  CYP_CHECK(r.atEnd(), "protocol: trailing bytes in request");
  return req;
}

std::vector<uint8_t> Response::encode() const {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(code));
  switch (code) {
    case ResponseCode::HelloOk:
      w.uv(helloVersion);
      break;
    case ResponseCode::Accepted:
      w.uv(jobId);
      break;
    case ResponseCode::RejectedBusy:
    case ResponseCode::Error:
      w.str(message);
      w.uv(errnoValue);
      break;
    case ResponseCode::Status:
      status.serialize(w);
      break;
    case ResponseCode::JobList:
      w.uv(jobs.size());
      for (const auto& j : jobs) j.serialize(w);
      break;
    case ResponseCode::Counters:
      counters.serialize(w);
      break;
    case ResponseCode::NotFound:
    case ResponseCode::ShuttingDown:
      break;
  }
  return w.take();
}

Response Response::decode(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  Response resp;
  const uint8_t c = r.u8();
  CYP_CHECK(c <= static_cast<uint8_t>(ResponseCode::Error),
            "protocol: unknown response code " << int(c));
  resp.code = static_cast<ResponseCode>(c);
  switch (resp.code) {
    case ResponseCode::HelloOk:
      resp.helloVersion = static_cast<uint32_t>(r.uv());
      break;
    case ResponseCode::Accepted:
      resp.jobId = r.uv();
      break;
    case ResponseCode::RejectedBusy:
    case ResponseCode::Error:
      resp.message = checkedStr(r);
      resp.errnoValue = static_cast<uint32_t>(r.uv());
      break;
    case ResponseCode::Status:
      resp.status = JobStatus::deserialize(r);
      break;
    case ResponseCode::JobList: {
      const uint64_t n = r.checkedCount(r.uv(), 7);
      resp.jobs.reserve(n);
      for (uint64_t i = 0; i < n; ++i)
        resp.jobs.push_back(JobStatus::deserialize(r));
      break;
    }
    case ResponseCode::Counters:
      resp.counters = Counters::deserialize(r);
      break;
    case ResponseCode::NotFound:
    case ResponseCode::ShuttingDown:
      break;
  }
  CYP_CHECK(r.atEnd(), "protocol: trailing bytes in response");
  return resp;
}

}  // namespace cypress::service
