#include "service/session.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/io.hpp"

namespace cypress::service {

std::vector<uint8_t> Session::consume(std::span<const uint8_t> bytes) {
  std::vector<uint8_t> out;
  if (closed_) return out;
  try {
    decoder_.feed(bytes);
    while (auto payload = decoder_.next()) {
      const Request req = Request::decode(*payload);
      const Response resp = handle(req);
      const auto frame = encodeFrame(resp.encode());
      out.insert(out.end(), frame.begin(), frame.end());
      if (closed_) break;
    }
  } catch (const Error& e) {
    // Malformed frame or message: answer once, then drop the
    // connection — the byte stream cannot be trusted past this point.
    Response resp;
    resp.code = ResponseCode::Error;
    resp.message = e.what();
    if (const auto* ioe = dynamic_cast<const io::IoError*>(&e))
      resp.errnoValue = static_cast<uint32_t>(ioe->errnum());
    const auto frame = encodeFrame(resp.encode());
    out.insert(out.end(), frame.begin(), frame.end());
    closed_ = true;
  }
  return out;
}

Response Session::handle(const Request& req) {
  Response resp;
  if (req.type == RequestType::Hello) {
    if (req.helloVersion != kProtocolVersion) {
      resp.code = ResponseCode::Error;
      resp.message = "protocol version " + std::to_string(req.helloVersion) +
                     " unsupported (server speaks " +
                     std::to_string(kProtocolVersion) + ")";
      closed_ = true;
      return resp;
    }
    helloDone_ = true;
    resp.code = ResponseCode::HelloOk;
    resp.helloVersion = kProtocolVersion;
    return resp;
  }
  if (!helloDone_) {
    resp.code = ResponseCode::Error;
    resp.message = "hello required before any other request";
    closed_ = true;
    return resp;
  }

  switch (req.type) {
    case RequestType::Submit: {
      const JobServer::SubmitResult r = server_.submit(req.spec, clientId_);
      if (r.accepted) {
        resp.code = ResponseCode::Accepted;
        resp.jobId = r.jobId;
      } else {
        resp.code = ResponseCode::RejectedBusy;
        resp.message = r.message;
      }
      return resp;
    }
    case RequestType::Status: {
      auto s = server_.status(req.jobId);
      if (!s) { resp.code = ResponseCode::NotFound; return resp; }
      resp.code = ResponseCode::Status;
      resp.status = *s;
      return resp;
    }
    case RequestType::Wait: {
      auto s = server_.wait(req.jobId, std::min(req.timeoutMs, kMaxWaitMs));
      if (!s) { resp.code = ResponseCode::NotFound; return resp; }
      resp.code = ResponseCode::Status;
      resp.status = *s;
      return resp;
    }
    case RequestType::Cancel: {
      if (!server_.cancel(req.jobId)) {
        auto s = server_.status(req.jobId);
        if (!s) { resp.code = ResponseCode::NotFound; return resp; }
        resp.code = ResponseCode::Status;  // already terminal: report it
        resp.status = *s;
        return resp;
      }
      auto s = server_.status(req.jobId);
      resp.code = ResponseCode::Status;
      if (s) resp.status = *s;
      return resp;
    }
    case RequestType::List:
      resp.code = ResponseCode::JobList;
      resp.jobs = server_.list();
      return resp;
    case RequestType::Counters:
      resp.code = ResponseCode::Counters;
      resp.counters = server_.counters();
      return resp;
    case RequestType::Shutdown:
      resp.code = ResponseCode::ShuttingDown;
      shutdownRequested_ = true;
      closed_ = true;
      return resp;
    case RequestType::Hello:
      break;  // handled above
  }
  resp.code = ResponseCode::Error;
  resp.message = "unhandled request";
  closed_ = true;
  return resp;
}

}  // namespace cypress::service
