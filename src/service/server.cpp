#include "service/server.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cypress/merge.hpp"
#include "driver/pipeline.hpp"
#include "flate/flate.hpp"
#include "query/query.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "verify/roundtrip.hpp"
#include "workloads/workloads.hpp"

namespace cypress::service {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<uint8_t> readBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CYP_CHECK(in.good(), "cannot open " << path);
  std::vector<uint8_t> out((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  return out;
}

std::string firstLine(const std::string& s) {
  const auto nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

std::string describeRanks(const char* what, const std::vector<int>& ranks) {
  std::string s = what;
  for (int r : ranks) s += ' ' + std::to_string(r);
  return s;
}

}  // namespace

JobServer::JobServer(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      io_(cfg_.io ? cfg_.io : &io::realIo()),
      cache_(cfg_.cacheCapacity) {
  io_->createDirectories(cfg_.spoolDir);
  if (cfg_.ledgerPath.empty()) cfg_.ledgerPath = cfg_.spoolDir + "/jobs.cyl";

  if (cfg_.recover) {
    LedgerRecovery rec = recoverLedgerFile(cfg_.ledgerPath, io_);
    nextId_ = rec.maxJobId;
    for (LedgerJob& lj : rec.jobs) {
      Job j;
      j.id = lj.id;
      j.clientId = lj.clientId;
      j.spec = lj.spec;
      j.state = lj.state;
      j.attempts = lj.attempt;
      j.maxAttempts = lj.spec.maxAttempts ? lj.spec.maxAttempts
                                          : cfg_.defaultMaxAttempts;
      j.deadlineMs =
          lj.spec.deadlineMs ? lj.spec.deadlineMs : cfg_.defaultDeadlineMs;
      j.detail = lj.detail;
      j.artifactPath = lj.artifactPath;
      j.journalPath = lj.journalPath;
      if (!isTerminal(j.state)) {
        // The daemon died with this job in flight. Anything it half
        // wrote is marked for salvage, then the job re-queues from its
        // recorded attempt count.
        const std::string base = jobFileBase(j.id);
        j.detail = "requeued after daemon restart";
        const std::string partial = base + ".cyj.partial";
        if (io_->exists(partial)) {
          // IoBackend::rename fsyncs the parent directory, so the
          // salvage name survives a second crash — the torn-rename
          // window the plain fs::rename left open.
          const std::string salvage = base + ".cyj.salvage";
          try {
            io_->rename(partial, salvage);
            j.journalPath = salvage;
            j.detail += "; torn journal kept for `cyptrace recover`: " + salvage;
          } catch (const Error&) {
            // Salvage is best-effort: the re-queued job rewrites the
            // journal from scratch anyway.
          }
        }
        try {
          io_->remove(base + ".cyp.tmp");
          io_->remove(base + ".flate.tmp");
          io_->remove(base + ".cytr.tmp");
        } catch (const Error&) {
        }
        j.state = JobState::Accepted;
        queue_.push_back(j.id);
        requeued_.push_back(j.id);
      }
      jobs_.emplace(j.id, std::move(j));
    }
    ledger_ = std::make_unique<LedgerWriter>(cfg_.ledgerPath, /*resume=*/true,
                                             io_);
    for (uint64_t id : requeued_) ledgerState(jobs_.at(id));
  } else {
    ledger_ = std::make_unique<LedgerWriter>(cfg_.ledgerPath, /*resume=*/false,
                                             io_);
  }
}

JobServer::~JobServer() { stop(); }

void JobServer::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  dispatcher_ = std::thread([this] { dispatchLoop(); });
  watchdog_ = std::thread([this] { watchdogLoop(); });
}

void JobServer::stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped (or stopping on another thread): just wait for
      // the drain below.
    }
    stopping_ = true;
    // Cancel everything still queued...
    for (uint64_t id : queue_) {
      Job& j = jobs_.at(id);
      j.state = JobState::Cancelled;
      j.detail = "cancelled: server shutdown";
      ++counters_.cancelled;
      ledgerState(j);
    }
    queue_.clear();
    // ...and ask running attempts to bail at the next epoch boundary.
    for (auto& [id, j] : jobs_)
      if (j.state == JobState::Running && j.cancelFlag)
        j.cancelFlag->store(true, std::memory_order_relaxed);
    dispatchCv_.notify_all();
    cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  if (watchdog_.joinable()) watchdog_.join();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return inflight_ == 0; });
}

std::string JobServer::jobFileBase(uint64_t id) const {
  return cfg_.spoolDir + "/job-" + std::to_string(id);
}

void JobServer::ledgerState(const Job& j) {
  ledger_->appendState(j.id, j.state, j.attempts, j.detail, j.artifactPath,
                       j.journalPath);
  if (cfg_.crashAfterLedgerSegments != 0 &&
      ledger_->segmentsWritten() >= cfg_.crashAfterLedgerSegments)
    std::raise(SIGKILL);
}

uint64_t JobServer::ledgerSegments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_->segmentsWritten();
}

JobServer::SubmitResult JobServer::submit(const JobSpec& spec,
                                          uint64_t clientId) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.submitted;
  SubmitResult res;
  if (stopping_) {
    res.message = "server is shutting down";
    return res;
  }
  if (queue_.size() >= cfg_.queueCapacity) {
    ++counters_.rejectedBusy;
    res.message = "queue full (" + std::to_string(cfg_.queueCapacity) +
                  " jobs waiting); try again later";
    return res;
  }
  size_t inflightForClient = 0;
  for (const auto& [id, j] : jobs_)
    if (j.clientId == clientId && !isTerminal(j.state)) ++inflightForClient;
  if (inflightForClient >= cfg_.perClientCap) {
    ++counters_.rejectedClientCap;
    res.message = "client has " + std::to_string(inflightForClient) +
                  " jobs in flight (cap " + std::to_string(cfg_.perClientCap) +
                  ")";
    res.clientCapped = true;
    return res;
  }

  Job j;
  j.id = ++nextId_;
  j.clientId = clientId;
  j.spec = spec;
  j.maxAttempts = spec.maxAttempts ? spec.maxAttempts : cfg_.defaultMaxAttempts;
  j.deadlineMs = spec.deadlineMs ? spec.deadlineMs : cfg_.defaultDeadlineMs;
  // The SUBMIT segment is the durable ACCEPTED transition: a recovered
  // ledger treats a job with no later STATE segment as accepted.
  ledger_->appendSubmit(j.id, clientId, spec);
  if (cfg_.crashAfterLedgerSegments != 0 &&
      ledger_->segmentsWritten() >= cfg_.crashAfterLedgerSegments)
    std::raise(SIGKILL);
  ++counters_.accepted;
  res.accepted = true;
  res.jobId = j.id;
  queue_.push_back(j.id);
  jobs_.emplace(j.id, std::move(j));
  dispatchCv_.notify_all();
  return res;
}

std::optional<JobStatus> JobServer::status(uint64_t jobId) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(jobId);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot(it->second);
}

std::optional<JobStatus> JobServer::wait(uint64_t jobId, uint64_t timeoutMs) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(jobId);
  if (it == jobs_.end()) return std::nullopt;
  cv_.wait_for(lock, std::chrono::milliseconds(timeoutMs), [&] {
    return isTerminal(jobs_.at(jobId).state) || stopping_;
  });
  return snapshot(jobs_.at(jobId));
}

bool JobServer::cancel(uint64_t jobId) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(jobId);
  if (it == jobs_.end()) return false;
  Job& j = it->second;
  if (isTerminal(j.state)) return false;
  j.cancelRequested = true;
  if (j.state == JobState::Accepted) {
    // Still queued (or parked behind a backoff gate): cancel outright.
    queue_.erase(std::remove(queue_.begin(), queue_.end(), jobId),
                 queue_.end());
    j.state = JobState::Cancelled;
    j.detail = "cancelled by client";
    ++counters_.cancelled;
    ledgerState(j);
    cv_.notify_all();
  } else if (j.cancelFlag) {
    j.cancelFlag->store(true, std::memory_order_relaxed);
  }
  return true;
}

std::vector<JobStatus> JobServer::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, j] : jobs_) out.push_back(snapshot(j));
  return out;
}

Counters JobServer::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters c = counters_;
  c.cacheHits = cache_.hits();
  c.cacheMisses = cache_.misses();
  return c;
}

JobStatus JobServer::snapshot(const Job& j) const {
  JobStatus s;
  s.id = j.id;
  s.state = j.state;
  s.attempts = j.attempts;
  s.detail = j.detail;
  s.artifactPath = j.artifactPath;
  s.journalPath = j.journalPath;
  s.artifactBytes = j.artifactBytes;
  s.errnoValue = j.errnoValue;
  return s;
}

uint64_t JobServer::backoffMs(uint64_t jobId, uint32_t attempt) const {
  const uint32_t shift = std::min(attempt > 0 ? attempt - 1 : 0u, 20u);
  const uint64_t exp = std::min(cfg_.backoffCapMs, cfg_.backoffBaseMs << shift);
  // Deterministic jitter: a fixed (seed, job, attempt) triple always
  // waits the same amount, so tests and recoveries are reproducible
  // while concurrent retries still de-correlate.
  Rng rng(cfg_.jitterSeed ^ (jobId * 0x9E3779B97F4A7C15ull) ^ attempt);
  return exp + rng.below(cfg_.backoffBaseMs + 1);
}

void JobServer::dispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    const auto now = Clock::now();
    if (runningCount_ < cfg_.maxConcurrent) {
      // FIFO with backoff gates: take the first queued job whose gate
      // has opened; jobs behind closed gates do not block later ones.
      auto it = std::find_if(queue_.begin(), queue_.end(), [&](uint64_t id) {
        return jobs_.at(id).notBefore <= now;
      });
      if (it != queue_.end()) {
        const uint64_t id = *it;
        queue_.erase(it);
        Job& j = jobs_.at(id);
        j.state = JobState::Running;
        ++j.attempts;
        j.cancelFlag = std::make_shared<std::atomic<bool>>(
            j.cancelRequested || stopping_);
        j.running = false;
        j.deadlineExpired = false;
        j.detail = "attempt " + std::to_string(j.attempts) + " of " +
                   std::to_string(j.maxAttempts);
        ledgerState(j);
        ++runningCount_;
        ++inflight_;
        const uint32_t attempt = j.attempts;
        lock.unlock();
        ThreadPool::shared().enqueue(
            [this, id, attempt] { executeJob(id, attempt); });
        lock.lock();
        continue;
      }
    }
    dispatchCv_.wait_for(lock,
                         std::chrono::milliseconds(cfg_.watchdogPollMs));
  }
}

void JobServer::watchdogLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::milliseconds(cfg_.watchdogPollMs));
    const auto now = Clock::now();
    for (auto& [id, j] : jobs_) {
      if (j.state != JobState::Running || !j.running || !j.cancelFlag)
        continue;
      if (j.cancelFlag->load(std::memory_order_relaxed)) continue;
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                                j.runStart);
      if (static_cast<uint64_t>(elapsed.count()) >= j.deadlineMs) {
        j.deadlineExpired = true;
        j.cancelFlag->store(true, std::memory_order_relaxed);
      }
    }
  }
}

void JobServer::executeJob(uint64_t id, uint32_t attempt) {
  JobSpec spec;
  std::shared_ptr<std::atomic<bool>> flag;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Job& j = jobs_.at(id);
    spec = j.spec;
    flag = j.cancelFlag;
    j.running = true;
    j.runStart = Clock::now();  // the watchdog clock starts at attempt
                                // entry, not enqueue — queue wait on a
                                // loaded pool is not the job's fault
  }
  AttemptResult res;
  try {
    res = runAttempt(spec, id, attempt, *flag);
  } catch (const io::IoError& e) {
    // Disk faults are their own failure class: terminal (retrying a
    // full disk fails identically) and carrying the errno to the
    // client so tooling can react to ENOSPC specifically.
    res.outcome = Outcome::Disk;
    res.errnoValue = static_cast<uint32_t>(e.errnum());
    res.detail = firstLine(e.what());
  } catch (const std::exception& e) {
    res.outcome = Outcome::Permanent;
    res.detail = firstLine(e.what());
  }
  finishAttempt(id, std::move(res));
}

JobServer::AttemptResult JobServer::runAttempt(
    const JobSpec& spec, uint64_t id, uint32_t attempt,
    const std::atomic<bool>& cancel) {
  AttemptResult res;
  const std::string base = jobFileBase(id);

  if (cancel.load(std::memory_order_relaxed)) {
    res.outcome = Outcome::Cancelled;
    res.detail = "cancelled before start";
    return res;
  }

  switch (spec.kind) {
    case JobKind::Run: {
      // Mirror `cyptrace run`: CYPRESS (+raw) only, merged trace out.
      std::string source = spec.sourceText;
      if (source.empty()) {
        const workloads::Workload& w = workloads::get(spec.target);
        CYP_CHECK(w.supportsProcs(static_cast<int>(spec.procs)),
                  spec.target << " does not support " << spec.procs
                              << " processes");
        source = w.source(static_cast<int>(spec.procs),
                          static_cast<int>(spec.scale));
      }

      driver::Options opts;
      opts.procs = static_cast<int>(spec.procs);
      opts.scale = static_cast<int>(spec.scale);
      opts.threads = cfg_.threadsPerJob;
      opts.withScala = false;
      opts.withScala2 = false;
      opts.onStall = vm::OnStall::Salvage;
      opts.cancel = &cancel;
      opts.precompiled = cache_.get(source);
      // Transient faults are injected on the first attempt only — the
      // failure mode the retry machinery exists for. Without the flag,
      // the plan is deterministic and every attempt fails identically.
      if (!spec.faultsTransient || attempt == 1)
        for (const std::string& f : spec.faultSpecs)
          opts.engine.faults.faults.push_back(simmpi::parseFaultSpec(f));

      // Stream the journal to disk as it grows: a daemon crash mid-run
      // leaves a salvageable torn .partial instead of nothing. The
      // durable sink fsyncs each flushed segment, so what the file
      // promises to `cyptrace recover` is actually on the platter.
      opts.withJournal = true;
      opts.journalFlushEvery = 16;
      const std::string partial = base + ".cyj.partial";
      opts.journalSink = trace::durableFileSink(*io_, partial);

      driver::RunOutput run = driver::runSource(spec.target, source, opts);
      opts.journalSink = nullptr;  // close the .partial before renaming it

      if (run.runStats.cancelled) {
        res.outcome = Outcome::Cancelled;  // finishAttempt tells user
                                           // cancel from deadline expiry
        res.detail = firstLine(run.runStats.stallDiagnostics);
        res.journalPath = partial;
        return res;
      }
      if (!run.runStats.stalledRanks.empty()) {
        // A stall (drop/delay fault, deadlock) is the transient class:
        // the tracer salvaged what it could; a retry may succeed.
        res.outcome = Outcome::Transient;
        res.detail = describeRanks("stalled ranks:",
                                   run.runStats.stalledRanks) +
                     "; " + firstLine(run.runStats.stallDiagnostics);
        res.journalPath = partial;
        return res;
      }

      core::MergedCtt merged =
          driver::mergeCypress(run, nullptr, cfg_.threadsPerJob);
      const auto bytes = merged.serialize();
      res.artifactPath = base + ".cyp";
      io::writeFileAtomic(*io_, res.artifactPath, bytes);
      res.artifactBytes = bytes.size();
      res.journalPath = base + ".cyj";
      io_->rename(partial, res.journalPath);

      if (run.runStats.deadRanks.empty()) {
        res.outcome = Outcome::Ok;
        res.detail = "traced " + std::to_string(run.raw.totalEvents()) +
                     " events on " + std::to_string(spec.procs) + " ranks";
      } else {
        // Killed ranks degrade, not fail: the survivors' merged trace
        // is valid and the lost ranks are annotated in it (PR 2).
        res.outcome = Outcome::OkDegraded;
        res.detail = describeRanks("degraded; killed ranks:",
                                   run.runStats.deadRanks);
      }
      return res;
    }

    case JobKind::Compress: {
      const auto input = readBytes(spec.target);
      const auto packed =
          flate::compress(input, flate::Level::Default, cfg_.threadsPerJob);
      res.artifactPath = base + ".flate";
      io::writeFileAtomic(*io_, res.artifactPath, packed);
      res.artifactBytes = packed.size();
      res.outcome = Outcome::Ok;
      res.detail = std::to_string(input.size()) + " -> " +
                   std::to_string(packed.size()) + " bytes";
      return res;
    }

    case JobKind::Verify: {
      const auto input = readBytes(spec.target);
      const verify::Report rep = verify::verifyTraceFile(input);
      if (rep.ok()) {
        res.outcome = Outcome::Ok;
        res.detail = "verified: " + firstLine(rep.toString());
      } else {
        res.outcome = Outcome::Permanent;
        res.detail = "verification failed: " + firstLine(rep.toString());
      }
      return res;
    }

    case JobKind::Query: {
      // Compressed-domain analysis: the trace is never decompressed.
      // The validated query spec and the deserializer both raise
      // cypress::Error on bad input, which lands in Outcome::Permanent
      // like any other malformed job.
      const auto input = readBytes(spec.target);
      cst::Tree tree;
      core::MergedCtt merged =
          core::MergedCtt::deserializeWithTree(input, tree);
      const std::string json =
          query::runQuery(merged, spec.querySpec, cfg_.threadsPerJob);
      res.artifactPath = base + ".json";
      io::writeFileAtomic(*io_, res.artifactPath,
                          std::span<const uint8_t>(
                              reinterpret_cast<const uint8_t*>(json.data()),
                              json.size()));
      res.artifactBytes = json.size();
      res.outcome = Outcome::Ok;
      res.detail = "query '" + spec.querySpec + "' -> " +
                   std::to_string(json.size()) + " bytes";
      return res;
    }

    case JobKind::Recover: {
      const auto input = readBytes(spec.target);
      const trace::JournalRecovery rec = trace::recoverJournal(input);
      const auto raw = rec.trace.serialize();
      res.artifactPath = base + ".cytr";
      io::writeFileAtomic(*io_, res.artifactPath, raw);
      res.artifactBytes = raw.size();
      res.outcome = rec.lossy() ? Outcome::OkDegraded : Outcome::Ok;
      res.detail = "salvaged " + std::to_string(rec.segmentsRecovered) +
                   " segments";
      if (rec.lossy())
        res.detail += " (lossy: " + std::to_string(rec.bytesDiscarded) +
                      " bytes discarded, " +
                      std::to_string(rec.unfinalizedRanks().size()) +
                      " unfinalized ranks)";
      return res;
    }
  }
  res.outcome = Outcome::Permanent;
  res.detail = "unknown job kind";
  return res;
}

void JobServer::finishAttempt(uint64_t id, AttemptResult res) {
  std::unique_lock<std::mutex> lock(mu_);
  Job& j = jobs_.at(id);
  j.running = false;
  --runningCount_;

  // A cooperative cancel has three distinct owners; attribute it.
  Outcome outcome = res.outcome;
  if (outcome == Outcome::Cancelled && j.deadlineExpired)
    outcome = Outcome::Deadline;

  const bool retryable =
      (outcome == Outcome::Transient || outcome == Outcome::Deadline) &&
      !stopping_ && !j.cancelRequested && j.attempts < j.maxAttempts;

  j.artifactPath = res.artifactPath.empty() ? j.artifactPath : res.artifactPath;
  j.journalPath = res.journalPath.empty() ? j.journalPath : res.journalPath;
  j.artifactBytes = res.artifactBytes ? res.artifactBytes : j.artifactBytes;

  switch (outcome) {
    case Outcome::Ok:
    case Outcome::OkDegraded:
      j.state = JobState::Done;
      j.detail = res.detail;
      ++counters_.done;
      break;
    case Outcome::Permanent:
      j.state = JobState::Failed;
      j.detail = res.detail;
      ++counters_.failed;
      break;
    case Outcome::Disk:
      j.state = JobState::FailedDisk;
      j.detail = res.detail;
      j.errnoValue = res.errnoValue;
      ++counters_.failedDisk;
      break;
    case Outcome::Cancelled:
      j.state = JobState::Cancelled;
      j.detail = res.detail.empty() ? "cancelled" : "cancelled: " + res.detail;
      ++counters_.cancelled;
      break;
    case Outcome::Deadline:
    case Outcome::Transient: {
      const char* why = outcome == Outcome::Deadline
                            ? "deadline exceeded"
                            : "transient failure";
      if (retryable) {
        const uint64_t delay = backoffMs(id, j.attempts);
        j.state = JobState::Accepted;
        j.detail = std::string(why) + " on attempt " +
                   std::to_string(j.attempts) + "; retrying in " +
                   std::to_string(delay) + " ms: " + res.detail;
        j.notBefore = Clock::now() + std::chrono::milliseconds(delay);
        queue_.push_back(id);
        ++counters_.retries;
      } else {
        j.state = JobState::Failed;
        j.detail = std::string(why) + " after " + std::to_string(j.attempts) +
                   " attempt(s): " + res.detail;
        ++counters_.failed;
      }
      break;
    }
  }
  ledgerState(j);
  --inflight_;
  cv_.notify_all();
  dispatchCv_.notify_all();
}

}  // namespace cypress::service
