#include "trace/journal.hpp"

#include <algorithm>
#include <memory>

#include "flate/flate.hpp"
#include "support/error.hpp"

namespace cypress::trace {

namespace {

constexpr uint8_t kEventsSegment = 0;
constexpr uint8_t kFinalizeSegment = 1;
constexpr uint8_t kSealSegment = 2;

/// Cap on the rank count in a journal header (matches RankSet's bound on
/// deserialized set sizes): far above any simulated job, far below OOM.
constexpr uint64_t kMaxJournalRanks = RankSet::kMaxSerializedRanks;

}  // namespace

JournalBuilder::JournalBuilder(int numRanks, Sink sink)
    : sink_(std::move(sink)), numRanks_(numRanks) {
  CYP_CHECK(numRanks >= 1, "journal needs at least one rank");
  w_.str("CYJ1");
  w_.uv(static_cast<uint64_t>(numRanks));
  emitTail(0);
}

void JournalBuilder::emitTail(size_t from) {
  if (sink_)
    sink_(std::span<const uint8_t>(w_.bytes().data() + from,
                                   w_.bytes().size() - from));
}

void JournalBuilder::segment(uint8_t kind, const ByteWriter& payload) {
  CYP_CHECK(!sealed_, "journal: segment appended after the seal");
  const size_t from = w_.size();
  w_.u8(kind);
  w_.uv(payload.size());
  w_.u32fixed(flate::crc32(payload.bytes()));
  w_.raw(payload.bytes());
  emitTail(from);
}

void JournalBuilder::appendEvents(int rank, std::span<const Event> events) {
  CYP_CHECK(rank >= 0 && rank < numRanks_, "journal: bad rank " << rank);
  if (events.empty()) return;
  ByteWriter p;
  p.uv(static_cast<uint64_t>(rank));
  p.uv(events.size());
  for (const Event& e : events) serializeEvent(e, p);
  segment(kEventsSegment, p);
  totalEvents_ += events.size();
}

void JournalBuilder::appendFinalize(int rank) {
  CYP_CHECK(rank >= 0 && rank < numRanks_, "journal: bad rank " << rank);
  ByteWriter p;
  p.uv(static_cast<uint64_t>(rank));
  segment(kFinalizeSegment, p);
}

void JournalBuilder::seal(const RankSet& lostRanks) {
  ByteWriter p;
  lostRanks.serialize(p);
  p.uv(totalEvents_);
  segment(kSealSegment, p);
  sealed_ = true;
}

JournalRecorder::JournalRecorder(JournalBuilder& builder, int rank,
                                 size_t flushEvery)
    : builder_(builder), rank_(rank),
      flushEvery_(std::max<size_t>(flushEvery, 1)) {
  buf_.reserve(flushEvery_);
}

void JournalRecorder::onEvent(const Event& e) {
  buf_.push_back(e);
  ++eventsSeen_;
  if (buf_.size() >= flushEvery_) flush();
}

void JournalRecorder::flush() {
  builder_.appendEvents(rank_, buf_);
  buf_.clear();
}

void JournalRecorder::onFinalize() {
  flush();
  builder_.appendFinalize(rank_);
  finalized_ = true;
}

JournalBuilder::Sink durableFileSink(io::IoBackend& io,
                                     const std::string& path) {
  std::shared_ptr<io::IoFile> file = io.openWrite(path);
  return [file](std::span<const uint8_t> chunk) {
    file->write(chunk);
    file->sync();
  };
}

std::vector<int> JournalRecovery::unfinalizedRanks() const {
  std::vector<int> out;
  for (const RankTrace& rt : trace.ranks) {
    if (std::find(finalizedRanks.begin(), finalizedRanks.end(), rt.rank) !=
        finalizedRanks.end())
      continue;
    if (lostRanks.contains(rt.rank)) continue;
    out.push_back(rt.rank);
  }
  return out;
}

namespace {

JournalRecovery readJournal(std::span<const uint8_t> data, bool strict) {
  ByteReader r(data);
  // Header damage is unrecoverable in both modes: without the magic and
  // rank count there is nothing to salvage against.
  CYP_CHECK(r.str() == "CYJ1", "journal: bad magic");
  const uint64_t nRanks = r.uv();
  CYP_CHECK(nRanks >= 1 && nRanks <= kMaxJournalRanks,
            "journal: implausible rank count " << nRanks);
  r.chargeAlloc(nRanks * sizeof(RankTrace));

  JournalRecovery out;
  out.trace.ranks.resize(nRanks);
  for (uint64_t i = 0; i < nRanks; ++i)
    out.trace.ranks[i].rank = static_cast<int32_t>(i);

  uint64_t eventsSeen = 0;
  while (!r.atEnd()) {
    const size_t segStart = r.pos();
    try {
      CYP_CHECK(!out.sealed, "journal: segment after the seal");
      const uint8_t kind = r.u8();
      CYP_CHECK(kind <= kSealSegment, "journal: unknown segment kind "
                                          << int(kind));
      const uint64_t len = r.uv();
      const uint32_t crc = r.u32fixed();
      std::span<const uint8_t> payload = r.raw(len);
      CYP_CHECK(flate::crc32(payload) == crc, "journal: segment CRC mismatch");

      // Parse the payload fully into locals before mutating the
      // recovery state, so a half-valid segment commits nothing.
      ByteReader p(payload);
      switch (kind) {
        case kEventsSegment: {
          const uint64_t rank = p.uv();
          CYP_CHECK(rank < nRanks, "journal: event segment for rank "
                                       << rank << " of " << nRanks);
          const uint64_t ne = p.checkedCount(p.uv(), 10);
          p.chargeAlloc(ne * sizeof(Event));
          std::vector<Event> events;
          events.reserve(ne);
          for (uint64_t k = 0; k < ne; ++k)
            events.push_back(deserializeEvent(p));
          CYP_CHECK(p.atEnd(), "journal: trailing bytes in event segment");
          auto& dst = out.trace.ranks[rank].events;
          dst.insert(dst.end(), events.begin(), events.end());
          eventsSeen += ne;
          break;
        }
        case kFinalizeSegment: {
          const uint64_t rank = p.uv();
          CYP_CHECK(rank < nRanks, "journal: finalize for rank " << rank
                                       << " of " << nRanks);
          CYP_CHECK(p.atEnd(), "journal: trailing bytes in finalize segment");
          const int rk = static_cast<int>(rank);
          CYP_CHECK(std::find(out.finalizedRanks.begin(),
                              out.finalizedRanks.end(),
                              rk) == out.finalizedRanks.end(),
                    "journal: rank " << rank << " finalized twice");
          out.finalizedRanks.push_back(rk);
          break;
        }
        case kSealSegment: {
          RankSet lost = RankSet::deserialize(p);
          const uint64_t total = p.uv();
          CYP_CHECK(p.atEnd(), "journal: trailing bytes in seal segment");
          CYP_CHECK(total == eventsSeen,
                    "journal: seal claims " << total << " events, journal has "
                                            << eventsSeen);
          for (int32_t rk : lost.ranks())
            CYP_CHECK(static_cast<uint64_t>(rk) < nRanks,
                      "journal: lost rank " << rk << " of " << nRanks);
          out.lostRanks = std::move(lost);
          out.sealed = true;
          break;
        }
      }
      ++out.segmentsRecovered;
    } catch (const Error&) {
      if (strict) throw;
      // Torn or corrupt segment: everything before `segStart` is intact;
      // discard the rest.
      out.bytesDiscarded = data.size() - segStart;
      return out;
    }
  }
  if (strict)
    CYP_CHECK(out.sealed, "journal: not sealed (torn or still being written)");
  return out;
}

}  // namespace

JournalRecovery recoverJournal(std::span<const uint8_t> data) {
  return readJournal(data, /*strict=*/false);
}

JournalRecovery parseJournal(std::span<const uint8_t> data) {
  return readJournal(data, /*strict=*/true);
}

}  // namespace cypress::trace
