#include "trace/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace cypress::trace {

std::vector<std::vector<uint64_t>> commMatrix(const RawTrace& t) {
  const size_t n = t.ranks.size();
  std::vector<std::vector<uint64_t>> m(n, std::vector<uint64_t>(n, 0));
  for (const RankTrace& r : t.ranks) {
    for (const Event& e : r.events) {
      if (e.op == ir::MpiOp::Send || e.op == ir::MpiOp::Isend) {
        CYP_CHECK(e.peer >= 0 && static_cast<size_t>(e.peer) < n,
                  "comm matrix: bad destination " << e.peer);
        m[static_cast<size_t>(r.rank)][static_cast<size_t>(e.peer)] +=
            static_cast<uint64_t>(e.bytes);
      }
    }
  }
  return m;
}

std::string renderMatrix(const std::vector<std::vector<uint64_t>>& m, int maxCells) {
  const size_t n = m.size();
  if (n == 0) return "";
  const size_t cells = std::min<size_t>(n, static_cast<size_t>(maxCells));
  const size_t stride = (n + cells - 1) / cells;

  // Aggregate into buckets.
  std::vector<std::vector<uint64_t>> agg(cells, std::vector<uint64_t>(cells, 0));
  uint64_t maxV = 0;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) {
      auto& cell = agg[i / stride][j / stride];
      cell += m[i][j];
      maxV = std::max(maxV, cell);
    }

  static const char glyphs[] = " .:-=+*#%@";
  std::ostringstream os;
  os << "receiver ->\n";
  for (size_t i = 0; i < cells; ++i) {
    for (size_t j = 0; j < cells; ++j) {
      const uint64_t v = agg[i][j];
      int g = 0;
      if (v > 0 && maxV > 0) {
        const double frac =
            std::log1p(static_cast<double>(v)) / std::log1p(static_cast<double>(maxV));
        g = 1 + static_cast<int>(frac * 8.0);
        g = std::min(g, 9);
      }
      os << glyphs[g];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cypress::trace
