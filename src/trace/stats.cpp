#include "trace/stats.hpp"

#include <algorithm>
#include <sstream>

#include "support/strings.hpp"

namespace cypress::trace {

TraceStats computeStats(const RawTrace& t) {
  TraceStats s;
  uint64_t minE = UINT64_MAX, maxE = 0, sumE = 0;
  for (const RankTrace& r : t.ranks) {
    minE = std::min(minE, static_cast<uint64_t>(r.events.size()));
    maxE = std::max(maxE, static_cast<uint64_t>(r.events.size()));
    sumE += r.events.size();
    for (const Event& e : r.events) {
      ++s.totalEvents;
      OpStats& op = s.byOp[e.op];
      ++op.count;
      op.durationNs += e.durationNs;
      s.computeNs += e.computeNs;
      s.commNs += e.durationNs;
      if (e.op == ir::MpiOp::Send || e.op == ir::MpiOp::Isend) {
        ++s.p2pMessages;
        s.p2pBytes += static_cast<uint64_t>(e.bytes);
        op.bytes += static_cast<uint64_t>(e.bytes);
        s.messageSizes[e.bytes]++;
      } else if (ir::isCollective(e.op)) {
        ++s.collectiveCalls;
        op.bytes += static_cast<uint64_t>(e.bytes);
      }
    }
  }
  if (!t.ranks.empty()) {
    s.minRankEvents = minE == UINT64_MAX ? 0 : minE;
    s.maxRankEvents = maxE;
    s.avgRankEvents = static_cast<double>(sumE) / static_cast<double>(t.ranks.size());
  }
  return s;
}

std::string TraceStats::toString() const {
  std::ostringstream os;
  os << totalEvents << " events; " << p2pMessages << " p2p messages ("
     << humanBytes(p2pBytes) << "); " << collectiveCalls << " collective calls\n";
  os << "events per rank: min " << minRankEvents << ", avg "
     << formatDouble(avgRankEvents, 1) << ", max " << maxRankEvents << "\n";
  const double total = static_cast<double>(computeNs + commNs);
  if (total > 0) {
    os << "time split: " << formatDouble(100.0 * commNs / total, 1)
       << "% communication, " << formatDouble(100.0 * computeNs / total, 1)
       << "% computation\n";
  }
  os << "by operation:\n";
  for (const auto& [op, st] : byOp) {
    os << "  " << ir::mpiOpName(op) << ": " << st.count;
    if (st.bytes) os << " (" << humanBytes(st.bytes) << ")";
    os << "\n";
  }
  if (!messageSizes.empty()) {
    os << messageSizes.size() << " distinct p2p message sizes";
    if (messageSizes.size() <= 6) {
      os << ":";
      for (const auto& [sz, n] : messageSizes)
        os << " " << humanBytes(static_cast<uint64_t>(sz)) << "x" << n;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cypress::trace
