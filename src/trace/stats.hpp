// Trace statistics: the summaries performance analysts ask of a
// communication trace (per-op counts and volumes, message-size
// distribution, point-to-point vs collective split, per-rank balance).
// Used by `cyptrace stats` and the analysis examples; works equally on
// raw and decompressed traces.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "trace/event.hpp"

namespace cypress::trace {

struct OpStats {
  uint64_t count = 0;
  uint64_t bytes = 0;
  uint64_t durationNs = 0;
};

struct TraceStats {
  uint64_t totalEvents = 0;
  uint64_t p2pMessages = 0;    // sends (blocking + non-blocking)
  uint64_t p2pBytes = 0;
  uint64_t collectiveCalls = 0;
  uint64_t computeNs = 0;
  uint64_t commNs = 0;

  std::map<ir::MpiOp, OpStats> byOp;
  std::map<int64_t, uint64_t> messageSizes;  // p2p send size -> count

  // Per-rank balance.
  uint64_t minRankEvents = 0;
  uint64_t maxRankEvents = 0;
  double avgRankEvents = 0.0;

  std::string toString() const;
};

TraceStats computeStats(const RawTrace& t);

}  // namespace cypress::trace
