// Crash-consistent trace journaling: the CYJ1 segmented on-disk format.
//
// A journal is an append-only byte stream a tracer can be killed in the
// middle of writing, at any byte, and still recover from. The layout:
//
//   header:  str "CYJ1" | uvarint numRanks
//   segment: u8 kind | uvarint payloadLen | u32 crc32(payload) | payload
//
// Segment kinds:
//   0 EVENTS   payload = uv rank | uv nEvents | nEvents serialized Events
//   1 FINALIZE payload = uv rank            (the rank reached MPI_Finalize)
//   2 SEAL     payload = RankSet lostRanks | uv totalEvents
//
// The SEAL segment is written exactly once, after all ranks have either
// finalized or been declared lost; a journal ending in a valid SEAL is
// *complete*. Anything else is a partial journal: recovery replays
// CRC-valid segments in order and stops at the first torn, corrupt, or
// missing segment, yielding every event up to the last complete segment
// — the same guarantee Recorder-style per-rank I/O tracing provides.
//
// Two readers share the segment walk:
//   recoverJournal() is the salvage path (`cyptrace recover`): it throws
//     only on a bad header and otherwise returns the recoverable prefix,
//     reporting how many trailing bytes were discarded.
//   parseJournal() is the strict path (verification, fuzzing): any
//     anomaly — torn segment, CRC mismatch, unsealed journal, trailing
//     bytes, event-count mismatch — raises cypress::Error.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "support/bytebuf.hpp"
#include "support/io.hpp"
#include "support/rank_set.hpp"
#include "trace/event.hpp"
#include "trace/observer.hpp"

namespace cypress::trace {

/// Append-only CYJ1 writer shared by all ranks of one run. Each append
/// produces one self-contained CRC-framed segment, so the byte stream is
/// recoverable after any prefix.
class JournalBuilder {
 public:
  /// Receives every appended chunk (the header, then each complete
  /// segment) immediately after it is written to the in-memory stream.
  /// A sink that writes-and-flushes to a file makes the on-disk journal
  /// exactly as crash-consistent as the format promises: a kill between
  /// calls tears the file at a segment boundary, a kill mid-call tears
  /// one segment — both recoverable prefixes.
  using Sink = std::function<void(std::span<const uint8_t>)>;

  explicit JournalBuilder(int numRanks, Sink sink = nullptr);

  /// Append an EVENTS segment for `rank` (no-op for an empty batch).
  void appendEvents(int rank, std::span<const Event> events);

  /// Append a FINALIZE segment: `rank` reached MPI_Finalize.
  void appendFinalize(int rank);

  /// Append the SEAL footer. `lostRanks` are ranks whose traces are
  /// known-incomplete (killed mid-run). Must be called at most once;
  /// no segment may follow it.
  void seal(const RankSet& lostRanks);

  bool sealed() const { return sealed_; }
  uint64_t totalEvents() const { return totalEvents_; }
  int numRanks() const { return numRanks_; }
  const std::vector<uint8_t>& bytes() const { return w_.bytes(); }
  std::vector<uint8_t> take() { return w_.take(); }

 private:
  void segment(uint8_t kind, const ByteWriter& payload);
  void emitTail(size_t from);

  ByteWriter w_;
  Sink sink_;
  int numRanks_;
  uint64_t totalEvents_ = 0;
  bool sealed_ = false;
};

/// Per-rank journaling observer: buffers events and flushes them to the
/// shared builder as EVENTS segments every `flushEvery` events (and at
/// finalize). A rank killed between flushes loses only its buffered
/// tail — everything already flushed is CRC-framed on disk.
class JournalRecorder final : public Observer {
 public:
  JournalRecorder(JournalBuilder& builder, int rank, size_t flushEvery = 64);

  void onEvent(const Event& e) override;
  void onStructEnter(int, int) override {}
  void onStructExit(int) override {}
  void onCallEnter(int, const std::string&) override {}
  void onCallExit(const std::string&) override {}
  void onFinalize() override;

  /// Flush buffered events to the builder without finalizing.
  void flush();

  bool finalized() const { return finalized_; }
  uint64_t eventsSeen() const { return eventsSeen_; }

 private:
  JournalBuilder& builder_;
  int rank_;
  size_t flushEvery_;
  std::vector<Event> buf_;
  uint64_t eventsSeen_ = 0;
  bool finalized_ = false;
};

/// Build a JournalBuilder sink that appends every chunk to `path`
/// through `io` with a write + fsync per chunk — the canonical durable
/// journal sink. fsync per segment is what upgrades the format's
/// "recoverable after any torn prefix" promise from surviving a process
/// kill to surviving a power cut; callers that only need kill-safety
/// still pay one syncs-per-flush, which the flushEvery batching
/// amortizes. The returned sink owns the open file (closed when the
/// last copy of the sink is destroyed) and propagates io::IoError from
/// the write path into the tracer.
JournalBuilder::Sink durableFileSink(io::IoBackend& io,
                                     const std::string& path);

/// The result of reading a CYJ1 journal.
struct JournalRecovery {
  RawTrace trace;                   ///< one RankTrace per rank, 0..numRanks-1
  bool sealed = false;              ///< the journal ended in a valid SEAL
  std::vector<int> finalizedRanks;  ///< ranks with a FINALIZE segment
  RankSet lostRanks;                ///< from the SEAL (empty when unsealed)
  size_t segmentsRecovered = 0;
  size_t bytesDiscarded = 0;        ///< trailing bytes after the last good segment

  /// Ranks that neither finalized nor were declared lost by a seal —
  /// their traces are prefixes of unknown completeness.
  std::vector<int> unfinalizedRanks() const;

  /// True when salvage discarded data or could not prove completeness:
  /// the journal is unsealed, trailing bytes were dropped, or some rank
  /// never finalized without being declared lost. A lossy recovery must
  /// be reported as such (non-zero `cyptrace recover` exit, the
  /// daemon's degraded-recover job outcome) — it is not a clean read.
  bool lossy() const {
    return !sealed || bytesDiscarded > 0 || !unfinalizedRanks().empty();
  }
};

/// Salvage a (possibly torn) journal: replay CRC-valid segments up to
/// the first damage. Throws cypress::Error only when the header itself
/// is unusable (bad magic / implausible rank count).
JournalRecovery recoverJournal(std::span<const uint8_t> data);

/// Strict read for verification and fuzzing: every anomaly (torn or
/// CRC-corrupt segment, unsealed journal, trailing bytes, seal/event
/// count mismatch) raises cypress::Error.
JournalRecovery parseJournal(std::span<const uint8_t> data);

}  // namespace cypress::trace
