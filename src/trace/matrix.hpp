// Communication-volume matrices (paper Figures 17 and 20): bytes sent
// between every (sender, receiver) pair, extracted from a raw trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace cypress::trace {

/// matrix[src][dst] = point-to-point bytes sent from src to dst.
std::vector<std::vector<uint64_t>> commMatrix(const RawTrace& t);

/// Render a coarse ASCII heat map of the matrix (log-scaled glyphs),
/// sampled down to at most `maxCells` rows/columns.
std::string renderMatrix(const std::vector<std::vector<uint64_t>>& m,
                         int maxCells = 32);

}  // namespace cypress::trace
