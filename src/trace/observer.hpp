// The PMPI-layer observer interface.
//
// The simulated MPI engine and the per-rank VM invoke these hooks as a
// rank executes — exactly the information the paper's customized PMPI
// library receives: every MPI call with its parameters, plus the
// instrumented structure markers (PMPI_COMM_Structure enter/exit) and
// user-function entries that let CYPRESS track its position in the CST.
//
// A tracer/compressor implements this interface once per rank. Raw
// tracing, ScalaTrace and CYPRESS are all observers, so every tool sees
// the identical event stream.
#pragma once

#include <string>

#include "trace/event.hpp"

namespace cypress::trace {

class Observer {
 public:
  virtual ~Observer() = default;

  /// An MPI operation was executed (blocking ops: after completion;
  /// non-blocking starts: at posting; waits: after completion).
  virtual void onEvent(const Event& e) = 0;

  /// Instrumented structure markers (loops and branch paths).
  virtual void onStructEnter(int structId, int pathIndex) = 0;
  virtual void onStructExit(int structId) = 0;

  /// User-defined function call boundaries (the dynamic counterpart of
  /// the CST's inlined call instances).
  virtual void onCallEnter(int callInstrId, const std::string& callee) = 0;
  virtual void onCallExit(const std::string& callee) = 0;

  /// The rank finished executing (MPI_Finalize).
  virtual void onFinalize() = 0;
};

/// Observer that ignores everything (tracing disabled baseline).
class NullObserver final : public Observer {
 public:
  void onEvent(const Event&) override {}
  void onStructEnter(int, int) override {}
  void onStructExit(int) override {}
  void onCallEnter(int, const std::string&) override {}
  void onCallExit(const std::string&) override {}
  void onFinalize() override {}
};

/// Observer that appends raw events to a RankTrace (the uncompressed
/// baseline tracer).
class RawRecorder final : public Observer {
 public:
  explicit RawRecorder(RankTrace& out) : out_(out) {}
  void onEvent(const Event& e) override { out_.events.push_back(e); }
  void onStructEnter(int, int) override {}
  void onStructExit(int) override {}
  void onCallEnter(int, const std::string&) override {}
  void onCallExit(const std::string&) override {}
  void onFinalize() override {}

 private:
  RankTrace& out_;
};

/// Fan-out observer: forwards every hook to several observers, so one
/// run can feed multiple tools at once (each is still charged its own
/// per-hook CPU time by the driver).
class TeeObserver final : public Observer {
 public:
  void add(Observer* o) { sinks_.push_back(o); }
  void onEvent(const Event& e) override {
    for (auto* o : sinks_) o->onEvent(e);
  }
  void onStructEnter(int structId, int pathIndex) override {
    for (auto* o : sinks_) o->onStructEnter(structId, pathIndex);
  }
  void onStructExit(int structId) override {
    for (auto* o : sinks_) o->onStructExit(structId);
  }
  void onCallEnter(int callInstrId, const std::string& callee) override {
    for (auto* o : sinks_) o->onCallEnter(callInstrId, callee);
  }
  void onCallExit(const std::string& callee) override {
    for (auto* o : sinks_) o->onCallExit(callee);
  }
  void onFinalize() override {
    for (auto* o : sinks_) o->onFinalize();
  }

 private:
  std::vector<Observer*> sinks_;
};

}  // namespace cypress::trace
