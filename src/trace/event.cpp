#include "trace/event.hpp"

#include <sstream>

#include "support/error.hpp"

namespace cypress::trace {

std::string Event::toString() const {
  std::ostringstream os;
  os << ir::mpiOpName(op);
  if (peer != kNoPeer) os << " peer=" << peer;
  if (bytes) os << " bytes=" << bytes;
  if (tag >= 0) os << " tag=" << tag;
  os << " comm=" << comm << " site=" << callSiteId;
  if (reqId >= 0) os << " req=" << reqId;
  if (matchedSource >= 0) os << " matched=" << matchedSource;
  return os.str();
}

void serializeEvent(const Event& e, ByteWriter& w) {
  w.u8(static_cast<uint8_t>(e.op));
  w.sv(e.peer);
  w.sv(e.bytes);
  w.sv(e.tag);
  w.sv(e.comm);
  w.sv(e.callSiteId);
  w.sv(e.reqId);
  w.sv(e.matchedSource);
  w.uv(e.computeNs);
  w.uv(e.durationNs);
}

Event deserializeEvent(ByteReader& r) {
  Event e;
  const uint8_t op = r.u8();
  CYP_CHECK(ir::isValidMpiOp(op), "raw trace: bad op byte " << int(op));
  e.op = static_cast<ir::MpiOp>(op);
  e.peer = static_cast<int32_t>(r.sv());
  e.bytes = r.sv();
  e.tag = static_cast<int32_t>(r.sv());
  e.comm = static_cast<int32_t>(r.sv());
  e.callSiteId = static_cast<int32_t>(r.sv());
  e.reqId = r.sv();
  e.matchedSource = static_cast<int32_t>(r.sv());
  e.computeNs = r.uv();
  e.durationNs = r.uv();
  return e;
}

size_t RawTrace::totalEvents() const {
  size_t n = 0;
  for (const auto& r : ranks) n += r.events.size();
  return n;
}

void RawTrace::serializeTo(ByteWriter& w) const {
  w.str("CYTR");
  w.uv(ranks.size());
  for (const auto& r : ranks) {
    w.sv(r.rank);
    w.uv(r.events.size());
    for (const Event& e : r.events) serializeEvent(e, w);
  }
}

std::vector<uint8_t> RawTrace::serialize() const {
  ByteWriter w;
  serializeTo(w);
  return w.take();
}

size_t RawTrace::serializedBytes() const {
  // Size accounting without materializing the stream: a discarding
  // sink, counted by the writer.
  NullSink null;
  ByteWriter w(null);
  serializeTo(w);
  w.flush();
  return w.size();
}

RawTrace RawTrace::deserialize(std::span<const uint8_t> data) {
  ByteReader r(data);
  CYP_CHECK(r.str() == "CYTR", "raw trace: bad magic");
  RawTrace t;
  // Per rank: sv rank + uv eventCount = 2 bytes minimum.
  const uint64_t n = r.checkedCount(r.uv(), 2);
  r.chargeAlloc(n * sizeof(RankTrace));
  t.ranks.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    t.ranks[i].rank = static_cast<int32_t>(r.sv());
    // A serialized event is at least 10 bytes (u8 op + 7 varints + 2
    // varint times, one byte each).
    const uint64_t ne = r.checkedCount(r.uv(), 10);
    r.chargeAlloc(ne * sizeof(Event));
    t.ranks[i].events.reserve(ne);
    for (uint64_t k = 0; k < ne; ++k) t.ranks[i].events.push_back(deserializeEvent(r));
  }
  CYP_CHECK(r.atEnd(), "raw trace: trailing bytes");
  return t;
}

}  // namespace cypress::trace
