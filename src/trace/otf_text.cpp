#include "trace/otf_text.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace cypress::trace {

namespace {

const char* opToken(ir::MpiOp op) {
  switch (op) {
    case ir::MpiOp::Send: return "SEND";
    case ir::MpiOp::Recv: return "RECV";
    case ir::MpiOp::Isend: return "ISEND";
    case ir::MpiOp::Irecv: return "IRECV";
    case ir::MpiOp::Wait: return "WAIT";
    case ir::MpiOp::Waitall: return "WAITALL";
    case ir::MpiOp::Waitany: return "WAITANY";
    case ir::MpiOp::Waitsome: return "WAITSOME";
    case ir::MpiOp::Barrier: return "BARRIER";
    case ir::MpiOp::Bcast: return "BCAST";
    case ir::MpiOp::Reduce: return "REDUCE";
    case ir::MpiOp::Allreduce: return "ALLREDUCE";
    case ir::MpiOp::Allgather: return "ALLGATHER";
    case ir::MpiOp::Alltoall: return "ALLTOALL";
    case ir::MpiOp::Gather: return "GATHER";
    case ir::MpiOp::Scatter: return "SCATTER";
    case ir::MpiOp::Scan: return "SCAN";
    case ir::MpiOp::CommSplit: return "COMMSPLIT";
  }
  return "?";
}

bool opFromToken(const std::string& s, ir::MpiOp* out) {
  static const std::pair<const char*, ir::MpiOp> table[] = {
      {"SEND", ir::MpiOp::Send},           {"RECV", ir::MpiOp::Recv},
      {"ISEND", ir::MpiOp::Isend},         {"IRECV", ir::MpiOp::Irecv},
      {"WAIT", ir::MpiOp::Wait},           {"WAITALL", ir::MpiOp::Waitall},
      {"WAITANY", ir::MpiOp::Waitany},     {"WAITSOME", ir::MpiOp::Waitsome},
      {"BARRIER", ir::MpiOp::Barrier},     {"BCAST", ir::MpiOp::Bcast},
      {"REDUCE", ir::MpiOp::Reduce},       {"ALLREDUCE", ir::MpiOp::Allreduce},
      {"ALLGATHER", ir::MpiOp::Allgather}, {"ALLTOALL", ir::MpiOp::Alltoall},
      {"GATHER", ir::MpiOp::Gather},       {"SCATTER", ir::MpiOp::Scatter},
      {"SCAN", ir::MpiOp::Scan},           {"COMMSPLIT", ir::MpiOp::CommSplit},
  };
  for (const auto& [tok, op] : table) {
    if (s == tok) {
      *out = op;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string toOtfText(const RawTrace& t) {
  std::string out;
  out += "OTFX 1\n";
  char buf[256];
  for (const RankTrace& r : t.ranks) {
    std::snprintf(buf, sizeof buf, "RANK %d %zu\n", r.rank, r.events.size());
    out += buf;
    for (const Event& e : r.events) {
      std::snprintf(buf, sizeof buf,
                    "E %s peer=%d bytes=%" PRId64
                    " tag=%d comm=%d site=%d req=%" PRId64
                    " match=%d compute=%" PRIu64 " dur=%" PRIu64 "\n",
                    opToken(e.op), e.peer, e.bytes, e.tag, e.comm, e.callSiteId,
                    e.reqId, e.matchedSource, e.computeNs, e.durationNs);
      out += buf;
    }
  }
  return out;
}

RawTrace fromOtfText(const std::string& text) {
  RawTrace t;
  const auto lines = split(text, '\n');
  size_t ln = 0;
  auto fail = [&](const std::string& msg) -> void {
    throw Error("otf:" + std::to_string(ln + 1) + ": " + msg);
  };
  if (lines.empty() || lines[0] != "OTFX 1") fail("bad header");
  RankTrace* cur = nullptr;
  for (ln = 1; ln < lines.size(); ++ln) {
    const std::string& line = lines[ln];
    if (line.empty()) continue;
    if (line.rfind("RANK ", 0) == 0) {
      int rank = 0;
      size_t count = 0;
      if (std::sscanf(line.c_str(), "RANK %d %zu", &rank, &count) != 2)
        fail("bad RANK line");
      t.ranks.push_back(RankTrace{rank, {}});
      cur = &t.ranks.back();
      cur->events.reserve(count);
      continue;
    }
    if (line.rfind("E ", 0) == 0) {
      if (cur == nullptr) fail("event before any RANK line");
      char opTok[32];
      Event e;
      long long bytes = 0, req = 0;
      unsigned long long comp = 0, dur = 0;
      const int got = std::sscanf(
          line.c_str(),
          "E %31s peer=%d bytes=%lld tag=%d comm=%d site=%d req=%lld "
          "match=%d compute=%llu dur=%llu",
          opTok, &e.peer, &bytes, &e.tag, &e.comm, &e.callSiteId, &req,
          &e.matchedSource, &comp, &dur);
      if (got != 10) fail("bad event line");
      if (!opFromToken(opTok, &e.op)) fail(std::string("unknown op ") + opTok);
      e.bytes = bytes;
      e.reqId = req;
      e.computeNs = comp;
      e.durationNs = dur;
      cur->events.push_back(e);
      continue;
    }
    fail("unrecognized line '" + line + "'");
  }
  return t;
}

}  // namespace cypress::trace
