// Canonical communication-trace event records.
//
// One Event is what the PMPI layer observes for one MPI call on one
// rank. The raw (uncompressed) per-rank event sequence is the ground
// truth every compressor in this repository is measured against: the
// "Gzip" baseline compresses its serialized bytes, ScalaTrace and
// CYPRESS compress its structure, and decompression must reproduce it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "support/bytebuf.hpp"

namespace cypress::trace {

/// Sentinel peer values.
constexpr int32_t kNoPeer = -2;
constexpr int32_t kAnySource = -1;

struct Event {
  ir::MpiOp op = ir::MpiOp::Barrier;
  int32_t peer = kNoPeer;      // dst (sends), src (recvs), root (rooted colls)
  int64_t bytes = 0;           // message / contribution size
  int32_t tag = -1;            // p2p tag
  int32_t comm = 0;            // communicator id (0 = WORLD)
  int32_t callSiteId = -1;     // static call site (module-unique)
  int64_t reqId = -1;          // request created (Isend/Irecv) / completed (Wait*)
  int32_t matchedSource = -1;  // wildcard recvs: actual source on completion
  uint64_t computeNs = 0;      // local computation since the previous event
  uint64_t durationNs = 0;     // time spent inside the operation

  /// Equality of the *communication content* (everything except timing).
  bool sameComm(const Event& o) const {
    return op == o.op && peer == o.peer && bytes == o.bytes && tag == o.tag &&
           comm == o.comm && callSiteId == o.callSiteId && reqId == o.reqId &&
           matchedSource == o.matchedSource;
  }

  bool operator==(const Event&) const = default;

  std::string toString() const;
};

/// Serialize one event (varint-packed).
void serializeEvent(const Event& e, ByteWriter& w);
Event deserializeEvent(ByteReader& r);

/// A raw per-rank trace.
struct RankTrace {
  int32_t rank = 0;
  std::vector<Event> events;
};

/// Whole-program raw trace with serialization. The serialized form is
/// the input to the Gzip baseline and the unit of "uncompressed size".
struct RawTrace {
  std::vector<RankTrace> ranks;

  size_t totalEvents() const;
  /// Stream the CYTR form into `w` (which may be sink-backed: the
  /// bytes then flow to compression/disk as they are produced).
  void serializeTo(ByteWriter& w) const;
  std::vector<uint8_t> serialize() const;
  static RawTrace deserialize(std::span<const uint8_t> data);
  /// Serialized size, computed by a counting pass over a discarding
  /// sink — not by materializing the full byte vector.
  size_t serializedBytes() const;
};

}  // namespace cypress::trace
