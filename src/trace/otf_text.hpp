// OTF-style line-oriented text trace format.
//
// The paper's Gzip baseline is the compression used by the Open Trace
// Format library [26]: a human-readable per-event record stream with a
// general-purpose codec on top. This module provides that interchange
// format: one line per event, ordered by rank, fully lossless, and easy
// to diff/grep. Pair with flate for the "OTF+zlib"-style byte counts.
#pragma once

#include <string>

#include "trace/event.hpp"

namespace cypress::trace {

/// Render a whole trace as OTF-style text.
std::string toOtfText(const RawTrace& t);

/// Parse text produced by toOtfText. Throws cypress::Error with a line
/// number on malformed input.
RawTrace fromOtfText(const std::string& text);

}  // namespace cypress::trace
