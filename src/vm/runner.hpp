// Deterministic round-robin scheduler over per-rank VMs.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/ir.hpp"
#include "simmpi/engine.hpp"
#include "trace/observer.hpp"
#include "vm/vm.hpp"

namespace cypress::vm {

struct RunResult {
  uint64_t executionNs = 0;           // measured program time (max rank clock)
  uint64_t totalInstructions = 0;
  std::vector<uint64_t> rankCommNs;   // per-rank time inside MPI ops
  std::vector<uint64_t> rankClockNs;  // per-rank final clock
};

/// Execute one program on `engine` with one observer per rank (entries
/// may be null). Throws cypress::Error on deadlock, with a dump of every
/// blocked rank's pending operation.
RunResult run(const ir::Module& m, simmpi::Engine& engine,
              const std::vector<trace::Observer*>& observers,
              uint64_t instructionLimitPerRank = 1ull << 40);

}  // namespace cypress::vm
