// Deterministic epoch scheduler over per-rank VMs.
//
// Each iteration ("epoch") has two phases:
//
//   1. Local phase — every runnable rank executes instructions up to
//      its next MPI call (RankVM::runLocal). Local phases touch only
//      rank-private state, so they fan out on the fixed-order thread
//      pool when RunOptions::threads > 1.
//   2. Commit phase — on the calling thread, in ascending rank order,
//      each rank performs its parked engine interaction
//      (RankVM::commitStep): issue the prepared MPI call, poll a
//      blocked one, or finalize a finished rank.
//
// Which ranks are parked where at each epoch is a pure function of the
// program, and all cross-rank effects (message matching, collectives,
// trace emission, journal flushes) happen in commit order — so the run
// and every artifact it produces are byte-identical at any thread
// count, including threads=1.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "simmpi/engine.hpp"
#include "trace/observer.hpp"
#include "vm/vm.hpp"

namespace cypress::vm {

/// What to do when no rank can make progress (deadlock / hang).
///   Throw:   raise cypress::Error with the engine's per-rank stall dump.
///   Salvage: stop the run and report the stalled ranks in RunResult, so
///            the caller can still recover the surviving ranks' traces.
enum class OnStall : uint8_t { Throw, Salvage };

struct RunOptions {
  uint64_t instructionLimitPerRank = 1ull << 40;
  OnStall onStall = OnStall::Throw;
  /// Lanes of concurrency for the local phases (1 = fully sequential).
  /// Any value produces byte-identical traces; this is purely a speed
  /// knob for the run stage.
  int threads = 1;
  /// Cooperative cancellation (the cyptraced per-job watchdog): when the
  /// pointed-to flag becomes true, the run stops at the next epoch
  /// boundary. The remaining ranks are reported exactly like a stall —
  /// per OnStall, with the engine's per-rank diagnostics — plus
  /// RunResult::cancelled set, so a watchdogged job is distinguishable
  /// from a genuine deadlock.
  const std::atomic<bool>* cancel = nullptr;
};

struct RunResult {
  uint64_t executionNs = 0;           // measured program time (max rank clock)
  uint64_t totalInstructions = 0;
  std::vector<uint64_t> rankCommNs;   // per-rank time inside MPI ops
  std::vector<uint64_t> rankClockNs;  // per-rank final clock
  std::vector<int> deadRanks;         // ranks killed by the fault plan
  std::vector<int> stalledRanks;      // ranks still blocked at salvage time
  std::string stallDiagnostics;       // per-rank dump when the run stalled
  bool cancelled = false;             // stopped by RunOptions::cancel

  /// True when every rank ran to MPI_Finalize.
  bool clean() const {
    return deadRanks.empty() && stalledRanks.empty() && !cancelled;
  }
};

/// Execute one program on `engine` with one observer per rank (entries
/// may be null). On deadlock, OnStall::Throw (the default) raises
/// cypress::Error with a per-rank diagnostic dump; OnStall::Salvage
/// returns normally with the stalled ranks recorded in the result.
RunResult run(const ir::Module& m, simmpi::Engine& engine,
              const std::vector<trace::Observer*>& observers,
              const RunOptions& opts);

/// Backward-compatible overload (OnStall::Throw).
RunResult run(const ir::Module& m, simmpi::Engine& engine,
              const std::vector<trace::Observer*>& observers,
              uint64_t instructionLimitPerRank = 1ull << 40);

}  // namespace cypress::vm
