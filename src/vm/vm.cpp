#include "vm/vm.hpp"

#include "support/error.hpp"

namespace cypress::vm {

namespace {

/// Expression environment bound to a frame.
class FrameEnv final : public ir::VarSource {
 public:
  FrameEnv(const std::vector<int64_t>& vars, int rank, int size)
      : vars_(vars), rank_(rank), size_(size) {}
  int64_t var(int slot) const override {
    CYP_CHECK(slot >= 0 && static_cast<size_t>(slot) < vars_.size(),
              "var slot " << slot << " out of range");
    return vars_[static_cast<size_t>(slot)];
  }
  int64_t rank() const override { return rank_; }
  int64_t size() const override { return size_; }

 private:
  const std::vector<int64_t>& vars_;
  int rank_, size_;
};

}  // namespace

RankVM::RankVM(const ir::Module& m, int rank, simmpi::Engine& engine,
               trace::Observer* observer)
    : module_(m), rank_(rank), engine_(engine), observer_(observer) {
  const ir::Function* main = m.function(m.entry);
  CYP_CHECK(main != nullptr, "module has no entry function");
  CYP_CHECK(main->numParams == 0, "entry function must take no parameters");
  engine_.setObserver(rank, observer);
  pushFrame(main, {});
}

int64_t RankVM::eval(const ir::Expr& e) const {
  FrameEnv env(frames_.back().vars, rank_, engine_.numRanks());
  return ir::evalExpr(e, env);
}

void RankVM::countInstr() {
  CYP_CHECK(++instructions_ <= instructionLimit_,
            "rank " << rank_ << " exceeded the instruction limit — runaway loop?");
}

void RankVM::pushFrame(const ir::Function* fn, std::vector<int64_t> args) {
  Frame f;
  f.fn = fn;
  f.vars.assign(static_cast<size_t>(fn->numVars()), 0);
  for (size_t i = 0; i < args.size(); ++i) f.vars[i] = args[i];
  frames_.push_back(std::move(f));
}

void RankVM::popFrame() {
  const ir::Function* fn = frames_.back().fn;
  frames_.pop_back();
  if (!frames_.empty() && observer_) observer_->onCallExit(fn->name);
  if (frames_.empty()) {
    // The program is done, but finalizeRank() flushes the observer —
    // journal recorders write into a shared builder — so it is deferred
    // to the commit phase, where it runs in deterministic rank order.
    finished_ = true;
    needsFinalize_ = true;
  }
}

const ir::Instr* RankVM::currentInstr() const {
  const Frame& f = frames_.back();
  const auto& instrs = f.fn->blocks[static_cast<size_t>(f.block)].instrs;
  if (f.instr < instrs.size()) return &instrs[f.instr];
  return nullptr;
}

bool RankVM::executeInstr(const ir::Instr& i) {
  Frame& f = frames_.back();
  switch (i.kind) {
    case ir::InstrKind::Assign:
      f.vars[static_cast<size_t>(i.destVar)] = eval(*i.expr);
      return true;
    case ir::InstrKind::Compute: {
      const int64_t ns = eval(*i.expr);
      CYP_CHECK(ns >= 0, "negative compute() cost");
      engine_.addCompute(rank_, static_cast<uint64_t>(ns));
      return true;
    }
    case ir::InstrKind::StructEnter:
      if (observer_) observer_->onStructEnter(i.structId, -1);
      return true;
    case ir::InstrKind::StructExit:
      if (observer_) observer_->onStructExit(i.structId);
      return true;
    case ir::InstrKind::Call: {
      const ir::Function* callee = module_.function(i.callee);
      CYP_CHECK(callee != nullptr, "call to unknown function " << i.callee);
      std::vector<int64_t> args;
      args.reserve(i.callArgs.size());
      for (const auto& a : i.callArgs) args.push_back(eval(*a));
      if (observer_) observer_->onCallEnter(i.callInstrId, i.callee);
      // Advance past the call before pushing so the frame resumes after it.
      ++f.instr;
      pushFrame(callee, std::move(args));
      // Signal the caller loop to not advance again.
      return false;
    }
    case ir::InstrKind::MpiCall:
      CYP_FAIL("MpiCall reached executeInstr — handled by the commit phase");
  }
  CYP_FAIL("bad instr kind");
}

simmpi::OpDesc RankVM::buildOpDesc(const ir::Instr& i) const {
  const Frame& f = frames_.back();
  simmpi::OpDesc d;
  d.op = i.mpiOp;
  d.callSiteId = i.callSiteId;
  if (i.commExpr) d.comm = static_cast<int32_t>(eval(*i.commExpr));
  switch (i.mpiOp) {
    case ir::MpiOp::Send:
    case ir::MpiOp::Isend:
    case ir::MpiOp::Recv:
    case ir::MpiOp::Irecv:
      d.peer = static_cast<int32_t>(eval(*i.args[0]));
      d.bytes = eval(*i.args[1]);
      d.tag = static_cast<int32_t>(eval(*i.args[2]));
      break;
    case ir::MpiOp::Bcast:
    case ir::MpiOp::Reduce:
    case ir::MpiOp::Gather:
    case ir::MpiOp::Scatter:
      d.peer = static_cast<int32_t>(eval(*i.args[0]));
      d.bytes = eval(*i.args[1]);
      break;
    case ir::MpiOp::Allreduce:
    case ir::MpiOp::Allgather:
    case ir::MpiOp::Alltoall:
    case ir::MpiOp::Scan:
      d.bytes = eval(*i.args[0]);
      break;
    case ir::MpiOp::Wait:
      d.waitReqId = f.vars[static_cast<size_t>(i.reqVar)];
      break;
    case ir::MpiOp::CommSplit:
      d.color = static_cast<int32_t>(eval(*i.args[0]));
      d.key = static_cast<int32_t>(eval(*i.args[1]));
      break;
    case ir::MpiOp::Waitall:
    case ir::MpiOp::Waitany:
    case ir::MpiOp::Waitsome:
    case ir::MpiOp::Barrier:
      break;
  }
  return d;
}

void RankVM::executeTerminator() {
  Frame& f = frames_.back();
  const ir::Terminator& t = f.fn->blocks[static_cast<size_t>(f.block)].term;
  switch (t.kind) {
    case ir::TermKind::Br:
      f.block = t.target;
      f.instr = 0;
      return;
    case ir::TermKind::CondBr:
      f.block = eval(*t.cond) != 0 ? t.target : t.elseTarget;
      f.instr = 0;
      return;
    case ir::TermKind::Ret:
      popFrame();
      return;
  }
}

RankVM::Local RankVM::runLocal() {
  if (finished_) return Local::Finished;
  if (waitingOnEngine_) return Local::Waiting;
  if (atMpi_) return Local::AtMpi;

  while (!finished_) {
    const ir::Instr* i = currentInstr();
    if (i == nullptr) {
      countInstr();
      executeTerminator();
      continue;
    }
    if (i->kind == ir::InstrKind::MpiCall) {
      // Argument evaluation is rank-local, so it belongs in the parallel
      // phase; the call itself is issued at commit and counted there.
      pendingDesc_ = buildOpDesc(*i);
      atMpi_ = true;
      return Local::AtMpi;
    }
    countInstr();
    if (executeInstr(*i)) ++frames_.back().instr;
    // else: a Call pushed a frame; continue in the callee.
  }
  return Local::Finished;
}

bool RankVM::commitStep() {
  if (needsFinalize_) {
    engine_.finalizeRank(rank_);
    needsFinalize_ = false;
    return true;
  }
  if (waitingOnEngine_) {
    if (engine_.poll(rank_) == simmpi::OpStatus::Blocked) return false;
    waitingOnEngine_ = false;
    const ir::Instr* blocked = currentInstr();
    if (blocked != nullptr && blocked->kind == ir::InstrKind::MpiCall &&
        blocked->mpiOp == ir::MpiOp::CommSplit) {
      frames_.back().vars[static_cast<size_t>(blocked->reqVar)] =
          engine_.takeOpResult(rank_);
    }
    ++frames_.back().instr;  // past the blocking MPI instruction
    return true;
  }
  if (atMpi_) {
    atMpi_ = false;
    countInstr();
    const ir::Instr& i = *currentInstr();
    int64_t reqId = -1;
    const simmpi::OpStatus st = engine_.execute(rank_, pendingDesc_, &reqId);
    if (st == simmpi::OpStatus::Failed) {
      // Killed by the fault plan: abandon the frame stack without
      // finalizing the rank or its observer.
      died_ = true;
      finished_ = true;
      return true;
    }
    Frame& f = frames_.back();
    if (ir::isNonBlockingStart(i.mpiOp))
      f.vars[static_cast<size_t>(i.reqVar)] = reqId;
    if (st == simmpi::OpStatus::Blocked) {
      waitingOnEngine_ = true;
      return true;  // issuing counts as progress even when it blocks
    }
    if (i.mpiOp == ir::MpiOp::CommSplit)
      f.vars[static_cast<size_t>(i.reqVar)] = engine_.takeOpResult(rank_);
    ++f.instr;
    return true;
  }
  return false;
}

}  // namespace cypress::vm
