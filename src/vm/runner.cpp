#include "vm/runner.hpp"

#include <memory>

#include "support/error.hpp"

namespace cypress::vm {

RunResult run(const ir::Module& m, simmpi::Engine& engine,
              const std::vector<trace::Observer*>& observers,
              const RunOptions& opts) {
  const int numRanks = engine.numRanks();
  CYP_CHECK(static_cast<int>(observers.size()) == numRanks,
            "observers size " << observers.size() << " != ranks " << numRanks);

  std::vector<std::unique_ptr<RankVM>> vms;
  vms.reserve(static_cast<size_t>(numRanks));
  for (int r = 0; r < numRanks; ++r) {
    vms.push_back(std::make_unique<RankVM>(m, r, engine,
                                           observers[static_cast<size_t>(r)]));
    vms.back()->setInstructionLimit(opts.instructionLimitPerRank);
  }

  RunResult out;
  int finished = 0;
  engine.takeProgressFlag();  // reset
  while (finished < numRanks) {
    bool sweepProgress = false;
    for (auto& vmp : vms) {
      if (vmp->finished()) continue;
      const uint64_t before = vmp->instructionsExecuted();
      const StepResult r = vmp->step();
      if (r == StepResult::Finished) {
        ++finished;
        sweepProgress = true;
      } else if (vmp->instructionsExecuted() != before) {
        sweepProgress = true;
      }
    }
    if (!sweepProgress && !engine.takeProgressFlag() && finished < numRanks) {
      // No VM advanced and the engine completed nothing: every remaining
      // rank is permanently stuck. Terminate deterministically.
      std::vector<int> active;
      for (int r = 0; r < numRanks; ++r)
        if (!vms[static_cast<size_t>(r)]->finished()) active.push_back(r);
      if (opts.onStall == OnStall::Throw) engine.failStalled(active);
      out.stalledRanks = active;
      out.stallDiagnostics = engine.stallDump("stalled ranks:", active);
      break;
    }
  }

  out.deadRanks = engine.deadRanks();
  out.executionNs = engine.executionTimeNs();
  for (int r = 0; r < numRanks; ++r) {
    out.totalInstructions += vms[static_cast<size_t>(r)]->instructionsExecuted();
    out.rankCommNs.push_back(engine.commTimeNs(r));
    out.rankClockNs.push_back(engine.clockNs(r));
  }
  return out;
}

RunResult run(const ir::Module& m, simmpi::Engine& engine,
              const std::vector<trace::Observer*>& observers,
              uint64_t instructionLimitPerRank) {
  RunOptions opts;
  opts.instructionLimitPerRank = instructionLimitPerRank;
  return run(m, engine, observers, opts);
}

}  // namespace cypress::vm
