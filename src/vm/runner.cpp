#include "vm/runner.hpp"

#include <algorithm>
#include <memory>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace cypress::vm {

namespace {

uint64_t totalInstructions(const std::vector<std::unique_ptr<RankVM>>& vms) {
  uint64_t n = 0;
  for (const auto& v : vms) n += v->instructionsExecuted();
  return n;
}

}  // namespace

RunResult run(const ir::Module& m, simmpi::Engine& engine,
              const std::vector<trace::Observer*>& observers,
              const RunOptions& opts) {
  const int numRanks = engine.numRanks();
  CYP_CHECK(static_cast<int>(observers.size()) == numRanks,
            "observers size " << observers.size() << " != ranks " << numRanks);
  const int threads = std::max(1, opts.threads);

  std::vector<std::unique_ptr<RankVM>> vms;
  vms.reserve(static_cast<size_t>(numRanks));
  for (int r = 0; r < numRanks; ++r) {
    vms.push_back(std::make_unique<RankVM>(m, r, engine,
                                           observers[static_cast<size_t>(r)]));
    vms.back()->setInstructionLimit(opts.instructionLimitPerRank);
  }

  RunResult out;
  engine.takeProgressFlag();  // reset
  std::vector<size_t> local;  // ranks that get a local phase this epoch
  local.reserve(static_cast<size_t>(numRanks));
  int finishedCount = 0;
  while (finishedCount < numRanks) {
    // Cooperative cancellation: checked once per epoch, so the watchdog
    // latency is one epoch, and cancellation points are deterministic
    // with respect to the commit order (never mid-commit).
    if (opts.cancel && opts.cancel->load(std::memory_order_relaxed)) {
      std::vector<int> active;
      for (int r = 0; r < numRanks; ++r)
        if (!vms[static_cast<size_t>(r)]->finished()) active.push_back(r);
      out.cancelled = true;
      out.stalledRanks = active;
      out.stallDiagnostics =
          engine.stallDump("run cancelled; active ranks:", active);
      if (opts.onStall == OnStall::Throw)
        throw Error("run cancelled\n" + out.stallDiagnostics);
      break;
    }
    // Phase 1 — parallel local slices. A rank joins the local phase
    // unless it is done or parked on the engine; the slice runs to the
    // rank's next MPI call, preparing that call's arguments. The chunked
    // fan-out and the barrier below are the only thread interaction:
    // local phases share no mutable state with each other.
    local.clear();
    for (size_t r = 0; r < vms.size(); ++r)
      if (!vms[r]->finished() && !vms[r]->hasCommitWork()) local.push_back(r);
    const uint64_t instrBefore = totalInstructions(vms);
    parallelFor(local.size(), threads,
                [&](size_t i) { vms[local[i]]->runLocal(); });

    // Phase 2 — commit in ascending rank order on this thread. Every
    // cross-rank effect (matching, collectives, event emission, journal
    // flushes, finalization) happens here, so its order — and therefore
    // every emitted artifact — is independent of the thread count.
    bool commitProgress = false;
    for (auto& v : vms) {
      if (v->fullyFinished()) continue;
      if (v->hasCommitWork() && v->commitStep()) commitProgress = true;
    }

    const bool progress = commitProgress ||
                          totalInstructions(vms) != instrBefore ||
                          engine.takeProgressFlag();
    finishedCount = 0;
    for (const auto& v : vms)
      if (v->fullyFinished()) ++finishedCount;
    if (!progress && finishedCount < numRanks) {
      // No rank executed an instruction, no commit advanced, and the
      // engine completed nothing: every remaining rank is permanently
      // stuck. Terminate deterministically.
      std::vector<int> active;
      for (int r = 0; r < numRanks; ++r)
        if (!vms[static_cast<size_t>(r)]->finished()) active.push_back(r);
      if (opts.onStall == OnStall::Throw) engine.failStalled(active);
      out.stalledRanks = active;
      out.stallDiagnostics = engine.stallDump("stalled ranks:", active);
      break;
    }
  }

  out.deadRanks = engine.deadRanks();
  out.executionNs = engine.executionTimeNs();
  for (int r = 0; r < numRanks; ++r) {
    out.totalInstructions += vms[static_cast<size_t>(r)]->instructionsExecuted();
    out.rankCommNs.push_back(engine.commTimeNs(r));
    out.rankClockNs.push_back(engine.clockNs(r));
  }
  return out;
}

RunResult run(const ir::Module& m, simmpi::Engine& engine,
              const std::vector<trace::Observer*>& observers,
              uint64_t instructionLimitPerRank) {
  RunOptions opts;
  opts.instructionLimitPerRank = instructionLimitPerRank;
  return run(m, engine, observers, opts);
}

}  // namespace cypress::vm
