// Resumable per-rank interpreter for the cypress IR.
//
// Each simulated MPI process is one RankVM. step() executes instructions
// until the rank blocks inside the simulated MPI engine or the program
// finishes; a round-robin scheduler (see runner.hpp) interleaves ranks.
// The VM emits the PMPI observer hooks: structure markers inserted by
// the CST instrumentation pass, user-function call boundaries, and MPI
// events (via the engine).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/ir.hpp"
#include "simmpi/engine.hpp"
#include "trace/observer.hpp"

namespace cypress::vm {

enum class StepResult : uint8_t { Blocked, Finished };

class RankVM {
 public:
  /// `observer` may be null (no tracing). The module must outlive the VM.
  RankVM(const ir::Module& m, int rank, simmpi::Engine& engine,
         trace::Observer* observer);

  /// Run until the rank blocks or finishes. Each call makes progress
  /// (completing a blocked op counts); calling after Finished is an error.
  StepResult step();

  bool finished() const { return finished_; }
  /// True when the fault plan killed this rank mid-program. The VM is
  /// finished() but the frame stack was abandoned and the observer was
  /// never finalized — the rank's trace ends mid-stream, like a crash.
  bool died() const { return died_; }
  int rank() const { return rank_; }
  uint64_t instructionsExecuted() const { return instructions_; }

  /// Abort guard: throw if a rank executes more than this many
  /// instructions (runaway-loop detection in tests and benches).
  void setInstructionLimit(uint64_t limit) { instructionLimit_ = limit; }

 private:
  struct Frame {
    const ir::Function* fn = nullptr;
    int block = 0;
    size_t instr = 0;
    std::vector<int64_t> vars;
  };

  const ir::Instr* currentInstr() const;
  bool executeInstr(const ir::Instr& i);  // false when the rank blocked
  void executeTerminator();
  void pushFrame(const ir::Function* fn, std::vector<int64_t> args);
  void popFrame();
  int64_t eval(const ir::Expr& e) const;

  const ir::Module& module_;
  int rank_;
  simmpi::Engine& engine_;
  trace::Observer* observer_;
  std::vector<Frame> frames_;
  bool waitingOnEngine_ = false;
  bool finished_ = false;
  bool died_ = false;
  uint64_t instructions_ = 0;
  uint64_t instructionLimit_ = 1ull << 40;
};

}  // namespace cypress::vm
