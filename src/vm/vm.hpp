// Resumable per-rank interpreter for the cypress IR.
//
// Each simulated MPI process is one RankVM, driven by the epoch
// scheduler in runner.cpp in two alternating phases:
//
//   - runLocal() executes instructions up to (but not including) the
//     next MPI call, evaluating that call's arguments into a prepared
//     OpDesc. It touches only this rank's own state — frames, the
//     rank's observer, and the engine's rank-local compute accounting —
//     so local phases of different ranks may run on pool threads
//     concurrently.
//   - commitStep() performs the rank's parked engine interaction
//     (issue the prepared MPI call, poll a blocked one, or finalize a
//     finished rank). Commits mutate cross-rank engine state and must
//     run on a single thread, in deterministic rank order.
//
// The VM emits the PMPI observer hooks: structure markers and
// user-function call boundaries from runLocal() (on the rank's local
// thread), MPI events and finalization from commitStep() (via the
// engine, on the commit thread). Per-rank observer stacks are isolated,
// except that journal recorders flush into a shared builder — which is
// why those flushes only ever happen on the commit thread.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/ir.hpp"
#include "simmpi/engine.hpp"
#include "trace/observer.hpp"

namespace cypress::vm {

class RankVM {
 public:
  /// `observer` may be null (no tracing). The module must outlive the VM.
  RankVM(const ir::Module& m, int rank, simmpi::Engine& engine,
         trace::Observer* observer);

  /// Where a local phase left the rank.
  enum class Local : uint8_t {
    AtMpi,     ///< parked at an MPI call, OpDesc prepared for commit
    Waiting,   ///< blocked in the engine, needs a poll at commit
    Finished,  ///< program done (finalize may still be pending) or died
  };

  /// Execute instructions until the next MPI call, a block, or program
  /// end. Safe to run concurrently with other ranks' local phases; never
  /// touches cross-rank engine state. Calling it on a rank that is
  /// waiting/parked/finished returns the current state without work.
  Local runLocal();

  /// True when the rank has a commit-phase action pending (a prepared
  /// MPI call, a blocked op to poll, or a deferred finalize).
  bool hasCommitWork() const {
    return atMpi_ || waitingOnEngine_ || needsFinalize_;
  }

  /// Perform the rank's pending engine interaction on the commit thread.
  /// Returns true when the rank's state advanced: an op was issued (even
  /// if it then blocked), a blocked op completed, or the rank finalized.
  /// A poll that stays Blocked returns false.
  bool commitStep();

  /// Fully finished: the program ended AND the deferred finalize (or
  /// death) has been committed. Such a rank needs no further phases.
  bool fullyFinished() const { return finished_ && !needsFinalize_; }

  bool finished() const { return finished_; }
  /// True when the fault plan killed this rank mid-program. The VM is
  /// finished() but the frame stack was abandoned and the observer was
  /// never finalized — the rank's trace ends mid-stream, like a crash.
  bool died() const { return died_; }
  int rank() const { return rank_; }
  uint64_t instructionsExecuted() const { return instructions_; }

  /// Abort guard: throw if a rank executes more than this many
  /// instructions (runaway-loop detection in tests and benches).
  void setInstructionLimit(uint64_t limit) { instructionLimit_ = limit; }

 private:
  struct Frame {
    const ir::Function* fn = nullptr;
    int block = 0;
    size_t instr = 0;
    std::vector<int64_t> vars;
  };

  const ir::Instr* currentInstr() const;
  bool executeInstr(const ir::Instr& i);  // non-MPI instructions only
  simmpi::OpDesc buildOpDesc(const ir::Instr& i) const;
  void executeTerminator();
  void pushFrame(const ir::Function* fn, std::vector<int64_t> args);
  void popFrame();
  int64_t eval(const ir::Expr& e) const;
  void countInstr();

  const ir::Module& module_;
  int rank_;
  simmpi::Engine& engine_;
  trace::Observer* observer_;
  std::vector<Frame> frames_;
  simmpi::OpDesc pendingDesc_;    // valid while atMpi_
  bool atMpi_ = false;            // parked at an MPI call, not yet issued
  bool waitingOnEngine_ = false;  // issued and blocked, polled at commit
  bool needsFinalize_ = false;    // program ended; finalize at commit
  bool finished_ = false;
  bool died_ = false;
  uint64_t instructions_ = 0;
  uint64_t instructionLimit_ = 1ull << 40;
};

}  // namespace cypress::vm
