// flate: a self-contained DEFLATE-style general-purpose codec.
//
// This is the repository's stand-in for Gzip/zlib (the baseline codec in
// the paper's Figure 15/19 and the optional "+Gzip" post-pass on CYPRESS
// and ScalaTrace-2 outputs). The container is:
//
//   magic "CYF1" | uvarint originalSize | crc32 | blocks...
//
// Inputs up to kShardBytes use the original single-block layout: u8 kind
// (0 stored / 1 huffman), then the payload. Huffman blocks carry two
// canonical code-length tables (literal/length and distance alphabets,
// DEFLATE's tables) followed by the LSB-first bit stream of LZ77 tokens
// terminated by an end-of-block symbol.
//
// Larger inputs use a framed multi-block container (kind 2): the input
// is cut into fixed kShardBytes shards, each compressed independently
// with a fresh LZ77 window and stored length-prefixed. Shards are
// independent tasks, so compression parallelizes across them — and
// because the shard boundaries depend only on the input size, the
// output is byte-identical for every thread count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cypress::flate {

/// Compression effort: bounds the LZ77 hash-chain walk.
enum class Level { Fast = 16, Default = 128, Best = 1024 };

/// Shard size of the framed multi-block container; inputs at or below
/// this size keep the legacy single-block layout.
constexpr size_t kShardBytes = 256 * 1024;

/// Compress `data`; never fails (incompressible data falls back to a
/// stored block with a few bytes of framing overhead). `threads` caps
/// how many shards compress concurrently (on the shared pipeline pool)
/// and never changes the output bytes.
std::vector<uint8_t> compress(std::span<const uint8_t> data,
                              Level level = Level::Default, int threads = 1);

/// Decompress a buffer produced by compress(); throws cypress::Error on
/// corrupt input (bad magic, bad codes, CRC mismatch). Framed containers
/// decode their shards concurrently (`threads` lanes): the shard headers
/// are walked and sanity-checked first, then each shard inflates into
/// its own fixed slice of the output, so the result is byte-identical to
/// a sequential decode.
std::vector<uint8_t> decompress(std::span<const uint8_t> data,
                                int threads = 1);

/// Convenience: size in bytes after compression.
size_t compressedSize(std::span<const uint8_t> data,
                      Level level = Level::Default, int threads = 1);

/// String overloads (used by text-file artifacts such as serialized CSTs).
std::vector<uint8_t> compressString(const std::string& s,
                                    Level level = Level::Default,
                                    int threads = 1);
std::string decompressToString(std::span<const uint8_t> data);

/// CRC-32 (IEEE 802.3 polynomial), used for container integrity.
/// Implemented with the slice-by-8 table method (8 bytes per step), so
/// large buffers cost ~1/6 of a bytewise pass; the value is identical
/// to the classic bytewise CRC for every input.
uint32_t crc32(std::span<const uint8_t> data);

/// Combine two CRCs: given crc1 = crc32(A) and crc2 = crc32(B), returns
/// crc32(A || B) where `len2` is B's length in bytes — without touching
/// either buffer (GF(2) matrix composition, the zlib crc32_combine
/// construction). This is what lets per-shard CRCs be computed inside
/// independent pool tasks and merged afterwards.
uint32_t crc32Combine(uint32_t crc1, uint32_t crc2, uint64_t len2);

}  // namespace cypress::flate
