// flate: a self-contained DEFLATE-style general-purpose codec.
//
// This is the repository's stand-in for Gzip/zlib (the baseline codec in
// the paper's Figure 15/19 and the optional "+Gzip" post-pass on CYPRESS
// and ScalaTrace-2 outputs). The container is:
//
//   magic "CYF1" | uvarint originalSize | crc32 | blocks...
//
// Each block: u8 kind (0 stored / 1 huffman), then the payload. Huffman
// blocks carry two canonical code-length tables (literal/length and
// distance alphabets, DEFLATE's tables) followed by the LSB-first bit
// stream of LZ77 tokens terminated by an end-of-block symbol.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cypress::flate {

/// Compression effort: bounds the LZ77 hash-chain walk.
enum class Level { Fast = 16, Default = 128, Best = 1024 };

/// Compress `data`; never fails (incompressible data falls back to a
/// stored block with a few bytes of framing overhead).
std::vector<uint8_t> compress(std::span<const uint8_t> data,
                              Level level = Level::Default);

/// Decompress a buffer produced by compress(); throws cypress::Error on
/// corrupt input (bad magic, bad codes, CRC mismatch).
std::vector<uint8_t> decompress(std::span<const uint8_t> data);

/// Convenience: size in bytes after compression.
size_t compressedSize(std::span<const uint8_t> data, Level level = Level::Default);

/// String overloads (used by text-file artifacts such as serialized CSTs).
std::vector<uint8_t> compressString(const std::string& s, Level level = Level::Default);
std::string decompressToString(std::span<const uint8_t> data);

/// CRC-32 (IEEE 802.3 polynomial), used for container integrity.
uint32_t crc32(std::span<const uint8_t> data);

}  // namespace cypress::flate
