#include "flate/flate.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "flate/bitio.hpp"
#include "flate/huffman.hpp"
#include "flate/lz77.hpp"
#include "support/bytebuf.hpp"
#include "support/error.hpp"

namespace cypress::flate {

namespace {

constexpr char kMagic[4] = {'C', 'Y', 'F', '1'};
constexpr int kNumLitLen = 286;  // 0..255 literals, 256 EOB, 257..285 lengths
constexpr int kNumDist = 30;
constexpr int kEob = 256;

// DEFLATE length codes: symbol 257+i encodes lengths [base[i],
// base[i]+2^extra[i]-1].
constexpr uint16_t kLenBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,
                                   15, 17, 19, 23, 27, 31, 35, 43, 51,  59,
                                   67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr uint8_t kLenExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                                   2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr uint16_t kDistBase[30] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr uint8_t kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                    4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                    9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

int lengthSymbol(int len) {
  for (int i = 28; i >= 0; --i)
    if (len >= kLenBase[i]) return i;
  CYP_FAIL("flate: match length below minimum: " << len);
}

int distSymbol(int dist) {
  for (int i = 29; i >= 0; --i)
    if (dist >= kDistBase[i]) return i;
  CYP_FAIL("flate: distance below minimum: " << dist);
}

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

const std::array<uint32_t, 256>& crcTable() {
  static const auto table = makeCrcTable();
  return table;
}

// Pack code-length tables as 4-bit nibbles (lengths are <= 15).
void writeLengths(ByteWriter& w, std::span<const uint8_t> lengths) {
  for (size_t i = 0; i < lengths.size(); i += 2) {
    uint8_t lo = lengths[i];
    uint8_t hi = (i + 1 < lengths.size()) ? lengths[i + 1] : 0;
    w.u8(static_cast<uint8_t>(lo | (hi << 4)));
  }
}

std::vector<uint8_t> readLengths(ByteReader& r, size_t n) {
  std::vector<uint8_t> lengths(n);
  for (size_t i = 0; i < n; i += 2) {
    uint8_t b = r.u8();
    lengths[i] = b & 0x0F;
    if (i + 1 < n) lengths[i + 1] = b >> 4;
  }
  return lengths;
}

}  // namespace

uint32_t crc32(std::span<const uint8_t> data) {
  const auto& t = crcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (uint8_t b : data) c = t[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::vector<uint8_t> compress(std::span<const uint8_t> data, Level level) {
  ByteWriter w;
  w.raw(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(kMagic), 4));
  w.uv(data.size());
  w.u32fixed(crc32(data));

  if (data.empty()) return w.take();

  const auto tokens = tokenize(data, static_cast<int>(level));

  // Symbol frequencies.
  std::vector<uint64_t> litFreq(kNumLitLen, 0), distFreq(kNumDist, 0);
  for (const Token& t : tokens) {
    if (t.length == 0) {
      litFreq[t.literal]++;
    } else {
      litFreq[static_cast<size_t>(257 + lengthSymbol(t.length))]++;
      distFreq[static_cast<size_t>(distSymbol(t.distance))]++;
    }
  }
  litFreq[kEob]++;

  const auto litLens = buildCodeLengths(litFreq);
  const auto distLens = buildCodeLengths(distFreq);
  const auto litCodes = canonicalCodes(litLens);
  const auto distCodes = canonicalCodes(distLens);

  // Emit the Huffman block.
  ByteWriter block;
  writeLengths(block, litLens);
  writeLengths(block, distLens);
  BitWriter bw;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      bw.put(litCodes[t.literal], litLens[t.literal]);
    } else {
      const int ls = lengthSymbol(t.length);
      const size_t lsym = static_cast<size_t>(257 + ls);
      bw.put(litCodes[lsym], litLens[lsym]);
      if (kLenExtra[ls]) bw.put(static_cast<uint32_t>(t.length - kLenBase[ls]), kLenExtra[ls]);
      const int ds = distSymbol(t.distance);
      bw.put(distCodes[static_cast<size_t>(ds)], distLens[static_cast<size_t>(ds)]);
      if (kDistExtra[ds])
        bw.put(static_cast<uint32_t>(t.distance - kDistBase[ds]), kDistExtra[ds]);
    }
  }
  bw.put(litCodes[kEob], litLens[kEob]);
  auto bits = bw.take();
  block.uv(bits.size());
  block.raw(bits);

  if (block.size() + 1 >= data.size() + 1) {
    // Incompressible: stored block.
    w.u8(0);
    w.raw(data);
  } else {
    w.u8(1);
    w.raw(block.bytes());
  }
  return w.take();
}

std::vector<uint8_t> decompress(std::span<const uint8_t> data) {
  ByteReader r(data);
  auto magic = r.raw(4);
  CYP_CHECK(std::memcmp(magic.data(), kMagic, 4) == 0, "flate: bad magic");
  const uint64_t originalSize = r.uv();
  const uint32_t crc = r.u32fixed();

  std::vector<uint8_t> out;
  if (originalSize > 0) {
    const uint8_t kind = r.u8();
    if (kind == 0) {
      // Stored block: the payload IS the original, so a size prefix that
      // disagrees with the bytes actually present is corrupt — and must
      // not become an allocation.
      CYP_CHECK(originalSize == r.remaining(),
                "flate: stored block has " << r.remaining()
                                           << " bytes but header claims "
                                           << originalSize);
      auto raw = r.raw(originalSize);
      out.assign(raw.begin(), raw.end());
    } else {
      CYP_CHECK(kind == 1, "flate: unknown block kind " << int(kind));
      // The size prefix is untrusted until the stream proves it: cap the
      // speculative reserve and let push_back grow past it if the data
      // really is that large. Every emit below is bounded by
      // originalSize, so corrupt streams cannot balloon the output.
      out.reserve(std::min<uint64_t>(originalSize, 1u << 20));
      const auto litLens = readLengths(r, kNumLitLen);
      const auto distLens = readLengths(r, kNumDist);
      HuffmanDecoder litDec(litLens), distDec(distLens);
      const uint64_t nbits = r.uv();
      BitReader br(r.raw(nbits));
      while (true) {
        const int sym = litDec.decode(br);
        if (sym == kEob) break;
        if (sym < 256) {
          CYP_CHECK(out.size() < originalSize,
                    "flate: output exceeds declared size " << originalSize);
          out.push_back(static_cast<uint8_t>(sym));
          continue;
        }
        const int ls = sym - 257;
        CYP_CHECK(ls >= 0 && ls < 29, "flate: bad length symbol " << sym);
        uint32_t len = kLenBase[ls];
        if (kLenExtra[ls]) len += br.get(kLenExtra[ls]);
        const int ds = distDec.decode(br);
        CYP_CHECK(ds >= 0 && ds < 30, "flate: bad distance symbol " << ds);
        uint32_t dist = kDistBase[ds];
        if (kDistExtra[ds]) dist += br.get(kDistExtra[ds]);
        CYP_CHECK(dist <= out.size(), "flate: back-reference before start");
        CYP_CHECK(len <= originalSize - out.size(),
                  "flate: output exceeds declared size " << originalSize);
        size_t from = out.size() - dist;
        for (uint32_t i = 0; i < len; ++i) out.push_back(out[from + i]);
      }
    }
  }
  CYP_CHECK(out.size() == originalSize,
            "flate: size mismatch " << out.size() << " vs " << originalSize);
  CYP_CHECK(crc32(out) == crc, "flate: CRC mismatch");
  return out;
}

size_t compressedSize(std::span<const uint8_t> data, Level level) {
  return compress(data, level).size();
}

std::vector<uint8_t> compressString(const std::string& s, Level level) {
  return compress(std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(s.data()), s.size()),
                  level);
}

std::string decompressToString(std::span<const uint8_t> data) {
  auto bytes = decompress(data);
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace cypress::flate
