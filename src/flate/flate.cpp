#include "flate/flate.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "flate/bitio.hpp"
#include "flate/block.hpp"
#include "flate/huffman.hpp"
#include "flate/lz77.hpp"
#include "support/bytebuf.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace cypress::flate {

using detail::compressBlock;
using detail::kBlockFramed;
using detail::kBlockHuffman;
using detail::kBlockStored;
using detail::kMagic;

namespace {

constexpr int kNumLitLen = 286;  // 0..255 literals, 256 EOB, 257..285 lengths
constexpr int kNumDist = 30;
constexpr int kEob = 256;

// DEFLATE length codes: symbol 257+i encodes lengths [base[i],
// base[i]+2^extra[i]-1].
constexpr uint16_t kLenBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,
                                   15, 17, 19, 23, 27, 31, 35, 43, 51,  59,
                                   67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr uint8_t kLenExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                                   2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr uint16_t kDistBase[30] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr uint8_t kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                    4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                    9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

int lengthSymbol(int len) {
  for (int i = 28; i >= 0; --i)
    if (len >= kLenBase[i]) return i;
  CYP_FAIL("flate: match length below minimum: " << len);
}

int distSymbol(int dist) {
  for (int i = 29; i >= 0; --i)
    if (dist >= kDistBase[i]) return i;
  CYP_FAIL("flate: distance below minimum: " << dist);
}

constexpr uint32_t kCrcPoly = 0xEDB88320u;

// Slice-by-8 CRC tables: table[0] is the classic bytewise table and
// table[k][b] is the CRC of byte b followed by k zero bytes, so eight
// table lookups advance the CRC by eight input bytes at once.
std::array<std::array<uint32_t, 256>, 8> makeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? kCrcPoly ^ (c >> 1) : c >> 1;
    t[0][i] = c;
  }
  for (int k = 1; k < 8; ++k)
    for (uint32_t i = 0; i < 256; ++i)
      t[k][i] = t[0][t[k - 1][i] & 0xFF] ^ (t[k - 1][i] >> 8);
  return t;
}

const std::array<std::array<uint32_t, 256>, 8>& crcTables() {
  static const auto tables = makeCrcTables();
  return tables;
}

// GF(2) helpers for crc32Combine: a CRC over n zero bytes is a linear
// map on the 32-bit state, represented as a column matrix.
uint32_t gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec) {
    if (vec & 1) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = gf2MatrixTimes(mat, mat[n]);
}

// Pack code-length tables as 4-bit nibbles (lengths are <= 15).
void writeLengths(ByteWriter& w, std::span<const uint8_t> lengths) {
  for (size_t i = 0; i < lengths.size(); i += 2) {
    uint8_t lo = lengths[i];
    uint8_t hi = (i + 1 < lengths.size()) ? lengths[i + 1] : 0;
    w.u8(static_cast<uint8_t>(lo | (hi << 4)));
  }
}

std::vector<uint8_t> readLengths(ByteReader& r, size_t n) {
  std::vector<uint8_t> lengths(n);
  for (size_t i = 0; i < n; i += 2) {
    uint8_t b = r.u8();
    lengths[i] = b & 0x0F;
    if (i + 1 < n) lengths[i + 1] = b >> 4;
  }
  return lengths;
}

}  // namespace

// Definition of the block compressor declared in flate/block.hpp (the
// doc comment lives there); the Huffman/bit-io helpers it needs stay
// file-local above.
std::vector<uint8_t> detail::compressBlock(std::span<const uint8_t> data,
                                           const MatchParams& mp) {
  const auto tokens = tokenize(data, mp);

  // Symbol frequencies.
  std::vector<uint64_t> litFreq(kNumLitLen, 0), distFreq(kNumDist, 0);
  for (const Token& t : tokens) {
    if (t.length == 0) {
      litFreq[t.literal]++;
    } else {
      litFreq[static_cast<size_t>(257 + lengthSymbol(t.length))]++;
      distFreq[static_cast<size_t>(distSymbol(t.distance))]++;
    }
  }
  litFreq[kEob]++;

  const auto litLens = buildCodeLengths(litFreq);
  const auto distLens = buildCodeLengths(distFreq);
  const auto litCodes = canonicalCodes(litLens);
  const auto distCodes = canonicalCodes(distLens);

  ByteWriter block;
  block.u8(kBlockHuffman);
  writeLengths(block, litLens);
  writeLengths(block, distLens);
  BitWriter bw;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      bw.put(litCodes[t.literal], litLens[t.literal]);
    } else {
      const int ls = lengthSymbol(t.length);
      const size_t lsym = static_cast<size_t>(257 + ls);
      bw.put(litCodes[lsym], litLens[lsym]);
      if (kLenExtra[ls]) bw.put(static_cast<uint32_t>(t.length - kLenBase[ls]), kLenExtra[ls]);
      const int ds = distSymbol(t.distance);
      bw.put(distCodes[static_cast<size_t>(ds)], distLens[static_cast<size_t>(ds)]);
      if (kDistExtra[ds])
        bw.put(static_cast<uint32_t>(t.distance - kDistBase[ds]), kDistExtra[ds]);
    }
  }
  bw.put(litCodes[kEob], litLens[kEob]);
  auto bits = bw.take();
  block.uv(bits.size());
  block.raw(bits);

  if (block.size() >= data.size() + 1) {
    // Incompressible: stored block.
    ByteWriter stored;
    stored.u8(kBlockStored);
    stored.raw(data);
    return stored.take();
  }
  return block.take();
}

namespace {

/// Decode one block (kind already consumed) appending exactly `expect`
/// bytes to `out`. Back-references never reach past the block's own
/// start: every block resets the LZ77 window.
void decompressBlockInto(uint8_t kind, ByteReader& r, std::vector<uint8_t>& out,
                         uint64_t expect) {
  const size_t base = out.size();
  if (kind == kBlockStored) {
    // Stored block: the payload IS the original, so a size prefix that
    // disagrees with the bytes actually present is corrupt — and must
    // not become an allocation.
    CYP_CHECK(expect == r.remaining(),
              "flate: stored block has " << r.remaining()
                                         << " bytes but header claims "
                                         << expect);
    auto raw = r.raw(expect);
    out.insert(out.end(), raw.begin(), raw.end());
    return;
  }
  CYP_CHECK(kind == kBlockHuffman, "flate: unknown block kind " << int(kind));
  // The size prefix is untrusted until the stream proves it: cap the
  // speculative reserve and let push_back grow past it if the data
  // really is that large. Every emit below is bounded by `expect`, so
  // corrupt streams cannot balloon the output.
  out.reserve(base + std::min<uint64_t>(expect, 1u << 20));
  const auto litLens = readLengths(r, kNumLitLen);
  const auto distLens = readLengths(r, kNumDist);
  HuffmanDecoder litDec(litLens), distDec(distLens);
  const uint64_t nbits = r.uv();
  BitReader br(r.raw(nbits));
  while (true) {
    const int sym = litDec.decode(br);
    if (sym == kEob) break;
    if (sym < 256) {
      CYP_CHECK(out.size() - base < expect,
                "flate: output exceeds declared size " << expect);
      out.push_back(static_cast<uint8_t>(sym));
      continue;
    }
    const int ls = sym - 257;
    CYP_CHECK(ls >= 0 && ls < 29, "flate: bad length symbol " << sym);
    uint32_t len = kLenBase[ls];
    if (kLenExtra[ls]) len += br.get(kLenExtra[ls]);
    const int ds = distDec.decode(br);
    CYP_CHECK(ds >= 0 && ds < 30, "flate: bad distance symbol " << ds);
    uint32_t dist = kDistBase[ds];
    if (kDistExtra[ds]) dist += br.get(kDistExtra[ds]);
    CYP_CHECK(dist <= out.size() - base, "flate: back-reference before start");
    CYP_CHECK(len <= expect - (out.size() - base),
              "flate: output exceeds declared size " << expect);
    size_t from = out.size() - dist;
    for (uint32_t i = 0; i < len; ++i) out.push_back(out[from + i]);
  }
  CYP_CHECK(out.size() - base == expect,
            "flate: block decoded to " << out.size() - base
                                       << " bytes, expected " << expect);
}

// Plausibility bounds used to vet framed shard headers before the
// parallel path preallocates the whole output. A Huffman block payload
// is at least the kind byte, the two nibble-packed code-length tables
// (ceil(286/2) + ceil(30/2) bytes) and the bit-count varint; and each
// payload byte holds at most 8 literal codes (8 bytes out) or 4 minimal
// length+distance pairs (4 * 258 = 1032 bytes out), so a shard claiming
// more than 1032x expansion is corrupt.
constexpr size_t kMinHuffmanPayload = 1 + 143 + 15 + 1;
constexpr uint64_t kMaxExpansion = 1032;

/// Decode one block (kind already consumed) into the caller's
/// `expect`-byte slice `dst`. Same stream format and checks as
/// decompressBlockInto, but writing to preallocated memory so framed
/// shards can decode concurrently into disjoint slices.
void decompressBlockToSlice(uint8_t kind, ByteReader& r, uint8_t* dst,
                            uint64_t expect) {
  if (kind == kBlockStored) {
    CYP_CHECK(expect == r.remaining(),
              "flate: stored block has " << r.remaining()
                                         << " bytes but header claims "
                                         << expect);
    auto raw = r.raw(expect);
    std::memcpy(dst, raw.data(), raw.size());
    return;
  }
  CYP_CHECK(kind == kBlockHuffman, "flate: unknown block kind " << int(kind));
  const auto litLens = readLengths(r, kNumLitLen);
  const auto distLens = readLengths(r, kNumDist);
  HuffmanDecoder litDec(litLens), distDec(distLens);
  const uint64_t nbits = r.uv();
  BitReader br(r.raw(nbits));
  uint64_t n = 0;
  while (true) {
    const int sym = litDec.decode(br);
    if (sym == kEob) break;
    if (sym < 256) {
      CYP_CHECK(n < expect, "flate: output exceeds declared size " << expect);
      dst[n++] = static_cast<uint8_t>(sym);
      continue;
    }
    const int ls = sym - 257;
    CYP_CHECK(ls >= 0 && ls < 29, "flate: bad length symbol " << sym);
    uint32_t len = kLenBase[ls];
    if (kLenExtra[ls]) len += br.get(kLenExtra[ls]);
    const int ds = distDec.decode(br);
    CYP_CHECK(ds >= 0 && ds < 30, "flate: bad distance symbol " << ds);
    uint32_t dist = kDistBase[ds];
    if (kDistExtra[ds]) dist += br.get(kDistExtra[ds]);
    CYP_CHECK(dist <= n, "flate: back-reference before start");
    CYP_CHECK(len <= expect - n,
              "flate: output exceeds declared size " << expect);
    // Byte-by-byte on purpose: the source may overlap the destination
    // (dist < len repeats the pattern), exactly like the vector path.
    const size_t from = static_cast<size_t>(n - dist);
    for (uint32_t i = 0; i < len; ++i) dst[n++] = dst[from + i];
  }
  CYP_CHECK(n == expect, "flate: block decoded to "
                             << n << " bytes, expected " << expect);
}

}  // namespace

uint32_t crc32(std::span<const uint8_t> data) {
  const auto& t = crcTables();
  uint32_t c = 0xFFFFFFFFu;
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    // Fold two little-endian 32-bit words through the eight tables.
    const uint32_t lo = c ^ (static_cast<uint32_t>(p[0]) |
                             static_cast<uint32_t>(p[1]) << 8 |
                             static_cast<uint32_t>(p[2]) << 16 |
                             static_cast<uint32_t>(p[3]) << 24);
    const uint32_t hi = static_cast<uint32_t>(p[4]) |
                        static_cast<uint32_t>(p[5]) << 8 |
                        static_cast<uint32_t>(p[6]) << 16 |
                        static_cast<uint32_t>(p[7]) << 24;
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n; --n, ++p) c = t[0][(c ^ *p) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

uint32_t crc32Combine(uint32_t crc1, uint32_t crc2, uint64_t len2) {
  if (len2 == 0) return crc1;
  // odd holds the operator "advance the CRC register past one zero
  // byte"; repeated squaring yields the operator for 2^k zero bytes, and
  // applying the operators selected by len2's bits shifts crc1 past all
  // of B's length. XORing crc2 then splices B's contribution in.
  uint32_t even[32];
  uint32_t odd[32];
  odd[0] = kCrcPoly;
  uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  gf2MatrixSquare(even, odd);  // 2 zero bytes
  gf2MatrixSquare(odd, even);  // 4 zero bytes
  do {
    gf2MatrixSquare(even, odd);
    if (len2 & 1) crc1 = gf2MatrixTimes(even, crc1);
    len2 >>= 1;
    if (len2 == 0) break;
    gf2MatrixSquare(odd, even);
    if (len2 & 1) crc1 = gf2MatrixTimes(odd, crc1);
    len2 >>= 1;
  } while (len2 != 0);
  return crc1 ^ crc2;
}

std::vector<uint8_t> compress(std::span<const uint8_t> data, Level level,
                              int threads) {
  ByteWriter w;
  w.raw(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(kMagic), 4));
  w.uv(data.size());

  if (data.empty()) {
    w.u32fixed(crc32(data));
    return w.take();
  }

  const MatchParams mp = MatchParams::forChain(static_cast<int>(level));
  if (data.size() <= kShardBytes) {
    // Legacy single-block container, byte-for-byte the historical format.
    w.u32fixed(crc32(data));
    w.raw(compressBlock(data, mp));
    return w.take();
  }

  // Framed multi-block container: fixed-size shards, each compressed
  // with a fresh LZ77 window, so the shards are independent tasks and
  // the output is a pure function of the input — `threads` only decides
  // how many compress concurrently. Each task also CRCs its own shard;
  // the whole-input CRC in the header is the crc32Combine fold of the
  // per-shard values, bit-identical to one serial pass but without a
  // second full scan of the input on the hot path.
  const size_t nShards = (data.size() + kShardBytes - 1) / kShardBytes;
  std::vector<std::vector<uint8_t>> blocks(nShards);
  std::vector<uint32_t> shardCrcs(nShards);
  parallelFor(nShards, threads, [&](size_t i) {
    const size_t lo = i * kShardBytes;
    const size_t hi = std::min(lo + kShardBytes, data.size());
    blocks[i] = compressBlock(data.subspan(lo, hi - lo), mp);
    shardCrcs[i] = crc32(data.subspan(lo, hi - lo));
  });
  uint32_t crc = shardCrcs[0];
  for (size_t i = 1; i < nShards; ++i) {
    const size_t lo = i * kShardBytes;
    const size_t hi = std::min(lo + kShardBytes, data.size());
    crc = crc32Combine(crc, shardCrcs[i], hi - lo);
  }
  w.u32fixed(crc);
  w.u8(kBlockFramed);
  w.uv(nShards);
  for (const auto& b : blocks) {
    w.uv(b.size());
    w.raw(b);
  }
  return w.take();
}

std::vector<uint8_t> decompress(std::span<const uint8_t> data, int threads) {
  ByteReader r(data);
  auto magic = r.raw(4);
  CYP_CHECK(std::memcmp(magic.data(), kMagic, 4) == 0, "flate: bad magic");
  const uint64_t originalSize = r.uv();
  const uint32_t crc = r.u32fixed();

  std::vector<uint8_t> out;
  if (originalSize > 0) {
    const uint8_t kind = r.u8();
    if (kind == kBlockFramed) {
      const uint64_t nShards = r.checkedCount(r.uv(), 1);
      CYP_CHECK(nShards == (originalSize + kShardBytes - 1) / kShardBytes,
                "flate: framed container has " << nShards
                                               << " shards for declared size "
                                               << originalSize);
      // Shards write into disjoint fixed slices of the output, so they
      // are independent decode tasks. Walk every shard header first and
      // vet it against the plausibility bounds above — only then is the
      // declared size trusted enough to allocate, so a corrupt header
      // cannot turn a tiny input into a huge up-front allocation.
      struct Shard {
        std::span<const uint8_t> payload;
        uint64_t expect = 0;
      };
      std::vector<Shard> shards(nShards);
      for (uint64_t i = 0; i < nShards; ++i) {
        const uint64_t expect =
            std::min<uint64_t>(kShardBytes, originalSize - i * kShardBytes);
        const auto payload = r.raw(r.checkedCount(r.uv(), 1));
        CYP_CHECK(!payload.empty(), "flate: empty shard " << i);
        if (payload[0] == kBlockStored) {
          CYP_CHECK(payload.size() - 1 == expect,
                    "flate: stored block has " << payload.size() - 1
                                               << " bytes but header claims "
                                               << expect);
        } else {
          CYP_CHECK(payload[0] == kBlockHuffman,
                    "flate: unknown block kind " << int(payload[0]));
          CYP_CHECK(payload.size() >= kMinHuffmanPayload,
                    "flate: huffman shard " << i << " truncated ("
                                            << payload.size() << " bytes)");
          CYP_CHECK(expect <= kMaxExpansion * payload.size(),
                    "flate: shard " << i << " claims implausible expansion");
        }
        shards[i] = {payload, expect};
      }
      out.resize(originalSize);
      parallelFor(nShards, threads, [&](size_t i) {
        ByteReader shard(shards[i].payload);
        const uint8_t shardKind = shard.u8();
        decompressBlockToSlice(shardKind, shard, out.data() + i * kShardBytes,
                               shards[i].expect);
        CYP_CHECK(shard.atEnd(), "flate: trailing bytes in shard " << i);
      });
    } else {
      decompressBlockInto(kind, r, out, originalSize);
    }
  }
  CYP_CHECK(out.size() == originalSize,
            "flate: size mismatch " << out.size() << " vs " << originalSize);
  CYP_CHECK(crc32(out) == crc, "flate: CRC mismatch");
  return out;
}

size_t compressedSize(std::span<const uint8_t> data, Level level, int threads) {
  return compress(data, level, threads).size();
}

std::vector<uint8_t> compressString(const std::string& s, Level level,
                                    int threads) {
  return compress(std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(s.data()), s.size()),
                  level, threads);
}

std::string decompressToString(std::span<const uint8_t> data) {
  auto bytes = decompress(data);
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace cypress::flate
