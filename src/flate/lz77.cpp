#include "flate/lz77.hpp"

#include <algorithm>
#include <memory>

#include "support/error.hpp"

namespace cypress::flate {

MatchParams MatchParams::forChain(int maxChain) {
  MatchParams p;
  p.maxChain = maxChain;
  if (maxChain <= 16) {
    // Fast tier: greedy matching, bail out early.
    p.goodLength = 8;
    p.niceLength = 32;
    p.lazy = false;
  } else if (maxChain <= 128) {
    p.goodLength = 16;
    p.niceLength = 128;
    p.lazy = true;
  } else {
    p.goodLength = 32;
    p.niceLength = kMaxMatch;
    p.lazy = true;
  }
  return p;
}

namespace {

constexpr uint32_t kMaxHashBits = 15;

struct Matcher {
  std::span<const uint8_t> data;
  std::vector<int32_t> head;        // hash -> most recent position
  std::unique_ptr<int32_t[]> prev;  // position -> previous position in chain
  uint32_t hashShift;
  MatchParams params;

  Matcher(std::span<const uint8_t> d, const MatchParams& p) : data(d), params(p) {
    // Size the hash table to the input: per-rank CTT payloads are a few
    // KiB, and a fixed 32K-entry table would cost more to clear than
    // the whole tokenization. `prev` is only ever read at positions that
    // insert() already wrote (chains start at `head`), so it needs no
    // zero-fill at all — allocate it uninitialized, and not before the
    // input is even long enough to hold a match.
    uint32_t bits = 8;
    while (bits < kMaxHashBits && (size_t{1} << bits) < d.size()) ++bits;
    head.assign(size_t{1} << bits, -1);
    hashShift = 32 - bits;
    if (d.size() >= kMinMatch) prev.reset(new int32_t[d.size()]);
  }

  uint32_t hash3(const uint8_t* p) const {
    // Multiplicative hash over 3 bytes.
    uint32_t v = static_cast<uint32_t>(p[0]) |
                 (static_cast<uint32_t>(p[1]) << 8) |
                 (static_cast<uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> hashShift;
  }

  void insert(size_t pos) {
    if (pos + kMinMatch > data.size()) return;
    uint32_t h = hash3(data.data() + pos);
    prev[pos] = head[h];
    head[h] = static_cast<int32_t>(pos);
  }

  /// Longest match at `pos` strictly longer than `prevLen` (pass 0 for
  /// a plain search). Returns (length, distance); length 0 means no
  /// match beat `prevLen`.
  std::pair<int, int> find(size_t pos, int prevLen) const {
    if (pos + kMinMatch > data.size()) return {0, 0};
    const size_t limit =
        std::min(data.size() - pos, static_cast<size_t>(kMaxMatch));
    // `best` is the length a candidate must strictly exceed.
    int best = std::max(prevLen, kMinMatch - 1);
    if (best >= static_cast<int>(limit)) return {0, 0};
    const int nice = std::min(params.niceLength, static_cast<int>(limit));
    int chain = params.maxChain;
    if (prevLen >= params.goodLength) chain >>= 2;
    int bestLen = 0, bestDist = 0;
    const uint8_t* cur = data.data() + pos;
    int32_t cand = head[hash3(cur)];
    while (cand >= 0 && chain-- > 0) {
      const size_t c = static_cast<size_t>(cand);
      if (pos - c > kWindowSize) break;
      const uint8_t* cp = data.data() + c;
      // A candidate that cannot beat `best` differs at offset `best`;
      // checking that one byte first skips the full compare on almost
      // every chain step.
      if (cp[best] == cur[best]) {
        size_t l = 0;
        while (l < limit && cp[l] == cur[l]) ++l;
        if (static_cast<int>(l) > best) {
          best = static_cast<int>(l);
          bestLen = static_cast<int>(l);
          bestDist = static_cast<int>(pos - c);
          if (bestLen >= nice) break;
        }
      }
      cand = prev[c];
    }
    if (bestLen < kMinMatch) return {0, 0};
    return {bestLen, bestDist};
  }
};

}  // namespace

std::vector<Token> tokenize(std::span<const uint8_t> data, int maxChain) {
  return tokenize(data, MatchParams::forChain(maxChain));
}

std::vector<Token> tokenize(std::span<const uint8_t> data,
                            const MatchParams& params) {
  std::vector<Token> out;
  out.reserve(data.size() / 4 + 16);
  Matcher m(data, params);

  size_t pos = 0;
  size_t inserted = 0;  // positions [0, inserted) are in the dictionary
  size_t missRun = 0;   // consecutive match-less positions (skip-ahead)
  auto insertUpTo = [&](size_t end) {
    for (; inserted < end; ++inserted) m.insert(inserted);
  };

  while (pos < data.size()) {
    // Only positions strictly before `pos` go into the dictionary before
    // the lookup: inserting `pos` itself would put it at the head of its
    // own hash chain, and find() would burn its first chain step skipping
    // the self-hit before reaching a real candidate.
    insertUpTo(pos);
    auto [len, dist] = m.find(pos, 0);
    if (len < kMinMatch) {
      // Incompressible stretch: emit literals in growing strides and
      // probe/insert only at the stride heads, so random data costs far
      // less than one chain walk per byte. The stride is a pure function
      // of the miss run, so the token stream stays deterministic.
      const size_t step =
          std::min(std::min<size_t>(1 + (missRun >> 5), 16),
                   data.size() - pos);
      for (size_t k = 0; k < step; ++k)
        out.push_back(Token{0, 0, data[pos + k]});
      m.insert(pos);
      pos += step;
      inserted = std::max(inserted, pos);
      missRun += step;
      continue;
    }
    missRun = 0;
    if (params.lazy && pos + 1 < data.size()) {
      // One-step lazy matching: prefer a strictly longer match at pos+1.
      insertUpTo(pos + 1);
      auto [len2, dist2] = m.find(pos + 1, len);
      if (len2 > len) {
        out.push_back(Token{0, 0, data[pos]});
        pos += 1;
        len = len2;
        dist = dist2;
      }
    }
    out.push_back(
        Token{static_cast<uint16_t>(len), static_cast<uint16_t>(dist), 0});
    const size_t end = pos + static_cast<size_t>(len);
    insertUpTo(end);
    pos = end;
  }
  return out;
}

std::vector<uint8_t> detokenize(std::span<const Token> tokens) {
  std::vector<uint8_t> out;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
    } else {
      CYP_CHECK(t.distance > 0 && t.distance <= out.size(),
                "lz77: bad back-reference distance " << t.distance);
      size_t from = out.size() - t.distance;
      for (int i = 0; i < t.length; ++i) out.push_back(out[from + static_cast<size_t>(i)]);
    }
  }
  return out;
}

}  // namespace cypress::flate
