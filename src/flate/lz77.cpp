#include "flate/lz77.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace cypress::flate {

namespace {

constexpr uint32_t kHashBits = 15;
constexpr uint32_t kHashSize = 1u << kHashBits;

inline uint32_t hash3(const uint8_t* p) {
  // Multiplicative hash over 3 bytes.
  uint32_t v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

struct Matcher {
  std::span<const uint8_t> data;
  std::vector<int32_t> head;  // hash -> most recent position
  std::vector<int32_t> prev;  // position -> previous position in chain
  int maxChain;

  Matcher(std::span<const uint8_t> d, int chain)
      : data(d), head(kHashSize, -1), prev(d.size(), -1), maxChain(chain) {}

  void insert(size_t pos) {
    if (pos + kMinMatch > data.size()) return;
    uint32_t h = hash3(data.data() + pos);
    prev[pos] = head[h];
    head[h] = static_cast<int32_t>(pos);
  }

  /// Longest match at `pos` against earlier positions within the window.
  /// Returns (length, distance); length 0 means no match.
  std::pair<int, int> find(size_t pos) const {
    if (pos + kMinMatch > data.size()) return {0, 0};
    const size_t limit = std::min(data.size() - pos, static_cast<size_t>(kMaxMatch));
    int bestLen = 0, bestDist = 0;
    int32_t cand = head[hash3(data.data() + pos)];
    int chain = maxChain;
    while (cand >= 0 && chain-- > 0) {
      const size_t c = static_cast<size_t>(cand);
      if (pos - c > kWindowSize) break;
      if (c != pos) {
        size_t l = 0;
        while (l < limit && data[c + l] == data[pos + l]) ++l;
        if (static_cast<int>(l) > bestLen) {
          bestLen = static_cast<int>(l);
          bestDist = static_cast<int>(pos - c);
          if (l == limit) break;
        }
      }
      cand = prev[c];
    }
    if (bestLen < kMinMatch) return {0, 0};
    return {bestLen, bestDist};
  }
};

}  // namespace

std::vector<Token> tokenize(std::span<const uint8_t> data, int maxChain) {
  std::vector<Token> out;
  out.reserve(data.size() / 4 + 16);
  Matcher m(data, maxChain);

  size_t pos = 0;
  size_t inserted = 0;  // positions [0, inserted) are in the dictionary
  auto insertUpTo = [&](size_t end) {
    for (; inserted < end; ++inserted) m.insert(inserted);
  };

  while (pos < data.size()) {
    // Only positions strictly before `pos` go into the dictionary before
    // the lookup: inserting `pos` itself would put it at the head of its
    // own hash chain, and find() would burn its first chain step skipping
    // the self-hit before reaching a real candidate.
    insertUpTo(pos);
    auto [len, dist] = m.find(pos);
    if (len >= kMinMatch && pos + 1 < data.size()) {
      // One-step lazy matching: prefer a strictly longer match at pos+1.
      insertUpTo(pos + 1);
      auto [len2, dist2] = m.find(pos + 1);
      if (len2 > len) {
        out.push_back(Token{0, 0, data[pos]});
        pos += 1;
        len = len2;
        dist = dist2;
      }
    }
    if (len >= kMinMatch) {
      out.push_back(Token{static_cast<uint16_t>(len), static_cast<uint16_t>(dist), 0});
      const size_t end = pos + static_cast<size_t>(len);
      insertUpTo(end);
      pos = end;
    } else {
      out.push_back(Token{0, 0, data[pos]});
      pos += 1;
    }
  }
  return out;
}

std::vector<uint8_t> detokenize(std::span<const Token> tokens) {
  std::vector<uint8_t> out;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
    } else {
      CYP_CHECK(t.distance > 0 && t.distance <= out.size(),
                "lz77: bad back-reference distance " << t.distance);
      size_t from = out.size() - t.distance;
      for (int i = 0; i < t.length; ++i) out.push_back(out[from + static_cast<size_t>(i)]);
    }
  }
  return out;
}

}  // namespace cypress::flate
