// Streaming CYF1 compression: serialize → shard → compress → write
// with no full-buffer materialization.
//
// StreamingCompressor is a ByteSink a producer serializes straight
// into. Bytes are cut into kShardBytes shard buffers; each full shard
// is CRC'd on the producer thread (slice-by-8 — cheap next to LZ77)
// and handed to a bounded MPMC queue that pool workers drain, each
// compressing its shard with a fresh LZ77 window (the existing CYF1
// kind-2 framing). finish() then knows the total size and the
// crc32Combine fold of the per-shard CRCs, writes the container header,
// and drains compressed shards into the downstream sink in shard
// order — writing shard i while shards > i are still compressing. The
// three stages (serialize, compress, I/O) overlap; peak memory is the
// bounded queue, not the trace.
//
// The output is byte-for-byte identical to flate::compress() over the
// concatenated input at every thread count: shard boundaries depend
// only on input size, each shard's block is a pure function of its
// bytes, and the header fields are the same totals. Inputs that never
// exceed one shard take the legacy single-block layout, exactly like
// the one-shot codec.
//
// Deadlock safety: the producer never blocks on the full queue — it
// compresses one queued shard itself and retries (the thread pool's
// helping-wait discipline), so streaming works even when the producer
// is itself a pool task.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "flate/flate.hpp"
#include "support/bytebuf.hpp"

namespace cypress {
class ThreadPool;
}

namespace cypress::flate {

/// Pass-through sink folding a running CRC-32 and byte count over
/// everything appended (crc32Combine of per-append CRCs — identical to
/// one pass over the concatenation). `down` may be null for pure
/// accounting. Used where a stream's totals must be known without
/// rescanning it: spill seals, checkpoint records, atomic final writes.
class Crc32Sink final : public ByteSink {
 public:
  explicit Crc32Sink(ByteSink* down = nullptr) : down_(down) {}

  void append(std::span<const uint8_t> bytes) override {
    crc_ = n_ == 0 ? crc32(bytes) : crc32Combine(crc_, crc32(bytes), bytes.size());
    n_ += bytes.size();
    if (down_ != nullptr) down_->append(bytes);
  }

  uint64_t bytes() const { return n_; }
  uint32_t crc() const { return crc_; }

 private:
  ByteSink* down_;
  uint64_t n_ = 0;
  uint32_t crc_ = 0;
};

/// The streaming CYF1 compressor described above.
class StreamingCompressor final : public ByteSink {
 public:
  struct Totals {
    uint64_t rawBytes = 0;        ///< input bytes consumed
    uint32_t crc = 0;             ///< crc32 of the whole input
    uint64_t compressedBytes = 0; ///< container bytes written to `out`
  };

  /// Compressed output goes to `out` (only during finish(), on the
  /// calling thread — `out` needs no thread safety). `threads <= 1`
  /// compresses shards inline at cut time; otherwise shards are
  /// compressed by `pool` (the shared pool when null) with at most
  /// ~2x`threads` shards in flight.
  explicit StreamingCompressor(ByteSink& out, Level level = Level::Default,
                               int threads = 1, ThreadPool* pool = nullptr);
  ~StreamingCompressor() override;

  StreamingCompressor(const StreamingCompressor&) = delete;
  StreamingCompressor& operator=(const StreamingCompressor&) = delete;

  /// Feed input bytes. Cuts full shards and dispatches them; never
  /// blocks indefinitely (helps compress when the queue is full).
  void append(std::span<const uint8_t> bytes) override;

  /// Flush: write the container header and drain every shard, in
  /// order, into the downstream sink. Must be called exactly once;
  /// append() is invalid afterwards. Rethrows any shard compression
  /// failure.
  Totals finish();

 private:
  struct Impl;
  struct Job;

  void dispatchPending();

  std::shared_ptr<Impl> impl_;
  std::vector<uint8_t> pending_;   // the shard currently being filled
  std::vector<uint32_t> shardCrcs_;
  std::vector<uint32_t> shardLens_;
  std::vector<std::shared_ptr<Job>> jobsDone_;  // dispatched, shard order
  ByteSink* out_;
  bool finished_ = false;
};

}  // namespace cypress::flate
