// LSB-first bit stream reader/writer used by the flate codec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace cypress::flate {

class BitWriter {
 public:
  /// Write the low `nbits` bits of `bits`, LSB first.
  void put(uint32_t bits, int nbits) {
    acc_ |= static_cast<uint64_t>(bits & ((1u << nbits) - 1u)) << fill_;
    fill_ += nbits;
    while (fill_ >= 8) {
      out_.push_back(static_cast<uint8_t>(acc_));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }

  /// Pad to a byte boundary with zero bits.
  void align() {
    if (fill_ > 0) {
      out_.push_back(static_cast<uint8_t>(acc_));
      acc_ = 0;
      fill_ = 0;
    }
  }

  std::vector<uint8_t> take() {
    align();
    return std::move(out_);
  }

  size_t bitCount() const { return out_.size() * 8 + static_cast<size_t>(fill_); }

 private:
  std::vector<uint8_t> out_;
  uint64_t acc_ = 0;
  int fill_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const uint8_t> data) : data_(data) {}

  /// Read `nbits` bits, LSB first.
  uint32_t get(int nbits) {
    while (fill_ < nbits) {
      CYP_CHECK(pos_ < data_.size(), "flate: bit stream underflow");
      acc_ |= static_cast<uint64_t>(data_[pos_++]) << fill_;
      fill_ += 8;
    }
    uint32_t v = static_cast<uint32_t>(acc_ & ((1ull << nbits) - 1ull));
    acc_ >>= nbits;
    fill_ -= nbits;
    return v;
  }

  /// Read a single bit.
  uint32_t bit() { return get(1); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int fill_ = 0;
};

}  // namespace cypress::flate
