#include "flate/huffman.hpp"

#include <algorithm>
#include <queue>

namespace cypress::flate {

namespace {

struct Node {
  uint64_t freq;
  int index;  // < 0: internal node, >= 0: symbol
  int left = -1, right = -1;
};

// Assign tree depths by walking the Huffman tree.
void assignDepths(const std::vector<Node>& nodes, int root, int depth,
                  std::vector<uint8_t>& lengths) {
  const Node& n = nodes[static_cast<size_t>(root)];
  if (n.index >= 0) {
    lengths[static_cast<size_t>(n.index)] = static_cast<uint8_t>(depth == 0 ? 1 : depth);
    return;
  }
  assignDepths(nodes, n.left, depth + 1, lengths);
  assignDepths(nodes, n.right, depth + 1, lengths);
}

}  // namespace

std::vector<uint8_t> buildCodeLengths(std::span<const uint64_t> freqs, int maxBits) {
  const size_t n = freqs.size();
  std::vector<uint8_t> lengths(n, 0);

  std::vector<Node> nodes;
  auto cmp = [&nodes](int a, int b) {
    const auto& na = nodes[static_cast<size_t>(a)];
    const auto& nb = nodes[static_cast<size_t>(b)];
    if (na.freq != nb.freq) return na.freq > nb.freq;
    return a > b;  // deterministic tie-break
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);

  for (size_t i = 0; i < n; ++i) {
    if (freqs[i] > 0) {
      nodes.push_back(Node{freqs[i], static_cast<int>(i)});
      heap.push(static_cast<int>(nodes.size()) - 1);
    }
  }
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    lengths[static_cast<size_t>(nodes[0].index)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    int a = heap.top();
    heap.pop();
    int b = heap.top();
    heap.pop();
    nodes.push_back(Node{nodes[static_cast<size_t>(a)].freq +
                             nodes[static_cast<size_t>(b)].freq,
                         -1, a, b});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  assignDepths(nodes, heap.top(), 0, lengths);

  // Length-limit: clamp overlong codes to maxBits, then repair the Kraft
  // inequality exactly using integer arithmetic in units of 2^-maxBits.
  int maxLen = 0;
  for (uint8_t l : lengths) maxLen = std::max(maxLen, static_cast<int>(l));
  if (maxLen <= maxBits) return lengths;

  for (uint8_t& l : lengths)
    if (l > maxBits) l = static_cast<uint8_t>(maxBits);

  const uint64_t budget = 1ull << maxBits;
  auto kraft = [&]() {
    uint64_t k = 0;
    for (uint8_t l : lengths)
      if (l) k += 1ull << (maxBits - l);
    return k;
  };
  uint64_t k = kraft();
  // Deepen codes until the tree fits. Prefer the deepest non-max code
  // with the smallest frequency: cheapest in expected output bits.
  while (k > budget) {
    int pick = -1;
    for (size_t i = 0; i < n; ++i) {
      const uint8_t l = lengths[i];
      if (l == 0 || l >= maxBits) continue;
      if (pick == -1 || l > lengths[static_cast<size_t>(pick)] ||
          (l == lengths[static_cast<size_t>(pick)] &&
           freqs[i] < freqs[static_cast<size_t>(pick)])) {
        pick = static_cast<int>(i);
      }
    }
    CYP_CHECK(pick != -1, "flate: cannot satisfy Kraft inequality");
    k -= 1ull << (maxBits - lengths[static_cast<size_t>(pick)] - 1);
    lengths[static_cast<size_t>(pick)]++;
  }
  // Tighten: give the slack back to the most frequent symbols by
  // shortening codes while the tree still fits.
  bool improved = true;
  while (improved) {
    improved = false;
    int pick = -1;
    for (size_t i = 0; i < n; ++i) {
      const uint8_t l = lengths[i];
      if (l <= 1) continue;
      const uint64_t gain = 1ull << (maxBits - l);  // extra cost of shortening
      if (k + gain > budget) continue;
      if (pick == -1 || freqs[i] > freqs[static_cast<size_t>(pick)])
        pick = static_cast<int>(i);
    }
    if (pick != -1) {
      k += 1ull << (maxBits - lengths[static_cast<size_t>(pick)]);
      lengths[static_cast<size_t>(pick)]--;
      improved = true;
    }
  }
  CYP_CHECK(kraft() <= budget, "flate: Kraft repair failed");
  return lengths;
}

std::vector<uint16_t> canonicalCodes(std::span<const uint8_t> lengths) {
  uint32_t blCount[kMaxCodeBits + 1] = {};
  for (uint8_t l : lengths) {
    CYP_CHECK(l <= kMaxCodeBits, "flate: code length too large");
    if (l) blCount[l]++;
  }
  uint32_t nextCode[kMaxCodeBits + 1] = {};
  uint32_t code = 0;
  for (int bits = 1; bits <= kMaxCodeBits; ++bits) {
    code = (code + blCount[bits - 1]) << 1;
    nextCode[bits] = code;
  }
  std::vector<uint16_t> codes(lengths.size(), 0);
  for (size_t i = 0; i < lengths.size(); ++i) {
    const int len = lengths[i];
    if (!len) continue;
    uint32_t c = nextCode[len]++;
    // Reverse bits for LSB-first emission.
    uint32_t rev = 0;
    for (int b = 0; b < len; ++b) rev |= ((c >> b) & 1u) << (len - 1 - b);
    codes[i] = static_cast<uint16_t>(rev);
  }
  return codes;
}

HuffmanDecoder::HuffmanDecoder(std::span<const uint8_t> lengths) {
  for (uint8_t l : lengths) {
    CYP_CHECK(l <= kMaxCodeBits, "flate: bad decoder code length");
    if (l) count_[l]++;
  }
  uint32_t code = 0;
  uint32_t index = 0;
  for (int bits = 1; bits <= kMaxCodeBits; ++bits) {
    code = (code + count_[bits - 1]) << 1;
    firstCode_[bits] = code;
    firstIndex_[bits] = index;
    index += count_[bits];
  }
  symbols_.resize(index);
  uint32_t next[kMaxCodeBits + 1];
  for (int bits = 0; bits <= kMaxCodeBits; ++bits) next[bits] = firstIndex_[bits];
  for (size_t s = 0; s < lengths.size(); ++s) {
    const int len = lengths[s];
    if (len) symbols_[next[len]++] = static_cast<uint16_t>(s);
  }
}

int HuffmanDecoder::decode(BitReader& br) const {
  uint32_t code = 0;
  for (int len = 1; len <= kMaxCodeBits; ++len) {
    code = (code << 1) | br.bit();
    if (count_[len] && code - firstCode_[len] < count_[len]) {
      return symbols_[firstIndex_[len] + (code - firstCode_[len])];
    }
  }
  CYP_FAIL("flate: invalid Huffman code in stream");
}

}  // namespace cypress::flate
