// Internal CYF1 container pieces shared between the one-shot codec
// (flate.cpp) and the streaming compressor (stream.cpp).
//
// Not part of the public flate API: the container layout these
// constants describe is documented in flate.hpp and docs/FORMATS.md,
// and only the two codec translation units should ever spell it out.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flate/lz77.hpp"

namespace cypress::flate::detail {

inline constexpr char kMagic[4] = {'C', 'Y', 'F', '1'};

inline constexpr uint8_t kBlockStored = 0;
inline constexpr uint8_t kBlockHuffman = 1;
inline constexpr uint8_t kBlockFramed = 2;

/// Compress one window-independent block: `u8 kind | payload`, stored
/// when Huffman coding does not win. This is exactly the legacy
/// single-block body, reused per shard by the framed container — and
/// the unit of work a streaming shard job executes. Pure function of
/// (data, mp): both codecs produce identical bytes per shard.
std::vector<uint8_t> compressBlock(std::span<const uint8_t> data,
                                   const MatchParams& mp);

}  // namespace cypress::flate::detail
