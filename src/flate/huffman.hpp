// Canonical Huffman coding with zlib-style length limiting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flate/bitio.hpp"

namespace cypress::flate {

constexpr int kMaxCodeBits = 15;

/// Compute length-limited Huffman code lengths for the given symbol
/// frequencies. Symbols with zero frequency get length 0 (no code).
/// If only one symbol is used it still receives a 1-bit code so the
/// decoder stays well-formed.
std::vector<uint8_t> buildCodeLengths(std::span<const uint64_t> freqs,
                                      int maxBits = kMaxCodeBits);

/// Canonical code assignment: codes ordered by (length, symbol).
/// Returns per-symbol codes; bits are emitted LSB-first after reversal,
/// so `codes[s]` is already bit-reversed for BitWriter::put.
std::vector<uint16_t> canonicalCodes(std::span<const uint8_t> lengths);

/// Canonical Huffman decoder over the same code-length vector.
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(std::span<const uint8_t> lengths);

  /// Decode one symbol from the bit stream.
  int decode(BitReader& br) const;

 private:
  // count_[l] = number of codes of length l; firstCode_[l] = first
  // canonical (MSB-first) code of length l; symbol lookup by offset.
  uint32_t count_[kMaxCodeBits + 1] = {};
  uint32_t firstCode_[kMaxCodeBits + 1] = {};
  uint32_t firstIndex_[kMaxCodeBits + 1] = {};
  std::vector<uint16_t> symbols_;
};

}  // namespace cypress::flate
