// LZ77 tokenizer with hash-chain matching and one-step lazy evaluation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cypress::flate {

/// One LZ77 token: a literal byte or a (length, distance) back-reference.
struct Token {
  uint16_t length = 0;    // 0 for literal, else 3..kMaxMatch
  uint16_t distance = 0;  // 1..kWindowSize, valid when length > 0
  uint8_t literal = 0;    // valid when length == 0
};

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 1 << 15;

/// Matcher effort knobs (zlib's configuration_table, per level).
struct MatchParams {
  /// Hash-chain candidates examined per position.
  int maxChain = 128;
  /// Once the best match so far reaches this length, cut the remaining
  /// chain budget to a quarter — long matches rarely improve much and
  /// the walk is the hot loop.
  int goodLength = 16;
  /// Stop searching outright at this length ("nice enough").
  int niceLength = 128;
  /// One-step lazy matching: defer a match one position if the next
  /// position matches strictly longer (improves ratio and skips the
  /// deferred position's wasted chain walk).
  bool lazy = true;

  /// The historical tokenize(data, maxChain) knob mapped onto the full
  /// parameter set, mirroring zlib's fast/default/best tiers.
  static MatchParams forChain(int maxChain);
};

/// Tokenize `data`. `maxChain` bounds the hash-chain walk per position
/// (effort/ratio trade-off, like zlib levels).
std::vector<Token> tokenize(std::span<const uint8_t> data, int maxChain = 128);
std::vector<Token> tokenize(std::span<const uint8_t> data,
                            const MatchParams& params);

/// Reconstruct the original bytes from a token stream (testing aid; the
/// decoder in flate.cpp reconstructs directly from the bit stream).
std::vector<uint8_t> detokenize(std::span<const Token> tokens);

}  // namespace cypress::flate
