#include "flate/stream.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "flate/block.hpp"
#include "flate/lz77.hpp"
#include "support/bounded_queue.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace cypress::flate {

/// One dispatched shard: raw bytes in, compressed block out.
struct StreamingCompressor::Job {
  std::vector<uint8_t> raw;
  std::vector<uint8_t> block;
  std::atomic<bool> done{false};
};

/// State shared with pool closures. Pool tasks capture a shared_ptr to
/// this — never the compressor — so an abandoned StreamingCompressor
/// (exception unwinding) can destruct while shards are still queued;
/// the tasks then drop their work and the state dies with the last
/// reference.
struct StreamingCompressor::Impl {
  Impl(MatchParams params, int lanes, ThreadPool* p)
      : mp(params),
        threads(lanes),
        pool(p),
        queue(static_cast<size_t>(lanes) * 2) {}

  const MatchParams mp;
  const int threads;
  ThreadPool* pool;
  BoundedQueue<std::shared_ptr<Job>> queue;
  std::mutex mu;
  std::condition_variable cv;       // signaled when any job completes
  std::exception_ptr error;         // first failure, guarded by mu
  std::atomic<bool> abandoned{false};

  void compressJob(Job& j) {
    if (!abandoned.load(std::memory_order_relaxed)) {
      try {
        j.block = detail::compressBlock(j.raw, mp);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
    }
    j.raw.clear();
    j.raw.shrink_to_fit();
    j.done.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu);
    cv.notify_all();
  }

  /// Pop and compress one queued shard on the calling thread; the
  /// producer's answer to a full queue and the drainer's answer to an
  /// unfinished shard.
  bool runOne() {
    auto job = queue.tryPop();
    if (!job) return false;
    compressJob(**job);
    return true;
  }
};

StreamingCompressor::StreamingCompressor(ByteSink& out, Level level,
                                         int threads, ThreadPool* pool)
    : out_(&out) {
  const int lanes = threads > 1 ? threads : 1;
  impl_ = std::make_shared<Impl>(MatchParams::forChain(static_cast<int>(level)),
                                 lanes,
                                 lanes > 1 ? (pool ? pool : &ThreadPool::shared())
                                           : nullptr);
  pending_.reserve(kShardBytes);
}

StreamingCompressor::~StreamingCompressor() {
  // Abandoned mid-stream: make queued shards no-ops and let in-flight
  // pool closures run out against the shared state.
  impl_->abandoned.store(true, std::memory_order_relaxed);
  impl_->queue.close();
}

void StreamingCompressor::dispatchPending() {
  shardCrcs_.push_back(crc32(pending_));
  shardLens_.push_back(static_cast<uint32_t>(pending_.size()));

  auto job = std::make_shared<Job>();
  job->raw = std::move(pending_);
  pending_ = {};
  pending_.reserve(kShardBytes);

  if (impl_->threads <= 1) {
    // Single-lane: compress at cut time on this thread. Still bounded
    // memory (one shard live), still byte-identical.
    jobsDone_.push_back(job);
    impl_->compressJob(*job);
    return;
  }

  // Backpressure without blocking: a full queue means the compressors
  // are behind, so this thread becomes one — pop and compress a shard,
  // then retry the push.
  std::shared_ptr<Job> handle = job;
  while (!impl_->queue.tryPush(handle)) impl_->runOne();
  jobsDone_.push_back(std::move(job));
  // One pool task per dispatched shard; each pops *some* shard (FIFO),
  // so tasks and shards pair off even when the producer helped.
  auto impl = impl_;
  impl_->pool->enqueue([impl] { impl->runOne(); });
}

void StreamingCompressor::append(std::span<const uint8_t> bytes) {
  CYP_CHECK(!finished_, "StreamingCompressor: append after finish");
  while (!bytes.empty()) {
    // Dispatch a full shard only once the NEXT byte arrives: an input
    // of exactly kShardBytes must stay single-block, like compress().
    if (pending_.size() == kShardBytes) dispatchPending();
    const size_t room = kShardBytes - pending_.size();
    const size_t n = std::min(room, bytes.size());
    pending_.insert(pending_.end(), bytes.begin(), bytes.begin() + n);
    bytes = bytes.subspan(n);
  }
}

StreamingCompressor::Totals StreamingCompressor::finish() {
  CYP_CHECK(!finished_, "StreamingCompressor: finish called twice");
  finished_ = true;
  Totals t;

  if (jobsDone_.empty()) {
    // Never exceeded one shard: the legacy single-block container,
    // byte-for-byte what compress() writes for small inputs.
    t.rawBytes = pending_.size();
    t.crc = crc32(pending_);
    ByteWriter header;
    header.raw(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(detail::kMagic), 4));
    header.uv(pending_.size());
    header.u32fixed(t.crc);
    if (!pending_.empty())
      header.raw(detail::compressBlock(pending_, impl_->mp));
    t.compressedBytes = header.size();
    out_->append(header.bytes());
    pending_.clear();
    return t;
  }

  // Framed container: the tail shard (1..kShardBytes bytes — dispatch
  // happens only when a byte beyond the boundary arrived, so it is
  // never empty) joins the fleet, then the totals are known.
  dispatchPending();
  t.crc = shardCrcs_[0];
  t.rawBytes = shardLens_[0];
  for (size_t i = 1; i < shardCrcs_.size(); ++i) {
    t.crc = crc32Combine(t.crc, shardCrcs_[i], shardLens_[i]);
    t.rawBytes += shardLens_[i];
  }

  ByteWriter header;
  header.raw(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(detail::kMagic), 4));
  header.uv(t.rawBytes);
  header.u32fixed(t.crc);
  header.u8(detail::kBlockFramed);
  header.uv(jobsDone_.size());
  out_->append(header.bytes());
  t.compressedBytes = header.size();

  // In-order drain: wait for shard i (helping: drain own queue first,
  // then unrelated pool work, then a short timed wait — the pool's
  // helping discipline), stream it out, free it. I/O on shard i
  // overlaps compression of shards > i.
  for (size_t i = 0; i < jobsDone_.size(); ++i) {
    Job& job = *jobsDone_[i];
    while (!job.done.load(std::memory_order_acquire)) {
      if (impl_->runOne()) continue;
      if (impl_->pool != nullptr && impl_->pool->tryRunOne()) continue;
      std::unique_lock<std::mutex> lock(impl_->mu);
      impl_->cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return job.done.load(std::memory_order_acquire);
      });
    }
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      if (impl_->error) {
        impl_->queue.close();
        std::rethrow_exception(impl_->error);
      }
    }
    ByteWriter prefix;
    prefix.uv(job.block.size());
    out_->append(prefix.bytes());
    out_->append(job.block);
    t.compressedBytes += prefix.size() + job.block.size();
    jobsDone_[i].reset();
  }
  impl_->queue.close();
  return t;
}

}  // namespace cypress::flate
