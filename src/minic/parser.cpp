#include "minic/parser.hpp"

#include "minic/lexer.hpp"
#include "support/error.hpp"

namespace cypress::minic {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  AstProgram program() {
    AstProgram p;
    while (!at(Tok::End)) {
      p.functions.push_back(function());
    }
    return p;
  }

 private:
  std::vector<Token> toks_;
  size_t pos_ = 0;

  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok t) const { return cur().kind == t; }

  Token eat(Tok t, const char* what = nullptr) {
    if (!at(t)) {
      fail(std::string("expected ") + (what ? what : tokName(t)) + ", found " +
           tokName(cur().kind));
    }
    return toks_[pos_++];
  }

  bool accept(Tok t) {
    if (at(t)) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("minic:" + std::to_string(cur().line) + ":" +
                std::to_string(cur().col) + ": " + msg);
  }

  AstFunc function() {
    AstFunc f;
    f.line = cur().line;
    eat(Tok::KwFunc);
    f.name = eat(Tok::Ident, "function name").text;
    eat(Tok::LParen);
    if (!at(Tok::RParen)) {
      f.params.push_back(eat(Tok::Ident, "parameter name").text);
      while (accept(Tok::Comma))
        f.params.push_back(eat(Tok::Ident, "parameter name").text);
    }
    eat(Tok::RParen);
    f.body = block();
    return f;
  }

  std::vector<AstStmtPtr> block() {
    eat(Tok::LBrace);
    std::vector<AstStmtPtr> stmts;
    while (!at(Tok::RBrace)) {
      if (at(Tok::End)) fail("unexpected end of input inside block");
      stmts.push_back(statement());
    }
    eat(Tok::RBrace);
    return stmts;
  }

  AstStmtPtr makeStmt(AstStmtKind kind) {
    auto s = std::make_unique<AstStmt>();
    s->kind = kind;
    s->line = cur().line;
    s->col = cur().col;
    return s;
  }

  AstStmtPtr statement() {
    if (at(Tok::KwVar)) {
      auto s = varDecl();
      eat(Tok::Semi);
      return s;
    }
    if (at(Tok::KwIf)) return ifStmt();
    if (at(Tok::KwWhile)) return whileStmt();
    if (at(Tok::KwFor)) return forStmt();
    if (at(Tok::KwReturn)) {
      auto s = makeStmt(AstStmtKind::Return);
      eat(Tok::KwReturn);
      eat(Tok::Semi);
      return s;
    }
    if (at(Tok::LBrace)) {
      auto s = makeStmt(AstStmtKind::Block);
      s->body = block();
      return s;
    }
    if (at(Tok::Ident)) {
      auto s = assignOrCall();
      eat(Tok::Semi);
      return s;
    }
    fail("expected a statement");
  }

  AstStmtPtr varDecl() {
    auto s = makeStmt(AstStmtKind::VarDecl);
    eat(Tok::KwVar);
    s->name = eat(Tok::Ident, "variable name").text;
    if (accept(Tok::Assign)) {
      s->expr = expression();
    }
    return s;
  }

  AstStmtPtr assignOrCall() {
    auto s = makeStmt(AstStmtKind::Assign);
    Token name = eat(Tok::Ident);
    s->name = name.text;
    if (at(Tok::LParen)) {
      s->kind = AstStmtKind::Call;
      eat(Tok::LParen);
      if (!at(Tok::RParen)) {
        s->args.push_back(expression());
        while (accept(Tok::Comma)) s->args.push_back(expression());
      }
      eat(Tok::RParen);
      return s;
    }
    eat(Tok::Assign);
    s->expr = expression();
    return s;
  }

  AstStmtPtr ifStmt() {
    auto s = makeStmt(AstStmtKind::If);
    eat(Tok::KwIf);
    eat(Tok::LParen);
    s->expr = expression();
    eat(Tok::RParen);
    s->body = block();
    if (accept(Tok::KwElse)) {
      if (at(Tok::KwIf)) {
        s->elseBody.push_back(ifStmt());
      } else {
        s->elseBody = block();
      }
    }
    return s;
  }

  AstStmtPtr whileStmt() {
    auto s = makeStmt(AstStmtKind::While);
    eat(Tok::KwWhile);
    eat(Tok::LParen);
    s->expr = expression();
    eat(Tok::RParen);
    s->body = block();
    return s;
  }

  AstStmtPtr forStmt() {
    auto s = makeStmt(AstStmtKind::For);
    eat(Tok::KwFor);
    eat(Tok::LParen);
    if (!at(Tok::Semi)) {
      s->forInit = at(Tok::KwVar) ? varDecl() : assignOrCall();
      if (s->forInit->kind == AstStmtKind::Call)
        fail("for-initializer must be an assignment or declaration");
    }
    eat(Tok::Semi);
    if (!at(Tok::Semi)) s->forCond = expression();
    eat(Tok::Semi);
    if (!at(Tok::RParen)) {
      s->forStep = assignOrCall();
      if (s->forStep->kind == AstStmtKind::Call)
        fail("for-step must be an assignment");
    }
    eat(Tok::RParen);
    s->body = block();
    return s;
  }

  AstExprPtr makeExpr(AstExprKind kind) {
    auto e = std::make_unique<AstExpr>();
    e->kind = kind;
    e->line = cur().line;
    e->col = cur().col;
    return e;
  }

  AstExprPtr expression() { return orExpr(); }

  AstExprPtr orExpr() {
    auto lhs = andExpr();
    while (at(Tok::OrOr)) {
      auto e = makeExpr(AstExprKind::Binary);
      eat(Tok::OrOr);
      e->bop = ir::BinOp::Or;
      e->lhs = std::move(lhs);
      e->rhs = andExpr();
      lhs = std::move(e);
    }
    return lhs;
  }

  AstExprPtr andExpr() {
    auto lhs = equality();
    while (at(Tok::AndAnd)) {
      auto e = makeExpr(AstExprKind::Binary);
      eat(Tok::AndAnd);
      e->bop = ir::BinOp::And;
      e->lhs = std::move(lhs);
      e->rhs = equality();
      lhs = std::move(e);
    }
    return lhs;
  }

  AstExprPtr equality() {
    auto lhs = relational();
    while (at(Tok::EqEq) || at(Tok::Ne)) {
      auto e = makeExpr(AstExprKind::Binary);
      e->bop = accept(Tok::EqEq) ? ir::BinOp::Eq : (eat(Tok::Ne), ir::BinOp::Ne);
      e->lhs = std::move(lhs);
      e->rhs = relational();
      lhs = std::move(e);
    }
    return lhs;
  }

  AstExprPtr relational() {
    auto lhs = shift();
    while (at(Tok::Lt) || at(Tok::Le) || at(Tok::Gt) || at(Tok::Ge)) {
      auto e = makeExpr(AstExprKind::Binary);
      if (accept(Tok::Lt)) e->bop = ir::BinOp::Lt;
      else if (accept(Tok::Le)) e->bop = ir::BinOp::Le;
      else if (accept(Tok::Gt)) e->bop = ir::BinOp::Gt;
      else { eat(Tok::Ge); e->bop = ir::BinOp::Ge; }
      e->lhs = std::move(lhs);
      e->rhs = shift();
      lhs = std::move(e);
    }
    return lhs;
  }

  AstExprPtr shift() {
    auto lhs = additive();
    while (at(Tok::Shl) || at(Tok::Shr)) {
      auto e = makeExpr(AstExprKind::Binary);
      e->bop = accept(Tok::Shl) ? ir::BinOp::Shl : (eat(Tok::Shr), ir::BinOp::Shr);
      e->lhs = std::move(lhs);
      e->rhs = additive();
      lhs = std::move(e);
    }
    return lhs;
  }

  AstExprPtr additive() {
    auto lhs = multiplicative();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      auto e = makeExpr(AstExprKind::Binary);
      e->bop = accept(Tok::Plus) ? ir::BinOp::Add : (eat(Tok::Minus), ir::BinOp::Sub);
      e->lhs = std::move(lhs);
      e->rhs = multiplicative();
      lhs = std::move(e);
    }
    return lhs;
  }

  AstExprPtr multiplicative() {
    auto lhs = unary();
    while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
      auto e = makeExpr(AstExprKind::Binary);
      if (accept(Tok::Star)) e->bop = ir::BinOp::Mul;
      else if (accept(Tok::Slash)) e->bop = ir::BinOp::Div;
      else { eat(Tok::Percent); e->bop = ir::BinOp::Mod; }
      e->lhs = std::move(lhs);
      e->rhs = unary();
      lhs = std::move(e);
    }
    return lhs;
  }

  AstExprPtr unary() {
    if (at(Tok::Minus)) {
      auto e = makeExpr(AstExprKind::Unary);
      eat(Tok::Minus);
      e->uop = ir::UnOp::Neg;
      e->lhs = unary();
      return e;
    }
    if (at(Tok::Not)) {
      auto e = makeExpr(AstExprKind::Unary);
      eat(Tok::Not);
      e->uop = ir::UnOp::Not;
      e->lhs = unary();
      return e;
    }
    return primary();
  }

  AstExprPtr primary() {
    if (at(Tok::Number)) {
      auto e = makeExpr(AstExprKind::Number);
      e->number = eat(Tok::Number).number;
      return e;
    }
    if (at(Tok::KwRank)) {
      auto e = makeExpr(AstExprKind::Rank);
      eat(Tok::KwRank);
      return e;
    }
    if (at(Tok::KwSize)) {
      auto e = makeExpr(AstExprKind::Size);
      eat(Tok::KwSize);
      return e;
    }
    if (at(Tok::KwAnySource)) {
      auto e = makeExpr(AstExprKind::AnySource);
      eat(Tok::KwAnySource);
      return e;
    }
    if (at(Tok::LParen)) {
      eat(Tok::LParen);
      auto e = expression();
      eat(Tok::RParen);
      return e;
    }
    if (at(Tok::Ident)) {
      auto e = makeExpr(AstExprKind::Var);
      Token t = eat(Tok::Ident);
      e->name = t.text;
      if (at(Tok::LParen)) {
        e->kind = AstExprKind::Intrinsic;
        eat(Tok::LParen);
        if (!at(Tok::RParen)) {
          e->args.push_back(expression());
          while (accept(Tok::Comma)) e->args.push_back(expression());
        }
        eat(Tok::RParen);
      }
      return e;
    }
    fail("expected an expression");
  }
};

}  // namespace

AstProgram parse(const std::string& source) {
  Parser p(lex(source));
  return p.program();
}

}  // namespace cypress::minic
