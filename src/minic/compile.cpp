#include "minic/compile.hpp"

#include <map>
#include <set>

#include "minic/parser.hpp"
#include "support/error.hpp"

namespace cypress::minic {

namespace {

using ir::Expr;
using ir::ExprPtr;

struct StmtIntrinsic {
  ir::MpiOp op;
  int arity;
};

const std::map<std::string, StmtIntrinsic>& stmtIntrinsics() {
  static const std::map<std::string, StmtIntrinsic> table = {
      {"mpi_send", {ir::MpiOp::Send, 3}},
      {"mpi_recv", {ir::MpiOp::Recv, 3}},
      {"mpi_bcast", {ir::MpiOp::Bcast, 2}},
      {"mpi_reduce", {ir::MpiOp::Reduce, 2}},
      {"mpi_allreduce", {ir::MpiOp::Allreduce, 1}},
      {"mpi_allgather", {ir::MpiOp::Allgather, 1}},
      {"mpi_alltoall", {ir::MpiOp::Alltoall, 1}},
      {"mpi_gather", {ir::MpiOp::Gather, 2}},
      {"mpi_scatter", {ir::MpiOp::Scatter, 2}},
      {"mpi_scan", {ir::MpiOp::Scan, 1}},
      {"mpi_barrier", {ir::MpiOp::Barrier, 0}},
      {"mpi_waitall", {ir::MpiOp::Waitall, 0}},
      {"mpi_waitany", {ir::MpiOp::Waitany, 0}},
      {"mpi_waitsome", {ir::MpiOp::Waitsome, 0}},
  };
  return table;
}

/// Collectives over an explicit communicator handle: first argument is
/// the communicator, the rest are the usual arguments.
const std::map<std::string, StmtIntrinsic>& commIntrinsics() {
  static const std::map<std::string, StmtIntrinsic> table = {
      {"mpi_bcast_c", {ir::MpiOp::Bcast, 3}},
      {"mpi_reduce_c", {ir::MpiOp::Reduce, 3}},
      {"mpi_allreduce_c", {ir::MpiOp::Allreduce, 2}},
      {"mpi_allgather_c", {ir::MpiOp::Allgather, 2}},
      {"mpi_alltoall_c", {ir::MpiOp::Alltoall, 2}},
      {"mpi_gather_c", {ir::MpiOp::Gather, 3}},
      {"mpi_scatter_c", {ir::MpiOp::Scatter, 3}},
      {"mpi_scan_c", {ir::MpiOp::Scan, 2}},
      {"mpi_barrier_c", {ir::MpiOp::Barrier, 1}},
  };
  return table;
}

[[noreturn]] void semaError(int line, int col, const std::string& msg) {
  throw Error("minic:" + std::to_string(line) + ":" + std::to_string(col) +
              ": " + msg);
}

class FunctionLowerer {
 public:
  FunctionLowerer(const AstProgram& program, const AstFunc& src, ir::Function& out)
      : program_(program), src_(src), out_(out) {}

  void run() {
    scopes_.emplace_back();
    for (const std::string& p : src_.params) {
      declare(p, src_.line, 0);
    }
    out_.numParams = static_cast<int>(src_.params.size());
    cur_ = out_.addBlock("entry");
    lowerStmts(src_.body);
    terminate(ir::Terminator::ret());
  }

 private:
  const AstProgram& program_;
  const AstFunc& src_;
  ir::Function& out_;
  std::vector<std::map<std::string, int>> scopes_;
  int cur_ = 0;
  bool terminated_ = false;

  int declare(const std::string& name, int line, int col) {
    if (scopes_.back().count(name))
      semaError(line, col, "redefinition of '" + name + "'");
    if (isIntrinsicName(name))
      semaError(line, col, "'" + name + "' is a reserved builtin name");
    const int slot = out_.addVar(name);
    scopes_.back()[name] = slot;
    return slot;
  }

  int lookup(const std::string& name, int line, int col) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return f->second;
    }
    semaError(line, col, "use of undeclared variable '" + name + "'");
  }

  void emit(ir::Instr instr) {
    if (terminated_) return;  // unreachable code after return: dropped
    out_.blocks[static_cast<size_t>(cur_)].instrs.push_back(std::move(instr));
  }

  void terminate(ir::Terminator t) {
    if (terminated_) return;
    out_.blocks[static_cast<size_t>(cur_)].term = std::move(t);
    terminated_ = true;
  }

  /// Open a fresh block and make it current.
  int startBlock(const std::string& name) {
    cur_ = out_.addBlock(name);
    terminated_ = false;
    return cur_;
  }

  ExprPtr lowerExpr(const AstExpr& e) {
    switch (e.kind) {
      case AstExprKind::Number:
        return Expr::constant(e.number);
      case AstExprKind::Var:
        return Expr::var(lookup(e.name, e.line, e.col));
      case AstExprKind::Rank:
        return Expr::rank();
      case AstExprKind::Size:
        return Expr::size();
      case AstExprKind::AnySource:
        return Expr::constant(ir::kAnySource);
      case AstExprKind::Unary:
        return Expr::unary(e.uop, lowerExpr(*e.lhs));
      case AstExprKind::Binary:
        return Expr::binary(e.bop, lowerExpr(*e.lhs), lowerExpr(*e.rhs));
      case AstExprKind::Intrinsic: {
        if (e.name == "min" || e.name == "max") {
          if (e.args.size() != 2)
            semaError(e.line, e.col, e.name + "() takes 2 arguments");
          return Expr::binary(e.name == "min" ? ir::BinOp::Min : ir::BinOp::Max,
                              lowerExpr(*e.args[0]), lowerExpr(*e.args[1]));
        }
        if (e.name == "mpi_isend" || e.name == "mpi_irecv" ||
            e.name == "mpi_comm_split") {
          semaError(e.line, e.col,
                    e.name + "() may only appear as the direct right-hand side "
                             "of an assignment (it yields a handle)");
        }
        semaError(e.line, e.col, "unknown builtin '" + e.name + "' in expression");
      }
    }
    CYP_FAIL("bad ast expr kind");
  }

  /// Handle `dest = mpi_isend(...)` / `var dest = mpi_irecv(...)` /
  /// `var c = mpi_comm_split(color, key)`.
  /// Returns true when `init` was such an intrinsic (already emitted).
  bool lowerRequestInit(const AstExpr* init, int destSlot) {
    if (!init || init->kind != AstExprKind::Intrinsic) return false;
    if (init->name == "mpi_comm_split") {
      if (init->args.size() != 2)
        semaError(init->line, init->col, "mpi_comm_split() takes 2 arguments");
      std::vector<ExprPtr> args;
      for (const auto& a : init->args) args.push_back(lowerExpr(*a));
      emit(ir::Instr::mpi(ir::MpiOp::CommSplit, std::move(args), destSlot));
      return true;
    }
    if (init->name != "mpi_isend" && init->name != "mpi_irecv") return false;
    if (init->args.size() != 3)
      semaError(init->line, init->col, init->name + "() takes 3 arguments");
    std::vector<ExprPtr> args;
    for (const auto& a : init->args) args.push_back(lowerExpr(*a));
    const ir::MpiOp op =
        init->name == "mpi_isend" ? ir::MpiOp::Isend : ir::MpiOp::Irecv;
    emit(ir::Instr::mpi(op, std::move(args), destSlot));
    return true;
  }

  void lowerCall(const AstStmt& s) {
    // Communicator-scoped collectives.
    auto cit = commIntrinsics().find(s.name);
    if (cit != commIntrinsics().end()) {
      if (static_cast<int>(s.args.size()) != cit->second.arity)
        semaError(s.line, s.col,
                  s.name + "() takes " + std::to_string(cit->second.arity) +
                      " argument(s), got " + std::to_string(s.args.size()));
      ir::Instr instr;
      instr.kind = ir::InstrKind::MpiCall;
      instr.mpiOp = cit->second.op;
      instr.commExpr = lowerExpr(*s.args[0]);
      for (size_t i = 1; i < s.args.size(); ++i)
        instr.args.push_back(lowerExpr(*s.args[i]));
      emit(std::move(instr));
      return;
    }
    // Sugar: mpi_sendrecv(dest, sbytes, stag, src, rbytes, rtag) lowers
    // to an eager send followed by a blocking receive (two call sites).
    if (s.name == "mpi_sendrecv") {
      if (s.args.size() != 6)
        semaError(s.line, s.col, "mpi_sendrecv() takes 6 arguments");
      emit(ir::Instr::mpi(ir::MpiOp::Send,
                          ir::exprList(lowerExpr(*s.args[0]), lowerExpr(*s.args[1]),
                                       lowerExpr(*s.args[2]))));
      emit(ir::Instr::mpi(ir::MpiOp::Recv,
                          ir::exprList(lowerExpr(*s.args[3]), lowerExpr(*s.args[4]),
                                       lowerExpr(*s.args[5]))));
      return;
    }
    // Statement intrinsics.
    auto it = stmtIntrinsics().find(s.name);
    if (it != stmtIntrinsics().end()) {
      if (static_cast<int>(s.args.size()) != it->second.arity)
        semaError(s.line, s.col,
                  s.name + "() takes " + std::to_string(it->second.arity) +
                      " argument(s), got " + std::to_string(s.args.size()));
      std::vector<ExprPtr> args;
      for (const auto& a : s.args) args.push_back(lowerExpr(*a));
      emit(ir::Instr::mpi(it->second.op, std::move(args)));
      return;
    }
    if (s.name == "mpi_wait") {
      if (s.args.size() != 1 || s.args[0]->kind != AstExprKind::Var)
        semaError(s.line, s.col, "mpi_wait() takes one request variable");
      const int slot = lookup(s.args[0]->name, s.line, s.col);
      emit(ir::Instr::mpi(ir::MpiOp::Wait, {}, slot));
      return;
    }
    if (s.name == "compute") {
      if (s.args.size() != 1)
        semaError(s.line, s.col, "compute() takes one argument (nanoseconds)");
      emit(ir::Instr::compute(lowerExpr(*s.args[0])));
      return;
    }
    if (s.name == "mpi_isend" || s.name == "mpi_irecv") {
      semaError(s.line, s.col,
                s.name + "() yields a request handle; assign it to a variable");
    }
    // User-defined function.
    const AstFunc* callee = nullptr;
    for (const auto& f : program_.functions)
      if (f.name == s.name) callee = &f;
    if (!callee)
      semaError(s.line, s.col, "call to unknown function '" + s.name + "'");
    if (callee->params.size() != s.args.size())
      semaError(s.line, s.col,
                "'" + s.name + "' takes " + std::to_string(callee->params.size()) +
                    " argument(s), got " + std::to_string(s.args.size()));
    std::vector<ExprPtr> args;
    for (const auto& a : s.args) args.push_back(lowerExpr(*a));
    emit(ir::Instr::call(s.name, std::move(args)));
  }

  void lowerStmts(const std::vector<AstStmtPtr>& stmts) {
    for (const auto& s : stmts) lowerStmt(*s);
  }

  void lowerStmt(const AstStmt& s) {
    // Code after `return` in the same statement list is unreachable;
    // park it in a fresh block so control-flow lowering cannot clobber
    // the Ret terminator.
    if (terminated_) startBlock("dead");
    switch (s.kind) {
      case AstStmtKind::VarDecl: {
        const int slot = declare(s.name, s.line, s.col);
        if (lowerRequestInit(s.expr.get(), slot)) return;
        emit(ir::Instr::assign(
            slot, s.expr ? lowerExpr(*s.expr) : Expr::constant(0)));
        return;
      }
      case AstStmtKind::Assign: {
        const int slot = lookup(s.name, s.line, s.col);
        if (lowerRequestInit(s.expr.get(), slot)) return;
        emit(ir::Instr::assign(slot, lowerExpr(*s.expr)));
        return;
      }
      case AstStmtKind::Call:
        lowerCall(s);
        return;
      case AstStmtKind::Return:
        terminate(ir::Terminator::ret());
        return;
      case AstStmtKind::Block: {
        scopes_.emplace_back();
        lowerStmts(s.body);
        scopes_.pop_back();
        return;
      }
      case AstStmtKind::If: {
        ExprPtr cond = lowerExpr(*s.expr);
        const int condBlock = cur_;
        const bool hasElse = !s.elseBody.empty();

        const int thenB = startBlock("if.then");
        scopes_.emplace_back();
        lowerStmts(s.body);
        scopes_.pop_back();
        const int thenEnd = cur_;
        const bool thenTerminated = terminated_;

        int elseB = -1, elseEnd = -1;
        bool elseTerminated = false;
        if (hasElse) {
          elseB = startBlock("if.else");
          scopes_.emplace_back();
          lowerStmts(s.elseBody);
          scopes_.pop_back();
          elseEnd = cur_;
          elseTerminated = terminated_;
        }

        const int join = startBlock("if.join");
        out_.blocks[static_cast<size_t>(condBlock)].term =
            ir::Terminator::condBr(std::move(cond), thenB, hasElse ? elseB : join);
        if (!thenTerminated)
          out_.blocks[static_cast<size_t>(thenEnd)].term = ir::Terminator::br(join);
        if (hasElse && !elseTerminated)
          out_.blocks[static_cast<size_t>(elseEnd)].term = ir::Terminator::br(join);
        return;
      }
      case AstStmtKind::While: {
        const int pre = cur_;
        const int header = startBlock("while.cond");
        out_.blocks[static_cast<size_t>(pre)].term = ir::Terminator::br(header);
        ExprPtr cond = lowerExpr(*s.expr);

        const int body = startBlock("while.body");
        scopes_.emplace_back();
        lowerStmts(s.body);
        scopes_.pop_back();
        if (!terminated_) terminate(ir::Terminator::br(header));

        const int exit = startBlock("while.exit");
        out_.blocks[static_cast<size_t>(header)].term =
            ir::Terminator::condBr(std::move(cond), body, exit);
        return;
      }
      case AstStmtKind::For: {
        scopes_.emplace_back();  // for-init variable scope
        if (s.forInit) lowerStmt(*s.forInit);
        const int pre = cur_;
        const int header = startBlock("for.cond");
        out_.blocks[static_cast<size_t>(pre)].term = ir::Terminator::br(header);
        ExprPtr cond =
            s.forCond ? lowerExpr(*s.forCond) : Expr::constant(1);

        const int body = startBlock("for.body");
        scopes_.emplace_back();
        lowerStmts(s.body);
        scopes_.pop_back();
        if (!terminated_) {
          if (s.forStep) lowerStmt(*s.forStep);
          terminate(ir::Terminator::br(header));
        }
        scopes_.pop_back();

        const int exit = startBlock("for.exit");
        out_.blocks[static_cast<size_t>(header)].term =
            ir::Terminator::condBr(std::move(cond), body, exit);
        return;
      }
    }
    CYP_FAIL("bad ast stmt kind");
  }
};

}  // namespace

bool isIntrinsicName(const std::string& name) {
  if (stmtIntrinsics().count(name)) return true;
  if (commIntrinsics().count(name)) return true;
  static const std::set<std::string> others = {
      "mpi_wait", "mpi_isend", "mpi_irecv", "mpi_comm_split", "mpi_sendrecv",
      "compute", "min", "max"};
  return others.count(name) > 0;
}

std::unique_ptr<ir::Module> lower(const AstProgram& program) {
  auto m = std::make_unique<ir::Module>();
  std::set<std::string> seen;
  for (const AstFunc& f : program.functions) {
    if (seen.count(f.name))
      semaError(f.line, 0, "duplicate function '" + f.name + "'");
    if (isIntrinsicName(f.name))
      semaError(f.line, 0, "'" + f.name + "' is a reserved builtin name");
    seen.insert(f.name);
  }
  for (const AstFunc& f : program.functions) {
    ir::Function* out = m->addFunction(f.name);
    FunctionLowerer(program, f, *out).run();
  }
  return m;
}

std::unique_ptr<ir::Module> compileProgram(const std::string& source) {
  AstProgram ast = parse(source);
  auto m = lower(ast);
  CYP_CHECK(m->function("main") != nullptr, "minic: program has no 'main' function");
  m->numberCallSites();
  ir::verify(*m);
  return m;
}

}  // namespace cypress::minic
