// MiniC abstract syntax tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace cypress::minic {

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

enum class AstExprKind {
  Number,
  Var,
  Rank,
  Size,
  AnySource,
  Unary,
  Binary,
  Intrinsic,  // value-producing builtin: min, max, mpi_isend, mpi_irecv
};

struct AstExpr {
  AstExprKind kind;
  int line = 0, col = 0;

  int64_t number = 0;             // Number
  std::string name;               // Var / Intrinsic
  ir::UnOp uop = ir::UnOp::Neg;   // Unary
  ir::BinOp bop = ir::BinOp::Add; // Binary
  AstExprPtr lhs, rhs;            // Unary uses lhs
  std::vector<AstExprPtr> args;   // Intrinsic
};

struct AstStmt;
using AstStmtPtr = std::unique_ptr<AstStmt>;

enum class AstStmtKind {
  VarDecl,  // var name = init;
  Assign,   // name = expr;
  If,       // if (cond) then else?
  While,    // while (cond) body
  For,      // for (init; cond; step) body
  Call,     // name(args);  — user function or statement intrinsic
  Return,   // return;
  Block,    // { ... } — scoping only
};

struct AstStmt {
  AstStmtKind kind;
  int line = 0, col = 0;

  std::string name;                 // VarDecl/Assign/Call
  AstExprPtr expr;                  // VarDecl init, Assign RHS, If/While cond
  std::vector<AstExprPtr> args;     // Call
  std::vector<AstStmtPtr> body;     // If-then, While/For body, Block
  std::vector<AstStmtPtr> elseBody; // If-else
  AstStmtPtr forInit, forStep;      // For (VarDecl/Assign)
  AstExprPtr forCond;               // For
};

struct AstFunc {
  std::string name;
  std::vector<std::string> params;
  std::vector<AstStmtPtr> body;
  int line = 0;
};

struct AstProgram {
  std::vector<AstFunc> functions;
};

}  // namespace cypress::minic
