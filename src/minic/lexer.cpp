#include "minic/lexer.hpp"

#include <cctype>
#include <map>

#include "support/error.hpp"

namespace cypress::minic {

namespace {

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw = {
      {"func", Tok::KwFunc},   {"var", Tok::KwVar},
      {"if", Tok::KwIf},       {"else", Tok::KwElse},
      {"while", Tok::KwWhile}, {"for", Tok::KwFor},
      {"return", Tok::KwReturn},
      {"rank", Tok::KwRank},   {"size", Tok::KwSize},
      {"ANY_SOURCE", Tok::KwAnySource},
  };
  return kw;
}

[[noreturn]] void lexError(int line, int col, const std::string& msg) {
  throw Error("minic:" + std::to_string(line) + ":" + std::to_string(col) +
              ": " + msg);
}

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1, col = 1;

  auto advance = [&](size_t n = 1) {
    for (size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](size_t off = 0) -> char {
    return i + off < source.size() ? source[i + off] : '\0';
  };
  auto push = [&](Tok kind, int l, int c) {
    Token t;
    t.kind = kind;
    t.line = l;
    t.col = c;
    out.push_back(std::move(t));
  };

  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // Comments: // to end of line, /* ... */.
    if (c == '/' && peek(1) == '/') {
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int l = line, cl = col;
      advance(2);
      while (i < source.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= source.size()) lexError(l, cl, "unterminated block comment");
      advance(2);
      continue;
    }

    const int l = line, cl = col;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      int64_t v = 0;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        v = v * 10 + (peek() - '0');
        advance();
      }
      Token t;
      t.kind = Tok::Number;
      t.number = v;
      t.line = l;
      t.col = cl;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
        word.push_back(peek());
        advance();
      }
      auto it = keywords().find(word);
      Token t;
      t.kind = it != keywords().end() ? it->second : Tok::Ident;
      t.text = std::move(word);
      t.line = l;
      t.col = cl;
      out.push_back(std::move(t));
      continue;
    }

    switch (c) {
      case '(': push(Tok::LParen, l, cl); advance(); break;
      case ')': push(Tok::RParen, l, cl); advance(); break;
      case '{': push(Tok::LBrace, l, cl); advance(); break;
      case '}': push(Tok::RBrace, l, cl); advance(); break;
      case ',': push(Tok::Comma, l, cl); advance(); break;
      case ';': push(Tok::Semi, l, cl); advance(); break;
      case '+': push(Tok::Plus, l, cl); advance(); break;
      case '-': push(Tok::Minus, l, cl); advance(); break;
      case '*': push(Tok::Star, l, cl); advance(); break;
      case '/': push(Tok::Slash, l, cl); advance(); break;
      case '%': push(Tok::Percent, l, cl); advance(); break;
      case '=':
        if (peek(1) == '=') { push(Tok::EqEq, l, cl); advance(2); }
        else { push(Tok::Assign, l, cl); advance(); }
        break;
      case '<':
        if (peek(1) == '=') { push(Tok::Le, l, cl); advance(2); }
        else if (peek(1) == '<') { push(Tok::Shl, l, cl); advance(2); }
        else { push(Tok::Lt, l, cl); advance(); }
        break;
      case '>':
        if (peek(1) == '=') { push(Tok::Ge, l, cl); advance(2); }
        else if (peek(1) == '>') { push(Tok::Shr, l, cl); advance(2); }
        else { push(Tok::Gt, l, cl); advance(); }
        break;
      case '!':
        if (peek(1) == '=') { push(Tok::Ne, l, cl); advance(2); }
        else { push(Tok::Not, l, cl); advance(); }
        break;
      case '&':
        if (peek(1) == '&') { push(Tok::AndAnd, l, cl); advance(2); }
        else lexError(l, cl, "stray '&' (did you mean '&&'?)");
        break;
      case '|':
        if (peek(1) == '|') { push(Tok::OrOr, l, cl); advance(2); }
        else lexError(l, cl, "stray '|' (did you mean '||'?)");
        break;
      default:
        lexError(l, cl, std::string("unexpected character '") + c + "'");
    }
  }
  Token end;
  end.kind = Tok::End;
  end.line = line;
  end.col = col;
  out.push_back(std::move(end));
  return out;
}

const char* tokName(Tok t) {
  switch (t) {
    case Tok::End: return "end of input";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::KwFunc: return "'func'";
    case Tok::KwVar: return "'var'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwRank: return "'rank'";
    case Tok::KwSize: return "'size'";
    case Tok::KwAnySource: return "'ANY_SOURCE'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Not: return "'!'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
  }
  return "?";
}

}  // namespace cypress::minic
