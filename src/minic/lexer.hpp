// MiniC lexer.
//
// MiniC is the small imperative language the repository's workloads are
// written in (the stand-in for the C/Fortran sources of the paper's
// benchmarks). It has integer variables, arithmetic, if/else, while/for,
// void functions with integer parameters, and MPI intrinsics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cypress::minic {

enum class Tok {
  End,
  Ident,
  Number,
  // keywords
  KwFunc, KwVar, KwIf, KwElse, KwWhile, KwFor, KwReturn,
  KwRank, KwSize, KwAnySource,
  // punctuation
  LParen, RParen, LBrace, RBrace, Comma, Semi,
  // operators
  Assign,        // =
  Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, EqEq, Ne,
  AndAnd, OrOr, Not,
  Shl, Shr,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;     // identifier spelling
  int64_t number = 0;   // numeric literals
  int line = 0;
  int col = 0;
};

/// Thrown (as cypress::Error) with "line:col: message" on bad input.
std::vector<Token> lex(const std::string& source);

const char* tokName(Tok t);

}  // namespace cypress::minic
