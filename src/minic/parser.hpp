// MiniC recursive-descent parser.
#pragma once

#include <string>

#include "minic/ast.hpp"

namespace cypress::minic {

/// Parse MiniC source into an AST. Throws cypress::Error with
/// "minic:line:col: message" on syntax errors.
AstProgram parse(const std::string& source);

}  // namespace cypress::minic
