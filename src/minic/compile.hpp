// MiniC → IR lowering and semantic checks.
#pragma once

#include <memory>
#include <string>

#include "ir/ir.hpp"
#include "minic/ast.hpp"

namespace cypress::minic {

/// Lower a parsed program to IR. Performs semantic checks (undefined /
/// redefined variables, unknown callees, intrinsic arity, non-blocking
/// request usage) and throws cypress::Error with source positions.
std::unique_ptr<ir::Module> lower(const AstProgram& program);

/// Convenience: parse + lower + verify + number call sites.
std::unique_ptr<ir::Module> compileProgram(const std::string& source);

/// True when `name` is reserved for an MPI/builtin intrinsic.
bool isIntrinsicName(const std::string& name);

}  // namespace cypress::minic
