#include "workloads/workloads.hpp"

#include <cmath>
#include <map>

#include "support/error.hpp"

namespace cypress::workloads {

namespace {

/// Replace $NAME$ placeholders with integer values.
std::string subst(std::string src,
                  const std::map<std::string, long long>& values) {
  for (const auto& [key, value] : values) {
    const std::string token = "$" + key + "$";
    size_t pos;
    while ((pos = src.find(token)) != std::string::npos)
      src.replace(pos, token.size(), std::to_string(value));
  }
  CYP_CHECK(src.find('$') == std::string::npos,
            "workload template has unresolved placeholders");
  return src;
}

bool isSquare(int p) {
  const int q = static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
  return q * q == p;
}

bool isPow2(int p) { return p > 0 && (p & (p - 1)) == 0; }

int intSqrt(int p) {
  return static_cast<int>(std::lround(std::sqrt(static_cast<double>(p))));
}

int ilog2(int p) {
  int l = 0;
  while ((1 << l) < p) ++l;
  return l;
}

/// Balanced 3D factorization a <= b <= c with a*b*c == p.
void factor3(int p, int* a, int* b, int* c) {
  int bestA = 1, bestB = 1, bestC = p;
  double bestSpread = 1e30;
  for (int x = 1; x * x * x <= p; ++x) {
    if (p % x) continue;
    const int rest = p / x;
    for (int y = x; y * y <= rest; ++y) {
      if (rest % y) continue;
      const int z = rest / y;
      const double spread = static_cast<double>(z) / x;
      if (spread < bestSpread) {
        bestSpread = spread;
        bestA = x;
        bestB = y;
        bestC = z;
      }
    }
  }
  *a = bestA;
  *b = bestB;
  *c = bestC;
}

// --------------------------------------------------------------------
// BT: square process grid, face exchanges + pipelined line solves.

std::string btSource(int procs, int scale) {
  CYP_CHECK(isSquare(procs), "BT requires a square process count, got " << procs);
  const int q = intSqrt(procs);
  const long long face = std::max(2048LL, 40000000LL / (procs * 16));
  const long long line = std::max(1024LL, face / 4);
  return subst(R"(
// BT communication skeleton: multi-partition square grid.
func line_solve(prev, next, first, last, bytes, tag) {
  // forward substitution along the line
  if (first == 0) { mpi_recv(prev, bytes, tag); }
  compute(60000);
  if (last == 0)  { mpi_send(next, bytes, tag); }
  // backward substitution
  if (last == 0)  { mpi_recv(next, bytes, tag + 1); }
  compute(60000);
  if (first == 0) { mpi_send(prev, bytes, tag + 1); }
}

func main() {
  var q = $Q$;
  var row = rank / q;
  var col = rank % q;
  for (var step = 0; step < $NITER$; step = step + 1) {
    // copy_faces: non-blocking exchange with the four torus neighbours
    var e = row * q + (col + 1) % q;
    var w = row * q + (col + q - 1) % q;
    var s = ((row + 1) % q) * q + col;
    var n = ((row + q - 1) % q) * q + col;
    var r1 = mpi_isend(e, $FACE$, 1);
    var r2 = mpi_isend(w, $FACE$, 2);
    var r3 = mpi_isend(s, $FACE$, 3);
    var r4 = mpi_isend(n, $FACE$, 4);
    var r5 = mpi_irecv(w, $FACE$, 1);
    var r6 = mpi_irecv(e, $FACE$, 2);
    var r7 = mpi_irecv(n, $FACE$, 3);
    var r8 = mpi_irecv(s, $FACE$, 4);
    mpi_waitall();
    compute(250000);
    // x / y / z solves: pipelines along rows and columns
    line_solve(rank - 1, rank + 1, col == 0, col == q - 1, $LINE$, 10);
    line_solve(rank - q, rank + q, row == 0, row == q - 1, $LINE$, 20);
    line_solve(rank - q, rank + q, row == 0, row == q - 1, $LINE$, 30);
  }
  mpi_allreduce(40);
})",
               {{"Q", q},
                {"NITER", 20LL * scale},
                {"FACE", face},
                {"LINE", line}});
}

// --------------------------------------------------------------------
// CG: butterfly reductions within process rows + transpose exchange.

std::string cgSource(int procs, int scale) {
  CYP_CHECK(isPow2(procs), "CG requires a power-of-two process count, got " << procs);
  const int k = ilog2(procs);
  const int npcols = 1 << ((k + 1) / 2);
  const int nprows = procs / npcols;
  const long long vec = std::max(1024LL, 1200000LL / npcols);
  return subst(R"(
// CG communication skeleton: 2D layout, row butterflies + transpose.
func butterfly(mecol, rowbase, stages, bytes, tagbase) {
  var s = 1;
  for (var i = 0; i < stages; i = i + 1) {
    var pcol = mecol - s;
    if ((mecol / s) % 2 == 0) { pcol = mecol + s; }
    mpi_send(rowbase + pcol, bytes, tagbase + i);
    mpi_recv(rowbase + pcol, bytes, tagbase + i);
    s = s * 2;
  }
}

func main() {
  var npcols = $NPCOLS$;
  var nprows = $NPROWS$;
  var mecol = rank % npcols;
  var merow = rank / npcols;
  var rowbase = merow * npcols;
  var l2npcols = $L2NPCOLS$;
  var transpose = mecol * nprows + merow;
  if (npcols != nprows) { transpose = (rank + size / 2) % size; }
  for (var it = 0; it < $NITER$; it = it + 1) {
    for (var cgit = 0; cgit < 25; cgit = cgit + 1) {
      // rho = r.r partial sums across the row
      butterfly(mecol, rowbase, l2npcols, 16, 20);
      // q = A.p exchange with the transpose partner
      if (transpose != rank) {
        mpi_send(transpose, $VEC$, 50);
        mpi_recv(transpose, $VEC$, 50);
      }
      // partial vector reductions back across the row
      butterfly(mecol, rowbase, l2npcols, $VEC$, 60);
      compute(120000);
    }
    // residual norm
    butterfly(mecol, rowbase, l2npcols, 16, 90);
  }
})",
               {{"NPCOLS", npcols},
                {"NPROWS", nprows},
                {"L2NPCOLS", ilog2(npcols)},
                {"VEC", vec},
                {"NITER", 3LL * scale}});
}

// --------------------------------------------------------------------
// DT: quadtree-ish data-flow graph, few large messages.

std::string dtSource(int procs, int scale) {
  (void)procs;
  const long long bytes = 2000000LL * scale;
  return subst(R"(
// DT communication skeleton: reduction tree from leaves to rank 0.
func main() {
  var left = rank * 2 + 1;
  var right = rank * 2 + 2;
  if (left < size)  { mpi_recv(left, $BYTES$, 0); }
  if (right < size) { mpi_recv(right, $BYTES$, 0); }
  compute(400000);
  if (rank > 0) { mpi_send((rank - 1) / 2, $BYTES$, 0); }
  mpi_barrier();
})",
               {{"BYTES", bytes}});
}

// --------------------------------------------------------------------
// EP: compute + final reductions.

std::string epSource(int procs, int scale) {
  (void)procs;
  return subst(R"(
// EP communication skeleton: embarrassingly parallel.
func main() {
  for (var blk = 0; blk < $BLOCKS$; blk = blk + 1) { compute(900000); }
  mpi_allreduce(16);
  mpi_allreduce(16);
  mpi_allreduce(80);
})",
               {{"BLOCKS", 8LL * scale}});
}

// --------------------------------------------------------------------
// FT: all-to-all transposes per iteration.

std::string ftSource(int procs, int scale) {
  const long long chunk = std::max(1024LL, (1LL << 26) / (static_cast<long long>(procs) * procs));
  return subst(R"(
// FT communication skeleton: FFT transpose steps.
func main() {
  for (var it = 0; it < $NITER$; it = it + 1) {
    compute(500000);
    mpi_alltoall($CHUNK$);
    compute(250000);
    mpi_allreduce(32);
  }
})",
               {{"NITER", 15LL * scale}, {"CHUNK", chunk}});
}

// --------------------------------------------------------------------
// LU: 2D wavefront pipeline with many small blocking messages.

std::string luSource(int procs, int scale) {
  CYP_CHECK(isPow2(procs), "LU requires a power-of-two process count, got " << procs);
  const int k = ilog2(procs);
  const int qx = 1 << ((k + 1) / 2);
  const int qy = procs / qx;
  return subst(R"(
// LU communication skeleton: SSOR wavefront sweeps.
func main() {
  var qx = $QX$;
  var xi = rank % qx;
  var yi = rank / qx;
  var qy = $QY$;
  for (var step = 0; step < $NITER$; step = step + 1) {
    // lower-triangular sweep: wavefront from (0,0)
    for (var z = 0; z < $NZ$; z = z + 1) {
      if (xi > 0) { mpi_recv(rank - 1, $BYTES$, 11); }
      if (yi > 0) { mpi_recv(rank - qx, $BYTES$, 12); }
      compute(25000);
      if (xi < qx - 1) { mpi_send(rank + 1, $BYTES$, 11); }
      if (yi < qy - 1) { mpi_send(rank + qx, $BYTES$, 12); }
    }
    // upper-triangular sweep: wavefront from (qx-1, qy-1)
    for (var z = 0; z < $NZ$; z = z + 1) {
      if (xi < qx - 1) { mpi_recv(rank + 1, $BYTES$, 13); }
      if (yi < qy - 1) { mpi_recv(rank + qx, $BYTES$, 14); }
      compute(25000);
      if (xi > 0) { mpi_send(rank - 1, $BYTES$, 13); }
      if (yi > 0) { mpi_send(rank - qx, $BYTES$, 14); }
    }
    if (step % 8 == 0) { mpi_allreduce(40); }
  }
})",
               {{"QX", qx},
                {"QY", qy},
                {"NZ", 24},
                {"BYTES", 1120},
                {"NITER", 12LL * scale}});
}

// --------------------------------------------------------------------
// MG: V-cycle multigrid on a 3D grid; level-dependent neighbours.

std::string mgSource(int procs, int scale) {
  CYP_CHECK(isPow2(procs), "MG requires a power-of-two process count, got " << procs);
  int px, py, pz;
  factor3(procs, &px, &py, &pz);
  return subst(R"(
// MG communication skeleton: V-cycle with level-dependent exchanges.
func exchange(d, bytes) {
  var px = $PX$;
  var py = $PY$;
  var pz = $PZ$;
  var xi = rank % px;
  var yi = (rank / px) % py;
  var zi = rank / (px * py);
  var active = 1;
  if (xi % d != 0) { active = 0; }
  if (yi % d != 0) { active = 0; }
  if (zi % d != 0) { active = 0; }
  if (active == 1) {
    // x direction
    if (xi + d < px) { mpi_send(rank + d, bytes, 31); }
    if (xi >= d)     { mpi_recv(rank - d, bytes, 31); }
    if (xi >= d)     { mpi_send(rank - d, bytes, 32); }
    if (xi + d < px) { mpi_recv(rank + d, bytes, 32); }
    // y direction
    if (yi + d < py) { mpi_send(rank + d * px, bytes, 33); }
    if (yi >= d)     { mpi_recv(rank - d * px, bytes, 33); }
    if (yi >= d)     { mpi_send(rank - d * px, bytes, 34); }
    if (yi + d < py) { mpi_recv(rank + d * px, bytes, 34); }
    // z direction
    if (zi + d < pz) { mpi_send(rank + d * px * py, bytes, 35); }
    if (zi >= d)     { mpi_recv(rank - d * px * py, bytes, 35); }
    if (zi >= d)     { mpi_send(rank - d * px * py, bytes, 36); }
    if (zi + d < pz) { mpi_recv(rank + d * px * py, bytes, 36); }
  }
}

func main() {
  for (var it = 0; it < $NITER$; it = it + 1) {
    // restriction: fine -> coarse
    var d = 1;
    var b = $FINEB$;
    for (var l = 0; l < $LEVELS$; l = l + 1) {
      exchange(d, b);
      compute(80000);
      d = d * 2;
      b = max(b / 4, 256);
    }
    // prolongation: coarse -> fine
    for (var l = 0; l < $LEVELS$; l = l + 1) {
      d = d / 2;
      exchange(d, b);
      compute(80000);
      b = min(b * 4, $FINEB$);
    }
    mpi_allreduce(24);
  }
})",
               {{"PX", px},
                {"PY", py},
                {"PZ", pz},
                {"LEVELS", 5},
                {"FINEB", 65536},
                {"NITER", 10LL * scale}});
}

// --------------------------------------------------------------------
// SP: BT-like structure with per-iteration varying sizes and tags.

std::string spSource(int procs, int scale) {
  CYP_CHECK(isSquare(procs), "SP requires a square process count, got " << procs);
  const int q = intSqrt(procs);
  const long long face = std::max(2048LL, 30000000LL / (procs * 16));
  return subst(R"(
// SP communication skeleton: varying message sizes and tags per step —
// the pattern that defeats last-record-only matching.
func sweep(prev, next, first, last, bytes, tag) {
  if (first == 0) { mpi_recv(prev, bytes, tag); }
  compute(50000);
  if (last == 0)  { mpi_send(next, bytes, tag); }
}

func main() {
  var q = $Q$;
  var row = rank / q;
  var col = rank % q;
  for (var step = 0; step < $NITER$; step = step + 1) {
    var fb = $FACE$ + (step * 5 % 13) * 512 + (rank % 3) * 256;
    var tg = 100 + step % 7;
    var e = row * q + (col + 1) % q;
    var w = row * q + (col + q - 1) % q;
    var s = ((row + 1) % q) * q + col;
    var n = ((row + q - 1) % q) * q + col;
    var fe = $FACE$ + (step * 5 % 13) * 512 + (e % 3) * 256;
    var fw = $FACE$ + (step * 5 % 13) * 512 + (w % 3) * 256;
    var fs = $FACE$ + (step * 5 % 13) * 512 + (s % 3) * 256;
    var fn = $FACE$ + (step * 5 % 13) * 512 + (n % 3) * 256;
    var r1 = mpi_isend(e, fb, tg);
    var r2 = mpi_isend(w, fb, tg);
    var r3 = mpi_isend(s, fb, tg);
    var r4 = mpi_isend(n, fb, tg);
    var r5 = mpi_irecv(w, fw, tg);
    var r6 = mpi_irecv(e, fe, tg);
    var r7 = mpi_irecv(n, fn, tg);
    var r8 = mpi_irecv(s, fs, tg);
    mpi_waitall();
    compute(220000);
    // pipelined sweeps with per-step sizes
    var lb = 1024 + (step % 11) * 128;
    sweep(rank - 1, rank + 1, col == 0, col == q - 1, lb, 10 + step % 5);
    sweep(rank - q, rank + q, row == 0, row == q - 1, lb, 40 + step % 5);
    sweep(rank - q, rank + q, row == 0, row == q - 1, lb, 70 + step % 5);
  }
  mpi_allreduce(40);
})",
               {{"Q", q}, {"NITER", 20LL * scale}, {"FACE", face}});
}

// --------------------------------------------------------------------
// JACOBI: the paper's Figure 3 example.

std::string jacobiSource(int procs, int scale) {
  (void)procs;
  return subst(R"(
// Jacobi iteration (paper Figure 3).
func main() {
  for (var k = 0; k < $NITER$; k = k + 1) {
    if (rank < size - 1) { mpi_send(rank + 1, $BYTES$, 0); }
    if (rank > 0)        { mpi_recv(rank - 1, $BYTES$, 0); }
    if (rank > 0)        { mpi_send(rank - 1, $BYTES$, 0); }
    if (rank < size - 1) { mpi_recv(rank + 1, $BYTES$, 0); }
    compute(150000);
  }
})",
               {{"NITER", 50LL * scale}, {"BYTES", 8192}});
}

// --------------------------------------------------------------------
// LESLIE3D: 3D stencil, exactly two halo sizes (43 KB / 83 KB).

std::string leslieSource(int procs, int scale) {
  int px, py, pz;
  factor3(procs, &px, &py, &pz);
  return subst(R"(
// LESlie3d communication skeleton: 3D domain decomposition with two
// halo message sizes, plus periodic residual reductions.
func main() {
  var px = $PX$;
  var py = $PY$;
  var pz = $PZ$;
  var xi = rank % px;
  var yi = (rank / px) % py;
  var zi = rank / (px * py);
  var small = 44032;  // 43 KB
  var big = 84992;    // 83 KB
  for (var step = 0; step < $NITER$; step = step + 1) {
    if (xi > 0)      { var a1 = mpi_isend(rank - 1, small, 1); }
    if (xi < px - 1) { var a2 = mpi_isend(rank + 1, small, 1); }
    if (xi > 0)      { var a3 = mpi_irecv(rank - 1, small, 1); }
    if (xi < px - 1) { var a4 = mpi_irecv(rank + 1, small, 1); }
    if (yi > 0)      { var b1 = mpi_isend(rank - px, small, 2); }
    if (yi < py - 1) { var b2 = mpi_isend(rank + px, small, 2); }
    if (yi > 0)      { var b3 = mpi_irecv(rank - px, small, 2); }
    if (yi < py - 1) { var b4 = mpi_irecv(rank + px, small, 2); }
    if (zi > 0)      { var c1 = mpi_isend(rank - px * py, big, 3); }
    if (zi < pz - 1) { var c2 = mpi_isend(rank + px * py, big, 3); }
    if (zi > 0)      { var c3 = mpi_irecv(rank - px * py, big, 3); }
    if (zi < pz - 1) { var c4 = mpi_irecv(rank + px * py, big, 3); }
    mpi_waitall();
    // strong scaling: the 193^3 grid is divided among the processes
    compute(51200000 / size);
    if (step % 5 == 0) { mpi_allreduce(40); }
  }
})",
               {{"PX", px}, {"PY", py}, {"PZ", pz}, {"NITER", 25LL * scale}});
}

// --------------------------------------------------------------------
// SMG2000: semicoarsening multigrid (the paper's §I motivating example,
// which produced ~5 TB of traces at 22,538 processes). Coarsening
// proceeds one dimension at a time, so the level structure is three
// times deeper than MG's and the setup phase exchanges many small
// messages — the trace-volume pathology the paper opens with.

std::string smgSource(int procs, int scale) {
  CYP_CHECK(isPow2(procs), "SMG2000 requires a power-of-two process count, got "
                               << procs);
  int px, py, pz;
  factor3(procs, &px, &py, &pz);
  return subst(R"(
// SMG2000 communication skeleton: semicoarsening V-cycles.
func exchange_dim(stride, extent, coord, d, bytes, tag) {
  // one dimension of a halo exchange at active-rank distance d
  if (coord % d == 0) {
    if (coord + d < extent) { mpi_send(rank + d * stride, bytes, tag); }
    if (coord >= d)         { mpi_recv(rank - d * stride, bytes, tag); }
    if (coord >= d)         { mpi_send(rank - d * stride, bytes, tag + 1); }
    if (coord + d < extent) { mpi_recv(rank + d * stride, bytes, tag + 1); }
  }
}

func main() {
  var px = $PX$;
  var py = $PY$;
  var pz = $PZ$;
  var xi = rank % px;
  var yi = (rank / px) % py;
  var zi = rank / (px * py);
  // setup phase: several rounds of small nearest-neighbour messages
  for (var r = 0; r < $SETUP$; r = r + 1) {
    exchange_dim(1, px, xi, 1, 512, 10);
    exchange_dim(px, py, yi, 1, 512, 20);
    exchange_dim(px * py, pz, zi, 1, 512, 30);
  }
  for (var it = 0; it < $NITER$; it = it + 1) {
    // semicoarsening: the coarsened dimension cycles z, y, x per level
    var dz = 1;
    var dy = 1;
    var dx = 1;
    var b = $FINEB$;
    for (var level = 0; level < $LEVELS$; level = level + 1) {
      exchange_dim(1, px, xi, dx, b, 40);
      exchange_dim(px, py, yi, dy, b, 50);
      exchange_dim(px * py, pz, zi, dz, b, 60);
      if (level % 3 == 0) { dz = dz * 2; }
      if (level % 3 == 1) { dy = dy * 2; }
      if (level % 3 == 2) { dx = dx * 2; }
      b = max(b / 2, 128);
    }
    mpi_allreduce(24);
  }
})",
               {{"PX", px},
                {"PY", py},
                {"PZ", pz},
                {"SETUP", 6},
                {"LEVELS", 9},
                {"FINEB", 32768},
                {"NITER", 8LL * scale}});
}

// --------------------------------------------------------------------
// IS: NPB integer sort — bucket redistribution via all-to-all exchanges
// plus key-extrema reductions (not part of the paper's Fig. 15 set, but
// completes the NPB suite for library users).

std::string isSource(int procs, int scale) {
  const long long bucket =
      std::max(1024LL, (1LL << 25) / (static_cast<long long>(procs) * procs));
  return subst(R"(
// IS communication skeleton: bucket sort redistribution.
func main() {
  for (var it = 0; it < $NITER$; it = it + 1) {
    compute(300000);
    mpi_allreduce(8192);     // bucket size histogram
    mpi_alltoall($BUCKET$);  // key redistribution
    compute(150000);
  }
  mpi_allreduce(16);         // full verification
})",
               {{"NITER", 10LL * scale}, {"BUCKET", bucket}});
}

bool anyProcs(int p) { return p >= 1; }
bool squareProcs(int p) { return isSquare(p); }
bool pow2Procs(int p) { return isPow2(p); }

const std::vector<Workload>& registry() {
  static const std::vector<Workload> table = {
      {"BT", {64, 121, 256, 400}, btSource, squareProcs},
      {"CG", {64, 128, 256, 512}, cgSource, pow2Procs},
      {"DT", {48, 64, 128, 256}, dtSource, anyProcs},
      {"EP", {64, 128, 256, 512}, epSource, anyProcs},
      {"FT", {64, 128, 256, 512}, ftSource, anyProcs},
      {"LU", {64, 128, 256, 512}, luSource, pow2Procs},
      {"MG", {64, 128, 256, 512}, mgSource, pow2Procs},
      {"SP", {64, 121, 256, 400}, spSource, squareProcs},
      {"SMG2000", {64, 128, 256, 512}, smgSource, pow2Procs},
      {"IS", {64, 128, 256, 512}, isSource, anyProcs},
      {"JACOBI", {16, 32, 64}, jacobiSource, anyProcs},
      {"LESLIE3D", {32, 64, 128, 256, 512}, leslieSource, anyProcs},
  };
  return table;
}

}  // namespace

const Workload& get(const std::string& name) {
  for (const Workload& w : registry())
    if (w.name == name) return w;
  CYP_FAIL("unknown workload '" << name << "'");
}

std::vector<std::string> allNames() {
  std::vector<std::string> names;
  for (const Workload& w : registry()) names.push_back(w.name);
  return names;
}

std::vector<std::string> npbNames() {
  return {"BT", "CG", "DT", "EP", "FT", "LU", "MG", "SP"};
}

}  // namespace cypress::workloads
