// MiniC communication skeletons of the paper's evaluation workloads.
//
// Each generator emits the *communication structure* of the benchmark —
// who talks to whom, message sizes, loop/branch nesting — which is what
// determines trace compressibility. Iteration counts are scaled down
// from CLASS D (a `scale` knob) so hundreds of simulated ranks fit a
// laptop; the per-tool ordering and scaling trends are preserved.
//
//   BT  — 3D multi-partition on a square process grid: face exchanges
//         (non-blocking + waitall) and pipelined line solves per
//         dimension; constant message sizes.
//   CG  — power-of-two 2D layout: butterfly reductions inside rows and
//         transpose-partner exchanges per CG iteration.
//   DT  — small quadtree data-flow graph: few, large messages.
//   EP  — embarrassingly parallel: compute plus a few final reductions.
//   FT  — per-iteration all-to-all transposes plus checksum reductions.
//   LU  — 2D wavefront (SSOR) pipeline: very many small blocking
//         messages, highly regular.
//   MG  — V-cycle multigrid on a 3D process grid: level-dependent
//         neighbor distances and participation (nested branches,
//         irregular across ranks — the hard case of the paper).
//   SP  — like BT but with per-iteration varying message sizes and tags
//         (the case where CYPRESS's last-record matching loses to
//         ScalaTrace-2's value aggregation).
//   JACOBI   — the paper's Figure 3 example.
//   LESLIE3D — 3D CFD stencil with exactly two halo message sizes
//         (43 KB / 83 KB, as reported in §VII-D) plus residual
//         reductions.
#pragma once

#include <string>
#include <vector>

namespace cypress::workloads {

struct Workload {
  std::string name;
  /// Process counts used in the paper's figures for this code.
  std::vector<int> paperProcCounts;
  /// Generate the MiniC source for `procs` ranks at iteration scale
  /// `scale` (1 = bench default; tests use smaller).
  std::string (*source)(int procs, int scale);
  /// Validate a process count (e.g. BT/SP need squares, CG/FT powers of
  /// two); generators throw cypress::Error on violation.
  bool (*supportsProcs)(int procs);
};

/// All workloads, keyed by upper-case name. Throws on unknown names.
const Workload& get(const std::string& name);
std::vector<std::string> allNames();

/// The eight NPB codes in paper order.
std::vector<std::string> npbNames();

}  // namespace cypress::workloads
