// cyptraced — crash-recoverable job daemon for the CYPRESS pipeline.
//
//   cyptraced serve --socket PATH --spool DIR [--recover]
//             [--queue N] [--concurrent N] [--client-cap N]
//             [--attempts N] [--deadline MS] [--threads T]
//             [--crash-after-segments N]
//       Run the daemon: accept run/compress/verify/recover/query jobs over a
//       local Unix socket (plus compressed-domain query jobs), with
//       bounded admission, per-job watchdog
//       deadlines, retry with exponential backoff, and a CYL1 job
//       ledger. --recover salvages an existing ledger after a crash:
//       unfinished jobs are re-queued and their torn journals renamed
//       to .salvage for `cyptrace recover`. --crash-after-segments is a
//       test hook that SIGKILLs the daemon after the Nth ledger
//       segment (the kill-matrix integration test drives it).
//
//   cyptraced submit --socket PATH <workload|file.mc> [--procs N]
//             [--scale S] [--fault SPEC]... [--transient-faults]
//             [--attempts N] [--deadline MS]
//             [--kind run|compress|verify|recover|query] [--query SPEC]
//             [--wait [MS]]
//       A query job (--kind query --query "matrix") answers a
//       compressed-domain analysis against a trace file and writes the
//       canonical JSON as the job artifact.
//       Submit one job; prints the job id (and, with --wait, blocks for
//       the outcome). Exit 0 on DONE, 3 on FAILED/CANCELLED, 4 when
//       the server refused the job (REJECTED_BUSY).
//
//   cyptraced status  --socket PATH <jobId>
//   cyptraced wait    --socket PATH <jobId> [--timeout MS]
//   cyptraced cancel  --socket PATH <jobId>
//   cyptraced list    --socket PATH
//   cyptraced counters --socket PATH
//   cyptraced shutdown --socket PATH
//
// See docs/SERVICE.md for the wire protocol and the job state machine.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "workloads/workloads.hpp"

using namespace cypress;

namespace {

volatile std::sig_atomic_t gSignalled = 0;

void onSignal(int) { gSignalled = 1; }

struct Args {
  std::string command;
  std::string target;
  std::string socket = "cyptraced.sock";
  std::string spool = "cyptraced-spool";
  std::string kind = "run";
  bool recover = false;
  size_t queue = 8;
  int concurrent = 2;
  size_t clientCap = 4;
  uint32_t attempts = 0;
  uint64_t deadlineMs = 0;
  int threads = 1;
  uint64_t crashAfterSegments = 0;
  int procs = 8;
  int scale = 1;
  std::vector<std::string> faultSpecs;
  bool transientFaults = false;
  std::string querySpec;
  bool wait = false;
  uint64_t waitMs = 120'000;
  uint64_t timeoutMs = 120'000;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cyptraced serve --socket PATH --spool DIR [--recover] [--queue N]\n"
      "            [--concurrent N] [--client-cap N] [--attempts N]\n"
      "            [--deadline MS] [--threads T] [--crash-after-segments N]\n"
      "  cyptraced submit --socket PATH <workload|file.mc> [--procs N] [--scale S]\n"
      "            [--kind run|compress|verify|recover|query] [--query SPEC]\n"
      "            [--fault SPEC]...\n"
      "            [--transient-faults] [--attempts N] [--deadline MS] [--wait [MS]]\n"
      "  cyptraced status|wait|cancel --socket PATH <jobId> [--timeout MS]\n"
      "  cyptraced list|counters|shutdown --socket PATH\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) usage();
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--socket") a.socket = value();
    else if (flag == "--spool") a.spool = value();
    else if (flag == "--recover") a.recover = true;
    else if (flag == "--queue") a.queue = std::stoull(value());
    else if (flag == "--concurrent") a.concurrent = std::stoi(value());
    else if (flag == "--client-cap") a.clientCap = std::stoull(value());
    else if (flag == "--attempts") a.attempts = static_cast<uint32_t>(std::stoul(value()));
    else if (flag == "--deadline") a.deadlineMs = std::stoull(value());
    else if (flag == "--threads") a.threads = std::stoi(value());
    else if (flag == "--crash-after-segments") a.crashAfterSegments = std::stoull(value());
    else if (flag == "--procs") a.procs = std::stoi(value());
    else if (flag == "--scale") a.scale = std::stoi(value());
    else if (flag == "--kind") a.kind = value();
    else if (flag == "--query") a.querySpec = value();
    else if (flag == "--fault") a.faultSpecs.push_back(value());
    else if (flag == "--transient-faults") a.transientFaults = true;
    else if (flag == "--wait") {
      a.wait = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') a.waitMs = std::stoull(argv[++i]);
    }
    else if (flag == "--timeout") a.timeoutMs = std::stoull(value());
    else if (!flag.empty() && flag[0] != '-' && a.target.empty()) a.target = flag;
    else usage();
  }
  return a;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CYP_CHECK(in.good(), "cannot open " << path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void printStatus(const service::JobStatus& s) {
  std::printf("job %llu: %s (attempt %u)\n",
              static_cast<unsigned long long>(s.id), toString(s.state),
              s.attempts);
  if (!s.detail.empty()) std::printf("  %s\n", s.detail.c_str());
  if (!s.artifactPath.empty())
    std::printf("  artifact: %s (%s)\n", s.artifactPath.c_str(),
                humanBytes(s.artifactBytes).c_str());
  if (!s.journalPath.empty())
    std::printf("  journal:  %s\n", s.journalPath.c_str());
}

int exitForState(service::JobState s) {
  return s == service::JobState::Done ? 0 : 3;
}

int cmdServe(const Args& a) {
  service::ServerConfig cfg;
  cfg.spoolDir = a.spool;
  cfg.queueCapacity = a.queue;
  cfg.maxConcurrent = a.concurrent;
  cfg.perClientCap = a.clientCap;
  if (a.attempts) cfg.defaultMaxAttempts = a.attempts;
  if (a.deadlineMs) cfg.defaultDeadlineMs = a.deadlineMs;
  cfg.threadsPerJob = a.threads;
  cfg.crashAfterLedgerSegments = a.crashAfterSegments;
  cfg.recover = a.recover;

  service::JobServer server(cfg);
  if (!server.requeuedJobs().empty()) {
    std::printf("recovered ledger: re-queued %zu unfinished job(s):",
                server.requeuedJobs().size());
    for (uint64_t id : server.requeuedJobs())
      std::printf(" %llu", static_cast<unsigned long long>(id));
    std::printf("\n");
  }
  server.start();

  service::SocketServer sock(server, a.socket);
  sock.start();
  std::printf("cyptraced listening on %s (spool %s, queue %zu, concurrent %d)\n",
              a.socket.c_str(), a.spool.c_str(), a.queue, a.concurrent);
  std::fflush(stdout);

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  // Poll rather than block: condition waits are not interrupted by
  // signals, and SIGTERM must win even with no protocol traffic.
  while (!gSignalled && !sock.shutdownSeen())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::printf("cyptraced shutting down\n");
  sock.stop();
  server.stop();
  return 0;
}

int cmdSubmit(const Args& a) {
  if (a.target.empty()) usage();
  service::Client client(a.socket);
  service::JobSpec spec;
  if (a.kind == "run") spec.kind = service::JobKind::Run;
  else if (a.kind == "compress") spec.kind = service::JobKind::Compress;
  else if (a.kind == "verify") spec.kind = service::JobKind::Verify;
  else if (a.kind == "recover") spec.kind = service::JobKind::Recover;
  else if (a.kind == "query") spec.kind = service::JobKind::Query;
  else usage();
  if (spec.kind == service::JobKind::Query && a.querySpec.empty()) usage();
  spec.target = a.target;
  if (spec.kind == service::JobKind::Run && a.target.size() > 3 &&
      a.target.compare(a.target.size() - 3, 3, ".mc") == 0)
    spec.sourceText = readFile(a.target);
  spec.procs = static_cast<uint32_t>(a.procs);
  spec.scale = static_cast<uint32_t>(a.scale);
  spec.faultSpecs = a.faultSpecs;
  spec.faultsTransient = a.transientFaults;
  spec.deadlineMs = a.deadlineMs;
  spec.maxAttempts = a.attempts;
  spec.querySpec = a.querySpec;

  const service::Response resp = client.submit(spec);
  if (resp.code == service::ResponseCode::RejectedBusy) {
    std::fprintf(stderr, "rejected: %s\n", resp.message.c_str());
    return 4;
  }
  CYP_CHECK(resp.code == service::ResponseCode::Accepted,
            "submit failed: " << resp.message);
  std::printf("accepted as job %llu\n",
              static_cast<unsigned long long>(resp.jobId));
  if (!a.wait) return 0;
  auto s = client.wait(resp.jobId, a.waitMs);
  CYP_CHECK(s.has_value(), "job vanished while waiting");
  printStatus(*s);
  if (!isTerminal(s->state)) {
    std::fprintf(stderr, "timed out waiting for job %llu\n",
                 static_cast<unsigned long long>(resp.jobId));
    return 5;
  }
  return exitForState(s->state);
}

uint64_t parseJobId(const Args& a) {
  if (a.target.empty()) usage();
  return std::stoull(a.target);
}

int cmdStatus(const Args& a) {
  service::Client client(a.socket);
  auto s = client.status(parseJobId(a));
  if (!s) {
    std::fprintf(stderr, "no such job\n");
    return 1;
  }
  printStatus(*s);
  return isTerminal(s->state) ? exitForState(s->state) : 0;
}

int cmdWait(const Args& a) {
  service::Client client(a.socket);
  auto s = client.wait(parseJobId(a), a.timeoutMs);
  if (!s) {
    std::fprintf(stderr, "no such job\n");
    return 1;
  }
  printStatus(*s);
  if (!isTerminal(s->state)) {
    std::fprintf(stderr, "timed out\n");
    return 5;
  }
  return exitForState(s->state);
}

int cmdCancel(const Args& a) {
  service::Client client(a.socket);
  auto s = client.cancel(parseJobId(a));
  if (!s) {
    std::fprintf(stderr, "no such job\n");
    return 1;
  }
  printStatus(*s);
  return 0;
}

int cmdList(const Args& a) {
  service::Client client(a.socket);
  for (const auto& s : client.list()) printStatus(s);
  return 0;
}

int cmdCounters(const Args& a) {
  service::Client client(a.socket);
  const service::Counters c = client.counters();
  std::printf("submitted           %llu\n", static_cast<unsigned long long>(c.submitted));
  std::printf("accepted            %llu\n", static_cast<unsigned long long>(c.accepted));
  std::printf("rejected (busy)     %llu\n", static_cast<unsigned long long>(c.rejectedBusy));
  std::printf("rejected (cap)      %llu\n", static_cast<unsigned long long>(c.rejectedClientCap));
  std::printf("done                %llu\n", static_cast<unsigned long long>(c.done));
  std::printf("failed              %llu\n", static_cast<unsigned long long>(c.failed));
  std::printf("cancelled           %llu\n", static_cast<unsigned long long>(c.cancelled));
  std::printf("retries             %llu\n", static_cast<unsigned long long>(c.retries));
  std::printf("cache hits/misses   %llu/%llu\n",
              static_cast<unsigned long long>(c.cacheHits),
              static_cast<unsigned long long>(c.cacheMisses));
  return 0;
}

int cmdShutdown(const Args& a) {
  service::Client client(a.socket);
  client.shutdown();
  std::printf("shutdown acknowledged\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    ThreadPool::configureShared(
        static_cast<unsigned>(std::max(2, a.concurrent + 1)));
    if (a.command == "serve") return cmdServe(a);
    if (a.command == "submit") return cmdSubmit(a);
    if (a.command == "status") return cmdStatus(a);
    if (a.command == "wait") return cmdWait(a);
    if (a.command == "cancel") return cmdCancel(a);
    if (a.command == "list") return cmdList(a);
    if (a.command == "counters") return cmdCounters(a);
    if (a.command == "shutdown") return cmdShutdown(a);
    usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cyptraced: %s\n", e.what());
    return 1;
  }
}
