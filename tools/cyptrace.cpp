// cyptrace — command-line front end for the CYPRESS tracing pipeline.
//
//   cyptrace run  <workload|file.mc> --procs N [--scale S] [--out F.cyp]
//                 [--fault SPEC]... [--journal F.cyj] [--salvage]
//       Trace a built-in workload (BT, CG, ..., LESLIE3D) or a MiniC
//       source file with CYPRESS and write the merged compressed trace.
//       --fault injects deterministic faults (kill:R@N, abort:R@N,
//       drop:R@N, delay:R@N:NS); --journal also writes a
//       crash-consistent CYJ1 event journal; --salvage turns deadlocks
//       into partial traces instead of errors. Every artifact write
//       (trace, journal, rank dir) streams through an atomic writer;
//       --io-fault injects deterministic disk faults into those writes
//       (same SPECs as merge), and any disk fault exits with code 4
//       leaving nothing torn under a final name.
//   cyptrace recover <F.cyj> [--out F.cytr]
//       Salvage a (possibly torn) CYJ1 journal: replay intact segments,
//       report lost/unfinalized ranks, optionally write the recovered
//       raw trace.
//   cyptrace merge <rankdir> [--out F.cyp] [--merge-budget BYTES]
//                  [--batch-ranks N] [--work-dir D] [--resume] [--degrade]
//                  [--io-fault SPEC]... [--crash-after-steps N] [--keep-work]
//       Memory-bounded streaming merge of a rank-trace directory (as
//       written by `run --emit-ranks`) into one merged CYPC. Spills
//       intermediates to --work-dir as crash-consistent CYSP files and
//       checkpoints each completed step in a CYM1 manifest, so after a
//       kill -9 or a disk fault `merge --resume` continues from the
//       last durable step and produces a byte-identical trace.
//       --io-fault injects deterministic disk faults
//       (enospc@N | eio@N | short@N | fsync@N | rename@N, each with an
//       optional :pathSubstr filter); --degrade turns unrecoverable
//       disk faults into lostRanks annotations instead of errors.
//   cyptrace info <F.cyp>
//       Show the embedded CST and per-tool statistics of a trace file.
//   cyptrace dump <F.cyp> --rank R [--limit N] [--otf]
//       Decompress one rank's event sequence (or the whole trace as
//       OTF-style text with --otf).
//   cyptrace replay <F.cyp> [--net ib|eth]
//       Predict execution time by SIM-MPI replay under a LogGP model.
//       Replay consumes the compressed trace directly through
//       CompressedCursor — the expanded event vector is never
//       materialized.
//   cyptrace query <F.cyp> <SPEC> [--threads T]
//       Answer analyses in the compressed domain (no decompression):
//       summary | hist | matrix | colls | callsites src=A dst=B iter=K
//       [loop=GID]. Prints one canonical JSON object; cost is
//       O(compressed size), independent of the event count.
//   cyptrace compare <workload> --procs N [--scale S]
//       Run all tools side by side and print sizes/overheads.
//   cyptrace stats <F.cyp>
//       Decompress and print trace statistics + the comm-volume matrix.
//   cyptrace diff <A.cyp> <B.cyp>
//       Structural diff of two compressed traces of the same program.
//   cyptrace verify <workload|file.mc|trace file> [--procs N] [--scale S]
//                   [--fuzz N] [--seed S]
//       Roundtrip-verify traces. For a workload/source, run every tool
//       and check serialize → deserialize → re-serialize byte stability
//       plus decompression against the raw trace. For a trace file,
//       check byte stability and (with --fuzz) corruption-fuzz the
//       deserializer.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cypress/decompress.hpp"
#include "cypress/diff.hpp"
#include "cypress/merge_stream.hpp"
#include "driver/pipeline.hpp"
#include "flate/flate.hpp"
#include "query/engine.hpp"
#include "query/query.hpp"
#include "support/io.hpp"
#include "replay/simulator.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "trace/matrix.hpp"
#include "trace/otf_text.hpp"
#include "trace/stats.hpp"
#include "verify/fuzz.hpp"
#include "workloads/workloads.hpp"

using namespace cypress;

namespace {

struct Args {
  std::string command;
  std::string target;
  std::string target2;
  int procs = 16;
  int scale = 1;
  int threads = 1;
  int rank = 0;
  int limit = 20;
  bool otf = false;
  std::string out;
  std::string net = "ib";
  int fuzz = 0;
  uint64_t seed = 0xC4B8E55;
  std::vector<std::string> faultSpecs;
  std::string journal;
  bool salvage = false;
  std::string emitRanks;
  uint64_t mergeBudget = 256ull << 20;
  uint64_t batchRanks = 0;
  std::string workDir;
  bool resume = false;
  bool degrade = false;
  bool keepWork = false;
  std::vector<std::string> ioFaults;
  uint64_t crashAfterSteps = 0;
  std::string querySpec;
  bool queries = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cyptrace run <workload|file.mc> --procs N [--scale S] [--threads T]\n"
               "               [--out F.cyp] [--fault SPEC]... [--journal F.cyj] [--salvage]\n"
               "               [--emit-ranks DIR] [--io-fault SPEC]...\n"
               "               (SPEC: kill:R@N | abort:R@N | drop:R@N | delay:R@N:NS)\n"
               "  cyptrace recover <F.cyj> [--out F.cytr]\n"
               "  cyptrace merge <rankdir> [--out F.cyp] [--merge-budget BYTES[k|m|g]]\n"
               "               [--batch-ranks N] [--work-dir D] [--resume] [--degrade]\n"
               "               [--io-fault SPEC]... [--crash-after-steps N] [--keep-work]\n"
               "               (SPEC: enospc@N | eio@N | short@N | fsync@N | rename@N,\n"
               "                each optionally :pathSubstr)\n"
               "  cyptrace info <F.cyp>\n"
               "  cyptrace dump <F.cyp> [--rank R] [--limit N] [--otf]\n"
               "  cyptrace replay <F.cyp> [--net ib|eth]\n"
               "  cyptrace query <F.cyp> <SPEC> [--threads T]\n"
               "               (SPEC: summary | hist | matrix | colls |\n"
               "                callsites src=A dst=B iter=K [loop=GID])\n"
               "  cyptrace compare <workload> --procs N [--scale S] [--threads T]\n"
               "               [--queries]\n"
               "  cyptrace stats <F.cyp>\n"
               "  cyptrace diff <A.cyp> <B.cyp>\n"
               "  cyptrace verify <workload|file.mc|trace file> [--procs N] "
               "[--scale S] [--fuzz N] [--seed S]\n"
               "workloads: ");
  for (const auto& n : workloads::allNames()) std::fprintf(stderr, "%s ", n.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

/// Parse "64m"/"1g"-style byte counts (bare numbers are bytes).
uint64_t parseByteCount(const std::string& s) {
  CYP_CHECK(!s.empty(), "empty byte count");
  uint64_t mult = 1;
  std::string num = s;
  switch (s.back()) {
    case 'k': case 'K': mult = 1ull << 10; num.pop_back(); break;
    case 'm': case 'M': mult = 1ull << 20; num.pop_back(); break;
    case 'g': case 'G': mult = 1ull << 30; num.pop_back(); break;
    default: break;
  }
  return std::stoull(num) * mult;
}

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 3) usage();
  a.command = argv[1];
  a.target = argv[2];
  int firstFlag = 3;
  if (a.command == "diff") {
    if (argc < 4) usage();
    a.target2 = argv[3];
    firstFlag = 4;
  }
  for (int i = firstFlag; i < argc; ++i) {
    const std::string flag = argv[i];
    // `query` takes its spec as bare words after the trace file, so
    // shell users can write: cyptrace query t.cyp callsites src=0 ...
    if (a.command == "query" && flag.rfind("--", 0) != 0) {
      if (!a.querySpec.empty()) a.querySpec += ' ';
      a.querySpec += flag;
      continue;
    }
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--procs") a.procs = std::stoi(value());
    else if (flag == "--scale") a.scale = std::stoi(value());
    else if (flag == "--threads") a.threads = std::stoi(value());
    else if (flag == "--rank") a.rank = std::stoi(value());
    else if (flag == "--limit") a.limit = std::stoi(value());
    else if (flag == "--out") a.out = value();
    else if (flag == "--net") a.net = value();
    else if (flag == "--otf") a.otf = true;
    else if (flag == "--fuzz") a.fuzz = std::stoi(value());
    else if (flag == "--seed") a.seed = std::stoull(value());
    else if (flag == "--fault") a.faultSpecs.push_back(value());
    else if (flag == "--journal") a.journal = value();
    else if (flag == "--salvage") a.salvage = true;
    else if (flag == "--emit-ranks") a.emitRanks = value();
    else if (flag == "--merge-budget") a.mergeBudget = parseByteCount(value());
    else if (flag == "--batch-ranks") a.batchRanks = std::stoull(value());
    else if (flag == "--work-dir") a.workDir = value();
    else if (flag == "--resume") a.resume = true;
    else if (flag == "--degrade") a.degrade = true;
    else if (flag == "--keep-work") a.keepWork = true;
    else if (flag == "--io-fault") a.ioFaults.push_back(value());
    else if (flag == "--crash-after-steps") a.crashAfterSteps = std::stoull(value());
    else if (flag == "--queries") a.queries = true;
    else usage();
  }
  return a;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CYP_CHECK(in.good(), "cannot open " << path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeFile(const std::string& path, std::span<const uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  CYP_CHECK(out.good(), "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<uint8_t> readBytes(const std::string& path) {
  const std::string s = readFile(path);
  return std::vector<uint8_t>(s.begin(), s.end());
}

/// An --io-fault plan wraps the real backend in the deterministic
/// injector; every durable byte the command writes then flows through
/// it. Returns the backend to use; `faulty` owns the wrapper.
io::IoBackend* faultIo(const Args& a,
                       std::unique_ptr<io::FaultyIoBackend>& faulty) {
  if (a.ioFaults.empty()) return &io::realIo();
  std::vector<io::IoFaultSpec> plan;
  plan.reserve(a.ioFaults.size());
  for (const std::string& s : a.ioFaults)
    plan.push_back(io::parseIoFaultSpec(s));
  faulty =
      std::make_unique<io::FaultyIoBackend>(io::realIo(), std::move(plan));
  return faulty.get();
}

driver::RunOutput runTarget(const Args& a, bool allTools) {
  driver::Options opts;
  opts.procs = a.procs;
  opts.scale = a.scale;
  opts.threads = a.threads;
  opts.withScala = allTools;
  opts.withScala2 = allTools;
  for (const std::string& spec : a.faultSpecs)
    opts.engine.faults.faults.push_back(simmpi::parseFaultSpec(spec));
  opts.withJournal = !a.journal.empty();
  opts.onStall = a.salvage ? vm::OnStall::Salvage : vm::OnStall::Throw;
  if (a.target.size() > 3 &&
      a.target.compare(a.target.size() - 3, 3, ".mc") == 0) {
    return driver::runSource(a.target, readFile(a.target), opts);
  }
  return driver::runWorkload(a.target, opts);
}

int cmdRun(const Args& a) {
  std::unique_ptr<io::FaultyIoBackend> faulty;
  io::IoBackend* io = faultIo(a, faulty);
  driver::RunOutput run = runTarget(a, /*allTools=*/false);
  core::MergedCtt merged = driver::mergeCypress(run, nullptr, a.threads);
  const std::string out = a.out.empty() ? a.target + ".cyp" : a.out;
  // Artifacts land atomically (tmp + fsync + rename) and are streamed
  // straight from the merged CTT — the serialized trace never exists
  // as one in-RAM buffer, and a kill or disk fault mid-write never
  // leaves a torn file under the final name.
  size_t outBytes = 0;
  {
    io::AtomicFileWriter writer(*io, out);
    ByteWriter w(writer);
    merged.serializeTo(w);
    w.flush();
    outBytes = w.size();
    writer.commit();
  }
  std::printf("traced %s on %d ranks: %zu events -> %s (%s)\n", a.target.c_str(),
              a.procs, run.raw.totalEvents(), out.c_str(),
              humanBytes(outBytes).c_str());
  if (!run.runStats.clean()) {
    std::printf("partial run:");
    for (int r : run.runStats.deadRanks) std::printf(" rank %d killed", r);
    for (int r : run.runStats.stalledRanks) std::printf(" rank %d stalled", r);
    std::printf("\n");
    if (!run.runStats.stallDiagnostics.empty())
      std::fputs(run.runStats.stallDiagnostics.c_str(), stdout);
    std::printf("merged trace covers survivors; lost ranks annotated: %zu\n",
                merged.lostRanks().size());
  }
  if (run.journal != nullptr) {
    io::writeFileAtomic(*io, a.journal, run.journal->bytes());
    std::printf("journal: %s (%s, %llu events, sealed)\n", a.journal.c_str(),
                humanBytes(run.journal->bytes().size()).c_str(),
                static_cast<unsigned long long>(run.journal->totalEvents()));
  }
  if (!a.emitRanks.empty()) {
    const RankSet lost = driver::writeRankTraces(run, a.emitRanks, io,
                                                 a.threads);
    std::printf("rank traces: %s (%d ranks, %zu lost)\n", a.emitRanks.c_str(),
                a.procs, lost.size());
  }
  return 0;
}

int cmdMerge(const Args& a) {
  std::unique_ptr<io::FaultyIoBackend> faulty;
  io::IoBackend* io = faultIo(a, faulty);

  const driver::RankTraceDir ranks = driver::openRankTraceDir(a.target, io);
  core::StreamingMergeOptions mo;
  mo.budgetBytes = a.mergeBudget;
  mo.maxBatchRanks = a.batchRanks;
  mo.workDir = a.workDir.empty() ? a.target + "/merge.work" : a.workDir;
  mo.io = io;
  mo.resume = a.resume;
  mo.degrade = a.degrade;
  mo.keepWorkDir = a.keepWork;
  mo.crashAfterSteps = a.crashAfterSteps;
  mo.outPath = a.out.empty() ? a.target + ".cyp" : a.out;

  const core::StreamingMergeResult res = core::streamingMerge(
      ranks.numRanks, [&](int r) { return ranks.load(r); }, *ranks.cst, mo);

  std::printf("merged %d ranks -> %s (%s)\n", ranks.numRanks,
              mo.outPath.c_str(),
              humanBytes(io->fileSize(mo.outPath)).c_str());
  std::printf("plan: %llu batches, %llu reduction rounds; "
              "%llu steps executed, %llu resumed from checkpoint\n",
              static_cast<unsigned long long>(res.batches),
              static_cast<unsigned long long>(res.reductionRounds),
              static_cast<unsigned long long>(res.stepsExecuted),
              static_cast<unsigned long long>(res.stepsResumed));
  if (!res.merged.lostRanks().empty())
    std::printf("partial trace: %zu lost rank(s), %zu dropped by disk "
                "faults\n",
                res.merged.lostRanks().size(), res.droppedRanks.size());
  // Degraded coverage surfaces in the exit code (mirrors `recover`).
  return res.droppedRanks.empty() ? 0 : 3;
}

int cmdRecover(const Args& a) {
  const auto bytes = readBytes(a.target);
  const trace::JournalRecovery rec = trace::recoverJournal(bytes);
  size_t events = 0;
  for (const auto& rt : rec.trace.ranks) events += rt.events.size();
  std::printf("%s: %s, %zu segments, %zu events on %zu ranks\n",
              a.target.c_str(), humanBytes(bytes.size()).c_str(),
              rec.segmentsRecovered, events, rec.trace.ranks.size());
  if (rec.sealed) {
    std::printf("sealed journal (complete)\n");
  } else {
    std::printf("unsealed journal: recovered the intact prefix, "
                "%zu trailing bytes discarded\n",
                rec.bytesDiscarded);
  }
  std::printf("finalized ranks: %zu", rec.finalizedRanks.size());
  if (!rec.lostRanks.empty()) {
    std::printf("; lost ranks:");
    for (int32_t r : rec.lostRanks.ranks()) std::printf(" %d", r);
  }
  const auto open = rec.unfinalizedRanks();
  if (!open.empty()) {
    std::printf("; unfinalized ranks:");
    for (int r : open) std::printf(" %d", r);
  }
  std::printf("\n");
  if (!a.out.empty()) {
    const auto raw = rec.trace.serialize();
    writeFile(a.out, raw);
    std::printf("recovered raw trace -> %s (%s)\n", a.out.c_str(),
                humanBytes(raw.size()).c_str());
  }
  // A lossy salvage is a partial answer, not a clean read: scripts
  // chaining recover into analysis must see it in the exit code, not
  // only in stdout.
  if (rec.lossy()) {
    std::printf("lossy recovery: %zu trailing bytes dropped, "
                "%zu unfinalized rank(s)%s\n",
                rec.bytesDiscarded, open.size(),
                rec.sealed ? "" : ", journal unsealed");
    return 3;
  }
  return 0;
}

int cmdInfo(const Args& a) {
  const auto bytes = readBytes(a.target);
  cst::Tree tree;
  core::MergedCtt merged = core::MergedCtt::deserializeWithTree(bytes, tree);
  std::printf("%s: %s, CST with %d vertices\n", a.target.c_str(),
              humanBytes(bytes.size()).c_str(), tree.numNodes());
  // Rank universe = union of all rank sets.
  RankSet all;
  size_t entries = 0;
  for (int g = 0; g < tree.numNodes(); ++g) {
    for (const auto& e : merged.leafEntries(g)) {
      all.unite(e.ranks);
      ++entries;
    }
    entries += merged.loopEntries(g).size() + merged.takenEntries(g).size();
  }
  std::printf("%zu merged payload entries covering %zu ranks\n", entries,
              all.size());
  std::printf("\n%s", tree.toString().c_str());
  return 0;
}

int cmdDump(const Args& a) {
  const auto bytes = readBytes(a.target);
  cst::Tree tree;
  core::MergedCtt merged = core::MergedCtt::deserializeWithTree(bytes, tree);
  RankSet all;
  for (int g = 0; g < tree.numNodes(); ++g)
    for (const auto& e : merged.leafEntries(g)) all.unite(e.ranks);
  const int numRanks = all.empty() ? 0 : all.ranks().back() + 1;
  if (a.otf) {
    trace::RawTrace t = core::decompressAll(merged, numRanks);
    std::fputs(trace::toOtfText(t).c_str(), stdout);
    return 0;
  }
  auto events = core::decompressRank(merged, a.rank);
  std::printf("rank %d: %zu events\n", a.rank, events.size());
  for (size_t i = 0; i < events.size() && static_cast<int>(i) < a.limit; ++i)
    std::printf("  %zu: %s\n", i, events[i].toString().c_str());
  if (static_cast<int>(events.size()) > a.limit)
    std::printf("  ... (%zu more; raise --limit)\n", events.size() - a.limit);
  return 0;
}

int cmdReplay(const Args& a) {
  const auto bytes = readBytes(a.target);
  cst::Tree tree;
  core::MergedCtt merged = core::MergedCtt::deserializeWithTree(bytes, tree);
  const RankSet covered = query::coveredRanks(merged);
  const int numRanks = covered.empty() ? 0 : covered.ranks().back() + 1;
  const simmpi::LogGP net =
      a.net == "eth" ? simmpi::LogGP::ethernet() : simmpi::LogGP::infiniband();
  // SIM-MPI pulls events straight off CompressedCursors, one per rank;
  // the expanded trace never exists in memory.
  replay::Prediction p = replay::simulate(merged, net);
  std::printf("replayed %llu events on %d ranks (%s, compressed-domain)\n",
              static_cast<unsigned long long>(p.totalEvents), numRanks,
              a.net == "eth" ? "ethernet model" : "InfiniBand model");
  std::printf("predicted execution time: %.3f ms, communication share %.2f%%\n",
              static_cast<double>(p.predictedNs) / 1e6, p.commPercent());
  return 0;
}

int cmdQuery(const Args& a) {
  if (a.querySpec.empty()) usage();
  const auto bytes = readBytes(a.target);
  cst::Tree tree;
  core::MergedCtt merged = core::MergedCtt::deserializeWithTree(bytes, tree);
  const std::string json = query::runQuery(merged, a.querySpec, a.threads);
  std::printf("%s\n", json.c_str());
  return 0;
}

int cmdStats(const Args& a) {
  const auto bytes = readBytes(a.target);
  cst::Tree tree;
  core::MergedCtt merged = core::MergedCtt::deserializeWithTree(bytes, tree);
  RankSet all;
  for (int g = 0; g < tree.numNodes(); ++g)
    for (const auto& e : merged.leafEntries(g)) all.unite(e.ranks);
  const int numRanks = all.empty() ? 0 : all.ranks().back() + 1;
  trace::RawTrace t = core::decompressAll(merged, numRanks);
  trace::TraceStats st = trace::computeStats(t);
  std::printf("%s (%d ranks, trace file %s)\n\n%s\n", a.target.c_str(), numRanks,
              humanBytes(bytes.size()).c_str(), st.toString().c_str());
  std::printf("communication volume heat map:\n%s", 
              trace::renderMatrix(trace::commMatrix(t), 32).c_str());
  return 0;
}

int cmdDiff(const Args& a) {
  cst::Tree ta, tb;
  core::MergedCtt ma = core::MergedCtt::deserializeWithTree(readBytes(a.target), ta);
  core::MergedCtt mb =
      core::MergedCtt::deserializeWithTree(readBytes(a.target2), tb);
  core::TraceDiff d = core::diffTraces(ma, mb);
  std::fputs(d.toString().c_str(), stdout);
  return d.identical() ? 0 : 1;
}

int cmdCompare(const Args& a) {
  driver::RunOutput run = runTarget(a, /*allTools=*/true);
  driver::SizeReport rep = driver::computeSizes(run, a.threads);
  std::printf("%s, %d ranks, %zu events\n", a.target.c_str(), a.procs,
              run.raw.totalEvents());
  std::printf("  raw          %12s\n", humanBytes(rep.rawBytes).c_str());
  std::printf("  gzip         %12s\n", humanBytes(rep.gzipBytes).c_str());
  std::printf("  scalatrace   %12s  (merge %.3f ms)\n",
              humanBytes(rep.scalaBytes).c_str(), rep.scalaInterSeconds * 1e3);
  std::printf("  scalatrace2  %12s  (merge %.3f ms)\n",
              humanBytes(rep.scala2Bytes).c_str(), rep.scala2InterSeconds * 1e3);
  std::printf("  cypress      %12s  (merge %.3f ms)\n",
              humanBytes(rep.cypressBytes).c_str(), rep.cypressInterSeconds * 1e3);
  std::printf("  cypress+gz   %12s\n", humanBytes(rep.cypressGzipBytes).c_str());
  if (a.queries) {
    // Sanity row: the compressed-domain comm matrix must equal the
    // expanded-trace scan byte-for-byte (canonical JSON both sides).
    core::MergedCtt merged = driver::mergeCypress(run, nullptr, a.threads);
    const auto t0 = std::chrono::steady_clock::now();
    const std::string engine =
        query::renderMatrix(query::commMatrix(merged, a.threads));
    const auto t1 = std::chrono::steady_clock::now();
    const std::string oracle =
        query::renderMatrix(query::commMatrixFromRaw(run.raw));
    const auto t2 = std::chrono::steady_clock::now();
    const double engineMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double oracleMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("  queries      matrix on compressed %.3f ms, raw scan %.3f ms"
                " -> %s\n",
                engineMs, oracleMs,
                engine == oracle ? "identical" : "MISMATCH");
    if (engine != oracle) return 1;
  }
  return 0;
}

int cmdVerify(const Args& a) {
  const auto names = workloads::allNames();
  const bool isSource =
      a.target.size() > 3 &&
      a.target.compare(a.target.size() - 3, 3, ".mc") == 0;
  const bool isWorkload =
      std::find(names.begin(), names.end(), a.target) != names.end();

  if (isSource || isWorkload) {
    driver::RunOutput run = runTarget(a, /*allTools=*/true);
    const verify::Report rep = driver::verifyRun(run, a.threads);
    std::printf("%s, %d ranks, %zu events\n%s", a.target.c_str(), a.procs,
                run.raw.totalEvents(), rep.toString().c_str());
    return rep.ok() ? 0 : 1;
  }

  const auto bytes = readBytes(a.target);
  verify::Report rep = verify::verifyTraceFile(bytes);
  std::printf("%s (%s)\n%s", a.target.c_str(),
              humanBytes(bytes.size()).c_str(), rep.toString().c_str());
  if (!rep.ok()) return 1;
  if (a.fuzz > 0) {
    verify::FuzzOptions fo;
    fo.seed = a.seed;
    fo.mutations = a.fuzz;
    const verify::FuzzReport fr =
        verify::corruptionFuzz(bytes, verify::decodeTraceFile, fo);
    std::printf("fuzz (seed %llu): %s\n",
                static_cast<unsigned long long>(a.seed),
                fr.toString().c_str());
    if (!fr.ok()) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    // Size the shared pool to the request: --threads is a promise about
    // how many cores we occupy, not just a fan-out width.
    ThreadPool::configureShared(static_cast<unsigned>(std::max(1, a.threads)));
    if (a.command == "run") return cmdRun(a);
    if (a.command == "recover") return cmdRecover(a);
    if (a.command == "merge") return cmdMerge(a);
    if (a.command == "info") return cmdInfo(a);
    if (a.command == "dump") return cmdDump(a);
    if (a.command == "replay") return cmdReplay(a);
    if (a.command == "query") return cmdQuery(a);
    if (a.command == "compare") return cmdCompare(a);
    if (a.command == "stats") return cmdStats(a);
    if (a.command == "diff") return cmdDiff(a);
    if (a.command == "verify") return cmdVerify(a);
    usage();
  } catch (const io::IoError& e) {
    // Disk faults get their own exit code so wrappers (and the fault
    // sweep in tests) can tell "out of disk" from "bad trace".
    std::fprintf(stderr, "cyptrace: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cyptrace: %s\n", e.what());
    return 1;
  }
}
