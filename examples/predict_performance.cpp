// Trace-driven performance prediction (the paper's Figure 14 workflow):
// trace LESlie3d once with CYPRESS, then replay the decompressed trace
// in SIM-MPI under different network models — including a network the
// application never ran on (what-if analysis).
//
// Usage: ./build/examples/predict_performance [PROCS]   (default 64)
#include <cstdio>
#include <cstdlib>

#include "cypress/decompress.hpp"
#include "driver/pipeline.hpp"
#include "replay/simulator.hpp"

using namespace cypress;

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::atoi(argv[1]) : 64;

  driver::Options opts;
  opts.procs = procs;
  opts.withScala = false;
  opts.withScala2 = false;
  opts.engine.jitter = 0.05;
  driver::RunOutput run = driver::runWorkload("LESLIE3D", opts);

  core::MergedCtt merged = driver::mergeCypress(run);
  trace::RawTrace decompressed = core::decompressAll(merged, procs);

  const double measuredMs = static_cast<double>(run.runStats.executionNs) / 1e6;
  std::printf("LESlie3d, %d ranks — measured on the traced cluster: %.2f ms\n\n",
              procs, measuredMs);

  struct What {
    const char* name;
    simmpi::LogGP net;
  };
  for (const What& w : {What{"QDR InfiniBand (traced fabric)",
                             simmpi::LogGP::infiniband()},
                        What{"commodity ethernet (what-if)",
                             simmpi::LogGP::ethernet()}}) {
    replay::Prediction p = replay::simulate(decompressed, w.net);
    std::printf("%-34s predicted %8.2f ms  (comm share %5.2f%%)\n", w.name,
                static_cast<double>(p.predictedNs) / 1e6, p.commPercent());
  }

  replay::Prediction p = replay::simulate(decompressed);
  const double err =
      std::abs(static_cast<double>(p.predictedNs) / 1e6 - measuredMs) /
      measuredMs * 100.0;
  std::printf("\nprediction error on the traced fabric: %.2f%%\n", err);
  return 0;
}
