// Quickstart: trace a small MPI program with CYPRESS end to end.
//
//   1. Write (or load) a MiniC program.
//   2. Compile it; the static pass extracts the CST and instruments the IR.
//   3. Run it on the simulated MPI cluster with CYPRESS recorders attached.
//   4. Merge the per-process trace trees, inspect sizes, and decompress
//      one rank's exact event sequence.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "cst/builder.hpp"
#include "cypress/ctt.hpp"
#include "cypress/decompress.hpp"
#include "cypress/merge.hpp"
#include "minic/compile.hpp"
#include "simmpi/engine.hpp"
#include "support/strings.hpp"
#include "trace/observer.hpp"
#include "vm/runner.hpp"

using namespace cypress;

int main() {
  // The paper's Figure 3: a 1-D Jacobi halo exchange.
  const char* program = R"(
    func main() {
      for (var step = 0; step < 500; step = step + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 8192, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 8192, 0); }
        if (rank > 0)        { mpi_send(rank - 1, 8192, 0); }
        if (rank < size - 1) { mpi_recv(rank + 1, 8192, 0); }
        compute(250000);
      }
    })";
  const int ranks = 16;

  // Static phase: compile, build the CST, instrument (paper §III).
  auto module = minic::compileProgram(program);
  cst::StaticResult sr = cst::analyzeAndInstrument(*module);
  std::printf("Communication Structure Tree (%d vertices):\n%s\n",
              sr.cst.numNodes(), sr.cst.toString().c_str());

  // Dynamic phase: run on the simulated cluster, one recorder per rank.
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  simmpi::Engine engine(cfg);
  std::vector<std::unique_ptr<core::CttRecorder>> recorders;
  std::vector<trace::Observer*> observers;
  for (int r = 0; r < ranks; ++r) {
    recorders.push_back(std::make_unique<core::CttRecorder>(sr.cst, r));
    observers.push_back(recorders.back().get());
  }
  vm::RunResult res = vm::run(*module, engine, observers);
  std::printf("executed %llu instructions; simulated time %.2f ms\n",
              static_cast<unsigned long long>(res.totalInstructions),
              static_cast<double>(res.executionNs) / 1e6);

  // Inter-process merge (paper §IV-B) and the final trace size.
  std::vector<const core::Ctt*> ctts;
  for (const auto& r : recorders) ctts.push_back(&r->ctt());
  core::MergedCtt merged = core::mergeAll(ctts);
  const auto bytes = merged.serialize();
  const size_t rawEvents = 500u * 4u * (ranks - 1u) * 2u / 2u;
  std::printf("merged CYPRESS trace: %s for ~%zu events across %d ranks\n",
              humanBytes(bytes.size()).c_str(), rawEvents, ranks);

  // Decompression is sequence-preserving: rank 3's exact event stream.
  auto events = core::decompressRank(merged, 3);
  std::printf("rank 3 recorded %zu events; first three:\n", events.size());
  for (size_t i = 0; i < 3 && i < events.size(); ++i)
    std::printf("  %s\n", events[i].toString().c_str());
  return 0;
}
