// Communication-pattern analysis from a *compressed* trace (the paper's
// §VII-D1 use case): decompress a CYPRESS trace, build the rank-to-rank
// volume matrix, list each rank's peers and message-size classes.
//
// Usage: ./build/examples/analyze_patterns [WORKLOAD] [PROCS]
//   default: MG 64 (the paper's irregular example)
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "cypress/decompress.hpp"
#include "driver/pipeline.hpp"
#include "support/strings.hpp"
#include "trace/matrix.hpp"

using namespace cypress;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "MG";
  const int procs = argc > 2 ? std::atoi(argv[2]) : 64;

  driver::Options opts;
  opts.procs = procs;
  opts.withRaw = false;  // everything below uses only the compressed trace
  opts.withScala = false;
  opts.withScala2 = false;
  driver::RunOutput run = driver::runWorkload(name, opts);

  core::MergedCtt merged = driver::mergeCypress(run);
  const auto traceBytes = merged.serialize().size();
  trace::RawTrace t = core::decompressAll(merged, procs);

  std::printf("%s on %d ranks — analysis from a %s compressed trace\n\n",
              name.c_str(), procs, humanBytes(traceBytes).c_str());

  auto m = trace::commMatrix(t);
  std::printf("communication volume heat map:\n%s\n",
              trace::renderMatrix(m, 32).c_str());

  // Peer fan-out distribution.
  std::map<size_t, int> fanout;
  for (size_t i = 0; i < m.size(); ++i) {
    size_t peers = 0;
    for (uint64_t v : m[i])
      if (v) ++peers;
    fanout[peers]++;
  }
  std::printf("peer fan-out histogram (peers -> #ranks):");
  for (const auto& [peers, count] : fanout) std::printf(" %zu->%d", peers, count);
  std::printf("\n");

  // Message-size classes (the paper reports exactly two for LESlie3d).
  std::set<int64_t> sizes;
  uint64_t msgs = 0;
  for (const auto& r : t.ranks)
    for (const auto& e : r.events)
      if (e.op == ir::MpiOp::Send || e.op == ir::MpiOp::Isend) {
        sizes.insert(e.bytes);
        ++msgs;
      }
  std::printf("%llu point-to-point messages in %zu distinct size classes\n",
              static_cast<unsigned long long>(msgs), sizes.size());
  if (sizes.size() <= 8) {
    std::printf("sizes:");
    for (int64_t s : sizes) std::printf(" %s", humanBytes(static_cast<uint64_t>(s)).c_str());
    std::printf("\n");
  }
  return 0;
}
