// Compare every tracing tool on one NPB workload: trace sizes after
// inter-process merging, intra-process hook cost, and merge cost — a
// single-row version of the paper's Figures 15/16/18.
//
// Usage: ./build/examples/compare_tools [WORKLOAD] [PROCS]
//   WORKLOAD in {BT CG DT EP FT LU MG SP JACOBI LESLIE3D}, default LU
//   PROCS default 64 (must satisfy the workload's grid constraints)
#include <cstdio>
#include <cstdlib>

#include "driver/pipeline.hpp"
#include "support/strings.hpp"
#include "workloads/workloads.hpp"

using namespace cypress;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "LU";
  const int procs = argc > 2 ? std::atoi(argv[2]) : 64;

  driver::Options opts;
  opts.procs = procs;
  driver::RunOutput run = driver::runWorkload(name, opts);
  driver::SizeReport rep = driver::computeSizes(run);

  std::printf("%s on %d simulated ranks — %zu events total\n\n", name.c_str(),
              procs, run.raw.totalEvents());
  std::printf("%-22s %12s %14s %12s\n", "tool", "trace size", "intra cost",
              "merge cost");
  auto line = [](const char* tool, size_t bytes, double intra, double inter) {
    std::printf("%-22s %12s %11.3f ms %9.3f ms\n", tool,
                humanBytes(bytes).c_str(), intra * 1e3, inter * 1e3);
  };
  line("raw (uncompressed)", rep.rawBytes, 0.0, 0.0);
  line("Gzip (flate)", rep.gzipBytes, 0.0, 0.0);
  line("ScalaTrace", rep.scalaBytes, run.scalaIntraSeconds(),
       rep.scalaInterSeconds);
  line("ScalaTrace-2", rep.scala2Bytes, run.scala2IntraSeconds(),
       rep.scala2InterSeconds);
  line("ScalaTrace-2 + Gzip", rep.scala2GzipBytes, run.scala2IntraSeconds(),
       rep.scala2InterSeconds);
  line("CYPRESS", rep.cypressBytes, run.cypressIntraSeconds(),
       rep.cypressInterSeconds);
  line("CYPRESS + Gzip", rep.cypressGzipBytes, run.cypressIntraSeconds(),
       rep.cypressInterSeconds);

  std::printf("\ncompression vs raw: CYPRESS %.0fx, ScalaTrace %.0fx, Gzip %.0fx\n",
              static_cast<double>(rep.rawBytes) / rep.cypressBytes,
              static_cast<double>(rep.rawBytes) / rep.scalaBytes,
              static_cast<double>(rep.rawBytes) / rep.gzipBytes);
  return 0;
}
