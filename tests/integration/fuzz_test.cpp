// Property-based end-to-end fuzzing: generate random (but deadlock-free)
// structured MPI programs from a template grammar, run the full pipeline,
// and require exact lossless round trips for both CYPRESS and ScalaTrace,
// plus a successful SIM-MPI replay of the decompressed trace.
//
// The generator composes only communication-safe templates (collectives,
// ring exchanges, paired even/odd exchanges, non-blocking + waitall,
// wildcard gathers), arbitrarily nested in loops, iteration-parity
// branches and helper functions — covering the cross product of
// structure handling paths in one sweep.
#include <gtest/gtest.h>

#include <sstream>

#include "cypress/decompress.hpp"
#include "driver/pipeline.hpp"
#include "replay/simulator.hpp"
#include "scalatrace/inter.hpp"
#include "support/rng.hpp"

namespace cypress {
namespace {

class ProgramGenerator {
 public:
  explicit ProgramGenerator(uint64_t seed) : rng_(seed) {}

  std::string generate() {
    helpers_.clear();
    loopStack_.clear();
    std::ostringstream main;
    main << "func main() {\n";
    emitBody(main, /*depth=*/0);
    main << "}\n";
    std::ostringstream out;
    for (const auto& h : helpers_) out << h;
    out << main.str();
    return out.str();
  }

 private:
  Rng rng_;
  std::vector<std::string> helpers_;
  std::vector<std::string> loopStack_;  // loop variables in scope
  int loopVar_ = 0;
  int reqVar_ = 0;

  std::string freshLoopVar() { return "i" + std::to_string(loopVar_++); }
  std::string freshReqVar() { return "r" + std::to_string(reqVar_++); }

  void indent(std::ostringstream& os, int depth) {
    for (int i = 0; i <= depth; ++i) os << "  ";
  }

  void emitBody(std::ostringstream& os, int depth) {
    const int stmts = static_cast<int>(rng_.range(1, depth >= 2 ? 2 : 4));
    for (int s = 0; s < stmts; ++s) emitStmt(os, depth);
  }

  void emitStmt(std::ostringstream& os, int depth) {
    const int maxKind = depth >= 3 ? 5 : 11;
    switch (rng_.below(static_cast<uint64_t>(maxKind))) {
      case 0: {  // collective
        indent(os, depth);
        switch (rng_.below(4)) {
          case 0: os << "mpi_allreduce(" << rng_.range(4, 64) * 8 << ");\n"; break;
          case 1: os << "mpi_barrier();\n"; break;
          case 2: os << "mpi_bcast(0, " << rng_.range(8, 512) * 8 << ");\n"; break;
          default: os << "mpi_reduce(0, " << rng_.range(1, 32) * 8 << ");\n"; break;
        }
        return;
      }
      case 1: {  // ring exchange (eager sends make this safe)
        const int d = static_cast<int>(rng_.range(1, 3));
        const int bytes = static_cast<int>(rng_.range(16, 2048));
        const int tag = static_cast<int>(rng_.range(0, 5));
        indent(os, depth);
        os << "mpi_send((rank + " << d << ") % size, " << bytes << ", " << tag
           << ");\n";
        indent(os, depth);
        os << "mpi_recv((rank + size - " << d << ") % size, " << bytes << ", "
           << tag << ");\n";
        return;
      }
      case 2: {  // non-blocking + waitall (or explicit waits)
        const std::string a = freshReqVar();
        const std::string b = freshReqVar();
        const int bytes = static_cast<int>(rng_.range(8, 4096));
        const int tag = static_cast<int>(rng_.range(6, 9));
        indent(os, depth);
        os << "var " << a << " = mpi_isend((rank + 1) % size, " << bytes << ", "
           << tag << ");\n";
        indent(os, depth);
        os << "var " << b << " = mpi_irecv((rank + size - 1) % size, " << bytes
           << ", " << tag << ");\n";
        if (rng_.chance(0.5)) {
          indent(os, depth);
          os << "mpi_waitall();\n";
        } else {
          indent(os, depth);
          os << "mpi_wait(" << a << ");\n";
          indent(os, depth);
          os << "mpi_wait(" << b << ");\n";
        }
        return;
      }
      case 3: {  // compute
        indent(os, depth);
        os << "compute(" << rng_.range(1000, 100000) << ");\n";
        return;
      }
      case 4: {  // iteration-parity branch (same outcome on every rank)
        if (loopStack_.empty()) {
          indent(os, depth);
          os << "compute(500);\n";
          return;
        }
        const std::string& v = loopStack_.back();
        indent(os, depth);
        os << "if (" << v << " % 2 == 0) {\n";
        emitBody(os, depth + 1);
        indent(os, depth);
        if (rng_.chance(0.5)) {
          os << "} else {\n";
          emitBody(os, depth + 1);
          indent(os, depth);
        }
        os << "}\n";
        return;
      }
      case 5: {  // counted loop
        const std::string v = freshLoopVar();
        const int n = static_cast<int>(rng_.range(0, 6));
        indent(os, depth);
        os << "for (var " << v << " = 0; " << v << " < " << n << "; " << v
           << " = " << v << " + 1) {\n";
        loopStack_.push_back(v);
        emitBody(os, depth + 1);
        loopStack_.pop_back();
        indent(os, depth);
        os << "}\n";
        return;
      }
      case 6: {  // wildcard gather to rank 0
        indent(os, depth);
        os << "if (rank != 0) { mpi_send(0, 64, 77); }\n";
        indent(os, depth);
        os << "if (rank == 0) {\n";
        const int g = loopVar_++;
        indent(os, depth + 1);
        os << "for (var g" << g << " = 1; g" << g << " < size; g" << g
           << " = g" << g << " + 1) { mpi_recv(ANY_SOURCE, 64, 77); }\n";
        indent(os, depth);
        os << "}\n";
        return;
      }
      case 7: {  // paired even/odd neighbour exchange (size must be even)
        const int bytes = static_cast<int>(rng_.range(32, 1024));
        indent(os, depth);
        os << "if (rank % 2 == 0) { mpi_send(rank + 1, " << bytes
           << ", 90); mpi_recv(rank + 1, " << bytes << ", 91); }\n";
        indent(os, depth);
        os << "else { mpi_recv(rank - 1, " << bytes << ", 90); mpi_send(rank - 1, "
           << bytes << ", 91); }\n";
        return;
      }
      case 9: {  // mpi_sendrecv sugar
        const int bytes = static_cast<int>(rng_.range(16, 512));
        const int tag = static_cast<int>(rng_.range(50, 55));
        indent(os, depth);
        os << "mpi_sendrecv((rank + 1) % size, " << bytes << ", " << tag
           << ", (rank + size - 1) % size, " << bytes << ", " << tag << ");\n";
        return;
      }
      case 10: {  // non-blocking pair drained by waitsome + waitall
        const std::string a = freshReqVar();
        const std::string b = freshReqVar();
        const int bytes = static_cast<int>(rng_.range(8, 256));
        indent(os, depth);
        os << "var " << a << " = mpi_isend((rank + 2) % size, " << bytes
           << ", 60);\n";
        indent(os, depth);
        os << "var " << b << " = mpi_irecv((rank + size - 2) % size, " << bytes
           << ", 60);\n";
        indent(os, depth);
        os << "mpi_waitsome();\n";
        indent(os, depth);
        os << "mpi_waitall();\n";
        return;
      }
      default: {  // helper function call (flat body, no nested helpers)
        const std::string name = "helper" + std::to_string(helpers_.size());
        std::ostringstream h;
        h << "func " << name << "(bytes) {\n";
        h << "  mpi_send((rank + 1) % size, bytes, 40);\n";
        h << "  mpi_recv((rank + size - 1) % size, bytes, 40);\n";
        if (rng_.chance(0.5)) h << "  mpi_allreduce(24);\n";
        h << "}\n";
        helpers_.push_back(h.str());
        indent(os, depth);
        os << name << "(" << rng_.range(8, 512) << ");\n";
        return;
      }
    }
  }
};

std::vector<trace::Event> contentOnly(std::vector<trace::Event> ev) {
  for (auto& e : ev) {
    e.computeNs = 0;
    e.durationNs = 0;
  }
  return ev;
}

class FuzzPipeline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPipeline, RandomProgramRoundTripsThroughEverything) {
  ProgramGenerator gen(GetParam());
  // A communicator-split preamble so sub-communicator collectives are
  // also exercised (pairs of consecutive ranks).
  std::string src = gen.generate();
  const std::string pre =
      "func main() {\n"
      "  var cpair = mpi_comm_split(rank / 2, rank);\n"
      "  mpi_allreduce_c(cpair, 16);\n";
  src.replace(src.find("func main() {\n"), std::string("func main() {\n").size(),
              pre);
  SCOPED_TRACE("program:\n" + src);

  driver::Options opts;
  opts.procs = 6;  // even (template 7 requires it), with wrap-around cases
  driver::RunOutput run = driver::runSource("fuzz", src, opts);

  // CYPRESS: exact per-rank round trip.
  core::MergedCtt merged = driver::mergeCypress(run);
  for (int r = 0; r < opts.procs; ++r) {
    auto got = contentOnly(core::decompressRank(merged, r));
    auto want = contentOnly(run.raw.ranks[static_cast<size_t>(r)].events);
    ASSERT_EQ(got.size(), want.size()) << "rank " << r;
    for (size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(got[i], want[i]) << "rank " << r << " event " << i;
  }

  // ScalaTrace V1: exact per-rank round trip through the merged form.
  std::vector<const std::vector<scalatrace::Element>*> seqs;
  for (const auto& rec : run.scala) seqs.push_back(&rec->sequence());
  auto st = scalatrace::mergeSequences(seqs, scalatrace::Flavor::V1);
  for (int r = 0; r < opts.procs; ++r) {
    ASSERT_EQ(contentOnly(scalatrace::decompressRank(st, r)),
              contentOnly(run.raw.ranks[static_cast<size_t>(r)].events))
        << "rank " << r;
  }

  // The decompressed trace must replay cleanly in SIM-MPI.
  if (run.raw.totalEvents() > 0) {
    trace::RawTrace dec = core::decompressAll(merged, opts.procs);
    replay::Prediction p = replay::simulate(dec);
    EXPECT_EQ(p.totalEvents, run.raw.totalEvents());
  }

  // Serialization round trip of the merged CYPRESS trace.
  auto bytes = merged.serialize();
  cst::Tree tree;
  core::MergedCtt back = core::MergedCtt::deserializeWithTree(bytes, tree);
  for (int r = 0; r < opts.procs; ++r) {
    EXPECT_EQ(contentOnly(core::decompressRank(back, r)),
              contentOnly(core::decompressRank(merged, r)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range<uint64_t>(0, 64));

}  // namespace
}  // namespace cypress
