// The streaming-write contract: every artifact the pipeline can stream
// (per-rank CYPP, merged CYPC, CYSP spills, raw CYTR) must be
// byte-identical to the materialize-then-write path it replaced, at
// every thread count — streaming is a memory optimization, never a
// format change.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cypress/spill.hpp"
#include "driver/pipeline.hpp"
#include "flate/flate.hpp"
#include "flate/stream.hpp"
#include "support/io.hpp"
#include "support/rng.hpp"

namespace cypress {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / (name + "." + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<uint8_t> fileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

const driver::RunOutput& cgRun() {
  static const driver::RunOutput run = [] {
    driver::Options opts;
    opts.procs = 16;
    opts.emitRankTraces = true;  // also build the legacy in-RAM files
    opts.withScala2 = false;
    return driver::runWorkload("CG", opts);
  }();
  return run;
}

/// Stream `producer.serializeTo` through a StreamingCompressor.
template <typename P>
std::vector<uint8_t> streamCompressed(const P& producer, int threads) {
  VectorSink sink;
  flate::StreamingCompressor sc(sink, flate::Level::Default, threads);
  ByteWriter w(sc);
  producer.serializeTo(w);
  w.flush();
  sc.finish();
  return sink.take();
}

/// Stream `producer.serializeTo` raw (uncompressed) through a sink.
template <typename P>
std::vector<uint8_t> streamRaw(const P& producer) {
  VectorSink sink;
  {
    ByteWriter w(sink);
    producer.serializeTo(w);
    w.flush();
  }
  return sink.take();
}

TEST(StreamingArtifacts, CyppStreamedEqualsMaterializedAtEveryThreadCount) {
  const driver::RunOutput& run = cgRun();
  ASSERT_EQ(run.rankTraceFiles.size(), 16u);
  for (size_t r = 0; r < run.cypress.size(); ++r) {
    const auto materialized = flate::compress(run.cypress[r]->ctt().serialize());
    // The pre-built emitRankTraces file is the same bytes...
    EXPECT_EQ(run.rankTraceFiles[r], materialized) << "rank " << r;
    // ...and so is the streamed serialize→compress chain, at any width.
    for (int threads : {1, 2, 4, 8}) {
      EXPECT_EQ(streamCompressed(run.cypress[r]->ctt(), threads), materialized)
          << "rank " << r << " threads " << threads;
    }
  }
}

TEST(StreamingArtifacts, CypcAndCytrStreamedEqualMaterialized) {
  const driver::RunOutput& run = cgRun();
  const core::MergedCtt merged = driver::mergeCypress(run);
  EXPECT_EQ(streamRaw(merged), merged.serialize());
  EXPECT_EQ(streamRaw(run.raw), run.raw.serialize());
  for (int threads : {1, 2, 4, 8}) {
    EXPECT_EQ(streamCompressed(run.raw, threads),
              flate::compress(run.raw.serialize()))
        << threads;
  }
}

TEST(StreamingArtifacts, SerializedBytesMatchesSerializeWithoutMaterializing) {
  const driver::RunOutput& run = cgRun();
  EXPECT_EQ(run.raw.serializedBytes(), run.raw.serialize().size());
}

TEST(StreamingArtifacts, SpillSinkFileByteIdenticalToWriteSpill) {
  // Cover one-chunk, exact-chunk-boundary, and multi-chunk streams.
  const std::string dir = freshDir("cyp-stream-spill");
  io::IoBackend& io = io::realIo();
  Rng rng(7);
  for (size_t n : {size_t{0}, size_t{1000}, size_t{256 * 1024},
                   size_t{256 * 1024 + 1}, size_t{700 * 1024 + 33}}) {
    std::vector<uint8_t> data(n);
    for (auto& b : data) b = static_cast<uint8_t>(rng.below(256));

    const std::string ref = dir + "/ref.cysp";
    const std::string got = dir + "/got.cysp";
    core::writeSpill(io, ref, data);
    core::SpillSink sink(io, got);
    // Dribble the stream in uneven slices to stress the chunk cutter.
    std::span<const uint8_t> rest(data);
    size_t step = 1;
    while (!rest.empty()) {
      const size_t take = std::min(step, rest.size());
      sink.append(rest.subspan(0, take));
      rest = rest.subspan(take);
      step = step * 3 + 1;
    }
    const core::SpillSink::Totals tot = sink.seal();
    EXPECT_EQ(tot.bytes, data.size()) << n;
    EXPECT_EQ(tot.crc, flate::crc32(data)) << n;
    EXPECT_EQ(fileBytes(got), fileBytes(ref)) << n;
    EXPECT_EQ(core::readSpill(io, got), data) << n;
    EXPECT_TRUE(core::spillIntact(io, got, tot.bytes, tot.crc)) << n;
  }
  fs::remove_all(dir);
}

TEST(StreamingArtifacts, WriteRankTracesStreamsFromRecorders) {
  const driver::RunOutput& run = cgRun();
  const std::string ref = freshDir("cyp-stream-ranks-ref");
  const std::string par = freshDir("cyp-stream-ranks-par");
  EXPECT_TRUE(driver::writeRankTraces(run, ref, nullptr, 1).empty());
  EXPECT_TRUE(driver::writeRankTraces(run, par, nullptr, 8).empty());
  for (size_t r = 0; r < run.cypress.size(); ++r) {
    char name[32];
    std::snprintf(name, sizeof name, "/rank-%05zu.cypp", r);
    const auto bytes = fileBytes(ref + name);
    // On-disk file == the legacy in-RAM emitRankTraces bytes, and the
    // shard-parallel writer changes nothing.
    EXPECT_EQ(bytes, run.rankTraceFiles[r]) << r;
    EXPECT_EQ(fileBytes(par + name), bytes) << r;
  }
  // The directory still opens and round-trips through the merge input.
  const driver::RankTraceDir dir = driver::openRankTraceDir(ref);
  ASSERT_EQ(dir.numRanks, 16);
  for (int r = 0; r < dir.numRanks; ++r) {
    const auto ctt = dir.load(r);
    ASSERT_TRUE(ctt.has_value()) << r;
    EXPECT_EQ(ctt->serialize(), run.cypress[r]->ctt().serialize()) << r;
  }
  fs::remove_all(ref);
  fs::remove_all(par);
}

TEST(StreamingArtifacts, AtomicWriterAsSinkCommitsExactStream) {
  const std::string dir = freshDir("cyp-stream-atomic");
  const driver::RunOutput& run = cgRun();
  const core::MergedCtt merged = driver::mergeCypress(run);
  const std::string path = dir + "/out.cyp";
  {
    io::AtomicFileWriter writer(io::realIo(), path);
    flate::Crc32Sink counted(&writer);
    ByteWriter w(counted);
    merged.serializeTo(w);
    w.flush();
    const auto want = merged.serialize();
    EXPECT_EQ(counted.bytes(), want.size());
    EXPECT_EQ(counted.crc(), flate::crc32(want));
    writer.commit();
  }
  EXPECT_EQ(fileBytes(path), merged.serialize());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cypress
