// The thread-count determinism contract of the whole pipeline: every
// artifact the driver produces — merged CYPC trees, per-rank CYPP trace
// files, flate containers, journals, size reports — must be
// byte-identical no matter how many threads the run stage's epoch
// scheduler or the post-run stages fan out on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/pipeline.hpp"
#include "flate/flate.hpp"

namespace cypress {
namespace {

driver::RunOutput runCg(int threads) {
  driver::Options opts;
  opts.procs = 32;
  opts.threads = threads;
  opts.emitRankTraces = true;
  opts.withScala = false;  // keep the fixture fast; scala is untouched here
  return driver::runWorkload("CG", opts);
}

driver::Options runStageOptions(int threads) {
  driver::Options opts;
  opts.procs = 16;
  opts.threads = threads;
  opts.emitRankTraces = true;
  opts.withJournal = true;
  opts.withScala = false;
  opts.withScala2 = false;
  return opts;
}

/// Every run-stage artifact of `got` must equal `ref`'s, byte for byte.
void expectSameRunArtifacts(const driver::RunOutput& ref,
                            const driver::RunOutput& got) {
  EXPECT_EQ(got.raw.serialize(), ref.raw.serialize());
  EXPECT_EQ(got.rankTraceFiles, ref.rankTraceFiles);
  EXPECT_EQ(driver::mergeCypress(got).serialize(),
            driver::mergeCypress(ref).serialize());
  ASSERT_NE(ref.journal, nullptr);
  ASSERT_NE(got.journal, nullptr);
  EXPECT_EQ(got.journal->bytes(), ref.journal->bytes());
  EXPECT_EQ(got.runStats.executionNs, ref.runStats.executionNs);
  EXPECT_EQ(got.runStats.totalInstructions, ref.runStats.totalInstructions);
}

TEST(PipelineDeterminism, RunStageByteIdenticalAcrossThreadCounts) {
  // The epoch scheduler must produce identical CYPP per-rank traces,
  // merged CYPC, raw stream, and journal at every thread count, across
  // point-to-point (CG), wavefront (LU), and collective-heavy (FT)
  // communication shapes.
  for (const char* name : {"CG", "LU", "FT"}) {
    SCOPED_TRACE(name);
    const driver::RunOutput ref =
        driver::runWorkload(name, runStageOptions(1));
    ASSERT_TRUE(ref.runStats.clean());
    for (int threads : {2, 4, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const driver::RunOutput got =
          driver::runWorkload(name, runStageOptions(threads));
      expectSameRunArtifacts(ref, got);
    }
  }
}

TEST(PipelineDeterminism, WildcardHeavyRunByteIdenticalAcrossThreadCounts) {
  // Master/worker with MPI_ANY_SOURCE: the match order of wildcard
  // receives is exactly the place where a racy scheduler would leak
  // thread-count into the trace, so hammer it — every worker's messages
  // race toward rank 0 and are matched by the deterministic
  // lowest-src/FIFO tiebreak in commit order.
  const std::string source = R"(
    func main() {
      if (rank == 0) {
        var total = (size - 1) * 4;
        for (var i = 0; i < total; i = i + 1) {
          mpi_recv(ANY_SOURCE, 64, 7);
        }
        for (var w = 1; w < size; w = w + 1) {
          mpi_send(w, 8, 9);
        }
      } else {
        for (var j = 0; j < 3; j = j + 1) {
          compute(1000 * rank + j * 37);
          mpi_send(0, 64, 7);
        }
        var r = mpi_isend(0, 64, 7);
        mpi_wait(r);
        mpi_recv(0, 8, 9);
      }
    })";
  const driver::RunOutput ref =
      driver::runSource("wildcard", source, runStageOptions(1));
  ASSERT_TRUE(ref.runStats.clean());
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const driver::RunOutput got =
        driver::runSource("wildcard", source, runStageOptions(threads));
    expectSameRunArtifacts(ref, got);
  }
}

TEST(PipelineDeterminism, FullRunByteIdenticalAcrossThreadCounts) {
  const driver::RunOutput ref = runCg(1);
  const core::MergedCtt refMerged = driver::mergeCypress(ref, nullptr, 1);
  const auto refBytes = refMerged.serialize();
  ASSERT_FALSE(refBytes.empty());
  ASSERT_EQ(ref.rankTraceFiles.size(), 32u);
  for (const auto& f : ref.rankTraceFiles) EXPECT_FALSE(f.empty());

  const driver::RunOutput par = runCg(8);
  const core::MergedCtt parMerged = driver::mergeCypress(par, nullptr, 8);
  EXPECT_EQ(parMerged.serialize(), refBytes);
  EXPECT_EQ(par.rankTraceFiles, ref.rankTraceFiles);
}

TEST(PipelineDeterminism, SizeReportIndependentOfThreadCount) {
  const driver::RunOutput run = runCg(1);
  const driver::SizeReport ref = driver::computeSizes(run, 1);
  EXPECT_GT(ref.rawBytes, 0u);
  EXPECT_GT(ref.cypressGzipBytes, 0u);
  for (int threads : {2, 4, 8}) {
    const driver::SizeReport got = driver::computeSizes(run, threads);
    EXPECT_EQ(got.rawBytes, ref.rawBytes) << threads;
    EXPECT_EQ(got.gzipBytes, ref.gzipBytes) << threads;
    EXPECT_EQ(got.scala2Bytes, ref.scala2Bytes) << threads;
    EXPECT_EQ(got.scala2GzipBytes, ref.scala2GzipBytes) << threads;
    EXPECT_EQ(got.cypressBytes, ref.cypressBytes) << threads;
    EXPECT_EQ(got.cypressGzipBytes, ref.cypressGzipBytes) << threads;
  }
}

TEST(PipelineDeterminism, FlateOverRealPayloadsIdenticalAcrossThreads) {
  // The raw CYTR stream of a real run is big enough to exercise the
  // framed multi-block path; the merged CYPC payload usually is not —
  // both must be stable, and decompress back exactly.
  const driver::RunOutput run = runCg(1);
  const auto rawBytes = run.raw.serialize();
  const auto cypBytes = driver::mergeCypress(run).serialize();
  for (const auto& payload : {rawBytes, cypBytes}) {
    const auto ref = flate::compress(payload, flate::Level::Default, 1);
    EXPECT_EQ(flate::decompress(ref), payload);
    for (int threads : {2, 4, 8}) {
      EXPECT_EQ(flate::compress(payload, flate::Level::Default, threads), ref)
          << "payload " << payload.size() << " threads " << threads;
      EXPECT_EQ(flate::decompress(ref, threads), payload)
          << "payload " << payload.size() << " threads " << threads;
    }
  }
}

TEST(PipelineDeterminism, VerifyRunPassesThreaded) {
  const driver::RunOutput run = runCg(8);
  const verify::Report rep = driver::verifyRun(run, 8);
  EXPECT_TRUE(rep.ok()) << rep.toString();
}

}  // namespace
}  // namespace cypress
