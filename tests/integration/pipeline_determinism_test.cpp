// The thread-count determinism contract of the whole pipeline: every
// artifact the driver produces — merged CYPC trees, per-rank CYPP trace
// files, flate containers, size reports — must be byte-identical no
// matter how many threads the post-run stages fan out on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/pipeline.hpp"
#include "flate/flate.hpp"

namespace cypress {
namespace {

driver::RunOutput runCg(int threads) {
  driver::Options opts;
  opts.procs = 32;
  opts.threads = threads;
  opts.emitRankTraces = true;
  opts.withScala = false;  // keep the fixture fast; scala is untouched here
  return driver::runWorkload("CG", opts);
}

TEST(PipelineDeterminism, FullRunByteIdenticalAcrossThreadCounts) {
  const driver::RunOutput ref = runCg(1);
  const core::MergedCtt refMerged = driver::mergeCypress(ref, nullptr, 1);
  const auto refBytes = refMerged.serialize();
  ASSERT_FALSE(refBytes.empty());
  ASSERT_EQ(ref.rankTraceFiles.size(), 32u);
  for (const auto& f : ref.rankTraceFiles) EXPECT_FALSE(f.empty());

  const driver::RunOutput par = runCg(8);
  const core::MergedCtt parMerged = driver::mergeCypress(par, nullptr, 8);
  EXPECT_EQ(parMerged.serialize(), refBytes);
  EXPECT_EQ(par.rankTraceFiles, ref.rankTraceFiles);
}

TEST(PipelineDeterminism, SizeReportIndependentOfThreadCount) {
  const driver::RunOutput run = runCg(1);
  const driver::SizeReport ref = driver::computeSizes(run, 1);
  EXPECT_GT(ref.rawBytes, 0u);
  EXPECT_GT(ref.cypressGzipBytes, 0u);
  for (int threads : {2, 4, 8}) {
    const driver::SizeReport got = driver::computeSizes(run, threads);
    EXPECT_EQ(got.rawBytes, ref.rawBytes) << threads;
    EXPECT_EQ(got.gzipBytes, ref.gzipBytes) << threads;
    EXPECT_EQ(got.scala2Bytes, ref.scala2Bytes) << threads;
    EXPECT_EQ(got.scala2GzipBytes, ref.scala2GzipBytes) << threads;
    EXPECT_EQ(got.cypressBytes, ref.cypressBytes) << threads;
    EXPECT_EQ(got.cypressGzipBytes, ref.cypressGzipBytes) << threads;
  }
}

TEST(PipelineDeterminism, FlateOverRealPayloadsIdenticalAcrossThreads) {
  // The raw CYTR stream of a real run is big enough to exercise the
  // framed multi-block path; the merged CYPC payload usually is not —
  // both must be stable, and decompress back exactly.
  const driver::RunOutput run = runCg(1);
  const auto rawBytes = run.raw.serialize();
  const auto cypBytes = driver::mergeCypress(run).serialize();
  for (const auto& payload : {rawBytes, cypBytes}) {
    const auto ref = flate::compress(payload, flate::Level::Default, 1);
    EXPECT_EQ(flate::decompress(ref), payload);
    for (int threads : {2, 4, 8})
      EXPECT_EQ(flate::compress(payload, flate::Level::Default, threads), ref)
          << "payload " << payload.size() << " threads " << threads;
  }
}

TEST(PipelineDeterminism, VerifyRunPassesThreaded) {
  const driver::RunOutput run = runCg(8);
  const verify::Report rep = driver::verifyRun(run, 8);
  EXPECT_TRUE(rep.ok()) << rep.toString();
}

}  // namespace
}  // namespace cypress
