// Disk-fault sweep over the `cyptrace run` artifact writes.
//
// The contract: every artifact of a run (merged .cyp, CYJ1 journal,
// rank-trace directory) is written atomically through the streaming
// sink chain, so a disk fault injected at ANY write/sync/rename
// ordinal must leave each final name either absent or byte-identical
// to the clean run's file — never torn — plus no leftover .tmp files,
// and the process must exit with the distinct disk-failure code 4.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#ifndef CYPTRACE_BIN
#error "CYPTRACE_BIN must point at the cyptrace binary"
#endif

namespace cypress {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / (name + "." + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<uint8_t> fileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

/// Run `cyptrace run JACOBI` writing all three artifact kinds into
/// `dir`; returns the child's exit code (-1 on abnormal death).
int runTrace(const std::string& dir, const std::string& ioFault) {
  const std::string out = dir + "/trace.cyp";
  const std::string journal = dir + "/run.cyj";
  const std::string ranks = dir + "/ranks";
  const pid_t pid = fork();
  if (pid == 0) {
    std::vector<const char*> argv = {
        CYPTRACE_BIN, "run",       "JACOBI",      "--procs",
        "4",          "--out",     out.c_str(),   "--journal",
        journal.c_str(), "--emit-ranks", ranks.c_str()};
    if (!ioFault.empty()) {
      argv.push_back("--io-fault");
      argv.push_back(ioFault.c_str());
    }
    argv.push_back(nullptr);
    if (freopen("/dev/null", "w", stdout) == nullptr) _exit(126);
    if (freopen("/dev/null", "w", stderr) == nullptr) _exit(126);
    execv(CYPTRACE_BIN, const_cast<char* const*>(argv.data()));
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Every regular file under `dir`, relative to it.
std::vector<std::string> listFiles(const std::string& dir) {
  std::vector<std::string> out;
  if (!fs::exists(dir)) return out;
  for (const auto& e : fs::recursive_directory_iterator(dir))
    if (e.is_regular_file())
      out.push_back(fs::relative(e.path(), dir).string());
  return out;
}

TEST(RunDiskFaultSweep, EveryFaultOrdinalLeavesNoTornArtifact) {
  // Clean reference run: the run stage is deterministic, so every
  // faulted run must produce a prefix of exactly these files.
  const std::string refDir = freshDir("cyp-run-fault-ref");
  ASSERT_EQ(runTrace(refDir, ""), 0);
  const std::vector<std::string> refFiles = listFiles(refDir);
  ASSERT_FALSE(refFiles.empty());

  // (rename@N is excluded: TornRename models a lying filesystem that
  // reports success after dropping the file's tail — by design it DOES
  // leave a torn final-name file, caught only by format validation.)
  for (const char* kind : {"enospc", "eio", "short", "fsync"}) {
    // Sweep the ordinal until the plan stops firing (clean exit). The
    // run writes a bounded number of ops, so this terminates; the cap
    // is a watchdog against a runaway sweep.
    bool sawClean = false;
    for (int n = 1; n <= 200 && !sawClean; ++n) {
      const std::string spec = std::string(kind) + "@" + std::to_string(n);
      SCOPED_TRACE(spec);
      const std::string dir = freshDir("cyp-run-fault");
      const int exitCode = runTrace(dir, spec);

      if (exitCode == 0) {
        // Ordinal past the last matching op: the fault never fired and
        // the run must be complete and byte-identical to the reference.
        sawClean = true;
        for (const auto& f : listFiles(dir))
          EXPECT_EQ(fileBytes(dir + "/" + f), fileBytes(refDir + "/" + f))
              << f;
        EXPECT_EQ(listFiles(dir).size(), refFiles.size());
      } else {
        // The fault fired: distinct disk-failure exit code, and every
        // file that made it to a final name is byte-identical to the
        // reference — a fault can hide files, never corrupt them.
        EXPECT_EQ(exitCode, 4);
        for (const auto& f : listFiles(dir)) {
          EXPECT_TRUE(f.find(".tmp") == std::string::npos)
              << "leftover temp file " << f;
          EXPECT_EQ(fileBytes(dir + "/" + f), fileBytes(refDir + "/" + f))
              << f;
        }
      }
      fs::remove_all(dir);
    }
    EXPECT_TRUE(sawClean) << kind << ": no clean run within the sweep cap";
  }
  fs::remove_all(refDir);
}

}  // namespace
}  // namespace cypress
