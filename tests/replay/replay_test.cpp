// SIM-MPI replay tests: LogGP timing, blocking semantics, collectives,
// and end-to-end performance prediction from decompressed CYPRESS traces
// (the paper's Fig. 14/21 workflow).
#include <gtest/gtest.h>

#include "cst/builder.hpp"
#include "cypress/ctt.hpp"
#include "cypress/decompress.hpp"
#include "cypress/merge.hpp"
#include "minic/compile.hpp"
#include "replay/simulator.hpp"
#include "simmpi/engine.hpp"
#include "support/io.hpp"
#include "trace/observer.hpp"
#include "vm/runner.hpp"

namespace cypress::replay {
namespace {

struct Traced {
  trace::RawTrace raw;
  vm::RunResult measured;
};

Traced runTraced(const std::string& src, int ranks, double jitter = 0.0) {
  Traced out;
  auto m = minic::compileProgram(src);
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  cfg.jitter = jitter;
  simmpi::Engine engine(cfg);
  out.raw.ranks.resize(static_cast<size_t>(ranks));
  std::vector<std::unique_ptr<trace::RawRecorder>> raws;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < ranks; ++r) {
    out.raw.ranks[static_cast<size_t>(r)].rank = r;
    raws.push_back(std::make_unique<trace::RawRecorder>(
        out.raw.ranks[static_cast<size_t>(r)]));
    obs.push_back(raws.back().get());
  }
  out.measured = vm::run(*m, engine, obs, 1ull << 27);
  return out;
}

TEST(Replay, SingleRankComputeOnly) {
  auto t = runTraced(R"(
    func main() {
      compute(1000000);
      mpi_barrier();
    })", 1);
  auto p = simulate(t.raw);
  EXPECT_GT(p.predictedNs, 1000000u);
  EXPECT_EQ(p.totalEvents, 1u);
}

TEST(Replay, SendRecvOrderingRespected) {
  auto t = runTraced(R"(
    func main() {
      if (rank == 0) { compute(5000000); mpi_send(1, 4096, 0); }
      if (rank == 1) { mpi_recv(0, 4096, 0); }
    })", 2);
  auto p = simulate(t.raw);
  // Rank 1 must wait for rank 0's compute before its recv completes.
  EXPECT_GT(p.rankClockNs[1], 5000000u);
  EXPECT_GT(p.rankCommNs[1], 4000000u);  // mostly wait time
}

TEST(Replay, NonBlockingOverlapsComputation) {
  // The irecv is posted before a long compute; the wait then finds the
  // message already there — communication should be (mostly) hidden.
  auto t = runTraced(R"(
    func main() {
      if (rank == 0) { mpi_send(1, 1024, 0); compute(3000000); }
      if (rank == 1) {
        var r = mpi_irecv(0, 1024, 0);
        compute(3000000);
        mpi_wait(r);
      }
    })", 2);
  auto p = simulate(t.raw);
  // Wait time should be small: the message arrived during compute.
  EXPECT_LT(p.rankCommNs[1], 1000000u);
}

TEST(Replay, CollectivesSynchronizeClocks) {
  auto t = runTraced(R"(
    func main() {
      if (rank == 0) { compute(2000000); }
      mpi_barrier();
      compute(1000);
    })", 4);
  auto p = simulate(t.raw);
  // All ranks end at nearly the same time (barrier synchronizes).
  uint64_t lo = p.rankClockNs[0], hi = p.rankClockNs[0];
  for (auto c : p.rankClockNs) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LT(hi - lo, 100000u);
  EXPECT_GT(p.rankCommNs[3], 1500000u);  // waited on rank 0 in the barrier
}

TEST(Replay, WildcardRecvReplaysFromRecordedSource) {
  auto t = runTraced(R"(
    func main() {
      if (rank != 0) { compute(rank * 100000); mpi_send(0, 64, 1); }
      else {
        for (var i = 1; i < size; i = i + 1) { mpi_recv(ANY_SOURCE, 64, 1); }
      }
    })", 4);
  auto p = simulate(t.raw);
  EXPECT_GT(p.predictedNs, 300000u);  // bounded by the slowest sender
}

TEST(Replay, WaitallAndWaitany) {
  auto t = runTraced(R"(
    func main() {
      var a = mpi_isend((rank + 1) % size, 256, 0);
      var b = mpi_irecv((rank + size - 1) % size, 256, 0);
      mpi_waitall();
      var c = mpi_isend((rank + 1) % size, 128, 1);
      var d = mpi_irecv((rank + size - 1) % size, 128, 1);
      mpi_waitany();
      mpi_waitany();
    })", 3);
  auto p = simulate(t.raw);
  EXPECT_EQ(p.totalEvents, 3u * 7u);
}

TEST(Replay, MalformedTraceDeadlockDetected) {
  trace::RawTrace t;
  t.ranks.resize(2);
  trace::Event recv;
  recv.op = ir::MpiOp::Recv;
  recv.peer = 1;
  recv.bytes = 8;
  recv.tag = 0;
  t.ranks[0].events.push_back(recv);  // rank 1 never sends
  EXPECT_THROW(simulate(t), Error);
}

TEST(Replay, PredictionMatchesMeasuredWithinTolerance) {
  // The Fig. 21 workflow: measure with jitter on the engine, predict by
  // replaying the CYPRESS-decompressed trace with mean times.
  const char* src = R"(
    func main() {
      for (var k = 0; k < 30; k = k + 1) {
        compute(200000);
        if (rank < size - 1) { mpi_send(rank + 1, 8192, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 8192, 0); }
        mpi_allreduce(64);
      }
    })";
  auto m = minic::compileProgram(src);
  cst::StaticResult sr = cst::analyzeAndInstrument(*m);

  const int ranks = 8;
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  cfg.jitter = 0.05;
  simmpi::Engine engine(cfg);
  std::vector<std::unique_ptr<core::CttRecorder>> recs;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < ranks; ++r) {
    recs.push_back(std::make_unique<core::CttRecorder>(sr.cst, r));
    obs.push_back(recs.back().get());
  }
  auto measured = vm::run(*m, engine, obs, 1ull << 27);

  std::vector<const core::Ctt*> ctts;
  for (const auto& r : recs) ctts.push_back(&r->ctt());
  core::MergedCtt merged = core::mergeAll(ctts);
  trace::RawTrace decompressed = core::decompressAll(merged, ranks);

  auto p = simulate(decompressed);
  const double measuredS = static_cast<double>(measured.executionNs);
  const double predictedS = static_cast<double>(p.predictedNs);
  const double err = std::abs(predictedS - measuredS) / measuredS;
  EXPECT_LT(err, 0.15) << "measured " << measuredS << " predicted " << predictedS;
  EXPECT_GT(p.commPercent(), 0.0);
  EXPECT_LT(p.commPercent(), 100.0);
}

TEST(Replay, RecordedTimesModeMatchesMeasuredClosely) {
  // Timed replay sums the recorded per-event times; on a single rank it
  // reproduces the measured clock exactly (no network contention).
  auto t = runTraced(R"(
    func main() {
      compute(500000);
      mpi_barrier();
      compute(250000);
      mpi_barrier();
    })", 1);
  auto p = simulateRecordedTimes(t.raw);
  EXPECT_EQ(p.totalEvents, 2u);
  const double err =
      std::abs(static_cast<double>(p.predictedNs) -
               static_cast<double>(t.measured.executionNs)) /
      static_cast<double>(t.measured.executionNs);
  EXPECT_LT(err, 0.01);
}

TEST(Replay, RecordedTimesModeOnMultiRankTrace) {
  auto t = runTraced(R"(
    func main() {
      for (var i = 0; i < 8; i = i + 1) {
        compute(100000);
        if (rank < size - 1) { mpi_send(rank + 1, 1024, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 1024, 0); }
      }
    })", 4);
  auto timed = simulateRecordedTimes(t.raw);
  auto modeled = simulate(t.raw);
  EXPECT_EQ(timed.totalEvents, modeled.totalEvents);
  // Both within a factor of two of the measured run (timed replay keeps
  // recorded wait times; the model recomputes them).
  const double measured = static_cast<double>(t.measured.executionNs);
  EXPECT_LT(static_cast<double>(timed.predictedNs), measured * 2);
  EXPECT_GT(static_cast<double>(timed.predictedNs), measured / 2);
}

/// MergedCtt references the CST by pointer, so the holder keeps the
/// static result (and with it the tree) alive alongside the trace.
struct MergedTrace {
  std::shared_ptr<cst::StaticResult> sr;
  core::MergedCtt m;
};

MergedTrace mergeTraced(const std::string& src, int ranks) {
  auto m = minic::compileProgram(src);
  auto sr = std::make_shared<cst::StaticResult>(cst::analyzeAndInstrument(*m));
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  simmpi::Engine engine(cfg);
  std::vector<std::unique_ptr<core::CttRecorder>> recs;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < ranks; ++r) {
    recs.push_back(std::make_unique<core::CttRecorder>(sr->cst, r));
    obs.push_back(recs.back().get());
  }
  vm::run(*m, engine, obs, 1ull << 28);
  std::vector<const core::Ctt*> ctts;
  for (const auto& r : recs) ctts.push_back(&r->ctt());
  return MergedTrace{sr, core::mergeAll(ctts)};
}

TEST(CompressedReplay, PredictionIdenticalToDecompressedReplay) {
  // The compressed-domain source must feed SIM-MPI the exact event
  // stream decompressAll produces, so the predictions are equal to the
  // nanosecond, not merely close.
  const char* src = R"(
    func main() {
      for (var k = 0; k < 25; k = k + 1) {
        compute(150000);
        if (rank < size - 1) { mpi_send(rank + 1, 4096, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 4096, 0); }
        mpi_allreduce(64);
      }
    })";
  const MergedTrace t = mergeTraced(src, 6);
  const core::MergedCtt& merged = t.m;
  const trace::RawTrace expanded = core::decompressAll(merged, 6);
  const auto direct = simulate(merged);
  const auto viaExpansion = simulate(expanded);
  EXPECT_EQ(direct.totalEvents, viaExpansion.totalEvents);
  EXPECT_EQ(direct.predictedNs, viaExpansion.predictedNs);
  EXPECT_EQ(direct.rankClockNs, viaExpansion.rankClockNs);
  EXPECT_EQ(direct.rankCommNs, viaExpansion.rankCommNs);

  const auto timedDirect = simulateRecordedTimes(merged);
  const auto timedExpanded = simulateRecordedTimes(expanded);
  EXPECT_EQ(timedDirect.totalEvents, timedExpanded.totalEvents);
  EXPECT_EQ(timedDirect.predictedNs, timedExpanded.predictedNs);
}

TEST(CompressedReplay, PartialTraceIsRejected) {
  // Replay needs every rank's stream; a trace with lost ranks must be
  // refused with a structured error, exactly as decompressAll refuses.
  MergedTrace t = mergeTraced(R"(
    func main() { mpi_barrier(); })", 4);
  EXPECT_NO_THROW(simulate(t.m));
  RankSet lost;
  lost.insert(4);
  t.m.markLost(lost);
  EXPECT_THROW(simulate(t.m), Error);
}

TEST(CompressedReplay, PeakRssStaysFarBelowTheMaterializedTrace) {
  // The reason the cursor path exists: replaying N events must not
  // allocate the N-event vector. The workload below expands to ~1.2M
  // events (~96 MB materialized); the compressed walk has to finish
  // within a quarter of that above its starting watermark.
  const char* src = R"(
    func main() {
      for (var k = 0; k < 50000; k = k + 1) {
        compute(1000);
        if (rank < size - 1) { mpi_send(rank + 1, 1024, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 1024, 0); }
      }
    })";
  const MergedTrace t = mergeTraced(src, 8);
  const core::MergedCtt& merged = t.m;
  const uint64_t before = io::peakRssBytes();
  const auto p = simulate(merged);
  const uint64_t after = io::peakRssBytes();
  ASSERT_GT(p.totalEvents, 500000u);
  const uint64_t materialized = p.totalEvents * sizeof(trace::Event);
  EXPECT_LT(after - before, materialized / 4)
      << "replay grew RSS by " << (after - before) << " bytes against a "
      << materialized << "-byte expansion";
}

}  // namespace
}  // namespace cypress::replay
