// Baseline (ScalaTrace / ScalaTrace-2) tests: greedy RSD compression,
// PRSD nesting, lossless V1 round trips, elastic V2 value aggregation,
// inter-process alignment merge, and the cost characteristics the paper
// builds its comparison on.
#include <gtest/gtest.h>

#include "minic/compile.hpp"
#include "scalatrace/inter.hpp"
#include "scalatrace/recorder.hpp"
#include "simmpi/engine.hpp"
#include "trace/observer.hpp"
#include "vm/runner.hpp"

namespace cypress::scalatrace {
namespace {

struct Run {
  trace::RawTrace raw;
  std::vector<std::unique_ptr<Recorder>> recorders;
};

Run runWith(const std::string& src, int ranks, Flavor flavor) {
  Run out;
  auto m = minic::compileProgram(src);
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  simmpi::Engine engine(cfg);
  out.raw.ranks.resize(static_cast<size_t>(ranks));
  std::vector<std::unique_ptr<trace::RawRecorder>> raws;
  std::vector<std::unique_ptr<trace::TeeObserver>> tees;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < ranks; ++r) {
    out.raw.ranks[static_cast<size_t>(r)].rank = r;
    raws.push_back(std::make_unique<trace::RawRecorder>(
        out.raw.ranks[static_cast<size_t>(r)]));
    out.recorders.push_back(std::make_unique<Recorder>(r, Recorder::Options(flavor)));
    auto tee = std::make_unique<trace::TeeObserver>();
    tee->add(raws.back().get());
    tee->add(out.recorders.back().get());
    tees.push_back(std::move(tee));
    obs.push_back(tees.back().get());
  }
  vm::run(*m, engine, obs, 1ull << 27);
  return out;
}

std::vector<trace::Event> contentOnly(std::vector<trace::Event> ev) {
  for (auto& e : ev) {
    e.computeNs = 0;
    e.durationNs = 0;
  }
  return ev;
}

void expectIntraLossless(const Run& run) {
  for (size_t r = 0; r < run.recorders.size(); ++r) {
    auto got = contentOnly(
        expandElements(run.recorders[r]->sequence(), static_cast<int>(r)));
    auto want = contentOnly(run.raw.ranks[r].events);
    ASSERT_EQ(got.size(), want.size()) << "rank " << r;
    for (size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(got[i], want[i]) << "rank " << r << " event " << i << "\n got "
                                 << got[i].toString() << "\nwant "
                                 << want[i].toString();
  }
}

TEST(ScalaTrace, SimpleLoopFoldsToOneRsd) {
  auto run = runWith(R"(
    func main() {
      for (var i = 0; i < 100; i = i + 1) { mpi_allreduce(64); }
    })", 2, Flavor::V1);
  const auto& seq = run.recorders[0]->sequence();
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_TRUE(seq[0].isRsd);
  EXPECT_EQ(seq[0].eventCount(), 100u);
  expectIntraLossless(run);
}

TEST(ScalaTrace, MultiEventLoopBodyFolds) {
  auto run = runWith(R"(
    func main() {
      for (var i = 0; i < 50; i = i + 1) {
        var a = mpi_isend((rank + 1) % size, 128, 0);
        var b = mpi_irecv((rank + size - 1) % size, 128, 0);
        mpi_waitall();
        mpi_reduce(0, 16);
      }
    })", 2, Flavor::V1);
  const auto& seq = run.recorders[1]->sequence();
  // The whole body folds into a handful of elements.
  EXPECT_LE(seq.size(), 2u);
  expectIntraLossless(run);
}

TEST(ScalaTrace, NestedConstantLoopsFormPrsd) {
  auto run = runWith(R"(
    func main() {
      for (var i = 0; i < 10; i = i + 1) {
        mpi_bcast(0, 32);
        for (var j = 0; j < 4; j = j + 1) { mpi_allreduce(8); }
      }
    })", 2, Flavor::V1);
  const auto& seq = run.recorders[0]->sequence();
  // Compressed to O(1) elements with a nested RSD inside.
  EXPECT_LE(seq.size(), 3u);
  bool nested = false;
  for (const auto& e : seq)
    if (e.isRsd)
      for (const auto& m : e.members)
        if (m.isRsd) nested = true;
  EXPECT_TRUE(nested);
  expectIntraLossless(run);
}

TEST(ScalaTrace, VaryingInnerLoopStillLossless) {
  // The paper's Figure 10 shape — hard for bottom-up folding, but
  // whatever structure emerges must stay lossless.
  auto run = runWith(R"(
    func main() {
      for (var i = 0; i < 8; i = i + 1) {
        mpi_bcast(0, 32);
        for (var j = 0; j < i; j = j + 1) { mpi_allreduce(8); }
      }
    })", 2, Flavor::V1);
  expectIntraLossless(run);
}

TEST(ScalaTrace, VariedMessageSizesBreakV1Folding) {
  // Message size changes per iteration: V1 cannot fold, V2 can.
  const char* src = R"(
    func main() {
      for (var i = 1; i <= 60; i = i + 1) {
        mpi_bcast(0, i * 1024);
      }
    })";
  auto v1 = runWith(src, 1, Flavor::V1);
  auto v2 = runWith(src, 1, Flavor::V2);
  EXPECT_GT(v1.recorders[0]->sequence().size(), 30u);  // no folding
  EXPECT_LE(v2.recorders[0]->sequence().size(), 2u);   // elastic folding
  expectIntraLossless(v1);
  expectIntraLossless(v2);  // per-rank V2 is still exact
}

TEST(ScalaTrace, V2AggregatesValuesAsStrides) {
  auto run = runWith(R"(
    func main() {
      for (var i = 0; i < 40; i = i + 1) { mpi_bcast(0, 1000 + i * 8); }
    })", 1, Flavor::V2);
  const auto& seq = run.recorders[0]->sequence();
  ASSERT_EQ(seq.size(), 1u);
  ASSERT_TRUE(seq[0].isRsd);
  const Element& ev = seq[0].members[0];
  EXPECT_EQ(ev.occurrences, 40u);
  // The affine size pattern compresses into one stride section.
  EXPECT_EQ(ev.bytesVals.sectionCount(), 1u);
}

TEST(ScalaTrace, JacobiLossless) {
  auto run = runWith(R"(
    func main() {
      for (var k = 0; k < 12; k = k + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 2048, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 2048, 0); }
        if (rank > 0)        { mpi_send(rank - 1, 2048, 0); }
        if (rank < size - 1) { mpi_recv(rank + 1, 2048, 0); }
      }
    })", 5, Flavor::V1);
  for (const auto& rec : run.recorders)
    EXPECT_LE(rec->sequence().size(), 4u) << "rank " << rec->rank();
  expectIntraLossless(run);
}

TEST(ScalaTrace, WildcardTracesStayLossless) {
  auto run = runWith(R"(
    func main() {
      if (rank != 0) { mpi_send(0, 8, 5); }
      else {
        for (var i = 1; i < size; i = i + 1) { mpi_recv(ANY_SOURCE, 8, 5); }
      }
    })", 5, Flavor::V1);
  expectIntraLossless(run);
}

TEST(ScalaTrace, SerializeDeserializeElements) {
  auto run = runWith(R"(
    func main() {
      for (var i = 0; i < 20; i = i + 1) {
        mpi_bcast(0, 64);
        mpi_reduce(0, 32);
      }
    })", 1, Flavor::V1);
  auto bytes = run.recorders[0]->serialize();
  ByteReader r(bytes);
  EXPECT_EQ(r.str(), "STR1");
  const uint64_t n = r.uv();
  std::vector<Element> back;
  for (uint64_t i = 0; i < n; ++i) back.push_back(Element::deserialize(r));
  EXPECT_TRUE(r.atEnd());
  EXPECT_EQ(contentOnly(expandElements(back, 0)),
            contentOnly(run.raw.ranks[0].events));
}

TEST(ScalaTraceInter, SpmdRanksMergeToOneEntryPerElement) {
  auto run = runWith(R"(
    func main() {
      for (var k = 0; k < 10; k = k + 1) { mpi_allreduce(256); }
    })", 8, Flavor::V1);
  std::vector<const std::vector<Element>*> seqs;
  for (const auto& r : run.recorders) seqs.push_back(&r->sequence());
  MergedSeq m = mergeSequences(seqs, Flavor::V1);
  ASSERT_EQ(m.elems.size(), 1u);
  EXPECT_EQ(m.elems[0].ranks.size(), 8u);
}

TEST(ScalaTraceInter, V1MergeLosslessPerRank) {
  auto run = runWith(R"(
    func main() {
      for (var k = 0; k < 9; k = k + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 512, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 512, 0); }
        mpi_barrier();
      }
    })", 6, Flavor::V1);
  std::vector<const std::vector<Element>*> seqs;
  for (const auto& r : run.recorders) seqs.push_back(&r->sequence());
  MergedSeq m = mergeSequences(seqs, Flavor::V1);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(contentOnly(decompressRank(m, r)),
              contentOnly(run.raw.ranks[static_cast<size_t>(r)].events))
        << "rank " << r;
  }
}

TEST(ScalaTraceInter, V2MergeKeepsCountsButRefusesExactDecompression) {
  auto run = runWith(R"(
    func main() {
      for (var k = 0; k < 7; k = k + 1) {
        mpi_send((rank + 1) % size, (rank + 1) * 64, k);
        mpi_recv((rank + size - 1) % size, ((rank + size - 1) % size + 1) * 64, k);
      }
    })", 4, Flavor::V2);
  std::vector<const std::vector<Element>*> seqs;
  for (const auto& r : run.recorders) seqs.push_back(&r->sequence());
  MergedSeq m = mergeSequences(seqs, Flavor::V2);
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(eventCountForRank(m, r),
              run.raw.ranks[static_cast<size_t>(r)].events.size());
  EXPECT_THROW(decompressRank(m, 0), Error);
}

TEST(ScalaTraceInter, MergedSizeSublinearForSpmd) {
  const char* src = R"(
    func main() {
      for (var k = 0; k < 15; k = k + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 256, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 256, 0); }
      }
    })";
  size_t s8, s32;
  {
    auto run = runWith(src, 8, Flavor::V1);
    std::vector<const std::vector<Element>*> seqs;
    for (const auto& r : run.recorders) seqs.push_back(&r->sequence());
    s8 = mergeSequences(seqs, Flavor::V1).serialize().size();
  }
  {
    auto run = runWith(src, 32, Flavor::V1);
    std::vector<const std::vector<Element>*> seqs;
    for (const auto& r : run.recorders) seqs.push_back(&r->sequence());
    s32 = mergeSequences(seqs, Flavor::V1).serialize().size();
  }
  EXPECT_LT(s32, s8 * 2);
}

TEST(ScalaTraceInter, CostMeterGrowsWithRanks) {
  const char* src = R"(
    func main() {
      for (var k = 0; k < 30; k = k + 1) {
        mpi_send((rank + 1) % size, 64 + rank, 0);
        mpi_recv((rank + size - 1) % size, 64 + (rank + size - 1) % size, 0);
        mpi_reduce(0, 32);
      }
    })";
  auto run = runWith(src, 24, Flavor::V1);
  std::vector<const std::vector<Element>*> seqs;
  for (const auto& r : run.recorders) seqs.push_back(&r->sequence());
  CostMeter cost;
  mergeSequences(seqs, Flavor::V1, &cost);
  EXPECT_GT(cost.totalNs(), 0u);
}

TEST(ScalaTrace, RecorderChargesIntraCost) {
  auto run = runWith(R"(
    func main() {
      for (var k = 0; k < 300; k = k + 1) { mpi_allreduce(8); }
    })", 1, Flavor::V1);
  EXPECT_GT(run.recorders[0]->cost().totalNs(), 0u);
  EXPECT_GT(run.recorders[0]->memoryBytes(), 0u);
}

}  // namespace
}  // namespace cypress::scalatrace
