// Tests for trace statistics.
#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include "minic/compile.hpp"
#include "simmpi/engine.hpp"
#include "trace/observer.hpp"
#include "vm/runner.hpp"

namespace cypress::trace {
namespace {

RawTrace runRaw(const std::string& src, int ranks) {
  auto m = minic::compileProgram(src);
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  simmpi::Engine engine(cfg);
  RawTrace out;
  out.ranks.resize(static_cast<size_t>(ranks));
  std::vector<std::unique_ptr<RawRecorder>> recs;
  std::vector<Observer*> obs;
  for (int r = 0; r < ranks; ++r) {
    out.ranks[static_cast<size_t>(r)].rank = r;
    recs.push_back(std::make_unique<RawRecorder>(out.ranks[static_cast<size_t>(r)]));
    obs.push_back(recs.back().get());
  }
  vm::run(*m, engine, obs);
  return out;
}

TEST(TraceStats, CountsByCategory) {
  RawTrace t = runRaw(R"(
    func main() {
      for (var i = 0; i < 4; i = i + 1) {
        mpi_send((rank + 1) % size, 1000, 0);
        mpi_recv((rank + size - 1) % size, 1000, 0);
      }
      mpi_allreduce(64);
      mpi_barrier();
    })", 3);
  TraceStats s = computeStats(t);
  EXPECT_EQ(s.totalEvents, 3u * 10u);
  EXPECT_EQ(s.p2pMessages, 3u * 4u);
  EXPECT_EQ(s.p2pBytes, 3u * 4u * 1000u);
  EXPECT_EQ(s.collectiveCalls, 3u * 2u);
  EXPECT_EQ(s.byOp.at(ir::MpiOp::Send).count, 12u);
  EXPECT_EQ(s.byOp.at(ir::MpiOp::Barrier).count, 3u);
  ASSERT_EQ(s.messageSizes.size(), 1u);
  EXPECT_EQ(s.messageSizes.at(1000), 12u);
}

TEST(TraceStats, RankBalance) {
  RawTrace t = runRaw(R"(
    func main() {
      for (var i = 0; i < rank; i = i + 1) { mpi_send(0, 8, 0); }
      if (rank == 0) {
        for (var k = 0; k < (size - 1) * size / 2; k = k + 1) {
          mpi_recv(ANY_SOURCE, 8, 0);
        }
      }
    })", 4);
  TraceStats s = computeStats(t);
  EXPECT_EQ(s.minRankEvents, 1u);  // rank 1 sends once
  EXPECT_EQ(s.maxRankEvents, 6u);  // rank 0 receives 6
  EXPECT_GT(s.avgRankEvents, 1.0);
}

TEST(TraceStats, TimeSplitAndRendering) {
  RawTrace t = runRaw(R"(
    func main() {
      compute(500000);
      mpi_allreduce(128);
    })", 2);
  TraceStats s = computeStats(t);
  EXPECT_GT(s.computeNs, 0u);
  EXPECT_GT(s.commNs, 0u);
  const std::string str = s.toString();
  EXPECT_NE(str.find("MPI_Allreduce"), std::string::npos);
  EXPECT_NE(str.find("communication"), std::string::npos);
}

TEST(TraceStats, EmptyTrace) {
  RawTrace t;
  TraceStats s = computeStats(t);
  EXPECT_EQ(s.totalEvents, 0u);
  EXPECT_FALSE(s.toString().empty());
}

}  // namespace
}  // namespace cypress::trace
