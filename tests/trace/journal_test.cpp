// CYJ1 crash-consistent journal tests: builder/parser roundtrip, seal
// semantics, strict-vs-lenient reader behaviour, and the core recovery
// guarantee — a journal truncated at ANY byte recovers to a verified
// prefix of the uninterrupted run's trace.
#include <gtest/gtest.h>

#include "driver/pipeline.hpp"
#include "simmpi/fault.hpp"
#include "support/error.hpp"
#include "trace/journal.hpp"

namespace cypress {
namespace {

trace::Event ev(int site, int64_t bytes) {
  trace::Event e;
  e.op = ir::MpiOp::Send;
  e.peer = 1;
  e.bytes = bytes;
  e.tag = 3;
  e.callSiteId = site;
  e.computeNs = 10;
  e.durationNs = 20;
  return e;
}

std::vector<uint8_t> journalOf(const std::string& workload, int procs,
                               driver::RunOutput* runOut = nullptr) {
  driver::Options opts;
  opts.procs = procs;
  opts.withScala = false;
  opts.withScala2 = false;
  opts.withJournal = true;
  opts.journalFlushEvery = 4;  // many small segments → many torn points
  auto run = driver::runWorkload(workload, opts);
  auto bytes = run.journal->bytes();
  if (runOut) *runOut = std::move(run);
  return bytes;
}

TEST(Journal, BuilderParserRoundtrip) {
  trace::JournalBuilder b(2);
  const std::vector<trace::Event> r0 = {ev(1, 64), ev(2, 128), ev(3, 256)};
  const std::vector<trace::Event> r1 = {ev(4, 32)};
  b.appendEvents(0, std::span<const trace::Event>(r0.data(), 2));
  b.appendEvents(1, r1);
  b.appendEvents(0, std::span<const trace::Event>(r0.data() + 2, 1));
  b.appendFinalize(0);
  b.appendFinalize(1);
  b.seal(RankSet{});
  EXPECT_TRUE(b.sealed());
  EXPECT_EQ(b.totalEvents(), 4u);

  const auto rec = trace::parseJournal(b.bytes());
  EXPECT_TRUE(rec.sealed);
  EXPECT_EQ(rec.bytesDiscarded, 0u);
  EXPECT_TRUE(rec.lostRanks.empty());
  EXPECT_EQ(rec.finalizedRanks, (std::vector<int>{0, 1}));
  EXPECT_TRUE(rec.unfinalizedRanks().empty());
  ASSERT_EQ(rec.trace.ranks.size(), 2u);
  EXPECT_EQ(rec.trace.ranks[0].events, r0);
  EXPECT_EQ(rec.trace.ranks[1].events, r1);
}

TEST(Journal, SealIsTerminal) {
  trace::JournalBuilder b(1);
  const std::vector<trace::Event> events = {ev(1, 8)};
  b.appendEvents(0, events);
  b.seal(RankSet{});
  EXPECT_THROW(b.appendEvents(0, events), Error);
  EXPECT_THROW(b.appendFinalize(0), Error);
  EXPECT_THROW(b.seal(RankSet{}), Error);
}

TEST(Journal, UnsealedJournalIsStrictErrorButRecoverable) {
  trace::JournalBuilder b(1);
  const std::vector<trace::Event> events = {ev(1, 8), ev(2, 16)};
  b.appendEvents(0, events);
  // No finalize, no seal: a tracer killed mid-run.
  EXPECT_THROW(trace::parseJournal(b.bytes()), Error);
  const auto rec = trace::recoverJournal(b.bytes());
  EXPECT_FALSE(rec.sealed);
  EXPECT_EQ(rec.trace.ranks[0].events, events);
  EXPECT_EQ(rec.unfinalizedRanks(), (std::vector<int>{0}));
}

TEST(Journal, BadHeaderThrowsEvenOnRecovery) {
  EXPECT_THROW(trace::recoverJournal({}), Error);
  const std::vector<uint8_t> junk = {9, 9, 9, 9, 9, 9, 9, 9};
  EXPECT_THROW(trace::recoverJournal(junk), Error);
}

TEST(Journal, MatchesRawTraceOnCleanRun) {
  // The journal is a second, crash-consistent encoding of the same
  // observer stream: on a clean run it must agree with the raw trace
  // event for event.
  driver::RunOutput run;
  const auto bytes = journalOf("JACOBI", 8, &run);
  const auto rec = trace::parseJournal(bytes);
  EXPECT_TRUE(rec.sealed);
  EXPECT_TRUE(rec.lostRanks.empty());
  ASSERT_EQ(rec.trace.ranks.size(), run.raw.ranks.size());
  for (size_t r = 0; r < run.raw.ranks.size(); ++r)
    EXPECT_EQ(rec.trace.ranks[r].events, run.raw.ranks[r].events)
        << "rank " << r;
}

TEST(Journal, TruncationAtEveryByteRecoversAVerifiedPrefix) {
  // The headline guarantee: kill the writer at ANY byte and recovery
  // yields per-rank event sequences that are exact prefixes of the
  // uninterrupted run's — never garbage, never an exception other than
  // the bad-header Error on sub-header prefixes.
  const auto bytes = journalOf("CG", 8);
  const auto full = trace::recoverJournal(bytes);
  ASSERT_TRUE(full.sealed);
  size_t headerErrors = 0;
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const uint8_t> prefix(bytes.data(), len);
    trace::JournalRecovery rec;
    try {
      rec = trace::recoverJournal(prefix);
    } catch (const Error&) {
      ++headerErrors;
      ASSERT_LT(len, 16u) << "header error at implausible offset " << len;
      continue;
    }
    ASSERT_FALSE(rec.sealed) << "prefix of " << len << " claims to be sealed";
    ASSERT_EQ(rec.trace.ranks.size(), full.trace.ranks.size());
    for (size_t r = 0; r < full.trace.ranks.size(); ++r) {
      const auto& got = rec.trace.ranks[r].events;
      const auto& want = full.trace.ranks[r].events;
      ASSERT_LE(got.size(), want.size()) << "len " << len << " rank " << r;
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
          << "len " << len << ": rank " << r
          << " recovered events are not a prefix of the full trace";
    }
    ASSERT_LE(rec.bytesDiscarded, len);
  }
  EXPECT_GT(headerErrors, 0u);  // the sub-header region exists
  // And the untruncated journal recovers losslessly.
  EXPECT_EQ(trace::recoverJournal(bytes).trace.serialize(),
            full.trace.serialize());
}

TEST(Journal, SingleByteCorruptionNeverYieldsGarbage) {
  // Flip every byte in turn: recovery must still produce a (possibly
  // shorter) prefix, or reject the header — never crash, never invent
  // events past the damage point.
  trace::JournalBuilder b(2);
  std::vector<trace::Event> events;
  for (int i = 0; i < 12; ++i) events.push_back(ev(i, 8 * (i + 1)));
  b.appendEvents(0, std::span<const trace::Event>(events.data(), 6));
  b.appendEvents(1, events);
  b.appendEvents(0, std::span<const trace::Event>(events.data() + 6, 6));
  b.appendFinalize(0);
  b.appendFinalize(1);
  b.seal(RankSet{});
  const auto good = b.bytes();
  const auto full = trace::recoverJournal(good);

  for (size_t pos = 0; pos < good.size(); ++pos) {
    auto bad = good;
    bad[pos] ^= 0x41;
    trace::JournalRecovery rec;
    try {
      rec = trace::recoverJournal(bad);
    } catch (const Error&) {
      continue;  // header damage: structured rejection is fine
    }
    for (size_t r = 0; r < rec.trace.ranks.size() && r < 2; ++r) {
      const auto& got = rec.trace.ranks[r].events;
      const auto& want = full.trace.ranks[r].events;
      EXPECT_TRUE(got.size() <= want.size() &&
                  std::equal(got.begin(), got.end(), want.begin()))
          << "flip at " << pos << " invented events on rank " << r;
    }
  }
}

TEST(Journal, CrashedRunSealsWithLostRanksAndSurvivorsRecover) {
  driver::Options opts;
  opts.procs = 8;
  opts.withScala = false;
  opts.withScala2 = false;
  opts.withJournal = true;
  opts.journalFlushEvery = 4;
  opts.onStall = vm::OnStall::Salvage;
  opts.engine.faults.faults.push_back(simmpi::parseFaultSpec("kill:2@6"));
  const auto run = driver::runWorkload("JACOBI", opts);
  ASSERT_FALSE(run.runStats.clean());

  const auto rec = trace::recoverJournal(run.journal->bytes());
  EXPECT_TRUE(rec.sealed);
  EXPECT_TRUE(rec.lostRanks.contains(2));
  EXPECT_EQ(rec.lostRanks, run.lostRanks());
  // Every survivor's journaled trace matches its raw trace exactly; the
  // dead rank keeps the prefix it flushed before dying.
  for (size_t r = 0; r < run.raw.ranks.size(); ++r) {
    const auto& got = rec.trace.ranks[r].events;
    const auto& want = run.raw.ranks[r].events;
    if (rec.lostRanks.contains(static_cast<int32_t>(r))) {
      EXPECT_TRUE(got.size() <= want.size() &&
                  std::equal(got.begin(), got.end(), want.begin()))
          << "rank " << r;
    } else {
      EXPECT_EQ(got, want) << "rank " << r;
    }
  }
}

}  // namespace
}  // namespace cypress
