// Tests for the OTF-style text trace format: lossless round trips and
// error handling on malformed input.
#include "trace/otf_text.hpp"

#include <gtest/gtest.h>

#include "minic/compile.hpp"
#include "simmpi/engine.hpp"
#include "support/error.hpp"
#include "trace/observer.hpp"
#include "vm/runner.hpp"

namespace cypress::trace {
namespace {

RawTrace runRaw(const std::string& src, int ranks) {
  auto m = minic::compileProgram(src);
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  simmpi::Engine engine(cfg);
  RawTrace out;
  out.ranks.resize(static_cast<size_t>(ranks));
  std::vector<std::unique_ptr<RawRecorder>> recs;
  std::vector<Observer*> obs;
  for (int r = 0; r < ranks; ++r) {
    out.ranks[static_cast<size_t>(r)].rank = r;
    recs.push_back(std::make_unique<RawRecorder>(out.ranks[static_cast<size_t>(r)]));
    obs.push_back(recs.back().get());
  }
  vm::run(*m, engine, obs);
  return out;
}

TEST(OtfText, RoundTripsAllOpKinds) {
  RawTrace t = runRaw(R"(
    func main() {
      var c = mpi_comm_split(rank / 2, rank);
      var a = mpi_isend((rank + 1) % size, 128, 3);
      var b = mpi_irecv(ANY_SOURCE, 128, 3);
      mpi_waitsome();
      mpi_waitall();
      mpi_allreduce_c(c, 16);
      mpi_bcast(0, 64);
      mpi_reduce(0, 8);
      mpi_allgather(32);
      mpi_alltoall(24);
      mpi_barrier();
      compute(5000);
      mpi_send((rank + 1) % size, 9, 1);
      mpi_recv((rank + size - 1) % size, 9, 1);
    })", 4);
  const std::string text = toOtfText(t);
  RawTrace back = fromOtfText(text);
  ASSERT_EQ(back.ranks.size(), t.ranks.size());
  for (size_t r = 0; r < t.ranks.size(); ++r) {
    EXPECT_EQ(back.ranks[r].rank, t.ranks[r].rank);
    EXPECT_EQ(back.ranks[r].events, t.ranks[r].events);
  }
}

TEST(OtfText, EmptyTrace) {
  RawTrace t;
  RawTrace back = fromOtfText(toOtfText(t));
  EXPECT_TRUE(back.ranks.empty());
}

TEST(OtfText, IsGreppableText) {
  RawTrace t = runRaw("func main() { mpi_barrier(); }", 2);
  const std::string text = toOtfText(t);
  EXPECT_NE(text.find("RANK 0"), std::string::npos);
  EXPECT_NE(text.find("E BARRIER"), std::string::npos);
}

TEST(OtfText, RejectsBadHeader) {
  EXPECT_THROW(fromOtfText("NOPE"), Error);
}

TEST(OtfText, RejectsEventBeforeRank) {
  EXPECT_THROW(fromOtfText("OTFX 1\nE BARRIER peer=0 bytes=0 tag=0 comm=0 "
                           "site=0 req=-1 match=-1 compute=0 dur=0\n"),
               Error);
}

TEST(OtfText, RejectsUnknownOp) {
  EXPECT_THROW(fromOtfText("OTFX 1\nRANK 0 1\nE FROB peer=0 bytes=0 tag=0 "
                           "comm=0 site=0 req=-1 match=-1 compute=0 dur=0\n"),
               Error);
}

TEST(OtfText, ReportsLineNumbers) {
  try {
    fromOtfText("OTFX 1\nRANK 0 1\ngarbage line\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("otf:3"), std::string::npos);
  }
}

}  // namespace
}  // namespace cypress::trace
