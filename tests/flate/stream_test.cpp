#include "flate/stream.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flate/flate.hpp"
#include "support/bytebuf.hpp"
#include "support/rng.hpp"

namespace cypress::flate {
namespace {

// Compressible-but-not-trivial data: repeated phrases with noise mixed
// in, so both huffman and stored shard kinds show up across sizes.
std::vector<uint8_t> testData(size_t n, uint64_t seed) {
  Rng rng(seed);
  const std::string phrase = "the quick brown fox jumps over the lazy dog ";
  std::vector<uint8_t> out;
  out.reserve(n);
  while (out.size() < n) {
    if (rng.below(4) == 0) {
      out.push_back(static_cast<uint8_t>(rng.below(256)));
    } else {
      const size_t take = std::min(phrase.size(), n - out.size());
      out.insert(out.end(), phrase.begin(), phrase.begin() + take);
    }
  }
  out.resize(n);
  return out;
}

std::vector<uint8_t> streamed(std::span<const uint8_t> data, int threads,
                              size_t chunk) {
  VectorSink sink;
  StreamingCompressor sc(sink, Level::Default, threads);
  for (size_t i = 0; i < data.size(); i += chunk)
    sc.append(data.subspan(i, std::min(chunk, data.size() - i)));
  const StreamingCompressor::Totals tot = sc.finish();
  EXPECT_EQ(tot.rawBytes, data.size());
  EXPECT_EQ(tot.crc, crc32(data));
  EXPECT_EQ(tot.compressedBytes, sink.bytes().size());
  return sink.take();
}

// The tentpole invariant: the streaming compressor is byte-identical
// to the one-shot compress() at every size class that exercises a
// different container layout, for every thread count, regardless of
// how the input is sliced into append() calls.
TEST(StreamingCompressor, ByteIdenticalToCompressAcrossSizesAndThreads) {
  const size_t sizes[] = {0,
                          1,
                          1000,
                          kShardBytes - 1,
                          kShardBytes,
                          kShardBytes + 1,
                          3 * kShardBytes + 12345};
  for (size_t n : sizes) {
    const std::vector<uint8_t> data = testData(n, /*seed=*/n + 7);
    const std::vector<uint8_t> want = compress(data);
    for (int threads : {1, 2, 4, 8}) {
      for (size_t chunk : {size_t{1} << 12, size_t{64 * 1024 + 13},
                           kShardBytes, data.size() + 1}) {
        EXPECT_EQ(streamed(data, threads, chunk), want)
            << "n=" << n << " threads=" << threads << " chunk=" << chunk;
      }
    }
  }
}

TEST(StreamingCompressor, ByteLevelAppendsMatchOneShot) {
  const std::vector<uint8_t> data = testData(4096, 3);
  EXPECT_EQ(streamed(data, 1, 1), compress(data));
}

TEST(StreamingCompressor, RoundtripsThroughDecompress) {
  for (size_t n : {size_t{0}, size_t{5000}, 2 * kShardBytes + 99}) {
    const std::vector<uint8_t> data = testData(n, n);
    for (int threads : {1, 4}) {
      EXPECT_EQ(decompress(streamed(data, threads, 1 << 16)), data);
    }
  }
}

TEST(StreamingCompressor, IncompressibleDataStaysIdentical) {
  Rng rng(42);
  std::vector<uint8_t> noise(2 * kShardBytes + 17);
  for (auto& b : noise) b = static_cast<uint8_t>(rng.below(256));
  const std::vector<uint8_t> want = compress(noise);
  EXPECT_EQ(streamed(noise, 4, 1 << 15), want);
  EXPECT_EQ(decompress(want), noise);
}

TEST(StreamingCompressor, LevelsPropagate) {
  const std::vector<uint8_t> data = testData(kShardBytes + 5000, 11);
  for (Level level : {Level::Fast, Level::Best}) {
    VectorSink sink;
    StreamingCompressor sc(sink, level, /*threads=*/2);
    sc.append(data);
    sc.finish();
    EXPECT_EQ(sink.take(), compress(data, level));
  }
}

TEST(StreamingCompressor, FinishTwiceIsRejected) {
  VectorSink sink;
  StreamingCompressor sc(sink);
  sc.finish();
  EXPECT_ANY_THROW(sc.finish());
}

TEST(StreamingCompressor, AbandonedWithoutFinishIsSafe) {
  VectorSink sink;
  {
    StreamingCompressor sc(sink, Level::Default, /*threads=*/4);
    sc.append(testData(3 * kShardBytes, 5));
    // Destroyed with shards still in flight: must not crash or hang.
  }
  SUCCEED();
}

TEST(Crc32Sink, FoldsRunningCrcAndForwards) {
  const std::vector<uint8_t> data = testData(300000, 21);
  VectorSink down;
  Crc32Sink sink(&down);
  for (size_t i = 0; i < data.size(); i += 7777)
    sink.append(std::span<const uint8_t>(data).subspan(
        i, std::min<size_t>(7777, data.size() - i)));
  EXPECT_EQ(sink.crc(), crc32(data));
  EXPECT_EQ(sink.bytes(), data.size());
  EXPECT_EQ(down.take(), data);
}

TEST(Crc32Sink, EmptyStreamMatchesCrc32OfNothing)
{
  Crc32Sink sink;
  EXPECT_EQ(sink.crc(), crc32({}));
  EXPECT_EQ(sink.bytes(), 0u);
}

// ByteWriter in sink mode must deliver the same bytes as buffered mode
// for every primitive, with large raw() spans bypassing the staging
// buffer.
TEST(ByteWriterSink, SinkModeMatchesBufferedMode) {
  ByteWriter buffered;
  VectorSink sink;
  {
    ByteWriter w(sink);
    for (ByteWriter* t : {&buffered, &w}) {
      t->u8(7);
      t->u32fixed(0xdeadbeef);
      t->u64fixed(1ull << 50);
      t->uv(300);
      t->sv(-12345);
      t->f64(3.25);
      t->str("hello");
      const std::vector<uint8_t> big(ByteWriter::kFlushBytes * 2 + 3, 0xab);
      t->raw(big);
      EXPECT_EQ(t->size(), buffered.size());
    }
    w.flush();
    EXPECT_EQ(w.size(), buffered.size());
  }
  EXPECT_EQ(sink.take(), buffered.bytes());
}

}  // namespace
}  // namespace cypress::flate
