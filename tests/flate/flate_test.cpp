#include "flate/flate.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "flate/huffman.hpp"
#include "support/bytebuf.hpp"
#include "flate/lz77.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cypress::flate {
namespace {

std::vector<uint8_t> bytesOf(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(Huffman, SingleSymbolGetsOneBitCode) {
  std::vector<uint64_t> freqs(10, 0);
  freqs[4] = 100;
  auto lens = buildCodeLengths(freqs);
  EXPECT_EQ(lens[4], 1);
  for (size_t i = 0; i < lens.size(); ++i) {
    if (i != 4) {
      EXPECT_EQ(lens[i], 0);
    }
  }
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<uint64_t> freqs(286);
    for (auto& f : freqs) f = rng.below(1000);
    auto lens = buildCodeLengths(freqs);
    double kraft = 0;
    for (size_t i = 0; i < lens.size(); ++i) {
      if (lens[i]) {
        EXPECT_LE(lens[i], kMaxCodeBits);
        kraft += std::ldexp(1.0, -lens[i]);
      }
      if (freqs[i] > 0) {
        EXPECT_GT(lens[i], 0) << "symbol " << i << " uncoded";
      }
    }
    EXPECT_LE(kraft, 1.0 + 1e-9);
  }
}

TEST(Huffman, LengthLimitingKicksInOnSkewedFreqs) {
  // Fibonacci-like frequencies force deep unrestricted trees.
  std::vector<uint64_t> freqs(40);
  uint64_t a = 1, b = 1;
  for (auto& f : freqs) {
    f = a;
    uint64_t c = a + b;
    a = b;
    b = c;
  }
  auto lens = buildCodeLengths(freqs);
  for (uint8_t l : lens) EXPECT_LE(l, kMaxCodeBits);
  double kraft = 0;
  for (uint8_t l : lens)
    if (l) kraft += std::ldexp(1.0, -l);
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  std::vector<uint64_t> freqs = {5, 1, 0, 9, 2, 2, 0, 30};
  auto lens = buildCodeLengths(freqs);
  auto codes = canonicalCodes(lens);
  HuffmanDecoder dec(lens);

  std::vector<int> symbols = {0, 3, 7, 7, 4, 1, 5, 3, 0, 7};
  BitWriter bw;
  for (int s : symbols) bw.put(codes[static_cast<size_t>(s)], lens[static_cast<size_t>(s)]);
  auto bits = bw.take();
  BitReader br(bits);
  for (int s : symbols) EXPECT_EQ(dec.decode(br), s);
}

TEST(Lz77, FindsRepeats) {
  auto data = bytesOf("abcabcabcabcabcabc");
  auto tokens = tokenize(data);
  EXPECT_LT(tokens.size(), data.size());  // matched something
  EXPECT_EQ(detokenize(tokens), data);
}

TEST(Lz77, HandlesOverlappingMatches) {
  // "aaaa..." relies on overlapping copy semantics (dist < len).
  std::vector<uint8_t> data(500, 'a');
  auto tokens = tokenize(data);
  EXPECT_LE(tokens.size(), 4u);
  EXPECT_EQ(detokenize(tokens), data);
}

TEST(Lz77, RandomDataRoundTrips) {
  Rng rng(5);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<uint8_t> data(rng.below(5000));
    for (auto& b : data) b = static_cast<uint8_t>(rng.below(256));
    EXPECT_EQ(detokenize(tokenize(data)), data);
  }
}

TEST(Flate, EmptyInput) {
  std::vector<uint8_t> empty;
  auto c = compress(empty);
  EXPECT_EQ(decompress(c), empty);
}

TEST(Flate, SmallStrings) {
  for (const char* s : {"a", "ab", "hello world", "x"}) {
    auto data = bytesOf(s);
    EXPECT_EQ(decompress(compress(data)), data) << s;
  }
}

TEST(Flate, CompressesRepetitiveTraceLikeData) {
  // Synthetic "trace": repeated fixed-size records, as raw traces are.
  std::string record = "MPI_Send dst=12 bytes=4096 tag=7 comm=0\n";
  std::string trace;
  for (int i = 0; i < 2000; ++i) trace += record;
  auto data = bytesOf(trace);
  auto c = compress(data);
  EXPECT_LT(c.size(), data.size() / 50);  // massively compressible
  EXPECT_EQ(decompress(c), data);
}

TEST(Flate, IncompressibleDataFallsBackToStored) {
  Rng rng(11);
  std::vector<uint8_t> data(4096);
  for (auto& b : data) b = static_cast<uint8_t>(rng.below(256));
  auto c = compress(data);
  // Container framing is small even when nothing compresses.
  EXPECT_LE(c.size(), data.size() + 16);
  EXPECT_EQ(decompress(c), data);
}

TEST(Flate, PropertyRoundTripAcrossLevelsAndShapes) {
  Rng rng(123);
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng gen(seed);
    std::vector<uint8_t> data(gen.below(20000));
    const int mode = static_cast<int>(seed % 3);
    for (size_t i = 0; i < data.size(); ++i) {
      if (mode == 0) data[i] = static_cast<uint8_t>(gen.below(256));
      else if (mode == 1) data[i] = static_cast<uint8_t>(i % 17);
      else data[i] = static_cast<uint8_t>(gen.below(4) * 63);
    }
    for (Level lvl : {Level::Fast, Level::Default, Level::Best}) {
      auto c = compress(data, lvl);
      EXPECT_EQ(decompress(c), data) << "seed " << seed;
    }
  }
  (void)rng;
}

// --- parallel / multi-block container ---------------------------------

namespace {

/// The determinism corpora of the multi-block tests: empty, one byte,
/// incompressible random, highly repetitive, and structured text —
/// small (single-block) and large (framed multi-block) variants.
std::vector<std::vector<uint8_t>> determinismCorpora() {
  std::vector<std::vector<uint8_t>> corpora;
  corpora.push_back({});
  corpora.push_back({0x42});
  Rng rng(2024);
  std::vector<uint8_t> random(3 * kShardBytes + 12345);
  for (auto& b : random) b = static_cast<uint8_t>(rng.below(256));
  corpora.push_back(std::move(random));
  corpora.push_back(std::vector<uint8_t>(2 * kShardBytes + 7, 'a'));
  std::string text;
  while (text.size() < 2 * kShardBytes)
    text += "MPI_Send dst=12 bytes=4096 tag=7 comm=0\n";
  corpora.push_back(bytesOf(text));
  corpora.push_back(bytesOf("short single-block payload"));
  return corpora;
}

}  // namespace

TEST(FlateParallel, ByteIdenticalAcrossThreadCounts) {
  for (const auto& data : determinismCorpora()) {
    for (Level lvl : {Level::Fast, Level::Default, Level::Best}) {
      const auto reference = compress(data, lvl, 1);
      EXPECT_EQ(decompress(reference), data);
      for (int threads : {2, 4, 8}) {
        EXPECT_EQ(compress(data, lvl, threads), reference)
            << "size " << data.size() << " threads " << threads;
      }
    }
  }
}

TEST(FlateParallel, MultiBlockRoundTripsAtShardBoundaries) {
  // Exactly the shard size stays single-block; one byte more frames.
  for (size_t size : {kShardBytes - 1, kShardBytes, kShardBytes + 1,
                      2 * kShardBytes, 2 * kShardBytes + 1}) {
    Rng rng(size);
    std::vector<uint8_t> data(size);
    for (size_t i = 0; i < size; ++i)
      data[i] = static_cast<uint8_t>(rng.below(7) == 0 ? rng.below(256)
                                                       : i % 31);
    const auto c = compress(data, Level::Default, 4);
    EXPECT_EQ(decompress(c), data) << size;
  }
}

TEST(FlateParallel, CorruptFramedContainerThrowsOrFailsClean) {
  std::vector<uint8_t> data(2 * kShardBytes + 99);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i % 251);
  const auto c = compress(data, Level::Default, 4);
  Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    auto bad = c;
    bad[rng.below(bad.size())] ^= static_cast<uint8_t>(1 + rng.below(255));
    try {
      const auto out = decompress(bad);
      // Extremely unlikely, but a mutation the CRC cannot see would
      // have to reproduce the input exactly.
      EXPECT_EQ(out, data);
    } catch (const Error&) {
      // Expected: corrupt containers must fail, not crash.
    }
  }
}

TEST(Lz77, LazyAndGreedyBothRoundTrip) {
  Rng rng(31337);
  for (uint64_t seed = 0; seed < 16; ++seed) {
    Rng gen(seed);
    std::vector<uint8_t> data(gen.below(30000));
    const int mode = static_cast<int>(seed % 4);
    for (size_t i = 0; i < data.size(); ++i) {
      if (mode == 0) data[i] = static_cast<uint8_t>(gen.below(256));
      else if (mode == 1) data[i] = static_cast<uint8_t>(i % 13);
      else if (mode == 2) data[i] = static_cast<uint8_t>(gen.below(3));
      else data[i] = static_cast<uint8_t>((i / 100) % 7);
    }
    for (bool lazy : {false, true}) {
      MatchParams p;
      p.lazy = lazy;
      EXPECT_EQ(detokenize(tokenize(data, p)), data)
          << "seed " << seed << " lazy " << lazy;
    }
  }
  (void)rng;
}

TEST(Lz77, LazyMatchingDoesNotHurtTokenEfficiency) {
  // The classic zlib heuristic: deferring one position for a strictly
  // longer match should never produce a materially worse token stream.
  std::string s;
  for (int i = 0; i < 800; ++i)
    s += "prefix " + std::to_string(i % 23) + " suffix-suffix;";
  auto data = bytesOf(s);
  MatchParams greedy;
  greedy.lazy = false;
  MatchParams lazy;
  lazy.lazy = true;
  const auto tg = tokenize(data, greedy);
  const auto tl = tokenize(data, lazy);
  EXPECT_EQ(detokenize(tg), data);
  EXPECT_EQ(detokenize(tl), data);
  EXPECT_LE(tl.size(), tg.size() + tg.size() / 20);
}

TEST(Lz77, SkipAheadStillRoundTripsRandomThenRepetitive) {
  // An incompressible prefix long enough to push the skip-ahead stride
  // to its cap, followed by compressible data: matches must still be
  // found after the stretch and the stream must reconstruct exactly.
  Rng rng(9);
  std::vector<uint8_t> data(200000);
  for (size_t i = 0; i < 150000; ++i) data[i] = static_cast<uint8_t>(rng.below(256));
  for (size_t i = 150000; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i % 5);
  auto tokens = tokenize(data);
  EXPECT_EQ(detokenize(tokens), data);
  // The repetitive tail must actually compress (matches found again).
  EXPECT_LT(tokens.size(), 150000 + 5000u);
}

TEST(Flate, CorruptMagicThrows) {
  auto c = compress(bytesOf("payload"));
  c[0] ^= 0xFF;
  EXPECT_THROW(decompress(c), Error);
}

TEST(Flate, CorruptPayloadFailsCrc) {
  std::string s(300, 'q');
  auto c = compress(bytesOf(s));
  c[c.size() - 1] ^= 0x01;
  EXPECT_THROW(decompress(c), Error);
}

TEST(Flate, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  auto data = bytesOf("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

// Reference bytewise CRC-32, the historical implementation: the
// slice-by-8 path must agree with it on every input, including lengths
// that exercise the unaligned head/tail handling.
uint32_t crc32Bytewise(std::span<const uint8_t> data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t c = 0xFFFFFFFFu;
  for (uint8_t b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

TEST(Flate, Crc32SliceBy8MatchesBytewise) {
  Rng rng(0xC4C32);
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                     size_t{15}, size_t{16}, size_t{255}, size_t{1024},
                     size_t{100003}}) {
    std::vector<uint8_t> data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.below(256));
    EXPECT_EQ(crc32(data), crc32Bytewise(data)) << "len=" << len;
    // Unaligned start: the slice loop must not assume 8-byte alignment.
    if (len > 3) {
      std::span<const uint8_t> tail(data.data() + 3, len - 3);
      EXPECT_EQ(crc32(tail), crc32Bytewise(tail)) << "len=" << len;
    }
  }
}

TEST(Flate, Crc32CombineEqualsWholeBufferCrc) {
  Rng rng(0xC0B13E);
  for (int iter = 0; iter < 40; ++iter) {
    const size_t len = 1 + rng.below(5000);
    std::vector<uint8_t> data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.below(256));
    const size_t cut = rng.below(len + 1);
    std::span<const uint8_t> a(data.data(), cut);
    std::span<const uint8_t> b(data.data() + cut, len - cut);
    EXPECT_EQ(crc32Combine(crc32(a), crc32(b), b.size()), crc32(data))
        << "len=" << len << " cut=" << cut;
  }
}

TEST(Flate, Crc32CombineEmptyAndAssociativity) {
  auto a = bytesOf("per-shard");
  auto b = bytesOf(" crc");
  auto c = bytesOf(" merge");
  EXPECT_EQ(crc32Combine(crc32(a), crc32(std::vector<uint8_t>{}), 0), crc32(a));
  // Folding left-to-right over three pieces equals the whole-buffer CRC.
  uint32_t folded = crc32Combine(crc32(a), crc32(b), b.size());
  folded = crc32Combine(folded, crc32(c), c.size());
  auto whole = bytesOf("per-shard crc merge");
  EXPECT_EQ(folded, crc32(whole));
}

TEST(FlateParallel, FramedHeaderCrcUnchangedByShardedComputation) {
  // The framed container computes its header CRC as a combine of
  // per-shard CRCs; the container bytes must be identical to what a
  // whole-input CRC produced (pinned by decompress, which re-CRCs the
  // output, and by a direct header check).
  Rng rng(77);
  std::vector<uint8_t> data(3 * kShardBytes + 12345);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<uint8_t>((i / 7) % 251 ^ rng.below(4));
  auto c = compress(data, Level::Fast, 2);
  ByteReader r(c);
  (void)r.raw(4);  // magic
  EXPECT_EQ(r.uv(), data.size());
  EXPECT_EQ(r.u32fixed(), crc32Bytewise(data));
  EXPECT_EQ(decompress(c, 2), data);
}

TEST(Flate, StringHelpersRoundTrip) {
  std::string s = "communication structure tree\n";
  for (int i = 0; i < 6; ++i) s += s;
  auto c = compressString(s);
  EXPECT_EQ(decompressToString(c), s);
}

TEST(Flate, BestLevelNotWorseThanFastOnRedundantData) {
  std::string s;
  for (int i = 0; i < 500; ++i)
    s += "loop iteration " + std::to_string(i % 10) + ";";
  auto data = bytesOf(s);
  auto fast = compress(data, Level::Fast);
  auto best = compress(data, Level::Best);
  EXPECT_LE(best.size(), fast.size() + 8);
}

}  // namespace
}  // namespace cypress::flate
