#include "flate/flate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "flate/huffman.hpp"
#include "flate/lz77.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace cypress::flate {
namespace {

std::vector<uint8_t> bytesOf(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(Huffman, SingleSymbolGetsOneBitCode) {
  std::vector<uint64_t> freqs(10, 0);
  freqs[4] = 100;
  auto lens = buildCodeLengths(freqs);
  EXPECT_EQ(lens[4], 1);
  for (size_t i = 0; i < lens.size(); ++i) {
    if (i != 4) {
      EXPECT_EQ(lens[i], 0);
    }
  }
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<uint64_t> freqs(286);
    for (auto& f : freqs) f = rng.below(1000);
    auto lens = buildCodeLengths(freqs);
    double kraft = 0;
    for (size_t i = 0; i < lens.size(); ++i) {
      if (lens[i]) {
        EXPECT_LE(lens[i], kMaxCodeBits);
        kraft += std::ldexp(1.0, -lens[i]);
      }
      if (freqs[i] > 0) {
        EXPECT_GT(lens[i], 0) << "symbol " << i << " uncoded";
      }
    }
    EXPECT_LE(kraft, 1.0 + 1e-9);
  }
}

TEST(Huffman, LengthLimitingKicksInOnSkewedFreqs) {
  // Fibonacci-like frequencies force deep unrestricted trees.
  std::vector<uint64_t> freqs(40);
  uint64_t a = 1, b = 1;
  for (auto& f : freqs) {
    f = a;
    uint64_t c = a + b;
    a = b;
    b = c;
  }
  auto lens = buildCodeLengths(freqs);
  for (uint8_t l : lens) EXPECT_LE(l, kMaxCodeBits);
  double kraft = 0;
  for (uint8_t l : lens)
    if (l) kraft += std::ldexp(1.0, -l);
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  std::vector<uint64_t> freqs = {5, 1, 0, 9, 2, 2, 0, 30};
  auto lens = buildCodeLengths(freqs);
  auto codes = canonicalCodes(lens);
  HuffmanDecoder dec(lens);

  std::vector<int> symbols = {0, 3, 7, 7, 4, 1, 5, 3, 0, 7};
  BitWriter bw;
  for (int s : symbols) bw.put(codes[static_cast<size_t>(s)], lens[static_cast<size_t>(s)]);
  auto bits = bw.take();
  BitReader br(bits);
  for (int s : symbols) EXPECT_EQ(dec.decode(br), s);
}

TEST(Lz77, FindsRepeats) {
  auto data = bytesOf("abcabcabcabcabcabc");
  auto tokens = tokenize(data);
  EXPECT_LT(tokens.size(), data.size());  // matched something
  EXPECT_EQ(detokenize(tokens), data);
}

TEST(Lz77, HandlesOverlappingMatches) {
  // "aaaa..." relies on overlapping copy semantics (dist < len).
  std::vector<uint8_t> data(500, 'a');
  auto tokens = tokenize(data);
  EXPECT_LE(tokens.size(), 4u);
  EXPECT_EQ(detokenize(tokens), data);
}

TEST(Lz77, RandomDataRoundTrips) {
  Rng rng(5);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<uint8_t> data(rng.below(5000));
    for (auto& b : data) b = static_cast<uint8_t>(rng.below(256));
    EXPECT_EQ(detokenize(tokenize(data)), data);
  }
}

TEST(Flate, EmptyInput) {
  std::vector<uint8_t> empty;
  auto c = compress(empty);
  EXPECT_EQ(decompress(c), empty);
}

TEST(Flate, SmallStrings) {
  for (const char* s : {"a", "ab", "hello world", "x"}) {
    auto data = bytesOf(s);
    EXPECT_EQ(decompress(compress(data)), data) << s;
  }
}

TEST(Flate, CompressesRepetitiveTraceLikeData) {
  // Synthetic "trace": repeated fixed-size records, as raw traces are.
  std::string record = "MPI_Send dst=12 bytes=4096 tag=7 comm=0\n";
  std::string trace;
  for (int i = 0; i < 2000; ++i) trace += record;
  auto data = bytesOf(trace);
  auto c = compress(data);
  EXPECT_LT(c.size(), data.size() / 50);  // massively compressible
  EXPECT_EQ(decompress(c), data);
}

TEST(Flate, IncompressibleDataFallsBackToStored) {
  Rng rng(11);
  std::vector<uint8_t> data(4096);
  for (auto& b : data) b = static_cast<uint8_t>(rng.below(256));
  auto c = compress(data);
  // Container framing is small even when nothing compresses.
  EXPECT_LE(c.size(), data.size() + 16);
  EXPECT_EQ(decompress(c), data);
}

TEST(Flate, PropertyRoundTripAcrossLevelsAndShapes) {
  Rng rng(123);
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng gen(seed);
    std::vector<uint8_t> data(gen.below(20000));
    const int mode = static_cast<int>(seed % 3);
    for (size_t i = 0; i < data.size(); ++i) {
      if (mode == 0) data[i] = static_cast<uint8_t>(gen.below(256));
      else if (mode == 1) data[i] = static_cast<uint8_t>(i % 17);
      else data[i] = static_cast<uint8_t>(gen.below(4) * 63);
    }
    for (Level lvl : {Level::Fast, Level::Default, Level::Best}) {
      auto c = compress(data, lvl);
      EXPECT_EQ(decompress(c), data) << "seed " << seed;
    }
  }
  (void)rng;
}

TEST(Flate, CorruptMagicThrows) {
  auto c = compress(bytesOf("payload"));
  c[0] ^= 0xFF;
  EXPECT_THROW(decompress(c), Error);
}

TEST(Flate, CorruptPayloadFailsCrc) {
  std::string s(300, 'q');
  auto c = compress(bytesOf(s));
  c[c.size() - 1] ^= 0x01;
  EXPECT_THROW(decompress(c), Error);
}

TEST(Flate, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  auto data = bytesOf("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Flate, StringHelpersRoundTrip) {
  std::string s = "communication structure tree\n";
  for (int i = 0; i < 6; ++i) s += s;
  auto c = compressString(s);
  EXPECT_EQ(decompressToString(c), s);
}

TEST(Flate, BestLevelNotWorseThanFastOnRedundantData) {
  std::string s;
  for (int i = 0; i < 500; ++i)
    s += "loop iteration " + std::to_string(i % 10) + ";";
  auto data = bytesOf(s);
  auto fast = compress(data, Level::Fast);
  auto best = compress(data, Level::Best);
  EXPECT_LE(best.size(), fast.size() + 8);
}

}  // namespace
}  // namespace cypress::flate
