// Streaming-merge crash/fault suite.
//
// The contract under test (cypress/merge_stream.hpp): a memory-bounded
// hierarchical merge whose every durable step survives kill -9 and
// injected disk faults, such that `resume` produces a final CYPC
// byte-identical to the uninterrupted run — no matter where the
// interruption landed. Four layers:
//
//   CYSP/CYM1 file formats: truncation at every byte is detected
//     (spills) or salvaged to a resumable prefix (manifest).
//   In-process fault matrix: ENOSPC / EIO / fsync failures injected at
//     every write and sync ordinal of the whole merge; every torn state
//     must resume byte-identically. Degraded mode must instead finish
//     with the faulted batch's ranks annotated lost.
//   Out-of-process kill matrix: a real `cyptrace merge` SIGKILLed at
//     every checkpoint boundary via --crash-after-steps, resumed with
//     --resume, byte-compared.
//   Real disk pressure: a forked child under RLIMIT_FSIZE hits genuine
//     EFBIG (the isDiskFull class), and a P=4096 synthetic merge must
//     hold its plan (many small batches) under a tiny budget.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>

#include "cypress/diff.hpp"
#include "cypress/merge_stream.hpp"
#include "cypress/spill.hpp"
#include "driver/pipeline.hpp"
#include "flate/flate.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

#ifndef CYPTRACE_BIN
#error "CYPTRACE_BIN must point at the cyptrace binary"
#endif

namespace cypress::core {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  // ctest runs every gtest case as its own process, possibly in
  // parallel, and each process rebuilds the static fixture — the pid
  // suffix keeps their scratch trees from clobbering each other.
  const std::string dir =
      (fs::temp_directory_path() / (name + "." + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<uint8_t> fileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void writeBytes(const std::string& path, std::span<const uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// The shared fixture: one JACOBI run at P=16 exported as a rank-trace
/// directory, its uninterrupted streaming-merge bytes (the golden
/// artifact every resume must reproduce), and the mergeAll result for
/// structural equivalence.
struct Fixture {
  driver::RankTraceDir ranks;
  std::vector<uint8_t> golden;          // uninterrupted streamingMerge CYPC
  std::shared_ptr<const cst::Tree> runCst;  // keeps viaMergeAll's tree alive
  std::optional<MergedCtt> viaMergeAll;     // the in-RAM reference merge

  static const Fixture& get() {
    static Fixture* f = [] {
      auto* fx = new Fixture;
      driver::Options opts;
      opts.procs = 16;
      opts.withRaw = false;
      opts.withScala = false;
      opts.withScala2 = false;
      opts.emitRankTraces = true;
      auto run = driver::runWorkload("JACOBI", opts);
      const std::string dir = freshDir("cyp_smerge_ranks");
      driver::writeRankTraces(run, dir);
      fx->ranks = driver::openRankTraceDir(dir);
      fx->runCst = run.cst;
      fx->viaMergeAll = driver::mergeCypress(run);

      StreamingMergeOptions mo = baseOptions(freshDir("cyp_smerge_golden"));
      const auto res = streamingMerge(fx->ranks.numRanks, fx->source(),
                                      *fx->ranks.cst, mo);
      fx->golden = res.merged.serialize();
      return fx;
    }();
    return *f;
  }

  CttSource source() const {
    const driver::RankTraceDir* rd = &ranks;
    return [rd](int r) { return rd->load(r); };
  }

  /// batch cap 3 at P=16 → 6 leaf batches, 3 reduction rounds, 12
  /// checkpointed steps incl. FINAL: a deep enough plan that every
  /// fault class has somewhere interesting to land.
  static StreamingMergeOptions baseOptions(const std::string& workDir) {
    StreamingMergeOptions mo;
    mo.maxBatchRanks = 3;
    mo.workDir = workDir;
    return mo;
  }
};

TEST(Spill, RoundtripAndIntact) {
  const std::string dir = freshDir("cyp_spill_rt");
  // Big enough for several 256 KiB chunks.
  std::vector<uint8_t> data(600 << 10);
  Rng rng(7);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());

  io::IoBackend& be = io::realIo();
  const std::string path = dir + "/x.cysp";
  writeSpill(be, path, data);
  EXPECT_EQ(readSpill(be, path), data);
  EXPECT_TRUE(spillIntact(be, path, data.size(), flate::crc32(data)));
  // Wrong expectations are "not intact", never an exception.
  EXPECT_FALSE(spillIntact(be, path, data.size() - 1, flate::crc32(data)));
  EXPECT_FALSE(spillIntact(be, path, data.size(), flate::crc32(data) ^ 1));
  EXPECT_FALSE(spillIntact(be, dir + "/missing.cysp", 0, 0));
}

TEST(Spill, TruncationAtEveryByteIsDetected) {
  // The CYJ1-style sweep: a spill cut at ANY byte must fail the strict
  // parser and the intact probe — there is no prefix worth salvaging in
  // a checkpoint artifact, only "complete" and "recompute".
  const std::string dir = freshDir("cyp_spill_sweep");
  std::vector<uint8_t> data(2048);
  Rng rng(11);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());

  io::IoBackend& be = io::realIo();
  writeSpill(be, dir + "/good.cysp", data);
  const auto good = fileBytes(dir + "/good.cysp");
  const uint64_t crc = flate::crc32(data);

  const std::string torn = dir + "/torn.cysp";
  for (size_t len = 0; len < good.size(); ++len) {
    writeBytes(torn, std::span<const uint8_t>(good.data(), len));
    EXPECT_THROW(readSpill(be, torn), Error) << "prefix " << len;
    EXPECT_FALSE(spillIntact(be, torn, data.size(), crc)) << "prefix " << len;
  }
  // And flipping any single byte of a complete spill is also caught.
  Rng flips(13);
  for (int i = 0; i < 64; ++i) {
    auto bad = good;
    const size_t pos = flips.below(bad.size());
    bad[pos] ^= static_cast<uint8_t>(1 + flips.below(255));
    writeBytes(torn, bad);
    EXPECT_FALSE(spillIntact(be, torn, data.size(), crc)) << "flip @" << pos;
  }
}

std::vector<uint8_t> sampleManifest(const std::string& dir,
                                    const MergePlanKey& key) {
  const std::string path = dir + "/sample.cym";
  io::IoBackend& be = io::realIo();
  be.remove(path);
  {
    ManifestWriter w(be, path, key);
    BatchRecord b;
    b.batchIndex = 0;
    b.firstRank = 0;
    b.rankCount = 3;
    b.file = "b0.cysp";
    b.fileBytes = 777;
    b.fileCrc = 0xdeadbeef;
    w.appendBatch(b);
    b.batchIndex = 1;
    b.firstRank = 3;
    b.file.clear();  // a degraded batch
    b.fileBytes = 0;
    b.fileCrc = 0;
    b.lostRanks.insert(3);
    b.lostRanks.insert(4);
    b.lostRanks.insert(5);
    w.appendBatch(b);
    MergeRecord m;
    m.round = 0;
    m.pairIndex = 0;
    m.file = "r0-p0.cysp";
    m.fileBytes = 123;
    m.fileCrc = 42;
    w.appendMerge(m);
    FinalRecord f;
    f.outPath = dir + "/out.cyp";
    f.bytes = 999;
    f.crc = 7;
    w.appendFinal(f);
  }
  return fileBytes(path);
}

TEST(Manifest, TruncationAtEveryByteSalvagesAndResumes) {
  const std::string dir = freshDir("cyp_manifest_sweep");
  MergePlanKey key;
  key.numRanks = 16;
  key.budgetBytes = 1 << 20;
  key.maxBatchRanks = 3;
  const auto good = sampleManifest(dir, key);
  io::IoBackend& be = io::realIo();

  const std::string path = dir + "/torn.cym";
  for (size_t len = 0; len <= good.size(); ++len) {
    writeBytes(path, std::span<const uint8_t>(good.data(), len));
    std::optional<ManifestRecovery> rec;
    ASSERT_NO_THROW(rec = recoverManifestFile(be, path)) << "prefix " << len;
    if (!rec) {
      // Torn header: the file must have been reset to empty so a fresh
      // writer can take over.
      EXPECT_EQ(be.fileSize(path), 0u) << "prefix " << len;
      continue;
    }
    EXPECT_EQ(rec->key, key) << "prefix " << len;
    EXPECT_EQ(be.fileSize(path), len - rec->bytesDiscarded)
        << "prefix " << len << ": torn tail not truncated";
    // Whatever survived must accept further appends (unless the FINAL
    // record survived — the merge is complete, nothing appends after
    // it) and then strict-parse.
    if (!rec->final) {
      ManifestWriter w(be, path, key, /*resume=*/true);
      MergeRecord m;
      m.round = 9;
      m.pairIndex = 9;
      m.file = "r9-p9.cysp";
      w.appendMerge(m);
    }
    ASSERT_NO_THROW(parseManifest(fileBytes(path))) << "prefix " << len;
  }
}

TEST(Manifest, RefusesForeignFileAndNonResumeOverwrite) {
  const std::string dir = freshDir("cyp_manifest_refuse");
  io::IoBackend& be = io::realIo();
  MergePlanKey key;
  key.numRanks = 4;

  sampleManifest(dir, key);
  // Existing manifest without resume: refused, like the ledger.
  EXPECT_THROW(ManifestWriter(be, dir + "/sample.cym", key), Error);

  // A file that is not a manifest at all.
  const auto junk = std::vector<uint8_t>{'n', 'o', 'p', 'e', '!', '!'};
  writeBytes(dir + "/junk.cym", junk);
  EXPECT_THROW(recoverManifestFile(be, dir + "/junk.cym"), Error);
}

TEST(StreamingMerge, MatchesMergeAllStructurally) {
  const Fixture& fx = Fixture::get();
  // Association differs (batched reduction vs flat binary tree), so the
  // float accumulations are not bit-equal — but every structural and
  // statistical quantity the trace stands for must agree.
  cst::Tree tree;
  const MergedCtt viaStream = MergedCtt::deserializeWithTree(fx.golden, tree);
  const TraceDiff d = diffTraces(viaStream, *fx.viaMergeAll);
  EXPECT_TRUE(d.identical()) << d.toString();
  EXPECT_EQ(viaStream.lostRanks(), fx.viaMergeAll->lostRanks());
}

TEST(StreamingMerge, DeterministicAcrossPlansOnlyWithinAPlan) {
  const Fixture& fx = Fixture::get();
  // Same plan → byte-identical, twice.
  for (int i = 0; i < 2; ++i) {
    StreamingMergeOptions mo =
        Fixture::baseOptions(freshDir("cyp_smerge_det"));
    const auto res =
        streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo);
    EXPECT_EQ(res.merged.serialize(), fx.golden);
    EXPECT_EQ(res.batches, 6u);
    EXPECT_EQ(res.reductionRounds, 3u);
    EXPECT_TRUE(res.droppedRanks.empty());
  }
}

TEST(StreamingMerge, WorkDirCleanedOnSuccessKeptOnRequest) {
  const Fixture& fx = Fixture::get();
  const std::string wd = freshDir("cyp_smerge_clean");
  StreamingMergeOptions mo = Fixture::baseOptions(wd);
  streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo);
  EXPECT_TRUE(fs::is_empty(wd)) << "spills/manifest must not outlive success";

  mo.keepWorkDir = true;
  streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo);
  EXPECT_TRUE(fs::exists(wd + "/merge.cym"));
  EXPECT_TRUE(fs::exists(wd + "/b0.cysp"));
}

/// Run the merge with one injected fault, then resume against the real
/// backend in the same workdir and require the golden bytes. Returns
/// false when the fault never fired (ordinal past the end of the run).
bool faultThenResume(const Fixture& fx, const std::string& spec,
                     const std::string& wd) {
  io::FaultyIoBackend faulty(io::realIo(), {io::parseIoFaultSpec(spec)});
  StreamingMergeOptions mo = Fixture::baseOptions(wd);
  mo.io = &faulty;
  mo.outPath = wd + ".out.cyp";
  bool threw = false;
  try {
    streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo);
  } catch (const io::IoError&) {
    threw = true;
  }
  if (!threw) {
    EXPECT_EQ(faulty.faultsFired(), 0u)
        << spec << ": a fired fault must not complete the merge";
    EXPECT_EQ(fileBytes(mo.outPath), fx.golden) << spec;
    return false;
  }

  StreamingMergeOptions rmo = Fixture::baseOptions(wd);
  rmo.resume = true;
  rmo.outPath = mo.outPath;
  const auto res =
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, rmo);
  EXPECT_EQ(res.merged.serialize(), fx.golden) << spec;
  EXPECT_EQ(fileBytes(rmo.outPath), fx.golden) << spec;
  return true;
}

TEST(StreamingMerge, EnospcAtEveryWriteOrdinalResumesByteIdentical) {
  const Fixture& fx = Fixture::get();
  int fired = 0;
  for (uint64_t n = 1; n < 400; ++n) {
    const std::string spec = "enospc@" + std::to_string(n);
    if (!faultThenResume(fx, spec, freshDir("cyp_smerge_enospc"))) break;
    ++fired;
  }
  // The sweep must actually cover the whole merge: spills (3 writes
  // each), manifest header + 12 segments, the final artifact.
  EXPECT_GE(fired, 30) << "sweep ended before covering every write";
}

TEST(StreamingMerge, EioAtEveryWriteOrdinalResumesByteIdentical) {
  const Fixture& fx = Fixture::get();
  int fired = 0;
  for (uint64_t n = 1; n < 400; ++n) {
    if (!faultThenResume(fx, "eio@" + std::to_string(n),
                         freshDir("cyp_smerge_eio")))
      break;
    ++fired;
  }
  EXPECT_GE(fired, 30);
}

TEST(StreamingMerge, FsyncFailureAtEverySyncOrdinalResumesByteIdentical) {
  const Fixture& fx = Fixture::get();
  int fired = 0;
  for (uint64_t n = 1; n < 100; ++n) {
    if (!faultThenResume(fx, "fsync@" + std::to_string(n),
                         freshDir("cyp_smerge_fsync")))
      break;
    ++fired;
  }
  // One sync per spill (11), one per manifest segment (13 with the
  // header), one for the final artifact + its directory syncs.
  EXPECT_GE(fired, 20);
}

TEST(StreamingMerge, TornFinalRenameIsRepairedOnResume) {
  const Fixture& fx = Fixture::get();
  const std::string wd = freshDir("cyp_smerge_torn_final");
  io::FaultyIoBackend faulty(io::realIo(),
                             {io::parseIoFaultSpec("rename@1:out.cyp")});
  StreamingMergeOptions mo = Fixture::baseOptions(wd);
  mo.io = &faulty;
  mo.outPath = wd + ".out.cyp";
  // The lying rename: the merge believes it succeeded...
  streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo);
  EXPECT_EQ(faulty.faultsFired(), 1u);
  EXPECT_NE(fileBytes(mo.outPath), fx.golden) << "rename should have torn";

  // ...but the workdir was consumed on success. A fresh resume has no
  // manifest, so it simply redoes the merge — still byte-identical.
  StreamingMergeOptions rmo = Fixture::baseOptions(wd);
  rmo.resume = true;
  rmo.outPath = mo.outPath;
  streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, rmo);
  EXPECT_EQ(fileBytes(rmo.outPath), fx.golden);
}

TEST(StreamingMerge, TornFinalWithSurvivingManifestVerifiesAndRepairs) {
  const Fixture& fx = Fixture::get();
  const std::string wd = freshDir("cyp_smerge_torn_manifest");
  io::FaultyIoBackend faulty(io::realIo(),
                             {io::parseIoFaultSpec("rename@1:out.cyp")});
  StreamingMergeOptions mo = Fixture::baseOptions(wd);
  mo.io = &faulty;
  mo.keepWorkDir = true;  // keep the checkpoint alive past "success"
  mo.outPath = wd + ".out.cyp";
  streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo);
  EXPECT_NE(fileBytes(mo.outPath), fx.golden);

  // Resume replays the FINAL record, finds the artifact's CRC wrong,
  // and repairs it from the deterministic result without re-merging.
  StreamingMergeOptions rmo = Fixture::baseOptions(wd);
  rmo.resume = true;
  rmo.keepWorkDir = true;
  rmo.outPath = mo.outPath;
  const auto res =
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, rmo);
  EXPECT_EQ(res.stepsExecuted, 0u);
  EXPECT_EQ(fileBytes(rmo.outPath), fx.golden);
}

TEST(StreamingMerge, ResumeWithDifferentPlanIsRefused) {
  const Fixture& fx = Fixture::get();
  const std::string wd = freshDir("cyp_smerge_plan");
  io::FaultyIoBackend faulty(io::realIo(), {io::parseIoFaultSpec("eio@9")});
  StreamingMergeOptions mo = Fixture::baseOptions(wd);
  mo.io = &faulty;
  EXPECT_THROW(
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo),
      io::IoError);

  StreamingMergeOptions rmo = Fixture::baseOptions(wd);
  rmo.resume = true;
  rmo.maxBatchRanks = 5;  // different batching → different plan
  EXPECT_THROW(
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, rmo),
      Error);

  // And without --resume an interrupted workdir is refused outright.
  StreamingMergeOptions fresh = Fixture::baseOptions(wd);
  EXPECT_THROW(
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, fresh),
      Error);
}

TEST(StreamingMerge, DamagedRecordedSpillIsRecomputedOnResume) {
  const Fixture& fx = Fixture::get();
  const std::string wd = freshDir("cyp_smerge_damage");
  io::FaultyIoBackend faulty(io::realIo(), {io::parseIoFaultSpec("eio@12")});
  StreamingMergeOptions mo = Fixture::baseOptions(wd);
  mo.io = &faulty;
  EXPECT_THROW(
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo),
      io::IoError);

  // Tear a checkpointed spill behind the manifest's back.
  ASSERT_TRUE(fs::exists(wd + "/b0.cysp"));
  io::realIo().truncate(wd + "/b0.cysp", 10);

  StreamingMergeOptions rmo = Fixture::baseOptions(wd);
  rmo.resume = true;
  const auto res =
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, rmo);
  EXPECT_EQ(res.merged.serialize(), fx.golden);
}

TEST(StreamingMerge, DegradedBatchSpillDropsItsRanksAndAnnotates) {
  const Fixture& fx = Fixture::get();
  const std::string wd = freshDir("cyp_smerge_degrade_batch");
  io::FaultyIoBackend faulty(io::realIo(),
                             {io::parseIoFaultSpec("enospc@1:b2.cysp")});
  StreamingMergeOptions mo = Fixture::baseOptions(wd);
  mo.io = &faulty;
  mo.degrade = true;
  const auto res =
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo);
  EXPECT_EQ(faulty.faultsFired(), 1u);
  // Batch 2 covers ranks 6..8 under the cap-3 plan.
  RankSet expect;
  expect.insert(6);
  expect.insert(7);
  expect.insert(8);
  EXPECT_EQ(res.droppedRanks, expect);
  EXPECT_EQ(res.merged.lostRanks(), expect);
  // The partial trace is still a valid CYPC that roundtrips.
  const auto bytes = res.merged.serialize();
  cst::Tree tree;
  const MergedCtt back = MergedCtt::deserializeWithTree(bytes, tree);
  EXPECT_EQ(back.lostRanks(), expect);
}

TEST(StreamingMerge, DegradedReductionSpillFallsBackToRam) {
  const Fixture& fx = Fixture::get();
  const std::string wd = freshDir("cyp_smerge_degrade_merge");
  io::FaultyIoBackend faulty(io::realIo(),
                             {io::parseIoFaultSpec("enospc@1:r0-p1")});
  StreamingMergeOptions mo = Fixture::baseOptions(wd);
  mo.io = &faulty;
  mo.degrade = true;
  const auto res =
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo);
  EXPECT_EQ(faulty.faultsFired(), 1u);
  // No ranks lost: the intermediate was carried in RAM instead. The
  // result is the very same reduction, so the bytes match the golden.
  EXPECT_TRUE(res.droppedRanks.empty());
  EXPECT_EQ(res.merged.serialize(), fx.golden);
}

TEST(StreamingMerge, DegradedManifestKeepsMergingUncheckpointed) {
  const Fixture& fx = Fixture::get();
  const std::string wd = freshDir("cyp_smerge_degrade_manifest");
  io::FaultyIoBackend faulty(io::realIo(),
                             {io::parseIoFaultSpec("enospc@1:merge.cym")});
  StreamingMergeOptions mo = Fixture::baseOptions(wd);
  mo.io = &faulty;
  mo.degrade = true;
  const auto res =
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo);
  EXPECT_EQ(faulty.faultsFired(), 1u);
  EXPECT_TRUE(res.droppedRanks.empty());
  EXPECT_EQ(res.merged.serialize(), fx.golden);
}

// ---------------------------------------------------------------------
// Out-of-process kill matrix: the real binary, a real SIGKILL.

int runMerge(const std::string& rankDir, const std::string& out,
             const std::string& wd, const std::vector<std::string>& extra) {
  const pid_t pid = fork();
  if (pid == 0) {
    std::vector<const char*> argv = {CYPTRACE_BIN, "merge", rankDir.c_str(),
                                     "--out",      out.c_str(),
                                     "--batch-ranks", "3",
                                     "--work-dir", wd.c_str()};
    for (const auto& a : extra) argv.push_back(a.c_str());
    argv.push_back(nullptr);
    // Quiet child: the matrix runs dozens of these.
    if (freopen("/dev/null", "w", stdout) == nullptr) _exit(126);
    execv(CYPTRACE_BIN, const_cast<char* const*>(argv.data()));
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

TEST(StreamingMergeKillMatrix, SigkillAtEveryCheckpointResumesByteIdentical) {
  const Fixture& fx = Fixture::get();
  const std::string rankDir = fx.ranks.dir;
  const std::string scratch = freshDir("cyp_smerge_kill");

  // 6 BATCH + 5 MERGE + 1 FINAL checkpoints; at step 13 the merge runs
  // to completion and the matrix stops finding anything to kill.
  bool sawCleanRun = false;
  for (int n = 1; n <= 13; ++n) {
    const std::string wd = scratch + "/wd" + std::to_string(n);
    const std::string out = scratch + "/out" + std::to_string(n) + ".cyp";
    const int st =
        runMerge(rankDir, out, wd, {"--crash-after-steps", std::to_string(n)});
    if (WIFEXITED(st) && WEXITSTATUS(st) == 0) {
      sawCleanRun = true;
      EXPECT_EQ(fileBytes(out), fx.golden) << "clean run at n=" << n;
      continue;
    }
    ASSERT_TRUE(WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL)
        << "n=" << n << ": expected SIGKILL, status " << st;
    const int rst = runMerge(rankDir, out, wd, {"--resume"});
    ASSERT_TRUE(WIFEXITED(rst) && WEXITSTATUS(rst) == 0) << "n=" << n;
    EXPECT_EQ(fileBytes(out), fx.golden) << "resume after kill at step " << n;
  }
  EXPECT_TRUE(sawCleanRun) << "matrix never outran the checkpoint count";
}

TEST(StreamingMergeKillMatrix, RepeatedCrashWalkEventuallyFinishes) {
  // Crash after every single live step, resuming each time: the merge
  // must make monotone progress and converge in ~#checkpoints runs.
  const Fixture& fx = Fixture::get();
  const std::string scratch = freshDir("cyp_smerge_walk");
  const std::string wd = scratch + "/wd";
  const std::string out = scratch + "/out.cyp";

  int runs = 0;
  for (; runs < 20; ++runs) {
    std::vector<std::string> extra = {"--crash-after-steps", "1"};
    if (runs > 0) extra.push_back("--resume");
    const int st = runMerge(fx.ranks.dir, out, wd, extra);
    if (WIFEXITED(st) && WEXITSTATUS(st) == 0) break;
    ASSERT_TRUE(WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL) << "run " << runs;
  }
  ASSERT_LT(runs, 20) << "crash walk did not converge";
  EXPECT_EQ(fileBytes(out), fx.golden);
}

// ---------------------------------------------------------------------
// Real disk pressure.

TEST(StreamingMergeDiskFull, RlimitFsizeHitsTheDiskFullClassAndResumes) {
  const Fixture& fx = Fixture::get();
  const std::string wd = freshDir("cyp_smerge_rlimit");
  const std::string out = wd + ".out.cyp";

  const pid_t pid = fork();
  if (pid == 0) {
    // A file-size cap small enough that the very first spill overflows
    // it. With SIGXFSZ ignored, write(2) past the limit returns EFBIG —
    // a genuine kernel-enforced disk-full condition, no injection.
    signal(SIGXFSZ, SIG_IGN);
    rlimit rl{256, 256};
    setrlimit(RLIMIT_FSIZE, &rl);
    StreamingMergeOptions mo = Fixture::baseOptions(wd);
    mo.outPath = out;
    try {
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, mo);
      _exit(1);  // must not succeed under a 256-byte cap
    } catch (const io::IoError& e) {
      _exit(io::isDiskFull(e.errnum()) ? 42 : 2);
    } catch (...) {
      _exit(3);
    }
  }
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status)) << "child crashed";
  ASSERT_EQ(WEXITSTATUS(status), 42)
      << "expected an IoError in the disk-full errno class";

  // The parent (no rlimit) resumes whatever survived, byte-identically.
  StreamingMergeOptions rmo = Fixture::baseOptions(wd);
  rmo.resume = true;
  rmo.outPath = out;
  const auto res =
      streamingMerge(fx.ranks.numRanks, fx.source(), *fx.ranks.cst, rmo);
  EXPECT_EQ(res.merged.serialize(), fx.golden);
  EXPECT_EQ(fileBytes(out), fx.golden);
}

TEST(StreamingMergeScale, FourThousandRanksUnderTinyBudget) {
  // P=4096 synthetic: the 16 real rank traces replicated 256×. The
  // merge must honor the batch plan (many small batches — never "all
  // ranks in RAM") and complete in a forked child whose peak RSS stays
  // far below what 4096 resident CTTs would need.
  const Fixture& fx = Fixture::get();
  const int bigP = 4096;
  const std::string dir = freshDir("cyp_smerge_4k");
  {
    io::IoBackend& be = io::realIo();
    ByteWriter meta;
    meta.str("CYRD");
    meta.uv(1);
    meta.uv(static_cast<uint64_t>(bigP));
    io::writeFileAtomic(be, dir + "/meta.cyrd", meta.bytes());
    const auto cstBytes = be.readAll(fx.ranks.dir + "/cst.cyst");
    io::writeFileAtomic(be, dir + "/cst.cyst", cstBytes);
    std::vector<std::vector<uint8_t>> src(16);
    for (int r = 0; r < 16; ++r) {
      char name[32];
      std::snprintf(name, sizeof name, "rank-%05d.cypp", r);
      src[r] = be.readAll(fx.ranks.dir + "/" + name);
    }
    for (int r = 0; r < bigP; ++r) {
      char name[32];
      std::snprintf(name, sizeof name, "rank-%05d.cypp", r);
      io::writeFileAtomic(be, dir + "/" + name, src[r % 16]);
    }
  }

  const std::string wd = freshDir("cyp_smerge_4k_wd");
  const std::string out = wd + ".out.cyp";
  const pid_t pid = fork();
  if (pid == 0) {
    const char* argv[] = {CYPTRACE_BIN,     "merge", dir.c_str(),
                          "--out",          out.c_str(),
                          "--merge-budget", "16m",
                          "--batch-ranks",  "64",
                          "--work-dir",     wd.c_str(),
                          nullptr};
    if (freopen("/dev/null", "w", stdout) == nullptr) _exit(126);
    execv(CYPTRACE_BIN, const_cast<char* const*>(argv));
    _exit(127);
  }
  int status = 0;
  rusage ru{};
  wait4(pid, &status, 0, &ru);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "status " << status;
  // ru_maxrss is KiB on Linux. The bound is loose (binary + CST + libc
  // noise) but far below an all-in-RAM merge of 4096 CTTs, and fails
  // loudly if the batching plan regresses to "hold everything".
  EXPECT_LT(static_cast<uint64_t>(ru.ru_maxrss), 512u * 1024)
      << "peak RSS " << ru.ru_maxrss << " KiB";

  // The output must be a valid CYPC covering all 4096 ranks.
  cst::Tree tree;
  const MergedCtt big = MergedCtt::deserializeWithTree(fileBytes(out), tree);
  EXPECT_TRUE(big.lostRanks().empty());
}

}  // namespace
}  // namespace cypress::core
