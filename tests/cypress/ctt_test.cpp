// CYPRESS core tests: intra-process CTT compression, inter-process
// merging, serialization, and lossless sequence-preserving decompression
// — validated end-to-end against the raw traces of real simulated runs.
#include <gtest/gtest.h>

#include "cst/builder.hpp"
#include "cypress/ctt.hpp"
#include "cypress/decompress.hpp"
#include "cypress/merge.hpp"
#include "minic/compile.hpp"
#include "simmpi/engine.hpp"
#include "trace/observer.hpp"
#include "vm/runner.hpp"

namespace cypress::core {
namespace {

struct Pipeline {
  std::unique_ptr<ir::Module> module;
  cst::Tree cstTree;
  trace::RawTrace raw;
  std::vector<std::unique_ptr<CttRecorder>> recorders;
};

/// Compile + instrument + run with both raw tracing and CYPRESS CTT
/// recording attached.
Pipeline runPipeline(const std::string& src, int ranks,
                     TimeMode mode = TimeMode::MeanStddev) {
  Pipeline p;
  p.module = minic::compileProgram(src);
  cst::StaticResult sr = cst::analyzeAndInstrument(*p.module);
  p.cstTree = std::move(sr.cst);

  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  simmpi::Engine engine(cfg);
  p.raw.ranks.resize(static_cast<size_t>(ranks));

  std::vector<std::unique_ptr<trace::RawRecorder>> raws;
  std::vector<std::unique_ptr<trace::TeeObserver>> tees;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < ranks; ++r) {
    p.raw.ranks[static_cast<size_t>(r)].rank = r;
    raws.push_back(std::make_unique<trace::RawRecorder>(
        p.raw.ranks[static_cast<size_t>(r)]));
    p.recorders.push_back(std::make_unique<CttRecorder>(
        p.cstTree, r, CttRecorder::Options(mode)));
    auto tee = std::make_unique<trace::TeeObserver>();
    tee->add(raws.back().get());
    tee->add(p.recorders.back().get());
    tees.push_back(std::move(tee));
    obs.push_back(tees.back().get());
  }
  vm::run(*p.module, engine, obs, 1ull << 27);
  return p;
}

/// Strip timing from an event list (content-only comparison).
std::vector<trace::Event> contentOnly(std::vector<trace::Event> ev) {
  for (auto& e : ev) {
    e.computeNs = 0;
    e.durationNs = 0;
  }
  return ev;
}

void expectLossless(const Pipeline& p, int ranks) {
  std::vector<const Ctt*> ctts;
  for (const auto& r : p.recorders) ctts.push_back(&r->ctt());
  MergedCtt merged = mergeAll(ctts);
  for (int r = 0; r < ranks; ++r) {
    auto got = contentOnly(decompressRank(merged, r));
    auto want = contentOnly(p.raw.ranks[static_cast<size_t>(r)].events);
    ASSERT_EQ(got.size(), want.size()) << "rank " << r;
    for (size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(got[i], want[i]) << "rank " << r << " event " << i << ": got "
                                 << got[i].toString() << " want "
                                 << want[i].toString();
  }
}

TEST(Ctt, LoopCompressesToSingleRecord) {
  auto p = runPipeline(R"(
    func main() {
      for (var i = 0; i < 100; i = i + 1) {
        mpi_allreduce(64);
      }
    })", 2);
  const Ctt& c = p.recorders[0]->ctt();
  // Exactly one loop vertex with one activation of count 100, and one
  // comm record with count 100.
  size_t loopSeen = 0, recSeen = 0;
  for (int g = 0; g < p.cstTree.numNodes(); ++g) {
    if (!c.loopCounts(g).empty()) {
      ++loopSeen;
      EXPECT_EQ(c.loopCounts(g).expand(), (std::vector<int64_t>{100}));
    }
    for (const auto& rec : c.records(g)) {
      ++recSeen;
      EXPECT_EQ(rec.count, 100u);
      EXPECT_EQ(rec.duration.count(), 100u);
    }
  }
  EXPECT_EQ(loopSeen, 1u);
  EXPECT_EQ(recSeen, 1u);
  expectLossless(p, 2);
}

TEST(Ctt, NestedLoopWithVaryingInnerCount) {
  // Paper Figure 10: inner iteration count depends on the outer index.
  auto p = runPipeline(R"(
    func main() {
      for (var i = 0; i < 6; i = i + 1) {
        mpi_bcast(0, 32);
        for (var j = 0; j < i; j = j + 1) {
          mpi_allreduce(8);
        }
      }
    })", 2);
  const Ctt& c = p.recorders[0]->ctt();
  bool innerSeen = false;
  for (int g = 0; g < p.cstTree.numNodes(); ++g) {
    const auto& counts = c.loopCounts(g);
    if (counts.empty()) continue;
    if (counts.size() == 6) {
      // The inner loop: <0,1,2,3,4,5> — one affine section.
      innerSeen = true;
      EXPECT_EQ(counts.sectionCount(), 1u);
      EXPECT_EQ(counts.expand(), (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
    }
  }
  EXPECT_TRUE(innerSeen);
  expectLossless(p, 2);
}

TEST(Ctt, AlternatingBranchCompressesToStride) {
  // Paper Figure 11: branch taken at iterations <0,8,2> / <1,9,2>.
  auto p = runPipeline(R"(
    func main() {
      for (var i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) {
          var r = mpi_isend((rank + 1) % size, 8, 0);
          mpi_wait(r);
        } else {
          var r = mpi_irecv(ANY_SOURCE, 8, 0);
          mpi_wait(r);
        }
      }
    })", 2);
  const Ctt& c = p.recorders[0]->ctt();
  std::vector<std::vector<int64_t>> takens;
  for (int g = 0; g < p.cstTree.numNodes(); ++g)
    if (!c.taken(g).empty()) {
      takens.push_back(c.taken(g).expand());
      EXPECT_EQ(c.taken(g).sectionCount(), 1u);  // single stride tuple
    }
  ASSERT_EQ(takens.size(), 2u);
  EXPECT_EQ(takens[0], (std::vector<int64_t>{0, 2, 4, 6, 8}));
  EXPECT_EQ(takens[1], (std::vector<int64_t>{1, 3, 5, 7, 9}));
  expectLossless(p, 2);
}

TEST(Ctt, JacobiLosslessAcrossRankRoles) {
  auto p = runPipeline(R"(
    func main() {
      for (var k = 0; k < 8; k = k + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 4096, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 4096, 0); }
        if (rank > 0)        { mpi_send(rank - 1, 4096, 0); }
        if (rank < size - 1) { mpi_recv(rank + 1, 4096, 0); }
      }
    })", 6);
  expectLossless(p, 6);
}

TEST(Ctt, RelativePeerEncodingMergesMiddleRanks) {
  auto p = runPipeline(R"(
    func main() {
      for (var k = 0; k < 4; k = k + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 256, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 256, 0); }
      }
    })", 8);
  std::vector<const Ctt*> ctts;
  for (const auto& r : p.recorders) ctts.push_back(&r->ctt());
  MergedCtt merged = mergeAll(ctts);
  // The send leaf: ranks 0..6 share one entry ("rank+1"); rank 7 absent.
  for (int g = 0; g < p.cstTree.numNodes(); ++g) {
    for (const auto& e : merged.leafEntries(g)) {
      if (!e.records.empty() && e.records[0].op == ir::MpiOp::Send) {
        EXPECT_EQ(e.ranks.size(), 7u);
        EXPECT_EQ(e.records[0].peer.kind, PeerRef::Kind::Relative);
        EXPECT_EQ(e.records[0].peer.value, 1);
      }
    }
  }
  expectLossless(p, 8);
}

TEST(Ctt, FunctionCallsAndMultipleInstances) {
  auto p = runPipeline(R"(
    func exchange(bytes) {
      if (rank % 2 == 0) { mpi_send((rank + 1) % size, bytes, 1); }
      else { mpi_recv((rank + size - 1) % size, bytes, 1); }
    }
    func main() {
      for (var i = 0; i < 5; i = i + 1) {
        exchange(64);
        exchange(1024);
      }
    })", 4);
  expectLossless(p, 4);
}

TEST(Ctt, NonBlockingWaitallLossless) {
  auto p = runPipeline(R"(
    func main() {
      for (var s = 0; s < 6; s = s + 1) {
        var a = mpi_isend((rank + 1) % size, 128, 0);
        var b = mpi_irecv((rank + size - 1) % size, 128, 0);
        mpi_waitall();
        mpi_reduce(0, 16);
      }
    })", 4);
  expectLossless(p, 4);
}

TEST(Ctt, WildcardSourcesPreservedExactly) {
  auto p = runPipeline(R"(
    func main() {
      if (rank != 0) { mpi_send(0, 8, 5); }
      else {
        for (var i = 1; i < size; i = i + 1) { mpi_recv(ANY_SOURCE, 8, 5); }
      }
    })", 5);
  expectLossless(p, 5);
}

TEST(Ctt, ZeroIterationLoopsLossless) {
  auto p = runPipeline(R"(
    func main() {
      for (var i = 0; i < rank; i = i + 1) {
        mpi_send(0, 8, 0);
      }
      if (rank == 0) {
        var total = (size - 1) * size / 2;
        for (var k = 0; k < total; k = k + 1) { mpi_recv(ANY_SOURCE, 8, 0); }
      }
      mpi_barrier();
    })", 4);
  expectLossless(p, 4);
}

TEST(Ctt, RecursionMultisetPreserved) {
  // Recursion is the paper's documented approximation: the event
  // multiset per rank must survive, order may be linearized.
  auto p = runPipeline(R"(
    func down(n) {
      if (n > 0) {
        mpi_bcast(0, 32);
        down(n - 1);
        mpi_reduce(0, 32);
      }
    }
    func main() { down(4); }
  )", 2);
  std::vector<const Ctt*> ctts;
  for (const auto& r : p.recorders) ctts.push_back(&r->ctt());
  MergedCtt merged = mergeAll(ctts);
  for (int r = 0; r < 2; ++r) {
    auto got = contentOnly(decompressRank(merged, r));
    auto want = contentOnly(p.raw.ranks[static_cast<size_t>(r)].events);
    ASSERT_EQ(got.size(), want.size());
    auto key = [](const trace::Event& e) {
      return std::make_tuple(static_cast<int>(e.op), e.peer, e.bytes, e.tag,
                             e.callSiteId);
    };
    std::multiset<std::tuple<int, int32_t, int64_t, int32_t, int32_t>> a, b;
    for (const auto& e : got) a.insert(key(e));
    for (const auto& e : want) b.insert(key(e));
    EXPECT_EQ(a, b);
  }
}

TEST(Ctt, MergedSizeNearConstantInRanks) {
  const char* src = R"(
    func main() {
      for (var k = 0; k < 20; k = k + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 512, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 512, 0); }
        mpi_allreduce(8);
      }
    })";
  size_t size8, size32;
  {
    auto p = runPipeline(src, 8);
    std::vector<const Ctt*> ctts;
    for (const auto& r : p.recorders) ctts.push_back(&r->ctt());
    size8 = mergeAll(ctts).serialize().size();
  }
  {
    auto p = runPipeline(src, 32);
    std::vector<const Ctt*> ctts;
    for (const auto& r : p.recorders) ctts.push_back(&r->ctt());
    size32 = mergeAll(ctts).serialize().size();
  }
  // SPMD: 4x the ranks should cost well under 2x the bytes.
  EXPECT_LT(size32, size8 * 2);
}

TEST(Ctt, SerializationRoundTrip) {
  auto p = runPipeline(R"(
    func main() {
      for (var k = 0; k < 7; k = k + 1) {
        if (rank % 2 == 0) { mpi_send((rank + 1) % size, 64, 0); }
        else { mpi_recv((rank + size - 1) % size, 64, 0); }
        mpi_barrier();
      }
    })", 4);
  std::vector<const Ctt*> ctts;
  for (const auto& r : p.recorders) ctts.push_back(&r->ctt());
  MergedCtt merged = mergeAll(ctts);
  auto bytes = merged.serialize();

  cst::Tree tree;
  MergedCtt back = MergedCtt::deserializeWithTree(bytes, tree);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(contentOnly(decompressRank(back, r)),
              contentOnly(decompressRank(merged, r)));
  }
}

TEST(Ctt, HistogramTimeModeRecords) {
  auto p = runPipeline(R"(
    func main() {
      for (var k = 0; k < 50; k = k + 1) {
        compute(10000);
        mpi_allreduce(8);
      }
    })", 2, TimeMode::Histogram);
  const Ctt& c = p.recorders[0]->ctt();
  bool seen = false;
  for (int g = 0; g < p.cstTree.numNodes(); ++g) {
    for (const auto& rec : c.records(g)) {
      seen = true;
      EXPECT_EQ(rec.durationHist.count(), rec.count);
      EXPECT_GT(rec.duration.mean(), 0.0);
      EXPECT_GT(rec.compute.mean(), 0.0);
    }
  }
  EXPECT_TRUE(seen);
}

TEST(Ctt, TimeStatsPooledAcrossRanksOnMerge) {
  auto p = runPipeline(R"(
    func main() {
      for (var k = 0; k < 10; k = k + 1) { mpi_allreduce(64); }
    })", 4);
  std::vector<const Ctt*> ctts;
  for (const auto& r : p.recorders) ctts.push_back(&r->ctt());
  MergedCtt merged = mergeAll(ctts);
  bool seen = false;
  for (int g = 0; g < p.cstTree.numNodes(); ++g) {
    for (const auto& e : merged.leafEntries(g)) {
      for (const auto& rec : e.records) {
        seen = true;
        // 4 ranks x 10 events pooled.
        EXPECT_EQ(rec.duration.count(), 40u);
      }
    }
  }
  EXPECT_TRUE(seen);
}

TEST(Ctt, RecorderCostMeterAccumulates) {
  auto p = runPipeline(R"(
    func main() {
      for (var k = 0; k < 200; k = k + 1) { mpi_allreduce(8); }
    })", 2);
  EXPECT_GT(p.recorders[0]->cost().totalNs(), 0u);
  EXPECT_GT(p.recorders[0]->memoryBytes(), 0u);
  EXPECT_TRUE(p.recorders[0]->finalized());
}

TEST(Ctt, CompressedItemsSmallForRegularProgram) {
  auto p = runPipeline(R"(
    func main() {
      for (var k = 0; k < 1000; k = k + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 512, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 512, 0); }
      }
    })", 4);
  // 1000 iterations collapse into O(1) compressed items per vertex.
  EXPECT_LT(p.recorders[1]->ctt().compressedItems(), 12u);
}

}  // namespace
}  // namespace cypress::core
