// Tests for the compressed-trace differ: identical traces, iteration
// count drift, message size drift, rank regrouping, and structural
// (different-program) mismatch.
#include "cypress/diff.hpp"

#include <gtest/gtest.h>

#include "driver/pipeline.hpp"

namespace cypress::core {
namespace {

// The merged tree points into the run's CST, so runs are kept alive at
// stable addresses.
MergedCtt traceOf(const std::string& src, int procs,
                  std::vector<std::unique_ptr<driver::RunOutput>>* keepAlive) {
  driver::Options opts;
  opts.procs = procs;
  opts.withScala = false;
  opts.withScala2 = false;
  opts.engine.jitter = 0.0;  // identical runs produce identical payloads
  keepAlive->push_back(
      std::make_unique<driver::RunOutput>(driver::runSource("diff", src, opts)));
  return mergeCypress(*keepAlive->back());
}

const char* kBase = R"(
  func main() {
    for (var i = 0; i < 10; i = i + 1) {
      if (rank < size - 1) { mpi_send(rank + 1, 512, 0); }
      if (rank > 0)        { mpi_recv(rank - 1, 512, 0); }
      mpi_allreduce(8);
    }
  })";

TEST(TraceDiff, IdenticalRunsAreIdentical) {
  std::vector<std::unique_ptr<driver::RunOutput>> keep;
  MergedCtt a = traceOf(kBase, 6, &keep);
  MergedCtt b = traceOf(kBase, 6, &keep);
  TraceDiff d = diffTraces(a, b);
  EXPECT_TRUE(d.identical()) << d.toString();
}

TEST(TraceDiff, IterationCountChangeLocalizedToLoop) {
  std::vector<std::unique_ptr<driver::RunOutput>> keep;
  MergedCtt a = traceOf(kBase, 6, &keep);
  std::string more = kBase;
  more.replace(more.find("i < 10"), 6, "i < 20");
  MergedCtt b = traceOf(more, 6, &keep);
  TraceDiff d = diffTraces(a, b);
  EXPECT_TRUE(d.sameStructure);
  EXPECT_FALSE(d.identical());
  bool loopDiff = false;
  for (const auto& e : d.entries)
    if (e.what.find("loop counts") != std::string::npos) loopDiff = true;
  EXPECT_TRUE(loopDiff) << d.toString();
}

TEST(TraceDiff, MessageSizeChangeLocalizedToLeaf) {
  std::vector<std::unique_ptr<driver::RunOutput>> keep;
  MergedCtt a = traceOf(kBase, 6, &keep);
  std::string bigger = kBase;
  bigger.replace(bigger.find("512"), 3, "999");
  bigger.replace(bigger.find("512"), 3, "999");
  MergedCtt b = traceOf(bigger, 6, &keep);
  TraceDiff d = diffTraces(a, b);
  EXPECT_TRUE(d.sameStructure);
  bool recordDiff = false;
  for (const auto& e : d.entries)
    if (e.what.find("record") != std::string::npos) recordDiff = true;
  EXPECT_TRUE(recordDiff) << d.toString();
}

TEST(TraceDiff, DifferentProcessCountRegroupsRanks) {
  std::vector<std::unique_ptr<driver::RunOutput>> keep;
  MergedCtt a = traceOf(kBase, 6, &keep);
  MergedCtt b = traceOf(kBase, 12, &keep);
  TraceDiff d = diffTraces(a, b);
  EXPECT_TRUE(d.sameStructure);  // same program
  EXPECT_FALSE(d.identical());
}

TEST(TraceDiff, DifferentProgramsStopAtStructure) {
  std::vector<std::unique_ptr<driver::RunOutput>> keep;
  MergedCtt a = traceOf(kBase, 4, &keep);
  MergedCtt b = traceOf("func main() { mpi_barrier(); }", 4, &keep);
  TraceDiff d = diffTraces(a, b);
  EXPECT_FALSE(d.sameStructure);
  EXPECT_NE(d.toString().find("structure"), std::string::npos);
}

}  // namespace
}  // namespace cypress::core
