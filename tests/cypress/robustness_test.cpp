// Robustness tests: the serialized-trace deserializer must reject (by
// throwing, never crashing or silently mis-reading) arbitrarily
// corrupted and truncated inputs, and the parallel merge must be
// bit-identical to the sequential one.
#include <gtest/gtest.h>

#include "cypress/decompress.hpp"
#include "driver/pipeline.hpp"
#include "support/rng.hpp"

namespace cypress::core {
namespace {

std::vector<uint8_t> makeTrace(int procs) {
  driver::Options opts;
  opts.procs = procs;
  opts.withScala = false;
  opts.withScala2 = false;
  driver::RunOutput run = driver::runWorkload("JACOBI", opts);
  return driver::mergeCypress(run).serialize();
}

std::vector<trace::Event> contentOnly(std::vector<trace::Event> ev) {
  for (auto& e : ev) {
    e.computeNs = 0;
    e.durationNs = 0;
  }
  return ev;
}

TEST(Robustness, TruncatedTraceThrows) {
  const auto bytes = makeTrace(4);
  for (size_t cut : {size_t{0}, size_t{1}, size_t{4}, bytes.size() / 4,
                     bytes.size() / 2, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<ssize_t>(cut));
    cst::Tree tree;
    EXPECT_ANY_THROW({
      MergedCtt m = MergedCtt::deserializeWithTree(truncated, tree);
      // Some truncations may deserialize structurally; decompression
      // must then catch the inconsistency.
      for (int r = 0; r < 4; ++r) decompressRank(m, r);
    }) << "cut at " << cut;
  }
}

TEST(Robustness, BitFlippedTraceNeverCrashes) {
  const auto bytes = makeTrace(4);
  Rng rng(2024);
  int rejected = 0, survived = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<uint8_t> mutated = bytes;
    // Flip 1-4 random bits.
    const int flips = static_cast<int>(rng.range(1, 4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.below(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
    }
    try {
      cst::Tree tree;
      MergedCtt m = MergedCtt::deserializeWithTree(mutated, tree);
      for (int r = 0; r < 4; ++r) decompressRank(m, r);
      ++survived;  // flip hit a benign field (e.g. a time statistic)
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  // Most corruption must be detected; all of it must be exception-safe.
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(rejected + survived, 300);
}

TEST(Robustness, ParallelMergeIdenticalToSequential) {
  driver::Options opts;
  opts.procs = 32;
  opts.withScala = false;
  opts.withScala2 = false;
  driver::RunOutput run = driver::runWorkload("MG", opts);
  std::vector<const Ctt*> ctts;
  for (const auto& r : run.cypress) ctts.push_back(&r->ctt());

  MergedCtt seq = mergeAll(ctts, nullptr, 1);
  MergedCtt par = mergeAll(ctts, nullptr, 4);
  EXPECT_EQ(seq.serialize(), par.serialize());
  for (int r = 0; r < opts.procs; ++r) {
    EXPECT_EQ(contentOnly(decompressRank(seq, r)),
              contentOnly(decompressRank(par, r)));
  }
}

TEST(Robustness, OfflineMergeFromPerProcessFiles) {
  // The paper's deployment model: each process writes its compressed
  // trace at finalize; the merge runs post-mortem. Serializing every
  // per-process CTT, reading it back and merging must be identical to
  // merging in memory.
  driver::Options opts;
  opts.procs = 8;
  opts.withScala = false;
  opts.withScala2 = false;
  driver::RunOutput run = driver::runWorkload("JACOBI", opts);

  std::vector<std::vector<uint8_t>> files;
  for (const auto& rec : run.cypress) files.push_back(rec->ctt().serialize());

  std::vector<Ctt> restored;
  restored.reserve(files.size());
  for (const auto& f : files) restored.push_back(Ctt::deserialize(f, *run.cst));
  std::vector<const Ctt*> ptrs;
  for (const auto& c : restored) ptrs.push_back(&c);

  MergedCtt offline = mergeAll(ptrs);
  MergedCtt direct = driver::mergeCypress(run);
  EXPECT_EQ(offline.serialize(), direct.serialize());
}

TEST(Robustness, PerProcessFileRejectsWrongTree) {
  driver::Options opts;
  opts.procs = 2;
  opts.withScala = false;
  opts.withScala2 = false;
  driver::RunOutput run = driver::runWorkload("JACOBI", opts);
  auto bytes = run.cypress[0]->ctt().serialize();

  driver::RunOutput other = driver::runWorkload("EP", opts);
  EXPECT_THROW(Ctt::deserialize(bytes, *other.cst), Error);
}

TEST(Robustness, DecompressUnknownRankFailsLoudly) {
  const auto bytes = makeTrace(4);
  cst::Tree tree;
  MergedCtt m = MergedCtt::deserializeWithTree(bytes, tree);
  // Rank 17 never ran: decompression must not fabricate events.
  EXPECT_THROW(decompressRank(m, 17), Error);
}

}  // namespace
}  // namespace cypress::core
