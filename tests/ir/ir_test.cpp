#include "ir/ir.hpp"

#include <gtest/gtest.h>

#include "ir/expr.hpp"
#include "support/error.hpp"

namespace cypress::ir {
namespace {

/// Fixed-value environment for expression tests.
class TestEnv : public VarSource {
 public:
  TestEnv(std::vector<int64_t> vars, int64_t rank, int64_t size)
      : vars_(std::move(vars)), rank_(rank), size_(size) {}
  int64_t var(int slot) const override { return vars_.at(static_cast<size_t>(slot)); }
  int64_t rank() const override { return rank_; }
  int64_t size() const override { return size_; }

 private:
  std::vector<int64_t> vars_;
  int64_t rank_, size_;
};

TEST(Expr, EvaluatesArithmetic) {
  TestEnv env({10, 3}, 0, 1);
  auto e = Expr::binary(BinOp::Add, Expr::var(0),
                        Expr::binary(BinOp::Mul, Expr::var(1), Expr::constant(4)));
  EXPECT_EQ(evalExpr(*e, env), 22);
}

TEST(Expr, RankAndSize) {
  TestEnv env({}, 7, 64);
  auto e = Expr::binary(BinOp::Mod, Expr::binary(BinOp::Add, Expr::rank(),
                                                 Expr::constant(1)),
                        Expr::size());
  EXPECT_EQ(evalExpr(*e, env), 8);
}

TEST(Expr, ComparisonsYieldZeroOne) {
  TestEnv env({5}, 0, 1);
  EXPECT_EQ(evalExpr(*Expr::binary(BinOp::Lt, Expr::var(0), Expr::constant(6)), env), 1);
  EXPECT_EQ(evalExpr(*Expr::binary(BinOp::Ge, Expr::var(0), Expr::constant(6)), env), 0);
  EXPECT_EQ(evalExpr(*Expr::binary(BinOp::Eq, Expr::var(0), Expr::constant(5)), env), 1);
}

TEST(Expr, ShortCircuitAndOr) {
  TestEnv env({0}, 0, 1);
  // rhs divides by zero; short-circuit must avoid evaluating it.
  auto div0 = Expr::binary(BinOp::Div, Expr::constant(1), Expr::constant(0));
  auto e = Expr::binary(BinOp::And, Expr::constant(0), std::move(div0));
  EXPECT_EQ(evalExpr(*e, env), 0);

  auto div0b = Expr::binary(BinOp::Div, Expr::constant(1), Expr::constant(0));
  auto o = Expr::binary(BinOp::Or, Expr::constant(1), std::move(div0b));
  EXPECT_EQ(evalExpr(*o, env), 1);
}

TEST(Expr, DivisionByZeroThrows) {
  TestEnv env({}, 0, 1);
  auto e = Expr::binary(BinOp::Div, Expr::constant(1), Expr::constant(0));
  EXPECT_THROW(evalExpr(*e, env), Error);
  auto m = Expr::binary(BinOp::Mod, Expr::constant(1), Expr::constant(0));
  EXPECT_THROW(evalExpr(*m, env), Error);
}

TEST(Expr, MinMaxUnary) {
  TestEnv env({}, 0, 1);
  EXPECT_EQ(evalExpr(*Expr::binary(BinOp::Min, Expr::constant(3), Expr::constant(9)), env), 3);
  EXPECT_EQ(evalExpr(*Expr::binary(BinOp::Max, Expr::constant(3), Expr::constant(9)), env), 9);
  EXPECT_EQ(evalExpr(*Expr::unary(UnOp::Neg, Expr::constant(5)), env), -5);
  EXPECT_EQ(evalExpr(*Expr::unary(UnOp::Not, Expr::constant(0)), env), 1);
  EXPECT_EQ(evalExpr(*Expr::unary(UnOp::Not, Expr::constant(3)), env), 0);
}

TEST(Expr, CloneIsDeep) {
  auto e = Expr::binary(BinOp::Add, Expr::var(0), Expr::constant(1));
  auto c = e->clone();
  e->lhs->varSlot = 99;
  EXPECT_EQ(c->lhs->varSlot, 0);
}

Module makeSimpleModule() {
  Module m;
  Function* f = m.addFunction("main");
  f->addVar("i");
  const int b0 = f->addBlock("entry");
  f->blocks[static_cast<size_t>(b0)].instrs.push_back(
      Instr::assign(0, Expr::constant(0)));
  f->blocks[static_cast<size_t>(b0)].instrs.push_back(
      Instr::mpi(MpiOp::Barrier, {}));
  f->blocks[static_cast<size_t>(b0)].term = Terminator::ret();
  return m;
}

TEST(Module, VerifyAcceptsWellFormed) {
  Module m = makeSimpleModule();
  EXPECT_NO_THROW(verify(m));
}

TEST(Module, VerifyRejectsMissingEntry) {
  Module m;
  m.addFunction("helper")->addBlock("entry");
  EXPECT_THROW(verify(m), Error);
}

TEST(Module, VerifyRejectsBadBranchTarget) {
  Module m = makeSimpleModule();
  m.function("main")->blocks[0].term = Terminator::br(42);
  EXPECT_THROW(verify(m), Error);
}

TEST(Module, VerifyRejectsBadVarSlot) {
  Module m = makeSimpleModule();
  m.function("main")->blocks[0].instrs[0].destVar = 9;
  EXPECT_THROW(verify(m), Error);
}

TEST(Module, VerifyRejectsUnknownCallee) {
  Module m = makeSimpleModule();
  m.function("main")->blocks[0].instrs.push_back(Instr::call("nope"));
  EXPECT_THROW(verify(m), Error);
}

TEST(Module, NumberCallSitesIsStableAndUnique) {
  Module m;
  Function* f = m.addFunction("main");
  int b = f->addBlock("entry");
  auto& instrs = f->blocks[static_cast<size_t>(b)].instrs;
  instrs.push_back(Instr::mpi(MpiOp::Barrier, {}));
  instrs.push_back(Instr::mpi(MpiOp::Allreduce, exprList(Expr::constant(8))));
  Function* g = m.addFunction("helper");
  int gb = g->addBlock("entry");
  g->blocks[static_cast<size_t>(gb)].instrs.push_back(Instr::mpi(MpiOp::Barrier, {}));
  m.numberCallSites();
  EXPECT_EQ(instrs[0].callSiteId, 0);
  EXPECT_EQ(instrs[1].callSiteId, 1);
  EXPECT_EQ(g->blocks[0].instrs[0].callSiteId, 2);
}

TEST(Module, PrintContainsStructure) {
  Module m = makeSimpleModule();
  std::string s = print(m);
  EXPECT_NE(s.find("func main"), std::string::npos);
  EXPECT_NE(s.find("MPI_Barrier"), std::string::npos);
  EXPECT_NE(s.find("ret"), std::string::npos);
}

TEST(MpiOpTraits, Classification) {
  EXPECT_TRUE(isCollective(MpiOp::Bcast));
  EXPECT_TRUE(isCollective(MpiOp::Barrier));
  EXPECT_FALSE(isCollective(MpiOp::Send));
  EXPECT_TRUE(isNonBlockingStart(MpiOp::Isend));
  EXPECT_TRUE(isNonBlockingStart(MpiOp::Irecv));
  EXPECT_FALSE(isNonBlockingStart(MpiOp::Wait));
  EXPECT_STREQ(mpiOpName(MpiOp::Alltoall), "MPI_Alltoall");
}

}  // namespace
}  // namespace cypress::ir
