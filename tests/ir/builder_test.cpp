// Tests for the embedded ProgramBuilder frontend: built IR must verify,
// run, and travel through the whole CYPRESS pipeline exactly like
// MiniC-compiled programs.
#include "ir/builder.hpp"

#include <gtest/gtest.h>

#include "cst/builder.hpp"
#include "cypress/ctt.hpp"
#include "cypress/decompress.hpp"
#include "cypress/merge.hpp"
#include "simmpi/engine.hpp"
#include "support/error.hpp"
#include "trace/observer.hpp"
#include "vm/runner.hpp"

namespace cypress::ir {
namespace {

using namespace dsl;

trace::RawTrace runModule(Module& m, int ranks) {
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  simmpi::Engine engine(cfg);
  trace::RawTrace out;
  out.ranks.resize(static_cast<size_t>(ranks));
  std::vector<std::unique_ptr<trace::RawRecorder>> recs;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < ranks; ++r) {
    out.ranks[static_cast<size_t>(r)].rank = r;
    recs.push_back(std::make_unique<trace::RawRecorder>(
        out.ranks[static_cast<size_t>(r)]));
    obs.push_back(recs.back().get());
  }
  vm::run(m, engine, obs);
  return out;
}

TEST(ProgramBuilder, StraightLine) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.barrier();
  f.allreduce(64);
  auto m = pb.finish();
  auto t = runModule(*m, 3);
  ASSERT_EQ(t.ranks[0].events.size(), 2u);
  EXPECT_EQ(t.ranks[0].events[0].op, MpiOp::Barrier);
  EXPECT_EQ(t.ranks[0].events[1].bytes, 64);
}

TEST(ProgramBuilder, ForLoopWithRingExchange) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.forLoop("i", 0, [](E i) { return std::move(i) < 5; },
            [](FunctionBuilder& b, Var) {
              b.send((rankv() + 1) % sizev(), 256, 0);
              b.recv((rankv() + sizev() - 1) % sizev(), 256, 0);
            });
  auto m = pb.finish();
  auto t = runModule(*m, 4);
  EXPECT_EQ(t.ranks[2].events.size(), 10u);
  EXPECT_EQ(t.ranks[2].events[0].peer, 3);
}

TEST(ProgramBuilder, IfThenElseOnRankParity) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.ifThenElse(rankv() % 2 == 0,
               [](FunctionBuilder& b) { b.send(rankv() + 1, 32, 9); },
               [](FunctionBuilder& b) { b.recv(rankv() - 1, 32, 9); });
  auto m = pb.finish();
  auto t = runModule(*m, 4);
  EXPECT_EQ(t.ranks[0].events[0].op, MpiOp::Send);
  EXPECT_EQ(t.ranks[1].events[0].op, MpiOp::Recv);
}

TEST(ProgramBuilder, WhileLoopAndVariables) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  auto n = f.declare("n", 3);
  f.whileLoop([&] { return n.ref() > 0; },
              [&](FunctionBuilder& b) {
                b.allreduce(8);
                b.assign(n, n.ref() - 1);
              });
  auto m = pb.finish();
  auto t = runModule(*m, 2);
  EXPECT_EQ(t.ranks[0].events.size(), 3u);
}

TEST(ProgramBuilder, NonBlockingAndCommSplit) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  auto c = f.commSplit("c", rankv() / 2, rankv());
  auto a = f.isend("a", (rankv() + 1) % sizev(), 64, 0);
  auto b2 = f.irecv("b", (rankv() + sizev() - 1) % sizev(), 64, 0);
  f.wait(a);
  f.wait(b2);
  f.allreduceOn(c, 16);
  f.barrier();
  auto m = pb.finish();
  auto t = runModule(*m, 4);
  ASSERT_EQ(t.ranks[0].events.size(), 7u);
  EXPECT_EQ(t.ranks[0].events[0].op, MpiOp::CommSplit);
  EXPECT_EQ(t.ranks[0].events[5].op, MpiOp::Allreduce);
  EXPECT_GT(t.ranks[0].events[5].comm, 0);
}

TEST(ProgramBuilder, FunctionCalls) {
  ProgramBuilder pb;
  auto& halo = pb.function("halo", {"bytes"});
  halo.ifThen(rankv() > 0,
              [&](FunctionBuilder& b) { b.send(rankv() - 1, halo.param(0).ref(), 0); });
  halo.ifThen(rankv() < sizev() - 1,
              [](FunctionBuilder& b) { b.recv(rankv() + 1, E(Expr::var(0)), 0); });
  auto& f = pb.function("main");
  f.callFunction("halo", E(128));
  f.callFunction("halo", E(4096));
  auto m = pb.finish();
  auto t = runModule(*m, 3);
  EXPECT_EQ(t.ranks[1].events.size(), 4u);  // send+recv per call
}

TEST(ProgramBuilder, EarlyReturn) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.ifThen(rankv() == 0, [](FunctionBuilder& b) {
    b.barrier();
    b.ret();
  });
  f.barrier();
  auto m = pb.finish();
  // Everyone reaches one barrier; rank 0 returns before the second...
  // which would deadlock — rank 0's barrier IS the same (first) global
  // barrier call for it. Others call the second. Collectives mismatch by
  // call site is fine (site ids differ but op matches).
  auto t = runModule(*m, 3);
  EXPECT_EQ(t.ranks[0].events.size(), 1u);
  EXPECT_EQ(t.ranks[1].events.size(), 1u);
}

TEST(ProgramBuilder, FullCypressPipeline) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.forLoop("step", 0, [](E s) { return std::move(s) < 12; },
            [](FunctionBuilder& b, Var step) {
              b.ifThen(v(step) % 3 == 0, [](FunctionBuilder& bb) {
                bb.bcast(0, 2048);
              });
              b.send((rankv() + 1) % sizev(), 512, 1);
              b.recv((rankv() + sizev() - 1) % sizev(), 512, 1);
              b.compute(50000);
            });
  auto m = pb.finish();

  cst::StaticResult sr = cst::analyzeAndInstrument(*m);
  simmpi::Engine::Config cfg;
  cfg.numRanks = 5;
  simmpi::Engine engine(cfg);
  trace::RawTrace raw;
  raw.ranks.resize(5);
  std::vector<std::unique_ptr<trace::TeeObserver>> tees;
  std::vector<std::unique_ptr<trace::RawRecorder>> raws;
  std::vector<std::unique_ptr<core::CttRecorder>> cyps;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < 5; ++r) {
    raw.ranks[static_cast<size_t>(r)].rank = r;
    raws.push_back(std::make_unique<trace::RawRecorder>(
        raw.ranks[static_cast<size_t>(r)]));
    cyps.push_back(std::make_unique<core::CttRecorder>(sr.cst, r));
    auto tee = std::make_unique<trace::TeeObserver>();
    tee->add(raws.back().get());
    tee->add(cyps.back().get());
    tees.push_back(std::move(tee));
    obs.push_back(tees.back().get());
  }
  vm::run(*m, engine, obs);

  std::vector<const core::Ctt*> ctts;
  for (const auto& c : cyps) ctts.push_back(&c->ctt());
  core::MergedCtt merged = core::mergeAll(ctts);
  for (int r = 0; r < 5; ++r) {
    auto got = core::decompressRank(merged, r);
    const auto& want = raw.ranks[static_cast<size_t>(r)].events;
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) EXPECT_TRUE(got[i].sameComm(want[i]));
  }
}

TEST(ProgramBuilder, FinishVerifies) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.callFunction("missing");
  EXPECT_THROW(pb.finish(), Error);
}

TEST(ProgramBuilder, DslOperatorsEvaluate) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  auto x = f.declare("x", (E(7) * 3 - 1) / 2 % 4);  // ((21-1)/2)%4 = 2
  f.ifThen(x.ref() == 2, [](FunctionBuilder& b) { b.barrier(); });
  auto m = pb.finish();
  auto t = runModule(*m, 2);
  EXPECT_EQ(t.ranks[0].events.size(), 1u);
}

}  // namespace
}  // namespace cypress::ir
