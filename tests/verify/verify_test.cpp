// Tests for the trace-validation subsystem: roundtrip byte stability on
// every workload, deterministic corruption fuzzing of every deserializer
// (the contract: arbitrary bytes either decode or raise cypress::Error —
// never another exception, never a huge allocation), truncation
// robustness, merge-order invariance, and the LZ77 matcher regression.
#include <gtest/gtest.h>

#include "cypress/merge.hpp"
#include "driver/pipeline.hpp"
#include "flate/flate.hpp"
#include "flate/lz77.hpp"
#include "scalatrace/inter.hpp"
#include "scalatrace/recorder.hpp"
#include "support/error.hpp"
#include "trace/journal.hpp"
#include "verify/fuzz.hpp"
#include "verify/roundtrip.hpp"
#include "workloads/workloads.hpp"

namespace cypress {
namespace {

driver::RunOutput runAllTools(const std::string& name, int procs) {
  driver::Options opts;
  opts.procs = procs;
  return driver::runWorkload(name, opts);
}

std::vector<uint8_t> journalBytes(const std::string& name, int procs) {
  driver::Options opts;
  opts.procs = procs;
  opts.withScala = false;
  opts.withScala2 = false;
  opts.withJournal = true;
  opts.journalFlushEvery = 8;
  return driver::runWorkload(name, opts).journal->bytes();
}

// ---------------------------------------------------------------------------
// Roundtrip verification across the full workload matrix.

class RoundtripWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundtripWorkload, ByteStableAtEightAndSixteenRanks) {
  const std::string& name = GetParam();
  const workloads::Workload& w = workloads::get(name);
  bool ranAny = false;
  for (int procs : {8, 16}) {
    if (!w.supportsProcs(procs)) continue;
    ranAny = true;
    const auto run = runAllTools(name, procs);
    const verify::Report rep = driver::verifyRun(run);
    EXPECT_TRUE(rep.ok()) << name << " at " << procs << " ranks:\n"
                          << rep.toString();
  }
  if (!ranAny) {
    // DT runs only at its fixed process count; still cover it.
    ASSERT_TRUE(w.supportsProcs(12)) << name << " supports neither 8, 16 nor 12";
    const auto run = runAllTools(name, 12);
    const verify::Report rep = driver::verifyRun(run);
    EXPECT_TRUE(rep.ok()) << name << " at 12 ranks:\n" << rep.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, RoundtripWorkload,
                         ::testing::ValuesIn(workloads::allNames()));

TEST(Roundtrip, DriverOptionThrowsOnNothing) {
  // The Options::verifyRoundtrip flag runs the verifier inline; a clean
  // workload must pass without throwing.
  driver::Options opts;
  opts.procs = 8;
  opts.verifyRoundtrip = true;
  EXPECT_NO_THROW(driver::runWorkload("JACOBI", opts));
}

TEST(Roundtrip, VerifyTraceFileDispatchesOnMagic) {
  const auto run = runAllTools("JACOBI", 8);
  const auto merged = driver::mergeCypress(run);

  EXPECT_TRUE(verify::verifyTraceFile(merged.serialize()).ok());
  EXPECT_TRUE(verify::verifyTraceFile(run.raw.serialize()).ok());
  EXPECT_TRUE(verify::verifyTraceFile(run.scala[0]->serialize()).ok());
  std::vector<const std::vector<scalatrace::Element>*> seqs;
  for (const auto& r : run.scala) seqs.push_back(&r->sequence());
  const auto mergedScala =
      scalatrace::mergeSequences(seqs, scalatrace::Flavor::V1);
  EXPECT_TRUE(verify::verifyTraceFile(mergedScala.serialize()).ok());
  EXPECT_TRUE(
      verify::verifyTraceFile(flate::compress(run.raw.serialize())).ok());
  EXPECT_TRUE(verify::verifyTraceFile(journalBytes("JACOBI", 8)).ok());

  const std::vector<uint8_t> junk = {9, 9, 9, 9, 9, 9};
  EXPECT_THROW(verify::verifyTraceFile(junk), Error);
}

// ---------------------------------------------------------------------------
// Corruption fuzzing: every decoder, >= 200 seeded mutations each.

constexpr int kMutations = 250;

void expectFuzzClean(std::span<const uint8_t> good,
                     const verify::Decoder& decode, uint64_t seed) {
  verify::FuzzOptions fo;
  fo.seed = seed;
  fo.mutations = kMutations;
  const verify::FuzzReport rep = verify::corruptionFuzz(good, decode, fo);
  EXPECT_EQ(rep.mutants, kMutations);
  EXPECT_TRUE(rep.ok()) << rep.toString();
  // A healthy corpus mostly breaks under mutation: the decoders must
  // actively reject, not silently accept, the bulk of the mutants.
  EXPECT_GT(rep.rejected, rep.mutants / 2) << rep.toString();
}

TEST(Fuzz, CypressMergedTrace) {
  const auto run = runAllTools("CG", 8);
  const auto bytes = driver::mergeCypress(run).serialize();
  expectFuzzClean(bytes,
                  [](std::span<const uint8_t> d) {
                    cst::Tree tree;
                    core::MergedCtt::deserializeWithTree(d, tree);
                  },
                  /*seed=*/1);
}

TEST(Fuzz, RawTrace) {
  const auto run = runAllTools("CG", 8);
  const auto bytes = run.raw.serialize();
  expectFuzzClean(bytes,
                  [](std::span<const uint8_t> d) { trace::RawTrace::deserialize(d); },
                  /*seed=*/2);
}

TEST(Fuzz, ScalaTracePerRank) {
  const auto run = runAllTools("CG", 8);
  const auto bytes = run.scala[0]->serialize();
  expectFuzzClean(bytes,
                  [](std::span<const uint8_t> d) {
                    scalatrace::Recorder::deserializeSequence(d);
                  },
                  /*seed=*/3);
}

TEST(Fuzz, ScalaTraceMergedBothFlavors) {
  const auto run = runAllTools("CG", 8);
  for (auto flavor : {scalatrace::Flavor::V1, scalatrace::Flavor::V2}) {
    std::vector<const std::vector<scalatrace::Element>*> seqs;
    const auto& recs =
        flavor == scalatrace::Flavor::V1 ? run.scala : run.scala2;
    for (const auto& r : recs) seqs.push_back(&r->sequence());
    const auto bytes = scalatrace::mergeSequences(seqs, flavor).serialize();
    expectFuzzClean(bytes,
                    [](std::span<const uint8_t> d) {
                      scalatrace::MergedSeq::deserialize(d);
                    },
                    /*seed=*/4);
  }
}

TEST(Fuzz, FlateContainer) {
  const auto run = runAllTools("CG", 8);
  const auto bytes = flate::compress(run.raw.serialize());
  expectFuzzClean(bytes,
                  [](std::span<const uint8_t> d) { flate::decompress(d); },
                  /*seed=*/5);
}

TEST(Fuzz, JournalStrictParser) {
  // The CYJ1 strict parser is a deserializer like any other: arbitrary
  // mutations must decode or raise cypress::Error, nothing else.
  const auto bytes = journalBytes("CG", 8);
  expectFuzzClean(bytes,
                  [](std::span<const uint8_t> d) { trace::parseJournal(d); },
                  /*seed=*/7);
}

TEST(Fuzz, JournalRecoveryPath) {
  // The lenient salvage reader must uphold the same exception contract
  // while accepting (by design) most torn/truncated mutants.
  const auto bytes = journalBytes("CG", 8);
  verify::FuzzOptions fo;
  fo.seed = 8;
  fo.mutations = kMutations;
  const verify::FuzzReport rep = verify::corruptionFuzz(
      bytes, [](std::span<const uint8_t> d) { trace::recoverJournal(d); }, fo);
  EXPECT_TRUE(rep.ok()) << rep.toString();
  // Salvage accepts damaged tails instead of rejecting them.
  EXPECT_GT(rep.accepted, rep.mutants / 2) << rep.toString();
}

TEST(Truncation, JournalSweepStrictRejectsEveryPrefixLenientAcceptsBody) {
  const auto bytes = journalBytes("JACOBI", 8);
  // Strict: a journal cut anywhere is unsealed or torn → always Error.
  const auto strict = verify::truncationSweep(
      bytes, [](std::span<const uint8_t> d) { trace::parseJournal(d); });
  EXPECT_TRUE(strict.ok()) << strict.toString();
  EXPECT_EQ(strict.rejected, strict.mutants) << strict.toString();
  // Lenient: every prefix past the tiny header must salvage cleanly.
  const auto lenient = verify::truncationSweep(
      bytes, [](std::span<const uint8_t> d) { trace::recoverJournal(d); });
  EXPECT_TRUE(lenient.ok()) << lenient.toString();
  EXPECT_GT(lenient.accepted, lenient.mutants - 16) << lenient.toString();
}

TEST(Fuzz, WholeFileDecoderHandlesArbitraryPrefixes) {
  // decodeTraceFile adds magic dispatch on top of the per-format
  // decoders; mutated magics must land in the Error path too.
  const auto run = runAllTools("JACOBI", 8);
  const auto bytes = driver::mergeCypress(run).serialize();
  expectFuzzClean(bytes, verify::decodeTraceFile, /*seed=*/6);
}

// ---------------------------------------------------------------------------
// Hand-crafted adversarial inputs (the bugs this change fixes).

TEST(Hardening, NeedRejectsOverflowingLength) {
  const std::vector<uint8_t> tiny = {1, 2, 3};
  ByteReader r(tiny);
  // Old code computed pos_ + n and wrapped; this must throw cleanly.
  EXPECT_THROW(r.raw(SIZE_MAX - 1), Error);
  EXPECT_THROW(r.raw(SIZE_MAX), Error);
}

TEST(Hardening, CheckedCountRejectsImplausibleCounts) {
  const std::vector<uint8_t> tiny = {1, 2, 3, 4};
  ByteReader r(tiny);
  EXPECT_EQ(r.checkedCount(2, 2), 2u);
  EXPECT_THROW(r.checkedCount(3, 2), Error);
  EXPECT_THROW(r.checkedCount(UINT64_MAX, 1), Error);
}

TEST(Hardening, RawTraceHugeCountPrefixDoesNotAllocate) {
  // "CYTR" + a varint claiming ~10^18 ranks. Pre-fix this resized a
  // vector of RankTrace by that count before reading a single payload
  // byte; now it must throw before allocating.
  ByteWriter w;
  w.str("CYTR");
  w.uv(1'000'000'000'000'000'000ull);
  EXPECT_THROW(trace::RawTrace::deserialize(w.take()), Error);
}

TEST(Hardening, CypressHugeLeafCountDoesNotAllocate) {
  const auto run = runAllTools("JACOBI", 8);
  auto bytes = driver::mergeCypress(run).serialize();
  // Re-parse the header to find the first post-CST count and bump it.
  ByteReader r(bytes);
  ASSERT_EQ(r.str(), "CYPC");
  const uint64_t cstLen = r.uv();
  r.raw(cstLen);
  const size_t nodeCountPos = r.pos();
  ByteWriter w;
  w.raw(std::span<const uint8_t>(bytes.data(), nodeCountPos));
  w.uv(1'000'000'000'000ull);  // implausible node count
  EXPECT_THROW(
      {
        cst::Tree tree;
        core::MergedCtt::deserializeWithTree(w.take(), tree);
      },
      Error);
}

TEST(Hardening, ScalaTraceRsdNestingBomb) {
  ByteWriter w;
  w.str("STR1");
  w.uv(1);
  for (int i = 0; i < 400; ++i) {
    w.u8(1);  // isRsd
    w.uv(0);  // closedVisits: no sections
    w.uv(1);  // one member
  }
  EXPECT_THROW(scalatrace::Recorder::deserializeSequence(w.take()), Error);
}

TEST(Hardening, CstParenBombAndIntegerOverflow) {
  std::string bomb = "CST1 ";
  for (int i = 0; i < 5000; ++i) bomb += "(0 0 0 -1 8 0 0 ||";
  EXPECT_THROW(cst::Tree::fromText(bomb), Error);

  EXPECT_THROW(cst::Tree::fromText("CST1 (99999999999999999999 0 0 -1 8 0 0 ||)"),
               Error);
  EXPECT_THROW(cst::Tree::fromText("CST1 (7 0 0 -1 8 0 0 ||)"), Error);  // kind
  EXPECT_THROW(cst::Tree::fromText("CST1 (0 0 0 -1 99 0 0 ||)"), Error);  // op
}

TEST(Hardening, FlateStoredBlockSizeMismatch) {
  ByteWriter w;
  w.raw(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>("CYF1"), 4));
  w.uv(1u << 30);   // claimed original size: 1 GiB
  w.u32fixed(0);    // bogus CRC
  w.u8(0);          // stored block
  w.u8('x');        // ... of one actual byte
  EXPECT_THROW(flate::decompress(w.take()), Error);
}

// ---------------------------------------------------------------------------
// Truncation: every strict prefix of a CYPRESS trace must be rejected.

TEST(Truncation, EveryPrefixOfMergedTraceThrows) {
  const auto run = runAllTools("JACOBI", 8);
  const auto bytes = driver::mergeCypress(run).serialize();
  ASSERT_GT(bytes.size(), 0u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        {
          cst::Tree tree;
          core::MergedCtt::deserializeWithTree(
              std::span<const uint8_t>(bytes.data(), len), tree);
        },
        Error)
        << "prefix of " << len << "/" << bytes.size() << " bytes was accepted";
  }
}

// ---------------------------------------------------------------------------
// Merge determinism: the merged tree must not depend on thread count.

TEST(MergeDeterminism, SingleAndMultiThreadedBytesIdentical) {
  for (const char* name : {"CG", "LU"}) {
    const auto run = runAllTools(name, 8);
    std::vector<const core::Ctt*> ctts;
    for (const auto& r : run.cypress) ctts.push_back(&r->ctt());
    const auto one = core::mergeAll(ctts, nullptr, /*threads=*/1).serialize();
    const auto four = core::mergeAll(ctts, nullptr, /*threads=*/4).serialize();
    EXPECT_EQ(one, four) << name
                         << ": thread count changed the merged trace bytes";
  }
}

// ---------------------------------------------------------------------------
// LZ77 matcher regression (self-hit fix).

TEST(Lz77, FindsMatchesWithChainDepthOne) {
  // With the old self-hit bug, a chain budget of 1 was consumed by the
  // position's own hash-chain entry and repetitive data produced zero
  // matches. A period-3 buffer must compress with back-references even
  // at maxChain=1.
  std::vector<uint8_t> data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<uint8_t>("abc"[i % 3]));
  const auto tokens = flate::tokenize(data, /*maxChain=*/1);
  bool hasMatch = false;
  for (const auto& t : tokens) hasMatch = hasMatch || t.length > 0;
  EXPECT_TRUE(hasMatch);
  EXPECT_LT(tokens.size(), data.size() / 4);
  EXPECT_EQ(flate::detokenize(tokens), data);
}

TEST(Lz77, CompressionRatioOnFig15Corpus) {
  // The fig15 corpus = serialized raw workload traces (what the Gzip
  // baseline compresses). Guard against matcher regressions with a
  // generous floor well below what the fixed matcher achieves.
  for (const char* name : {"CG", "JACOBI", "MG"}) {
    const auto run = runAllTools(name, 8);
    const auto raw = run.raw.serialize();
    const size_t packed = flate::compressedSize(raw);
    EXPECT_LT(packed * 2, raw.size())
        << name << ": raw " << raw.size() << "B compressed to only " << packed
        << "B";
  }
}

}  // namespace
}  // namespace cypress
