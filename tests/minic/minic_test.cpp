#include "minic/compile.hpp"

#include <gtest/gtest.h>

#include "minic/lexer.hpp"
#include "minic/parser.hpp"
#include "support/error.hpp"

namespace cypress::minic {
namespace {

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  auto toks = lex("func f() { var x = 1 <= 2 && 3 != 4; }");
  std::vector<Tok> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), Tok::KwFunc);
  EXPECT_EQ(kinds.back(), Tok::End);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), Tok::Le), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), Tok::AndAnd), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), Tok::Ne), kinds.end());
}

TEST(Lexer, TracksLineNumbers) {
  auto toks = lex("func f()\n{\n  var x = 1;\n}");
  // 'var' is on line 3.
  for (const auto& t : toks) {
    if (t.kind == Tok::KwVar) {
      EXPECT_EQ(t.line, 3);
    }
  }
}

TEST(Lexer, SkipsComments) {
  auto toks = lex("// line comment\nfunc /* inline */ f() {}");
  EXPECT_EQ(toks[0].kind, Tok::KwFunc);
}

TEST(Lexer, RejectsStrayAmpersand) {
  EXPECT_THROW(lex("func f() { var x = 1 & 2; }"), Error);
}

TEST(Lexer, RejectsUnterminatedComment) {
  EXPECT_THROW(lex("/* never closed"), Error);
}

TEST(Parser, ParsesElseIfChains) {
  auto ast = parse(R"(
    func main() {
      if (rank == 0) { mpi_barrier(); }
      else if (rank == 1) { mpi_barrier(); }
      else { mpi_barrier(); }
    })");
  ASSERT_EQ(ast.functions.size(), 1u);
  const AstStmt& ifs = *ast.functions[0].body[0];
  EXPECT_EQ(ifs.kind, AstStmtKind::If);
  ASSERT_EQ(ifs.elseBody.size(), 1u);
  EXPECT_EQ(ifs.elseBody[0]->kind, AstStmtKind::If);
}

TEST(Parser, OperatorPrecedence) {
  auto ast = parse("func main() { var x = 1 + 2 * 3; }");
  const AstExpr& e = *ast.functions[0].body[0]->expr;
  ASSERT_EQ(e.kind, AstExprKind::Binary);
  EXPECT_EQ(e.bop, ir::BinOp::Add);
  EXPECT_EQ(e.rhs->bop, ir::BinOp::Mul);
}

TEST(Parser, SyntaxErrorsCarryPosition) {
  try {
    parse("func main() { var = 3; }");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("minic:1:"), std::string::npos);
  }
}

TEST(Compile, SimpleProgramVerifies) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 10; i = i + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 1024, 0); }
        if (rank > 0) { mpi_recv(rank - 1, 1024, 0); }
      }
    })");
  EXPECT_NE(m->function("main"), nullptr);
}

TEST(Compile, JacobiFromThePaperCompiles) {
  // The paper's Figure 3 Jacobi skeleton.
  auto m = compileProgram(R"(
    func main() {
      var steps = 100;
      var n = 1024;
      for (var k = 0; k < steps; k = k + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, n * 8, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, n * 8, 0); }
        if (rank > 0)        { mpi_send(rank - 1, n * 8, 0); }
        if (rank < size - 1) { mpi_recv(rank + 1, n * 8, 0); }
      }
    })");
  int mpiCalls = 0;
  for (const auto& b : m->function("main")->blocks)
    for (const auto& i : b.instrs)
      if (i.kind == ir::InstrKind::MpiCall) ++mpiCalls;
  EXPECT_EQ(mpiCalls, 4);
}

TEST(Compile, NonBlockingRequestsLowered) {
  auto m = compileProgram(R"(
    func main() {
      var r1 = mpi_isend(rank + 1, 64, 1);
      var r2 = mpi_irecv(ANY_SOURCE, 64, 1);
      mpi_wait(r1);
      mpi_wait(r2);
      mpi_waitall();
    })");
  const auto& instrs = m->function("main")->blocks[0].instrs;
  ASSERT_GE(instrs.size(), 5u);
  EXPECT_EQ(instrs[0].mpiOp, ir::MpiOp::Isend);
  EXPECT_EQ(instrs[0].reqVar, 0);
  EXPECT_EQ(instrs[1].mpiOp, ir::MpiOp::Irecv);
  // ANY_SOURCE lowers to the sentinel constant.
  EXPECT_EQ(instrs[1].args[0]->value, ir::kAnySource);
  EXPECT_EQ(instrs[2].mpiOp, ir::MpiOp::Wait);
  EXPECT_EQ(instrs[2].reqVar, 0);
}

TEST(Compile, UndeclaredVariableRejected) {
  EXPECT_THROW(compileProgram("func main() { x = 3; }"), Error);
}

TEST(Compile, RedefinitionInSameScopeRejected) {
  EXPECT_THROW(compileProgram("func main() { var x = 1; var x = 2; }"), Error);
}

TEST(Compile, ShadowingInNestedScopeAllowed) {
  EXPECT_NO_THROW(compileProgram(R"(
    func main() {
      var x = 1;
      if (x > 0) { var y = 2; y = y + x; }
      { var y = 5; y = y + 1; }
    })"));
}

TEST(Compile, ScopedVariableNotVisibleOutside) {
  EXPECT_THROW(compileProgram(R"(
    func main() {
      if (rank == 0) { var y = 2; }
      y = 3;
    })"),
               Error);
}

TEST(Compile, UnknownFunctionRejected) {
  EXPECT_THROW(compileProgram("func main() { nothere(); }"), Error);
}

TEST(Compile, WrongIntrinsicArityRejected) {
  EXPECT_THROW(compileProgram("func main() { mpi_send(1, 2); }"), Error);
  EXPECT_THROW(compileProgram("func main() { mpi_barrier(1); }"), Error);
}

TEST(Compile, IsendOutsideAssignmentRejected) {
  EXPECT_THROW(compileProgram("func main() { mpi_isend(1, 2, 3); }"), Error);
  EXPECT_THROW(compileProgram("func main() { var x = 1 + mpi_isend(1, 2, 3); }"),
               Error);
}

TEST(Compile, MainRequired) {
  EXPECT_THROW(compileProgram("func helper() { mpi_barrier(); }"), Error);
}

TEST(Compile, FunctionArgumentsCheckedAndLowered) {
  auto m = compileProgram(R"(
    func halo(bytes) {
      if (rank > 0) { mpi_send(rank - 1, bytes, 0); }
    }
    func main() { halo(4096); }
  )");
  const ir::Function* halo = m->function("halo");
  ASSERT_NE(halo, nullptr);
  EXPECT_EQ(halo->numParams, 1);
  EXPECT_THROW(compileProgram(R"(
    func halo(bytes) { mpi_barrier(); }
    func main() { halo(); }
  )"),
               Error);
}

TEST(Compile, ReturnStopsLowering) {
  auto m = compileProgram(R"(
    func main() {
      if (rank == 0) { return; }
      mpi_barrier();
      return;
      mpi_barrier();
    })");
  // The barrier after the unconditional return is unreachable but the
  // module still verifies.
  EXPECT_NO_THROW(ir::verify(*m));
}

TEST(Compile, StatementsAfterReturnDoNotClobberTerminators) {
  auto m = compileProgram(R"(
    func main() {
      return;
      if (rank == 0) { mpi_barrier(); }
    })");
  // Entry block must still end in ret.
  EXPECT_EQ(m->function("main")->blocks[0].term.kind, ir::TermKind::Ret);
}

TEST(Compile, CallSitesNumbered) {
  auto m = compileProgram(R"(
    func main() {
      mpi_barrier();
      mpi_allreduce(8);
    })");
  const auto& instrs = m->function("main")->blocks[0].instrs;
  EXPECT_EQ(instrs[0].callSiteId, 0);
  EXPECT_EQ(instrs[1].callSiteId, 1);
}

TEST(Compile, ForLoopLowersToNaturalLoopShape) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 5; i = i + 1) { mpi_barrier(); }
    })");
  const ir::Function& f = *m->function("main");
  // entry, for.cond, for.body, for.exit
  ASSERT_GE(f.blocks.size(), 4u);
  // cond block has two successors.
  bool foundCond = false;
  for (const auto& b : f.blocks) {
    if (b.term.kind == ir::TermKind::CondBr) {
      foundCond = true;
      EXPECT_EQ(b.successors().size(), 2u);
    }
  }
  EXPECT_TRUE(foundCond);
}

}  // namespace
}  // namespace cypress::minic
