// JobServer integration tests: concurrent admission → dispatch →
// watchdog → retry → terminal state, against the real tracing pipeline.
//
// The acceptance scenario from the service design: eight concurrent
// jobs, half of them faulted (kill / drop / drop-transient), must all
// reach a terminal state within their deadlines with the right
// outcome, and a surviving job's artifact must be byte-identical to
// what the single-job CLI path produces.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "driver/pipeline.hpp"
#include "query/query.hpp"
#include "service/server.hpp"
#include "support/thread_pool.hpp"
#include "verify/roundtrip.hpp"

namespace cypress::service {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  return dir;
}

std::vector<uint8_t> fileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

JobSpec runSpec(uint32_t scale = 1) {
  JobSpec s;
  s.kind = JobKind::Run;
  s.target = "JACOBI";
  s.procs = 4;
  s.scale = scale;
  return s;
}

TEST(Server, EightConcurrentJobsHalfFaultedAllTerminal) {
  ThreadPool::configureShared(4);
  ServerConfig cfg;
  cfg.spoolDir = freshDir("cyp_service_eight");
  cfg.queueCapacity = 16;
  cfg.maxConcurrent = 4;
  cfg.perClientCap = 16;
  cfg.defaultDeadlineMs = 120'000;
  cfg.backoffBaseMs = 5;
  cfg.backoffCapMs = 50;
  JobServer server(cfg);
  server.start();

  // Four clean jobs...
  std::vector<uint64_t> clean;
  for (uint32_t i = 0; i < 4; ++i) {
    const auto r = server.submit(runSpec(1 + i % 2), /*clientId=*/1);
    ASSERT_TRUE(r.accepted) << r.message;
    clean.push_back(r.jobId);
  }
  // ...and four faulted ones: two rank kills (graceful degradation →
  // DONE with survivors' artifact), one persistent message drop (stalls
  // every attempt → FAILED after the attempt budget), one transient
  // drop (stalls only on attempt 1 → DONE on the retry).
  //
  // The kills use a program whose survivors never wait on the dead
  // rank: rank 0 consumes only the first four of rank 1's eight sends,
  // so a kill at rank 1's fifth call or later degrades instead of
  // stalling (a mid-loop JACOBI kill stalls the neighbours, which is
  // the Transient class, not this one).
  JobSpec killA = runSpec();
  killA.target = "fire-and-forget";
  killA.sourceText = R"(
    func main() {
      if (rank == 1) {
        for (var i = 0; i < 8; i = i + 1) { mpi_send(0, 64, i); }
      }
      if (rank == 0) {
        for (var i = 0; i < 4; i = i + 1) { mpi_recv(1, 64, i); }
      }
    })";
  killA.faultSpecs = {"kill:1@5"};
  JobSpec killB = killA;
  killB.faultSpecs = {"kill:1@7"};
  JobSpec dropForever = runSpec();
  dropForever.faultSpecs = {"drop:1@3"};
  dropForever.maxAttempts = 2;
  JobSpec dropOnce = runSpec();
  dropOnce.faultSpecs = {"drop:0@4"};
  dropOnce.faultsTransient = true;
  dropOnce.maxAttempts = 3;

  const uint64_t idKillA = server.submit(killA, 1).jobId;
  const uint64_t idKillB = server.submit(killB, 1).jobId;
  const uint64_t idDropForever = server.submit(dropForever, 1).jobId;
  const uint64_t idDropOnce = server.submit(dropOnce, 1).jobId;
  ASSERT_NE(idDropOnce, 0u);

  // Every job must reach a terminal state well within its deadline.
  for (uint64_t id = 1; id <= 8; ++id) {
    const auto st = server.wait(id, 120'000);
    ASSERT_TRUE(st.has_value()) << "job " << id;
    EXPECT_TRUE(isTerminal(st->state))
        << "job " << id << " stuck in " << toString(st->state);
  }

  for (uint64_t id : clean) {
    const auto st = server.status(id);
    EXPECT_EQ(st->state, JobState::Done) << st->detail;
    EXPECT_EQ(st->attempts, 1u);
    EXPECT_GT(st->artifactBytes, 0u);
    EXPECT_TRUE(fs::exists(st->artifactPath));
  }
  for (uint64_t id : {idKillA, idKillB}) {
    const auto st = server.status(id);
    EXPECT_EQ(st->state, JobState::Done) << st->detail;
    EXPECT_NE(st->detail.find("killed ranks"), std::string::npos) << st->detail;
    // The degraded artifact still verifies: survivors only, but valid.
    const auto rep = verify::verifyTraceFile(fileBytes(st->artifactPath));
    EXPECT_TRUE(rep.ok()) << rep.toString();
  }
  {
    const auto st = server.status(idDropForever);
    EXPECT_EQ(st->state, JobState::Failed) << st->detail;
    EXPECT_EQ(st->attempts, 2u);
    EXPECT_NE(st->detail.find("transient failure"), std::string::npos)
        << st->detail;
  }
  {
    const auto st = server.status(idDropOnce);
    EXPECT_EQ(st->state, JobState::Done) << st->detail;
    EXPECT_EQ(st->attempts, 2u) << "fault was transient: retry must succeed";
  }

  const Counters c = server.counters();
  EXPECT_EQ(c.submitted, 8u);
  EXPECT_EQ(c.accepted, 8u);
  EXPECT_EQ(c.done, 7u);
  EXPECT_EQ(c.failed, 1u);
  EXPECT_EQ(c.retries, 2u);  // dropForever attempt 2, dropOnce attempt 2
  server.stop();
}

TEST(Server, ArtifactByteIdenticalToDirectPipelineRun) {
  ThreadPool::configureShared(4);
  ServerConfig cfg;
  cfg.spoolDir = freshDir("cyp_service_ident");
  JobServer server(cfg);
  server.start();

  const auto r = server.submit(runSpec(2), 1);
  ASSERT_TRUE(r.accepted);
  const auto st = server.wait(r.jobId, 120'000);
  ASSERT_EQ(st->state, JobState::Done) << st->detail;

  // The single-job reference path, same knobs the daemon uses.
  driver::Options opts;
  opts.procs = 4;
  opts.scale = 2;
  opts.threads = cfg.threadsPerJob;
  opts.withScala = false;
  opts.withScala2 = false;
  opts.withJournal = true;
  opts.onStall = vm::OnStall::Salvage;
  const auto run = driver::runWorkload("JACOBI", opts);
  const auto reference =
      driver::mergeCypress(run, nullptr, cfg.threadsPerJob).serialize();

  EXPECT_EQ(fileBytes(st->artifactPath), reference)
      << "daemon artifact diverged from the direct pipeline";
  server.stop();
}

TEST(Server, QueryJobAnswersFromTheCompressedArtifact) {
  ThreadPool::configureShared(4);
  ServerConfig cfg;
  cfg.spoolDir = freshDir("cyp_service_query");
  JobServer server(cfg);
  server.start();

  // Produce a trace artifact with a Run job, then query it in place.
  const auto run = server.submit(runSpec(1), 1);
  ASSERT_TRUE(run.accepted);
  const auto ranSt = server.wait(run.jobId, 120'000);
  ASSERT_EQ(ranSt->state, JobState::Done) << ranSt->detail;

  JobSpec q;
  q.kind = JobKind::Query;
  q.target = ranSt->artifactPath;
  q.querySpec = "matrix";
  const auto qr = server.submit(q, 1);
  ASSERT_TRUE(qr.accepted) << qr.message;
  const auto qSt = server.wait(qr.jobId, 120'000);
  ASSERT_EQ(qSt->state, JobState::Done) << qSt->detail;
  EXPECT_GT(qSt->artifactBytes, 0u);

  // The artifact is exactly the library answer for the same trace.
  cst::Tree tree;
  const auto m =
      core::MergedCtt::deserializeWithTree(fileBytes(q.target), tree);
  const std::string want = query::runQuery(m, "matrix");
  const auto got = fileBytes(qSt->artifactPath);
  EXPECT_EQ(std::string(got.begin(), got.end()), want);

  // A malformed spec is a permanent failure, not a daemon crash.
  JobSpec bad = q;
  bad.querySpec = "bogus";
  const auto br = server.submit(bad, 1);
  ASSERT_TRUE(br.accepted);
  const auto bSt = server.wait(br.jobId, 120'000);
  EXPECT_EQ(bSt->state, JobState::Failed);
  EXPECT_NE(bSt->detail.find("unknown query kind"), std::string::npos)
      << bSt->detail;
  server.stop();
}

TEST(Server, WatchdogExpiresDeadlineIntoTerminalFailed) {
  ThreadPool::configureShared(2);
  ServerConfig cfg;
  cfg.spoolDir = freshDir("cyp_service_watchdog");
  cfg.watchdogPollMs = 1;
  JobServer server(cfg);
  server.start();

  // A deliberately over-long run against a 1 ms deadline: the watchdog
  // must cancel it cooperatively, and with a budget of one attempt the
  // job lands in FAILED with the deadline diagnostic — the server
  // itself stays healthy.
  JobSpec slow = runSpec(/*scale=*/64);
  slow.deadlineMs = 1;
  slow.maxAttempts = 1;
  const auto r = server.submit(slow, 1);
  ASSERT_TRUE(r.accepted);
  const auto st = server.wait(r.jobId, 120'000);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, JobState::Failed) << st->detail;
  EXPECT_NE(st->detail.find("deadline exceeded"), std::string::npos)
      << st->detail;

  // The server survived: a follow-up job runs to completion.
  const auto r2 = server.submit(runSpec(), 1);
  ASSERT_TRUE(r2.accepted);
  EXPECT_EQ(server.wait(r2.jobId, 120'000)->state, JobState::Done);
  server.stop();
}

TEST(Server, RetryBacksOffBeforeSecondAttempt) {
  ThreadPool::configureShared(2);
  ServerConfig cfg;
  cfg.spoolDir = freshDir("cyp_service_backoff");
  cfg.backoffBaseMs = 200;
  cfg.backoffCapMs = 1'000;
  JobServer server(cfg);
  server.start();

  JobSpec spec = runSpec();
  spec.faultSpecs = {"drop:1@3"};
  spec.faultsTransient = true;
  spec.maxAttempts = 3;
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = server.submit(spec, 1);
  ASSERT_TRUE(r.accepted);
  const auto st = server.wait(r.jobId, 120'000);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);

  EXPECT_EQ(st->state, JobState::Done) << st->detail;
  EXPECT_EQ(st->attempts, 2u);
  // The second attempt sat behind the backoff gate for at least the
  // base delay (jitter only adds).
  EXPECT_GE(elapsed.count(), 200);
  EXPECT_EQ(server.counters().retries, 1u);
  server.stop();
}

TEST(Server, CancelStopsARunningJob) {
  ThreadPool::configureShared(2);
  ServerConfig cfg;
  cfg.spoolDir = freshDir("cyp_service_cancel");
  JobServer server(cfg);
  server.start();

  const auto r = server.submit(runSpec(/*scale=*/64), 1);
  ASSERT_TRUE(r.accepted);
  // Wait until the attempt body is actually executing.
  for (int i = 0; i < 1000; ++i) {
    const auto st = server.status(r.jobId);
    if (st->state == JobState::Running) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(server.cancel(r.jobId));
  const auto st = server.wait(r.jobId, 120'000);
  EXPECT_EQ(st->state, JobState::Cancelled) << st->detail;
  EXPECT_FALSE(server.cancel(r.jobId)) << "terminal jobs refuse cancel";
  server.stop();
}

TEST(Server, CompiledProgramSharedAcrossJobs) {
  ThreadPool::configureShared(2);
  ServerConfig cfg;
  cfg.spoolDir = freshDir("cyp_service_cache");
  JobServer server(cfg);
  server.start();

  for (int i = 0; i < 3; ++i) {
    const auto r = server.submit(runSpec(1), 1);
    ASSERT_TRUE(r.accepted);
    ASSERT_EQ(server.wait(r.jobId, 120'000)->state, JobState::Done);
  }
  const Counters c = server.counters();
  EXPECT_EQ(c.cacheMisses, 1u) << "static phase must run once per program";
  EXPECT_EQ(c.cacheHits, 2u);
  server.stop();
}

}  // namespace
}  // namespace cypress::service
