// cyptraced protocol + ledger + cache unit tests: frame codec
// roundtrips and rejection, request/response catalogue, CYL1 ledger
// crash salvage, program-cache sharing, and the admission-control
// contract (bounded queue → REJECTED_BUSY, per-client in-flight caps).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "service/cache.hpp"
#include "service/ledger.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "support/error.hpp"

namespace cypress::service {
namespace {

namespace fs = std::filesystem;

std::string tmpDir(const std::string& name) {
  const std::string d =
      (fs::temp_directory_path() / ("cyp_service_" + name)).string();
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

std::vector<uint8_t> fileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

JobSpec sampleSpec() {
  JobSpec s;
  s.kind = JobKind::Run;
  s.target = "JACOBI";
  s.procs = 4;
  s.scale = 2;
  s.faultSpecs = {"kill:1@5", "delay:0@2:1000"};
  s.faultsTransient = true;
  s.deadlineMs = 1234;
  s.maxAttempts = 7;
  return s;
}

TEST(Frames, RoundtripAcrossArbitrarySplits) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  const auto frame = encodeFrame(payload);
  // Deliver the frame byte by byte: the decoder must buffer and yield
  // exactly one payload, at the end.
  FrameDecoder d;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    d.feed(std::span<const uint8_t>(&frame[i], 1));
    EXPECT_FALSE(d.next().has_value()) << "yielded early at byte " << i;
  }
  d.feed(std::span<const uint8_t>(&frame.back(), 1));
  const auto got = d.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(Frames, BackToBackFramesInOneFeed) {
  const std::vector<uint8_t> a = {9}, b = {8, 7};
  auto bytes = encodeFrame(a);
  const auto fb = encodeFrame(b);
  bytes.insert(bytes.end(), fb.begin(), fb.end());
  FrameDecoder d;
  d.feed(bytes);
  EXPECT_EQ(*d.next(), a);
  EXPECT_EQ(*d.next(), b);
  EXPECT_FALSE(d.next().has_value());
}

TEST(Frames, BadMagicRejected) {
  auto frame = encodeFrame(std::vector<uint8_t>{1});
  frame[0] ^= 0xFF;
  FrameDecoder d;
  d.feed(frame);
  EXPECT_THROW(d.next(), Error);
}

TEST(Frames, FlippedCrcRejected) {
  auto frame = encodeFrame(std::vector<uint8_t>{1, 2, 3});
  frame[8] ^= 0x01;  // CRC field
  FrameDecoder d;
  d.feed(frame);
  EXPECT_THROW(d.next(), Error);
}

TEST(Frames, CorruptPayloadRejected) {
  auto frame = encodeFrame(std::vector<uint8_t>{1, 2, 3});
  frame.back() ^= 0x40;
  FrameDecoder d;
  d.feed(frame);
  EXPECT_THROW(d.next(), Error);
}

TEST(Frames, OversizedLengthRejectedFromHeaderAlone) {
  // An absurd length prefix must be rejected as soon as the header is
  // visible — the decoder may not wait for (or buffer toward) a payload
  // that will never arrive.
  std::vector<uint8_t> header = {'C', 'Y', 'S', '1',
                                 0xFF, 0xFF, 0xFF, 0xFF,   // len
                                 0,    0,    0,    0};     // crc
  FrameDecoder d;
  d.feed(header);
  EXPECT_THROW(d.next(), Error);
}

TEST(Frames, PayloadAtCapAllowedOverCapRefused) {
  const std::vector<uint8_t> atCap(kMaxFramePayload, 0xAB);
  EXPECT_NO_THROW(encodeFrame(atCap));
  const std::vector<uint8_t> overCap(kMaxFramePayload + 1, 0xAB);
  EXPECT_THROW(encodeFrame(overCap), Error);
}

TEST(Messages, RequestRoundtripAllTypes) {
  Request submit;
  submit.type = RequestType::Submit;
  submit.spec = sampleSpec();
  const Request back = Request::decode(submit.encode());
  EXPECT_EQ(back.type, RequestType::Submit);
  EXPECT_EQ(back.spec.target, "JACOBI");
  EXPECT_EQ(back.spec.faultSpecs, submit.spec.faultSpecs);
  EXPECT_TRUE(back.spec.faultsTransient);
  EXPECT_EQ(back.spec.deadlineMs, 1234u);
  EXPECT_EQ(back.spec.maxAttempts, 7u);

  for (RequestType t : {RequestType::Hello, RequestType::Status,
                        RequestType::Wait, RequestType::Cancel,
                        RequestType::List, RequestType::Counters,
                        RequestType::Shutdown}) {
    Request r;
    r.type = t;
    r.jobId = 42;
    r.timeoutMs = 99;
    const Request rb = Request::decode(r.encode());
    EXPECT_EQ(rb.type, t);
  }
}

TEST(Messages, ResponseRoundtrip) {
  Response r;
  r.code = ResponseCode::Status;
  r.status.id = 7;
  r.status.state = JobState::Failed;
  r.status.attempts = 3;
  r.status.detail = "deadline exceeded after 3 attempt(s)";
  r.status.artifactPath = "/spool/job-7.cyp";
  const Response back = Response::decode(r.encode());
  EXPECT_EQ(back.code, ResponseCode::Status);
  EXPECT_EQ(back.status.id, 7u);
  EXPECT_EQ(back.status.state, JobState::Failed);
  EXPECT_EQ(back.status.detail, r.status.detail);

  Response list;
  list.code = ResponseCode::JobList;
  list.jobs = {r.status, r.status};
  const Response lb = Response::decode(list.encode());
  ASSERT_EQ(lb.jobs.size(), 2u);
  EXPECT_EQ(lb.jobs[1].attempts, 3u);
}

TEST(Messages, TrailingBytesRejected) {
  Request r;
  r.type = RequestType::List;
  auto bytes = r.encode();
  bytes.push_back(0);
  EXPECT_THROW(Request::decode(bytes), Error);
}

TEST(Messages, ImplausibleFieldsRejected) {
  Request r;
  r.type = RequestType::Submit;
  r.spec = sampleSpec();
  r.spec.procs = 0;
  EXPECT_THROW(Request::decode(r.encode()), Error);
  r.spec = sampleSpec();
  r.spec.maxAttempts = 100'000;
  EXPECT_THROW(Request::decode(r.encode()), Error);
}

TEST(Ledger, WriteRecoverRoundtrip) {
  const std::string dir = tmpDir("ledger_rt");
  const std::string path = dir + "/jobs.cyl";
  {
    LedgerWriter w(path);
    w.appendSubmit(1, 10, sampleSpec());
    w.appendState(1, JobState::Running, 1, "attempt 1", "", "");
    w.appendSubmit(2, 11, sampleSpec());
    w.appendState(1, JobState::Done, 1, "ok", dir + "/job-1.cyp", "");
    EXPECT_EQ(w.segmentsWritten(), 4u);
  }
  const auto rec = parseLedger(fileBytes(path));
  ASSERT_EQ(rec.jobs.size(), 2u);
  EXPECT_EQ(rec.jobs[0].state, JobState::Done);
  EXPECT_EQ(rec.jobs[0].artifactPath, dir + "/job-1.cyp");
  EXPECT_EQ(rec.jobs[1].state, JobState::Accepted);
  EXPECT_EQ(rec.maxJobId, 2u);
  EXPECT_EQ(rec.nonTerminal(), (std::vector<uint64_t>{2}));
}

TEST(Ledger, RefusesExistingFileWithoutResume) {
  const std::string dir = tmpDir("ledger_refuse");
  const std::string path = dir + "/jobs.cyl";
  { LedgerWriter w(path); w.appendSubmit(1, 1, sampleSpec()); }
  EXPECT_THROW(LedgerWriter second(path), Error);
  EXPECT_NO_THROW(LedgerWriter resumed(path, /*resume=*/true));
}

TEST(Ledger, TornTailSalvagedTruncatedAndResumable) {
  const std::string dir = tmpDir("ledger_torn");
  const std::string path = dir + "/jobs.cyl";
  {
    LedgerWriter w(path);
    w.appendSubmit(1, 1, sampleSpec());
    w.appendState(1, JobState::Running, 1, "attempt 1", "", "");
  }
  // Tear the file mid-segment, as kill -9 would.
  const auto full = fileBytes(path);
  fs::resize_file(path, full.size() - 3);

  const LedgerRecovery rec = recoverLedgerFile(path);
  ASSERT_EQ(rec.jobs.size(), 1u);
  EXPECT_EQ(rec.jobs[0].state, JobState::Accepted);  // Running seg lost
  EXPECT_GT(rec.bytesDiscarded, 0u);

  // recoverLedgerFile truncated to the valid prefix: a resumed writer
  // must append cleanly and the result must parse strictly.
  {
    LedgerWriter w(path, /*resume=*/true);
    w.appendState(1, JobState::Done, 1, "ok after restart", "", "");
  }
  const auto after = parseLedger(fileBytes(path));
  ASSERT_EQ(after.jobs.size(), 1u);
  EXPECT_EQ(after.jobs[0].state, JobState::Done);
}

TEST(Ledger, StrictParserRejectsAnomalies) {
  const std::string dir = tmpDir("ledger_strict");
  const std::string path = dir + "/jobs.cyl";
  {
    LedgerWriter w(path);
    w.appendSubmit(3, 1, sampleSpec());
    w.appendState(3, JobState::Done, 1, "ok", "", "");
  }
  auto bytes = fileBytes(path);
  // Flip a payload byte: strict throws, lenient salvages the prefix.
  auto corrupt = bytes;
  corrupt[corrupt.size() - 2] ^= 0x10;
  EXPECT_THROW(parseLedger(corrupt), Error);
  const auto rec = recoverLedger(corrupt);
  EXPECT_EQ(rec.segmentsRecovered, 1u);
  EXPECT_GT(rec.bytesDiscarded, 0u);
}

TEST(Cache, SharesCompiledProgramsAndCounts) {
  ProgramCache cache(4);
  const std::string src = R"(
    func main() {
      for (var i = 0; i < 10; i = i + 1) {
        mpi_allreduce(64);
      }
    })";
  auto a = cache.get(src);
  auto b = cache.get(src);
  EXPECT_EQ(a.get(), b.get());  // same compiled program, shared
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(a->module, nullptr);
  ASSERT_NE(a->cst, nullptr);
}

TEST(Admission, QueueFullGetsRejectedBusy) {
  ServerConfig cfg;
  cfg.spoolDir = tmpDir("adm_queue");
  cfg.queueCapacity = 3;
  cfg.perClientCap = 100;
  JobServer server(cfg);  // never started: queue drains nowhere, so
                          // admission is exactly the queue bound
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    const auto r = server.submit(sampleSpec(), /*clientId=*/i);
    (r.accepted ? accepted : rejected)++;
    if (!r.accepted) EXPECT_FALSE(r.message.empty());
  }
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(rejected, 7);
  const Counters c = server.counters();
  EXPECT_EQ(c.submitted, 10u);
  EXPECT_EQ(c.accepted, 3u);
  EXPECT_EQ(c.rejectedBusy, 7u);
  EXPECT_EQ(c.rejectedClientCap, 0u);
}

TEST(Admission, PerClientInFlightCap) {
  ServerConfig cfg;
  cfg.spoolDir = tmpDir("adm_cap");
  cfg.queueCapacity = 100;
  cfg.perClientCap = 2;
  JobServer server(cfg);
  EXPECT_TRUE(server.submit(sampleSpec(), 1).accepted);
  EXPECT_TRUE(server.submit(sampleSpec(), 1).accepted);
  const auto third = server.submit(sampleSpec(), 1);
  EXPECT_FALSE(third.accepted);
  EXPECT_TRUE(third.clientCapped);
  // A different client is unaffected by client 1's cap.
  EXPECT_TRUE(server.submit(sampleSpec(), 2).accepted);
  EXPECT_EQ(server.counters().rejectedClientCap, 1u);
}

TEST(Admission, CancelQueuedJobFreesClientSlot) {
  ServerConfig cfg;
  cfg.spoolDir = tmpDir("adm_cancel");
  cfg.queueCapacity = 100;
  cfg.perClientCap = 1;
  JobServer server(cfg);
  const auto first = server.submit(sampleSpec(), 1);
  ASSERT_TRUE(first.accepted);
  EXPECT_FALSE(server.submit(sampleSpec(), 1).accepted);
  EXPECT_TRUE(server.cancel(first.jobId));
  const auto st = server.status(first.jobId);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, JobState::Cancelled);
  EXPECT_TRUE(server.submit(sampleSpec(), 1).accepted);
}

TEST(Session, HandshakeThenSubmitRejectedBusy) {
  ServerConfig cfg;
  cfg.spoolDir = tmpDir("session_busy");
  cfg.queueCapacity = 0;  // admission refuses everything instantly
  JobServer server(cfg);
  Session session(server, 1);

  Request hello;
  hello.type = RequestType::Hello;
  auto out = session.consume(encodeFrame(hello.encode()));
  FrameDecoder d;
  d.feed(out);
  EXPECT_EQ(Response::decode(*d.next()).code, ResponseCode::HelloOk);

  Request submit;
  submit.type = RequestType::Submit;
  submit.spec = sampleSpec();
  out = session.consume(encodeFrame(submit.encode()));
  d.feed(out);
  const Response resp = Response::decode(*d.next());
  EXPECT_EQ(resp.code, ResponseCode::RejectedBusy);
  EXPECT_FALSE(resp.message.empty());
  EXPECT_FALSE(session.closed());
}

TEST(Session, HelloRequiredAndVersionChecked) {
  ServerConfig cfg;
  cfg.spoolDir = tmpDir("session_hello");
  JobServer server(cfg);
  {
    Session s(server, 1);
    Request list;
    list.type = RequestType::List;
    auto out = s.consume(encodeFrame(list.encode()));
    FrameDecoder d;
    d.feed(out);
    EXPECT_EQ(Response::decode(*d.next()).code, ResponseCode::Error);
    EXPECT_TRUE(s.closed());
  }
  {
    Session s(server, 1);
    Request hello;
    hello.type = RequestType::Hello;
    hello.helloVersion = kProtocolVersion + 1;
    auto out = s.consume(encodeFrame(hello.encode()));
    FrameDecoder d;
    d.feed(out);
    EXPECT_EQ(Response::decode(*d.next()).code, ResponseCode::Error);
    EXPECT_TRUE(s.closed());
  }
}

}  // namespace
}  // namespace cypress::service
