// Crash-recovery tests for the cyptraced job ledger and daemon.
//
// Two layers. In-process: the CYL1 ledger salvage is exercised against
// truncation at every byte and seeded corruption — recovery never
// crashes, the truncated file always resumes cleanly. Out-of-process:
// the kill matrix SIGKILLs a real `cyptraced serve` at deterministic
// ledger-segment counts mid-job (the --crash-after-segments hook),
// restarts it with --recover, and requires every journaled job to reach
// a terminal state with artifacts that still verify.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <thread>

#include "service/client.hpp"
#include "service/ledger.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "verify/fuzz.hpp"
#include "verify/roundtrip.hpp"

#ifndef CYPTRACED_BIN
#error "CYPTRACED_BIN must point at the cyptraced binary"
#endif

namespace cypress::service {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<uint8_t> fileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void writeBytes(const std::string& path, std::span<const uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A representative ledger: two submits, a full lifecycle for one job,
/// a retry transition for the other.
std::vector<uint8_t> sampleLedger(const std::string& dir) {
  const std::string path = dir + "/sample.cyl";
  {
    LedgerWriter w(path);
    JobSpec spec;
    spec.kind = JobKind::Run;
    spec.target = "JACOBI";
    spec.procs = 4;
    spec.faultSpecs = {"drop:1@3"};
    w.appendSubmit(1, 7, spec);
    w.appendSubmit(2, 7, spec);
    w.appendState(1, JobState::Running, 1, "attempt 1 of 3", "", "");
    w.appendState(1, JobState::Done, 1, "traced 96 events",
                  dir + "/job-1.cyp", dir + "/job-1.cyj");
    w.appendState(2, JobState::Running, 1, "attempt 1 of 3", "", "");
    w.appendState(2, JobState::Accepted, 1, "transient failure", "", "");
  }
  return fileBytes(path);
}

TEST(LedgerRecovery, TruncationAtEveryByteSalvagesAndResumes) {
  const std::string dir = freshDir("cyp_ledger_sweep");
  const auto good = sampleLedger(dir);
  const std::string path = dir + "/torn.cyl";

  for (size_t len = 0; len <= good.size(); ++len) {
    writeBytes(path, std::span<const uint8_t>(good.data(), len));
    LedgerRecovery rec;
    ASSERT_NO_THROW(rec = recoverLedgerFile(path)) << "prefix " << len;
    ASSERT_EQ(fs::file_size(path), len - rec.bytesDiscarded)
        << "prefix " << len << ": torn tail not truncated";
    // Whatever survived must resume: append a full new job lifecycle
    // and strict-parse the result.
    {
      LedgerWriter w(path, /*resume=*/true);
      JobSpec spec;
      spec.target = "JACOBI";
      const uint64_t id = rec.maxJobId + 1;
      w.appendSubmit(id, 9, spec);
      w.appendState(id, JobState::Cancelled, 1, "swept", "", "");
    }
    ASSERT_NO_THROW(parseLedger(fileBytes(path))) << "prefix " << len;
  }
}

TEST(LedgerRecovery, StrictParserHoldsTheDeserializerContract) {
  const std::string dir = freshDir("cyp_ledger_fuzz");
  const auto good = sampleLedger(dir);

  verify::FuzzOptions fo;
  fo.seed = 0x1ED6E4;
  fo.mutations = 500;
  const auto rep = verify::corruptionFuzz(
      good, [](std::span<const uint8_t> b) { parseLedger(b); }, fo);
  EXPECT_TRUE(rep.ok()) << rep.toString();

  // The lenient salvage must digest the same mutants without ever
  // throwing past a valid header (and without crashing on any input).
  Rng rng(0x1ED6E5);
  for (int i = 0; i < 500; ++i) {
    auto mutant = good;
    mutant[rng.below(mutant.size())] ^=
        static_cast<uint8_t>(1u << rng.below(8));
    try {
      recoverLedger(mutant);
    } catch (const cypress::Error&) {
      // acceptable only for a damaged header
    }
  }
}

// --- kill matrix -----------------------------------------------------

struct Daemon {
  pid_t pid = -1;
  std::string socket;
  std::string spool;

  Daemon() = default;
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;
  ~Daemon() { killNow(); }  // no leaked daemons on assertion failure

  static std::unique_ptr<Daemon> spawn(const std::string& spool,
                                       const std::string& socket,
                                       uint64_t crashAfterSegments,
                                       bool recover) {
    auto d = std::make_unique<Daemon>();
    d->socket = socket;
    d->spool = spool;
    d->pid = fork();
    if (d->pid == 0) {
      const std::string crash = std::to_string(crashAfterSegments);
      if (recover) {
        execl(CYPTRACED_BIN, "cyptraced", "serve", "--socket", socket.c_str(),
              "--spool", spool.c_str(), "--recover", "--deadline", "60000",
              (char*)nullptr);
      } else {
        execl(CYPTRACED_BIN, "cyptraced", "serve", "--socket", socket.c_str(),
              "--spool", spool.c_str(), "--crash-after-segments",
              crash.c_str(), "--deadline", "60000", (char*)nullptr);
      }
      _exit(127);
    }
    return d;
  }

  /// Wait until the daemon accepts connections (it unlinks + binds the
  /// socket before listening, so existence is enough).
  bool waitReady(int timeoutMs = 20'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
    while (std::chrono::steady_clock::now() < deadline) {
      if (fs::exists(socket)) return true;
      int status = 0;
      if (waitpid(pid, &status, WNOHANG) == pid) return false;  // died early
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  int await() {
    int status = 0;
    waitpid(pid, &status, 0);
    pid = -1;
    return status;
  }

  void killNow() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      await();
    }
  }
};

/// Connect with retries: the daemon's socket file appears at bind()
/// time, a moment before listen(), so the first attempt can see
/// ECONNREFUSED on a perfectly healthy daemon.
std::unique_ptr<Client> connectRetry(const std::string& socket,
                                     int timeoutMs = 20'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  while (true) {
    try {
      return std::make_unique<Client>(socket);
    } catch (const cypress::Error&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

JobSpec matrixSpec() {
  JobSpec spec;
  spec.kind = JobKind::Run;
  spec.target = "JACOBI";
  spec.procs = 4;
  return spec;
}

TEST(KillMatrix, SigkillAtEverySeededPointThenRecoverToTerminal) {
  // Segment counts covering every phase of a two-job lifecycle:
  // 1 = after job 1's durable SUBMIT, 2 = after its RUNNING transition,
  // 3-4 = around its DONE / job 2's SUBMIT, 5 = mid second job.
  for (uint64_t crashAt : {1u, 2u, 3u, 4u, 5u}) {
    SCOPED_TRACE("crash after segment " + std::to_string(crashAt));
    const std::string spool =
        freshDir("cyp_killmatrix_" + std::to_string(crashAt));
    const std::string socket = spool + "/d.sock";

    auto d = Daemon::spawn(spool, socket, crashAt, /*recover=*/false);
    ASSERT_TRUE(d->waitReady());

    // Submit two jobs; the daemon may die mid-conversation at any
    // point, which surfaces to the client as cypress::Error — that is
    // part of the contract under test (client sees a clean error, the
    // ledger keeps the truth).
    size_t submitted = 0;
    try {
      auto client = connectRetry(socket);
      for (int i = 0; i < 2; ++i) {
        const Response r = client->submit(matrixSpec());
        if (r.code == ResponseCode::Accepted) ++submitted;
      }
      // Drive until the crash hook fires (both jobs finishing without
      // a crash would be a test bug — segment counts above are all
      // reachable before the second DONE).
      while (true) {
        client->list();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    } catch (const cypress::Error&) {
      // expected: the daemon was SIGKILLed under us
    }

    const int status = d->await();
    ASSERT_TRUE(WIFSIGNALED(status)) << "daemon exited instead of dying";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // The ledger survived the kill: salvage must find every accepted
    // job (durable SUBMIT precedes the Accepted response).
    const auto rec = recoverLedgerFile(spool + "/jobs.cyl");
    ASSERT_GE(rec.jobs.size(), submitted);

    // Restart with --recover: every journaled job must reach a
    // terminal state.
    auto d2 = Daemon::spawn(spool, socket, 0, /*recover=*/true);
    ASSERT_TRUE(d2->waitReady());
    {
      auto client = connectRetry(socket);
      for (const LedgerJob& lj : rec.jobs) {
        const auto st = client->wait(lj.id, 120'000);
        ASSERT_TRUE(st.has_value()) << "job " << lj.id << " lost in recovery";
        EXPECT_TRUE(isTerminal(st->state))
            << "job " << lj.id << " stuck in " << toString(st->state);
        if (st->state == JobState::Done) {
          ASSERT_TRUE(fs::exists(st->artifactPath)) << st->artifactPath;
          const auto rep = verify::verifyTraceFile(fileBytes(st->artifactPath));
          EXPECT_TRUE(rep.ok()) << rep.toString();
        }
      }
      client->shutdown();
    }
    const int status2 = d2->await();
    EXPECT_TRUE(WIFEXITED(status2) && WEXITSTATUS(status2) == 0)
        << "recovered daemon did not shut down cleanly";
  }
}

TEST(KillMatrix, TornJournalIsRenamedForSalvage) {
  // Crash right after a RUNNING transition (segment 2): the job's
  // streamed journal is a torn .partial. Recovery must rename it to
  // .salvage so `cyptrace recover` can mine it, and the re-run must
  // still produce a fresh, valid artifact.
  const std::string spool = freshDir("cyp_killmatrix_journal");
  const std::string socket = spool + "/d.sock";

  auto d = Daemon::spawn(spool, socket, 2, /*recover=*/false);
  ASSERT_TRUE(d->waitReady());
  try {
    auto client = connectRetry(socket);
    client->submit(matrixSpec());
    while (true) {
      client->list();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  } catch (const cypress::Error&) {
  }
  const int status = d->await();
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  auto d2 = Daemon::spawn(spool, socket, 0, /*recover=*/true);
  ASSERT_TRUE(d2->waitReady());
  {
    auto client = connectRetry(socket);
    const auto st = client->wait(1, 120'000);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Done) << st->detail;
    EXPECT_FALSE(fs::exists(spool + "/job-1.cyj.partial"))
        << "torn journal left under its in-progress name";
    const auto rep = verify::verifyTraceFile(fileBytes(st->artifactPath));
    EXPECT_TRUE(rep.ok()) << rep.toString();
    client->shutdown();
  }
  d2->await();
}

}  // namespace
}  // namespace cypress::service
